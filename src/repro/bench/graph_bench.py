"""Wall-clock kernel-graph benchmark: fused replay vs eager dispatch.

Runs the melt force step eagerly under segmented scatter (the committed
BENCH_hotpath.json measurement, reproduced exactly), then again with the
kernel-graph subsystem on: the first step captures the per-step dispatch
DAG, fuses the elementwise chains, and caches the plan; every later step
replays the fused plan with zero re-capture cost.  The acceptance claims
are (a) the fused step beats the eager segmented step and (b) the plan
cache runs at a 100% steady-state hit rate between neighbor rebuilds,
paying exactly one re-capture miss per rebuild.

The output ``BENCH_graph.json`` declares ``"benchmark": "hotpath"`` (with
a ``"variant": "graph"`` marker) on purpose: it uses the same workload and
measurement schema, so the CI sentinel can compare the ``segmented`` and
``graph`` columns directly against the committed BENCH_hotpath.json
baseline (which records both since the hotpath bench grew a graph mode).
"""

from __future__ import annotations

import json

import repro.potentials  # noqa: F401  (register pair styles)
from repro.bench.hotpath import GRAPH, _record, _step_samples
from repro.bench.registry import register_bench
from repro.bench.stats import SCHEMA_VERSION, validate_bench
from repro.core import Lammps
from repro.graph import ON, force_graph_mode, plan_cache
from repro.kokkos.segment import SEGMENTED, force_scatter_mode
from repro.workloads.melt import setup_melt

#: default output file (repo-root relative when run from the checkout)
DEFAULT_OUT = "BENCH_graph.json"

_COUNTERS = ("hits", "misses", "fused_nodes")


def _delta(after: dict, before: dict) -> dict:
    return {key: after[key] - before[key] for key in _COUNTERS}


def bench_melt_graph(
    cells: int = 8, repeats: int = 10, steady_steps: int = 32
) -> dict:
    """Melt step timings eager vs fused, plus plan-cache hit accounting."""
    lmp = Lammps(quiet=True)
    setup_melt(lmp, cells=cells, pair_style="lj/cut")
    lmp.run(0)
    atom, pair = lmp.atom, lmp.pair
    out: dict = {
        "workload": "melt",
        "pair_style": "lj/cut",
        "natoms": int(lmp.natoms_total),
        "pairs": int(lmp.neigh_list.total_pairs),
        "repeats": repeats,
    }

    def step() -> None:
        atom.f[: atom.nall] = 0.0
        pair.compute(True, True)

    with force_scatter_mode(SEGMENTED):
        _record(out, "step", SEGMENTED, _step_samples(lmp, repeats))
        with force_graph_mode(ON):
            _record(out, "step", GRAPH, _step_samples(lmp, repeats))
            cache = plan_cache()
            # steady state: the plan captured above stays valid until the
            # next rebuild, so every one of these steps must be a cache hit
            before = cache.stats()
            for _ in range(steady_steps):
                step()
            steady = _delta(cache.stats(), before)
            # a neighbor rebuild bumps the list generation, invalidating the
            # plan: exactly one re-capture miss, then hits again
            before = cache.stats()
            for _ in lmp.rebuild_gen():
                pass
            step()
            step()
            rebuild = _delta(cache.stats(), before)

    looked_up = steady["hits"] + steady["misses"]
    out["plan_cache"] = {
        "steady_steps": steady_steps,
        "steady_hits": steady["hits"],
        "steady_misses": steady["misses"],
        "steady_state_hit_rate": (
            steady["hits"] / looked_up if looked_up else 0.0
        ),
        "rebuild_hits": rebuild["hits"],
        "rebuild_misses": rebuild["misses"],
        "fused_nodes_per_capture": rebuild["fused_nodes"],
    }
    step_s = out["step_seconds"]
    out["steps_per_second"] = {m: 1.0 / s for m, s in step_s.items()}
    out["atom_steps_per_second"] = {
        m: out["natoms"] / s for m, s in step_s.items()
    }
    out["graph_speedup"] = step_s[SEGMENTED] / step_s[GRAPH]
    return out


@register_bench("graph")
def run_graph_bench(
    *,
    repeats: int = 10,
    steady_steps: int = 32,
    out_path: str | None = DEFAULT_OUT,
    quiet: bool = False,
) -> dict:
    """Run the fused-vs-eager melt bench; write BENCH_graph.json."""
    results = {
        "benchmark": "hotpath",
        "variant": "graph",
        "units": "seconds (best-of-repeats wall clock)",
        "schema_version": SCHEMA_VERSION,
        "workloads": [
            bench_melt_graph(repeats=repeats, steady_steps=steady_steps)
        ],
    }
    validate_bench(results)
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(results, fh, indent=2)
            fh.write("\n")
    if not quiet:
        print(format_graph_report(results))
    return results


def format_graph_report(results: dict) -> str:
    lines = ["kernel-graph wall clock: fused replay vs eager dispatch"]
    for row in results["workloads"]:
        step = row["step_seconds"]
        cache = row["plan_cache"]
        lines.append(
            f"  {row['workload']:<9} natoms={row['natoms']:<6} "
            f"step eager {step[SEGMENTED] * 1e3:8.3f} ms -> "
            f"fused {step[GRAPH] * 1e3:8.3f} ms "
            f"({row['graph_speedup']:.2f}x)"
        )
        lines.append(
            f"  {'':<9} plan cache: {cache['steady_hits']}/"
            f"{cache['steady_steps']} steady-state hits "
            f"({cache['steady_state_hit_rate'] * 100:.0f}%), "
            f"{cache['rebuild_misses']} re-capture after rebuild, "
            f"{cache['fused_nodes_per_capture']} dispatches fused per plan"
        )
    return "\n".join(lines)
