"""Cluster projection: strong scaling across the paper's machines.

Per-step time on a cluster = per-rank kernel time (from the rescaled
reference profiles, including the thread-starvation and launch-latency
effects that dominate the deep strong-scaling regime) + the per-step
communication pattern evaluated on the machine's fabric:

* halo exchanges sized by the surface-to-volume ghost count of each rank's
  brick;
* a recursive-doubling allreduce per collective (rebuild check, QEq dots);
* NIC sharing: with fewer NICs than GPUs per node, halo bandwidth derates.

This is the standard analytic model behind figure 6's shapes: ReaxFF's QEq
iterations pay the latency floor ~30x per step (it never exceeds ~100
steps/s), while SNAP's heavy compute hides the network entirely.
"""

from __future__ import annotations

import numpy as np

from repro.bench.runner import ReferenceRun
from repro.hardware.machine import MachineSpec

#: fixed per-step distributed-run overhead: MPI progress, host-device
#: synchronization, load imbalance slack (microseconds)
PER_STEP_OVERHEAD_US = 120.0
#: multiplicative load-imbalance factor on the slowest rank's kernel time
IMBALANCE = 1.1


def ghost_atoms(natoms_rank: float, density: float, cutoff: float) -> float:
    """Ghost-shell atom count for a cubic brick of ``natoms_rank`` atoms."""
    if natoms_rank <= 0:
        return 0.0
    volume = natoms_rank / density
    edge = volume ** (1.0 / 3.0)
    grown = (edge + 2.0 * cutoff) ** 3
    return density * (grown - volume)


def interior_fraction(natoms_rank: float, density: float, cutoff: float) -> float:
    """Fraction of pair work whose neighbor is an owned atom.

    The overlap split is per pair: a pair is interior when its j atom is
    owned.  A neighbor drawn from the halo-extended brick is owned with
    probability ``nlocal / (nlocal + nghost)``, which also gives the right
    limits — near 1 for fat bricks, small but non-zero for slivers thinner
    than the cutoff (owned-owned pairs always exist).
    """
    if natoms_rank <= 0:
        return 0.0
    nghost = ghost_atoms(natoms_rank, density, cutoff)
    return natoms_rank / (natoms_rank + nghost)


def cluster_step_breakdown(
    ref: ReferenceRun,
    machine: MachineSpec,
    natoms_total: int,
    nodes: int,
    *,
    overlap: bool = False,
) -> dict | None:
    """Per-step time parts, or None when the problem does not fit in HBM.

    Returns ``{"total", "kernel", "comm", "interior", "boundary",
    "hidden_comm", "interior_fraction"}`` — with overlap on, the total is
    accounted as ``rest + max(hidden_comm, interior) + boundary + exposed
    comm`` (the ``max(comm, interior) + boundary`` scheme); off, it is the
    serial ``kernel + comm``.
    """
    ranks = machine.ranks(nodes)
    natoms_rank = natoms_total / ranks
    if natoms_rank * ref.mem_per_atom > machine.gpu.hbm_bytes:
        return None
    if natoms_rank < 1.0:
        return None
    natoms_dev = max(int(round(natoms_rank)), 1)

    t_kernel = ref.step_time(machine.gpu, natoms_dev)
    if ranks > 1:
        t_kernel *= IMBALANCE

    comm = ref.comm
    net = machine.network
    nghost = ghost_atoms(natoms_rank, ref.density, ref.cutoff)
    # NIC sharing derate (the paper's machines are 1:1; Aurora is 12:8)
    share = min(1.0, machine.nics_per_node / machine.gpus_per_node)
    eff_net = type(net)(
        name=net.name, latency_us=net.latency_us, nic_bw_gbs=net.nic_bw_gbs * share
    )
    face_bytes = nghost / 6.0 * comm.bytes_per_ghost
    t_comm = 0.0
    t_position_halo = 0.0
    if ranks > 1:
        # single-node runs exchange over NVLink/xGMI; multi-node bricks put
        # roughly 2/3 of their face traffic on the fabric (2 of 6 faces stay
        # on-node with 4-8 ranks per node)
        if nodes == 1:
            eff_net = type(net)(
                name="intranode", latency_us=1.0, nic_bw_gbs=150.0
            )
            frac_fabric = 1.0
        else:
            frac_fabric = 2.0 / 3.0

        def halo(nbytes_face: float) -> float:
            return eff_net.halo_time(nbytes_face * frac_fabric)

        # the first forward halo each step carries positions; it is the one
        # the interior pass can hide
        t_position_halo = halo(face_bytes)
        t_comm += comm.forward_halos * halo(face_bytes)
        t_comm += comm.reverse_halos * halo(face_bytes)
        t_comm += comm.allreduces * eff_net.allreduce_time(16.0, ranks)
        # iterative rounds (QEq CG): one 8-byte-per-ghost halo + two dots
        t_comm += comm.iterative_rounds * (
            halo(nghost / 6.0 * 8.0)
            + 2.0 * eff_net.allreduce_time(16.0, ranks)
        )
        # pack/unpack and solver kernels that exist only in distributed runs
        launch = machine.gpu.launch_latency_us * 1e-6
        t_comm += (comm.forward_halos + comm.reverse_halos) * comm.kernels_per_halo * launch
        t_comm += comm.iterative_rounds * comm.iterative_kernel_launches * launch
        t_comm += PER_STEP_OVERHEAD_US * 1e-6

    frac = interior_fraction(natoms_rank, ref.density, ref.cutoff)
    t_split = ref.splittable_step_time(machine.gpu, natoms_dev)
    if ranks > 1:
        t_split *= IMBALANCE
    t_split = min(t_split, t_kernel)
    t_interior = frac * t_split
    t_boundary = t_split - t_interior

    if overlap and ranks > 1:
        from repro.hardware.cost import overlapped_phase_time

        total = (
            (t_kernel - t_split)
            + overlapped_phase_time(t_position_halo, t_interior, t_boundary)
            + (t_comm - t_position_halo)
        )
    else:
        total = t_kernel + t_comm
    return {
        "total": total,
        "kernel": t_kernel,
        "comm": t_comm,
        "interior": t_interior,
        "boundary": t_boundary,
        "hidden_comm": t_position_halo if (overlap and ranks > 1) else 0.0,
        "interior_fraction": frac,
    }


def cluster_step_time(
    ref: ReferenceRun,
    machine: MachineSpec,
    natoms_total: int,
    nodes: int,
    *,
    overlap: bool = False,
) -> float | None:
    """Seconds per timestep, or None when the problem does not fit in HBM."""
    parts = cluster_step_breakdown(
        ref, machine, natoms_total, nodes, overlap=overlap
    )
    return None if parts is None else parts["total"]


def strong_scaling_curve(
    ref: ReferenceRun,
    machine: MachineSpec,
    natoms_total: int,
    node_counts: list[int],
    *,
    overlap: bool = False,
) -> list[tuple[int, float | None]]:
    """``(nodes, steps_per_second)`` series; None where it does not fit."""
    out: list[tuple[int, float | None]] = []
    for nodes in node_counts:
        if nodes > machine.max_nodes:
            continue
        t = cluster_step_time(ref, machine, natoms_total, nodes, overlap=overlap)
        out.append((nodes, None if t is None else 1.0 / t))
    return out


def parallel_efficiency(curve: list[tuple[int, float | None]]) -> list[tuple[int, float]]:
    """Efficiency relative to the smallest node count that fits."""
    base = next(((n, s) for n, s in curve if s is not None), None)
    if base is None:
        return []
    n0, s0 = base
    out = []
    for n, s in curve:
        if s is None:
            continue
        ideal = s0 * n / n0
        out.append((n, s / ideal))
    return out
