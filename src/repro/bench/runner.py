"""Reference-run capture and single-device projection.

A :class:`PotentialBenchmark` runs its workload functionally at a small
reference size with the Kokkos pair style and profile capture enabled,
merges the captured kernels into per-step :class:`KernelProfile` objects,
and exposes

* :meth:`ReferenceRun.step_time` — simulated seconds/step on any GPU (or the
  reference CPU node) at any atom count, with optional carveout override and
  style tuning, and
* :meth:`ReferenceRun.atom_steps_per_second` — the figure 4/5 metric.

Scaling assumption: per-atom workload character (neighbors per atom, QEq
iterations, quad sparsity) is size-independent for homogeneous workloads —
true of all three benchmarks, whose densities are fixed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

import repro.kokkos as kk
import repro.potentials  # noqa: F401  (register pair styles)
import repro.reaxff  # noqa: F401
import repro.snap  # noqa: F401
from repro.core import Lammps
from repro.hardware.cost import KernelProfile
from repro.hardware.cpu import CPUSpec
from repro.hardware.gpu import GPUSpec, get_gpu
from repro.workloads.hns import setup_hns
from repro.workloads.melt import setup_melt
from repro.workloads.tantalum import setup_tantalum


@dataclass
class CommModel:
    """Per-step communication pattern for the cluster model."""

    #: forward halo exchanges per step (positions and fields out to ghosts)
    forward_halos: int = 1
    #: reverse halo exchanges per step (ghost forces back to owners)
    reverse_halos: int = 0
    #: iterative rounds per step (QEq CG: one vector halo + allreduces each)
    iterative_rounds: int = 0
    #: bytes per ghost atom moved in one forward halo
    bytes_per_ghost: float = 24.0
    #: allreduces per step outside the iterative rounds (rebuild check etc.)
    allreduces: int = 1
    #: pack/unpack kernel launches per halo exchange (6 faces x pack+unpack)
    kernels_per_halo: int = 12
    #: device kernels per iterative round (spmv, dots, axpys)
    iterative_kernel_launches: int = 11
    #: kernel-name prefixes whose work splits into interior/boundary passes
    #: when comm/compute overlap is on (the first ghost-reading kernel of
    #: the step; everything downstream already waits for other reasons)
    overlap_kernels: tuple[str, ...] = ("PairCompute",)


@dataclass
class ReferenceRun:
    """Captured per-step kernel profiles plus workload metadata."""

    potential: str
    natoms: int
    #: per-step profiles merged by kernel name
    profiles: dict[str, KernelProfile]
    #: atom number density (atoms per cubic length unit)
    density: float
    #: interaction cutoff (ghost shell width), length units
    cutoff: float
    #: device memory per atom, bytes (HBM capacity limit, figure 4)
    mem_per_atom: float
    comm: CommModel = field(default_factory=CommModel)

    # ------------------------------------------------------------ projection
    def scaled_profiles(self, natoms: int) -> list[KernelProfile]:
        ratio = natoms / self.natoms
        return [p.scaled(ratio) for p in self.profiles.values()]

    def max_atoms(self, gpu: GPUSpec) -> int:
        """Largest atom count fitting in HBM (the figure 4 ReaxFF wall)."""
        return int(gpu.hbm_bytes / self.mem_per_atom)

    def step_time(
        self,
        device: GPUSpec | CPUSpec | str,
        natoms: int,
        *,
        carveout: float | None = None,
    ) -> float:
        """Simulated seconds per timestep on one device."""
        if isinstance(device, str):
            device = get_gpu(device)
        model = kk.device_context().cost_model
        total = 0.0
        for prof in self.scaled_profiles(natoms):
            if isinstance(device, GPUSpec):
                total += model.gpu_time(prof, device, carveout)
            else:
                total += model.cpu_time(prof, device)
        return total

    def atom_steps_per_second(
        self,
        device: GPUSpec | CPUSpec | str,
        natoms: int,
        *,
        carveout: float | None = None,
    ) -> float:
        return natoms / self.step_time(device, natoms, carveout=carveout)

    def kernel_time(
        self,
        name: str,
        device: GPUSpec | str,
        natoms: int,
        *,
        carveout: float | None = None,
    ) -> float:
        """Seconds/step of a single kernel (figure 3, Table 2)."""
        if isinstance(device, str):
            device = get_gpu(device)
        prof = self.profiles[name].scaled(natoms / self.natoms)
        return kk.device_context().cost_model.gpu_time(prof, device, carveout)

    def splittable_step_time(
        self,
        device: GPUSpec | str,
        natoms: int,
        *,
        carveout: float | None = None,
    ) -> float:
        """Seconds/step of the kernels the overlap scheme can phase-split.

        Matches per-step profiles against the comm model's
        ``overlap_kernels`` prefixes; the remainder of :meth:`step_time` is
        work that cannot hide the halo (it either precedes the exchange or
        depends on downstream communication).
        """
        if isinstance(device, str):
            device = get_gpu(device)
        model = kk.device_context().cost_model
        ratio = natoms / self.natoms
        total = 0.0
        for name, prof in self.profiles.items():
            if any(name.startswith(p) for p in self.comm.overlap_kernels):
                total += model.gpu_time(prof.scaled(ratio), device, carveout)
        return total


def _merge_step_profiles(
    log: list[KernelProfile], nsteps: int
) -> dict[str, KernelProfile]:
    """Average captured profiles into one per-step profile per kernel."""
    merged: dict[str, KernelProfile] = {}
    for p in log:
        if p.name in merged:
            merged[p.name] = merged[p.name] + p
        else:
            merged[p.name] = p
    out: dict[str, KernelProfile] = {}
    for name, p in merged.items():
        scaled = p.scaled(1.0 / nsteps)
        out[name] = replace(
            scaled,
            launches=max(round(p.launches / nsteps), 1),
            # parallelism is per launch (the merge already took the max);
            # averaging over steps must not shrink it
            parallel_items=p.parallel_items,
        )
    return out


class PotentialBenchmark:
    """Base: owns the reference workload and capture procedure."""

    name: str = ""
    pair_style: str = ""
    mem_per_atom: float = 300.0
    comm = CommModel()
    capture_steps: int = 4
    _cache: dict[tuple, ReferenceRun] = {}

    def setup(self, lmp: Lammps) -> None:
        raise NotImplementedError

    def tune(self, pair) -> None:
        """Apply style options before capture (overridden by sweeps)."""

    def reference(self, device: str = "H100", **tune_kw) -> ReferenceRun:
        config = tuple(
            (k, repr(v)) for k, v in sorted(vars(self).items())
        )
        key = (type(self).__name__, device, tuple(sorted(tune_kw.items())), config)
        if key in self._cache:
            return self._cache[key]
        lmp = Lammps(device=device, suffix="kk")
        self.setup(lmp)
        ctx = kk.device_context()
        # complete setup work outside the capture window
        lmp.run(0)
        if tune_kw and hasattr(lmp.pair, "set_options"):
            lmp.pair.set_options(**tune_kw)
        self.tune(lmp.pair)
        ctx.profile_log = []
        lmp.run(self.capture_steps)
        # run(n) re-runs setup (one extra force cycle): average over n+1
        profiles = _merge_step_profiles(ctx.profile_log, self.capture_steps + 1)
        ctx.profile_log = None
        vol = lmp.domain.volume
        run = ReferenceRun(
            potential=self.name,
            natoms=lmp.natoms_total,
            profiles=profiles,
            density=lmp.natoms_total / vol,
            cutoff=lmp.pair.max_cutoff(),
            mem_per_atom=self.mem_per_atom,
            comm=self.comm,
        )
        self._cache[key] = run
        return run


class LJBenchmark(PotentialBenchmark):
    """LJ melt: 4x4x4k-cell fcc argon (figure 4/5 use 16M atoms)."""

    name = "LJ"
    pair_style = "lj/cut"
    mem_per_atom = 320.0  # x/v/f + half/full neighbor list
    comm = CommModel(forward_halos=1, reverse_halos=0)

    def __init__(self, cells: int = 8, **options) -> None:
        self.cells = cells
        self.options = options

    def setup(self, lmp: Lammps) -> None:
        setup_melt(lmp, cells=self.cells, pair_style=self.pair_style)

    def tune(self, pair) -> None:
        if self.options and hasattr(pair, "set_options"):
            pair.set_options(**self.options)


class ReaxFFBenchmark(PotentialBenchmark):
    """HNS-like CHNO crystal (figure 4/5 use the 465k-atom HNS cell)."""

    name = "ReaxFF"
    pair_style = "reaxff"
    # bond tables + over-allocated QEq CSR (~400 slots x 12 B) + vectors
    mem_per_atom = 9000.0
    comm = CommModel(
        forward_halos=2,  # positions + charges
        reverse_halos=1,
        iterative_rounds=30,  # QEq CG iterations (matches captured runs)
        allreduces=3,
        # bond-order neighboring and the nonbonded force read only pair
        # geometry, so their owned-owned portion can hide the position halo
        overlap_kernels=("ReaxBondOrderNeighborList", "ReaxNonbondedForce"),
    )

    def __init__(self, nx: int = 3, ny: int = 5, nz: int = 5) -> None:
        self.nx, self.ny, self.nz = nx, ny, nz

    def setup(self, lmp: Lammps) -> None:
        setup_hns(lmp, self.nx, self.ny, self.nz, pair_style=self.pair_style)


class SNAPBenchmark(PotentialBenchmark):
    """bcc Ta with 2J_max = 8 (figure 4/5 use 64k atoms)."""

    name = "SNAP"
    pair_style = "snap"
    # U/Y adjoint blocks are processed in bounded atom chunks; resident
    # footprint per atom stays moderate
    mem_per_atom = 4000.0
    # the U expansion is per-atom: rows whose neighborhood is ghost-free can
    # run while the halo is in flight, the rest follows the sync
    comm = CommModel(
        forward_halos=1, reverse_halos=1, overlap_kernels=("ComputeUi",)
    )
    capture_steps = 2

    def __init__(self, cells: int = 3, twojmax: int = 8, **options) -> None:
        self.cells = cells
        self.twojmax = twojmax
        self.options = options

    def setup(self, lmp: Lammps) -> None:
        setup_tantalum(
            lmp, cells=self.cells, pair_style=self.pair_style, twojmax=self.twojmax
        )

    def tune(self, pair) -> None:
        if self.options and hasattr(pair, "set_options"):
            pair.set_options(**self.options)


#: the three case studies at their default reference sizes
POTENTIAL_BENCHMARKS: dict[str, Callable[[], PotentialBenchmark]] = {
    "LJ": LJBenchmark,
    "ReaxFF": ReaxFFBenchmark,
    "SNAP": SNAPBenchmark,
}


def overlap_report(
    ref: ReferenceRun,
    machine,
    natoms_total: int,
    node_counts: list[int],
) -> list[dict]:
    """Fig. 6-style overlap=on/off comparison rows.

    Each row gives the modeled step time with the serial exchange-then-force
    schedule and with the halo hidden behind the interior pass
    (``max(comm, interior) + boundary``), plus the interior fraction and the
    communication time actually hidden.
    """
    from repro.bench.scaling import cluster_step_breakdown

    rows: list[dict] = []
    for nodes in node_counts:
        if nodes > machine.max_nodes:
            continue
        off = cluster_step_breakdown(ref, machine, natoms_total, nodes, overlap=False)
        on = cluster_step_breakdown(ref, machine, natoms_total, nodes, overlap=True)
        if off is None or on is None:
            continue
        rows.append(
            {
                "nodes": nodes,
                "ranks": machine.ranks(nodes),
                "step_time_off": off["total"],
                "step_time_on": on["total"],
                "speedup": off["total"] / on["total"],
                "interior_fraction": on["interior_fraction"],
                "hidden_comm": min(on["hidden_comm"], on["interior"]),
            }
        )
    return rows


def format_overlap_report(potential: str, machine_name: str, rows: list[dict]) -> str:
    """Human-readable table for :func:`overlap_report` rows."""
    lines = [
        f"{potential} on {machine_name}: halo/compute overlap",
        f"{'nodes':>6} {'ranks':>7} {'off (ms)':>10} {'on (ms)':>10} "
        f"{'speedup':>8} {'interior':>9}",
    ]
    for r in rows:
        lines.append(
            f"{r['nodes']:>6d} {r['ranks']:>7d} {r['step_time_off'] * 1e3:>10.4f} "
            f"{r['step_time_on'] * 1e3:>10.4f} {r['speedup']:>8.3f} "
            f"{r['interior_fraction']:>9.3f}"
        )
    return "\n".join(lines)
