"""Benchmark harness: functional reference runs -> cost-model projections.

The pattern behind every figure reproduction (DESIGN.md section 3): run the
*functional* simulation at a reference size with kernel-profile capture on,
then rescale the captured per-step profiles to arbitrary atom counts,
architectures, cache carveouts, and cluster sizes through the
:mod:`repro.hardware` models.  Workload-derived quantities (neighbors per
atom, QEq iterations, quad sparsity) therefore come from real runs, not
hand-waving; only the silicon is analytic.
"""

from repro.bench.registry import bench_names, register_bench, run_bench
from repro.bench.runner import (
    LJBenchmark,
    ReaxFFBenchmark,
    ReferenceRun,
    SNAPBenchmark,
    POTENTIAL_BENCHMARKS,
    format_overlap_report,
    overlap_report,
)
from repro.bench.scaling import (
    cluster_step_breakdown,
    cluster_step_time,
    interior_fraction,
    strong_scaling_curve,
)
from repro.bench.autotune import format_autotune_report, run_autotune_bench
from repro.bench.graph_bench import format_graph_report, run_graph_bench
from repro.bench.hotpath import format_hotpath_report, run_hotpath_bench
from repro.bench.qeq_bench import format_qeq_report, run_qeq_bench
from repro.bench.replica_bench import format_replica_report, run_replica_bench
from repro.bench.neighbor import (
    format_neighbor_report,
    run_neighbor_bench,
    validate_neighbor_bench,
)
from repro.bench.reporting import format_table, format_series
from repro.bench.sentinel import compare, format_verdict, run_sentinel
from repro.bench.stats import (
    SCHEMA_VERSION,
    collect_samples,
    summarize,
    validate_bench,
)

__all__ = [
    "bench_names",
    "register_bench",
    "run_bench",
    "ReferenceRun",
    "LJBenchmark",
    "ReaxFFBenchmark",
    "SNAPBenchmark",
    "POTENTIAL_BENCHMARKS",
    "strong_scaling_curve",
    "cluster_step_time",
    "cluster_step_breakdown",
    "interior_fraction",
    "overlap_report",
    "format_overlap_report",
    "format_table",
    "format_series",
    "run_hotpath_bench",
    "format_hotpath_report",
    "run_graph_bench",
    "format_graph_report",
    "run_autotune_bench",
    "format_autotune_report",
    "run_neighbor_bench",
    "format_neighbor_report",
    "run_qeq_bench",
    "format_qeq_report",
    "run_replica_bench",
    "format_replica_report",
    "validate_neighbor_bench",
    "SCHEMA_VERSION",
    "summarize",
    "collect_samples",
    "validate_bench",
    "compare",
    "format_verdict",
    "run_sentinel",
]
