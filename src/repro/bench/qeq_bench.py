"""Wall-clock QEq solver benchmark: fusion, preconditioning, extrapolation.

The QEq charge solve dominates ReaxFF step time at scale, and this PR's
three stacked optimizations each attack a different term of its cost:

* **fused dual-RHS SpMV** — one traversal of the matrix values/columns
  feeds both CG systems, halving the bytes streamed per iteration versus
  the double-traversal baseline (kept available as the ``dual`` mode);
* **preconditioning** — Jacobi (free, from the stored diagonal) and SSOR
  (a triangular sweep per application) shrink the CG iteration count at
  identical convergence tolerance;
* **charge-history extrapolation** — a polynomial seed from the last few
  steps' solutions starts CG near the answer, so warm steps converge in a
  fraction of the cold-start iterations.

This bench runs the HNS surrogate once per configuration cell and records
*both* axes the acceptance criteria are stated in: wall seconds for the
whole run (best-of-repeats, with a stats block for the sentinel's noise
band) and the deterministic iterations-to-tolerance trajectory.  The
iteration path must be bit-identical across repeats — it is asserted, and
the recorded ``mean_iterations`` (warm steps only, after the extrapolation
ring has filled) back the headline ``iteration_speedup`` claim:
``jacobi+x2`` must converge in >= 1.5x fewer iterations than the
unpreconditioned cold start at the same tolerance.
"""

from __future__ import annotations

import json
import statistics
import time

import repro.reaxff  # noqa: F401  (register pair styles)
from repro.bench.hotpath import _record
from repro.bench.registry import register_bench
from repro.bench.stats import SCHEMA_VERSION, validate_bench
from repro.core import Lammps
from repro.reaxff.qeq import DUAL, FUSED, force_qeq_spmv_mode
from repro.workloads.hns import setup_hns

#: default output file (repo-root relative when run from the checkout)
DEFAULT_OUT = "BENCH_qeq.json"

#: configuration cells: label -> (qeq_precond, qeq_extrap, spmv mode).
#: ``cold`` is the historical solver (no preconditioner, cold start, fused
#: traversal); ``dual`` isolates the fusion win by re-running ``cold`` with
#: the double-traversal SpMV; the rest stack the new solver features.
MODES = (
    ("cold", "none", "none", FUSED),
    ("dual", "none", "none", DUAL),
    ("jacobi", "jacobi", "none", FUSED),
    ("jacobi+x2", "jacobi", "2", FUSED),
    ("ssor+x2", "ssor", "2", FUSED),
)

#: solves excluded from ``mean_iterations``: the extrapolation ring needs
#: order+1 = 3 previous solutions before the order-2 seed is in effect, so
#: the first entries of every trajectory are cold-ish for all cells.
WARMUP_SOLVES = 3


def _build(precond: str, extrap: str) -> Lammps:
    lmp = Lammps(quiet=True)
    setup_hns(lmp, nx=1, ny=2, nz=2, pair_style="reaxff cutoff 5.0")
    lmp.commands_string("neighbor 0.5 bin")
    lmp.pair.set_qeq_options(precond=precond, extrap=extrap)
    return lmp


def bench_hns_qeq(steps: int = 12, repeats: int = 3) -> dict:
    """HNS QEq row: wall time + iteration trajectory per configuration."""
    row: dict = {
        "workload": "hns",
        "pair_style": "reaxff cutoff 5.0",
        "qeq_tol": None,
        "natoms": None,
        "steps": steps,
        "repeats": repeats,
        "warmup_solves": WARMUP_SOLVES,
        "iterations": {},
        "mean_iterations": {},
        "spmv_bytes_per_iteration": {},
    }
    for label, precond, extrap, mode in MODES:
        samples: list[float] = []
        paths: set[tuple[int, ...]] = set()
        for _ in range(repeats):
            with force_qeq_spmv_mode(mode):
                lmp = _build(precond, extrap)
                t0 = time.perf_counter()
                lmp.run(steps)
                samples.append(time.perf_counter() - t0)
            paths.add(tuple(lmp.pair.qeq_iters_history))
        if len(paths) != 1:
            raise ValueError(
                f"qeq bench cell {label!r}: iteration path not "
                f"deterministic across repeats: {sorted(paths)}"
            )
        history = list(paths.pop())
        row["natoms"] = int(lmp.natoms_total)
        row["qeq_tol"] = lmp.pair.qeq_tol
        _record(row, "run", label, samples)
        row["iterations"][label] = history
        row["mean_iterations"][label] = statistics.mean(
            history[WARMUP_SOLVES:]
        )
        row["spmv_bytes_per_iteration"][label] = lmp.pair.last_stats[
            "qeq_spmv_bytes_per_iteration"
        ]
    mean = row["mean_iterations"]
    bpi = row["spmv_bytes_per_iteration"]
    row["iteration_speedup"] = mean["cold"] / mean["jacobi+x2"]
    row["fused_bytes_ratio"] = bpi["cold"] / bpi["dual"]
    return row


@register_bench("qeq")
def run_qeq_bench(
    *,
    steps: int = 12,
    repeats: int = 3,
    out_path: str | None = DEFAULT_OUT,
    quiet: bool = False,
) -> dict:
    """Run the QEq solver bench on HNS; write BENCH_qeq.json."""
    results = {
        "benchmark": "qeq",
        "units": "seconds (best-of-repeats wall clock)",
        "schema_version": SCHEMA_VERSION,
        "workloads": [bench_hns_qeq(steps=steps, repeats=repeats)],
    }
    validate_bench(results)
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(results, fh, indent=2)
            fh.write("\n")
    if not quiet:
        print(format_qeq_report(results))
    return results


def format_qeq_report(results: dict) -> str:
    lines = ["QEq solver: iterations-to-tolerance and wall clock by config"]
    for row in results["workloads"]:
        lines.append(
            f"  {row['workload']} natoms={row['natoms']} "
            f"tol={row['qeq_tol']:g} steps={row['steps']} "
            f"(means over solves {row['warmup_solves']}..)"
        )
        for label, _, _, _ in MODES:
            lines.append(
                f"    {label:<10} {row['mean_iterations'][label]:6.2f} "
                f"iters/solve  "
                f"{row['spmv_bytes_per_iteration'][label]:>8d} B/iter  "
                f"{row['run_seconds'][label] * 1e3:8.2f} ms/run"
            )
        lines.append(
            f"    iteration speedup (cold vs jacobi+x2): "
            f"{row['iteration_speedup']:.2f}x; fused traversal streams "
            f"{row['fused_bytes_ratio']:.2f}x the dual-pass bytes"
        )
    return "\n".join(lines)
