"""Wall-clock autotune benchmark: tuned config vs hand-picked modes.

Runs the melt force step under each hand-picked scatter mode (the
BENCH_hotpath.json measurement, reproduced exactly), then lets the
autotuner search the full mode space and times the step again under the
locked-in winner.  The acceptance claim is that the tuned step is at least
as fast as the best hand-picked mode, within the sentinel noise band — the
tuner must never lose to a human flipping switches.

The output ``BENCH_autotune.json`` declares ``"benchmark": "hotpath"``
(with a ``"variant": "autotune"`` marker) on purpose: it uses the same
workload and measurement schema, so the CI sentinel can compare the
``atomic``/``segmented`` columns directly against the committed
BENCH_hotpath.json baseline.  The extra ``tuned`` mode shows up there as
``new`` — informational, never failing the gate.
"""

from __future__ import annotations

import json

import repro.potentials  # noqa: F401  (register pair styles)
from repro.bench.registry import register_bench
from repro.bench.hotpath import _record, _step_samples
from repro.bench.stats import SCHEMA_VERSION, validate_bench
from repro.core import Lammps
from repro.core.neighbor import set_stencil_mode
from repro.graph import set_graph_mode
from repro.kokkos.segment import ATOMIC, SEGMENTED, force_scatter_mode, set_scatter_mode
from repro.workloads.melt import setup_melt

#: default output file (repo-root relative when run from the checkout)
DEFAULT_OUT = "BENCH_autotune.json"

TUNED = "tuned"


def bench_melt_autotuned(
    cells: int = 8,
    repeats: int = 10,
    tune_repeats: int = 3,
    seed: int = 0,
) -> dict:
    """Melt step timings: both hand-picked scatter modes, then the tuner's."""
    # deferred: repro.tune imports the sentinel constants through this
    # package's __init__, so a module-level import here would be circular
    from repro.tune import Autotuner

    lmp = Lammps(quiet=True)
    setup_melt(lmp, cells=cells, pair_style="lj/cut")
    lmp.run(0)
    out: dict = {
        "workload": "melt",
        "pair_style": "lj/cut",
        "natoms": int(lmp.natoms_total),
        "pairs": int(lmp.neigh_list.total_pairs),
        "repeats": repeats,
    }
    try:
        for mode in (ATOMIC, SEGMENTED):
            with force_scatter_mode(mode):
                _record(out, "step", mode, _step_samples(lmp, repeats))
        tuner = Autotuner(
            measure="wall", repeats=tune_repeats, seed=seed,
            plan_path=None, workload="melt", quiet=True,
        )
        tuner.tune(lmp)
        _record(out, "step", TUNED, _step_samples(lmp, repeats))
        out["tuned_config"] = tuner.result["config"]
        out["tuned_label"] = tuner.result["label"]
        out["tune_probes"] = tuner.probes
    finally:
        # the tuner locks modes via process-global overrides: clear them
        set_scatter_mode(None)
        set_stencil_mode(None)
        set_graph_mode(None)
    step = out["step_seconds"]
    out["steps_per_second"] = {m: 1.0 / s for m, s in step.items()}
    out["atom_steps_per_second"] = {m: out["natoms"] / s for m, s in step.items()}
    best_hand_picked = min(step[ATOMIC], step[SEGMENTED])
    out["tuned_vs_best_hand_picked"] = best_hand_picked / step[TUNED]
    return out


@register_bench("autotune")
def run_autotune_bench(
    *,
    repeats: int = 10,
    tune_repeats: int = 3,
    out_path: str | None = DEFAULT_OUT,
    quiet: bool = False,
) -> dict:
    """Run the tuned-vs-hand-picked melt bench; write BENCH_autotune.json."""
    results = {
        "benchmark": "hotpath",
        "variant": "autotune",
        "units": "seconds (best-of-repeats wall clock)",
        "schema_version": SCHEMA_VERSION,
        "workloads": [
            bench_melt_autotuned(repeats=repeats, tune_repeats=tune_repeats)
        ],
    }
    validate_bench(results)
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(results, fh, indent=2)
            fh.write("\n")
    if not quiet:
        print(format_autotune_report(results))
    return results


def format_autotune_report(results: dict) -> str:
    lines = ["autotune wall clock: tuned config vs hand-picked modes"]
    for row in results["workloads"]:
        step = row["step_seconds"]
        lines.append(
            f"  {row['workload']:<9} natoms={row['natoms']:<6} "
            f"step atomic {step[ATOMIC] * 1e3:8.3f} ms, "
            f"segmented {step[SEGMENTED] * 1e3:8.3f} ms, "
            f"tuned {step[TUNED] * 1e3:8.3f} ms "
            f"({row['tuned_vs_best_hand_picked']:.2f}x vs best hand-picked, "
            f"-> {row['tuned_label']})"
        )
    return "\n".join(lines)
