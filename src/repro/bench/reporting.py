"""Plain-text table/series formatting for the benchmark reproductions.

The paper's figures are line plots; the harness prints the underlying
series as aligned text tables so `pytest benchmarks/ --benchmark-only`
output doubles as the reproduction record (EXPERIMENTS.md embeds these).
"""

from __future__ import annotations

from typing import Any, Sequence


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Aligned monospace table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[k]) for r in cells)) if cells else len(h)
        for k, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    series: dict[str, list[tuple[Any, Any]]],
    title: str = "",
) -> str:
    """Multiple (x, y) series merged on x into one table."""
    xs = sorted({x for pts in series.values() for x, _ in pts}, key=float)
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        row: list[Any] = [x]
        for name in series:
            val = dict(series[name]).get(x)
            row.append(val)
        rows.append(row)
    return format_table(headers, rows, title=title)
