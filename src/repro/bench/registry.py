"""Named benchmark registry backing ``python -m repro --bench <name>``.

Bench modules register their entry point with :func:`register_bench`; the
CLI derives its ``--bench`` choices from :func:`bench_names` instead of a
hardcoded list, so adding a benchmark is one decorator — no CLI edit.
Importing :mod:`repro.bench` pulls in every bench module, which is what
populates the registry.
"""

from __future__ import annotations

from typing import Callable

_BENCHES: dict[str, Callable] = {}


def register_bench(name: str) -> Callable[[Callable], Callable]:
    """Class/function decorator: expose ``fn`` as ``--bench <name>``.

    The entry point must accept ``quiet: bool`` as a keyword.
    """

    def deco(fn: Callable) -> Callable:
        if name in _BENCHES:
            raise ValueError(f"benchmark {name!r} registered twice")
        _BENCHES[name] = fn
        return fn

    return deco


def bench_names() -> list[str]:
    """Registered benchmark names, sorted for stable ``--help`` output."""
    return sorted(_BENCHES)


def run_bench(name: str, *, quiet: bool = False):
    """Dispatch to a registered benchmark entry point.

    Unknown names fail with the shared did-you-mean hint listing the
    registry — the same contract as ``set_scatter_mode``/``create_tool``.
    """
    try:
        fn = _BENCHES[name]
    except KeyError:
        from repro.core.errors import unknown_choice

        raise KeyError(unknown_choice("benchmark", name, bench_names())) from None
    return fn(quiet=quiet)
