"""Wall-clock hot-path benchmark: segmented scatter vs ``np.add.at``.

The segmented-reduction subsystem (:mod:`repro.kokkos.segment`) replaces
every ``np.add.at``/``np.subtract.at`` in the force kernels.  This module
measures what that actually buys on real workloads, in wall-clock seconds,
and records the numbers to ``BENCH_hotpath.json`` so the performance
trajectory of the functional layer is tracked PR over PR.

Two timings per workload and contribution mode:

* ``scatter`` — the force-accumulation hot path alone: the exact scatter
  calls the force step issues (i-side add + j-side subtract over the
  in-cutoff pairs), replayed on precomputed pair data.  This isolates the
  conversion the paper's ScatterView discussion is about.
* ``step`` — one full ``pair.compute()`` (neighbor gather, distances,
  kernel evaluation, scatter, tallies), the end-to-end force step.

Both modes run the same pipeline; only :func:`force_scatter_mode` differs.
The ``<name>_seconds`` point estimates are best-of-``repeats`` (robust
against scheduler noise on shared CI runners); the sibling ``<name>_stats``
blocks record min/median/stdev/repeats so the regression sentinel can size
a noise band per measurement (:mod:`repro.bench.stats`).
"""

from __future__ import annotations

import json

import numpy as np

import repro.potentials  # noqa: F401  (register pair styles)
import repro.snap  # noqa: F401
from repro.bench.registry import register_bench
from repro.bench.stats import (
    SCHEMA_VERSION,
    collect_samples,
    summarize,
    validate_bench,
)
from repro.core import Lammps
from repro.graph import ON, force_graph_mode
from repro.kokkos.segment import ATOMIC, SEGMENTED, force_scatter_mode
from repro.workloads.melt import setup_melt
from repro.workloads.tantalum import setup_tantalum

#: default output file (repo-root relative when run from the checkout)
DEFAULT_OUT = "BENCH_hotpath.json"

#: step-mode key for the kernel-graph fused replay (segmented scatter +
#: captured/fused plan); sits alongside the scatter-mode keys
GRAPH = "graph"


def _build_melt(cells: int) -> Lammps:
    lmp = Lammps(quiet=True)
    setup_melt(lmp, cells=cells, pair_style="lj/cut")
    lmp.run(0)
    return lmp


def _build_tantalum(cells: int, twojmax: int) -> Lammps:
    lmp = Lammps(quiet=True)
    setup_tantalum(lmp, cells=cells, pair_style="snap", twojmax=twojmax)
    lmp.run(0)
    return lmp


def _melt_scatter_closure(lmp: Lammps):
    """The melt force step's scatter hot path, on frozen pair data.

    Reproduces exactly what :meth:`Pair.scatter_pair_forces` does for the
    in-cutoff pairs of the current neighbor list — the ten converted
    ``np.add.at`` sites distilled to their common shape.
    """
    from repro.kokkos.segment import scatter_add, scatter_sub

    atom, pair, nlist = lmp.atom, lmp.pair, lmp.neigh_list
    i, j, itype, jtype, cutsq = pair.pair_table(nlist, atom, "all")
    x = atom.x[: atom.nall]
    dx = x[i] - x[j]
    rsq = np.einsum("ij,ij->i", dx, dx)
    mask = rsq < cutsq
    i, j, dx, rsq = i[mask], j[mask], dx[mask], rsq[mask]
    fpair, _ = pair.pair_eval(rsq, itype[mask], jtype[mask])
    fvec = fpair[:, None] * dx
    f = np.zeros_like(atom.f)

    def run() -> None:
        scatter_add(f, i, fvec, assume_sorted=True)
        scatter_sub(f, j, fvec)

    return run


def _step_samples(lmp: Lammps, repeats: int) -> list[float]:
    atom, pair = lmp.atom, lmp.pair

    def run() -> None:
        atom.f[: atom.nall] = 0.0
        pair.compute(True, True)

    return collect_samples(run, repeats)


def _record(row: dict, name: str, mode: str, samples: list[float]) -> None:
    """File one measurement's repeat samples under ``<name>_seconds`` (min,
    the historical point estimate) and ``<name>_stats`` (full summary)."""
    stats = summarize(samples)
    row.setdefault(f"{name}_seconds", {})[mode] = stats["min"]
    row.setdefault(f"{name}_stats", {})[mode] = stats


def bench_melt(cells: int = 8, repeats: int = 10) -> dict:
    """LJ melt rows: scatter hot path and full force step, both modes."""
    lmp = _build_melt(cells)
    scatter = _melt_scatter_closure(lmp)
    out: dict = {
        "workload": "melt",
        "pair_style": "lj/cut",
        "natoms": int(lmp.natoms_total),
        "pairs": int(lmp.neigh_list.total_pairs),
        "repeats": repeats,
    }
    for mode in (ATOMIC, SEGMENTED):
        with force_scatter_mode(mode):
            _record(out, "scatter", mode, collect_samples(scatter, repeats))
            _record(out, "step", mode, _step_samples(lmp, repeats))
    # kernel-graph fused replay on top of the segmented winner: the first
    # (warmup) step captures and fuses the dispatch DAG, the timed steps
    # replay the cached plan
    with force_scatter_mode(SEGMENTED), force_graph_mode(ON):
        _record(out, "step", GRAPH, _step_samples(lmp, repeats))
    _finish(out)
    return out


def bench_tantalum(cells: int = 3, twojmax: int = 8, repeats: int = 3) -> dict:
    """SNAP/Ta rows: full force step both modes (the scatters are embedded
    in the U/Y/bispectrum contraction kernels, not separable)."""
    lmp = _build_tantalum(cells, twojmax)
    out: dict = {
        "workload": "tantalum",
        "pair_style": "snap",
        "twojmax": twojmax,
        "natoms": int(lmp.natoms_total),
        "repeats": repeats,
    }
    for mode in (ATOMIC, SEGMENTED):
        with force_scatter_mode(mode):
            _record(out, "step", mode, _step_samples(lmp, repeats))
    _finish(out)
    return out


def _finish(row: dict) -> None:
    """Derive steps/sec, atom-steps/sec, and the segmented-over-atomic
    speedups from the raw timings."""
    step = row["step_seconds"]
    row["steps_per_second"] = {m: 1.0 / s for m, s in step.items()}
    row["atom_steps_per_second"] = {
        m: row["natoms"] / s for m, s in step.items()
    }
    row["step_speedup"] = step[ATOMIC] / step[SEGMENTED]
    if GRAPH in step:
        row["graph_speedup"] = step[SEGMENTED] / step[GRAPH]
    if "scatter_seconds" in row:
        sc = row["scatter_seconds"]
        row["scatter_speedup"] = sc[ATOMIC] / sc[SEGMENTED]


@register_bench("hotpath")
def run_hotpath_bench(
    *,
    melt_repeats: int = 10,
    snap_repeats: int = 3,
    out_path: str | None = DEFAULT_OUT,
    quiet: bool = False,
) -> dict:
    """Run both workloads, optionally write ``BENCH_hotpath.json``."""
    results = {
        "benchmark": "hotpath",
        "units": "seconds (best-of-repeats wall clock)",
        "schema_version": SCHEMA_VERSION,
        "workloads": [
            bench_melt(repeats=melt_repeats),
            bench_tantalum(repeats=snap_repeats),
        ],
    }
    validate_bench(results)
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(results, fh, indent=2)
            fh.write("\n")
    if not quiet:
        print(format_hotpath_report(results))
    return results


def format_hotpath_report(results: dict) -> str:
    lines = ["hot-path wall clock: segmented reduction vs np.add.at"]
    for row in results["workloads"]:
        lines.append(
            f"  {row['workload']:<9} natoms={row['natoms']:<6} "
            f"step {row['step_seconds'][ATOMIC] * 1e3:8.3f} -> "
            f"{row['step_seconds'][SEGMENTED] * 1e3:8.3f} ms  "
            f"({row['step_speedup']:.2f}x)"
        )
        if "scatter_speedup" in row:
            lines.append(
                f"  {'':<9} scatter hot path "
                f"{row['scatter_seconds'][ATOMIC] * 1e3:8.3f} -> "
                f"{row['scatter_seconds'][SEGMENTED] * 1e3:8.3f} ms  "
                f"({row['scatter_speedup']:.2f}x)"
            )
        if "graph_speedup" in row:
            lines.append(
                f"  {'':<9} fused graph step "
                f"{row['step_seconds'][SEGMENTED] * 1e3:8.3f} -> "
                f"{row['step_seconds'][GRAPH] * 1e3:8.3f} ms  "
                f"({row['graph_speedup']:.2f}x)"
            )
    return "\n".join(lines)
