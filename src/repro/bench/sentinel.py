"""CI perf-regression sentinel: fresh BENCH_*.json vs committed baseline.

``python -m repro --sentinel FRESH BASELINE`` compares every measurement a
wall-clock bench records (the ``<name>_seconds`` mode dicts, e.g. melt
``step_seconds[segmented]``) against the committed baseline, using the
recorded repeat statistics to size a per-measurement noise band:

    band = max(rel_floor, z * max(cv_baseline, cv_fresh))
    cv   = stdev / median            (coefficient of variation)

A measurement is **regressed** only when the fresh minimum exceeds the
baseline minimum by more than the band — beyond-noise-band, the
"confirmed" regression CI gates on — and **improved** symmetrically.
Everything in between is **ok**.  Measurements present on only one side
are reported (``new`` / ``missing``) but never fail the verdict; schema
problems do (a baseline that can't be validated can't clear anything).

The verdict is machine-readable JSON (``--sentinel-out``) so CI can both
gate on the exit code and upload the artifact::

    {"verdict": "pass" | "fail",
     "regressions": 3, "improvements": 1, "checked": 14,
     "comparisons": [{"workload": "melt", "measurement": "step_seconds",
                      "mode": "segmented", "status": "regressed",
                      "baseline": ..., "fresh": ..., "ratio": 1.41,
                      "band": 0.35}, ...]}

The default ``rel_floor`` is deliberately generous (35%): shared CI
runners jitter, and a sentinel that cries wolf gets deleted.  Local runs
can tighten it with ``--rel-floor``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.stats import (
    SECONDS_SUFFIX,
    STATS_SUFFIX,
    measurement_keys,
    validate_bench,
)

#: default relative noise floor (35%): below this, never call a regression
REL_FLOOR = 0.35
#: stdev multiplier for the measured-noise part of the band
Z_SCORE = 3.0


def load_bench(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def _cv(stats_block: dict | None) -> float:
    """Coefficient of variation from a min/median/stdev block (0 if absent)."""
    if not stats_block:
        return 0.0
    median = stats_block.get("median", 0.0)
    if not median:
        return 0.0
    return stats_block.get("stdev", 0.0) / median


def compare(
    fresh: dict,
    baseline: dict,
    *,
    rel_floor: float = REL_FLOOR,
    z: float = Z_SCORE,
) -> dict:
    """Noise-aware comparison; returns the verdict dict described above."""
    for side, results in (("fresh", fresh), ("baseline", baseline)):
        try:
            validate_bench(results)
        except ValueError as err:
            return {
                "verdict": "fail",
                "error": f"{side} bench failed validation: {err}",
                "comparisons": [],
                "checked": 0,
                "regressions": 0,
                "improvements": 0,
            }
    if fresh.get("benchmark") != baseline.get("benchmark"):
        return {
            "verdict": "fail",
            "error": (
                f"benchmark mismatch: fresh {fresh.get('benchmark')!r} vs "
                f"baseline {baseline.get('benchmark')!r}"
            ),
            "comparisons": [],
            "checked": 0,
            "regressions": 0,
            "improvements": 0,
        }

    base_rows = {row["workload"]: row for row in baseline["workloads"]}
    comparisons: list[dict] = []
    for row in fresh["workloads"]:
        wname = row["workload"]
        base_row = base_rows.pop(wname, None)
        if base_row is None:
            comparisons.append(
                {"workload": wname, "measurement": None, "mode": None,
                 "status": "new"}
            )
            continue
        for seconds_key in measurement_keys(row):
            stats_key = seconds_key[: -len(SECONDS_SUFFIX)] + STATS_SUFFIX
            base_seconds = base_row.get(seconds_key, {})
            for mode, fresh_min in row[seconds_key].items():
                entry = {
                    "workload": wname,
                    "measurement": seconds_key,
                    "mode": mode,
                }
                base_min = base_seconds.get(mode)
                if base_min is None:
                    comparisons.append(dict(entry, status="new"))
                    continue
                band = max(
                    rel_floor,
                    z * max(
                        _cv(base_row.get(stats_key, {}).get(mode)),
                        _cv(row.get(stats_key, {}).get(mode)),
                    ),
                )
                ratio = fresh_min / base_min if base_min > 0 else float("inf")
                if ratio > 1.0 + band:
                    status = "regressed"
                elif ratio < 1.0 - band:
                    status = "improved"
                else:
                    status = "ok"
                comparisons.append(
                    dict(
                        entry,
                        status=status,
                        baseline=base_min,
                        fresh=fresh_min,
                        ratio=ratio,
                        band=band,
                    )
                )
        # measurements only the baseline has
        for seconds_key in measurement_keys(base_row):
            for mode in base_row[seconds_key]:
                if mode not in row.get(seconds_key, {}):
                    comparisons.append(
                        {"workload": wname, "measurement": seconds_key,
                         "mode": mode, "status": "missing"}
                    )
    for wname in base_rows:
        comparisons.append(
            {"workload": wname, "measurement": None, "mode": None,
             "status": "missing"}
        )

    regressions = sum(c["status"] == "regressed" for c in comparisons)
    improvements = sum(c["status"] == "improved" for c in comparisons)
    checked = sum(c["status"] in ("ok", "regressed", "improved")
                  for c in comparisons)
    return {
        "verdict": "fail" if regressions else "pass",
        "benchmark": fresh.get("benchmark"),
        "rel_floor": rel_floor,
        "z": z,
        "checked": checked,
        "regressions": regressions,
        "improvements": improvements,
        "comparisons": comparisons,
    }


def format_verdict(verdict: dict) -> str:
    lines = [
        f"sentinel [{verdict.get('benchmark', '?')}]: "
        f"{verdict['verdict'].upper()} — {verdict['checked']} checked, "
        f"{verdict['regressions']} regressed, "
        f"{verdict['improvements']} improved"
    ]
    if "error" in verdict:
        lines.append(f"  error: {verdict['error']}")
    for c in verdict["comparisons"]:
        if c["status"] in ("ok",):
            continue
        if c["status"] in ("new", "missing"):
            lines.append(
                f"  {c['status']:<9} {c['workload']} "
                f"{c.get('measurement') or ''} {c.get('mode') or ''}".rstrip()
            )
            continue
        arrow = "SLOWER" if c["status"] == "regressed" else "faster"
        lines.append(
            f"  {c['status']:<9} {c['workload']}.{c['measurement']}"
            f"[{c['mode']}]: {c['baseline']:.6f}s -> {c['fresh']:.6f}s "
            f"({c['ratio']:.2f}x, {arrow}; noise band ±{c['band'] * 100:.0f}%)"
        )
    return "\n".join(lines)


def run_sentinel(
    fresh_path: str,
    baseline_path: str,
    *,
    out_path: str | None = None,
    rel_floor: float = REL_FLOOR,
    z: float = Z_SCORE,
    quiet: bool = False,
) -> dict:
    """Compare two bench files; write the verdict; return it."""
    verdict = compare(
        load_bench(fresh_path), load_bench(baseline_path),
        rel_floor=rel_floor, z=z,
    )
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(verdict, fh, indent=2)
            fh.write("\n")
    if not quiet:
        print(format_verdict(verdict))
    return verdict


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(
        prog="python -m repro.bench.sentinel",
        description="noise-aware BENCH_*.json regression gate",
    )
    p.add_argument("fresh", help="freshly-run bench JSON")
    p.add_argument("baseline", help="committed baseline bench JSON")
    p.add_argument("-o", "--out", default=None, help="write verdict JSON here")
    p.add_argument("--rel-floor", type=float, default=REL_FLOOR,
                   help=f"relative noise floor (default {REL_FLOOR})")
    p.add_argument("--z", type=float, default=Z_SCORE,
                   help=f"stdev multiplier for the noise band (default {Z_SCORE})")
    args = p.parse_args(argv)
    verdict = run_sentinel(
        args.fresh, args.baseline,
        out_path=args.out, rel_floor=args.rel_floor, z=args.z,
    )
    return 1 if verdict["verdict"] == "fail" else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
