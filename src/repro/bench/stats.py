"""Repeat statistics and the shared BENCH_*.json schema contract.

Every wall-clock benchmark used to record only the best-of-repeats number.
The regression sentinel (:mod:`repro.bench.sentinel`) needs to know how
noisy a measurement is before calling a difference a regression, so bench
rows now carry a stats block per measurement::

    "step_seconds":  {"atomic": 0.0126, "segmented": 0.0095},      # min
    "step_stats":    {"atomic":  {"min": ..., "median": ..,
                                  "stdev": .., "repeats": 10}, ...}

``<name>_seconds`` keeps the historical meaning (minimum over repeats, the
robust point estimate on shared CI runners); the sibling ``<name>_stats``
adds median/stdev/repeat-count.  ``schema_version`` at the top level gates
consumers: version 2 is the first with stats blocks.

:func:`validate_bench` is the small validator the benches run before
writing and the sentinel runs on both sides of a comparison.
"""

from __future__ import annotations

import statistics
import time
from typing import Callable

#: current BENCH_*.json schema: 2 = repeat-stats blocks + schema_version
SCHEMA_VERSION = 2

#: suffix convention linking a timing dict to its stats dict
SECONDS_SUFFIX = "_seconds"
STATS_SUFFIX = "_stats"


def summarize(samples: list[float]) -> dict:
    """min/median/stdev/repeats of one measurement's repeat samples."""
    if not samples:
        raise ValueError("no samples to summarize")
    return {
        "min": min(samples),
        "median": statistics.median(samples),
        "stdev": statistics.stdev(samples) if len(samples) > 1 else 0.0,
        "repeats": len(samples),
    }


def collect_samples(fn: Callable[[], None], repeats: int) -> list[float]:
    """Wall-clock seconds per call over ``repeats`` calls (after one warmup)."""
    fn()
    samples: list[float] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return samples


def measurement_keys(row: dict) -> list[str]:
    """The ``<name>_seconds`` mode-dict measurements present in a bench row."""
    return [
        key
        for key, value in row.items()
        if key.endswith(SECONDS_SUFFIX)
        and isinstance(value, dict)
        and all(isinstance(v, (int, float)) for v in value.values())
    ]


def validate_bench(results: dict) -> None:
    """Raise ``ValueError`` unless ``results`` matches the stats schema.

    Checks the shape shared by every wall-clock bench: top-level identity
    keys, ``schema_version``, and — for each ``<name>_seconds`` measurement
    in each workload row — a consistent ``<name>_stats`` block whose
    ``min`` equals the recorded point estimate.
    """
    for key in ("benchmark", "units", "workloads", "schema_version"):
        if key not in results:
            raise ValueError(f"bench JSON missing top-level {key!r}")
    if results["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"bench schema_version {results['schema_version']!r} != "
            f"{SCHEMA_VERSION} (rebless the baseline: see TESTING.md)"
        )
    for row in results["workloads"]:
        wname = row.get("workload", "?")
        if "workload" not in row:
            raise ValueError("workload row missing 'workload'")
        for seconds_key in measurement_keys(row):
            stats_key = seconds_key[: -len(SECONDS_SUFFIX)] + STATS_SUFFIX
            stats = row.get(stats_key)
            if stats is None:
                raise ValueError(
                    f"workload {wname!r}: {seconds_key!r} has no {stats_key!r}"
                )
            for mode, point in row[seconds_key].items():
                block = stats.get(mode)
                if block is None:
                    raise ValueError(
                        f"workload {wname!r}: {stats_key!r} missing mode {mode!r}"
                    )
                for field in ("min", "median", "stdev", "repeats"):
                    if field not in block:
                        raise ValueError(
                            f"workload {wname!r}: {stats_key}[{mode!r}] "
                            f"missing {field!r}"
                        )
                if abs(block["min"] - point) > 1e-12 * max(abs(point), 1.0):
                    raise ValueError(
                        f"workload {wname!r}: {seconds_key}[{mode!r}]="
                        f"{point} disagrees with its stats min {block['min']}"
                    )
                if block["median"] < block["min"]:
                    raise ValueError(
                        f"workload {wname!r}: {stats_key}[{mode!r}] median "
                        "below min"
                    )
