"""Wall-clock neighbor-subsystem benchmark: shared BinGrid vs legacy builder.

The neighbor overhaul (shared :class:`~repro.core.bin_grid.BinGrid`,
half-stencil builds, skin-amortized multi-cutoff lists, spatial atom
sorting) targets the cost that dominates once force kernels are fast
(paper section 4.1).  This module measures what it actually buys, in
wall-clock seconds, and records the numbers to ``BENCH_neighbor.json``:

* ``rebuild`` — one isolated ``build_neighbor_list`` call on the melt
  configuration, legacy 27-stencil path vs the shared-grid half-stencil
  path, on frozen coordinates (the acceptance-criterion measurement).
* ``step`` — end-to-end ``run()`` wall clock per step in both modes, so
  regressions anywhere in the rebuild pipeline (sorting, grid assembly,
  bond-list caching) show up against the old builder.
* ``grid_builds_per_rebuild`` — on the ReaxFF HNS workload, the number of
  :class:`BinGrid` assemblies per neighbor rebuild.  Exactly 1.0 means the
  pair list *and* the bond-search list shared one grid; the pre-overhaul
  pipeline re-binned for the bond list every force call.

The ``<name>_seconds`` point estimates are best-of-``repeats`` (robust
against scheduler noise on shared CI runners); sibling ``<name>_stats``
blocks record min/median/stdev/repeats for the regression sentinel's noise
band (:mod:`repro.bench.stats`).  Mode comparisons run on fresh,
identically-seeded engines.
"""

from __future__ import annotations

import json
import time

import repro.potentials  # noqa: F401  (register pair styles)
import repro.reaxff  # noqa: F401
import repro.snap  # noqa: F401
from repro.bench.registry import register_bench
from repro.bench.stats import SCHEMA_VERSION, summarize, validate_bench
from repro.core import Lammps
from repro.core.bin_grid import BinGrid
from repro.core.neighbor import (
    LEGACY,
    SHARED,
    build_neighbor_list,
    force_stencil_mode,
)
from repro.workloads.hns import setup_hns
from repro.workloads.melt import setup_melt
from repro.workloads.tantalum import setup_tantalum

#: default output file (repo-root relative when run from the checkout)
DEFAULT_OUT = "BENCH_neighbor.json"

#: every workload row carries these keys — the schema guard in the test
#: suite pins them so downstream tooling can rely on the file shape
ROW_KEYS = ("workload", "pair_style", "natoms", "step_seconds", "step_speedup")


def _fresh(workload: str) -> Lammps:
    """A ready-to-run engine for one workload (fixed seeds throughout)."""
    lmp = Lammps(quiet=True)
    if workload == "melt":
        setup_melt(lmp, cells=8, pair_style="lj/cut")
    elif workload == "hns":
        # the production 10 A taper exceeds the small test box; 5 A keeps
        # cutghost inside the domain while exercising the full pipeline
        setup_hns(lmp, pair_style="reaxff cutoff 5.0")
    elif workload == "tantalum":
        setup_tantalum(lmp, cells=3, pair_style="snap", twojmax=8)
    else:  # pragma: no cover - internal misuse
        raise ValueError(f"unknown workload {workload!r}")
    lmp.run(0)
    return lmp


def _step_samples(workload: str, nsteps: int, repeats: int) -> dict:
    """Per-step wall-second samples for ``nsteps`` dynamics, both modes.

    Modes are interleaved within each repeat — running all of one mode's
    repeats before the other lets slow machine-load drift masquerade as a
    speedup (or a regression) between the two halves of the measurement.
    """
    samples: dict = {LEGACY: [], SHARED: []}
    for _ in range(repeats):
        for mode in (LEGACY, SHARED):
            with force_stencil_mode(mode):
                lmp = _fresh(workload)
                lmp.run(2)  # warmup: JIT-less but primes allocators/caches
                t0 = time.perf_counter()
                lmp.run(nsteps)
                samples[mode].append((time.perf_counter() - t0) / nsteps)
    return samples


def _record(row: dict, name: str, samples: dict) -> None:
    """File per-mode repeat samples under ``<name>_seconds`` (min, the
    historical point estimate) and ``<name>_stats`` (full summary)."""
    row[f"{name}_seconds"] = {m: min(s) for m, s in samples.items()}
    row[f"{name}_stats"] = {m: summarize(s) for m, s in samples.items()}


def bench_melt(repeats: int = 5, nsteps: int = 20) -> dict:
    """Melt rows: isolated rebuild wall clock (the 2x criterion) + steps."""
    with force_stencil_mode(SHARED):
        lmp = _fresh("melt")
    atom = lmp.atom
    x = atom.x[: atom.nall].copy()  # frozen coordinates: identical work
    nlocal = atom.nlocal
    cutghost = lmp.pair.max_cutoff() + lmp.neighbor.skin
    style, newton = lmp.pair.neighbor_request()

    out: dict = {
        "workload": "melt",
        "pair_style": "lj/cut",
        "natoms": int(lmp.natoms_total),
        "pairs": int(lmp.neigh_list.total_pairs),
        "repeats": repeats,
    }
    rebuild: dict = {LEGACY: [], SHARED: []}
    for mode in (LEGACY, SHARED):  # warm both paths before timing
        with force_stencil_mode(mode):
            build_neighbor_list(x, nlocal, cutghost, style=style, newton=newton)
    for _ in range(repeats):  # interleaved: drift hits both modes alike
        for mode in (LEGACY, SHARED):
            with force_stencil_mode(mode):
                t0 = time.perf_counter()
                build_neighbor_list(
                    x, nlocal, cutghost, style=style, newton=newton
                )
                rebuild[mode].append(time.perf_counter() - t0)
    _record(out, "rebuild", rebuild)
    _record(out, "step", _step_samples("melt", nsteps, 2))
    out["rebuild_speedup"] = (
        out["rebuild_seconds"][LEGACY] / out["rebuild_seconds"][SHARED]
    )
    _finish(out)
    return out


def bench_hns(nsteps: int = 12) -> dict:
    """ReaxFF HNS row: end-to-end steps + the one-grid-per-rebuild counter.

    ``neigh_modify every 10 check no`` means a 12-step run performs a known
    handful of rebuilds; the :class:`BinGrid` construction counter across
    the run divided by the rebuild count is the shared-grid assertion.
    """
    out: dict = {
        "workload": "hns",
        "pair_style": "reaxff",
    }
    _record(out, "step", _step_samples("hns", nsteps, 2))
    with force_stencil_mode(SHARED):
        lmp = _fresh("hns")
        builds0 = lmp.neighbor.builds
        grids0 = BinGrid.builds_total
        lmp.run(nsteps)
        rebuilds = lmp.neighbor.builds - builds0
        grids = BinGrid.builds_total - grids0
    out["natoms"] = int(lmp.natoms_total)
    out["steps"] = nsteps
    out["rebuilds"] = int(rebuilds)
    out["grid_builds_per_rebuild"] = grids / max(rebuilds, 1)
    _finish(out)
    return out


def bench_tantalum(nsteps: int = 3, repeats: int = 3) -> dict:
    """SNAP/Ta row: the expensive-force regime, where neighbor cost must at
    least never regress end-to-end."""
    out: dict = {
        "workload": "tantalum",
        "pair_style": "snap",
    }
    _record(out, "step", _step_samples("tantalum", nsteps, repeats))
    with force_stencil_mode(SHARED):
        lmp = _fresh("tantalum")
    out["natoms"] = int(lmp.natoms_total)
    out["steps"] = nsteps
    _finish(out)
    return out


def _finish(row: dict) -> None:
    step = row["step_seconds"]
    row["step_speedup"] = step[LEGACY] / step[SHARED]


def validate_neighbor_bench(results: dict) -> None:
    """Raise ``ValueError`` unless ``results`` matches the published schema.

    CI runs this on the freshly-written ``BENCH_neighbor.json``; the test
    suite runs it on the checked-in copy, so schema drift is caught on both
    ends before downstream tooling sees it.
    """
    for key in ("benchmark", "units", "workloads"):
        if key not in results:
            raise ValueError(f"neighbor bench JSON missing top-level {key!r}")
    if results["benchmark"] != "neighbor":
        raise ValueError(f"unexpected benchmark id {results['benchmark']!r}")
    names = []
    for row in results["workloads"]:
        for key in ROW_KEYS:
            if key not in row:
                raise ValueError(
                    f"workload row {row.get('workload', '?')!r} missing {key!r}"
                )
        for mode in (LEGACY, SHARED):
            if mode not in row["step_seconds"]:
                raise ValueError(
                    f"workload {row['workload']!r} missing {mode} step timing"
                )
        names.append(row["workload"])
    for required in ("melt", "hns", "tantalum"):
        if required not in names:
            raise ValueError(f"neighbor bench missing workload {required!r}")
    melt = results["workloads"][names.index("melt")]
    for key in ("rebuild_seconds", "rebuild_speedup"):
        if key not in melt:
            raise ValueError(f"melt row missing {key!r}")
    hns = results["workloads"][names.index("hns")]
    if "grid_builds_per_rebuild" not in hns:
        raise ValueError("hns row missing 'grid_builds_per_rebuild'")


@register_bench("neighbor")
def run_neighbor_bench(
    *,
    melt_repeats: int = 5,
    out_path: str | None = DEFAULT_OUT,
    quiet: bool = False,
) -> dict:
    """Run all workloads, optionally write ``BENCH_neighbor.json``."""
    results = {
        "benchmark": "neighbor",
        "units": "seconds (best-of-repeats wall clock)",
        "schema_version": SCHEMA_VERSION,
        "workloads": [
            bench_melt(repeats=melt_repeats),
            bench_hns(),
            bench_tantalum(),
        ],
    }
    validate_neighbor_bench(results)
    validate_bench(results)
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(results, fh, indent=2)
            fh.write("\n")
    if not quiet:
        print(format_neighbor_report(results))
    return results


def format_neighbor_report(results: dict) -> str:
    lines = ["neighbor wall clock: shared bin grid vs legacy 27-stencil"]
    for row in results["workloads"]:
        lines.append(
            f"  {row['workload']:<9} natoms={row['natoms']:<6} "
            f"step {row['step_seconds'][LEGACY] * 1e3:8.3f} -> "
            f"{row['step_seconds'][SHARED] * 1e3:8.3f} ms  "
            f"({row['step_speedup']:.2f}x)"
        )
        if "rebuild_seconds" in row:
            lines.append(
                f"  {'':<9} isolated rebuild "
                f"{row['rebuild_seconds'][LEGACY] * 1e3:8.3f} -> "
                f"{row['rebuild_seconds'][SHARED] * 1e3:8.3f} ms  "
                f"({row['rebuild_speedup']:.2f}x)"
            )
        if "grid_builds_per_rebuild" in row:
            lines.append(
                f"  {'':<9} bin-grid builds per rebuild = "
                f"{row['grid_builds_per_rebuild']:.2f} "
                f"(over {row['rebuilds']} rebuilds)"
            )
    return "\n".join(lines)
