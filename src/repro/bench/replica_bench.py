"""Wall-clock replica-batching benchmark: R stacked runs vs R solo runs.

Small systems leave most of each kernel dispatch's fixed overhead unamortized
— exactly the regime the paper's work-batching results target.  This bench
runs R small LJ melt replicas two ways:

* **sequential** — R fresh solo ``run(steps)`` calls, the baseline a
  parameter-sweep script would pay today;
* **batched** — the same R replicas folded into one
  :class:`~repro.replica.batch.ReplicaBatch` and advanced with one set of
  vectorized kernels over R-times-longer stacked arrays.

The headline ``run`` timing covers the stepping phase only — replica
construction and setup are identical work in both paths (``add_replica``
performs the same setup a solo ``run`` does) and are recorded separately as
``setup``, so the per-step speedup is not diluted by shared fixed cost.
Per-replica trajectories must be bitwise identical between the two paths —
asserted here on every repeat, not just in the test suite — so the speedup
is never bought with drift.  The acceptance floor (batched >= 2x faster per
step) is enforced by ``benchmarks/test_wallclock_replica.py`` against the
JSON this writes.
"""

from __future__ import annotations

import json
import time

import numpy as np

import repro.potentials  # noqa: F401  (register pair styles)
from repro.bench.hotpath import _record
from repro.bench.registry import register_bench
from repro.bench.stats import SCHEMA_VERSION, validate_bench
from repro.core import Lammps
from repro.replica import ReplicaBatch
from repro.workloads import ReplicaSpec

#: default output file (repo-root relative when run from the checkout)
DEFAULT_OUT = "BENCH_replica.json"

#: replica count and melt size: 16 x 32 atoms — each replica far below
#: kernel-saturation size, the regime batching exists for.
NREPLICAS = 16
CELLS = 2


def _specs() -> list[ReplicaSpec]:
    # distinct velocity seeds so the batch carries 16 genuinely different
    # trajectories (identical replicas could hide indexing bugs)
    return [
        ReplicaSpec(family="melt", cells=CELLS, steps=0, seed=87287 + 13 * k)
        for k in range(NREPLICAS)
    ]


def _solo_state(lmp: Lammps) -> tuple[np.ndarray, np.ndarray]:
    n = lmp.atom.nlocal
    return lmp.atom.x[:n].copy(), lmp.atom.v[:n].copy()


def bench_replica_melt(steps: int = 100, repeats: int = 3) -> dict:
    row: dict = {
        "workload": "melt",
        "pair_style": "lj/cut",
        "replicas": NREPLICAS,
        "natoms": None,
        "steps": steps,
        "repeats": repeats,
    }
    seq_setup: list[float] = []
    seq_samples: list[float] = []
    bat_setup: list[float] = []
    bat_samples: list[float] = []
    # interleave the two modes within each repeat: systematic machine drift
    # (cache/allocator/governor state) then lands on both columns of the
    # same repeat instead of biasing one mode's entire sample set
    for _ in range(repeats):
        t0 = time.perf_counter()
        states = [spec.build() for spec in _specs()]
        seq_setup.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        for lmp in states:
            lmp.run(steps)
        seq_samples.append(time.perf_counter() - t0)
        reference = [_solo_state(lmp) for lmp in states]
        row["natoms"] = int(states[0].natoms_total)

        t0 = time.perf_counter()
        batch = ReplicaBatch(label="bench")
        members = [spec.build() for spec in _specs()]
        for lmp in members:
            batch.add_replica(lmp)
        bat_setup.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        batch.step(steps)
        bat_samples.append(time.perf_counter() - t0)
        batch.finish()
        for lmp, (x, v) in zip(members, reference):
            n = lmp.atom.nlocal
            if not (
                np.array_equal(lmp.atom.x[:n], x)
                and np.array_equal(lmp.atom.v[:n], v)
            ):
                raise ValueError(
                    "replica bench: batched trajectory diverged bitwise "
                    "from the solo reference"
                )
    _record(row, "setup", "sequential", seq_setup)
    _record(row, "run", "sequential", seq_samples)
    _record(row, "setup", "batched", bat_setup)
    _record(row, "run", "batched", bat_samples)

    row["speedup"] = row["run_seconds"]["sequential"] / row["run_seconds"]["batched"]
    return row


@register_bench("replica")
def run_replica_bench(
    *,
    steps: int = 100,
    repeats: int = 3,
    out_path: str | None = DEFAULT_OUT,
    quiet: bool = False,
) -> dict:
    """Run the replica-batching bench; write BENCH_replica.json."""
    results = {
        "benchmark": "replica",
        "units": "seconds (best-of-repeats wall clock)",
        "schema_version": SCHEMA_VERSION,
        "workloads": [bench_replica_melt(steps=steps, repeats=repeats)],
    }
    validate_bench(results)
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(results, fh, indent=2)
            fh.write("\n")
    if not quiet:
        print(format_replica_report(results))
    return results


def format_replica_report(results: dict) -> str:
    lines = ["Replica batching: R solo runs vs one stacked batch (run phase)"]
    for row in results["workloads"]:
        seq = row["run_seconds"]["sequential"]
        bat = row["run_seconds"]["batched"]
        lines.append(
            f"  {row['workload']} R={row['replicas']} "
            f"natoms={row['natoms']}/replica steps={row['steps']}"
        )
        lines.append(
            f"    sequential {seq * 1e3:9.2f} ms   batched {bat * 1e3:9.2f} ms"
            f"   speedup {row['speedup']:.2f}x (bitwise-identical trajectories)"
        )
        lines.append(
            f"    setup (untimed in headline): sequential "
            f"{row['setup_seconds']['sequential'] * 1e3:.2f} ms   batched "
            f"{row['setup_seconds']['batched'] * 1e3:.2f} ms"
        )
    return "\n".join(lines)
