"""L1 / shared-memory cache model, including NVIDIA's dynamic carveout.

Section 4.4 of the paper isolates the impact of cache capacity on kernel
performance by sweeping the CUDA shared-memory *carveout* — the fraction of
the unified per-SM cache reserved for software-managed shared memory.  Three
behaviours emerge:

* kernels that rely on automatic L1 caching (``PairComputeLJCut``,
  ``ComputeYi``) lose up to ~50% at the maximum carveout;
* kernels that stage data in shared memory (``ComputeUi``,
  ``ComputeFusedDeidrj``) scale nearly linearly with the carveout because
  occupancy is proportional to shared-memory capacity;
* kernels using neither (ReaxFF's top kernels) move by <10%.

This module reproduces those mechanisms analytically:

* :func:`l1_hit_fraction` maps (L1 capacity, working set) to a hit rate with
  a saturating curve — the classic capacity-miss model;
* :func:`shared_occupancy` maps (shared capacity, per-team demand, desired
  resident teams) to an occupancy throttle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.gpu import GPUSpec


@dataclass(frozen=True)
class CacheConfig:
    """Resolved per-SM cache capacities for one kernel launch."""

    l1_kb: float
    shared_kb: float

    @classmethod
    def for_gpu(cls, gpu: GPUSpec, carveout: float | None = None) -> "CacheConfig":
        l1, shared = gpu.cache_split(carveout)
        return cls(l1_kb=l1, shared_kb=shared)


def l1_hit_fraction(l1_kb: float, working_set_kb: float, max_hit: float = 0.95) -> float:
    """Fraction of *reusable* traffic served by L1.

    A working set that fits entirely gets ``max_hit`` (some traffic always
    misses: cold misses, write-allocate).  Beyond capacity the hit rate decays
    with the capacity ratio — for an LRU cache under a scanning access
    pattern the retained fraction is roughly proportional to
    ``capacity / working_set``.
    """
    if working_set_kb <= 0.0:
        return max_hit
    if l1_kb <= 0.0:
        return 0.0
    ratio = l1_kb / working_set_kb
    # smooth saturating capacity curve (no artificial knee at ratio = 1):
    # hit -> max_hit as the cache dwarfs the working set, ~ratio below it
    return max_hit * ratio / (ratio + 0.25)


def l2_hit_fraction(l2_mb: float, working_set_mb: float, max_hit: float = 0.9) -> float:
    """Fraction of L1-miss traffic served by L2, same capacity model."""
    if working_set_mb <= 0.0:
        return max_hit
    if l2_mb <= 0.0:
        return 0.0
    ratio = l2_mb / working_set_mb
    if ratio >= 1.0:
        return max_hit
    return max_hit * ratio


def shared_occupancy(
    shared_kb: float,
    shared_kb_per_team: float,
    resident_teams_for_peak: int = 8,
    occ_half: float = 0.15,
) -> float:
    """Throughput factor for kernels that stage data in shared memory.

    A team (thread block) that asks for ``shared_kb_per_team`` limits how
    many teams an SM can keep resident — "occupancy is proportional to
    shared memory utilization" (paper section 4.4).  Two real-hardware
    effects temper the raw proportionality:

    * the launch always fits at least one team (CUDA grants a kernel's
      static shared request even when the carveout hint is smaller);
    * throughput saturates in occupancy (latency hiding), modeled by a Hill
      curve with half-constant ``occ_half`` and normalized to 1 at full
      occupancy.

    Kernels that use no shared memory are never throttled (returns 1.0).
    """
    if shared_kb_per_team <= 0.0:
        return 1.0
    resident = max(1.0, shared_kb / shared_kb_per_team)
    occ = min(1.0, resident / resident_teams_for_peak)
    return (occ / (occ + occ_half)) * (1.0 + occ_half)
