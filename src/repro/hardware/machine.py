"""Machine descriptions for the paper's scaling studies.

Section 5.2 scales LAMMPS on OLCF Frontier (AMD MI250X), NNSA El Capitan
(AMD MI300A), ALCF Aurora (Intel PVC), CSCS Alps (NVIDIA GH200), and NVIDIA
Eos (DGX H100, intentionally run at 4 GPUs/node to mimic Alps).  Each machine
is a node count, a GPUs-per-node figure (in *logical* GPUs: GCDs for MI250X,
stacks for PVC), a GPU spec, and a fabric.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cpu import CPUSpec, SKYLAKE_NODE
from repro.hardware.gpu import GPUSpec, get_gpu
from repro.hardware.network import NetworkSpec, NETWORKS


@dataclass(frozen=True)
class MachineSpec:
    """A GPU cluster: homogeneous nodes on one fabric."""

    name: str
    gpu: GPUSpec
    #: Logical GPUs per node — one MPI rank is placed per logical GPU
    #: (appendix B: "one MPI rank per GCD, and for PVC one MPI rank per
    #: stack").
    gpus_per_node: int
    network: NetworkSpec
    #: Largest node count exercised in the paper's figures.
    max_nodes: int
    #: NICs per node; the paper's runs use a 1:1 GPU:NIC ratio, so halo
    #: bandwidth scales with ranks per node up to this count.
    nics_per_node: int

    def ranks(self, nodes: int) -> int:
        """Total MPI ranks (= logical GPUs) at a node count."""
        if nodes < 1:
            raise ValueError("node count must be >= 1")
        return nodes * self.gpus_per_node


#: The five systems of section 5.2 / appendix C.
MACHINES: dict[str, MachineSpec] = {
    "frontier": MachineSpec(
        name="OLCF Frontier",
        gpu=get_gpu("MI250X"),
        gpus_per_node=8,  # 4 MI250X packages = 8 GCDs
        network=NETWORKS["slingshot11"],
        max_nodes=8192,
        nics_per_node=4,
    ),
    "elcapitan": MachineSpec(
        name="NNSA El Capitan",
        gpu=get_gpu("MI300A"),
        gpus_per_node=4,
        network=NETWORKS["slingshot11"],
        max_nodes=8192,
        nics_per_node=4,
    ),
    "aurora": MachineSpec(
        name="ALCF Aurora",
        gpu=get_gpu("PVC"),
        gpus_per_node=12,  # 6 PVC packages = 12 stacks
        network=NETWORKS["slingshot11"],
        max_nodes=2048,
        nics_per_node=8,
    ),
    "alps": MachineSpec(
        name="CSCS Alps",
        gpu=get_gpu("GH200"),
        gpus_per_node=4,
        network=NETWORKS["slingshot11"],
        max_nodes=2048,
        nics_per_node=4,
    ),
    "eos": MachineSpec(
        name="NVIDIA Eos (4 GPUs/node)",
        gpu=get_gpu("H100"),
        gpus_per_node=4,  # intentionally 4 of 8, matching the paper
        network=NETWORKS["ndr400"],
        max_nodes=256,
        nics_per_node=4,
    ),
}


def get_machine(name: str) -> MachineSpec:
    """Look up a machine by registry key, case-insensitively."""
    key = name.lower()
    if key not in MACHINES:
        raise KeyError(
            f"unknown machine {name!r}; available: {', '.join(sorted(MACHINES))}"
        )
    return MACHINES[key]


#: Baseline CPU node for figure 5 normalization.
REFERENCE_CPU: CPUSpec = SKYLAKE_NODE
