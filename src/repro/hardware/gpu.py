"""GPU architecture descriptions (paper Table 1, extended).

The first five columns reproduce Table 1 of the paper verbatim: HBM bandwidth
and capacity, FP64 throughput (excluding matrix units), and the L1 +
software-managed shared-memory ("LDS"/"SLM") capacities.  As in the paper,
AMD MI250X and Intel PVC entries describe a *single logical GPU* (one GCD or
one stack), not the full package.

The remaining fields are microarchitectural parameters the cost model needs
and which the paper discusses qualitatively: unified-cache carveout
flexibility (NVIDIA only, section 4.4), thread-atomic throughput (section
4.1's full-vs-half neighbor-list discussion), kernel launch latency (appendix
C's Alps-vs-Eos analysis), L2 capacity/bandwidth (appendix C.1: LJ is L2
throughput limited on GH200), and the available hardware concurrency
(section 5.1: "now exceed 200,000 simultaneously active threads").
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class GPUSpec:
    """One logical GPU (a GCD for MI250X, a stack for PVC).

    Units are chosen so arithmetic stays readable: bandwidths in TB/s,
    throughputs in TFLOP/s, capacities in GB/MB/kB as labeled, latencies in
    microseconds.
    """

    name: str
    vendor: str
    #: HBM bandwidth, TB/s (Table 1 "BW").
    hbm_bw_tbs: float
    #: HBM capacity, GB (Table 1 "Capacity").
    hbm_gb: float
    #: FP64 vector throughput, TFLOP/s (Table 1 "FP64").
    fp64_tflops: float
    #: Hardware-managed L1 capacity per SM/CU/Xe-core, kB.  For NVIDIA this
    #: is the *unified* capacity shared with shared memory (carveout splits
    #: it); for AMD/Intel it is the fixed L1 size (0 where "n/a").
    l1_kb: float
    #: Software-managed scratch (shared memory / LDS / SLM) per SM/CU, kB.
    #: For NVIDIA this is the maximum carveout of the unified capacity.
    shared_kb: float
    #: True when L1 and shared memory share one configurable pool (NVIDIA).
    unified_cache: bool
    #: Default shared-memory carveout fraction the runtime heuristic picks
    #: for a kernel with moderate scratch use (NVIDIA only; fixed otherwise).
    default_carveout: float
    #: Number of SMs / CUs / Xe-cores.
    sm_count: int
    #: Maximum resident threads per SM/CU.
    threads_per_sm: int
    #: SIMD width the scheduler issues (warp / wavefront / sub-group).
    warp_size: int
    #: Device-wide FP64 atomic-add throughput for *conflict-free* (well
    #: distributed) atomics, Gop/s — bounded by L2 atomic units.  Kernels
    #: with conflicting destinations apply their own serialization factor.
    atomic_gops: float
    #: Aggregate L1 / shared-memory bandwidth, TB/s (L1-throughput-limited
    #: kernels such as SNAP's ComputeYi are bounded by this).
    l1_bw_tbs: float
    #: L2 (or last-level on-die cache) capacity, MB.
    l2_mb: float
    #: L2 bandwidth, TB/s.
    l2_bw_tbs: float
    #: Kernel launch latency, microseconds.
    launch_latency_us: float
    #: Work items at which throughput reaches half of peak (thread-starvation
    #: Hill constant, see DESIGN.md section 3).  Roughly a fraction of the
    #: maximum concurrent thread count.
    saturation_half: float = field(default=0.0)

    @property
    def max_threads(self) -> int:
        """Maximum simultaneously active threads on the device."""
        return self.sm_count * self.threads_per_sm

    @property
    def hbm_bytes(self) -> float:
        """HBM capacity in bytes."""
        return self.hbm_gb * 1e9

    def cache_split(self, carveout: float | None = None) -> tuple[float, float]:
        """Return ``(l1_kb, shared_kb)`` for a given shared-memory carveout.

        ``carveout`` is the fraction of the unified pool reserved for shared
        memory (CUDA's "shared memory carveout").  On architectures without a
        unified pool the request is ignored and the fixed split is returned,
        mirroring how a carveout hint is a no-op outside NVIDIA hardware.
        """
        if not self.unified_cache:
            return self.l1_kb, self.shared_kb
        if carveout is None:
            carveout = self.default_carveout
        carveout = min(max(carveout, 0.0), 1.0)
        total = self.l1_kb  # unified pool size
        # Hopper always retains a small L1 slice even at max carveout
        # (256 kB pool -> 32 kB minimum L1, matching section 4.4's "leaves
        # only 32kB for L1").
        l1 = max(total * (1.0 - carveout), total * 0.125)
        shared = total - l1
        return l1, shared

    def __post_init__(self) -> None:
        if self.saturation_half <= 0.0:
            # Default: half-saturation at ~1/3 of peak concurrency.
            object.__setattr__(self, "saturation_half", self.max_threads / 3.0)


def _nvidia(name: str, **kw) -> GPUSpec:
    kw.setdefault("vendor", "NVIDIA")
    kw.setdefault("unified_cache", True)
    kw.setdefault("warp_size", 32)
    return GPUSpec(name=name, **kw)


#: Registry of the architectures in Table 1.  Dictionary keys are the short
#: names used throughout the benchmarks.
GPUS: dict[str, GPUSpec] = {
    "V100": _nvidia(
        "NVIDIA V100",
        hbm_bw_tbs=0.9,
        hbm_gb=16.0,
        fp64_tflops=7.8,
        l1_kb=128.0,
        shared_kb=96.0,
        default_carveout=0.5,
        sm_count=80,
        threads_per_sm=2048,
        atomic_gops=120.0,
        l1_bw_tbs=10.0,
        l2_mb=6.0,
        l2_bw_tbs=2.2,
        launch_latency_us=4.0,
    ),
    "A100": _nvidia(
        "NVIDIA A100",
        hbm_bw_tbs=1.5,
        hbm_gb=40.0,
        fp64_tflops=9.7,
        l1_kb=192.0,
        shared_kb=164.0,
        default_carveout=0.5,
        sm_count=108,
        threads_per_sm=2048,
        atomic_gops=350.0,
        l1_bw_tbs=19.0,
        l2_mb=40.0,
        l2_bw_tbs=4.5,
        launch_latency_us=3.5,
    ),
    "H100": _nvidia(
        "NVIDIA H100",
        hbm_bw_tbs=3.3,
        hbm_gb=80.0,
        fp64_tflops=34.0,
        l1_kb=256.0,
        shared_kb=228.0,
        default_carveout=0.5,
        sm_count=132,
        threads_per_sm=2048,
        atomic_gops=1000.0,
        l1_bw_tbs=30.0,
        l2_mb=50.0,
        l2_bw_tbs=7.5,
        launch_latency_us=3.0,
    ),
    "GH200": _nvidia(
        "NVIDIA GH200",
        hbm_bw_tbs=4.0,
        hbm_gb=96.0,
        fp64_tflops=34.0,
        l1_kb=256.0,
        shared_kb=228.0,
        default_carveout=0.5,
        sm_count=132,
        threads_per_sm=2048,
        atomic_gops=1000.0,
        l1_bw_tbs=30.0,
        # Appendix C: 20% higher L2 capacity (60 MiB) and commensurately
        # higher L2 throughput than H100.
        l2_mb=60.0,
        l2_bw_tbs=9.0,
        # Appendix C.1: "higher launch latencies on GH200".
        launch_latency_us=5.5,
    ),
    "MI250X": GPUSpec(
        name="AMD MI250X (1 GCD)",
        vendor="AMD",
        hbm_bw_tbs=1.6,
        hbm_gb=64.0,
        fp64_tflops=24.0,
        l1_kb=16.0,
        shared_kb=64.0,
        unified_cache=False,
        default_carveout=0.0,
        sm_count=110,
        threads_per_sm=2048,
        warp_size=64,
        atomic_gops=140.0,
        l1_bw_tbs=11.0,
        l2_mb=8.0,
        l2_bw_tbs=3.0,
        launch_latency_us=7.0,
    ),
    "MI300A": GPUSpec(
        name="AMD MI300A",
        vendor="AMD",
        hbm_bw_tbs=5.3,
        hbm_gb=128.0,
        fp64_tflops=61.0,
        l1_kb=32.0,
        shared_kb=64.0,
        unified_cache=False,
        default_carveout=0.0,
        sm_count=228,
        threads_per_sm=2048,
        warp_size=64,
        atomic_gops=850.0,
        l1_bw_tbs=24.0,
        l2_mb=32.0,
        l2_bw_tbs=8.0,
        launch_latency_us=6.5,
    ),
    "PVC": GPUSpec(
        name="Intel PVC (1 stack)",
        vendor="Intel",
        hbm_bw_tbs=1.6,
        hbm_gb=64.0,
        fp64_tflops=26.0,
        l1_kb=0.0,  # Table 1 lists L1 as "n/a"
        shared_kb=128.0,
        unified_cache=False,
        default_carveout=0.0,
        sm_count=64,
        threads_per_sm=2048,
        warp_size=32,
        atomic_gops=180.0,
        l1_bw_tbs=13.0,
        l2_mb=204.0,
        l2_bw_tbs=3.2,
        launch_latency_us=9.0,
    ),
}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU by registry key (e.g. ``"H100"``), case-insensitively."""
    key = name.upper()
    if key not in GPUS:
        raise KeyError(
            f"unknown GPU {name!r}; available: {', '.join(sorted(GPUS))}"
        )
    return GPUS[key]
