"""Interconnect models for the scaling studies (figures 6 and 7).

The paper's machines use HPE Slingshot-11 (Frontier, El Capitan, Aurora,
Alps) or NVIDIA NDR-400 InfiniBand (Eos), each in a 1:1 GPU-to-NIC ratio.
Appendix C notes the two fabrics have comparable bandwidths, which is why the
Alps and Eos curves lie on top of each other.

We use the standard alpha-beta (latency-bandwidth) model: a message of ``n``
bytes costs ``alpha + n / beta``, and an allreduce over ``p`` ranks costs
``2 * ceil(log2 p) * alpha`` plus a bandwidth term for the payload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkSpec:
    """Point-to-point and collective cost parameters for one fabric."""

    name: str
    #: One-way message latency between GPUs on different nodes, microseconds.
    #: Includes the GPU-aware MPI stack overhead, not just wire time.
    latency_us: float
    #: Per-NIC injection bandwidth, GB/s.
    nic_bw_gbs: float

    def ptp_time(self, nbytes: float) -> float:
        """Seconds for one point-to-point message."""
        if nbytes < 0:
            raise ValueError("message size must be non-negative")
        return self.latency_us * 1e-6 + nbytes / (self.nic_bw_gbs * 1e9)

    def halo_time(self, nbytes_per_face: float, faces: int = 6) -> float:
        """Seconds for a 3-D halo exchange (LAMMPS's 6-way brick pattern).

        LAMMPS exchanges faces in 3 sequential dimension phases of 2
        concurrent messages each, so latency is paid per phase.
        """
        phases = max(1, faces // 2)
        return phases * self.latency_us * 1e-6 + faces * nbytes_per_face / (
            self.nic_bw_gbs * 1e9
        )

    def allreduce_time(self, nbytes: float, nranks: int) -> float:
        """Seconds for an allreduce (recursive doubling latency model)."""
        if nranks <= 1:
            return 0.0
        hops = 2.0 * math.ceil(math.log2(nranks))
        return hops * self.latency_us * 1e-6 + 2.0 * nbytes / (self.nic_bw_gbs * 1e9)


#: Fabrics appearing in the paper.  Slingshot-11 is 200 Gb/s (25 GB/s) per
#: NIC; NDR InfiniBand is 400 Gb/s (50 GB/s) per NIC — but Eos nodes in the
#: paper's configuration pair one NIC per GPU just like Alps, and appendix C
#: reports the *achieved* bandwidths are comparable.
NETWORKS: dict[str, NetworkSpec] = {
    "slingshot11": NetworkSpec("HPE Slingshot-11", latency_us=6.0, nic_bw_gbs=23.0),
    "ndr400": NetworkSpec("NVIDIA NDR-400 InfiniBand", latency_us=5.0, nic_bw_gbs=46.0),
    "loopback": NetworkSpec("single-node loopback", latency_us=0.0, nic_bw_gbs=1e6),
}
