"""CPU node description.

Figure 5 of the paper normalizes every GPU result by a 36-core Intel Skylake
node running the base (non-Kokkos) MPI LAMMPS code.  We model that node with
the same roofline vocabulary as the GPUs so the normalization is
apples-to-apples inside the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CPUSpec:
    """A multi-core CPU node used as the normalization baseline."""

    name: str
    cores: int
    #: Sustained FP64 throughput, TFLOP/s (node aggregate, AVX-512 derated
    #: for the frequency drop and non-FMA instruction mix typical of MD).
    fp64_tflops: float
    #: Sustained memory bandwidth, TB/s (node aggregate, STREAM-like).
    mem_bw_tbs: float
    #: Last-level cache capacity, MB (node aggregate).
    llc_mb: float
    #: Per-core L1+L2 capacity, kB — neighbor-list traversal working sets
    #: on CPUs live here.
    core_cache_kb: float
    #: Effective per-"kernel" dispatch overhead, microseconds.  CPUs do not
    #: launch kernels; this captures loop-entry and OpenMP-style fork/join
    #: costs and is intentionally tiny.
    launch_latency_us: float = 0.3

    @property
    def max_threads(self) -> int:
        """One MPI rank per core, the common LAMMPS CPU configuration."""
        return self.cores


#: 2 x 18-core Intel Xeon Skylake node, the Figure 5 baseline.
SKYLAKE_NODE = CPUSpec(
    name="Intel Skylake 36-core node",
    cores=36,
    fp64_tflops=1.4,  # AVX-512 peak; per-kernel efficiency factors derate it
    mem_bw_tbs=0.20,
    llc_mb=50.0,
    core_cache_kb=1088.0,  # 32 kB L1D + 1 MB L2
)
