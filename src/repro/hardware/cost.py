"""Analytic kernel cost model (roofline + latency + atomics + caches).

DESIGN.md section 3 defines the contract: every Kokkos-style kernel declares
a :class:`KernelProfile` of its resource demands, and the
:class:`KernelCostModel` converts that profile plus a hardware description
into simulated device seconds.  Simulated kernel time is

``t = launches * launch_latency
    + max(t_flops, t_hbm, t_l2, t_atomic) / (saturation * occupancy)``

with

* ``t_flops``  — FP64 work over the device FP64 rate, derated by lane
  divergence (section 4.2.1's motivation for pre-processing kernels);
* ``t_hbm``    — bytes that actually reach HBM after the L1/L2 capacity
  model of :mod:`repro.hardware.cache`;
* ``t_l2``     — total L2-level traffic over L2 bandwidth (appendix C.1:
  the LJ force kernel is L2-throughput limited on GH200);
* ``t_atomic`` — FP64 atomic additions over the device atomic rate
  (section 4.1's full-vs-half neighbor list trade-off);
* ``saturation`` — a Hill curve in exposed parallelism capturing thread
  starvation at small problem sizes (figure 4);
* ``occupancy`` — the shared-memory occupancy throttle (figure 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.hardware.cache import (
    CacheConfig,
    l1_hit_fraction,
    l2_hit_fraction,
    shared_occupancy,
)
from repro.hardware.cpu import CPUSpec
from repro.hardware.gpu import GPUSpec


@dataclass(frozen=True)
class KernelProfile:
    """Resource demands of one kernel launch (totals, not per item).

    Kernels compute these from their actual workload statistics (atom count,
    average neighbors, quantum-number index space size, ...), so the model's
    inputs are grounded in the functional simulation.
    """

    name: str
    #: Total FP64 operations.
    flops: float = 0.0
    #: Compulsory HBM traffic in bytes (streaming loads/stores with no reuse).
    bytes_streamed: float = 0.0
    #: Traffic in bytes that caches *can* absorb given enough capacity
    #: (neighbor coordinates, U/Y matrices, lookup tables).
    bytes_reusable: float = 0.0
    #: Per-SM working set backing the reusable traffic, kB.
    l1_working_set_kb: float = 0.0
    #: Device-level working set for the L2 model, MB.
    l2_working_set_mb: float = 0.0
    #: Software-managed scratch demand per team, kB (0 = unused).
    shared_kb_per_team: float = 0.0
    #: FP64 atomic additions.
    atomic_ops: float = 0.0
    #: Extra combine-step traffic of ScatterView's duplicated strategy in
    #: bytes (the per-thread copies folded into the target, section 3.2) —
    #: priced as memory traffic, distinct from the atomic-rate term.
    duplicated_bytes: float = 0.0
    #: Exposed parallelism in independent work items (threads).
    parallel_items: float = 1.0
    #: Fraction of scheduled lanes doing useful work (1.0 = convergent).
    convergent_fraction: float = 1.0
    #: Number of kernel launches this profile represents.
    launches: int = 1
    #: Fraction of CPU peak FP64 this kernel's loop structure achieves on a
    #: multicore host (irregular neighbor gathers vectorize poorly ~0.05;
    #: dense quantum-number loops reach ~0.15).  Drives the figure 5
    #: normalization against the Skylake baseline.
    cpu_efficiency: float = 0.06
    #: Contiguous work items mapped to adjacent lanes (section 4.3.2's batch
    #: size v).  0 = not applicable.  Below the warp granularity, memory
    #: transactions fragment; the cost model derates cache throughput by
    #: ``v / (v + warp/4)``.
    batch_width: float = 0.0

    def scaled(self, factor: float) -> "KernelProfile":
        """Profile for ``factor``-times the work (same per-item character).

        Working sets scale with the work for device-level structures but the
        per-SM working set is a property of the blocking strategy and is kept
        fixed; parallelism scales with the work.
        """
        return replace(
            self,
            flops=self.flops * factor,
            bytes_streamed=self.bytes_streamed * factor,
            bytes_reusable=self.bytes_reusable * factor,
            l2_working_set_mb=self.l2_working_set_mb * factor,
            atomic_ops=self.atomic_ops * factor,
            duplicated_bytes=self.duplicated_bytes * factor,
            parallel_items=self.parallel_items * factor,
        )

    def __add__(self, other: "KernelProfile") -> "KernelProfile":
        """Aggregate two sequential launches (for ledger roll-ups)."""
        return KernelProfile(
            name=self.name if self.name == other.name else f"{self.name}+{other.name}",
            flops=self.flops + other.flops,
            bytes_streamed=self.bytes_streamed + other.bytes_streamed,
            bytes_reusable=self.bytes_reusable + other.bytes_reusable,
            l1_working_set_kb=max(self.l1_working_set_kb, other.l1_working_set_kb),
            l2_working_set_mb=max(self.l2_working_set_mb, other.l2_working_set_mb),
            shared_kb_per_team=max(self.shared_kb_per_team, other.shared_kb_per_team),
            atomic_ops=self.atomic_ops + other.atomic_ops,
            duplicated_bytes=self.duplicated_bytes + other.duplicated_bytes,
            parallel_items=max(self.parallel_items, other.parallel_items),
            convergent_fraction=min(self.convergent_fraction, other.convergent_fraction),
            launches=self.launches + other.launches,
            cpu_efficiency=min(self.cpu_efficiency, other.cpu_efficiency),
            batch_width=max(self.batch_width, other.batch_width),
        )


def fuse_profiles(
    profiles: list[KernelProfile],
    *,
    name: str,
    saved_intermediate_bytes: float = 0.0,
) -> KernelProfile:
    """Price a fused composite dispatch (kernel-graph elementwise fusion).

    The fused kernel does all the member stages' arithmetic but launches
    once, and buffers that live entirely inside the fused body never round-
    trip through memory between stages — ``saved_intermediate_bytes`` (a
    write plus a later read per eliminated buffer) comes off the streamed
    traffic.  Cache working sets and parallelism follow the ``__add__``
    aggregation rules (max, not sum: the stages share one index space).
    """
    if not profiles:
        raise ValueError("fuse_profiles needs at least one profile")
    total = profiles[0]
    for prof in profiles[1:]:
        total = total + prof
    return replace(
        total,
        name=name,
        launches=1,
        bytes_streamed=max(total.bytes_streamed - saved_intermediate_bytes, 0.0),
    )


def heuristic_carveout(profile: KernelProfile, gpu: GPUSpec) -> float:
    """The Kokkos-style runtime carveout heuristic (paper section 4.4).

    Kokkos picks the carveout from the kernel's scratch request: kernels with
    no shared-memory use get the whole pool as L1; scratch-staging kernels get
    enough shared memory for full occupancy (8 resident teams), capped at the
    hardware maximum.
    """
    if not gpu.unified_cache or profile.shared_kb_per_team <= 0.0:
        return 0.0
    want_kb = 8.0 * profile.shared_kb_per_team
    return min(1.0, want_kb / gpu.l1_kb)


@dataclass
class KernelCostModel:
    """Evaluates :class:`KernelProfile` objects against hardware specs."""

    #: Maximum L1 hit fraction (cold/write-allocate misses always remain).
    max_l1_hit: float = 0.95
    #: Maximum L2 hit fraction for L1 misses.
    max_l2_hit: float = 0.9
    #: Resident teams per SM needed for full occupancy.
    resident_teams_for_peak: int = 8

    # ---------------------------------------------------------------- GPU
    def gpu_time(
        self,
        profile: KernelProfile,
        gpu: GPUSpec,
        carveout: float | None = None,
    ) -> float:
        """Simulated seconds for one launch sequence on ``gpu``.

        ``carveout`` overrides the runtime heuristic, mirroring the paper's
        figure 3 experiment ("we overwrote that heuristic and simply forced a
        specific carveout value").
        """
        if carveout is None:
            carveout = heuristic_carveout(profile, gpu)
        cache = CacheConfig.for_gpu(gpu, carveout)

        # Memory hierarchy: reusable traffic filters through L1 then L2;
        # streamed traffic goes through L2 to HBM (no reuse, no L1 benefit).
        hit1 = l1_hit_fraction(cache.l1_kb, profile.l1_working_set_kb, self.max_l1_hit)
        l1_hits = profile.bytes_reusable * hit1
        l1_misses = profile.bytes_reusable * (1.0 - hit1)
        hit2 = l2_hit_fraction(gpu.l2_mb, profile.l2_working_set_mb, self.max_l2_hit)
        # the duplicated-strategy combine pass streams every copy through the
        # hierarchy once — extra traffic, but never atomic-rate limited
        hbm_bytes = (
            profile.bytes_streamed
            + profile.duplicated_bytes
            + l1_misses * (1.0 - hit2)
        )
        l2_bytes = profile.bytes_streamed + profile.duplicated_bytes + l1_misses

        t_hbm = hbm_bytes / (gpu.hbm_bw_tbs * 1e12)
        t_l2 = l2_bytes / (gpu.l2_bw_tbs * 1e12)
        t_l1 = l1_hits / (gpu.l1_bw_tbs * 1e12)
        if profile.batch_width > 0.0:
            # transaction-granularity derate: tiles narrower than the warp
            # fragment cache lines ("v needs to be large enough to achieve
            # well-behaved memory transactions", section 4.3.2)
            t_l1 /= profile.batch_width / (profile.batch_width + gpu.warp_size / 4.0)
        t_flops = profile.flops / (
            gpu.fp64_tflops * 1e12 * max(profile.convergent_fraction, 1e-6)
        )
        t_atomic = profile.atomic_ops / (gpu.atomic_gops * 1e9)

        sat = self._saturation(profile.parallel_items, gpu.saturation_half)
        occ = shared_occupancy(
            cache.shared_kb,
            profile.shared_kb_per_team,
            self.resident_teams_for_peak,
        )
        busy = max(t_hbm, t_l2, t_l1, t_flops, t_atomic) / (sat * occ)
        return profile.launches * gpu.launch_latency_us * 1e-6 + busy

    # ---------------------------------------------------------------- CPU
    def cpu_time(self, profile: KernelProfile, cpu: CPUSpec) -> float:
        """Simulated seconds on a CPU node.

        CPUs see no atomic penalty (LAMMPS uses one rank per core: forces are
        accumulated privately, paper section 4.1) and no shared-memory
        occupancy effects; the divergence penalty is also absent because
        scalar cores predicate cheaply.  Caches are generous per-thread, so
        reusable traffic mostly hits.
        """
        hit = l1_hit_fraction(cpu.core_cache_kb, profile.l1_working_set_kb, 0.98)
        misses = profile.bytes_reusable * (1.0 - hit)
        hit_llc = l2_hit_fraction(cpu.llc_mb, profile.l2_working_set_mb, self.max_l2_hit)
        mem_bytes = (
            profile.bytes_streamed
            + profile.duplicated_bytes
            + misses * (1.0 - hit_llc)
        )

        t_mem = mem_bytes / (cpu.mem_bw_tbs * 1e12)
        t_flops = profile.flops / (
            cpu.fp64_tflops * 1e12 * max(profile.cpu_efficiency, 1e-3)
        )
        # CPU parallelism saturates at the core count.
        sat = self._saturation(profile.parallel_items, cpu.max_threads / 2.0)
        busy = max(t_mem, t_flops) / sat
        return profile.launches * cpu.launch_latency_us * 1e-6 + busy

    def time(
        self,
        profile: KernelProfile,
        device: GPUSpec | CPUSpec,
        carveout: float | None = None,
    ) -> float:
        """Dispatch on device kind."""
        if isinstance(device, GPUSpec):
            return self.gpu_time(profile, device, carveout)
        return self.cpu_time(profile, device)

    @staticmethod
    def _saturation(parallel_items: float, half: float) -> float:
        """Hill curve: throughput fraction achieved at a given concurrency."""
        p = max(parallel_items, 1.0)
        return p / (p + max(half, 1.0))


def neighbor_build_profiles(
    *,
    pairs: int,
    nall: int,
    nlocal: int,
    binned: bool = True,
    sorted_atoms: bool = False,
) -> list[KernelProfile]:
    """Priced kernels of one neighbor rebuild (paper section 4.1).

    Three launches mirror the build pipeline:

    * ``NeighborBinAssembly`` — the counting-sort bin pass: stream the
      coordinates once, scatter-count into bin counters (the atomic term),
      then write the bin-major permutation and its inverse.  Emitted only
      when a fresh grid was assembled — a list served by the shared
      per-rebuild grid skips it, which is exactly the saving the shared
      :class:`~repro.core.bin_grid.BinGrid` buys.
    * ``NeighborBuild`` — the stencil scan + distance filter.  The formula
      is deliberately kept from the pre-overhaul model (it conservatively
      folds the bin counters in), so figure projections are comparable
      across the neighbor-subsystem change.
    * ``AtomSort`` — the ``atom_modify sort`` permutation: every per-atom
      field read and rewritten once, pure bandwidth.

    Returns the profiles in launch order; callers dispatch each through the
    Kokkos layer so the timeline records them individually.
    """
    profiles: list[KernelProfile] = []
    if sorted_atoms:
        # x/v/f rows (3 x 24 B) + q/rho/fp (3 x 8 B) + tag (8 B) + type (4 B),
        # read old + write new
        profiles.append(
            KernelProfile(
                name="AtomSort",
                bytes_streamed=2.0 * 108.0 * nlocal,
                parallel_items=float(max(nlocal, 1)),
            )
        )
    if binned:
        profiles.append(
            KernelProfile(
                name="NeighborBinAssembly",
                # coordinates in (24 B) + key/order/inverse passes (3 x 8 B)
                bytes_streamed=48.0 * nall,
                atomic_ops=float(nall),  # scatter-count into bin counters
                parallel_items=float(max(nall, 1)),
            )
        )
    profiles.append(
        KernelProfile(
            name="NeighborBuild",
            flops=12.0 * pairs,
            bytes_streamed=8.0 * pairs + 64.0 * nall,
            atomic_ops=float(nall),  # bin counters
            parallel_items=float(max(nlocal, 1)),
        )
    )
    return profiles


def overlapped_phase_time(
    t_comm: float, t_interior: float, t_boundary: float
) -> float:
    """Step-time accounting with comm/compute overlap.

    The halo exchange runs concurrently with the interior force pass, so
    the pair costs ``max(comm, interior)``; the boundary pass waits for the
    ghosts and is fully exposed.  This replaces the serial
    ``comm + interior + boundary`` accounting when overlap is on.
    """
    if min(t_comm, t_interior, t_boundary) < 0.0:
        raise ValueError("phase times must be non-negative")
    return max(t_comm, t_interior) + t_boundary


@dataclass
class DeviceTimeline:
    """Ledger of simulated device time, by kernel name.

    The Kokkos dispatch layer records into the *active* timeline (see
    :mod:`repro.kokkos.profiling`); benchmarks read totals and per-kernel
    breakdowns from here.
    """

    entries: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)
    #: Running total, maintained incrementally so phase timers can snapshot
    #: the clock in O(1) instead of summing the ledger per region boundary.
    cum_seconds: float = 0.0

    def record(self, name: str, seconds: float) -> None:
        if seconds < 0.0:
            raise ValueError(f"negative kernel time for {name!r}: {seconds}")
        self.entries[name] = self.entries.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1
        self.cum_seconds += seconds

    def total(self) -> float:
        return math.fsum(self.entries.values())

    def kernel_total(self, name: str) -> float:
        return self.entries.get(name, 0.0)

    def reset(self) -> None:
        self.entries.clear()
        self.counts.clear()
        self.cum_seconds = 0.0

    def breakdown(self) -> list[tuple[str, float, int]]:
        """Per-kernel ``(name, seconds, launches)`` sorted by cost."""
        return sorted(
            ((k, v, self.counts[k]) for k, v in self.entries.items()),
            key=lambda row: -row[1],
        )
