"""Hardware performance models substituting for real exascale silicon.

The paper's evaluation runs on NVIDIA V100/A100/H100/GH200, AMD MI250X/MI300A,
and Intel PVC GPUs, wired into Slingshot-11 or NDR-400 fabrics.  None of that
hardware is available here, so this package provides the substitution layer
described in DESIGN.md section 1: architecture descriptions built from the
paper's own Table 1 (plus public microarchitecture parameters), an analytic
roofline-plus-latency kernel cost model, an L1/shared-memory cache model with
NVIDIA's dynamic carveout, and alpha-beta network models for the machines in
the scaling studies.

Every Kokkos-style kernel in :mod:`repro.kokkos` declares a
:class:`~repro.hardware.cost.KernelProfile`; dispatching the kernel both runs
its NumPy implementation and charges simulated device time computed by
:class:`~repro.hardware.cost.KernelCostModel` to the active
:class:`~repro.hardware.cost.DeviceTimeline`.
"""

from repro.hardware.gpu import GPUSpec, GPUS, get_gpu
from repro.hardware.cpu import CPUSpec, SKYLAKE_NODE
from repro.hardware.cache import CacheConfig
from repro.hardware.cost import KernelProfile, KernelCostModel, DeviceTimeline
from repro.hardware.network import NetworkSpec, NETWORKS
from repro.hardware.machine import MachineSpec, MACHINES, get_machine

__all__ = [
    "GPUSpec",
    "GPUS",
    "get_gpu",
    "CPUSpec",
    "SKYLAKE_NODE",
    "CacheConfig",
    "KernelProfile",
    "KernelCostModel",
    "DeviceTimeline",
    "NetworkSpec",
    "NETWORKS",
    "MachineSpec",
    "MACHINES",
    "get_machine",
]
