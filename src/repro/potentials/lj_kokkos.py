"""Kokkos-accelerated Lennard-Jones: ``pair_style lj/cut/kk``.

The derived class supplies only the LJ force/energy expression
(:meth:`LJMixin.pair_eval`); the generic pairwise machinery — list style,
ScatterView deconfliction, cutoff checks, tallies, hierarchical-parallelism
variant — lives in :class:`~repro.potentials.pair_kokkos.PairKokkos`,
"a unified source for the logic and implementation of the multiple
execution policies" (section 4.1).
"""

from __future__ import annotations

from repro.core.styles import register_pair
from repro.potentials.lj import LJMixin
from repro.potentials.pair_kokkos import PairKokkos


@register_pair("lj/cut/kk")
class PairLJCutKokkos(LJMixin, PairKokkos):
    """LJ on the Kokkos path (device by default, host via ``/kk/host``)."""

    def kernel_name(self) -> str:
        return "PairComputeLJCut"
