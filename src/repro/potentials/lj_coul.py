"""Charged pairwise style: ``pair_style lj/cut/coul/cut`` (+ ``/kk``).

Section 4 of the paper: "electrically charged systems may add the Coulomb
potential as well."  LJ dispersion plus a cut-off Coulomb term

    E = 4 eps [(s/r)^12 - (s/r)^6]  +  C q_i q_j / r

with independent LJ and Coulomb cutoffs, LAMMPS-style.  The Kokkos variant
again reuses the whole pair_kokkos execution machinery; the only addition
is that ``pair_eval_q`` consumes the charge array.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InputError
from repro.core.styles import register_pair
from repro.potentials.lj import LJMixin
from repro.potentials.pair import Pair
from repro.potentials.pair_kokkos import PairKokkos


class LJCoulMixin(LJMixin):
    """LJ + cut Coulomb coefficient handling and kernel."""

    def settings(self, args: list[str]) -> None:
        if len(args) < 1:
            raise InputError("pair_style lj/cut/coul/cut <cut_lj> [cut_coul]")
        super().settings(args[:1])
        self.cut_coul = float(args[1]) if len(args) > 1 else self.cut_global
        if self.cut_coul <= 0:
            raise InputError("coulomb cutoff must be positive")

    def init(self) -> None:
        super().init()
        # the interaction (neighbor) cutoff is the larger of the two; the
        # LJ term keeps its own table for masking inside the kernel
        self.cut_lj = self.cut.copy()
        grown = np.maximum(self.cut, self.cut_coul)
        self.cut = np.where(self.setflag, grown, self.cut)

    def pair_eval_q(
        self,
        rsq: np.ndarray,
        itype: np.ndarray,
        jtype: np.ndarray,
        qi: np.ndarray,
        qj: np.ndarray,
        qqr2e: float,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(fpair, evdwl, ecoul)`` with each term masked by its own cutoff."""
        r2inv = 1.0 / rsq
        lj_mask = rsq < self.cut_lj[itype, jtype] ** 2
        # call the LJ expression explicitly: the Kokkos subclass overrides
        # pair_eval to route through this method (avoid the cycle)
        fpair, evdwl = LJMixin.pair_eval(self, rsq, itype, jtype)
        fpair = np.where(lj_mask, fpair, 0.0)
        evdwl = np.where(lj_mask, evdwl, 0.0)

        coul_mask = rsq < self.cut_coul**2
        rinv = np.sqrt(r2inv)
        ecoul = np.where(coul_mask, qqr2e * qi * qj * rinv, 0.0)
        fpair = fpair + ecoul * r2inv  # d/dr of C q q / r, over r
        return fpair, evdwl, ecoul


@register_pair("lj/cut/coul/cut")
class PairLJCutCoulCut(LJCoulMixin, Pair):
    """Host charged LJ with a half neighbor list."""

    def compute(self, eflag: bool = True, vflag: bool = True) -> None:
        lmp = self.lmp
        atom = lmp.atom
        nlist = lmp.neigh_list
        self.reset_tallies()
        if nlist is None or nlist.total_pairs == 0:
            return
        i, j, itype, jtype, cutsq = self.pair_table(nlist, atom)
        x = atom.x[: atom.nall]
        q = atom.q[: atom.nall]
        dx = x[i] - x[j]
        rsq = np.einsum("ij,ij->i", dx, dx)
        mask = rsq < cutsq
        i, j, dx, rsq = i[mask], j[mask], dx[mask], rsq[mask]
        itype, jtype = itype[mask], jtype[mask]
        fpair, evdwl, ecoul = self.pair_eval_q(
            rsq, itype, jtype, q[i], q[j], lmp.update.units.qqr2e
        )
        fvec = fpair[:, None] * dx
        jlocal = j < atom.nlocal
        self.scatter_pair_forces(atom, i, j, fvec, jlocal, lmp.newton_pair)
        if eflag or vflag:
            self.tally_pairs(
                evdwl, dx, fpair, jlocal,
                full_list=False, newton=lmp.newton_pair, ecoul=ecoul,
            )


@register_pair("lj/cut/coul/cut/kk")
class PairLJCutCoulCutKokkos(LJCoulMixin, PairKokkos):
    """Charged LJ on the shared Kokkos machinery.

    Overrides the generic evaluation hook to thread charges through;
    everything else — list styles, ScatterView, team variant, profiles —
    is inherited.
    """

    # pair_eval reconstructs the charge pairing from whole-list order, which
    # a phase-restricted pair batch would break.
    supports_overlap = False

    def kernel_name(self) -> str:
        return "PairComputeLJCutCoulCut"

    def compute(self, eflag: bool = True, vflag: bool = True) -> None:
        # stash charge context for pair_eval (the generic kernel calls
        # pair_eval(rsq, itype, jtype) per masked pair batch)
        atom = self.lmp.atom
        self._q = atom.q[: atom.nall]
        self._nlist = self.lmp.neigh_list
        super().compute(eflag, vflag)

    def pair_eval(self, rsq, itype, jtype):
        # reconstruct the (i, j) charge pairing from the masked pair batch:
        # the base class evaluates pairs in list order after the cutoff mask
        i, j = self._nlist.ij_pairs()
        x = self.lmp.atom_kk.view("x", self.execution_space).data
        dx = x[i] - x[j]
        full_rsq = np.einsum("ij,ij->i", dx, dx)
        cutsq = self.cut[self.lmp.atom.type[i], self.lmp.atom.type[j]] ** 2
        mask = full_rsq < cutsq
        qi = self._q[i[mask]]
        qj = self._q[j[mask]]
        fpair, evdwl, ecoul = self.pair_eval_q(
            rsq, itype, jtype, qi, qj, self.lmp.update.units.qqr2e
        )
        # fold coulomb into the vdW tally (the generic base tallies one
        # energy channel; the host style splits them)
        return fpair, evdwl + ecoul
