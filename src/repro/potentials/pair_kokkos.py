"""The ``pair_kokkos`` abstraction (paper section 4.1).

"In the KOKKOS package, most two-body forces are implemented through a
pair_kokkos abstraction.  Each two-body pair style derives from a base
PairKokkos class ... The derived class implements its own kernels that only
compute the pairwise force and, if required, energy for the specific
potential form.  The base class handles all other details: neighbor list
style, managing ScatterView objects, radial cutoff calculations,
accumulating forces and energies."

The base implemented here is exactly that: derived styles supply
``pair_eval(rsq, itype, jtype) -> (fpair, evdwl)`` and the base runs the
generic pairwise kernel in any of the section 4.1 configurations:

* ``neigh full`` (default on Device) — duplicated work, no write conflicts;
* ``neigh half`` — ScatterView-deconflicted accumulation (atomics on
  Device, duplication on Host), optional ``newton on`` ghost reduction;
* ``team on`` — hierarchical parallelism over each atom's neighbors, the
  small-problem optimization of figure 2a.

Each launch charges a :class:`KernelProfile` assembled from the *measured*
workload (stored pairs, in-cutoff fraction, neighbor statistics), so the
figure 2 benchmarks read model time grounded in functional runs.
"""

from __future__ import annotations

import numpy as np

import repro.kokkos as kk
from repro.core.errors import InputError
from repro.graph import plan as graph_plan
from repro.kokkos.core import Device, Host
from repro.kokkos.scatter_view import ScatterView
from repro.kokkos.segment import scatter_add, scatter_mode
from repro.potentials.pair import Pair

#: FP64 operations per attempted pair in a generic cheap pair kernel
#: (distance, cutoff test, powers, force/energy assembly).
FLOPS_PER_PAIR = 23.0
#: Per-atom overhead flops (loop setup, force reduction).
FLOPS_PER_ATOM = 12.0


class PairKokkos(Pair):
    """Generic Kokkos pairwise base."""

    kokkos_style = True
    #: Per-neighbor L1 working-set contribution, bytes: gathered neighbor
    #: coordinates stay hot across consecutive atoms sharing bins (~40 atoms'
    #: rows touch overlapping coordinate sets).
    l1_bytes_per_neighbor = 200.0
    #: Force-array atomics hit conflicting destinations (every neighbor of
    #: an atom updates the same row), serializing relative to the device's
    #: distributed-atomic rate.
    atomic_conflict_factor = 4.0
    #: Irregular neighbor gathers vectorize poorly on CPUs.
    cpu_efficiency = 0.05

    def __init__(self, lmp, args: list[str], execution_space: str = "device") -> None:
        self.execution_space = Device if execution_space == "device" else Host
        # Section 4.1 defaults: full list / newton off on GPUs, half list /
        # newton on for CPU-resident execution.
        self.neigh_mode = "full" if self.execution_space is Device else "half"
        self.newton_mode = self.execution_space is Host
        self.team_mode = False
        super().__init__(lmp, args)

    # ------------------------------------------------------------- options
    def set_options(
        self,
        *,
        neigh: str | None = None,
        newton: bool | None = None,
        team: bool | None = None,
    ) -> None:
        """Select the kernel configuration (the figure 2 experiment knobs)."""
        if neigh is not None:
            if neigh not in ("half", "full"):
                raise InputError(f"neigh option must be half/full, got {neigh!r}")
            self.neigh_mode = neigh
        if newton is not None:
            self.newton_mode = newton
        if team is not None:
            self.team_mode = team
        if self.neigh_mode == "full" and self.newton_mode:
            raise InputError("newton on requires a half neighbor list")

    def init(self) -> None:
        super().init()
        # `package kokkos` overrides (section 3.3)
        pkg = getattr(self.lmp, "package_kokkos", {})
        if "neigh" in pkg:
            self.neigh_mode = pkg["neigh"]
        if "newton" in pkg:
            self.newton_mode = pkg["newton"]
        if self.neigh_mode == "full" and self.newton_mode:
            raise InputError("package kokkos: newton on requires neigh half")

    def neighbor_request(self) -> tuple[str, bool]:
        return self.neigh_mode, self.newton_mode

    # ------------------------------------------------------------- kernels
    supports_overlap = True

    def kernel_name(self) -> str:
        return f"PairCompute{type(self).__name__.removeprefix('Pair')}"

    def compute(self, eflag: bool = True, vflag: bool = True) -> None:
        self.reset_tallies()
        if self.lmp.neigh_list is None or self.lmp.neigh_list.total_pairs == 0:
            return
        if graph_plan.GRAPH:
            from repro.graph.pairwise import graph_pair_compute

            if graph_pair_compute(self, "all", eflag, vflag):
                return
        self._compute_pairs("all", eflag, vflag, name_suffix="")

    def compute_phase(
        self, phase: str, eflag: bool = True, vflag: bool = True
    ) -> None:
        if phase in ("all", "interior"):
            self.reset_tallies()
        nlist = self.lmp.neigh_list
        if nlist is None or nlist.total_pairs == 0:
            return
        suffix = "" if phase == "all" else f"/{phase}"
        self._compute_pairs(phase, eflag, vflag, name_suffix=suffix)

    def _compute_pairs(
        self,
        phase: str,
        eflag: bool,
        vflag: bool,
        *,
        name_suffix: str,
    ) -> None:
        lmp = self.lmp
        atom = lmp.atom
        atom_kk = lmp.atom_kk
        nlist = lmp.neigh_list
        space = self.execution_space

        # Datamask protocol (section 3.2): sync reads, then compute on the
        # space's views, then mark writes.
        atom_kk.sync(space, ("x", "type", "f"))
        x_view = atom_kk.view("x", space)
        f_view = atom_kk.view("f", space)

        i, j, itype, jtype, cutsq = self.pair_table(nlist, atom, phase)
        x = x_view.data
        dx = x[i] - x[j]
        rsq = np.einsum("ij,ij->i", dx, dx)
        mask = rsq < cutsq
        stored_pairs = len(i)
        i, j, dx, rsq = i[mask], j[mask], dx[mask], rsq[mask]
        itype, jtype = itype[mask], jtype[mask]
        fpair, evdwl = self.pair_eval(rsq, itype, jtype)
        fvec = fpair[:, None] * dx

        full = self.neigh_mode == "full"
        jlocal = j < atom.nlocal
        atomic_adds = 0
        duplicated_bytes = 0.0
        if full:
            # One thread per atom sums its own row: conflict-free, so this
            # is a per-row segmented reduction regardless of the execution
            # space (the row-major list keeps i sorted).
            scatter_add(
                f_view.data, i, fvec, mode=scatter_mode(), assume_sorted=True
            )
        else:
            sv = ScatterView(f_view)
            acc = sv.access()
            acc.add(i, fvec)
            if self.newton_mode:
                acc.add(j, -fvec)
            else:
                acc.add(j[jlocal], -fvec[jlocal])
            sv.contribute()
            atomic_adds = sv.atomic_adds
            duplicated_bytes = float(sv.duplicated_bytes)
        atom_kk.modified(space, ("f",))

        if eflag or vflag:
            self.tally_pairs(
                evdwl, dx, fpair, jlocal, full_list=full, newton=self.newton_mode
            )

        profile = self.kernel_profile(
            natoms=atom.nlocal,
            stored_pairs=stored_pairs,
            cut_pairs=len(rsq),
            mean_neighbors=nlist.mean_neighbors,
            atomic_adds=atomic_adds,
            duplicated_bytes=duplicated_bytes,
        )
        policy = self._policy(atom.nlocal, nlist.mean_neighbors)
        kk.parallel_for(
            self.kernel_name() + name_suffix, policy, lambda idx: None, profile=profile
        )

    def _policy(self, natoms: int, mean_neighbors: float):
        if self.team_mode:
            # Hierarchical parallelism: a team per atom, lanes over
            # neighbors (section 4.1's small-problem optimization).
            vector = int(min(max(mean_neighbors, 1.0), 32.0))
            return kk.TeamPolicy(self.execution_space, natoms, 1, vector)
        return kk.RangePolicy(self.execution_space, 0, natoms)

    def kernel_profile(
        self,
        *,
        natoms: int,
        stored_pairs: int,
        cut_pairs: int,
        mean_neighbors: float,
        atomic_adds: int,
        duplicated_bytes: float = 0.0,
    ) -> kk.KernelProfile:
        """Cost profile from measured workload statistics."""
        convergent = cut_pairs / max(stored_pairs, 1)
        flops = FLOPS_PER_PAIR * stored_pairs + FLOPS_PER_ATOM * natoms
        bytes_streamed = 4.0 * stored_pairs + 48.0 * natoms  # idx + x/f rows
        if self.team_mode:
            # The more complex iteration pattern costs lane efficiency and
            # splits per-atom streams across lanes (figure 2a's large-N
            # penalty for the extra parallelism).
            convergent *= 0.8
            bytes_streamed *= 1.25
        bytes_reusable = 24.0 * stored_pairs  # gathered neighbor coordinates
        parallel = float(natoms)
        if self.team_mode:
            parallel *= min(max(mean_neighbors, 1.0), 32.0)
        return kk.KernelProfile(
            name=self.kernel_name(),
            flops=flops,
            bytes_streamed=bytes_streamed,
            bytes_reusable=bytes_reusable,
            l1_working_set_kb=self.l1_bytes_per_neighbor
            * max(mean_neighbors, 1.0)
            * 40.0
            / 1024.0,
            l2_working_set_mb=72.0 * natoms / 1e6,
            atomic_ops=float(atomic_adds) * self.atomic_conflict_factor,
            duplicated_bytes=duplicated_bytes,
            parallel_items=parallel,
            convergent_fraction=convergent,
            cpu_efficiency=self.cpu_efficiency,
        )
