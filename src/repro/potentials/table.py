"""Tabulated pair style: ``pair_style table``.

Exercises the generality of the pairwise machinery: any radial potential
can be tabulated and interpolated.  Tables are generated analytically at
``pair_coeff`` time (no potential files in this offline environment):

    pair_style table <N>
    pair_coeff i j lj <epsilon> <sigma>        # tabulated Lennard-Jones
    pair_coeff i j morse <D> <alpha> <r0>      # tabulated Morse

Linear interpolation in r^2 (LAMMPS's ``RSQ`` table mode), which makes the
energy/force lookup a single fused gather — the memory-access pattern the
section 4.4 cache study cares about.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InputError
from repro.core.styles import register_pair
from repro.potentials.pair import Pair


def _lj_ef(r: np.ndarray, eps: float, sig: float) -> tuple[np.ndarray, np.ndarray]:
    sr6 = (sig / r) ** 6
    e = 4.0 * eps * (sr6 * sr6 - sr6)
    f = 24.0 * eps * (2.0 * sr6 * sr6 - sr6) / r  # -dE/dr
    return e, f


def _morse_ef(r: np.ndarray, d: float, alpha: float, r0: float) -> tuple[np.ndarray, np.ndarray]:
    ex = np.exp(-alpha * (r - r0))
    e = d * (ex * ex - 2.0 * ex)
    f = 2.0 * d * alpha * (ex * ex - ex)  # -dE/dr
    return e, f


_GENERATORS = {"lj": (_lj_ef, 2), "morse": (_morse_ef, 3)}


@register_pair("table")
class PairTable(Pair):
    """Radially tabulated pair interactions with r^2-space interpolation."""

    def settings(self, args: list[str]) -> None:
        if len(args) < 2:
            raise InputError("pair_style table <N> <cutoff>")
        self.npoints = int(args[0])
        if self.npoints < 8:
            raise InputError("table needs >= 8 points")
        self.cut_global = float(args[1])
        if self.cut_global <= 0:
            raise InputError("cutoff must be positive")
        n = self.cut.shape[0]
        self.rsq_grid = np.linspace(
            (0.2 * self.cut_global) ** 2, self.cut_global**2, self.npoints
        )
        self.e_table = np.zeros((n, n, self.npoints))
        self.f_table = np.zeros((n, n, self.npoints))  # -dE/dr / r

    def coeff(self, args: list[str]) -> None:
        if len(args) < 3:
            raise InputError("pair_coeff i j <lj|morse> <params...>")
        ti = self._parse_type(args[0])
        tj = self._parse_type(args[1])
        kind = args[2]
        if kind not in _GENERATORS:
            raise InputError(
                f"unknown table generator {kind!r}; known: {sorted(_GENERATORS)}"
            )
        gen, nparams = _GENERATORS[kind]
        params = [float(a) for a in args[3:]]
        if len(params) != nparams:
            raise InputError(f"{kind} table expects {nparams} parameters")
        r = np.sqrt(self.rsq_grid)
        e, f = gen(r, *params)
        fpr = f / r  # tabulate force-over-r so the kernel never sqrt()s
        for i in ti:
            for j in tj:
                self.e_table[i, j] = self.e_table[j, i] = e
                self.f_table[i, j] = self.f_table[j, i] = fpr
                self.cut[i, j] = self.cut[j, i] = self.cut_global
                self.setflag[i, j] = self.setflag[j, i] = True

    def _interp(self, table: np.ndarray, rsq: np.ndarray, it: np.ndarray, jt: np.ndarray) -> np.ndarray:
        grid = self.rsq_grid
        pos = np.clip(np.searchsorted(grid, rsq) - 1, 0, self.npoints - 2)
        g0 = grid[pos]
        frac = (rsq - g0) / (grid[pos + 1] - g0)
        lo = table[it, jt, pos]
        hi = table[it, jt, pos + 1]
        return lo + frac * (hi - lo)

    def compute(self, eflag: bool = True, vflag: bool = True) -> None:
        lmp = self.lmp
        atom = lmp.atom
        nlist = lmp.neigh_list
        self.reset_tallies()
        if nlist is None or nlist.total_pairs == 0:
            return
        i, j, itype, jtype, cutsq = self.pair_table(nlist, atom)
        x = atom.x[: atom.nall]
        dx = x[i] - x[j]
        rsq = np.einsum("ij,ij->i", dx, dx)
        inner = self.rsq_grid[0]
        mask = (rsq < cutsq) & (rsq >= inner)
        if np.any(rsq < inner):
            raise InputError(
                "pair distance below the table's inner bound; atoms overlapping"
            )
        i, j, dx, rsq = i[mask], j[mask], dx[mask], rsq[mask]
        itype, jtype = itype[mask], jtype[mask]
        fpair = self._interp(self.f_table, rsq, itype, jtype)
        evdwl = self._interp(self.e_table, rsq, itype, jtype)
        fvec = fpair[:, None] * dx
        jlocal = j < atom.nlocal
        newton = lmp.newton_pair
        self.scatter_pair_forces(atom, i, j, fvec, jlocal, newton)
        if eflag or vflag:
            self.tally_pairs(evdwl, dx, fpair, jlocal, full_list=False, newton=newton)
