"""Morse pair style: ``pair_style morse`` and ``morse/kk``.

``E = D [exp(-2 a (r - r0)) - 2 exp(-a (r - r0))]`` for ``r < rc``.  A
second simple pairwise potential demonstrating the pair_kokkos reuse story
of section 4.1: the Kokkos variant is *eight lines* — it supplies only the
force/energy expression and inherits every execution-policy variant from
the shared base.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InputError
from repro.core.styles import register_pair
from repro.potentials.pair import Pair
from repro.potentials.pair_kokkos import PairKokkos


class MorseMixin:
    """Shared Morse coefficient handling."""

    def settings(self, args: list[str]) -> None:
        if len(args) < 1:
            raise InputError("pair_style morse expects a global cutoff")
        self.cut_global = float(args[0])
        if self.cut_global <= 0:
            raise InputError("cutoff must be positive")
        n = self.cut.shape[0]
        self.d0 = np.zeros((n, n))
        self.alpha = np.zeros((n, n))
        self.r0 = np.zeros((n, n))
        self.offset = np.zeros((n, n))
        self.shift = False

    def coeff(self, args: list[str]) -> None:
        if len(args) < 5:
            raise InputError("pair_coeff i j D0 alpha r0 [cutoff]")
        ti = self._parse_type(args[0])
        tj = self._parse_type(args[1])
        d0, alpha, r0 = (float(a) for a in args[2:5])
        cut = float(args[5]) if len(args) > 5 else self.cut_global
        if d0 < 0 or alpha <= 0 or r0 <= 0:
            raise InputError("morse requires D0 >= 0, alpha > 0, r0 > 0")
        for i in ti:
            for j in tj:
                self.d0[i, j] = self.d0[j, i] = d0
                self.alpha[i, j] = self.alpha[j, i] = alpha
                self.r0[i, j] = self.r0[j, i] = r0
                self.cut[i, j] = self.cut[j, i] = cut
                self.setflag[i, j] = self.setflag[j, i] = True

    def init(self) -> None:
        super().init()
        self.offset[:] = 0.0
        if self.shift:
            with np.errstate(over="ignore"):
                ex = np.exp(-self.alpha * (self.cut - self.r0))
            self.offset = np.where(
                self.cut > 0, self.d0 * (ex * ex - 2.0 * ex), 0.0
            )

    def pair_eval(
        self, rsq: np.ndarray, itype: np.ndarray, jtype: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        r = np.sqrt(rsq)
        d0 = self.d0[itype, jtype]
        a = self.alpha[itype, jtype]
        ex = np.exp(-a * (r - self.r0[itype, jtype]))
        evdwl = d0 * (ex * ex - 2.0 * ex) - self.offset[itype, jtype]
        # fpair = -(dE/dr)/r
        fpair = 2.0 * d0 * a * (ex * ex - ex) / r
        return fpair, evdwl


@register_pair("morse")
class PairMorse(MorseMixin, Pair):
    """Host Morse with a half neighbor list."""

    def compute(self, eflag: bool = True, vflag: bool = True) -> None:
        lmp = self.lmp
        atom = lmp.atom
        nlist = lmp.neigh_list
        self.reset_tallies()
        if nlist is None or nlist.total_pairs == 0:
            return
        i, j, itype, jtype, cutsq = self.pair_table(nlist, atom)
        x = atom.x[: atom.nall]
        dx = x[i] - x[j]
        rsq = np.einsum("ij,ij->i", dx, dx)
        mask = rsq < cutsq
        i, j, dx, rsq = i[mask], j[mask], dx[mask], rsq[mask]
        itype, jtype = itype[mask], jtype[mask]
        fpair, evdwl = self.pair_eval(rsq, itype, jtype)
        fvec = fpair[:, None] * dx
        jlocal = j < atom.nlocal
        self.scatter_pair_forces(atom, i, j, fvec, jlocal, lmp.newton_pair)
        if eflag or vflag:
            self.tally_pairs(
                evdwl, dx, fpair, jlocal, full_list=False, newton=lmp.newton_pair
            )


@register_pair("morse/kk")
class PairMorseKokkos(MorseMixin, PairKokkos):
    """Morse on the shared pair_kokkos machinery — the whole class."""
