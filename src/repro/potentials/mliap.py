"""ML-IAP: machine-learning potentials supplied as Python callables.

Paper appendix A describes LAMMPS's second integration strategy for
Python-based machine-learning potentials: "embed a Python interpreter in
LAMMPS and use it to call the Python libraries ... The ML-IAP package in
LAMMPS supports this strategy".  Here the host *is* Python, so the embedding
collapses to a registry of model objects:

    from repro.potentials.mliap import register_mliap_model

    class MyModel:
        cutoff = 4.0
        def compute(self, rij, pair_i, nlocal):
            '''rij = x_neighbor - x_center per pair; returns
            (per-atom energies, dE/drij per pair).'''
            ...

    register_mliap_model("my_model", MyModel())

    # in the input script:
    pair_style mliap
    pair_coeff * * my_model

Forces follow LAMMPS MLIAP conventions: ``dE/drij`` is applied to the
neighbor and its negative to the center, with ghost contributions
reverse-communicated.  `examples/snap_training.py` uses this interface to
deploy a freshly trained linear-SNAP model without touching the engine.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.core.errors import InputError
from repro.core.styles import register_pair
from repro.kokkos.segment import scatter_add, scatter_sub
from repro.potentials.pair import Pair


class MLIAPModel(Protocol):
    """What a pluggable model must provide."""

    cutoff: float

    def compute(
        self, rij: np.ndarray, pair_i: np.ndarray, nlocal: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(energy_per_atom[nlocal], dE/drij[npairs, 3])``."""
        ...


_MODELS: dict[str, MLIAPModel] = {}


def register_mliap_model(name: str, model: MLIAPModel) -> None:
    """Make a Python model available to ``pair_coeff * * <name>``."""
    if not hasattr(model, "compute") or not hasattr(model, "cutoff"):
        raise InputError("an mliap model needs .cutoff and .compute(...)")
    _MODELS[name] = model


def unregister_mliap_model(name: str) -> None:
    _MODELS.pop(name, None)


@register_pair("mliap")
class PairMLIAP(Pair):
    """Pair style delegating energies/forces to a registered Python model."""

    def settings(self, args: list[str]) -> None:
        if args:
            raise InputError("pair_style mliap takes no arguments")
        self.model: MLIAPModel | None = None
        self.model_name = ""

    def coeff(self, args: list[str]) -> None:
        if len(args) != 3 or args[0] != "*" or args[1] != "*":
            raise InputError("usage: pair_coeff * * <registered-model-name>")
        name = args[2]
        if name not in _MODELS:
            raise InputError(
                f"no mliap model registered as {name!r}; "
                f"known: {sorted(_MODELS) or '(none)'}"
            )
        self.model = _MODELS[name]
        self.model_name = name
        self.cut[1:, 1:] = self.model.cutoff
        self.setflag[1:, 1:] = True

    def init(self) -> None:
        if self.model is None:
            raise InputError("pair mliap: no model selected (pair_coeff * * <name>)")

    def neighbor_request(self) -> tuple[str, bool]:
        return "full", False

    @property
    def needs_reverse_comm(self) -> bool:
        return True  # dE/drij lands on (possibly ghost) neighbors

    def max_cutoff(self) -> float:
        if self.model is None:
            raise InputError("pair mliap: no model selected")
        return float(self.model.cutoff)

    def compute(self, eflag: bool = True, vflag: bool = True) -> None:
        lmp = self.lmp
        atom = lmp.atom
        nlist = lmp.neigh_list
        self.reset_tallies()
        if nlist is None or nlist.total_pairs == 0:
            return
        i, j = nlist.ij_pairs()
        x = atom.x[: atom.nall]
        rij = x[j] - x[i]
        rsq = np.einsum("ij,ij->i", rij, rij)
        mask = rsq < self.model.cutoff**2
        i, j, rij = i[mask], j[mask], rij[mask]

        ei, dedr = self.model.compute(rij, i, atom.nlocal)
        ei = np.asarray(ei, dtype=float)
        dedr = np.asarray(dedr, dtype=float)
        if ei.shape != (atom.nlocal,):
            raise InputError(
                f"mliap model {self.model_name!r} returned energies of shape "
                f"{ei.shape}, expected ({atom.nlocal},)"
            )
        if dedr.shape != rij.shape:
            raise InputError(
                f"mliap model {self.model_name!r} returned gradients of shape "
                f"{dedr.shape}, expected {rij.shape}"
            )
        self.eng_vdwl += float(ei.sum())
        scatter_sub(atom.f, j, dedr)
        scatter_add(atom.f, i, dedr, assume_sorted=True)
        if vflag:
            w = -dedr
            self.virial[0] += float(np.dot(rij[:, 0], w[:, 0]))
            self.virial[1] += float(np.dot(rij[:, 1], w[:, 1]))
            self.virial[2] += float(np.dot(rij[:, 2], w[:, 2]))
            self.virial[3] += float(np.dot(rij[:, 0], w[:, 1]))
            self.virial[4] += float(np.dot(rij[:, 0], w[:, 2]))
            self.virial[5] += float(np.dot(rij[:, 1], w[:, 2]))


class LinearSNAPModel:
    """A trained linear-SNAP model deployable through ``pair_style mliap``.

    ``E_i = beta . B_i`` with forces from the adjoint contraction — the
    same math as ``pair_style snap``, packaged as a plug-in model the way a
    PyTorch/JAX potential would be (appendix A's second strategy).
    """

    def __init__(self, beta: np.ndarray, twojmax: int, cutoff: float) -> None:
        from repro.snap.indexing import SnapIndex

        idx = SnapIndex(twojmax)
        beta = np.asarray(beta, dtype=float)
        if beta.shape != (idx.nbispectrum,):
            raise ValueError(
                f"beta must have {idx.nbispectrum} components for 2J={twojmax}"
            )
        self.beta = beta
        self.twojmax = twojmax
        self.cutoff = float(cutoff)

    def descriptors(self, rij: np.ndarray, pair_i: np.ndarray, nlocal: int) -> np.ndarray:
        from repro.snap.bispectrum import compute_bispectrum
        from repro.snap.compute_ui import compute_ui

        U, _, _ = compute_ui(rij, pair_i, nlocal, self.cutoff, self.twojmax)
        return compute_bispectrum(U, self.twojmax)

    def compute(self, rij, pair_i, nlocal):
        from repro.snap.bispectrum import compute_bispectrum
        from repro.snap.compute_deidrj import compute_fused_deidrj
        from repro.snap.compute_ui import compute_ui
        from repro.snap.compute_yi import compute_yi

        U, _, _ = compute_ui(rij, pair_i, nlocal, self.cutoff, self.twojmax)
        ei = compute_bispectrum(U, self.twojmax) @ self.beta
        Y12, Y3 = compute_yi(U, self.beta, self.twojmax)
        dedr = compute_fused_deidrj(
            rij, pair_i, Y12, Y3, self.cutoff, self.twojmax
        )
        return ei, dedr
