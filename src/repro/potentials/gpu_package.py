"""The GPU accelerator package: force offload with per-step transfers.

Paper section 1: "The GPU package was released as part of LAMMPS in 2010 and
took the common approach of simply offloading the force calculation ...
Nearly all other kernels run on the host CPU.  This requires frequent data
copies between host and device in every timestep.  While reasonable speedups
were achieved ... this method has clear drawbacks given the limited transfer
speed and high latency between the separate memories of the CPU and the GPU."

This module implements exactly that strategy (``pair_style lj/cut/gpu``) as
the paper's historical baseline: positions ship host -> device before the
force kernel, forces ship device -> host after it, and everything else —
integration, neighbor bookkeeping, communication — stays host-resident.
The ablation benchmark ``benchmarks/test_ablation_gpu_package.py`` measures
what the KOKKOS package's GPU residency buys.
"""

from __future__ import annotations

import repro.kokkos as kk
from repro.core.styles import register_pair
from repro.kokkos.core import Device, device_context
from repro.potentials.lj import PairLJCut
from repro.potentials.pair_kokkos import FLOPS_PER_ATOM, FLOPS_PER_PAIR
from repro.tools import registry as kp


class GPUOffloadMixin:
    """Charges the offload pattern's transfer + kernel costs.

    The force math itself is inherited unchanged from the plain host style
    (results are bit-identical to ``lj/cut``); what differs is the simulated
    cost: every step pays two PCIe-class transfers plus the device kernel,
    and the device kernel runs with *half* lists (the GPU package kept the
    host's neighbor lists).
    """

    #: per-atom bytes shipped down (x + type) and up (f) each step
    H2D_BYTES_PER_ATOM = 28.0
    D2H_BYTES_PER_ATOM = 24.0

    def _charge_offload(self) -> None:
        lmp = self.lmp
        atom = lmp.atom
        nlist = lmp.neigh_list
        ctx = device_context()
        if ctx.host_only:
            return
        nall = atom.nall
        stored_pairs = nlist.total_pairs if nlist is not None else 0

        # host -> device: positions and types of owned + ghost atoms
        h2d_bytes = int(self.H2D_BYTES_PER_ATOM * nall)
        h2d_seconds = ctx.transfer_time(h2d_bytes)
        ctx.timeline.record("gpu_package::h2d_positions", h2d_seconds)
        if kp.TOOLS:
            kp.deep_copy("Device", "x", "Host", "x", h2d_bytes, h2d_seconds)
        # the offloaded force kernel (one atom per thread, half list +
        # atomics — the GPU package reused the host's newton setting)
        profile = kk.KernelProfile(
            name="gpu_package::force_kernel",
            flops=FLOPS_PER_PAIR * stored_pairs + FLOPS_PER_ATOM * atom.nlocal,
            bytes_streamed=4.0 * stored_pairs + 48.0 * atom.nlocal,
            bytes_reusable=24.0 * stored_pairs,
            l1_working_set_kb=300.0,
            l2_working_set_mb=24.0 * atom.nlocal / 1e6,
            atomic_ops=6.0 * stored_pairs,
            parallel_items=float(max(atom.nlocal, 1)),
        )
        kk.parallel_for(
            "gpu_package::force_kernel",
            kk.RangePolicy(Device, 0, max(atom.nlocal, 1)),
            lambda idx: None,
            profile=profile,
        )
        # device -> host: forces come back for the host-resident integrator
        d2h_bytes = int(self.D2H_BYTES_PER_ATOM * nall)
        d2h_seconds = ctx.transfer_time(d2h_bytes)
        ctx.timeline.record("gpu_package::d2h_forces", d2h_seconds)
        if kp.TOOLS:
            kp.deep_copy("Host", "f", "Device", "f", d2h_bytes, d2h_seconds)


@register_pair("lj/cut/gpu")
class PairLJCutGPU(GPUOffloadMixin, PairLJCut):
    """LJ with force-only GPU offload (the pre-Kokkos strategy)."""

    # the offload path transfers the whole halo up front; splitting it would
    # double-count the H2D/D2H charges
    supports_overlap = False

    def compute(self, eflag: bool = True, vflag: bool = True) -> None:
        super().compute(eflag, vflag)
        self._charge_offload()
