"""Plain (non-Kokkos) Lennard-Jones pair style: ``pair_style lj/cut``.

Equation 1 of the paper: ``E = sum 4 eps [(sigma/r)^12 - (sigma/r)^6]`` over
pairs within the cutoff.  This is the baseline host implementation — half
neighbor list, newton per the global setting — against which the Kokkos
variants are verified and benchmarked (figure 5's CPU normalization).
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InputError
from repro.core.styles import register_pair
from repro.potentials.pair import Pair


class LJMixin:
    """Shared LJ coefficient handling (plain and Kokkos styles)."""

    def _lj_alloc(self) -> None:
        n = self.cut.shape[0]
        self.epsilon = np.zeros((n, n))
        self.sigma = np.zeros((n, n))
        # precomputed kernel constants, LAMMPS names: lj1/lj2 force,
        # lj3/lj4 energy
        self.lj1 = np.zeros((n, n))
        self.lj2 = np.zeros((n, n))
        self.lj3 = np.zeros((n, n))
        self.lj4 = np.zeros((n, n))
        self.offset = np.zeros((n, n))
        self.shift = False

    def settings(self, args: list[str]) -> None:
        if len(args) < 1:
            raise InputError("pair_style lj/cut expects a global cutoff")
        self.cut_global = float(args[0])
        if self.cut_global <= 0:
            raise InputError("cutoff must be positive")
        self._lj_alloc()

    def coeff(self, args: list[str]) -> None:
        if len(args) < 4:
            raise InputError("pair_coeff i j epsilon sigma [cutoff]")
        ti = self._parse_type(args[0])
        tj = self._parse_type(args[1])
        eps, sig = float(args[2]), float(args[3])
        cut = float(args[4]) if len(args) > 4 else self.cut_global
        for i in ti:
            for j in tj:
                a, b = min(i, j), max(i, j)
                self.epsilon[a, b] = eps
                self.sigma[a, b] = sig
                self.cut[a, b] = cut
                self.setflag[a, b] = True
                self._set_constants(a, b)

    def init_one(self, i: int, j: int) -> None:
        # Lorentz-Berthelot mixing: geometric epsilon, arithmetic sigma.
        self.epsilon[i, j] = np.sqrt(self.epsilon[i, i] * self.epsilon[j, j])
        self.sigma[i, j] = 0.5 * (self.sigma[i, i] + self.sigma[j, j])
        self.cut[i, j] = max(self.cut[i, i], self.cut[j, j])
        self.setflag[i, j] = True
        self._set_constants(i, j)

    def _set_constants(self, i: int, j: int) -> None:
        eps, sig = self.epsilon[i, j], self.sigma[i, j]
        self.lj1[i, j] = self.lj1[j, i] = 48.0 * eps * sig**12
        self.lj2[i, j] = self.lj2[j, i] = 24.0 * eps * sig**6
        self.lj3[i, j] = self.lj3[j, i] = 4.0 * eps * sig**12
        self.lj4[i, j] = self.lj4[j, i] = 4.0 * eps * sig**6
        for (a, b) in ((i, j), (j, i)):
            self.epsilon[a, b] = eps
            self.sigma[a, b] = sig
            self.cut[a, b] = self.cut[i, j]
            self.setflag[a, b] = True

    def init(self) -> None:
        super().init()
        self.offset[:] = 0.0
        if self.shift:
            with np.errstate(divide="ignore"):
                rc6 = np.where(self.cut > 0, self.cut, np.inf) ** -6
            self.offset = self.lj3 * rc6 * rc6 - self.lj4 * rc6

    def pair_eval(
        self, rsq: np.ndarray, itype: np.ndarray, jtype: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(fpair, evdwl)`` for pair distances^2 and type pairs."""
        r2inv = 1.0 / rsq
        r6inv = r2inv * r2inv * r2inv
        lj1 = self.lj1[itype, jtype]
        lj2 = self.lj2[itype, jtype]
        forcelj = r6inv * (lj1 * r6inv - lj2)
        fpair = forcelj * r2inv
        evdwl = r6inv * (self.lj3[itype, jtype] * r6inv - self.lj4[itype, jtype])
        evdwl -= self.offset[itype, jtype]
        return fpair, evdwl


@register_pair("lj/cut")
class PairLJCut(LJMixin, Pair):
    """Host LJ with a half neighbor list (the classic CPU path)."""

    supports_overlap = True

    def compute(self, eflag: bool = True, vflag: bool = True) -> None:
        self.reset_tallies()
        nlist = self.lmp.neigh_list
        if nlist is None or nlist.total_pairs == 0:
            return
        self._compute_pairs("all", eflag, vflag)

    def compute_phase(
        self, phase: str, eflag: bool = True, vflag: bool = True
    ) -> None:
        if phase in ("all", "interior"):
            self.reset_tallies()
        nlist = self.lmp.neigh_list
        if nlist is None or nlist.total_pairs == 0:
            return
        self._compute_pairs(phase, eflag, vflag)

    def _compute_pairs(self, phase: str, eflag: bool, vflag: bool) -> None:
        atom = self.lmp.atom
        nlist = self.lmp.neigh_list
        x = atom.x[: atom.nall]
        i, j, itype, jtype, cutsq = self.pair_table(nlist, atom, phase)
        if not i.size:
            return
        dx = x[i] - x[j]
        rsq = np.einsum("ij,ij->i", dx, dx)
        mask = rsq < cutsq
        i, j, dx, rsq = i[mask], j[mask], dx[mask], rsq[mask]
        itype, jtype = itype[mask], jtype[mask]
        fpair, evdwl = self.pair_eval(rsq, itype, jtype)

        newton = self.lmp.newton_pair
        fvec = fpair[:, None] * dx
        jlocal = j < atom.nlocal
        self.scatter_pair_forces(atom, i, j, fvec, jlocal, newton)
        if eflag or vflag:
            self.tally_pairs(
                evdwl, dx, fpair, jlocal, full_list=False, newton=newton
            )
