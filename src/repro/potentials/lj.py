"""Plain (non-Kokkos) Lennard-Jones pair style: ``pair_style lj/cut``.

Equation 1 of the paper: ``E = sum 4 eps [(sigma/r)^12 - (sigma/r)^6]`` over
pairs within the cutoff.  This is the baseline host implementation — half
neighbor list, newton per the global setting — against which the Kokkos
variants are verified and benchmarked (figure 5's CPU normalization).
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InputError
from repro.core.styles import register_pair
from repro.graph import plan as graph_plan
from repro.potentials.pair import Pair


class LJMixin:
    """Shared LJ coefficient handling (plain and Kokkos styles)."""

    def _lj_alloc(self) -> None:
        n = self.cut.shape[0]
        self.epsilon = np.zeros((n, n))
        self.sigma = np.zeros((n, n))
        # precomputed kernel constants, LAMMPS names: lj1/lj2 force,
        # lj3/lj4 energy
        self.lj1 = np.zeros((n, n))
        self.lj2 = np.zeros((n, n))
        self.lj3 = np.zeros((n, n))
        self.lj4 = np.zeros((n, n))
        self.offset = np.zeros((n, n))
        self.shift = False

    def settings(self, args: list[str]) -> None:
        if len(args) < 1:
            raise InputError("pair_style lj/cut expects a global cutoff")
        self.cut_global = float(args[0])
        if self.cut_global <= 0:
            raise InputError("cutoff must be positive")
        self._lj_alloc()

    def coeff(self, args: list[str]) -> None:
        if len(args) < 4:
            raise InputError("pair_coeff i j epsilon sigma [cutoff]")
        ti = self._parse_type(args[0])
        tj = self._parse_type(args[1])
        eps, sig = float(args[2]), float(args[3])
        cut = float(args[4]) if len(args) > 4 else self.cut_global
        for i in ti:
            for j in tj:
                a, b = min(i, j), max(i, j)
                self.epsilon[a, b] = eps
                self.sigma[a, b] = sig
                self.cut[a, b] = cut
                self.setflag[a, b] = True
                self._set_constants(a, b)

    def init_one(self, i: int, j: int) -> None:
        # Lorentz-Berthelot mixing: geometric epsilon, arithmetic sigma.
        self.epsilon[i, j] = np.sqrt(self.epsilon[i, i] * self.epsilon[j, j])
        self.sigma[i, j] = 0.5 * (self.sigma[i, i] + self.sigma[j, j])
        self.cut[i, j] = max(self.cut[i, i], self.cut[j, j])
        self.setflag[i, j] = True
        self._set_constants(i, j)

    def _set_constants(self, i: int, j: int) -> None:
        eps, sig = self.epsilon[i, j], self.sigma[i, j]
        self.lj1[i, j] = self.lj1[j, i] = 48.0 * eps * sig**12
        self.lj2[i, j] = self.lj2[j, i] = 24.0 * eps * sig**6
        self.lj3[i, j] = self.lj3[j, i] = 4.0 * eps * sig**12
        self.lj4[i, j] = self.lj4[j, i] = 4.0 * eps * sig**6
        for (a, b) in ((i, j), (j, i)):
            self.epsilon[a, b] = eps
            self.sigma[a, b] = sig
            self.cut[a, b] = self.cut[i, j]
            self.setflag[a, b] = True

    def init(self) -> None:
        super().init()
        self.offset[:] = 0.0
        if self.shift:
            with np.errstate(divide="ignore"):
                rc6 = np.where(self.cut > 0, self.cut, np.inf) ** -6
            self.offset = self.lj3 * rc6 * rc6 - self.lj4 * rc6

    def pair_eval(
        self, rsq: np.ndarray, itype: np.ndarray, jtype: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(fpair, evdwl)`` for pair distances^2 and type pairs."""
        r2inv = 1.0 / rsq
        r6inv = r2inv * r2inv * r2inv
        lj1 = self.lj1[itype, jtype]
        lj2 = self.lj2[itype, jtype]
        forcelj = r6inv * (lj1 * r6inv - lj2)
        fpair = forcelj * r2inv
        evdwl = r6inv * (self.lj3[itype, jtype] * r6inv - self.lj4[itype, jtype])
        evdwl -= self.offset[itype, jtype]
        return fpair, evdwl

    def graph_eval_setup(self, env: dict, itype0, jtype0):
        """Staged LJ eval: coefficient tables pre-gathered per plan.

        The 2-D fancy-indexed coefficient lookups of :meth:`pair_eval`
        become 1-D ``np.take`` gathers against per-stored-pair vectors
        computed once at capture, and every ufunc lands in preallocated
        scratch.  The floating-point operation sequence is identical to
        :meth:`pair_eval` op for op, so the results are bitwise-equal
        (held by the fused-vs-eager matrix test).
        """
        cap = len(itype0)
        env["lj1p"] = self.lj1[itype0, jtype0]
        env["lj2p"] = self.lj2[itype0, jtype0]
        env["lj3p"] = self.lj3[itype0, jtype0]
        env["lj4p"] = self.lj4[itype0, jtype0]
        env["offp"] = self.offset[itype0, jtype0]
        for key in ("lj_ca", "lj_cb", "lj_r2", "lj_r6", "lj_t", "fpair_s", "evdwl_s"):
            env[key] = np.empty(cap)

        def eval_fn(env: dict) -> None:
            idx = env["idx"]
            n = idx.size
            rsq = env["rsq_n"]
            ca = np.take(env["lj1p"], idx, out=env["lj_ca"][:n])
            cb = np.take(env["lj2p"], idx, out=env["lj_cb"][:n])
            r2 = np.divide(1.0, rsq, out=env["lj_r2"][:n])
            r6 = np.multiply(r2, r2, out=env["lj_r6"][:n])
            np.multiply(r6, r2, out=r6)
            t = np.multiply(ca, r6, out=env["lj_t"][:n])
            np.subtract(t, cb, out=t)
            forcelj = np.multiply(r6, t, out=t)
            env["fpair_n"] = np.multiply(forcelj, r2, out=env["fpair_s"][:n])
            ca = np.take(env["lj3p"], idx, out=ca)
            cb = np.take(env["lj4p"], idx, out=cb)
            e = np.multiply(ca, r6, out=env["evdwl_s"][:n])
            np.subtract(e, cb, out=e)
            np.multiply(r6, e, out=e)
            off = np.take(env["offp"], idx, out=ca)
            env["evdwl_n"] = np.subtract(e, off, out=e)

        return eval_fn


@register_pair("lj/cut")
class PairLJCut(LJMixin, Pair):
    """Host LJ with a half neighbor list (the classic CPU path)."""

    supports_overlap = True

    def compute(self, eflag: bool = True, vflag: bool = True) -> None:
        self.reset_tallies()
        nlist = self.lmp.neigh_list
        if nlist is None or nlist.total_pairs == 0:
            return
        if graph_plan.GRAPH:
            from repro.graph.pairwise import graph_pair_compute

            if graph_pair_compute(self, "all", eflag, vflag):
                return
        self._compute_pairs("all", eflag, vflag)

    def compute_phase(
        self, phase: str, eflag: bool = True, vflag: bool = True
    ) -> None:
        if phase in ("all", "interior"):
            self.reset_tallies()
        nlist = self.lmp.neigh_list
        if nlist is None or nlist.total_pairs == 0:
            return
        self._compute_pairs(phase, eflag, vflag)

    def _compute_pairs(self, phase: str, eflag: bool, vflag: bool) -> None:
        atom = self.lmp.atom
        nlist = self.lmp.neigh_list
        x = atom.x[: atom.nall]
        i, j, itype, jtype, cutsq = self.pair_table(nlist, atom, phase)
        if not i.size:
            return
        dx = x[i] - x[j]
        rsq = np.einsum("ij,ij->i", dx, dx)
        mask = rsq < cutsq
        i, j, dx, rsq = i[mask], j[mask], dx[mask], rsq[mask]
        itype, jtype = itype[mask], jtype[mask]
        fpair, evdwl = self.pair_eval(rsq, itype, jtype)

        newton = self.lmp.newton_pair
        fvec = fpair[:, None] * dx
        jlocal = j < atom.nlocal
        self.scatter_pair_forces(atom, i, j, fvec, jlocal, newton)
        if eflag or vflag:
            self.tally_pairs(
                evdwl, dx, fpair, jlocal, full_list=False, newton=newton
            )
