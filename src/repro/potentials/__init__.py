"""Pair styles: interatomic potentials.

Importing this package registers the pairwise styles (the LAMMPS analogue of
compiling a package in).  The reactive and machine-learning potentials live
in their own packages — :mod:`repro.reaxff` and :mod:`repro.snap` — matching
LAMMPS's REAXFF and ML-SNAP packages.
"""

from repro.potentials.pair import Pair
from repro.potentials import lj as _lj  # noqa: F401  (registers styles)
from repro.potentials import lj_kokkos as _ljk  # noqa: F401
from repro.potentials import eam as _eam  # noqa: F401
from repro.potentials import eam_kokkos as _eamk  # noqa: F401
from repro.potentials import eam_file as _eamf  # noqa: F401
from repro.potentials import table as _table  # noqa: F401
from repro.potentials import morse as _morse  # noqa: F401
from repro.potentials import lj_coul as _ljc  # noqa: F401
from repro.potentials import gpu_package as _gpu  # noqa: F401
from repro.potentials import mliap as _mliap  # noqa: F401

__all__ = ["Pair"]
