"""Kokkos EAM: ``pair_style eam/fs/kk`` (the figure 1 case study).

Three device kernels — density accumulation, embedding, force — with the
embedding-derivative forward communication routed through the *host* views:
the DualView sync protocol moves ``fp`` device -> host, the LAMMPS
communication classes exchange it (figure 1's dashed "uses" arrows), and a
second sync moves it back.  This is the host-side communication choice
section 3.3 describes; it is also the configuration that makes DualView's
staleness tracking earn its keep.

With ``comm_modify overlap yes`` the density kernel is split: the interior
portion (pairs between owned atoms) runs while the position halo is in
flight, and only the ghost-touching remainder waits for it.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

import repro.kokkos as kk
from repro.core.styles import register_pair
from repro.graph import plan as graph_plan
from repro.kokkos.core import Device, Host
from repro.kokkos.scatter_view import ScatterView
from repro.kokkos.segment import scatter_add
from repro.potentials.eam import PairEAM


@register_pair("eam/fs/kk")
class PairEAMKokkos(PairEAM):
    """Device-resident EAM with host-staged fp communication."""

    kokkos_style = True

    def __init__(self, lmp, args, execution_space: str = "device") -> None:
        self.execution_space = Device if execution_space == "device" else Host
        super().__init__(lmp, args)

    # ------------------------------------------------------------- helpers
    def _device_geometry(self, phase: str, x):
        """Cutoff-masked pair geometry against the execution-space views.

        Pair indices, gathered types and squared cutoffs come from the
        per-rebuild pair cache; only the distances are recomputed.
        """
        nlist = self.lmp.neigh_list
        i, j, itype, jtype, cutsq = self.pair_table(nlist, self.lmp.atom, phase)
        dx = x[i] - x[j]
        rsq = np.einsum("ij,ij->i", dx, dx)
        mask = rsq < cutsq
        stored = len(i)
        i, j, dx = i[mask], j[mask], dx[mask]
        return i, j, dx, np.sqrt(rsq[mask]), itype[mask], jtype[mask], stored

    def _density_kernel(
        self, i: np.ndarray, r: np.ndarray, stored: int, rho_view, suffix: str = ""
    ) -> None:
        atom = self.lmp.atom
        nlist = self.lmp.neigh_list
        sv = ScatterView(rho_view)
        sv.access().add(i, self.dens(r))
        sv.contribute()
        kk.parallel_for(
            "PairEAMKernelDensity" + suffix,
            kk.RangePolicy(self.execution_space, 0, atom.nlocal),
            lambda idx: None,
            profile=kk.KernelProfile(
                name="PairEAMKernelDensity" + suffix,
                flops=8.0 * stored,
                bytes_streamed=4.0 * stored + 32.0 * atom.nlocal,
                bytes_reusable=24.0 * stored,
                l1_working_set_kb=12.0 * max(nlist.mean_neighbors, 1.0),
                l2_working_set_mb=24.0 * atom.nlocal / 1e6,
                atomic_ops=float(sv.atomic_adds),
                duplicated_bytes=float(sv.duplicated_bytes),
                parallel_items=float(atom.nlocal),
            ),
        )

    def _embed_kernel(self, rho_view, fp_view, types) -> None:
        atom = self.lmp.atom

        def embed_kernel(idx: np.ndarray) -> None:
            rho_l = rho_view.data[idx]
            t_l = types[idx]
            self.eng_vdwl += float(self.embed(rho_l, t_l).sum())
            fp_view.data[idx] = self.dembed(rho_l, t_l)

        kk.parallel_for(
            "PairEAMKernelEmbed",
            kk.RangePolicy(self.execution_space, 0, atom.nlocal),
            embed_kernel,
            profile=kk.KernelProfile(
                name="PairEAMKernelEmbed",
                flops=10.0 * atom.nlocal,
                bytes_streamed=24.0 * atom.nlocal,
                parallel_items=float(atom.nlocal),
            ),
        )

    def _force_kernel(
        self, i, j, dx, r, itype, jtype, stored, fp_view, f_view, eflag, vflag,
        *, sorted_i: bool = True,
    ) -> None:
        atom = self.lmp.atom
        nlist = self.lmp.neigh_list
        if graph_plan.GRAPH:
            from repro.graph.pairwise import eam_force_graph

            if eam_force_graph(
                self, i, j, dx, r, itype, jtype, stored, fp_view, f_view,
                eflag, vflag, sorted_i=sorted_i,
            ):
                self.lmp.atom_kk.modified(self.execution_space, ("f",))
                return
        fp = fp_view.data
        fp_sum = fp[i] + fp[j]
        fpair = -(self.dphi(r, itype, jtype) + fp_sum * self.ddens(r)) / r
        fvec = fpair[:, None] * dx
        scatter_add(f_view.data, i, fvec, assume_sorted=sorted_i)
        self.lmp.atom_kk.modified(self.execution_space, ("f",))
        kk.parallel_for(
            "PairEAMKernelForce",
            kk.RangePolicy(self.execution_space, 0, atom.nlocal),
            lambda idx: None,
            profile=kk.KernelProfile(
                name="PairEAMKernelForce",
                flops=20.0 * stored,
                bytes_streamed=4.0 * stored + 48.0 * atom.nlocal,
                bytes_reusable=32.0 * stored,
                l1_working_set_kb=14.0 * max(nlist.mean_neighbors, 1.0),
                l2_working_set_mb=32.0 * atom.nlocal / 1e6,
                parallel_items=float(atom.nlocal),
            ),
        )
        if eflag or vflag:
            evdwl = self.phi(r, itype, jtype)
            self.tally_pairs(
                evdwl, dx, fpair, j < atom.nlocal, full_list=True, newton=False
            )

    def _sync_views(self):
        atom = self.lmp.atom
        atom_kk = self.lmp.atom_kk
        space = self.execution_space
        atom_kk.sync(space, ("x", "type", "f", "rho", "fp"))
        x = atom_kk.view("x", space).data
        types = atom_kk.view("type", space).data
        rho_view = atom_kk.view("rho", space)
        fp_view = atom_kk.view("fp", space)
        f_view = atom_kk.view("f", space)
        # Scratch fields are zeroed where they will be written — keeping the
        # modify/sync ledger consistent (no host-side writes to device data).
        rho_view.data[: atom.nall] = 0.0
        fp_view.data[: atom.nall] = 0.0
        atom_kk.modified(space, ("rho", "fp"))
        return x, types, rho_view, fp_view, f_view

    def _fp_comm_gen(self) -> Iterator[None]:
        """Host-staged forward communication of fp (figure 1)."""
        lmp = self.lmp
        atom_kk = lmp.atom_kk
        atom_kk.sync(Host, ("fp",))
        yield from lmp.comm_brick.forward_comm_field(lmp.atom, "fp")
        atom_kk.modified(Host, ("fp",))
        atom_kk.sync(self.execution_space, ("fp",))

    # ------------------------------------------------------------- compute
    def compute_gen(self, eflag: bool = True, vflag: bool = True) -> Iterator[None]:
        lmp = self.lmp
        atom = lmp.atom
        nlist = lmp.neigh_list
        self.reset_tallies()
        if nlist is None or nlist.total_pairs == 0:
            return

        x, types, rho_view, fp_view, f_view = self._sync_views()
        i, j, dx, r, itype, jtype, stored = self._device_geometry("all", x)

        self._density_kernel(i, r, stored, rho_view)
        self._embed_kernel(rho_view, fp_view, types)
        lmp.atom_kk.modified(self.execution_space, ("rho", "fp"))
        yield from self._fp_comm_gen()
        self._force_kernel(
            i, j, dx, r, itype, jtype, stored, fp_view, f_view, eflag, vflag
        )

    def compute_overlap_gen(
        self, inflight, eflag: bool = True, vflag: bool = True
    ) -> Iterator[None]:
        """Density split into interior (halo-hidden) and boundary kernels."""
        lmp = self.lmp
        atom = lmp.atom
        atom_kk = lmp.atom_kk
        nlist = lmp.neigh_list
        space = self.execution_space
        self.reset_tallies()
        if nlist is None or nlist.total_pairs == 0:
            yield from inflight.finish()
            return

        x, types, rho_view, fp_view, f_view = self._sync_views()

        # Interior density runs against positions already final on this rank.
        ii, ji, dxi, ri, iti, jti, stored_i = self._device_geometry("interior", x)
        self._density_kernel(ii, ri, stored_i, rho_view, suffix="/interior")

        # Synchronize the halo, refresh the device positions, then fold in
        # the ghost-touching remainder.
        yield from inflight.finish()
        lmp.mark_host_writes("x")
        atom_kk.sync(space, ("x",))
        x = atom_kk.view("x", space).data
        ib, jb, dxb, rb, itb, jtb, stored_b = self._device_geometry("boundary", x)
        self._density_kernel(ib, rb, stored_b, rho_view, suffix="/boundary")

        self._embed_kernel(rho_view, fp_view, types)
        atom_kk.modified(space, ("rho", "fp"))
        yield from self._fp_comm_gen()
        self._force_kernel(
            np.concatenate([ii, ib]),
            np.concatenate([ji, jb]),
            np.concatenate([dxi, dxb]),
            np.concatenate([ri, rb]),
            np.concatenate([iti, itb]),
            np.concatenate([jti, jtb]),
            stored_i + stored_b,
            fp_view,
            f_view,
            eflag,
            vflag,
            sorted_i=False,
        )
