"""Kokkos EAM: ``pair_style eam/fs/kk`` (the figure 1 case study).

Three device kernels — density accumulation, embedding, force — with the
embedding-derivative forward communication routed through the *host* views:
the DualView sync protocol moves ``fp`` device -> host, the LAMMPS
communication classes exchange it (figure 1's dashed "uses" arrows), and a
second sync moves it back.  This is the host-side communication choice
section 3.3 describes; it is also the configuration that makes DualView's
staleness tracking earn its keep.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

import repro.kokkos as kk
from repro.core.styles import register_pair
from repro.kokkos.core import Device, Host
from repro.kokkos.scatter_view import ScatterView
from repro.potentials.eam import PairEAM


@register_pair("eam/fs/kk")
class PairEAMKokkos(PairEAM):
    """Device-resident EAM with host-staged fp communication."""

    kokkos_style = True

    def __init__(self, lmp, args, execution_space: str = "device") -> None:
        self.execution_space = Device if execution_space == "device" else Host
        super().__init__(lmp, args)

    def compute_gen(self, eflag: bool = True, vflag: bool = True) -> Iterator[None]:
        lmp = self.lmp
        atom = lmp.atom
        atom_kk = lmp.atom_kk
        nlist = lmp.neigh_list
        space = self.execution_space
        self.reset_tallies()
        if nlist is None or nlist.total_pairs == 0:
            return

        atom_kk.sync(space, ("x", "type", "f", "rho", "fp"))
        x = atom_kk.view("x", space).data
        types = atom_kk.view("type", space).data
        rho_view = atom_kk.view("rho", space)
        fp_view = atom_kk.view("fp", space)
        f_view = atom_kk.view("f", space)
        # Scratch fields are zeroed where they will be written — keeping the
        # modify/sync ledger consistent (no host-side writes to device data).
        rho_view.data[: atom.nall] = 0.0
        fp_view.data[: atom.nall] = 0.0
        atom_kk.modified(space, ("rho", "fp"))

        i, j = nlist.ij_pairs()
        itype = types[i]
        jtype = types[j]
        dx = x[i] - x[j]
        rsq = np.einsum("ij,ij->i", dx, dx)
        mask = rsq < self.cut[itype, jtype] ** 2
        stored_pairs = len(i)
        i, j, dx, rsq = i[mask], j[mask], dx[mask], rsq[mask]
        itype, jtype = itype[mask], jtype[mask]
        r = np.sqrt(rsq)

        # Kernel 1: density accumulation (ScatterView handles the write
        # conflicts when parallelizing over pairs).
        sv = ScatterView(rho_view)
        sv.access().add(i, self.dens(r))
        sv.contribute()
        kk.parallel_for(
            "PairEAMKernelDensity",
            kk.RangePolicy(space, 0, atom.nlocal),
            lambda idx: None,
            profile=kk.KernelProfile(
                name="PairEAMKernelDensity",
                flops=8.0 * stored_pairs,
                bytes_streamed=4.0 * stored_pairs + 32.0 * atom.nlocal,
                bytes_reusable=24.0 * stored_pairs,
                l1_working_set_kb=12.0 * max(nlist.mean_neighbors, 1.0),
                l2_working_set_mb=24.0 * atom.nlocal / 1e6,
                atomic_ops=float(sv.atomic_adds),
                parallel_items=float(atom.nlocal),
            ),
        )

        # Kernel 2: embedding energy + derivative, per owned atom.
        def embed_kernel(idx: np.ndarray) -> None:
            rho_l = rho_view.data[idx]
            t_l = types[idx]
            self.eng_vdwl += float(self.embed(rho_l, t_l).sum())
            fp_view.data[idx] = self.dembed(rho_l, t_l)

        kk.parallel_for(
            "PairEAMKernelEmbed",
            kk.RangePolicy(space, 0, atom.nlocal),
            embed_kernel,
            profile=kk.KernelProfile(
                name="PairEAMKernelEmbed",
                flops=10.0 * atom.nlocal,
                bytes_streamed=24.0 * atom.nlocal,
                parallel_items=float(atom.nlocal),
            ),
        )
        atom_kk.modified(space, ("rho", "fp"))

        # Host-staged forward communication of fp (figure 1).
        atom_kk.sync(Host, ("fp",))
        yield from lmp.comm_brick.forward_comm_field(atom, "fp")
        atom_kk.modified(Host, ("fp",))
        atom_kk.sync(space, ("fp",))

        # Kernel 3: force + pair energy.
        fp = fp_view.data
        fp_sum = fp[i] + fp[j]
        fpair = -(self.dphi(r, itype, jtype) + fp_sum * self.ddens(r)) / r
        fvec = fpair[:, None] * dx
        np.add.at(f_view.data, i, fvec)
        atom_kk.modified(space, ("f",))
        kk.parallel_for(
            "PairEAMKernelForce",
            kk.RangePolicy(space, 0, atom.nlocal),
            lambda idx: None,
            profile=kk.KernelProfile(
                name="PairEAMKernelForce",
                flops=20.0 * stored_pairs,
                bytes_streamed=4.0 * stored_pairs + 48.0 * atom.nlocal,
                bytes_reusable=32.0 * stored_pairs,
                l1_working_set_kb=14.0 * max(nlist.mean_neighbors, 1.0),
                l2_working_set_mb=32.0 * atom.nlocal / 1e6,
                parallel_items=float(atom.nlocal),
            ),
        )
        if eflag or vflag:
            evdwl = self.phi(r, itype, jtype)
            self.tally_pairs(
                evdwl, dx, fpair, j < atom.nlocal, full_list=True, newton=False
            )
