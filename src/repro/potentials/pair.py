"""Pair style base class (paper section 2.2).

A pair style owns per-type-pair coefficients, declares the neighbor list it
wants (half or full, newton on or off — the section 4.1 design space), and
tallies energies and the virial the way LAMMPS's ``ev_tally`` does:

* **half list, newton on** — each pair appears once globally: full energy,
  forces on both atoms (ghost forces reverse-communicated);
* **half list, newton off** — pairs with a ghost appear on both owning
  ranks: each side tallies half the energy and updates only its own atom;
* **full list** — every pair appears twice on this rank: each appearance
  tallies half the energy and updates atom ``i`` only.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InputError, StyleError
from repro.kokkos.segment import scatter_add, scatter_mode, scatter_sub


class Pair:
    """Base pair style."""

    #: True on Kokkos-accelerated styles (drives DualView datamask syncs).
    kokkos_style = False
    #: True when the style can split its force work into an interior pass
    #: (pairs whose neighbor is an owned atom — independent of the halo
    #: exchange) and a boundary pass (pairs touching ghosts).  Styles that
    #: leave this False fall back to the serial exchange-then-compute path
    #: even when comm/compute overlap is requested.
    supports_overlap = False

    def __init__(self, lmp, args: list[str]) -> None:
        self.lmp = lmp
        self.eng_vdwl = 0.0
        self.eng_coul = 0.0
        self.virial = np.zeros(6)
        atom = lmp.require_box()
        n = atom.ntypes + 1
        self.cut = np.zeros((n, n))
        self.setflag = np.zeros((n, n), dtype=bool)
        self.settings(args)

    # -------------------------------------------------------- configuration
    def settings(self, args: list[str]) -> None:
        """Parse ``pair_style`` arguments."""
        raise NotImplementedError

    def coeff(self, args: list[str]) -> None:
        """Parse one ``pair_coeff`` line."""
        raise NotImplementedError

    def init(self) -> None:
        """Finalize coefficients (mixing) before a run."""
        n = self.cut.shape[0] - 1
        for i in range(1, n + 1):
            for j in range(i, n + 1):
                if not self.setflag[i, j]:
                    if self.setflag[i, i] and self.setflag[j, j]:
                        self.init_one(i, j)
                    else:
                        raise InputError(
                            f"pair coefficients for types ({i},{j}) not set"
                        )
                self.cut[j, i] = self.cut[i, j]

    def init_one(self, i: int, j: int) -> None:
        """Mix coefficients for an unset cross pair."""
        raise StyleError(
            f"{type(self).__name__} does not support coefficient mixing; "
            f"set pair_coeff for types ({i},{j}) explicitly"
        )

    def _parse_type(self, token: str) -> list[int]:
        """A type token: a number or ``*`` (all types)."""
        ntypes = self.cut.shape[0] - 1
        if token == "*":
            return list(range(1, ntypes + 1))
        t = int(token)
        if not 1 <= t <= ntypes:
            raise InputError(f"atom type {t} out of range [1, {ntypes}]")
        return [t]

    # ------------------------------------------------------------- queries
    def max_cutoff(self) -> float:
        return float(self.cut.max())

    def neighbor_request(self) -> tuple[str, bool]:
        """``(list_style, newton)`` this style wants."""
        return "half", self.lmp.newton_pair

    @property
    def needs_reverse_comm(self) -> bool:
        style, newton = self.neighbor_request()
        return style == "half" and newton

    # -------------------------------------------------------------- tallies
    def reset_tallies(self) -> None:
        self.eng_vdwl = 0.0
        self.eng_coul = 0.0
        self.virial[:] = 0.0

    def tally_pairs(
        self,
        evdwl: np.ndarray,
        dx: np.ndarray,
        fpair: np.ndarray,
        jlocal: np.ndarray,
        *,
        full_list: bool,
        newton: bool,
        ecoul: np.ndarray | None = None,
        w: np.ndarray | None = None,
    ) -> None:
        """ev_tally for a batch of pairs.

        ``fpair`` is the scalar force magnitude over r (force vector is
        ``fpair[:, None] * dx``); ``jlocal`` marks pairs whose j atom is
        owned by this rank.  Callers that already hold the force vectors
        may pass them as ``w`` to skip recomputing the product (the
        kernel-graph replay path reuses its fused ``fvec`` stage output;
        the product is bitwise-identical either way).
        """
        if full_list:
            factor = np.full(len(evdwl), 0.5)
        elif newton:
            factor = np.ones(len(evdwl))
        else:
            factor = np.where(jlocal, 1.0, 0.5)
        self.eng_vdwl += float(np.dot(factor, evdwl))
        if ecoul is not None:
            self.eng_coul += float(np.dot(factor, ecoul))
        if w is None:
            w = fpair[:, None] * dx
        # virial components xx, yy, zz, xy, xz, yz
        self.virial[0] += float(np.dot(factor, dx[:, 0] * w[:, 0]))
        self.virial[1] += float(np.dot(factor, dx[:, 1] * w[:, 1]))
        self.virial[2] += float(np.dot(factor, dx[:, 2] * w[:, 2]))
        self.virial[3] += float(np.dot(factor, dx[:, 0] * w[:, 1]))
        self.virial[4] += float(np.dot(factor, dx[:, 0] * w[:, 2]))
        self.virial[5] += float(np.dot(factor, dx[:, 1] * w[:, 2]))

    # ----------------------------------------------------- pair-table cache
    def pair_table(
        self, nlist, atom, phase: str = "all"
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Neighbor-constant per-pair arrays ``(i, j, itype, jtype, cutsq)``.

        All five come from the list's :class:`~repro.core.neighbor.PairCache`
        — computed once per rebuild instead of re-gathered every force call.
        ``phase`` restricts to the interior/boundary split of the overlap
        driver (itself cached).
        """
        cache = nlist.pair_cache()
        i, j = cache.ij()
        itype, jtype = cache.type_pairs(atom.type)
        cutsq = cache.cutsq_pairs(self.cut)
        sel = cache.phase_sel(phase)
        if sel is None:
            return i, j, itype, jtype, cutsq
        return i[sel], j[sel], itype[sel], jtype[sel], cutsq[sel]

    def scatter_pair_forces(
        self,
        atom,
        i: np.ndarray,
        j: np.ndarray,
        fvec: np.ndarray,
        jlocal: np.ndarray,
        newton: bool,
    ) -> None:
        """Accumulate ``+fvec`` on i and ``-fvec`` on j (half-list styles).

        The i side is a sorted segmented reduction (stored pairs are
        row-major, and cutoff masks preserve that order).  The j side is
        unsorted; for 3-wide force rows the per-column bincount inside
        :func:`~repro.kokkos.segment.scatter_sub` beats replaying the pair
        cache's j-sort, which would have to gather the value rows into
        sorted order every step (wide per-pair rows are where
        ``PairCache.j_order`` pays off instead).
        """
        mode = scatter_mode()
        scatter_add(atom.f, i, fvec, mode=mode, assume_sorted=True)
        if newton:
            scatter_sub(atom.f, j, fvec, mode=mode)
        else:
            scatter_sub(atom.f, j[jlocal], fvec[jlocal], mode=mode)

    # ------------------------------------------------- interior/boundary
    @staticmethod
    def phase_pairs(nlist, phase: str) -> tuple[np.ndarray, np.ndarray]:
        """Flat ``(i, j)`` pair arrays restricted to an overlap phase.

        ``"all"`` is the whole list; ``"interior"`` keeps pairs whose j atom
        is owned (safe to evaluate while the halo exchange is in flight);
        ``"boundary"`` keeps pairs whose j atom is a ghost.  The selection
        indices are memoized on the list's pair cache.
        """
        i, j = nlist.ij_pairs()
        if phase == "all":
            return i, j
        if phase not in ("interior", "boundary"):
            raise StyleError(f"unknown compute phase {phase!r}")
        sel = nlist.pair_cache().phase_sel(phase)
        return i[sel], j[sel]

    def compute_phase(
        self, phase: str, eflag: bool = True, vflag: bool = True
    ) -> None:
        """Run one overlap phase.  Styles with ``supports_overlap`` override."""
        raise StyleError(
            f"{type(self).__name__} does not support phased (overlapped) compute"
        )

    # --------------------------------------------------------- kernel graph
    def graph_eval_setup(self, env: dict, itype0, jtype0):
        """Bind per-plan eval state into ``env``; return the staged eval fn.

        The generic form gathers the compressed type pairs and defers to
        :meth:`pair_eval` — the same call the eager kernel makes, so any
        style with ``pair_eval`` stages for free.  Styles override this
        to pre-gather coefficient tables once per plan (see ``LJMixin``).
        Returns None when the style cannot be staged.
        """
        if not hasattr(self, "pair_eval"):
            return None
        env["it0"] = itype0
        env["jt0"] = jtype0

        def eval_fn(env: dict, pair=self) -> None:
            idx = env["idx"]
            it_n = np.take(env["it0"], idx)
            jt_n = np.take(env["jt0"], idx)
            fpair, evdwl = pair.pair_eval(env["rsq_n"], it_n, jt_n)
            env["fpair_n"] = fpair
            env["evdwl_n"] = evdwl

        return eval_fn

    # --------------------------------------------------------------- hooks
    def compute(self, eflag: bool = True, vflag: bool = True) -> None:
        raise NotImplementedError
