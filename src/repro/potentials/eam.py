"""Embedded Atom Method pair style: ``pair_style eam/fs``.

EAM (Daw & Baskes 1983) is the many-body potential the paper's figure 1
uses to illustrate the KOKKOS class hierarchy — notably its *additional
communication*: the embedding derivative ``F'(rho_i)`` computed in the
density loop must be forward-communicated to ghost atoms before the force
loop can run.

The functional form here is a compact Finnis-Sinclair flavor with smooth
cutoffs (no potential files needed offline):

* density contribution   ``f(r)   = (rc - r)^2``
* embedding energy        ``F(rho) = -A * sqrt(rho)``
* pair repulsion          ``phi(r) = c * (rc - r)^2``

so ``E_i = F(rho_i) + 1/2 sum_j phi(r_ij)`` with
``rho_i = sum_j f(r_ij)``.  It is a real many-body potential (forces verified
against finite differences in the tests) with exactly LAMMPS-EAM's
communication and loop structure.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.errors import InputError
from repro.core.styles import register_pair
from repro.kokkos.segment import scatter_add
from repro.potentials.pair import Pair


class EAMMixin:
    """Shared EAM parameter handling and math."""

    def settings(self, args: list[str]) -> None:
        if len(args) < 1:
            raise InputError("pair_style eam/fs expects a cutoff")
        self.cut_global = float(args[0])
        if self.cut_global <= 0:
            raise InputError("cutoff must be positive")
        n = self.cut.shape[0]
        self.embed_A = np.zeros(n)  # per-type embedding strength
        self.pair_c = np.zeros((n, n))  # pair repulsion strength

    def coeff(self, args: list[str]) -> None:
        if len(args) != 4:
            raise InputError("pair_coeff i j <A_embed> <c_pair>")
        ti = self._parse_type(args[0])
        tj = self._parse_type(args[1])
        A, c = float(args[2]), float(args[3])
        if A < 0 or c < 0:
            raise InputError("eam/fs coefficients must be non-negative")
        for i in ti:
            self.embed_A[i] = A
        for i in ti:
            for j in tj:
                self.pair_c[i, j] = self.pair_c[j, i] = c
                self.cut[i, j] = self.cut[j, i] = self.cut_global
                self.setflag[i, j] = self.setflag[j, i] = True

    # analytic pieces -------------------------------------------------------
    def dens(self, r: np.ndarray) -> np.ndarray:
        return (self.cut_global - r) ** 2

    def ddens(self, r: np.ndarray) -> np.ndarray:
        return -2.0 * (self.cut_global - r)

    def embed(self, rho: np.ndarray, types: np.ndarray) -> np.ndarray:
        return -self.embed_A[types] * np.sqrt(np.maximum(rho, 0.0))

    def dembed(self, rho: np.ndarray, types: np.ndarray) -> np.ndarray:
        safe = np.maximum(rho, 1e-30)
        return -0.5 * self.embed_A[types] / np.sqrt(safe)

    def phi(self, r: np.ndarray, it: np.ndarray, jt: np.ndarray) -> np.ndarray:
        return self.pair_c[it, jt] * (self.cut_global - r) ** 2

    def dphi(self, r: np.ndarray, it: np.ndarray, jt: np.ndarray) -> np.ndarray:
        return -2.0 * self.pair_c[it, jt] * (self.cut_global - r)


@register_pair("eam/fs")
class PairEAM(EAMMixin, Pair):
    """Host EAM: full neighbor list for the density loop simplicity."""

    supports_overlap = True

    def neighbor_request(self) -> tuple[str, bool]:
        # A full list makes both loops one-sided: each atom accumulates its
        # own density and its own force; no reverse communication needed.
        return "full", False

    # ------------------------------------------------------------- helpers
    def _pair_geometry(self, phase: str = "all"):
        """Cutoff-masked geometry ``(i, j, dx, r, itype, jtype)`` for pairs.

        Types and squared cutoffs come from the per-rebuild pair cache; only
        the geometry is recomputed each step.
        """
        atom = self.lmp.atom
        nlist = self.lmp.neigh_list
        i, j, itype, jtype, cutsq = self.pair_table(nlist, atom, phase)
        x = atom.x[: atom.nall]
        dx = x[i] - x[j]
        rsq = np.einsum("ij,ij->i", dx, dx)
        mask = rsq < cutsq
        i, j, dx = i[mask], j[mask], dx[mask]
        return i, j, dx, np.sqrt(rsq[mask]), itype[mask], jtype[mask]

    def _embed_locals(self) -> None:
        """Embedding energy and its derivative fp for owned atoms."""
        atom = self.lmp.atom
        rho_local = atom.rho[: atom.nlocal]
        types_local = atom.type[: atom.nlocal]
        self.eng_vdwl += float(self.embed(rho_local, types_local).sum())
        atom.fp[: atom.nlocal] = self.dembed(rho_local, types_local)

    def _force_pass(
        self, i, j, dx, r, itype, jtype, eflag, vflag, *, sorted_i: bool = True
    ) -> None:
        atom = self.lmp.atom
        fp_sum = atom.fp[i] + atom.fp[j]
        dphi = self.dphi(r, itype, jtype)
        ddens = self.ddens(r)
        # dE/dr for the (i, j) bond as seen from atom i (full list: each
        # bond visited from both ends, so no factor 2).
        fpair = -(dphi + fp_sum * ddens) / r
        fvec = fpair[:, None] * dx
        scatter_add(atom.f, i, fvec, assume_sorted=sorted_i)
        if eflag or vflag:
            evdwl = self.phi(r, itype, jtype)
            self.tally_pairs(
                evdwl, dx, fpair, j < atom.nlocal, full_list=True, newton=False
            )

    # ------------------------------------------------------------- compute
    def compute_gen(self, eflag: bool = True, vflag: bool = True) -> Iterator[None]:
        lmp = self.lmp
        atom = lmp.atom
        nlist = lmp.neigh_list
        self.reset_tallies()
        atom.rho[: atom.nall] = 0.0
        atom.fp[: atom.nall] = 0.0
        if nlist is None or nlist.total_pairs == 0:
            return

        i, j, dx, r, itype, jtype = self._pair_geometry()

        # Loop 1: electron density of owned atoms.
        scatter_add(atom.rho, i, self.dens(r), assume_sorted=True)
        self._embed_locals()

        # Figure 1's "additional communication": ghosts need fp before the
        # force loop can evaluate (fp_i + fp_j).
        yield from lmp.comm_brick.forward_comm_field(atom, "fp")

        # Loop 2: forces and pair energy.
        self._force_pass(i, j, dx, r, itype, jtype, eflag, vflag)

    def compute_overlap_gen(
        self, inflight, eflag: bool = True, vflag: bool = True
    ) -> Iterator[None]:
        """Overlapped compute: interior density runs while the halo is in
        flight; boundary density and everything downstream wait for it.

        The force loop itself cannot start before the fp forward comm, so
        only the density loop's interior portion hides the position halo —
        exactly the split available to real EAM.
        """
        lmp = self.lmp
        atom = lmp.atom
        nlist = lmp.neigh_list
        self.reset_tallies()
        atom.rho[: atom.nall] = 0.0
        atom.fp[: atom.nall] = 0.0
        if nlist is None or nlist.total_pairs == 0:
            yield from inflight.finish()
            return

        # Interior density: both atoms owned, positions already final.
        ii, ji, dxi, ri, iti, jti = self._pair_geometry("interior")
        scatter_add(atom.rho, ii, self.dens(ri), assume_sorted=True)

        # Synchronize the position halo, then fold in ghost-pair density.
        yield from inflight.finish()
        lmp.mark_host_writes("x")
        ib, jb, dxb, rb, itb, jtb = self._pair_geometry("boundary")
        scatter_add(atom.rho, ib, self.dens(rb), assume_sorted=True)
        self._embed_locals()

        yield from lmp.comm_brick.forward_comm_field(atom, "fp")

        # the interior+boundary concatenation interleaves the i ordering, so
        # the force scatter cannot assume sorted segments here
        self._force_pass(
            np.concatenate([ii, ib]),
            np.concatenate([ji, jb]),
            np.concatenate([dxi, dxb]),
            np.concatenate([ri, rb]),
            np.concatenate([iti, itb]),
            np.concatenate([jti, jtb]),
            eflag,
            vflag,
            sorted_i=False,
        )
