"""Command-line entry point: the ``lmp`` executable analogue.

Mirrors the LAMMPS binary's common flags::

    python -m repro -in melt.in                      # host run
    python -m repro -in melt.in -k on -sf kk         # simulated H100, /kk styles
    python -m repro -in melt.in -k on gpu MI300A -sf kk
    python -m repro -in melt.in -np 4                # 4 simulated MPI ranks
    python -m repro -in melt.in -var cells 6 -var temp 1.2
    python -m repro --bench hotpath                  # refresh BENCH_hotpath.json
    python -m repro -in melt.in --tools space-time-stack,chrome-trace --tool-out out/

``-var`` values are injected as equal-style variables (usable as ``${name}``
in the script), ``-k on [gpu <name>]`` selects the simulated device, ``-sf``
sets the global accelerator suffix, ``-np`` runs the script across simulated
MPI ranks in lockstep, and ``--tools`` attaches KokkosP-style observability
tools (:mod:`repro.tools`) for the duration of the run.  ``--bench`` choices
come from the bench registry (:mod:`repro.bench.registry`).
"""

from __future__ import annotations

import argparse
import sys

import repro.kspace  # noqa: F401  (register all packages' styles)
import repro.potentials  # noqa: F401
import repro.reaxff  # noqa: F401
import repro.snap  # noqa: F401
from repro.bench import bench_names, run_bench
from repro.core import Ensemble, Lammps
from repro.tools import create_tools, tool_names
from repro.tools import registry as kp


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro",
        description="LAMMPS-KOKKOS reproduction: run an input script on "
        "simulated exascale hardware.",
    )
    p.add_argument("-in", "--input", dest="script",
                   help="input script file")
    p.add_argument("--bench", choices=bench_names(), default=None,
                   help="run a wall-clock benchmark instead of a script "
                   "(writes BENCH_<name>.json in the working directory)")
    p.add_argument("--tools", default=None, metavar="NAME[,NAME...]",
                   help="attach observability tools for the run: "
                   + ", ".join(tool_names()))
    p.add_argument("--tool-out", default=".", metavar="DIR",
                   help="directory for tool output files (default: cwd)")
    p.add_argument("-k", "--kokkos", nargs="*", default=None, metavar="ARG",
                   help="'on [gpu <name>]' enables the simulated device "
                   "(default H100); 'off' forces a pure-host build")
    p.add_argument("-sf", "--suffix", default=None,
                   help="global accelerator suffix (kk, kk/host, gpu)")
    p.add_argument("-np", "--nranks", type=int, default=1,
                   help="simulated MPI ranks (default 1)")
    p.add_argument("-var", nargs=2, action="append", default=[],
                   metavar=("NAME", "VALUE"),
                   help="define an equal-style variable (repeatable)")
    p.add_argument("-log", "--quiet", action="store_true",
                   help="suppress thermo output")
    return p


def resolve_device(kokkos_args: list[str] | None) -> str | None:
    if kokkos_args is None:
        return None
    if not kokkos_args or kokkos_args[0] == "off":
        return None
    if kokkos_args[0] != "on":
        raise SystemExit(f"-k expects 'on' or 'off', got {kokkos_args[0]!r}")
    if len(kokkos_args) >= 3 and kokkos_args[1] == "gpu":
        return kokkos_args[2]
    return "H100"


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.bench is not None:
        run_bench(args.bench, quiet=args.quiet)
        return 0
    if args.script is None:
        parser.error("an input script (-in FILE) or --bench is required")
    device = resolve_device(args.kokkos)

    tools = []
    if args.tools:
        try:
            tools = create_tools(args.tools, args.tool_out)
        except ValueError as err:
            parser.error(str(err))
        for tool in tools:
            kp.attach(tool)

    try:
        if args.nranks > 1:
            target = Ensemble(
                args.nranks, device=device, suffix=args.suffix, quiet=args.quiet
            )
        else:
            target = Lammps(device=device, suffix=args.suffix, quiet=args.quiet)

        for name, value in args.var:
            target.commands_string(f"variable {name} equal {value}")

        with open(args.script) as fh:
            target.commands_string(fh.read())
    finally:
        if tools:
            for report in kp.finalize_all():
                print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
