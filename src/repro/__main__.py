"""Command-line entry point: the ``lmp`` executable analogue.

Mirrors the LAMMPS binary's common flags::

    python -m repro -in melt.in                      # host run
    python -m repro -in melt.in -k on -sf kk         # simulated H100, /kk styles
    python -m repro -in melt.in -k on gpu MI300A -sf kk
    python -m repro -in melt.in -np 4                # 4 simulated MPI ranks
    python -m repro -in melt.in -r 16                # 16 batched replicas
    python -m repro -in melt.in -var cells 6 -var temp 1.2
    python -m repro --bench hotpath                  # refresh BENCH_hotpath.json
    python -m repro -in melt.in --tools space-time-stack,chrome-trace --tool-out out/
    python -m repro -in melt.in --metrics-out out/   # Prometheus + JSONL metrics
    python -m repro -in melt.in --autotune           # tune mode switches at run start
    python -m repro --analyze-trace out/trace.json   # offline trace analytics
    python -m repro --sentinel BENCH_hotpath.json baselines/BENCH_hotpath.json

``-var`` values are injected as equal-style variables (usable as ``${name}``
in the script), ``-k on [gpu <name>]`` selects the simulated device, ``-sf``
sets the global accelerator suffix, ``-np`` runs the script across simulated
MPI ranks in lockstep, and ``--tools`` attaches KokkosP-style observability
tools (:mod:`repro.tools`) for the duration of the run.  ``--bench`` choices
come from the bench registry (:mod:`repro.bench.registry`).

Offline modes (no input script): ``--analyze-trace`` runs the trace
analyzer (:mod:`repro.tools.analyze`) over a recorded chrome trace;
``--sentinel FRESH BASELINE`` runs the perf-regression sentinel
(:mod:`repro.bench.sentinel`) and exits 1 on a confirmed regression.
"""

from __future__ import annotations

import argparse
import sys

import repro.kspace  # noqa: F401  (register all packages' styles)
import repro.potentials  # noqa: F401
import repro.reaxff  # noqa: F401
import repro.snap  # noqa: F401
from repro.bench import bench_names, run_bench
from repro.core import Ensemble, Lammps, ReplicaSet
from repro.tools import create_tools, tool_names
from repro.tools import registry as kp


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro",
        description="LAMMPS-KOKKOS reproduction: run an input script on "
        "simulated exascale hardware.",
    )
    p.add_argument("-in", "--input", dest="script",
                   help="input script file")
    p.add_argument("--bench", default=None, metavar="NAME",
                   help="run a wall-clock benchmark instead of a script "
                   "(writes BENCH_<name>.json in the working directory): "
                   + ", ".join(bench_names()))
    p.add_argument("--tools", default=None, metavar="NAME[,NAME...]",
                   help="attach observability tools for the run: "
                   + ", ".join(tool_names()))
    p.add_argument("--tool-out", default=".", metavar="DIR",
                   help="directory for tool output files (default: cwd)")
    p.add_argument("--metrics-out", default=None, metavar="DIR",
                   help="attach the metrics tool and write metrics.prom, "
                   "metrics.jsonl, and profiles.json under DIR")
    p.add_argument("--analyze-trace", default=None, metavar="TRACE.json",
                   help="analyze a recorded chrome trace instead of running "
                   "a script (critical path, imbalance, overlap, top kernels)")
    p.add_argument("--analyze-out", default=None, metavar="FILE",
                   help="also write the trace analysis as JSON to FILE")
    p.add_argument("--top", type=int, default=10,
                   help="top-N kernels in the trace analysis (default 10)")
    p.add_argument("--sentinel", nargs=2, default=None,
                   metavar=("FRESH", "BASELINE"),
                   help="compare a fresh BENCH_*.json against a committed "
                   "baseline; exit 1 on a beyond-noise-band regression")
    p.add_argument("--sentinel-out", default=None, metavar="FILE",
                   help="write the sentinel verdict JSON to FILE")
    p.add_argument("--rel-floor", type=float, default=None,
                   help="sentinel relative noise floor (default 0.35)")
    p.add_argument("--autotune", nargs="?", const="wall", default=None,
                   choices=("wall", "model"), metavar="MEASURE",
                   help="autotune mode switches before the first run "
                   "(wall-clock micro-benchmarks, or the deterministic "
                   "hardware cost model); winners persist to --tune-plan")
    p.add_argument("--tune-plan", default="tuned_plan.json", metavar="FILE",
                   help="tuned-plan file keyed (workload, arch, kernel); "
                   "'none' disables persistence (default: tuned_plan.json)")
    p.add_argument("--tune-repeats", type=int, default=3, metavar="N",
                   help="interleaved measurement rounds per candidate "
                   "config (default 3)")
    p.add_argument("--tune-seed", type=int, default=0, metavar="N",
                   help="seed for the interleaving order of the autotune "
                   "search (default 0)")
    p.add_argument("-k", "--kokkos", nargs="*", default=None, metavar="ARG",
                   help="'on [gpu <name>]' enables the simulated device "
                   "(default H100); 'off' forces a pure-host build")
    p.add_argument("-sf", "--suffix", default=None,
                   help="global accelerator suffix (kk, kk/host, gpu)")
    p.add_argument("-np", "--nranks", type=int, default=1,
                   help="simulated MPI ranks (default 1)")
    p.add_argument("-r", "--replicas", type=int, default=1, metavar="R",
                   help="run the script as R batched replicas through one "
                   "set of vectorized kernels (single-rank workloads only; "
                   "each replica sees an equal-style 'replica' index "
                   "variable)")
    p.add_argument("-var", nargs=2, action="append", default=[],
                   metavar=("NAME", "VALUE"),
                   help="define an equal-style variable (repeatable)")
    p.add_argument("-log", "--quiet", action="store_true",
                   help="suppress thermo output")
    return p


def resolve_device(kokkos_args: list[str] | None) -> str | None:
    if kokkos_args is None:
        return None
    if not kokkos_args or kokkos_args[0] == "off":
        return None
    if kokkos_args[0] != "on":
        raise SystemExit(f"-k expects 'on' or 'off', got {kokkos_args[0]!r}")
    if len(kokkos_args) >= 3 and kokkos_args[1] == "gpu":
        return kokkos_args[2]
    return "H100"


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.sentinel is not None:
        from repro.bench.sentinel import REL_FLOOR, run_sentinel

        fresh, baseline = args.sentinel
        verdict = run_sentinel(
            fresh, baseline,
            out_path=args.sentinel_out,
            rel_floor=args.rel_floor if args.rel_floor is not None else REL_FLOOR,
            quiet=args.quiet,
        )
        return 1 if verdict["verdict"] == "fail" else 0
    if args.analyze_trace is not None:
        import json

        from repro.tools.analyze import analyze_file, format_report

        analysis = analyze_file(args.analyze_trace, top=args.top)
        if args.analyze_out:
            with open(args.analyze_out, "w") as fh:
                json.dump(analysis, fh, indent=2)
                fh.write("\n")
        if not args.quiet:
            print(format_report(analysis))
        return 0
    if args.bench is not None:
        try:
            run_bench(args.bench, quiet=args.quiet)
        except KeyError as err:
            # unknown bench names carry the registry's did-you-mean hint
            parser.error(str(err.args[0]) if err.args else str(err))
        return 0
    if args.script is None:
        parser.error("an input script (-in FILE), --bench, --analyze-trace, "
                     "or --sentinel is required")
    device = resolve_device(args.kokkos)

    tools = []
    if args.tools:
        try:
            tools = create_tools(args.tools, args.tool_out)
        except ValueError as err:
            parser.error(str(err))
        for tool in tools:
            kp.attach(tool)
    if args.metrics_out is not None:
        import os

        from repro.tools.metrics import MetricsTool

        os.makedirs(args.metrics_out or ".", exist_ok=True)
        workload = os.path.splitext(os.path.basename(args.script))[0]
        tool = MetricsTool(args.metrics_out or ".", workload=workload)
        kp.attach(tool)
        tools.append(tool)

    try:
        if args.replicas > 1:
            if args.nranks > 1:
                parser.error("--replicas batches single-rank workloads; "
                             "it cannot be combined with -np")
            if args.autotune is not None:
                parser.error("--replicas cannot be combined with --autotune; "
                             "tune the solo workload first")
            target = ReplicaSet(
                args.replicas, device=device, suffix=args.suffix,
                quiet=args.quiet,
            )
        elif args.nranks > 1:
            target = Ensemble(
                args.nranks, device=device, suffix=args.suffix, quiet=args.quiet
            )
        else:
            target = Lammps(device=device, suffix=args.suffix, quiet=args.quiet)

        if args.autotune is not None:
            import os

            from repro.tune import Autotuner

            workload = os.path.splitext(os.path.basename(args.script))[0]
            target.autotuner = Autotuner(
                measure=args.autotune,
                repeats=args.tune_repeats,
                seed=args.tune_seed,
                plan_path=None if args.tune_plan == "none" else args.tune_plan,
                workload=workload,
                quiet=args.quiet,
            )

        for name, value in args.var:
            target.commands_string(f"variable {name} equal {value}")

        with open(args.script) as fh:
            target.commands_string(fh.read())
    finally:
        if tools:
            for report in kp.finalize_all():
                print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
