"""SNAP: the Spectral Neighbor Analysis Potential (paper section 4.3).

A from-scratch implementation of the machine-learning potential of
Thompson et al. (2015): atomic neighborhoods are expanded on the 3-sphere in
Wigner U-matrices computed by the half-integer recursion of equation 2,
bispectrum components are the Clebsch-Gordan triple products of equation 3,
and the energy is their learned linear combination (equation 4).  Forces
contract the adjoint of the energy against the recursion derivatives
(equation 5).

The module layout mirrors the paper's four-kernel decomposition:

* :mod:`repro.snap.cg` — exact Clebsch-Gordan coefficients on the
  half-integer (doubled-index) lattice;
* :mod:`repro.snap.indexing` — quantum-number flattening (j slowest, m'
  fastest; section 4.3.1) and the precomputed sparse contraction tensor;
* :mod:`repro.snap.wigner` — the Cayley-Klein/Wigner recursion for u and
  du/dr, vectorized over (atom, neighbor) pairs;
* :mod:`repro.snap.compute_ui` — ComputeUi: accumulate per-pair u into
  per-atom U (with the work-batching knob of section 4.3.4);
* :mod:`repro.snap.bispectrum` — B components (energy / training targets);
* :mod:`repro.snap.compute_yi` — ComputeYi: the adjoint arrays;
* :mod:`repro.snap.compute_deidrj` — ComputeFusedDeidrj: per-pair force
  contraction fused over the three directions;
* :mod:`repro.snap.pair_snap` — ``pair_style snap`` / ``snap/kk``.

Coefficients are synthetic (seeded pseudo-random; DESIGN.md substitution
table) but the potential is a real differentiable functional — rotation
invariance of B and finite-difference force consistency are property-tested.
"""

from repro.snap.indexing import SnapIndex

__all__ = ["SnapIndex"]

# Register the pair styles.  Imported last: pair_snap imports back into
# this package (LAMMPS package registration order has the same shape).
from repro.snap import pair_snap as _ps  # noqa: E402,F401

del _ps
