"""ComputeFusedDeidrj: per-pair force contraction (steps 3+4, fused).

For each (atom, neighbor) pair the weighted Wigner derivative is

    dU_pair/dr = (dsfac/dr) rhat (x) u_pair + sfac * du_pair,

(the ComputeDuidrj recursion), and the force contribution contracts it
against the adjoints:

    dE/dr_k = Re( Y12[i] . dU_k + Y3[i] . conj(dU_k) ).

All three Cartesian directions are evaluated in one pass — the paper's
ComputeFusedDeidrj, which eliminated the redundant recomputation of u and
the repeated loads of Y between the per-direction kernels (Table 2's
1.49x / 1.74x uplift).  Pairs are processed in chunks so the du staging
never exceeds a bounded footprint — the Python analogue of eliminating
global-memory staging (section 4.3.3).
"""

from __future__ import annotations

import numpy as np

from repro.snap.wigner import compute_u_blocks, switching

#: pairs processed per chunk (bounds du memory: chunk * 3 * idxu * 16B)
PAIR_CHUNK = 8192


def compute_fused_deidrj(
    rij: np.ndarray,
    pair_i: np.ndarray,
    Y12: np.ndarray,
    Y3: np.ndarray,
    rcut: float,
    twojmax: int,
    *,
    rmin0: float = 0.0,
    chunk: int = PAIR_CHUNK,
) -> np.ndarray:
    """``dE/dr_k`` for every pair, shape (npairs, 3) real.

    ``rij = x_neighbor - x_center``; the caller applies Newton's third law
    (force on the neighbor, opposite force on the center).
    """
    npairs = rij.shape[0]
    dedr = np.zeros((npairs, 3))
    for lo in range(0, npairs, chunk):
        sl = slice(lo, min(lo + chunk, npairs))
        rij_c = rij[sl]
        u, du = compute_u_blocks(
            rij_c, rcut, rmin0=rmin0, twojmax=twojmax, derivatives=True
        )
        r = np.sqrt(np.einsum("ij,ij->i", rij_c, rij_c))
        sfac, dsfac = switching(r, rcut, rmin0)
        rhat = rij_c / r[:, None]
        # dU = dsfac rhat (x) u + sfac du   — (chunk, 3, idxu)
        dU = (dsfac[:, None] * rhat)[:, :, None] * u[:, None, :]
        dU += sfac[:, None, None] * du
        ya = Y12[pair_i[sl]]
        yb = Y3[pair_i[sl]]
        dedr[sl] = np.real(
            np.einsum("pm,pdm->pd", ya, dU) + np.einsum("pm,pdm->pd", yb, np.conj(dU))
        )
    return dedr
