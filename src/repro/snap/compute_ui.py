"""ComputeUi: accumulate per-pair Wigner matrices into per-atom U.

Step (1) of the paper's four-step SNAP evaluation: every (atom, neighbor)
pair's ``u_j`` set is weighted by the radial switching function and summed
into the per-atom total ``U_j``; the central atom contributes the identity
(``wself`` on the diagonal).  On GPUs this accumulation is the
atomic-addition-limited kernel whose work batching (each thread summing
``batch`` neighbors locally before one atomic add) gives the 2.23x H100
uplift of Table 2 — the ``batch`` argument reproduces that reduction in
atomic traffic for the cost model while leaving results bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.kokkos.segment import scatter_add
from repro.snap.indexing import SnapIndex
from repro.snap.wigner import compute_u_blocks, switching


def compute_ui(
    rij: np.ndarray,
    pair_i: np.ndarray,
    natoms: int,
    rcut: float,
    twojmax: int,
    *,
    rmin0: float = 0.0,
    wself: float = 1.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-atom totals.

    Returns ``(U, u_pairs, sfac)``: ``U`` is (natoms, idxu_max) complex,
    ``u_pairs`` the bare per-pair matrices (reused by the force pass), and
    ``sfac`` the per-pair switching weights.
    """
    idx = SnapIndex(twojmax)
    u_pairs, _ = compute_u_blocks(rij, rcut, rmin0=rmin0, twojmax=twojmax)
    r = np.sqrt(np.einsum("ij,ij->i", rij, rij))
    sfac, _ = switching(r, rcut, rmin0)

    U = np.zeros((natoms, idx.idxu_max), dtype=np.complex128)
    # pair_i follows the row-major list ordering, so the per-atom totals are
    # one reduceat over contiguous segments instead of atomic adds
    scatter_add(U, pair_i, sfac[:, None] * u_pairs, assume_sorted=True)
    U[:, idx.diag_indices()] += wself
    return U, u_pairs, sfac


def ui_atomic_adds(npairs: int, idxu_max: int, batch: int = 1) -> float:
    """Atomic FP64 additions ComputeUi issues (cost-profile helper).

    Each pair contributes ``2 * idxu_max`` scalar adds (complex); local
    pre-summing over ``batch`` neighbors divides the atomic traffic
    (section 4.3.4's ComputeUi optimization).
    """
    if batch < 1:
        raise ValueError("batch must be >= 1")
    return 2.0 * idxu_max * npairs / batch
