"""ComputeYi: the adjoint arrays (step 2 of the SNAP evaluation).

The energy is trilinear in the U totals,

    E_i = sum_b beta_b sum_t C_t U[in1] U[in2] conj(U[out]),

so its gradient with respect to U splits into an unconjugated adjoint
``Y12`` (terms where U appears bare) and a conjugated adjoint ``Y3`` (terms
where U appears conjugated):

    dE_i = Re( sum_m Y12[m] dU[m] + Y3[m] conj(dU[m]) ).

LAMMPS folds these into a single Y via U-matrix symmetries; we keep the
two-slot form, which has identical computational structure (one sparse
contraction pass over the same tensor, memory-bound on U loads — the L1
story of figure 3) and is transparently finite-difference verifiable.

The ``batch`` knob models section 4.3.4's ComputeYi work batching: threads
handling several atoms share the Clebsch-Gordan look-up table traffic,
reducing L1 transactions (Table 2's 1.54x on H100).
"""

from __future__ import annotations

import numpy as np

from repro.kokkos.segment import scatter_add_columns, scatter_mode
from repro.snap.indexing import SnapIndex

_TERM_CHUNK = 16384


def compute_yi(
    U: np.ndarray, beta: np.ndarray, twojmax: int
) -> tuple[np.ndarray, np.ndarray]:
    """``(Y12, Y3)``: adjoints of the energy with respect to U / conj(U)."""
    idx = SnapIndex(twojmax)
    t = idx.tensor
    if beta.shape != (idx.nbispectrum,):
        raise ValueError(
            f"beta has {beta.shape}, expected ({idx.nbispectrum},)"
        )
    y12 = np.zeros_like(U)
    y3 = np.zeros_like(U)
    mode = scatter_mode()
    for lo in range(0, t.nterms, _TERM_CHUNK):
        hi = min(lo + _TERM_CHUNK, t.nterms)
        sl = slice(lo, hi)
        w = beta[t.ib[sl]] * t.coeff[sl]
        u1 = U[:, t.in1[sl]]
        u2 = U[:, t.in2[sl]]
        cu3 = np.conj(U[:, t.out[sl]])
        # column scatters over the memoized per-chunk term sort (natoms is
        # only a batch axis — the reduction runs along the term axis)
        scatter_add_columns(
            y12, w * u2 * cu3, t.column_plan("in1", lo, hi),
            mode=mode, cols=t.in1[sl],
        )
        scatter_add_columns(
            y12, w * u1 * cu3, t.column_plan("in2", lo, hi),
            mode=mode, cols=t.in2[sl],
        )
        scatter_add_columns(
            y3, w * u1 * u2, t.column_plan("out", lo, hi),
            mode=mode, cols=t.out[sl],
        )
    return y12, y3


def yi_l1_transactions(natoms: int, nterms: int, batch: int = 1) -> float:
    """L1 look-up-table transactions (cost-profile helper).

    The CG coefficient stream is shared across atoms; batching ``batch``
    atoms per thread amortizes it (section 4.3.4).
    """
    if batch < 1:
        raise ValueError("batch must be >= 1")
    return nterms * (natoms / batch + natoms)
