"""Quantum-number index spaces for SNAP (paper section 4.3.1).

The U/Y data structures have four degrees of freedom (atom, j, m, m'); the
(j, m, m') triplets flatten into one "quantum number" index with j slowest
and m' fastest, "so rows and columns of matrices stay together".  This
module owns that flattening, the bispectrum triple list (``0 <= j2 <= j1 <=
j <= J`` after the group-theoretic reductions), and the precomputed sparse
contraction tensor through which ComputeYi/ComputeBi evaluate the
Clebsch-Gordan triple products.

All angular momenta use the doubled (``2j``) integer convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kokkos.segment import column_scatter_plan
from repro.snap.cg import clebsch_gordan, triangle_ok


@dataclass
class ContractionTensor:
    """Sparse COO tensor for ``B_b = sum C * U[in1] * U[in2] * conj(U[out])``.

    One row per non-zero Clebsch-Gordan product pair; the same arrays drive
    the bispectrum (energy) and the adjoint (force) contractions.
    """

    ib: np.ndarray  # bispectrum-component index per term
    out: np.ndarray  # flat index into U_j (the conjugated slot)
    in1: np.ndarray  # flat index into U_j1
    in2: np.ndarray  # flat index into U_j2
    coeff: np.ndarray  # real coefficient (product of two CG values)
    #: memoized column-scatter plans keyed by (index field, term range) —
    #: the destination columns are a property of the quantum-number tensor,
    #: so the sort is paid once per twojmax, not once per force call
    _column_plans: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def nterms(self) -> int:
        return len(self.coeff)

    def column_plan(
        self, name: str, lo: int, hi: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Segmented-scatter plan for ``<name>[lo:hi]`` destination columns."""
        key = (name, lo, hi)
        plan = self._column_plans.get(key)
        if plan is None:
            plan = column_scatter_plan(getattr(self, name)[lo:hi])
            self._column_plans[key] = plan
        return plan


class SnapIndex:
    """All index machinery for one ``twojmax``."""

    _cache: dict[int, "SnapIndex"] = {}

    def __new__(cls, twojmax: int) -> "SnapIndex":
        if twojmax not in cls._cache:
            inst = super().__new__(cls)
            inst._build(twojmax)
            cls._cache[twojmax] = inst
        return cls._cache[twojmax]

    def _build(self, twojmax: int) -> None:
        if twojmax < 0:
            raise ValueError("twojmax must be >= 0")
        self.twojmax = twojmax
        # idxu_block[j2x] = offset of the (j+1)^2 block for doubled-j j2x
        self.idxu_block = np.zeros(twojmax + 2, dtype=np.int64)
        for j2x in range(twojmax + 1):
            self.idxu_block[j2x + 1] = self.idxu_block[j2x] + (j2x + 1) ** 2
        self.idxu_max = int(self.idxu_block[twojmax + 1])

        #: bispectrum triples (j1x2, j2x2, jx2) with j2 <= j1 <= j
        self.idxb: list[tuple[int, int, int]] = []
        for j1 in range(twojmax + 1):
            for j2 in range(j1 + 1):
                for j in range(j1 - j2, min(twojmax, j1 + j2) + 1, 2):
                    if j >= j1:
                        self.idxb.append((j1, j2, j))
        self.nbispectrum = len(self.idxb)
        self._tensor: ContractionTensor | None = None

    # ------------------------------------------------------------- flatten
    def flat(self, j2x: int, mb: int, ma: int) -> int:
        """Flat quantum-number index (j slowest, ma = m' fastest)."""
        return int(self.idxu_block[j2x]) + mb * (j2x + 1) + ma

    def diag_indices(self) -> np.ndarray:
        """Flat indices of all (j, m, m) diagonal entries (wself slots)."""
        out = []
        for j2x in range(self.twojmax + 1):
            for m in range(j2x + 1):
                out.append(self.flat(j2x, m, m))
        return np.asarray(out, dtype=np.int64)

    # -------------------------------------------------------------- tensor
    @property
    def tensor(self) -> ContractionTensor:
        """The CG contraction tensor, built lazily (exact, cached)."""
        if self._tensor is None:
            self._tensor = self._build_tensor()
        return self._tensor

    def _build_tensor(self) -> ContractionTensor:
        ib_l: list[int] = []
        out_l: list[int] = []
        in1_l: list[int] = []
        in2_l: list[int] = []
        co_l: list[float] = []
        for ib, (j1, j2, j) in enumerate(self.idxb):
            assert triangle_ok(j1, j2, j)
            for mb in range(j + 1):
                mx2 = 2 * mb - j
                # row CG factors: m = m1 + m2
                row_terms = []
                for mb1 in range(j1 + 1):
                    m1x2 = 2 * mb1 - j1
                    m2x2 = mx2 - m1x2
                    if abs(m2x2) > j2:
                        continue
                    mb2 = (m2x2 + j2) // 2
                    c = clebsch_gordan(j1, m1x2, j2, m2x2, j, mx2)
                    if c != 0.0:
                        row_terms.append((mb1, mb2, c))
                if not row_terms:
                    continue
                for ma in range(j + 1):
                    max2 = 2 * ma - j
                    col_terms = []
                    for ma1 in range(j1 + 1):
                        m1px2 = 2 * ma1 - j1
                        m2px2 = max2 - m1px2
                        if abs(m2px2) > j2:
                            continue
                        ma2 = (m2px2 + j2) // 2
                        c = clebsch_gordan(j1, m1px2, j2, m2px2, j, max2)
                        if c != 0.0:
                            col_terms.append((ma1, ma2, c))
                    if not col_terms:
                        continue
                    out_idx = self.flat(j, mb, ma)
                    for mb1, mb2, cr in row_terms:
                        for ma1, ma2, cc in col_terms:
                            ib_l.append(ib)
                            out_l.append(out_idx)
                            in1_l.append(self.flat(j1, mb1, ma1))
                            in2_l.append(self.flat(j2, mb2, ma2))
                            co_l.append(cr * cc)
        return ContractionTensor(
            ib=np.asarray(ib_l, dtype=np.int64),
            out=np.asarray(out_l, dtype=np.int64),
            in1=np.asarray(in1_l, dtype=np.int64),
            in2=np.asarray(in2_l, dtype=np.int64),
            coeff=np.asarray(co_l),
        )
