"""``pair_style snap`` and ``pair_style snap/kk``.

Usage::

    pair_style snap <twojmax> <rcut>
    pair_coeff 1 1 <beta_scale> <beta_seed_mult>

Coefficients are synthetic: a seeded Gaussian vector scaled to
``beta_scale / sqrt(ncoeff)`` (DESIGN.md substitution table) — the index
space, kernel structure, and differentiability match the production Ta
potential of the paper (``2J_max = 8``, rcut 4.7 A).

The Kokkos style exposes the paper's tuning knobs — ComputeUi/Yi batch
factors, Deidrj fusion, and the ComputeYi atom-tile size ``v`` of section
4.3.2 — which alter only the kernel cost profiles; the physics is
bit-identical across all settings (asserted by tests).
"""

from __future__ import annotations

import numpy as np

import repro.kokkos as kk
from repro.core.errors import InputError
from repro.core.styles import register_pair
from repro.graph import plan as graph_plan
from repro.kokkos.core import Device, Host
from repro.kokkos.segment import scatter_add, scatter_sub
from repro.potentials.pair import Pair
from repro.snap.bispectrum import compute_bispectrum
from repro.snap.compute_deidrj import compute_fused_deidrj
from repro.snap.compute_ui import compute_ui, ui_atomic_adds
from repro.snap.compute_yi import compute_yi
from repro.snap.indexing import SnapIndex


def synthetic_beta(ncoeff: int, scale: float, seed: int = 777) -> np.ndarray:
    """Deterministic pseudo-random SNAP coefficients."""
    rng = np.random.default_rng(seed)
    return scale * rng.standard_normal(ncoeff) / np.sqrt(ncoeff)


@register_pair("snap")
class PairSNAP(Pair):
    """Host SNAP."""

    def settings(self, args: list[str]) -> None:
        if len(args) < 2:
            raise InputError("pair_style snap <twojmax> <rcut>")
        self.twojmax = int(args[0])
        if not 0 <= self.twojmax <= 12:
            raise InputError("twojmax must be in [0, 12]")
        self.rcut = float(args[1])
        if self.rcut <= 0:
            raise InputError("rcut must be positive")
        self.rmin0 = 0.0
        self.index = SnapIndex(self.twojmax)
        self.beta: np.ndarray | None = None
        if self.cut.shape[0] != 2:
            raise InputError("pair snap supports a single atom type")
        self.last_stats: dict = {}

    def coeff(self, args: list[str]) -> None:
        if len(args) != 4:
            raise InputError("pair_coeff 1 1 <beta_scale> <beta_seed_mult>")
        scale = float(args[2])
        seed = int(777 * float(args[3]))
        self.beta = synthetic_beta(self.index.nbispectrum, scale, seed)
        self.cut[1, 1] = self.rcut
        self.setflag[1, 1] = True

    def init(self) -> None:
        if self.beta is None:
            raise InputError("pair snap: coefficients not set")

    def neighbor_request(self) -> tuple[str, bool]:
        return "full", False

    @property
    def needs_reverse_comm(self) -> bool:
        # dE_i/dr_j is applied to the neighbor (possibly a ghost) as well as
        # the center, so ghost forces must flow back to their owners.
        return True

    def max_cutoff(self) -> float:
        return self.rcut

    # --------------------------------------------------------------- compute
    def compute(self, eflag: bool = True, vflag: bool = True) -> None:
        lmp = self.lmp
        atom = lmp.atom
        nlist = lmp.neigh_list
        self.reset_tallies()
        stats = self.last_stats = {}
        if nlist is None or nlist.total_pairs == 0:
            return
        nlocal = atom.nlocal
        x = atom.x[: atom.nall]

        geom = None
        if graph_plan.GRAPH:
            from repro.graph.pairwise import snap_geometry_graph

            geom = snap_geometry_graph(self, nlist, x)
        if geom is not None:
            i, j, rij = geom
        else:
            i, j = nlist.ij_pairs()
            rij = x[j] - x[i]
            rsq = np.einsum("ij,ij->i", rij, rij)
            mask = rsq < self.rcut**2
            i, j, rij = i[mask], j[mask], rij[mask]
        stats["npairs"] = len(i)
        stats["natoms"] = nlocal

        # (1) ComputeUi: per-pair Wigner sets -> per-atom totals
        U, _, _ = compute_ui(
            rij, i, nlocal, self.rcut, self.twojmax, rmin0=self.rmin0
        )
        # energy: bispectrum components dotted with the learned coefficients
        B = compute_bispectrum(U, self.twojmax)
        self.eng_vdwl += float((B @ self.beta).sum())
        # (2) ComputeYi: adjoint arrays
        Y12, Y3 = compute_yi(U, self.beta, self.twojmax)
        # (3+4) ComputeFusedDeidrj: per-pair force contraction, 3 directions
        dedr = compute_fused_deidrj(
            rij, i, Y12, Y3, self.rcut, self.twojmax, rmin0=self.rmin0
        )
        scatter_sub(atom.f, j, dedr)
        scatter_add(atom.f, i, dedr, assume_sorted=True)
        if vflag:
            w = -dedr
            self.virial[0] += float(np.dot(rij[:, 0], w[:, 0]))
            self.virial[1] += float(np.dot(rij[:, 1], w[:, 1]))
            self.virial[2] += float(np.dot(rij[:, 2], w[:, 2]))
            self.virial[3] += float(np.dot(rij[:, 0], w[:, 1]))
            self.virial[4] += float(np.dot(rij[:, 0], w[:, 2]))
            self.virial[5] += float(np.dot(rij[:, 1], w[:, 2]))
        self._charge_kernels(stats)

    def _charge_kernels(self, stats: dict) -> None:
        """Hook for the Kokkos style."""


@register_pair("snap/kk")
class PairSNAPKokkos(PairSNAP):
    """Kokkos SNAP with the section 4.3/4.4 tuning knobs."""

    kokkos_style = True

    def __init__(self, lmp, args, execution_space: str = "device") -> None:
        self.execution_space = Device if execution_space == "device" else Host
        #: work-batching factors (Table 2) and the ComputeYi tile (4.3.2)
        self.ui_batch = 4
        self.yi_batch = 4
        self.fuse_deidrj = True
        self.tile_v = 32
        super().__init__(lmp, args)

    def set_options(
        self,
        *,
        ui_batch: int | None = None,
        yi_batch: int | None = None,
        fuse_deidrj: bool | None = None,
        tile_v: int | None = None,
    ) -> None:
        if ui_batch is not None:
            if ui_batch < 1:
                raise InputError("ui_batch must be >= 1")
            self.ui_batch = ui_batch
        if yi_batch is not None:
            if yi_batch < 1:
                raise InputError("yi_batch must be >= 1")
            self.yi_batch = yi_batch
        if fuse_deidrj is not None:
            self.fuse_deidrj = fuse_deidrj
        if tile_v is not None:
            if tile_v < 1:
                raise InputError("tile_v must be >= 1")
            self.tile_v = tile_v

    def compute(self, eflag: bool = True, vflag: bool = True) -> None:
        atom_kk = self.lmp.atom_kk
        atom_kk.sync(self.execution_space, ("x", "type", "f"))
        super().compute(eflag, vflag)
        atom_kk.modified(Host, ("f",))

    # ------------------------------------------------------------- profiles
    def _charge_kernels(self, stats: dict) -> None:
        space = self.execution_space
        n = max(stats.get("natoms", 1), 1)
        npairs = max(stats.get("npairs", 1), 1)
        idxu = self.index.idxu_max
        # effective contraction terms after the symmetry folding a production
        # implementation applies (our COO tensor enumerates all images)
        nterms_eff = max(self.index.tensor.nterms / 36.0, 1.0)

        def charge(name: str, policy=None, **kw) -> None:
            kw.setdefault("cpu_efficiency", 0.15)  # dense quantum-number loops
            prof = kk.KernelProfile(name=name, **kw)
            pol = policy or kk.RangePolicy(space, 0, n)
            kk.parallel_for(name, pol, lambda idx: None, profile=prof)

        # ComputeUi: recursive polynomial evaluation is compute bound
        # (section 4.3.3); atomic accumulation into U is the limiter until
        # work batching sums `ui_batch` neighbors in registers first, which
        # also exposes instruction-level parallelism (section 4.3.4).
        recursion_flops = 40.0 * idxu
        ilp = min(1.0 + 0.12 * (self.ui_batch - 1), 1.4)
        charge(
            "ComputeUi",
            policy=kk.TeamPolicy(
                space,
                league_size=max(npairs // (4 * self.ui_batch), 1),
                team_size=4,
                vector_length=max(min(self.twojmax + 1, 8), 1),
                scratch_kb=20.0,
            ),
            flops=recursion_flops * npairs / ilp,
            bytes_streamed=32.0 * npairs + 16.0 * idxu * n,
            atomic_ops=ui_atomic_adds(npairs, idxu, self.ui_batch),
            # batching narrows the thread count but the extra per-thread ILP
            # keeps latency hidden; exposed parallelism stays pair-scaled
            parallel_items=float(npairs),
            l2_working_set_mb=16.0 * idxu * n / 1e6,
        )
        # ComputeYi: L1-throughput limited — per-atom U blocks stay hot for
        # tile_v atoms (section 4.3.2's 3-d tiling); Clebsch-Gordan look-up
        # tables are warp-uniform and their transactions amortize over the
        # yi_batch atoms each thread handles (section 4.3.4).
        charge(
            "ComputeYi",
            flops=6.0 * nterms_eff * n,
            bytes_streamed=4.0 * idxu * n,
            bytes_reusable=nterms_eff * (16.0 + 16.0 / self.yi_batch) * n,
            # the tile's U blocks (16 B complex x idxu x v atoms) plus the
            # warp-shared look-up tables; 160 kB at the H100-ideal v = 32
            l1_working_set_kb=16.0 * idxu * self.tile_v / 1024.0 + 18.0,
            batch_width=float(self.tile_v),
            # the tiled traversal keeps the L2-level footprint bounded
            l2_working_set_mb=40.0,
            parallel_items=float(n),
        )
        # ComputeFusedDeidrj: recursion + derivative + adjoint contraction
        # per pair.  Unfused, three per-direction kernels each redo the u
        # recursion and reload Y (the Table 2 fusion).
        passes = 1 if self.fuse_deidrj else 3
        name = "ComputeFusedDeidrj" if self.fuse_deidrj else "ComputeDeidrj"
        per_pass_flops = (
            recursion_flops * (2.2 if self.fuse_deidrj else 1.0) + 16.0 * idxu
        )
        charge(
            name,
            policy=kk.TeamPolicy(
                space,
                league_size=max(npairs // 4, 1),
                team_size=4,
                vector_length=max(min(self.twojmax + 1, 8), 1),
                scratch_kb=34.0,
            ),
            flops=per_pass_flops * npairs * passes,
            bytes_streamed=(16.0 * idxu * n + 40.0 * npairs) * passes,
            bytes_reusable=16.0 * idxu * npairs / 40.0 * passes,
            l1_working_set_kb=96.0,
            l2_working_set_mb=32.0 * idxu * n / 1e6,
            parallel_items=float(npairs),
            launches=passes,
        )
