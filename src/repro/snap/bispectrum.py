"""Bispectrum components: the Clebsch-Gordan triple products (equation 3).

``B_{j1,j2,j} = Z_{j1,j2}^j : U_j^*`` evaluated through the precomputed
sparse contraction tensor.  The result is real (group theory guarantees it;
the tests assert the imaginary residue is numerically zero) and invariant
under rotations of the neighborhood — the property that makes SNAP a valid
descriptor.
"""

from __future__ import annotations

import numpy as np

from repro.kokkos.segment import scatter_add_columns, scatter_mode
from repro.snap.indexing import SnapIndex

#: chunk of contraction terms evaluated per vector op (memory bound)
_TERM_CHUNK = 16384


def compute_bispectrum(U: np.ndarray, twojmax: int) -> np.ndarray:
    """(natoms, nbispectrum) real bispectrum from per-atom U totals."""
    idx = SnapIndex(twojmax)
    t = idx.tensor
    natoms = U.shape[0]
    B = np.zeros((natoms, idx.nbispectrum), dtype=np.complex128)
    mode = scatter_mode()
    for lo in range(0, t.nterms, _TERM_CHUNK):
        hi = min(lo + _TERM_CHUNK, t.nterms)
        sl = slice(lo, hi)
        vals = (
            t.coeff[sl]
            * U[:, t.in1[sl]]
            * U[:, t.in2[sl]]
            * np.conj(U[:, t.out[sl]])
        )
        scatter_add_columns(
            B, vals, t.column_plan("ib", lo, hi), mode=mode, cols=t.ib[sl]
        )
    imag = float(np.abs(B.imag).max()) if B.size else 0.0
    if imag > 1e-8 * max(float(np.abs(B.real).max()), 1.0):
        raise FloatingPointError(
            f"bispectrum imaginary residue {imag:.3e}: U totals are not a "
            "valid SU(2) expansion (indexing bug)"
        )
    return B.real
