"""Exact Clebsch-Gordan coefficients on the half-integer lattice.

All angular momenta are passed in LAMMPS's *doubled* integer convention
(``j2x = 2j``), so half-integers stay exact.  Coefficients are computed with
exact integer factorials (Python bignums) and cached; the group-theoretic
symmetries the SNAP index space relies on (section 4.3: ``0 <= j2 <= j1 <=
j <= J``) are property-tested against these values.
"""

from __future__ import annotations

import math
from functools import lru_cache


def _fact(n2: int) -> int:
    """Factorial of a doubled-index quantity; ``n2`` must be even and >= 0."""
    if n2 < 0 or n2 % 2:
        raise ValueError(f"factorial argument {n2}/2 is not a non-negative integer")
    return math.factorial(n2 // 2)


def triangle_ok(j1x2: int, j2x2: int, jx2: int) -> bool:
    """Angular-momentum triangle rule plus integer-sum condition."""
    return (
        abs(j1x2 - j2x2) <= jx2 <= j1x2 + j2x2 and (j1x2 + j2x2 + jx2) % 2 == 0
    )


@lru_cache(maxsize=None)
def clebsch_gordan(
    j1x2: int, m1x2: int, j2x2: int, m2x2: int, jx2: int, mx2: int
) -> float:
    """``<j1 m1 j2 m2 | j m>`` with all arguments doubled.

    Exact rational arithmetic under the square root; returns 0 for any
    selection-rule violation.
    """
    if mx2 != m1x2 + m2x2:
        return 0.0
    if not triangle_ok(j1x2, j2x2, jx2):
        return 0.0
    for jx, mx in ((j1x2, m1x2), (j2x2, m2x2), (jx2, mx2)):
        if abs(mx) > jx or (jx + mx) % 2:
            return 0.0

    # Racah's formula, everything in doubled units (sums are even by the
    # selection rules, so _fact arguments are valid).
    pref_num = (
        _fact(j1x2 + j2x2 - jx2)
        * _fact(j1x2 - j2x2 + jx2)
        * _fact(-j1x2 + j2x2 + jx2)
        * (jx2 + 1)
    )
    pref_den = _fact(j1x2 + j2x2 + jx2 + 2)
    m_num = (
        _fact(j1x2 + m1x2)
        * _fact(j1x2 - m1x2)
        * _fact(j2x2 + m2x2)
        * _fact(j2x2 - m2x2)
        * _fact(jx2 + mx2)
        * _fact(jx2 - mx2)
    )

    zmin = max(0, (j2x2 - jx2 - m1x2) // 2, (j1x2 - jx2 + m2x2) // 2)
    zmax = min(
        (j1x2 + j2x2 - jx2) // 2,
        (j1x2 - m1x2) // 2,
        (j2x2 + m2x2) // 2,
    )
    total = 0
    # accumulate the alternating sum exactly as a rational with common
    # denominator folded in at the end (use fractions via integer math)
    from fractions import Fraction

    s = Fraction(0)
    for z in range(zmin, zmax + 1):
        z2 = 2 * z
        den = (
            _fact(z2)
            * _fact(j1x2 + j2x2 - jx2 - z2)
            * _fact(j1x2 - m1x2 - z2)
            * _fact(j2x2 + m2x2 - z2)
            * _fact(jx2 - j2x2 + m1x2 + z2)
            * _fact(jx2 - j1x2 - m2x2 + z2)
        )
        s += Fraction((-1) ** z, den)
    if s == 0:
        return 0.0
    value = float(s) * math.sqrt(pref_num * m_num / pref_den)
    return value
