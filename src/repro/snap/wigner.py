"""Wigner U-matrix recursion on the 3-sphere, vectorized over pairs.

Equation 2 of the paper: relative positions map onto the unit 3-sphere
through Cayley-Klein parameters, and the half-integer family of Wigner
matrices ``u_j`` follows from the linear recursion ``u_j = F(u_{j-1/2})``.
The loop over quantum numbers has a serial dependency (section 4.3.3), so
the recursion runs layer by layer; every layer operation is vectorized over
the (atom, neighbor) pair axis, which is where the parallelism lives on
GPUs too.

The derivative recursion (``compute_duarray`` in LAMMPS) applies the product
rule through the same structure and is fused here with the value recursion
when requested, mirroring the hybrid evaluation of section 4.3.3.
"""

from __future__ import annotations

import numpy as np

from repro.snap.indexing import SnapIndex

#: angle scale factor (LAMMPS default rfac0)
RFAC0 = 0.99363


def switching(r: np.ndarray, rcut: float, rmin0: float) -> tuple[np.ndarray, np.ndarray]:
    """Cosine switching function ``(sfac, dsfac/dr)`` (LAMMPS switchflag=1)."""
    denom = rcut - rmin0
    s = np.pi * (r - rmin0) / denom
    sfac = 0.5 * (np.cos(s) + 1.0)
    dsfac = -0.5 * np.pi / denom * np.sin(s)
    inside = r < rcut
    return np.where(inside, sfac, 0.0), np.where(inside, dsfac, 0.0)


def _cayley_klein(
    rij: np.ndarray, rcut: float, rmin0: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Cayley-Klein parameters and their Cartesian gradients.

    Returns ``(r, ca, cb, dca, dcb)`` where ``ca = conj(a)``, ``cb =
    conj(b)`` enter the recursion directly, and ``dca``/``dcb`` have shape
    (npairs, 3).
    """
    x, y, z = rij[:, 0], rij[:, 1], rij[:, 2]
    r = np.sqrt(np.einsum("ij,ij->i", rij, rij))
    theta0 = RFAC0 * np.pi * (r - rmin0) / (rcut - rmin0)
    dtheta_dr = RFAC0 * np.pi / (rcut - rmin0)
    cot = np.cos(theta0) / np.sin(theta0)
    z0 = r * cot
    # dz0/dr = cot - r * (1 + cot^2) * dtheta/dr
    dz0_dr = cot - r * (1.0 + cot * cot) * dtheta_dr

    rhat = rij / r[:, None]
    dz0 = dz0_dr[:, None] * rhat  # (n, 3)

    r0sq = r * r + z0 * z0
    r0inv = 1.0 / np.sqrt(r0sq)
    # dr0inv = -r0inv^3 (r dr + z0 dz0)
    dr0inv = -(r0inv**3)[:, None] * (rij + z0[:, None] * dz0)

    a = r0inv * (z0 - 1j * z)
    b = r0inv * (y - 1j * x)
    da = dr0inv * (z0 - 1j * z)[:, None] + r0inv[:, None] * dz0.astype(complex)
    da[:, 2] += r0inv * (-1j)
    db = dr0inv * (y - 1j * x)[:, None]
    db[:, 1] += r0inv
    db[:, 0] += r0inv * (-1j)
    return r, np.conj(a), np.conj(b), np.conj(da), np.conj(db)


def _apply_symmetry(cur: np.ndarray, J: int, deriv: bool) -> None:
    """Fill rows ``mb > J/2`` from the inversion symmetry.

    ``u[J - mb][J - ma] = (-1)^(ma + mb) conj(u[mb][ma])`` (VMK 4.4).
    ``cur`` has the (mb, ma) block in its trailing two axes.
    """
    half = np.array([(-1.0) ** (J + mb) for mb in range(J // 2 + 1)])
    sign_c = (-1.0) ** np.arange(J + 1)
    for mb in range(J // 2 + 1):
        src = cur[..., mb, ::-1].copy()
        cur[..., J - mb, :] = (half[mb] * sign_c) * np.conj(src)


def compute_u_blocks(
    rij: np.ndarray,
    rcut: float,
    *,
    rmin0: float = 0.0,
    twojmax: int = 8,
    derivatives: bool = False,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Per-pair Wigner coefficients.

    Returns ``(u, du)``: ``u`` is (npairs, idxu_max) complex; ``du`` is
    (npairs, 3, idxu_max) when ``derivatives`` else None.  Values are the
    *bare* matrices — the caller applies the switching-function weight.
    """
    idx = SnapIndex(twojmax)
    n = rij.shape[0]
    u_flat = np.zeros((n, idx.idxu_max), dtype=np.complex128)
    du_flat = (
        np.zeros((n, 3, idx.idxu_max), dtype=np.complex128) if derivatives else None
    )
    if n == 0:
        return u_flat, du_flat

    r, ca, cb, dca, dcb = _cayley_klein(rij, rcut, rmin0)

    prev = np.ones((n, 1, 1), dtype=np.complex128)
    dprev = np.zeros((n, 3, 1, 1), dtype=np.complex128) if derivatives else None
    u_flat[:, 0] = 1.0

    for J in range(1, twojmax + 1):
        cur = np.zeros((n, J + 1, J + 1), dtype=np.complex128)
        dcur = (
            np.zeros((n, 3, J + 1, J + 1), dtype=np.complex128)
            if derivatives
            else None
        )
        for mb in range(J // 2 + 1):
            if mb > J - 1:
                # (possible only for J = 0; loop starts at J = 1)
                continue
            denom = np.sqrt(float(J - mb))
            ma = np.arange(J)
            rpq_a = np.sqrt((J - ma) / float(J - mb))
            rpq_b = np.sqrt((ma + 1) / float(J - mb))
            p = prev[:, mb, :]  # (n, J)
            cur[:, mb, :J] += rpq_a * (ca[:, None] * p)
            cur[:, mb, 1:] += -rpq_b * (cb[:, None] * p)
            if derivatives:
                dp = dprev[:, :, mb, :]  # (n, 3, J)
                dcur[:, :, mb, :J] += rpq_a * (
                    dca[:, :, None] * p[:, None, :] + ca[:, None, None] * dp
                )
                dcur[:, :, mb, 1:] += -rpq_b * (
                    dcb[:, :, None] * p[:, None, :] + cb[:, None, None] * dp
                )
        _apply_symmetry(cur, J, deriv=False)
        if derivatives:
            _apply_symmetry(dcur, J, deriv=True)
        lo, hi = idx.idxu_block[J], idx.idxu_block[J + 1]
        u_flat[:, lo:hi] = cur.reshape(n, -1)
        if derivatives:
            du_flat[:, :, lo:hi] = dcur.reshape(n, 3, -1)
        prev = cur
        dprev = dcur
    return u_flat, du_flat
