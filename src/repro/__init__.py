"""repro: a Python reproduction of LAMMPS-KOKKOS (SC Workshops '25).

A miniature LAMMPS with the KOKKOS package's architecture, the paper's
three case-study potentials (Lennard-Jones, ReaxFF-lite, SNAP) implemented
from scratch, and an analytic hardware model standing in for the exascale
GPUs and fabrics the paper measures.  See README.md for a tour, DESIGN.md
for the system inventory and substitution rationale, and EXPERIMENTS.md for
the paper-vs-measured record.

Top-level packages:

* :mod:`repro.core`       — the MD engine (input scripts, styles, dynamics)
* :mod:`repro.kokkos`     — the performance-portability layer
* :mod:`repro.hardware`   — simulated GPUs, CPUs, and interconnects
* :mod:`repro.parallel`   — simulated MPI + domain decomposition
* :mod:`repro.potentials` — pairwise/EAM/ML-IAP pair styles
* :mod:`repro.kspace`     — Ewald long-range electrostatics
* :mod:`repro.reaxff`     — the reactive force field package
* :mod:`repro.snap`       — the SNAP machine-learning potential package
* :mod:`repro.workloads`  — benchmark workload generators
* :mod:`repro.bench`      — the figure/table reproduction harness
"""

__version__ = "1.0.0"
