"""Batched replica engine: R independent simulations, one set of kernels.

The paper's work-batching result (Table 2) amortizes kernel-launch overhead
by stacking independent work items into one dispatch; this package applies
the same idea one level up, stacking *whole replicas* onto the atom axis:

* :class:`~repro.replica.batch.ReplicaBatch` — packs R single-rank
  :class:`~repro.core.Lammps` instances into one stacked
  :class:`~repro.core.atom.AtomVec` (leading-replica segmentation, per-atom
  ``replica_id`` custom field) and steps them all with one vectorized
  force/integrate/comm pass per step.  Per-replica results are bitwise
  identical to solo runs — the differential tests enforce it.
* :class:`~repro.replica.session.SessionManager` — an asyncio service that
  accepts many concurrent small jobs, shards them into batches by
  (workload family, pair style, size class), steps batches cooperatively,
  and streams per-replica thermo rows back to each session.
"""

from repro.replica.batch import ReplicaBatch
from repro.replica.session import ReplicaJobError, ReplicaSession, SessionManager

__all__ = [
    "ReplicaBatch",
    "ReplicaJobError",
    "ReplicaSession",
    "SessionManager",
]
