"""ReplicaBatch: R independent replicas stepped through one kernel set.

Small MD systems cannot saturate wide hardware — or, here, amortize Python
dispatch overhead.  Below the saturation size, throughput comes from running
*many systems per device* (Trott et al., PAPERS.md), so this engine packs R
independent single-rank :class:`~repro.core.Lammps` replicas into one
stacked :class:`~repro.core.atom.AtomVec` and advances them all with one
vectorized pass per step: one LJ/EAM force evaluation, one NVE
half-kick/drift, one staged ghost-comm replay — over arrays R times longer.

**Layout.**  The stacked array holds every replica's owned atoms first
(``[own_0 | own_1 | ...]``, so the "is j owned" predicate ``j < nlocal``
keeps its solo meaning), then every replica's ghosts.  Each atom carries its
``replica_id`` in a registered custom per-atom field, and each member keeps
``(own_off, nlocal, ghost_off, nghost)`` segment offsets.  Cross-replica
pairs cannot exist *structurally*: neighbor lists are built per replica (by
the member's own unchanged rebuild machinery) and only then translated into
the stacked index space.

**Bitwise equivalence.**  Per-replica trajectories and thermo are bit-for-bit
identical to solo runs, enforced by ``tests/test_replica_batch.py``.  The
engine earns this by construction:

* elementwise kernels (LJ/EAM pair math, NVE kicks) are replicated op for
  op, so each replica's rows see exactly the solo operation sequence;
* scatter adds accumulate per destination in input order in both
  ``atomic`` and ``segmented`` modes, and replica segments are disjoint, so
  concatenating streams never reorders any single destination's sum;
* reductions (pair tallies, thermo PE/KE/T/P) run per replica over
  contiguous slices via :func:`repro.kokkos.segment.segment_dot` /
  :func:`~repro.kokkos.segment.segment_slice_sums` — the same length, same
  values, same contiguity as the solo ``np.dot``/``.sum`` calls;
* ghost communication is replayed as recorded per-member swap *stages*
  (aligned by swap index, ragged-safe), preserving each member's staged
  order — including the bucket-brigade multi-hop semantics.

**Epochs.**  Between neighbor rebuilds the stacked arrays are the truth.
Each rebuild epoch re-hoists: stale members get their owned state synced
back, run their own solo ``rebuild_gen`` (exchange/sort/borders/build), and
the stacked arrays, pair plans, and comm-replay stages are rebuilt from all
members.  Per-replica neighbor staleness is tracked individually — one hot
replica rebuilding does not force the rest to.  The same hoisting implements
mid-flight join (``add_replica`` while running) and early termination
(``remove_replica`` compacts the stacked arrays via
:meth:`~repro.core.atom.AtomVec.delete_local`).

Pair-style coverage is the closed set in ``HANDLERS`` (host ``lj/cut`` and
``eam/fs``); batchability violations raise with the shared
``errors.unknown_choice`` did-you-mean hint where the set is closed.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.core.atom import AtomVec
from repro.core.errors import LammpsError, unknown_choice
from repro.kokkos.segment import (
    scatter_add,
    scatter_mode,
    scatter_sub,
    segment_dot,
    segment_slice_sums,
)
from repro.parallel.driver import drain
from repro.tools import metrics
from repro.tools import registry as kp

#: The registered custom per-atom field carrying each atom's replica id.
REPLICA_FIELD = "replica_id"


# ------------------------------------------------------------------ members
@dataclass
class _Member:
    """One replica: its solo Lammps instance plus stacked-segment offsets."""

    lmp: "object"
    rid: int
    index: int = 0  #: position in the members list == stacking order
    own_off: int = 0
    nlocal: int = 0
    ghost_off: int = 0
    nghost: int = 0
    #: this member's slice of the stored (unmasked) pair stream
    pair_lo: int = 0
    pair_hi: int = 0
    #: last force pass's tallies (only computed on this member's thermo steps)
    eng_now: float = 0.0
    virial_now: np.ndarray = field(default_factory=lambda: np.zeros(6))


@dataclass
class _Stage:
    """One aligned comm-replay stage: swap k of every member that has one."""

    src: np.ndarray  #: stacked indices read (mapped member sendlists)
    dst: np.ndarray  #: stacked ghost indices written (mapped recv ranges)
    shift: np.ndarray  #: per-row periodic shift, (n, 3)


@dataclass
class _PairPlan:
    """The stored pair stream of the whole batch, hoisted once per epoch."""

    i: np.ndarray  #: stacked i (owned, globally ascending)
    j: np.ndarray  #: stacked j (owned or ghost)
    cutsq: np.ndarray
    off: np.ndarray  #: member pair offsets, shape (R + 1,)
    coeffs: dict[str, np.ndarray]  #: per-pair coefficient vectors (by style)
    #: preallocated per-step scratch (keyed by shape role).  The stacked
    #: force pass works on multi-MB temporaries; reusing plan-lifetime
    #: buffers via ufunc ``out=`` keeps the per-step allocation footprint
    #: flat (same ops, same bits — only the destination storage changes).
    scratch: dict = field(default_factory=dict)

    def buffers(self) -> dict:
        if not self.scratch:
            n = self.i.shape[0]
            self.scratch = {
                "xi": np.empty((n, 3)),
                "xj": np.empty((n, 3)),
                "fv": np.empty((n, 3)),
                "nfv": np.empty((n, 3)),
                "rsq": np.empty(n),
                "s1": np.empty(n),
                "s2": np.empty(n),
                "s3": np.empty(n),
                "ii": np.empty(n, dtype=self.i.dtype),
                "jj": np.empty(n, dtype=self.j.dtype),
            }
        return self.scratch


# ----------------------------------------------------------- force handlers
class _LJHandler:
    """Stacked ``lj/cut``: half list, newton per the global setting."""

    style = "lj/cut"

    @staticmethod
    def gather(pair, itype: np.ndarray, jtype: np.ndarray) -> dict:
        # the same pre-gather the kernel-graph capture performs: 2-D fancy
        # indexing becomes per-stored-pair vectors, values unchanged
        return {
            "lj1": pair.lj1[itype, jtype],
            "lj2": pair.lj2[itype, jtype],
            "lj3": pair.lj3[itype, jtype],
            "lj4": pair.lj4[itype, jtype],
            "off": pair.offset[itype, jtype],
        }

    @staticmethod
    def atom_coeffs(batch) -> dict:
        return {}

    @staticmethod
    def force(batch: "ReplicaBatch", due: list[_Member]) -> None:
        atom = batch.atom
        plan = batch._plan
        atom.zero_forces()
        if plan.i.size == 0:
            for m in due:
                m.eng_now = 0.0
                m.virial_now = np.zeros(6)
            return
        x = atom.x
        sc = plan.buffers()
        # np.take row-gathers are ~2x faster than x[plan.i] fancy indexing
        # and produce identical bits (same gather, faster inner loop);
        # plan-lifetime out= buffers keep the big temporaries allocation-free
        xi = np.take(x, plan.i, axis=0, out=sc["xi"])
        xj = np.take(x, plan.j, axis=0, out=sc["xj"])
        dxf = np.subtract(xi, xj, out=xi)
        rsqf = np.einsum("ij,ij->i", dxf, dxf, out=sc["rsq"])
        mask = rsqf < plan.cutsq
        # select via flatnonzero + take: same rows as boolean indexing
        # (bit-identical) at a fraction of the cost
        idx = np.flatnonzero(mask)
        k = idx.shape[0]
        i = np.take(plan.i, idx, out=sc["ii"][:k])
        j = np.take(plan.j, idx, out=sc["jj"][:k])
        dx = np.take(dxf, idx, axis=0, out=sc["xj"][:k])
        rsq = np.take(rsqf, idx, out=sc["s1"][:k])
        c = plan.coeffs
        # PairLJCut.pair_eval, op for op, with masked pre-gathered coeffs:
        # r2inv = 1/rsq; r6inv = r2inv*r2inv*r2inv;
        # forcelj = r6inv*(lj1*r6inv - lj2); fpair = forcelj*r2inv
        r2inv = np.divide(1.0, rsq, out=sc["s2"][:k])
        r4inv = np.multiply(r2inv, r2inv, out=sc["s1"][:k])
        r6inv = np.multiply(r4inv, r2inv, out=r4inv)
        t = np.take(c["lj1"], idx, out=sc["s3"][:k])
        np.multiply(t, r6inv, out=t)
        t -= np.take(c["lj2"], idx)
        forcelj = np.multiply(r6inv, t, out=t)
        fpair = np.multiply(forcelj, r2inv, out=forcelj)
        fvec = np.multiply(fpair[:, None], dx, out=sc["fv"][:k])
        newton = batch._newton
        jlocal = None if newton else j < atom.nlocal
        mode = scatter_mode()
        scatter_add(atom.f, i, fvec, mode=mode, assume_sorted=True)
        if newton:
            # x - y == x + (-y) bitwise, so a preallocated negation feeds
            # scatter_add instead of letting scatter_sub allocate one
            nfv = np.negative(fvec, out=sc["nfv"][:k])
            scatter_add(atom.f, j, nfv, mode=mode)
        else:
            scatter_sub(atom.f, j[jlocal], fvec[jlocal], mode=mode)
        if due:
            evdwl = r6inv * (np.take(c["lj3"], idx) * r6inv - np.take(c["lj4"], idx))
            evdwl -= np.take(c["off"], idx)
            factor = np.ones(len(evdwl)) if newton else np.where(jlocal, 1.0, 0.5)
            batch._tally(due, mask, factor, evdwl, dx, fvec, base_eng=None)
        if newton:
            batch._reverse_f()


class _EAMHandler:
    """Stacked ``eam/fs``: full list, density + embed + fp comm + force."""

    style = "eam/fs"

    @staticmethod
    def gather(pair, itype: np.ndarray, jtype: np.ndarray) -> dict:
        n = itype.shape[0]
        return {
            "cp": pair.pair_c[itype, jtype],
            # the member's scalar cutoff as a per-pair vector: scalar-vs-r
            # broadcasts become elementwise ops on identical values
            "rc": np.full(n, pair.cut_global),
        }

    @staticmethod
    def atom_coeffs(batch) -> dict:
        parts = [
            m.lmp.pair.embed_A[
                batch.atom.type[m.own_off : m.own_off + m.nlocal]
            ]
            for m in batch.members
        ]
        return {"A_own": np.concatenate(parts) if parts else np.zeros(0)}

    @staticmethod
    def force(batch: "ReplicaBatch", due: list[_Member]) -> None:
        atom = batch.atom
        plan = batch._plan
        atom.zero_forces()
        nall = atom.nall
        atom.rho[:nall] = 0.0
        atom.fp[:nall] = 0.0
        if plan.i.size == 0:
            for m in due:
                m.eng_now = 0.0
                m.virial_now = np.zeros(6)
            return
        x = atom.x
        sc = plan.buffers()
        xi = np.take(x, plan.i, axis=0, out=sc["xi"])
        xj = np.take(x, plan.j, axis=0, out=sc["xj"])
        dxf = np.subtract(xi, xj, out=xi)
        rsqf = np.einsum("ij,ij->i", dxf, dxf, out=sc["rsq"])
        mask = rsqf < plan.cutsq
        idx = np.flatnonzero(mask)
        k = idx.shape[0]
        i = np.take(plan.i, idx, out=sc["ii"][:k])
        j = np.take(plan.j, idx, out=sc["jj"][:k])
        dx = np.take(dxf, idx, axis=0, out=sc["xj"][:k])
        r = np.sqrt(np.take(rsqf, idx, out=sc["s1"][:k]), out=sc["s1"][:k])
        rc = np.take(plan.coeffs["rc"], idx, out=sc["s2"][:k])
        # loop 1: electron density of owned atoms (PairEAM.dens)
        scatter_add(atom.rho, i, (rc - r) ** 2, assume_sorted=True)
        nown = atom.nlocal
        rho_own = atom.rho[:nown]
        A = batch._atom_coeffs["A_own"]
        base_eng = None
        if due:
            embed_vals = -A * np.sqrt(np.maximum(rho_own, 0.0))
            starts = np.array([m.own_off for m in due])
            ends = np.array([m.own_off + m.nlocal for m in due])
            base_eng = segment_slice_sums(embed_vals, starts, ends)
        safe = np.maximum(rho_own, 1e-30)
        atom.fp[:nown] = -0.5 * A / np.sqrt(safe)
        # figure 1's "additional communication": ghost fp before the force loop
        batch._forward_field("fp")
        fp = atom.fp
        fp_sum = np.take(fp, i) + np.take(fp, j)
        cp = np.take(plan.coeffs["cp"], idx)
        dphi = -2.0 * cp * (rc - r)
        ddens = -2.0 * (rc - r)
        fpair = -(dphi + fp_sum * ddens) / r
        fvec = np.multiply(fpair[:, None], dx, out=sc["fv"][:k])
        scatter_add(atom.f, i, fvec, assume_sorted=True)
        if due:
            evdwl = cp * (rc - r) ** 2
            factor = np.full(len(evdwl), 0.5)  # full list: every pair twice
            batch._tally(due, mask, factor, evdwl, dx, fvec, base_eng=base_eng)


HANDLERS = {h.style: h for h in (_LJHandler, _EAMHandler)}


# ---------------------------------------------------------------- the batch
class ReplicaBatch:
    """R single-rank replicas packed into one stacked AtomVec.

    Usage::

        batch = ReplicaBatch()
        rid = batch.add_replica(lmp)    # lmp fully set up (pair, fix nve...)
        batch.step(100)                  # all replicas advance together
        lmp = batch.remove_replica(rid)  # final state synced back to lmp

    Members may be at different timesteps, sizes, dt, thermo intervals, and
    neighbor policies; they must share one pair style (and newton setting).
    Thermo rows land in each member's own ``lmp.thermo.history``, exactly as
    a solo run would record them.
    """

    def __init__(self, label: str = "replica") -> None:
        self.label = label
        self.members: list[_Member] = []
        self.atom: AtomVec | None = None
        #: ``(rid, exception)`` pairs from members dropped by a failed
        #: rebuild — the fail-open path: the batch keeps stepping the rest,
        #: and the session manager routes each failure to its owning session.
        self.failures: list[tuple[int, Exception]] = []
        #: peak member count, the occupancy denominator
        self.capacity = 0
        self._next_rid = 0
        self._sig: tuple | None = None
        self._handler = None
        self._newton = False
        self._stages: list[_Stage] = []
        self._plan: _PairPlan | None = None
        self._atom_coeffs: dict[str, np.ndarray] = {}
        self._m_own = np.zeros(0)
        self._dt_col = np.zeros(0)
        self._dtf_col = np.zeros(0)
        self._epoch_t: float | None = None

    # ------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.members)

    @property
    def rids(self) -> list[int]:
        return [m.rid for m in self.members]

    def member(self, rid: int) -> "object":
        """The solo Lammps instance behind a live replica id."""
        return self._find(rid).lmp

    def _find(self, rid: int) -> _Member:
        for m in self.members:
            if m.rid == rid:
                return m
        raise LammpsError(
            f"unknown replica id {rid}; live ids: {self.rids}"
        )

    # ------------------------------------------------------------ admission
    def add_replica(self, lmp) -> int:
        """Fold a fully configured Lammps instance into the batch.

        Runs the member's own solo setup (pair init, neighbor build, initial
        forces, the forced step-0 thermo row — exactly ``run 0``'s prologue),
        then re-hoists the stacked arrays.  Joining mid-flight is the same
        operation: running members sync to their solo instances first, so
        the new epoch stacks everyone's current truth.
        """
        sig = self._validate(lmp)
        if self.members and sig != self._sig:
            raise LammpsError(
                f"replica signature mismatch: batch runs {self._sig}, "
                f"new member wants {sig} (pair style and newton must match)"
            )
        if self.members:
            self._sync_all_owned()
        with kp.kernel_scope(self.label):
            drain(lmp.verlet.setup_gen())
        lmp.world.assert_drained()
        m = _Member(lmp=lmp, rid=self._next_rid)
        self._next_rid += 1
        self.members.append(m)
        self._sig = sig
        self._handler = HANDLERS[sig[0]]
        self._newton = sig[2]
        self.capacity = max(self.capacity, len(self.members))
        self._hoist()
        return m.rid

    def _validate(self, lmp) -> tuple:
        if lmp.comm_size != 1:
            raise LammpsError(
                "replica members must be single-rank Lammps instances "
                "(multi-rank runs go through Ensemble)"
            )
        if lmp.atom is None:
            raise LammpsError("replica member has no simulation box")
        pair = lmp.pair
        if pair is None:
            raise LammpsError("replica member needs a pair style before batching")
        style = getattr(pair, "style_name", type(pair).__name__)
        if style not in HANDLERS or getattr(pair, "kokkos_style", False):
            raise LammpsError(
                unknown_choice("replica pair style", style, tuple(sorted(HANDLERS)))
            )
        fixes = lmp.modify.fixes
        if (
            len(fixes) != 1
            or type(fixes[0]).style_name != "nve"
            or fixes[0].group != "all"
        ):
            got = [f"{type(f).style_name}({f.group})" for f in fixes] or ["none"]
            raise LammpsError(
                "replica members must integrate with exactly 'fix all nve'; "
                f"got {', '.join(got)}"
            )
        if lmp.kspace is not None:
            raise LammpsError("replica members cannot use kspace styles")
        if lmp.dumps:
            raise LammpsError("replica members cannot have dumps attached")
        if lmp.overlap_comm:
            raise LammpsError("replica members cannot use overlapped comm")
        if lmp.autotuner is not None or lmp.autotune_request is not None:
            raise LammpsError(
                "autotune the solo workload first; replica members cannot "
                "carry an autotuner"
            )
        if "tune" in lmp.thermo.columns:
            raise LammpsError(
                "replica members cannot use the 'tune' thermo column"
            )
        style_req, newton = pair.neighbor_request()
        return (style, style_req, newton)

    # ----------------------------------------------------------- retirement
    def remove_replica(self, rid: int) -> "object":
        """Retire one replica: sync its final state back, compact the rest.

        The stacked arrays shrink in place
        (:meth:`~repro.core.atom.AtomVec.delete_local` keyed on the
        ``replica_id`` custom field), surviving replicas keep their relative
        order, and the epoch plans are rebuilt over the compacted layout.
        Returns the member's solo Lammps instance, holding its final state.
        """
        m = self._find(rid)
        self._sync_member(m)
        self.members.remove(m)
        if not self.members:
            self._reset_empty()
            return m.lmp
        assert self.atom is not None
        self.atom.clear_ghosts()
        ridcol = self.atom.custom[REPLICA_FIELD][: self.atom.nlocal, 0]
        self.atom.delete_local(ridcol != rid)
        self._hoist(reuse_owned=True)
        return m.lmp

    def _reset_empty(self) -> None:
        self.atom = None
        self._stages = []
        self._plan = None
        self._atom_coeffs = {}
        self._m_own = self._dt_col = self._dtf_col = np.zeros(0)
        if metrics.SINKS and self.capacity:
            metrics.set_gauge(
                "replica_batch_occupancy", 0.0, batch=self.label
            )

    # ------------------------------------------------------------- syncing
    def _sync_member(self, m: _Member) -> None:
        """Copy a member's stacked owned rows back into its solo arrays."""
        a = m.lmp.atom
        n = m.nlocal
        sl = slice(m.own_off, m.own_off + n)
        st = self.atom
        a.x[:n] = st.x[sl]
        a.v[:n] = st.v[sl]
        a.f[:n] = st.f[sl]
        a.q[:n] = st.q[sl]
        for name, arr in a.custom.items():
            arr[:n] = st.custom[name][sl]

    def _sync_all_owned(self) -> None:
        if self.atom is not None:
            for m in self.members:
                self._sync_member(m)

    # -------------------------------------------------------------- hoisting
    def _hoist(self, *, reuse_owned: bool = False) -> None:
        """Rebuild the stacked epoch state from the members' solo truth.

        ``reuse_owned`` skips restacking the owned rows (the compaction path
        already holds them, in order); everything derived — ghosts, comm
        stages, pair plans, per-atom integration constants — is rebuilt.
        """
        now = time.perf_counter()
        if metrics.SINKS:
            if self._epoch_t is not None:
                metrics.observe(
                    "replica_epoch_seconds", now - self._epoch_t, batch=self.label
                )
            metrics.set_gauge(
                "replica_batch_occupancy",
                len(self.members) / max(self.capacity, 1),
                batch=self.label,
            )
        self._epoch_t = now
        members = self.members
        nown = 0
        for idx, m in enumerate(members):
            a = m.lmp.atom
            m.index = idx
            m.own_off = nown
            m.nlocal = a.nlocal
            m.nghost = a.nghost
            nown += a.nlocal
        ghost_off = nown
        for m in members:
            m.ghost_off = ghost_off
            ghost_off += m.nghost

        if reuse_owned:
            atom = self.atom
            assert atom is not None and atom.nlocal == nown
            atom.clear_ghosts()
        else:
            atom = AtomVec(ntypes=max(m.lmp.atom.ntypes for m in members))
            specs: dict[str, tuple[int, np.dtype]] = {}
            for m in members:
                for name, arr in m.lmp.atom.custom.items():
                    spec = (arr.shape[1], arr.dtype)
                    if specs.setdefault(name, spec) != spec:
                        raise LammpsError(
                            f"custom field {name!r} has mismatched shape/dtype "
                            "across replicas"
                        )
            custom = {
                name: np.concatenate(
                    [
                        m.lmp.atom.custom[name][: m.nlocal]
                        if name in m.lmp.atom.custom
                        else np.zeros((m.nlocal, w), dtype=dt)
                        for m in members
                    ]
                )
                for name, (w, dt) in specs.items()
            }
            custom[REPLICA_FIELD] = np.concatenate(
                [np.full((m.nlocal, 1), m.rid, dtype=np.int64) for m in members]
            )
            atom.replace_local(
                x=np.concatenate([m.lmp.atom.x[: m.nlocal] for m in members]),
                v=np.concatenate([m.lmp.atom.v[: m.nlocal] for m in members]),
                types=np.concatenate(
                    [m.lmp.atom.type[: m.nlocal] for m in members]
                ),
                tags=np.concatenate([m.lmp.atom.tag[: m.nlocal] for m in members]),
                q=np.concatenate([m.lmp.atom.q[: m.nlocal] for m in members]),
                custom=custom,
            )
            # carry the members' current forces: the very next initial
            # half-kick reads them (replace_local does not take f)
            atom.f[:nown] = np.concatenate(
                [m.lmp.atom.f[: m.nlocal] for m in members]
            )
            self.atom = atom

        for m in members:
            a = m.lmp.atom
            atom.add_ghosts(
                {
                    "x": a.x[a.nlocal : a.nall],
                    "tag": a.tag[a.nlocal : a.nall],
                    "type": a.type[a.nlocal : a.nall],
                    "q": a.q[a.nlocal : a.nall],
                }
            )

        # per-atom integration constants (FixNVE's scalars, per member)
        self._m_own = np.concatenate(
            [
                m.lmp.atom.mass[atom.type[m.own_off : m.own_off + m.nlocal]]
                for m in members
            ]
        )
        self._dt_col = np.concatenate(
            [np.full(m.nlocal, m.lmp.update.dt) for m in members]
        )
        self._dtf_col = np.concatenate(
            [
                np.full(
                    m.nlocal, 0.5 * m.lmp.update.dt * m.lmp.update.units.ftm2v
                )
                for m in members
            ]
        )

        self._build_stages()
        self._build_pair_plan()
        self._atom_coeffs = self._handler.atom_coeffs(self)
        # refresh every member's ghost positions from the stacked owned rows
        # (idempotent for just-rebuilt members: ghosts are pure functions of
        # owned x + shift, so the replay reproduces their current bits)
        self._forward_x()

    def _map_local(self, m: _Member, idx: np.ndarray) -> np.ndarray:
        """Member-local indices (owned + ghost) -> stacked indices."""
        return np.where(
            idx < m.nlocal, m.own_off + idx, m.ghost_off + (idx - m.nlocal)
        )

    def _build_stages(self) -> None:
        """Align every member's recorded swaps by index into replay stages.

        Stage k holds swap k of each member that has one; members with fewer
        swaps simply stop participating.  Iterating stages forward replays
        each member's forward comm in its own swap order, and iterating them
        backward replays the reverse pass — the bucket-brigade ordering the
        solo CommBrick uses.
        """
        self._stages = []
        nstage = max(
            (len(m.lmp.comm_brick.swaps) for m in self.members), default=0
        )
        for k in range(nstage):
            src_parts, dst_parts, shift_parts = [], [], []
            for m in self.members:
                swaps = m.lmp.comm_brick.swaps
                if k >= len(swaps):
                    continue
                sw = swaps[k]
                if sw.sendlist.size == 0 and sw.nrecv == 0:
                    continue
                src_parts.append(self._map_local(m, sw.sendlist))
                first = m.ghost_off + (sw.firstrecv - m.nlocal)
                dst_parts.append(np.arange(first, first + sw.nrecv))
                shift_parts.append(
                    np.repeat(sw.shift[None, :], sw.sendlist.size, axis=0)
                )
            if not src_parts:
                continue
            self._stages.append(
                _Stage(
                    src=np.concatenate(src_parts),
                    dst=np.concatenate(dst_parts),
                    shift=np.concatenate(shift_parts),
                )
            )

    def _build_pair_plan(self) -> None:
        handler = self._handler
        i_parts, j_parts, cut_parts = [], [], []
        coeff_parts: dict[str, list[np.ndarray]] = {}
        off = [0]
        total = 0
        for m in self.members:
            lmp = m.lmp
            nlist = lmp.neigh_list
            i_l, j_l, itype, jtype, cutsq = lmp.pair.pair_table(
                nlist, lmp.atom, "all"
            )
            m.pair_lo = total
            total += i_l.shape[0]
            m.pair_hi = total
            off.append(total)
            i_parts.append(m.own_off + i_l.astype(np.int64))
            j_parts.append(self._map_local(m, j_l.astype(np.int64)))
            cut_parts.append(cutsq)
            for name, vec in handler.gather(lmp.pair, itype, jtype).items():
                coeff_parts.setdefault(name, []).append(vec)
        empty = np.zeros(0, dtype=np.int64)
        self._plan = _PairPlan(
            i=np.concatenate(i_parts) if i_parts else empty,
            j=np.concatenate(j_parts) if j_parts else empty,
            cutsq=np.concatenate(cut_parts) if cut_parts else np.zeros(0),
            off=np.asarray(off, dtype=np.int64),
            coeffs={
                name: np.concatenate(parts)
                for name, parts in coeff_parts.items()
            },
        )

    # --------------------------------------------------------- comm replays
    def _forward_x(self) -> None:
        """Replay forward comm: ghost positions from stacked owned rows."""
        x = self.atom.x
        for st in self._stages:
            # the add runs even for zero shifts, exactly like the solo
            # ``buf = x[sendlist] + swap.shift`` (it can normalize -0.0)
            x[st.dst] = np.take(x, st.src, axis=0) + st.shift

    def _forward_field(self, name: str) -> None:
        arr = getattr(self.atom, name)
        for st in self._stages:
            arr[st.dst] = arr[st.src]

    def _reverse_f(self) -> None:
        """Replay reverse comm: ghost forces accumulate back to owners."""
        f = self.atom.f
        for st in reversed(self._stages):
            # gather first: the solo recv-buffer copy
            buf = np.take(f, st.dst, axis=0)
            np.add.at(f, st.src, buf)

    # ------------------------------------------------------------- stepping
    @contextmanager
    def _kernel(self, name: str, work: int) -> Iterator[None]:
        if not kp.TOOLS:
            yield
            return
        kid = kp.begin_kernel(
            "parallel_for", f"{self.label}/{name}", "Host", work_items=float(work)
        )
        try:
            yield
        finally:
            kp.end_kernel(kid, None, 0.0)

    def step(self, nsteps: int = 1) -> None:
        """Advance every live replica ``nsteps`` timesteps."""
        if nsteps < 0:
            raise LammpsError("negative step count")
        for _ in range(nsteps):
            if not self.members:
                return
            self._one_step()

    def _one_step(self) -> None:
        t0 = time.perf_counter() if metrics.SINKS else 0.0
        atom = self.atom
        for m in self.members:
            m.lmp.update.ntimestep += 1
        with self._kernel("initial_integrate", atom.nlocal):
            self._nve_initial()
        stale = [
            m
            for m in self.members
            if m.lmp.neighbor.decide(
                m.lmp.update.ntimestep,
                atom.x[m.own_off : m.own_off + m.nlocal],
            )
        ]
        rebuilt = bool(stale)
        if stale:
            self._rebuild(stale)
            if not self.members:
                return
            atom = self.atom
        else:
            with self._kernel("forward_comm", atom.nghost):
                self._forward_x()
        due = [
            m
            for m in self.members
            if m.lmp.thermo.should_output(m.lmp.update.ntimestep)
        ]
        with self._kernel("pair_force", self._plan.i.shape[0]):
            self._handler.force(self, due)
        with self._kernel("final_integrate", atom.nlocal):
            self._nve_final()
        if due:
            self._thermo_rows(due)
        if metrics.SINKS:
            metrics.observe(
                "step_wall_seconds", time.perf_counter() - t0, rank=self.label
            )
            metrics.inc("steps_total", rank=self.label)
            if rebuilt:
                metrics.inc("neighbor_rebuilds_total", rank=self.label)

    # ------------------------------------------------------------ integrate
    def _nve_initial(self) -> None:
        atom = self.atom
        n = atom.nlocal
        v = atom.v[:n]
        # FixNVE's kick/drift with the member scalars broadcast per atom:
        # v += dtf * f / m ; x += dt * v — elementwise, so each replica's
        # rows see the identical solo operation sequence
        v += self._dtf_col[:, None] * atom.f[:n] / self._m_own[:, None]
        atom.x[:n] += self._dt_col[:, None] * v

    def _nve_final(self) -> None:
        atom = self.atom
        n = atom.nlocal
        atom.v[:n] += self._dtf_col[:, None] * atom.f[:n] / self._m_own[:, None]

    # -------------------------------------------------------------- rebuild
    def _rebuild(self, stale: list[_Member]) -> None:
        """Re-neighbor the stale members only, then re-hoist the epoch.

        Each stale member syncs its stacked state home and runs its own solo
        ``rebuild_gen`` (exchange, spatial sort, borders, list build) — the
        unchanged machinery, so list contents and atom order match a solo
        run exactly.  A member whose rebuild raises is dropped fail-open:
        its ``(rid, exception)`` lands in :attr:`failures` and the batch
        keeps stepping everyone else.
        """
        self._sync_all_owned()
        failed: list[tuple[_Member, Exception]] = []
        for m in stale:
            try:
                with kp.kernel_scope(self.label):
                    drain(m.lmp.rebuild_gen())
                m.lmp.world.assert_drained()
            except Exception as exc:  # noqa: BLE001 — fail-open by design
                failed.append((m, exc))
        for m, exc in failed:
            self.failures.append((m.rid, exc))
            self.members.remove(m)
        if not self.members:
            self._reset_empty()
            return
        self._hoist()

    # --------------------------------------------------------------- thermo
    def _thermo_rows(self, due: list[_Member]) -> None:
        """Append one solo-identical thermo row per due member.

        PE/KE/T/P are per-replica segment reductions over the stacked
        arrays (:func:`~repro.kokkos.segment.segment_dot` on each member's
        contiguous slice) finalized with the exact arithmetic of the
        internal computes + Thermo.  Single-rank reduction is the identity,
        so no allreduce detour is needed.
        """
        atom = self.atom
        n = atom.nlocal
        vsq = np.einsum("ij,ij->i", atom.v[:n], atom.v[:n])
        starts = np.array([m.own_off for m in due])
        ends = np.array([m.own_off + m.nlocal for m in due])
        msq = segment_dot(self._m_own, vsq, starts, ends)
        for k, m in enumerate(due):
            lmp = m.lmp
            units = lmp.update.units
            msq_k = float(msq[k])
            count = float(m.nlocal)
            dof = max(3.0 * count - 3.0, 1.0)
            temp = units.mvv2e * msq_k / (dof * units.boltz)
            pe = float(m.eng_now + 0.0)  # eng_vdwl + eng_coul, coul == 0.0
            ke = 0.5 * units.mvv2e * msq_k
            natoms = max(lmp.natoms_total, 1)
            thermo = lmp.thermo
            values: dict[str, float] = {
                "temp": temp,
                "pe": pe / natoms if thermo.normalize else pe,
                "ke": ke / natoms if thermo.normalize else ke,
            }
            values["etotal"] = values["pe"] + values["ke"]
            if "press" in thermo.columns:
                p_kin = units.mvv2e * msq_k
                w = float(m.virial_now[:3].sum())
                values["press"] = (p_kin + w) / (3.0 * lmp.domain.volume)
            from repro.core.thermo import ThermoRecord

            thermo.history.append(
                ThermoRecord(step=lmp.update.ntimestep, values=values)
            )
            if not thermo.quiet:
                thermo._print_row(lmp.update.ntimestep, values)

    # -------------------------------------------------------------- tallies
    def _tally(
        self,
        due: list[_Member],
        mask: np.ndarray,
        factor: np.ndarray,
        evdwl: np.ndarray,
        dx: np.ndarray,
        fvec: np.ndarray,
        *,
        base_eng: np.ndarray | None,
    ) -> None:
        """Per-due-member ev_tally over the masked pair stream.

        The solo code tallies every step but only thermo reads the result,
        so the batch computes tallies only for members due this step — the
        big win over running R full solo epilogues.  Each member's slice of
        the masked stream is contiguous, so the 7 ``segment_dot`` reductions
        are bitwise the solo ``np.dot`` calls.
        """
        # member boundaries of the *masked* stream from the stored offsets
        keep = np.concatenate([[0], np.cumsum(mask)])
        idx = np.array([m.index for m in due])
        starts = keep[self._plan.off[idx]]
        ends = keep[self._plan.off[idx + 1]]
        eng = segment_dot(factor, evdwl, starts, ends)
        vir = np.empty((6, len(due)))
        for c, (a, b) in enumerate(
            ((0, 0), (1, 1), (2, 2), (0, 1), (0, 2), (1, 2))
        ):
            vir[c] = segment_dot(factor, dx[:, a] * fvec[:, b], starts, ends)
        for k, m in enumerate(due):
            e = 0.0
            if base_eng is not None:
                e += float(base_eng[k])
            e += float(eng[k])
            m.eng_now = e
            v6 = np.zeros(6)
            for c in range(6):
                v6[c] += float(vir[c, k])
            m.virial_now = v6

    # -------------------------------------------------------------- finish
    def finish(self) -> None:
        """Sync every member's stacked state back to its solo instance.

        Call after stepping when the members will be read (or run further)
        outside the batch; ``remove_replica`` does this per member.
        """
        self._sync_all_owned()
