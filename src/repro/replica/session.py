"""Async session manager: many small jobs, few batched kernel streams.

:class:`SessionManager` is the service layer above
:class:`~repro.replica.batch.ReplicaBatch`.  Callers submit many concurrent
small jobs; the manager shards them into batches by ``(workload family,
pair style, size class)`` — replicas that share kernels and roughly share
cost — and steps each batch cooperatively on the asyncio loop, streaming
every replica's thermo rows back to its own session as they appear.

The scheduling loop is boundary-driven: each batch advances in *chunks*
sized to the next interesting step of any member (thermo interval or job
completion), and all structural changes — admitting pending jobs into a
batch (mid-flight join), retiring finished or cancelled replicas
(compaction), surfacing rebuild failures — happen between chunks, which is
exactly where the batch re-hoists an epoch anyway.  A replica that raises
during its rebuild fails *open*: its session receives the error and the
batch keeps stepping everyone else.

No threads, no executors: one event loop, one set of stacked arrays per
shard.  ``await``-ing a session's event stream while other jobs run is the
whole point.
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, Iterable

from repro.core.errors import LammpsError, unknown_choice
from repro.replica.batch import ReplicaBatch
from repro.tools import metrics

#: How the manager treats a replica whose rebuild raises.
FAILURE_POLICIES = ("fail_open", "raise")


def size_class(natoms: int) -> int:
    """Power-of-two size bucket; replicas in one bucket batch together."""
    if natoms < 1:
        return 1
    return 1 << (natoms - 1).bit_length()


class ReplicaJobError(LammpsError):
    """A replica died mid-run (its rebuild raised); carries the context."""

    def __init__(self, sid: int, family: str, cause: Exception) -> None:
        super().__init__(
            f"replica job {sid} ({family}) failed during a neighbor "
            f"rebuild: {cause}"
        )
        self.sid = sid
        self.family = family
        self.cause = cause


class ReplicaSession:
    """One submitted job's handle: an async stream of per-replica events.

    Events are ``(kind, payload)`` tuples:

    * ``("thermo", ThermoRecord)`` — one per thermo row, in step order;
    * ``("done", dict)`` — terminal; ``payload["status"]`` is ``"finished"``
      or ``"cancelled"``, alongside the final step and the solo Lammps
      instance (``payload["lmp"]``) holding the replica's final state;
    * ``("error", ReplicaJobError)`` — terminal, the fail-open path.

    Iterate with ``async for kind, payload in session`` — the iterator ends
    after the terminal event.  :meth:`result` awaits the terminal event and
    raises if it was an error.
    """

    def __init__(self, sid: int, spec) -> None:
        self.sid = sid
        self.spec = spec
        self.queue: asyncio.Queue = asyncio.Queue()
        self.status = "pending"  # pending -> running -> finished/cancelled/error
        self.error: ReplicaJobError | None = None
        self._cancel = False

    def cancel(self) -> None:
        """Request termination at the next chunk boundary.

        Pending jobs are dropped immediately on the next scheduler pass;
        running replicas are compacted out of their batch.  The session
        still receives its terminal ``("done", {"status": "cancelled"})``.
        """
        self._cancel = True

    def __aiter__(self) -> AsyncIterator[tuple[str, object]]:
        return self._events()

    async def _events(self) -> AsyncIterator[tuple[str, object]]:
        while True:
            kind, payload = await self.queue.get()
            yield kind, payload
            if kind in ("done", "error"):
                return

    async def result(self) -> dict:
        """Drain the stream; return the ``done`` payload or raise the error."""
        payload = None
        async for kind, item in self:
            if kind == "error":
                raise item
            if kind == "done":
                payload = item
        return payload


class _Job:
    """Manager-internal bookkeeping for one session."""

    def __init__(self, session: ReplicaSession) -> None:
        self.session = session
        self.lmp = None
        self.rid: int | None = None
        self.key: tuple | None = None
        self.start_step = 0
        self.watermark = 0  # thermo rows already streamed


class SessionManager:
    """Shard concurrent replica jobs into batches and step them cooperatively.

    ``specs`` submitted via :meth:`submit` must expose ``family`` (workload
    family name), ``pair_style``, ``steps`` (timesteps to run), and
    ``build()`` returning a fully configured single-rank Lammps instance
    (box, pair style, ``fix all nve``, velocities) that has not run yet —
    :mod:`repro.workloads.replica` provides the catalog-backed spec.

    ``max_batch`` caps replicas per shard (the ``replica_batch_size``
    autotuner follow-on will pick this); excess jobs queue until a slot
    frees.  ``on_failure`` selects the rebuild-failure policy:
    ``"fail_open"`` (default) routes the error to the owning session and
    keeps the batch alive, ``"raise"`` propagates out of :meth:`run_until_idle`.
    """

    def __init__(self, *, max_batch: int = 16, on_failure: str = "fail_open") -> None:
        if on_failure not in FAILURE_POLICIES:
            raise LammpsError(
                unknown_choice("session failure policy", on_failure, FAILURE_POLICIES)
            )
        if max_batch < 1:
            raise LammpsError("max_batch must be >= 1")
        self.max_batch = max_batch
        self.on_failure = on_failure
        self.batches: dict[tuple, ReplicaBatch] = {}
        self._jobs: dict[tuple, list[_Job]] = {}
        self._pending: list[_Job] = []
        self._next_sid = 0
        self._wake = asyncio.Event()
        self._shutdown = False

    # ------------------------------------------------------------ submission
    def submit(self, spec) -> ReplicaSession:
        """Queue a job; admission happens at the next scheduler boundary."""
        session = ReplicaSession(self._next_sid, spec)
        self._next_sid += 1
        self._pending.append(_Job(session))
        self._wake.set()
        return session

    @property
    def jobs_active(self) -> int:
        return len(self._pending) + sum(len(js) for js in self._jobs.values())

    def _gauge_jobs(self) -> None:
        if metrics.SINKS:
            metrics.set_gauge("replica_jobs_active", float(self.jobs_active))

    # ------------------------------------------------------------- admission
    def _admit_pending(self) -> None:
        still: list[_Job] = []
        for job in self._pending:
            s = job.session
            if s._cancel:
                s.status = "cancelled"
                s.queue.put_nowait(("done", {"status": "cancelled", "lmp": None}))
                continue
            if job.lmp is None:
                job.lmp = s.spec.build()
                job.key = (
                    s.spec.family,
                    s.spec.pair_style,
                    size_class(job.lmp.atom.nlocal),
                )
            batch = self.batches.get(job.key)
            if batch is not None and len(batch) >= self.max_batch:
                still.append(job)  # shard full; wait for a retirement
                continue
            if batch is None:
                batch = ReplicaBatch(label="/".join(map(str, job.key)))
                self.batches[job.key] = batch
                self._jobs[job.key] = []
            try:
                job.rid = batch.add_replica(job.lmp)
            except LammpsError as exc:
                s.status = "error"
                s.error = ReplicaJobError(s.sid, s.spec.family, exc)
                s.queue.put_nowait(("error", s.error))
                continue
            job.start_step = job.lmp.update.ntimestep
            s.status = "running"
            self._jobs[job.key].append(job)
        self._pending = still
        self._gauge_jobs()

    # -------------------------------------------------------------- chunking
    @staticmethod
    def _remaining(job: _Job) -> int:
        done = job.lmp.update.ntimestep - job.start_step
        return max(job.session.spec.steps - done, 0)

    def _chunk(self, jobs: Iterable[_Job]) -> int:
        """Steps until any member hits a thermo row or its last step."""
        chunk = None
        for job in jobs:
            rem = self._remaining(job)
            if rem == 0:
                continue
            bounds = [rem]
            every = job.lmp.thermo.every
            if every > 0:
                bounds.append(every - job.lmp.update.ntimestep % every)
            step_to = min(bounds)
            chunk = step_to if chunk is None else min(chunk, step_to)
        return max(chunk or 0, 0)

    # ------------------------------------------------------------- streaming
    def _stream(self, job: _Job) -> None:
        history = job.lmp.thermo.history
        for rec in history[job.watermark :]:
            job.session.queue.put_nowait(("thermo", rec))
        job.watermark = len(history)

    def _finish(self, key: tuple, job: _Job, status: str) -> None:
        batch = self.batches[key]
        lmp = batch.remove_replica(job.rid)
        self._stream(job)
        job.session.status = status
        job.session.queue.put_nowait(
            ("done", {"status": status, "step": lmp.update.ntimestep, "lmp": lmp})
        )

    def _drain_failures(self, key: tuple) -> None:
        batch = self.batches[key]
        while batch.failures:
            rid, exc = batch.failures.pop(0)
            for job in self._jobs[key]:
                if job.rid == rid:
                    self._jobs[key].remove(job)
                    err = ReplicaJobError(
                        job.session.sid, job.session.spec.family, exc
                    )
                    if self.on_failure == "raise":
                        raise err
                    self._stream(job)
                    job.session.status = "error"
                    job.session.error = err
                    job.session.queue.put_nowait(("error", err))
                    break

    # ------------------------------------------------------------ scheduling
    async def _pass(self) -> bool:
        """One scheduler round over every shard; True if anything happened."""
        self._admit_pending()
        worked = bool(self.batches)
        for key in list(self.batches):
            batch = self.batches[key]
            jobs = self._jobs[key]
            chunk = self._chunk(jobs)
            if chunk:
                batch.step(chunk)
            self._drain_failures(key)
            for job in list(jobs):
                self._stream(job)
                if job.session._cancel and self._remaining(job) > 0:
                    jobs.remove(job)
                    self._finish(key, job, "cancelled")
                elif self._remaining(job) == 0:
                    jobs.remove(job)
                    self._finish(key, job, "finished")
            if not jobs:
                del self.batches[key]
                del self._jobs[key]
            # cooperative point: let submitters/consumers interleave between
            # chunks — this is what makes mid-flight join and cancel live
            await asyncio.sleep(0)
        self._gauge_jobs()
        return worked or bool(self._pending)

    async def run_until_idle(self) -> None:
        """Step every shard until all submitted jobs reached a terminal event."""
        while self._pending or self.batches:
            await self._pass()

    async def serve(self) -> None:
        """Run forever: drain work as it arrives, sleep when idle.

        Pair with :meth:`shutdown`; in-flight jobs finish before exit.
        """
        while True:
            await self.run_until_idle()
            if self._shutdown:
                return
            self._wake.clear()
            if self._shutdown or self._pending:
                continue
            await self._wake.wait()

    def shutdown(self) -> None:
        """Ask :meth:`serve` to exit once current work drains."""
        self._shutdown = True
        self._wake.set()
