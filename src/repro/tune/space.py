"""The autotuner's configuration space over the mode registry.

Every global or per-rank switch the codebase exposes is described here as a
*dimension* of a config dict (string-valued, JSON-friendly):

* ``scatter``  — ScatterView contribution mode (``atomic``/``segmented``),
  the global override in :mod:`repro.kokkos.segment`.
* ``stencil``  — neighbor build mode (``shared``/``legacy``),
  the global override in :mod:`repro.core.neighbor`.
* ``neigh`` + ``newton`` — list style and Newton's-third-law handling, the
  ``package kokkos neigh/newton`` axes of the paper's section 4.1 study.
  These are a *joint* dimension because full lists require newton off.
* ``sort``     — spatial atom-sort interval (``atom_modify sort``).
* ``overlap``  — halo-exchange/compute overlap (ensembles only).
* ``graph``    — kernel-graph capture/fuse/replay of the force step
  (``on``/``off``), the global override in :mod:`repro.graph.plan`.

:func:`enumerate_pair_configs` / :func:`enumerate_neighbor_configs` produce
the candidate cells the tuner measures for each kernel;
:func:`apply_config` installs any (partial) config on a Lammps instance or
Ensemble; :func:`snapshot_config` reads the currently-active cell back so
the search can treat it as the baseline that a challenger must beat by more
than the noise band.
"""

from __future__ import annotations

from repro.core.neighbor import LEGACY, SHARED, set_stencil_mode, stencil_mode
from repro.graph.plan import OFF as GRAPH_OFF
from repro.graph.plan import ON as GRAPH_ON
from repro.graph.plan import graph_mode, set_graph_mode
from repro.kokkos.segment import (
    ATOMIC,
    SEGMENTED,
    forced_scatter_mode,
    scatter_mode,
    set_scatter_mode,
)

#: Dimension names (the keys of a tune-config dict).
SCATTER = "scatter"
STENCIL = "stencil"
NEIGH = "neigh"
NEWTON = "newton"
SORT = "sort"
OVERLAP = "overlap"
GRAPH = "graph"
ALL_KEYS = (SCATTER, STENCIL, NEIGH, NEWTON, SORT, OVERLAP, GRAPH)

#: QEq solver dimensions — present only when the workload's pair style is
#: ReaxFF (it exposes ``set_qeq_options``); other styles never see them.
QEQ_PRECOND = "qeq_precond"
QEQ_EXTRAP = "qeq_extrap"
QEQ_TOL = "qeq_tol"
QEQ_KEYS = (QEQ_PRECOND, QEQ_EXTRAP, QEQ_TOL)


def qeq_capable(root) -> bool:
    """Whether the active pair style carries the QEq solver knobs."""
    return hasattr(root.pair, "set_qeq_options")

#: Kernels the tuner measures independently.
PAIR_KERNEL = "pair_force"
NEIGHBOR_KERNEL = "neighbor_build"
KERNELS = (PAIR_KERNEL, NEIGHBOR_KERNEL)

_ABBREV = {ATOMIC: "at", SEGMENTED: "sg", SHARED: "sh", LEGACY: "lg"}


def ranks_of(target) -> list:
    """The per-rank Lammps instances of a Lammps or Ensemble target."""
    return list(target.ranks) if hasattr(target, "ranks") else [target]


def list_cells(root) -> tuple[tuple[str, str], ...]:
    """``(neigh, newton)`` cells the active pair style supports.

    Kokkos-suffixed styles expose the full section-4.1 product through
    ``set_options`` minus the invalid full+newton-on cell.  Plain styles are
    probed by flipping ``newton_pair`` through ``neighbor_request()``: styles
    with a fixed request (e.g. SNAP/ReaxFF full lists) collapse to one cell.
    """
    pair = root.pair
    if hasattr(pair, "neigh_mode"):
        return (("half", "on"), ("half", "off"), ("full", "off"))
    saved = root.newton_pair
    try:
        root.newton_pair = True
        cell_on = pair.neighbor_request()
        root.newton_pair = False
        cell_off = pair.neighbor_request()
    finally:
        root.newton_pair = saved
    cells = []
    for style, newton in (cell_on, cell_off):
        cell = (style, "on" if newton else "off")
        if cell not in cells:
            cells.append(cell)
    return tuple(cells)


def enumerate_pair_configs(target) -> list[dict]:
    """Candidate cells for the pair-force kernel (scatter x lists x overlap)."""
    ranks = ranks_of(target)
    root = ranks[0]
    overlaps: tuple[str | None, ...] = (None,)
    if len(ranks) > 1 and getattr(root.pair, "supports_overlap", False):
        overlaps = ("off", "on")
    # QEq knobs multiply the product only for ReaxFF workloads: every
    # preconditioner crossed with cold start vs the order-2 extrapolation
    # that the qeq bench showed pays off.  Tolerance is snapshot-only (it
    # changes accuracy, not just speed) but keys every candidate so the
    # ProfileStore priors never mix tolerances.
    qeq_cells: tuple[dict, ...] = ({},)
    if qeq_capable(root):
        from repro.reaxff.qeq import EXTRAP_NONE, PRECONDS

        tol = str(root.pair.qeq_tol)
        qeq_cells = tuple(
            {QEQ_PRECOND: precond, QEQ_EXTRAP: extrap, QEQ_TOL: tol}
            for precond in PRECONDS
            for extrap in (EXTRAP_NONE, "2")
        )
    configs = []
    for neigh, newton in list_cells(root):
        for scatter in (ATOMIC, SEGMENTED):
            for graph in (GRAPH_OFF, GRAPH_ON):
                for overlap in overlaps:
                    for qeq in qeq_cells:
                        cfg = {
                            SCATTER: scatter,
                            NEIGH: neigh,
                            NEWTON: newton,
                            GRAPH: graph,
                            **qeq,
                        }
                        if overlap is not None:
                            cfg[OVERLAP] = overlap
                        configs.append(cfg)
    return configs


def enumerate_neighbor_configs(target) -> list[dict]:
    """Candidate cells for the neighbor-build kernel (stencil x sort)."""
    root = ranks_of(target)[0]
    sorts = []
    for value in (str(max(root.sort_every, 0)), "1", "0"):
        if value not in sorts:
            sorts.append(value)
    return [
        {STENCIL: stencil, SORT: sort}
        for stencil in (SHARED, LEGACY)
        for sort in sorts
    ]


def snapshot_config(target, keys=None) -> dict:
    """The currently-active value of each requested dimension.

    With ``keys=None`` the snapshot covers every dimension the target
    exposes: ``ALL_KEYS`` plus the QEq dimensions when the pair style is
    ReaxFF.
    """
    root = ranks_of(target)[0]
    style, newton = root.pair.neighbor_request()
    full = {
        SCATTER: forced_scatter_mode()
        or scatter_mode(getattr(root.pair, "execution_space", None)),
        STENCIL: stencil_mode(),
        NEIGH: style,
        NEWTON: "on" if newton else "off",
        SORT: str(max(root.sort_every, 0)),
        OVERLAP: "on" if getattr(root, "overlap_comm", False) else "off",
        GRAPH: graph_mode(),
    }
    capable = qeq_capable(root)
    if capable:
        full[QEQ_PRECOND] = root.pair.qeq_precond
        full[QEQ_EXTRAP] = root.pair.qeq_extrap
        full[QEQ_TOL] = str(root.pair.qeq_tol)
    if keys is None:
        keys = ALL_KEYS + QEQ_KEYS if capable else ALL_KEYS
    return {key: full[key] for key in keys}


def apply_config(target, config: dict) -> None:
    """Install a (partial) mode config globally and on every rank.

    Only the dimensions present in ``config`` are touched, so a pair-kernel
    winner and a neighbor-kernel winner compose without clobbering each
    other.  The neighbor list is *not* rebuilt here — callers rebuild when
    the list-shaping dimensions (neigh/newton/stencil/sort) changed.
    """
    if SCATTER in config:
        set_scatter_mode(config[SCATTER])
    if STENCIL in config:
        set_stencil_mode(config[STENCIL])
    if GRAPH in config:
        set_graph_mode(config[GRAPH])
    for lmp in ranks_of(target):
        pair = lmp.pair
        if NEIGH in config or NEWTON in config:
            newton = config[NEWTON] == "on" if NEWTON in config else None
            if hasattr(pair, "neigh_mode"):
                pair.set_options(neigh=config.get(NEIGH), newton=newton)
                # keep `package kokkos` consistent so the pair.init() in the
                # next run setup does not silently undo the tuned choice
                if NEIGH in config:
                    lmp.package_kokkos["neigh"] = config[NEIGH]
                if newton is not None:
                    lmp.package_kokkos["newton"] = newton
            if newton is not None:
                lmp.newton_pair = newton
        if SORT in config:
            lmp.sort_every = int(config[SORT])
        if OVERLAP in config:
            lmp.overlap_comm = config[OVERLAP] == "on"
        if hasattr(pair, "set_qeq_options") and any(
            key in config for key in QEQ_KEYS
        ):
            pair.set_qeq_options(
                precond=config.get(QEQ_PRECOND),
                extrap=config.get(QEQ_EXTRAP),
                tol=config.get(QEQ_TOL),
            )


def short_label(config: dict) -> str:
    """Compact human label for a config (the thermo ``tune`` column)."""
    parts = []
    if SCATTER in config:
        parts.append(_ABBREV.get(config[SCATTER], config[SCATTER]))
    if NEIGH in config:
        cell = config[NEIGH]
        if NEWTON in config:
            cell += "+" + config[NEWTON]
        parts.append(cell)
    if STENCIL in config:
        parts.append(_ABBREV.get(config[STENCIL], config[STENCIL]))
    if SORT in config:
        parts.append("s" + config[SORT])
    if config.get(OVERLAP) == "on":
        parts.append("ov")
    if config.get(GRAPH) == GRAPH_ON:
        parts.append("gr")
    if config.get(QEQ_PRECOND, "none") != "none":
        parts.append("p" + config[QEQ_PRECOND][:1])
    if config.get(QEQ_EXTRAP, "none") != "none":
        parts.append("x" + config[QEQ_EXTRAP])
    return "/".join(parts) or "-"
