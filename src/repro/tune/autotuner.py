"""Runtime autotuner over the mode registry.

The paper's performance story is that the right ``package kokkos`` defaults
differ per backend — half vs full lists, atomic vs duplicated scatter,
newton on/off — and picking them wrong costs 2x+.  This module automates the
choice at run start, the way the TestSNAP paper automates its strategy
exploration: enumerate the candidate cells of the mode space
(:mod:`repro.tune.space`), micro-benchmark each one per kernel with the
bench-stats discipline (one warmup round, then seeded *interleaved* repeat
rounds so drift hits every candidate equally), and lock in winners for the
rest of the run.

Two measures are supported:

* ``wall``  — measured wall-clock seconds per probe (the default; what you
  want on real silicon).
* ``model`` — the calibrated hardware cost model's charged seconds (device
  timeline + comm ledger delta), which is exactly reproducible and lets the
  tuner rank configs per *simulated* Table-1 architecture without timing
  noise — the deterministic path CI and the golden tests use.

A challenger only dethrones the currently-active config when it wins by
more than the sentinel-style noise band ``max(rel_floor, z * cv)``
(:mod:`repro.bench.sentinel`), so a tuned run is never slower than the
hand-picked baseline beyond noise.  Winners persist to a
:class:`~repro.tune.plan.TunePlanStore` keyed (workload, arch, kernel) —
repeat runs skip the search — and every probed cell's per-kernel wall
profile is merged into the :class:`~repro.tools.metrics.ProfileStore`, the
``best_config`` hook this subsystem was seeded with.
"""

from __future__ import annotations

import random
import time

import repro.kokkos as kk
from repro.bench.sentinel import REL_FLOOR, Z_SCORE
from repro.bench.stats import summarize
from repro.core.errors import LammpsError, unknown_choice
from repro.parallel.driver import drain, lockstep
from repro.tools import metrics
from repro.tools import registry as kp
from repro.tools.metrics import MetricsTool, ProfileStore, detach_sink
from repro.tune import space as tspace
from repro.tune.plan import TunePlanStore

#: Measurement backends.
WALL = "wall"
MODEL = "model"
MEASURES = (WALL, MODEL)


class Autotuner:
    """Searches the mode space once, then locks the winners into the run.

    Attach one to ``lmp.autotuner`` (or pass ``--autotune`` / ``package
    autotune on``); the first ``run`` command triggers :meth:`tune` before
    any timestep executes.
    """

    def __init__(
        self,
        *,
        measure: str = WALL,
        repeats: int = 3,
        seed: int = 0,
        plan_path: str | None = "tuned_plan.json",
        profile_path: str | None = None,
        workload: str = "run",
        rel_floor: float | None = None,
        z: float = Z_SCORE,
        quiet: bool = True,
    ) -> None:
        if measure not in MEASURES:
            raise ValueError(unknown_choice("autotune measure", measure, MEASURES))
        if repeats < 1:
            raise ValueError("autotune repeats must be >= 1")
        self.measure = measure
        self.repeats = int(repeats)
        self.seed = int(seed)
        self.workload = workload
        # the model measure is noise-free, so any strict win counts there
        if rel_floor is None:
            rel_floor = REL_FLOOR if measure == WALL else 0.0
        self.rel_floor = rel_floor
        self.z = z
        self.quiet = quiet
        self.plan_store = TunePlanStore(plan_path) if plan_path else None
        self.profile_store = ProfileStore(profile_path) if profile_path else None
        self.tuned = False
        self.probes = 0
        self.result: dict | None = None
        self._list_sig: tuple | None = None

    # --------------------------------------------------------------- tune
    def tune(self, target) -> dict:
        """Search (or load) winners for every kernel and lock them in."""
        ranks = tspace.ranks_of(target)
        self._setup(ranks)
        arch = self._arch()
        base_full = tspace.snapshot_config(target)
        self._list_sig = (base_full[tspace.NEIGH], base_full[tspace.NEWTON])
        kernels: dict[str, dict] = {}
        merged: dict[str, str] = {}
        for kernel, enumerate_fn, probe in (
            (tspace.PAIR_KERNEL, tspace.enumerate_pair_configs, self._pair_probe),
            (tspace.NEIGHBOR_KERNEL, tspace.enumerate_neighbor_configs,
             self._neighbor_probe),
        ):
            candidates = enumerate_fn(target)
            planned = (
                self.plan_store.lookup(self.workload, arch, kernel)
                if self.plan_store is not None
                else None
            )
            if planned is not None and planned["config"] in candidates:
                winner = planned["config"]
                entry = {"score": planned.get("score"), "source": "plan",
                         "candidates": len(candidates)}
            else:
                winner, entry = self._search(
                    kernel, target, ranks, candidates, probe, base_full, arch
                )
                if self.plan_store is not None:
                    self.plan_store.record(
                        self.workload, arch, kernel,
                        config=winner, score=entry["score"],
                        measure=self.measure, repeats=self.repeats,
                    )
            # lock this kernel's winner in before the next kernel searches,
            # so e.g. the neighbor search runs under the winning list style
            tspace.apply_config(target, winner)
            kernels[kernel] = dict(entry, config=winner)
            merged.update(winner)
            metrics.set_gauge(
                "autotune_locked", 1.0,
                help="winning mode config per tuned kernel",
                kernel=kernel, workload=self.workload,
                config=metrics.config_key(winner),
            )
        # the searches leave the last-probed list behind: rebuild once under
        # the final merged config before the run proper starts
        self._rebuild(ranks)
        label = tspace.short_label(merged)
        for lmp in ranks:
            lmp.tune_label = label
            if "tune" not in lmp.thermo.columns:
                lmp.thermo.columns = tuple(lmp.thermo.columns) + ("tune",)
        metrics.inc(
            "autotune_probes_total", float(self.probes),
            help="micro-benchmark probes spent searching",
            workload=self.workload,
        )
        if self.plan_store is not None:
            self.plan_store.save()
        if self.profile_store is not None:
            self.profile_store.save()
        self.result = {
            "workload": self.workload, "arch": arch, "measure": self.measure,
            "config": merged, "label": label, "kernels": kernels,
            "probes": self.probes,
        }
        self.tuned = True
        if not self.quiet:
            print(self.format_report())
        return self.result

    # ------------------------------------------------------------- search
    def _search(self, kernel, target, ranks, candidates, probe, base_full, arch):
        baseline = tspace.snapshot_config(target, candidates[0].keys())
        try:
            base_idx = candidates.index(baseline)
        except ValueError:
            candidates = [baseline] + list(candidates)
            base_idx = 0
        candidates, base_idx, prior_key, pruned = self._seed_from_prior(
            kernel, candidates, base_idx, base_full, arch
        )
        rng = random.Random((self.seed, kernel).__repr__())
        samples: list[list[float]] = [[] for _ in candidates]
        totals = [{"wall": 0.0, "sim": 0.0, "n": 0} for _ in candidates]
        tools: list[MetricsTool | None] = [None] * len(candidates)
        for rnd in range(self.repeats + 1):  # round 0 is the warmup
            order = list(range(len(candidates)))
            if rnd:
                rng.shuffle(order)
            # the warmup round keeps list order, so a ProfileStore prior
            # placed at the front of the candidate list really probes first
            for idx in order:
                cfg = candidates[idx]
                tspace.apply_config(target, cfg)
                if kernel == tspace.PAIR_KERNEL:
                    self._rebuild_if_needed(ranks, cfg)
                wall, sim = self._probe_once(ranks, probe, self._tool(tools, idx))
                if rnd:
                    samples[idx].append(sim if self.measure == MODEL else wall)
                    totals[idx]["wall"] += wall
                    totals[idx]["sim"] += sim
                    totals[idx]["n"] += 1
                    self.probes += 1
        stats = [summarize(s) for s in samples]
        scores = [st["min"] for st in stats]
        win_idx = self._pick(base_idx, scores, stats)
        self._record_profiles(candidates, tools, totals, kernel, base_full, arch)
        entry = {
            "score": scores[win_idx], "source": "search",
            "baseline": candidates[base_idx], "baseline_score": scores[base_idx],
            "candidates": len(candidates),
        }
        if prior_key is not None:
            entry["prior"] = prior_key
            entry["pruned"] = pruned
        return candidates[win_idx], entry

    def _seed_from_prior(self, kernel, candidates, base_idx, base_full, arch):
        """Reorder/prune the candidate list from recorded ProfileStore means.

        When a ``best_config`` prior exists for this (workload, kernel), the
        recorded winner moves to the front of the probe order, and any
        candidate whose recorded mean wall already trails the prior by more
        than the noise floor is dropped without spending probes on it.  The
        baseline and the prior itself are never pruned, so the tuned run
        keeps its never-slower-than-baseline guarantee.
        """
        if self.profile_store is None:
            return candidates, base_idx, None, 0
        prior = self.profile_store.best_config(self.workload, kernel)
        if prior is None:
            return candidates, base_idx, None, 0
        prior_key, prior_mean = prior
        cutoff = prior_mean * (1.0 + self.rel_floor)
        baseline = candidates[base_idx]
        keep: list[dict] = []
        prior_cfg: dict | None = None
        pruned = 0
        for idx, cfg in enumerate(candidates):
            full = {"device": arch, **base_full, **cfg}
            if metrics.config_key(full) == prior_key:
                prior_cfg = cfg
                keep.append(cfg)
                continue
            mean = self.profile_store.mean_wall(self.workload, kernel, full)
            if idx != base_idx and mean is not None and mean > cutoff:
                pruned += 1
                continue
            keep.append(cfg)
        if prior_cfg is not None and keep[0] is not prior_cfg:
            keep.remove(prior_cfg)
            keep.insert(0, prior_cfg)
        return keep, keep.index(baseline), prior_key, pruned

    def _pick(self, base_idx: int, scores: list[float], stats: list[dict]) -> int:
        """Index of the winner: baseline unless a challenger beats the band."""

        def cv(st):
            median = st.get("median") or 0.0
            return st.get("stdev", 0.0) / median if median > 0.0 else 0.0

        win = min(range(len(scores)), key=lambda i: (scores[i], i))
        if win == base_idx:
            return base_idx
        base, best = scores[base_idx], scores[win]
        if best <= 0.0:
            # the model measure can charge exactly zero (pure-host styles
            # dispatch no kernels): keep the baseline on an all-zero tie
            return win if base > 0.0 else base_idx
        band = max(self.rel_floor, self.z * max(cv(stats[base_idx]), cv(stats[win])))
        return win if base / best > 1.0 + band else base_idx

    # ------------------------------------------------------------- probes
    def _probe_once(self, ranks, probe, tool):
        ctx = kk.device_context()
        ledger = ranks[0].world.ledger
        kp.attach(tool)
        try:
            sim0 = ctx.timeline.total() + ledger.total()
            t0 = time.perf_counter()
            probe(ranks)
            wall = time.perf_counter() - t0
            sim = ctx.timeline.total() + ledger.total() - sim0
        finally:
            kp.detach(tool)
        return wall, sim

    def _pair_probe(self, ranks) -> None:
        gens = []
        for lmp in ranks:
            verlet = lmp.verlet
            gens.append(
                verlet.force_cycle_overlap()
                if verlet.overlap_active()
                else verlet.force_cycle()
            )
        self._drive(gens)

    def _neighbor_probe(self, ranks) -> None:
        self._rebuild(ranks)

    def _rebuild(self, ranks) -> None:
        self._drive([lmp.rebuild_gen() for lmp in ranks])

    def _rebuild_if_needed(self, ranks, cfg: dict) -> None:
        sig = (cfg.get(tspace.NEIGH), cfg.get(tspace.NEWTON))
        if sig != self._list_sig:
            self._rebuild(ranks)
            self._list_sig = sig

    @staticmethod
    def _drive(gens) -> None:
        if len(gens) == 1:
            drain(gens[0])
        else:
            lockstep(gens)

    def _setup(self, ranks) -> None:
        """Bring the system to a probe-ready state without running a step."""
        for lmp in ranks:
            if lmp.pair is None:
                raise LammpsError("autotune requires a pair_style before run")
            lmp.pair.init()
            lmp.modify.init()
        self._drive([lmp.count_atoms_gen() for lmp in ranks])
        self._rebuild(ranks)

    # ------------------------------------------------------------ plumbing
    def _tool(self, tools, idx: int) -> MetricsTool:
        tool = tools[idx]
        if tool is None:
            tool = tools[idx] = MetricsTool(None, workload=self.workload)
            # only the kp event stream during this candidate's probes should
            # feed the registry, not the module-level metrics sink traffic
            detach_sink(tool.registry)
        return tool

    def _record_profiles(self, candidates, tools, totals, kernel, base_full, arch):
        if self.profile_store is None:
            return
        for cfg, tool, total in zip(candidates, tools, totals):
            if tool is None or not total["n"]:
                continue
            rows = tool.kernel_totals()
            rows[kernel] = {
                "wall_seconds": total["wall"],
                "sim_seconds": total["sim"],
                "count": total["n"],
            }
            self.profile_store.update(
                self.workload, {"device": arch, **base_full, **cfg}, rows
            )

    def _arch(self) -> str:
        ctx = kk.device_context()
        return "host" if ctx.host_only else ctx.gpu.name

    # ------------------------------------------------------------- report
    def format_report(self) -> str:
        assert self.result is not None, "tune() has not run"
        res = self.result
        lines = [
            f"autotune[{res['workload']}@{res['arch']}] "
            f"measure={res['measure']} probes={res['probes']} -> {res['label']}"
        ]
        for kernel, entry in res["kernels"].items():
            score = entry.get("score")
            score_txt = f"{score:.3e} s" if score is not None else "-"
            lines.append(
                f"  {kernel:<14} {tspace.short_label(entry['config']):<16} "
                f"score {score_txt:<12} ({entry['source']}, "
                f"{entry['candidates']} candidates)"
            )
        return "\n".join(lines)
