"""Runtime autotuning over the mode registry (paper sections 3.3/4.1).

Public surface:

* :class:`~repro.tune.autotuner.Autotuner` — the search/lock-in engine.
* :class:`~repro.tune.plan.TunePlanStore` — persisted (workload, arch,
  kernel) winners so repeat runs skip the search.
* :mod:`repro.tune.space` — the config-space enumeration and the
  apply/snapshot helpers over every mode switch in the codebase.
"""

from repro.tune.autotuner import MEASURES, MODEL, WALL, Autotuner
from repro.tune.plan import TunePlanStore
from repro.tune.space import (
    KERNELS,
    NEIGHBOR_KERNEL,
    PAIR_KERNEL,
    apply_config,
    enumerate_neighbor_configs,
    enumerate_pair_configs,
    short_label,
    snapshot_config,
)

__all__ = [
    "Autotuner",
    "TunePlanStore",
    "MEASURES",
    "MODEL",
    "WALL",
    "KERNELS",
    "PAIR_KERNEL",
    "NEIGHBOR_KERNEL",
    "apply_config",
    "snapshot_config",
    "enumerate_pair_configs",
    "enumerate_neighbor_configs",
    "short_label",
]
