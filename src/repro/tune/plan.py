"""Persisted tuned plans: (workload, arch, kernel) -> winning mode config.

The plan file is the autotuner's repeat-traffic fast path: the first run of
a workload on an architecture pays for the search, every later run loads
the winner and applies it without re-measuring.  Loading is strictly
*fail-open* — a corrupt, truncated, or stale-schema plan file downgrades to
a warning and an empty store, never an exception, because a bad cache must
not be able to kill a production run.  The next ``save()`` overwrites the
bad file with a fresh valid plan.
"""

from __future__ import annotations

import json
import os
import warnings

SCHEMA_VERSION = 1


class TunePlanStore:
    """JSON-backed store of tuned winners keyed (workload, arch, kernel)."""

    def __init__(self, path: str | None) -> None:
        self.path = path
        self.data: dict = {"schema_version": SCHEMA_VERSION, "plans": {}}
        self.load_error: str | None = None
        if path and os.path.exists(path):
            self._load(path)

    def _load(self, path: str) -> None:
        try:
            with open(path) as fh:
                loaded = json.load(fh)
            if not isinstance(loaded, dict):
                raise ValueError("top level is not a JSON object")
            version = loaded.get("schema_version")
            if version != SCHEMA_VERSION:
                raise ValueError(
                    f"schema_version {version!r} != expected {SCHEMA_VERSION}"
                )
            if not isinstance(loaded.get("plans"), dict):
                raise ValueError("missing 'plans' table")
            self.data = loaded
        except (OSError, ValueError) as err:  # json errors are ValueErrors
            self.load_error = str(err)
            warnings.warn(
                f"tuned plan {path!r} unusable ({err}); "
                "falling back to search",
                RuntimeWarning,
                stacklevel=3,
            )

    # ------------------------------------------------------------- access
    def lookup(self, workload: str, arch: str, kernel: str) -> dict | None:
        """The stored entry for a kernel, or None (also on malformed entries)."""
        entry = (
            self.data["plans"].get(workload, {}).get(arch, {}).get(kernel)
        )
        if not isinstance(entry, dict) or not isinstance(entry.get("config"), dict):
            return None
        return entry

    def record(
        self,
        workload: str,
        arch: str,
        kernel: str,
        *,
        config: dict,
        score: float,
        measure: str,
        repeats: int,
    ) -> None:
        plans = self.data["plans"]
        plans.setdefault(workload, {}).setdefault(arch, {})[kernel] = {
            "config": dict(config),
            "score": score,
            "measure": measure,
            "repeats": repeats,
        }

    def save(self) -> None:
        if not self.path:
            return
        with open(self.path, "w") as fh:
            json.dump(self.data, fh, indent=2, sort_keys=True)
            fh.write("\n")
