"""KSPACE: long-range electrostatics in reciprocal space.

Paper section 3.1 lists KSPACE among LAMMPS's canonical *additional*
packages: "for long-range interactions that require Fourier transforms and
calculations in reciprocal space".  This package implements classic Ewald
summation: the Coulomb sum is split by a Gaussian screening parameter into
a short-range part handled in real space by ``pair_style lj/cut/coul/long``
and a smooth long-range part summed over reciprocal-lattice vectors here.

Distributed runs parallelize the physically correct way: every rank
accumulates partial structure factors ``S(k) = sum_i q_i exp(i k . r_i)``
over its owned atoms, one allreduce combines them, and each rank then
evaluates its own atoms' reciprocal-space forces — the same communication
pattern production Ewald/PPPM codes use.
"""

from repro.kspace.ewald import Ewald
from repro.kspace import pair_coul_long as _pcl  # noqa: F401  (registers style)

__all__ = ["Ewald"]
