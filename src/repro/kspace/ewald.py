"""Classic Ewald summation.

Energy decomposition for a neutral periodic system of point charges
(Gaussian screening parameter ``g``):

* real space     ``E_r = C sum_{pairs, r<rc} q_i q_j erfc(g r) / r``
  (computed by :mod:`repro.kspace.pair_coul_long` through the neighbor list)
* reciprocal     ``E_k = C 2 pi / V sum_{k != 0} exp(-k^2/4g^2)/k^2 |S(k)|^2``
* self           ``E_s = -C g/sqrt(pi) sum_i q_i^2``

with ``S(k) = sum_i q_i exp(i k . r_i)`` and ``C`` the unit system's
Coulomb constant.  Forces in reciprocal space:

``F_i = -C 4 pi q_i / V sum_k (k/k^2) exp(-k^2/4g^2) Im(exp(-i k.r_i) S(k))``

The screening parameter and the k-space extent are chosen from the
requested relative accuracy exactly as in LAMMPS's estimators; the test
suite verifies the total energy is independent of the split (varying the
accuracy moves work between the sums without changing the answer) and
reproduces the NaCl Madelung constant.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.core.errors import InputError, LammpsError

import repro.kokkos as kk
from repro.kokkos.core import Device


class Ewald:
    """Reciprocal-space solver bound to one Lammps instance."""

    def __init__(self, lmp, accuracy: float = 1e-4) -> None:
        if not 0.0 < accuracy < 0.1:
            raise InputError("ewald accuracy must be in (0, 0.1)")
        self.lmp = lmp
        self.accuracy = accuracy
        self.energy = 0.0
        self.virial = np.zeros(6)
        self._kvecs: np.ndarray | None = None
        self._kcoeff: np.ndarray | None = None
        self.g_ewald = 0.0
        self.kmax = np.zeros(3, dtype=int)

    # ---------------------------------------------------------------- setup
    def init(self) -> None:
        lmp = self.lmp
        pair = lmp.pair
        if pair is None or not hasattr(pair, "cut_coul"):
            raise LammpsError(
                "kspace_style ewald requires a long-range pair style "
                "(lj/cut/coul/long)"
            )
        rc = float(pair.cut_coul)
        # screening parameter such that erfc(g rc) ~ accuracy
        self.g_ewald = math.sqrt(-math.log(self.accuracy)) / rc
        lengths = lmp.domain.lengths
        # k extent such that exp(-k^2 / 4 g^2) ~ accuracy per dimension
        kcut = 2.0 * self.g_ewald * math.sqrt(-math.log(self.accuracy))
        self.kmax = np.maximum(
            np.ceil(kcut * lengths / (2.0 * np.pi)).astype(int), 1
        )
        self._build_kvectors()

    def _build_kvectors(self) -> None:
        lengths = self.lmp.domain.lengths
        two_pi = 2.0 * np.pi
        kx, ky, kz = [
            np.arange(-m, m + 1) * two_pi / L for m, L in zip(self.kmax, lengths)
        ]
        gx, gy, gz = np.meshgrid(kx, ky, kz, indexing="ij")
        kvecs = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)
        ksq = np.einsum("ij,ij->i", kvecs, kvecs)
        kcut = 2.0 * self.g_ewald * math.sqrt(-math.log(self.accuracy))
        keep = (ksq > 1e-12) & (ksq <= kcut * kcut)
        kvecs = kvecs[keep]
        ksq = ksq[keep]
        self._kvecs = kvecs
        self._kcoeff = np.exp(-ksq / (4.0 * self.g_ewald**2)) / ksq

    @property
    def nkvecs(self) -> int:
        return 0 if self._kvecs is None else len(self._kvecs)

    # -------------------------------------------------------------- compute
    def compute_gen(self, eflag: bool = True, vflag: bool = True) -> Iterator[None]:
        """Add reciprocal + self contributions (generator: one allreduce)."""
        lmp = self.lmp
        atom = lmp.atom
        if self._kvecs is None:
            self.init()
        self.virial[:] = 0.0
        C = lmp.update.units.qqr2e
        vol = lmp.domain.volume
        n = atom.nlocal
        x = atom.x[:n]
        q = atom.q[:n]

        # partial structure factors over owned atoms
        phase = x @ self._kvecs.T  # (n, nk)
        s_local = (q[:, None] * np.exp(1j * phase)).sum(axis=0)
        key = ("ewald_sk", lmp.update.ntimestep)
        lmp.world.reduce_contribute(key, np.concatenate([s_local.real, s_local.imag]))
        yield
        flat = np.atleast_1d(lmp.world.reduce_result(key))
        nk = self.nkvecs
        sk = flat[:nk] + 1j * flat[nk:]

        prefac = C * 2.0 * np.pi / vol
        self.energy = float(prefac * (self._kcoeff * np.abs(sk) ** 2).sum())
        # self-energy (each rank subtracts its own atoms' share)
        self_e = -C * self.g_ewald / math.sqrt(math.pi) * float((q * q).sum())
        self.energy_local = self_e + (self.energy / max(lmp.comm_size, 1))

        # forces on owned atoms:
        # dE/dr_i = 2 prefac q_i sum_k c_k k Im(exp(-i k.x_i) S(k)),
        # F_i = -dE/dr_i
        imag_part = np.imag(np.exp(-1j * phase) * sk[None, :])  # (n, nk)
        fk = -2.0 * prefac * q[:, None] * (
            imag_part @ (self._kvecs * self._kcoeff[:, None])
        )
        atom.f[:n] += fk

        if vflag:
            # isotropic reciprocal virial (sufficient for pressure traces):
            # W = E_k - sum over k of the anisotropic correction; we keep the
            # trace-exact isotropic form W_aa = E_k/3 each
            for d in range(3):
                self.virial[d] += self.energy / (3.0 * max(lmp.comm_size, 1))

        # cost accounting: one structure-factor kernel + one force kernel
        if lmp._kokkos_active():
            nk_f = float(max(nk, 1))
            kk.parallel_for(
                "EwaldStructureFactor",
                kk.RangePolicy(Device, 0, max(n, 1)),
                lambda idx: None,
                profile=kk.KernelProfile(
                    name="EwaldStructureFactor",
                    flops=12.0 * n * nk_f,
                    bytes_streamed=32.0 * n + 16.0 * nk_f,
                    parallel_items=float(max(n, 1)) * nk_f,
                    cpu_efficiency=0.2,
                ),
            )
            kk.parallel_for(
                "EwaldForces",
                kk.RangePolicy(Device, 0, max(n, 1)),
                lambda idx: None,
                profile=kk.KernelProfile(
                    name="EwaldForces",
                    flops=14.0 * n * nk_f,
                    bytes_streamed=56.0 * n + 16.0 * nk_f,
                    parallel_items=float(max(n, 1)) * nk_f,
                    cpu_efficiency=0.2,
                ),
            )
