"""``pair_style lj/cut/coul/long``: the Ewald real-space companion.

LJ dispersion plus the *screened* Coulomb term

    E = C q_i q_j erfc(g r) / r        (r < cut_coul)

whose complement lives in reciprocal space (:mod:`repro.kspace.ewald`).
The screening parameter ``g`` is owned by the kspace solver, so this style
requires ``kspace_style ewald`` to be active before a run.
"""

from __future__ import annotations

import numpy as np
from scipy.special import erfc

from repro.core.errors import InputError, LammpsError
from repro.core.styles import register_pair
from repro.potentials.lj import LJMixin
from repro.potentials.pair import Pair

_TWO_OVER_SQRT_PI = 2.0 / np.sqrt(np.pi)


@register_pair("lj/cut/coul/long")
class PairLJCutCoulLong(LJMixin, Pair):
    """Host LJ + real-space Ewald Coulomb, half neighbor list."""

    def settings(self, args: list[str]) -> None:
        if len(args) < 1:
            raise InputError("pair_style lj/cut/coul/long <cut_lj> [cut_coul]")
        super().settings(args[:1])
        self.cut_coul = float(args[1]) if len(args) > 1 else self.cut_global
        if self.cut_coul <= 0:
            raise InputError("coulomb cutoff must be positive")

    def init(self) -> None:
        super().init()
        if self.lmp.kspace is None:
            raise LammpsError(
                "pair_style lj/cut/coul/long requires kspace_style ewald"
            )
        self.cut_lj = self.cut.copy()
        grown = np.maximum(self.cut, self.cut_coul)
        self.cut = np.where(self.setflag, grown, self.cut)

    def compute(self, eflag: bool = True, vflag: bool = True) -> None:
        lmp = self.lmp
        atom = lmp.atom
        nlist = lmp.neigh_list
        self.reset_tallies()
        if nlist is None or nlist.total_pairs == 0:
            return
        g = lmp.kspace.g_ewald
        if g <= 0.0:
            lmp.kspace.init()
            g = lmp.kspace.g_ewald
        qqr2e = lmp.update.units.qqr2e

        i, j, itype, jtype, cutsq = self.pair_table(nlist, atom)
        x = atom.x[: atom.nall]
        q = atom.q[: atom.nall]
        dx = x[i] - x[j]
        rsq = np.einsum("ij,ij->i", dx, dx)
        mask = rsq < cutsq
        i, j, dx, rsq = i[mask], j[mask], dx[mask], rsq[mask]
        itype, jtype = itype[mask], jtype[mask]

        # LJ part within its own cutoff
        lj_mask = rsq < self.cut_lj[itype, jtype] ** 2
        fpair, evdwl = LJMixin.pair_eval(self, rsq, itype, jtype)
        fpair = np.where(lj_mask, fpair, 0.0)
        evdwl = np.where(lj_mask, evdwl, 0.0)

        # screened Coulomb within cut_coul:
        # E = C q q erfc(g r)/r ;  -dE/dr / r = E/r^2 + C qq 2g/sqrt(pi)
        #                                        exp(-g^2 r^2) / r^2
        r = np.sqrt(rsq)
        coul_mask = rsq < self.cut_coul**2
        qq = qqr2e * q[i] * q[j]
        e_coul = np.where(coul_mask, qq * erfc(g * r) / r, 0.0)
        f_coul = np.where(
            coul_mask,
            (e_coul + qq * _TWO_OVER_SQRT_PI * g * np.exp(-(g * r) ** 2)) / rsq,
            0.0,
        )
        fpair = fpair + f_coul

        fvec = fpair[:, None] * dx
        jlocal = j < atom.nlocal
        newton = lmp.newton_pair
        self.scatter_pair_forces(atom, i, j, fvec, jlocal, newton)
        if eflag or vflag:
            self.tally_pairs(
                evdwl, dx, fpair, jlocal, full_list=False, newton=newton,
                ecoul=e_coul,
            )
