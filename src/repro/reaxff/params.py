"""ReaxFF-lite parameter set.

Parameters are stored per atom *type* (the engine's 1-indexed types), with
pair quantities combined by standard rules.  The default set covers C, H, N,
O in ``real`` units (kcal/mol, Angstrom, electron charge) with values of the
right physical magnitude for an HNS-like molecular crystal — they are not a
fitted chemistry (DESIGN.md substitution table), but they produce bonded
networks, charge transfer, and torsional barriers with realistic sparsity,
which is what the paper's kernels are shaped by.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import InputError


@dataclass
class ReaxParams:
    """Per-type and derived pair parameters (index 0 unused, LAMMPS-style)."""

    ntypes: int
    #: species labels for diagnostics
    symbols: list[str]
    #: sigma-bond radius r0, Angstrom
    r0: np.ndarray
    #: bond-order decay: BO'(r) = exp(pbo1 * (r / r0_ij)^pbo2)
    pbo1: float
    pbo2: float
    #: bond-order cutoff below which a "bond" is dropped from the bond list
    bo_cut: float
    #: bond dissociation energy De, kcal/mol (pair = sqrt(De_i * De_j))
    de: np.ndarray
    #: valence-angle force constant, kcal/mol
    k_ang: np.ndarray
    #: equilibrium angle cosine per central species
    cos0: np.ndarray
    #: torsion barrier V2, kcal/mol
    v2: np.ndarray
    #: minimum bond-order product for a quad to contribute (section 4.2.1's
    #: "constraint on the product of the bond orders")
    bo_prod_cut: float
    #: vdW Morse well depth D (kcal/mol) and range alpha, radius rvdw (A)
    vdw_d: np.ndarray
    vdw_alpha: float
    vdw_r: np.ndarray
    #: EEM electronegativity chi (kcal/mol/e), hardness eta (kcal/mol/e^2),
    #: shielding gamma (A^-1 scale parameter, used as gamma_ij in the
    #: shielded kernel (r^3 + 1/gamma^3)^(-1/3))
    chi: np.ndarray
    eta: np.ndarray
    gamma: np.ndarray
    #: nonbonded cutoff (taper outer radius), Angstrom
    rcut_nonb: float = 10.0
    #: bond-list search cutoff, Angstrom
    rcut_bond: float = 4.0

    def __post_init__(self) -> None:
        n = self.ntypes + 1
        for name in ("r0", "de", "k_ang", "cos0", "v2", "vdw_d", "vdw_r", "chi", "eta", "gamma"):
            arr = getattr(self, name)
            if arr.shape != (n,):
                raise InputError(f"ReaxParams.{name} must have shape ({n},)")
        if self.bo_cut <= 0 or self.bo_cut >= 1:
            raise InputError("bo_cut must be in (0, 1)")
        if self.rcut_bond >= self.rcut_nonb:
            raise InputError("bond cutoff must be below the nonbonded cutoff")

    # pair combination rules -------------------------------------------------
    def r0_ij(self, ti: np.ndarray, tj: np.ndarray) -> np.ndarray:
        return 0.5 * (self.r0[ti] + self.r0[tj])

    def de_ij(self, ti: np.ndarray, tj: np.ndarray) -> np.ndarray:
        return np.sqrt(self.de[ti] * self.de[tj])

    def vdw_d_ij(self, ti: np.ndarray, tj: np.ndarray) -> np.ndarray:
        return np.sqrt(self.vdw_d[ti] * self.vdw_d[tj])

    def vdw_r_ij(self, ti: np.ndarray, tj: np.ndarray) -> np.ndarray:
        return 0.5 * (self.vdw_r[ti] + self.vdw_r[tj])

    def gamma_ij(self, ti: np.ndarray, tj: np.ndarray) -> np.ndarray:
        return np.sqrt(self.gamma[ti] * self.gamma[tj])


def default_chno() -> ReaxParams:
    """C, H, N, O parameters (types 1-4)."""
    pad = lambda vals: np.array([0.0] + vals)
    return ReaxParams(
        ntypes=4,
        symbols=["", "C", "H", "N", "O"],
        r0=pad([1.42, 0.80, 1.30, 1.25]),
        pbo1=-0.18,
        pbo2=8.0,
        bo_cut=0.01,
        de=pad([120.0, 100.0, 130.0, 110.0]),
        k_ang=pad([35.0, 20.0, 40.0, 45.0]),
        cos0=pad([-0.5, -0.33, -0.45, -0.40]),  # ~120, 109, 117, 114 deg
        v2=pad([8.0, 2.0, 10.0, 6.0]),
        bo_prod_cut=0.02,
        vdw_d=pad([0.10, 0.02, 0.12, 0.09]),
        vdw_alpha=10.0,
        vdw_r=pad([3.8, 3.0, 3.6, 3.5]),
        chi=pad([125.0, 90.0, 160.0, 200.0]),
        eta=pad([160.0, 220.0, 170.0, 190.0]),
        gamma=pad([0.85, 0.75, 0.90, 0.95]),
    )
