"""Molecular species analysis for reactive runs (LAMMPS's ``reaxff/species``).

The point of a reactive force field is that molecules are *emergent*: bonds
form and break during the run, so chemistry must be read off the bond-order
network.  This module identifies molecules as connected components of the
bond graph (bond order above a threshold) and reports their formulas —
exactly the analysis LAMMPS's ``fix reaxff/species`` performs, built here on
:mod:`networkx`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.core.errors import LammpsError
from repro.reaxff.bond_order import BondList


@dataclass(frozen=True)
class SpeciesReport:
    """Molecule census of one snapshot."""

    #: molecular formula (e.g. "C2HNO2") -> count
    formulas: dict[str, int]
    #: number of molecules
    nmolecules: int
    #: size of the largest connected fragment (atoms)
    largest: int
    #: total bonds counted (undirected, above the threshold)
    nbonds: int

    def formula_string(self) -> str:
        parts = [f"{n} x {f}" for f, n in sorted(self.formulas.items())]
        return ", ".join(parts) if parts else "(no molecules)"


def molecular_formula(symbols: list[str]) -> str:
    """Hill-ish formula: C first, H second, the rest alphabetical."""
    counts = Counter(symbols)
    order = ["C", "H"] + sorted(k for k in counts if k not in ("C", "H"))
    out = []
    for s in order:
        n = counts.get(s, 0)
        if n == 1:
            out.append(s)
        elif n > 1:
            out.append(f"{s}{n}")
    return "".join(out)


def analyze_species(
    bonds: BondList,
    species: np.ndarray,
    tags: np.ndarray,
    nlocal: int,
    symbols: list[str],
    *,
    bo_threshold: float = 0.15,
) -> SpeciesReport:
    """Molecule census from a bond-order table.

    Uses global tags as node identities so ghost copies merge with their
    owners; only bonds with ``BO > bo_threshold`` count as chemical bonds
    (transient bond-order tails are ignored, as in LAMMPS's species fix —
    the 0.15 default sits between this force field's weakest intramolecular
    bond, O-H at ~0.19, and the ~0.09 intermolecular contacts).
    """
    if bo_threshold <= 0 or bo_threshold >= 1:
        raise LammpsError("bo_threshold must be in (0, 1)")
    g = nx.Graph()
    # every owned atom is a node even if unbonded (a monatomic "molecule")
    for i in range(nlocal):
        g.add_node(int(tags[i]), sym=symbols[int(species[i])])
    keep = bonds.bo > bo_threshold
    for e in np.flatnonzero(keep):
        i = int(bonds.i[e])
        j = int(bonds.j[e])
        if i >= nlocal and j >= nlocal:
            continue  # ghost-ghost duplicates
        ti, tj = int(tags[i]), int(tags[j])
        if ti == tj:
            continue  # periodic self-image
        for t, k in ((ti, i), (tj, j)):
            if t not in g:
                g.add_node(t, sym=symbols[int(species[k])])
        g.add_edge(ti, tj)

    formulas: Counter = Counter()
    largest = 0
    for comp in nx.connected_components(g):
        syms = [g.nodes[t]["sym"] for t in comp]
        formulas[molecular_formula(syms)] += 1
        largest = max(largest, len(comp))
    return SpeciesReport(
        formulas=dict(formulas),
        nmolecules=sum(formulas.values()),
        largest=largest,
        nbonds=g.number_of_edges(),
    )


def analyze_lammps(lmp, bo_threshold: float = 0.15) -> SpeciesReport:
    """Species census of a live ReaxFF run (single-rank convenience)."""
    pair = lmp.pair
    if not hasattr(pair, "type_map") or pair.type_map is None:
        raise LammpsError("species analysis requires an active reaxff pair style")
    atom = lmp.atom
    species = pair.type_map[atom.type[: atom.nall]]
    # the force pipeline's bond table for this configuration is reused
    # outright; no second bond-search list is ever built for one step
    bonds = pair.bonds_for_analysis()
    return analyze_species(
        bonds,
        species,
        atom.tag[: atom.nall],
        atom.nlocal,
        pair.params.symbols,
        bo_threshold=bo_threshold,
    )
