"""Four-body torsions with compressed-quad pre-processing (section 4.2.1).

A quad is a bonded chain ``k - i - j - l`` around a central bond (i, j):
(i, k) bonded, (i, j) bonded, (j, l) bonded, with a constraint on the
product of the three bond orders.  "For HNS, in practice fewer than 5% of
possible quads satisfy each constraint, which leads to a high degree of
divergence" — hence the paper's two pre-processing kernels (count quads,
then store them into a View of int4) feeding a fully convergent force
kernel parallelized *over quads*, with all quads of a central bond
contiguous for cache reuse.  That exact pipeline is what
:func:`build_quads` and :func:`compute_torsions` implement.

Energy per quad:

    E = V2_ij * BO_ik * BO_ij * BO_jl * sin^2(omega)

with ``omega`` the dihedral angle of the chain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kokkos.segment import scatter_add
from repro.reaxff.bond_order import BondList
from repro.reaxff.bonds import accumulate_virial
from repro.reaxff.params import ReaxParams


@dataclass
class QuadTable:
    """Compressed quads: the paper's "View of int4" plus leg entries.

    ``atoms`` is the (n, 4) int32 table of (k, i, j, l) indices; the three
    ``leg*`` arrays index bond-list entries so the force kernel reuses the
    cached bond geometry (fully convergent, no recomputation).
    """

    atoms: np.ndarray
    leg_ik: np.ndarray
    leg_ij: np.ndarray
    leg_jl: np.ndarray
    #: candidate quads examined before the bond-order-product constraint
    candidates: int

    @property
    def nquads(self) -> int:
        return len(self.leg_ij)


def build_quads(
    tags: np.ndarray,
    nlocal: int,
    bonds: BondList,
    params: ReaxParams,
) -> QuadTable:
    """Pre-processing kernels: enumerate, constrain, compress.

    Central bonds are bond entries (i, j) with ``i`` local and
    ``tag_i < tag_j`` (each physical chain is built exactly once globally).
    """
    i_all, j_all = bonds.i, bonds.j.astype(np.int64)
    central = (i_all < nlocal) & (tags[i_all] < tags[j_all])
    ce = np.flatnonzero(central)
    if ce.size == 0:
        z = np.zeros(0, dtype=np.int64)
        return QuadTable(np.zeros((0, 4), np.int32), z, z, z, 0)

    ci = i_all[ce]
    cj = j_all[ce]
    nb = np.diff(bonds.first)
    cnt_i = nb[ci]
    cnt_j = nb[cj]
    per_bond = cnt_i * cnt_j
    total = int(per_bond.sum())
    candidates = total
    if total == 0:
        z = np.zeros(0, dtype=np.int64)
        return QuadTable(np.zeros((0, 4), np.int32), z, z, z, candidates)

    # Kernel 1 (count) + scan: expansion offsets, quads contiguous per
    # central bond.
    rep = np.repeat(np.arange(ce.size), per_bond)
    csum = np.zeros(ce.size, dtype=np.int64)
    np.cumsum(per_bond[:-1], out=csum[1:])
    rank = np.arange(total, dtype=np.int64) - np.repeat(csum, per_bond)
    a = rank // cnt_j[rep]  # index among i's bonds
    b = rank % cnt_j[rep]  # index among j's bonds

    leg_ik = bonds.first[ci[rep]] + a
    leg_jl = bonds.first[cj[rep]] + b
    leg_ij = ce[rep]
    k = j_all[leg_ik]
    l = j_all[leg_jl]
    ii = ci[rep]
    jj = cj[rep]

    # Kernel 2 (fill): apply the validity and bond-order-product constraints
    # and store surviving quads.
    valid = (leg_ik != leg_ij) & (k != jj) & (l != ii) & (k != l)
    boprod = bonds.bo[leg_ik] * bonds.bo[leg_ij] * bonds.bo[leg_jl]
    valid &= boprod > params.bo_prod_cut
    sel = np.flatnonzero(valid)
    atoms = np.stack([k[sel], ii[sel], jj[sel], l[sel]], axis=1).astype(np.int32)
    return QuadTable(
        atoms=atoms,
        leg_ik=leg_ik[sel],
        leg_ij=leg_ij[sel],
        leg_jl=leg_jl[sel],
        candidates=candidates,
    )


def compute_torsions(
    x: np.ndarray,
    types: np.ndarray,
    bonds: BondList,
    quads: QuadTable,
    params: ReaxParams,
    f: np.ndarray,
    virial: np.ndarray,
) -> float:
    """Convergent quad kernel: dihedral energy + forces on (k, i, j, l)."""
    if quads.nquads == 0:
        return 0.0
    k = quads.atoms[:, 0].astype(np.int64)
    i = quads.atoms[:, 1].astype(np.int64)
    j = quads.atoms[:, 2].astype(np.int64)
    l = quads.atoms[:, 3].astype(np.int64)

    # chain vectors: b1 = x_i - x_k, b2 = x_j - x_i, b3 = x_l - x_j,
    # reusing cached bond geometry (dx = x_center - x_neighbor).
    b1 = bonds.dx[quads.leg_ik]
    b2 = -bonds.dx[quads.leg_ij]
    b3 = -bonds.dx[quads.leg_jl]

    n1 = np.cross(b1, b2)
    n2 = np.cross(b2, b3)
    n1sq = np.einsum("ij,ij->i", n1, n1)
    n2sq = np.einsum("ij,ij->i", n2, n2)
    ok = (n1sq > 1e-12) & (n2sq > 1e-12)
    if not ok.any():
        return 0.0
    # degenerate (collinear) chains contribute nothing
    (k, i, j, l) = (k[ok], i[ok], j[ok], l[ok])
    b1, b2, b3, n1, n2 = b1[ok], b2[ok], b3[ok], n1[ok], n2[ok]
    n1sq, n2sq = n1sq[ok], n2sq[ok]
    leg_ik = quads.leg_ik[ok]
    leg_ij = quads.leg_ij[ok]
    leg_jl = quads.leg_jl[ok]

    inv = 1.0 / np.sqrt(n1sq * n2sq)
    cosw = np.einsum("ij,ij->i", n1, n2) * inv
    np.clip(cosw, -1.0, 1.0, out=cosw)
    sin2 = 1.0 - cosw * cosw

    bo1 = bonds.bo[leg_ik]
    bo2 = bonds.bo[leg_ij]
    bo3 = bonds.bo[leg_jl]
    v2 = 0.5 * (params.v2[types[i]] + params.v2[types[j]])
    prod = bo1 * bo2 * bo3
    energy = float((v2 * prod * sin2).sum())

    # --- gradient of cos(omega) -------------------------------------------
    g1 = (n2 * inv[:, None]) - (cosw / n1sq)[:, None] * n1  # dcos/dn1
    g2 = (n1 * inv[:, None]) - (cosw / n2sq)[:, None] * n2  # dcos/dn2
    dcdb1 = np.cross(b2, g1)
    dcdb2 = np.cross(g1, b1) + np.cross(b3, g2)
    dcdb3 = np.cross(g2, b2)

    decos = -2.0 * v2 * prod * cosw  # dE/dcos(omega)
    dEdb1 = decos[:, None] * dcdb1
    dEdb2 = decos[:, None] * dcdb2
    dEdb3 = decos[:, None] * dcdb3

    # chain to positions: b1 = x_i - x_k, b2 = x_j - x_i, b3 = x_l - x_j
    dEdxk = -dEdb1
    dEdxi = dEdb1 - dEdb2
    dEdxj = dEdb2 - dEdb3
    dEdxl = dEdb3

    # --- bond-order chain terms -------------------------------------------
    # dE/dBO_leg = v2 * (prod / bo_leg) * sin2; dBO/dr along the leg vector.
    def bo_leg_force(leg: np.ndarray, bo_leg: np.ndarray) -> np.ndarray:
        debo = v2 * (prod / bo_leg) * sin2
        return (debo * bonds.dbo[leg] / bonds.r[leg])[:, None] * bonds.dx[leg]

    # leg (i, k): dx = x_i - x_k
    t_ik = bo_leg_force(leg_ik, bo1)
    dEdxi += t_ik
    dEdxk -= t_ik
    # leg (i, j): dx = x_i - x_j
    t_ij = bo_leg_force(leg_ij, bo2)
    dEdxi += t_ij
    dEdxj -= t_ij
    # leg (j, l): dx = x_j - x_l
    t_jl = bo_leg_force(leg_jl, bo3)
    dEdxj += t_jl
    dEdxl -= t_jl

    for idx, dE in ((k, dEdxk), (i, dEdxi), (j, dEdxj), (l, dEdxl)):
        scatter_add(f, idx, -dE)
        accumulate_virial(virial, x[idx], -dE)
    return energy
