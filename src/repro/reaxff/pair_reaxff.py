"""``pair_style reaxff`` and ``pair_style reaxff/kk``.

Orchestrates the full ReaxFF-lite timestep:

1. bond-search neighbor list over local + ghost atoms (short cutoff);
2. bond-order table build (pre-processed pipeline, section 4.2.1);
3. charge equilibration: over-allocated CSR build + fused dual CG
   (sections 4.2.2-4.2.3), charges forward-communicated to ghosts;
4. nonbonded tapered vdW + shielded Coulomb from the engine's 10 A list;
5. bond, valence-angle (compressed triplets) and torsion (compressed
   quads) forces;
6. ghost forces reverse-communicated by the integrator (always needed:
   bonded terms touch ghost atoms).

The Kokkos variant runs the same functional pipeline and additionally
charges per-kernel cost profiles derived from the measured workload — the
quantities the figure 4/5/6 ReaxFF curves are built from.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

import repro.kokkos as kk
from repro.core.errors import InputError
from repro.core.neighbor import SHARED, build_neighbor_list, stencil_mode
from repro.core.styles import register_pair
from repro.kokkos.core import Device, Host
from repro.potentials.pair import Pair
from repro.reaxff.angles import build_triplets, compute_angles
from repro.reaxff.bond_order import build_bond_list
from repro.reaxff.bonds import compute_bonds
from repro.reaxff.nonbonded import compute_nonbonded
from repro.reaxff.params import ReaxParams, default_chno
from repro.reaxff.qeq import (
    EXTRAP_NONE,
    EXTRAPS,
    FUSED,
    PRECONDS,
    QEqHistory,
    build_qeq_matrix,
    equilibrate_charges_gen,
    make_preconditioner,
    qeq_spmv_mode,
)
from repro.reaxff.torsions import build_quads, compute_torsions


@register_pair("reaxff")
class PairReaxFF(Pair):
    """Host ReaxFF-lite."""

    def settings(self, args: list[str]) -> None:
        self.params: ReaxParams = default_chno()
        self.qeq_tol = 1e-8
        #: preconditioner for the dual CG (none/jacobi/ssor)
        self.qeq_precond = "none"
        #: charge-history extrapolation order ("none" = cold start, "0".."3")
        self.qeq_extrap = EXTRAP_NONE
        it = iter(args)
        for key in it:
            if key == "qeq_tol":
                self.set_qeq_options(tol=next(it, "1e-8"))
            elif key == "qeq_precond":
                self.set_qeq_options(precond=next(it, "none"))
            elif key == "qeq_extrap":
                self.set_qeq_options(extrap=next(it, EXTRAP_NONE))
            elif key == "cutoff":
                # reduced nonbonded cutoff for small test boxes; the
                # production default matches ReaxFF's 10 A taper
                from dataclasses import replace

                self.params = replace(self.params, rcut_nonb=float(next(it, "10")))
            else:
                raise InputError(f"pair_style reaxff: unknown option {key!r}")
        #: per-solve iteration counts, appended every compute (the
        #: iterations-to-tolerance series the qeq bench and golden read)
        self.qeq_iters_history: list[int] = []
        #: s/t ring buffer on the atom arrays, created at first compute
        self._qeq_history: QEqHistory | None = None
        #: solves completed so far — the COLLECTIVE seed gate: every rank
        #: computes every step, so the counter (and hence the decision to
        #: run the extra seed-residual comm round) agrees across ranks even
        #: when some rank's per-atom history is empty
        self._qeq_solves = 0
        #: engine type -> species index map (set by pair_coeff)
        self.type_map: np.ndarray | None = None
        #: diagnostics of the last compute (kernel sizes, QEq iterations)
        self.last_stats: dict = {}
        # Skin-amortized bond-search list: keyed on the engine's pair-list
        # *object* (a rebuild creates a fresh NeighborList, so identity
        # doubles as the invalidation signal; holding the reference keeps
        # id() collisions impossible).
        self._bond_nlist = None
        self._bond_nlist_key = None
        # Last bond-order table, reusable within one configuration (same
        # timestep + same pair list) by the species analysis.
        self._last_bonds = None
        self._last_bonds_key = None

    def set_qeq_options(
        self, *, precond=None, extrap=None, tol=None
    ) -> None:
        """Validated QEq-knob setter, shared by ``pair_style`` args and the
        autotuner's ``apply_config`` (unknown names fail with the standard
        did-you-mean hint)."""
        from repro.core.errors import unknown_choice

        if precond is not None:
            if precond not in PRECONDS:
                raise InputError(unknown_choice("qeq_precond", precond, PRECONDS))
            self.qeq_precond = precond
        if extrap is not None:
            extrap = str(extrap)
            if extrap not in EXTRAPS:
                raise InputError(unknown_choice("qeq_extrap", extrap, EXTRAPS))
            self.qeq_extrap = extrap
        if tol is not None:
            self.qeq_tol = float(tol)

    def coeff(self, args: list[str]) -> None:
        """``pair_coeff * * chno <elem-per-type...>`` maps types to species."""
        if len(args) < 3 or args[0] != "*" or args[1] != "*" or args[2] != "chno":
            raise InputError("usage: pair_coeff * * chno <element per type...>")
        symbols = {s: k for k, s in enumerate(self.params.symbols) if s}
        elems = args[3:]
        ntypes = self.cut.shape[0] - 1
        if len(elems) != ntypes:
            raise InputError(
                f"pair_coeff chno needs {ntypes} element labels, got {len(elems)}"
            )
        tmap = np.zeros(ntypes + 1, dtype=np.int64)
        for t, e in enumerate(elems, start=1):
            if e not in symbols:
                raise InputError(f"unknown element {e!r}; known: {sorted(symbols)}")
            tmap[t] = symbols[e]
        self.type_map = tmap
        self.cut[1:, 1:] = self.params.rcut_nonb
        self.setflag[1:, 1:] = True

    def init(self) -> None:
        if self.type_map is None:
            raise InputError("pair reaxff: pair_coeff * * chno ... not given")

    def neighbor_request(self) -> tuple[str, bool]:
        return "full", False

    @property
    def needs_reverse_comm(self) -> bool:
        # bonded terms always put force on ghost atoms
        return True

    def max_cutoff(self) -> float:
        return self.params.rcut_nonb

    # ------------------------------------------------------- bond-search list
    def bond_neighbor_list(self):
        """Bond-search list over ALL atoms (ghosts get their own rows).

        Built at ``rcut_bond + skin`` from the per-rebuild shared
        :class:`~repro.core.bin_grid.BinGrid` and reused until the engine's
        rebuild policy produces a fresh pair list — the skin-amortized
        multi-cutoff request.  The downstream bond-order build re-filters
        candidates at the exact ``rcut_bond`` every call, so reusing the
        padded list is bit-identical to rebuilding it each step.  In legacy
        stencil mode this falls back to the pre-overhaul behavior (a fresh
        exact-cutoff list every force call) so benchmarks compare honestly.
        """
        lmp = self.lmp
        atom = lmp.atom
        nall = atom.nall
        x = atom.x[:nall]
        if stencil_mode() != SHARED:
            return build_neighbor_list(x, nall, self.params.rcut_bond, style="full")
        if self._bond_nlist is None or self._bond_nlist_key is not lmp.neigh_list:
            self._bond_nlist = build_neighbor_list(
                x,
                nall,
                self.params.rcut_bond + lmp.neighbor.skin,
                style="full",
                grid=lmp.bin_grid,
            )
            self._bond_nlist_key = lmp.neigh_list
        return self._bond_nlist

    def bonds_for_analysis(self):
        """The current configuration's bond-order table (species analysis).

        Returns the table the force pipeline just built when one exists for
        this exact configuration; otherwise builds one through the shared
        bond-search list — never a second full build for the same step.
        """
        lmp = self.lmp
        key = (lmp.update.ntimestep, lmp.neigh_list)
        if self._last_bonds is None or self._last_bonds_key != key:
            atom = lmp.atom
            nall = atom.nall
            x = atom.x[:nall]
            species = self.type_map[atom.type[:nall]]
            self._last_bonds = build_bond_list(
                x, species, self.bond_neighbor_list(), self.params
            )
            self._last_bonds_key = key
        return self._last_bonds

    # --------------------------------------------------------------- compute
    def compute_gen(self, eflag: bool = True, vflag: bool = True) -> Iterator[None]:
        lmp = self.lmp
        atom = lmp.atom
        params = self.params
        self.reset_tallies()
        stats = self.last_stats = {}

        nall = atom.nall
        nlocal = atom.nlocal
        x = atom.x[:nall]
        species = self.type_map[atom.type[:nall]]
        tags = atom.tag[:nall]

        # 1) bond-search list over ALL atoms: ghosts need their own bond rows
        # so torsion chains crossing the boundary see the far-side legs.
        # Skin-amortized: rebuilt only when the engine's rebuild policy fires.
        bond_nlist = self.bond_neighbor_list()
        # 2) bond-order table (count -> scan -> fill pipeline)
        bonds = build_bond_list(x, species, bond_nlist, params)
        self._last_bonds = bonds
        self._last_bonds_key = (lmp.update.ntimestep, lmp.neigh_list)
        stats["bond_candidates"] = bonds.candidates
        stats["nbonds"] = bonds.nbonds

        # 3) charge equilibration: preconditioned, history-seeded dual CG
        matrix = build_qeq_matrix(x, species, lmp.neigh_list, params, lmp.update.units.qqr2e)
        stats["qeq_nnz"] = matrix.total_nnz
        stats["qeq_slots"] = matrix.stored_slots
        precond = make_preconditioner(self.qeq_precond, matrix)
        if self._qeq_history is None:
            self._qeq_history = QEqHistory(atom)
        x0 = None
        if self.qeq_extrap != EXTRAP_NONE and self._qeq_solves > 0:
            x0 = self._qeq_history.seed(int(self.qeq_extrap))
        qeq_out: dict = {}
        chi_local = params.chi[species[:nlocal]]
        yield from equilibrate_charges_gen(
            lmp, matrix, chi_local, qeq_out, tol=self.qeq_tol,
            precond=precond, x0=x0,
        )
        atom.q[:nlocal] = qeq_out["q"]
        self._qeq_history.push(qeq_out["s"], qeq_out["t"])
        self._qeq_solves += 1
        stats["qeq_iterations"] = qeq_out["iterations"]
        stats["qeq_seeded"] = qeq_out["seeded"]
        stats["qeq_spmv_bytes"] = qeq_out["spmv_bytes"]
        stats["qeq_spmv_bytes_per_iteration"] = matrix.traversal_bytes()
        self.qeq_iters_history.append(qeq_out["iterations"])
        yield from lmp.comm_brick.forward_comm_field(atom, "q")
        q = atom.q[:nall]
        # EEM self energy (part of the electrostatic energy QEq minimizes)
        ql = q[:nlocal]
        self.eng_coul += float(
            (params.chi[species[:nlocal]] * ql + params.eta[species[:nlocal]] * ql * ql).sum()
        )

        # 4) nonbonded vdW + Coulomb
        evdw, ecoul, nb_pairs = compute_nonbonded(
            x, species, q, nlocal, lmp.neigh_list, params,
            lmp.update.units.qqr2e, atom.f, self.virial,
        )
        self.eng_vdwl += evdw
        self.eng_coul += ecoul
        stats["nonbonded_pairs"] = nb_pairs

        # 5) bonded terms
        self.eng_vdwl += compute_bonds(
            x, species, tags, nlocal, bonds, params, atom.f, self.virial
        )
        triplets = build_triplets(bonds, nlocal)
        stats["triplets"] = triplets.ntriplets
        self.eng_vdwl += compute_angles(
            x, species, nlocal, bonds, triplets, params, atom.f, self.virial
        )
        quads = build_quads(tags, nlocal, bonds, params)
        stats["quad_candidates"] = quads.candidates
        stats["quads"] = quads.nquads
        self.eng_vdwl += compute_torsions(
            x, species, bonds, quads, params, atom.f, self.virial
        )
        self._charge_kernels(stats, nlocal)

    def _charge_kernels(self, stats: dict, nlocal: int) -> None:
        """Hook for the Kokkos variant; the host style charges nothing."""


@register_pair("reaxff/kk")
class PairReaxFFKokkos(PairReaxFF):
    """Kokkos ReaxFF-lite: same pipeline + per-kernel cost accounting."""

    kokkos_style = True

    #: flop estimates per work item for the major kernels (transcendental
    #: evaluations weighted ~8 flops, as in roofline practice)
    FLOPS_TORSION = 220.0
    FLOPS_ANGLE = 90.0
    FLOPS_BOND = 40.0
    FLOPS_NONBONDED = 60.0
    FLOPS_QEQ_VALUE = 45.0

    def __init__(self, lmp, args, execution_space: str = "device") -> None:
        self.execution_space = Device if execution_space == "device" else Host
        super().__init__(lmp, args)

    def compute_gen(self, eflag: bool = True, vflag: bool = True) -> Iterator[None]:
        atom_kk = self.lmp.atom_kk
        atom_kk.sync(self.execution_space, ("x", "type", "q", "f"))
        yield from super().compute_gen(eflag, vflag)
        # pipeline computes through the host aliases (communication-heavy
        # phases stay host-resident, section 3.3); mark and resync.
        atom_kk.modified(Host, ("f", "q"))

    def _charge_kernels(self, stats: dict, nlocal: int) -> None:
        space = self.execution_space
        n = max(nlocal, 1)
        mean_nb = stats["nbonds"] / n

        def charge(name: str, **kw) -> None:
            # many small irregular kernels: poor CPU vectorization
            kw.setdefault("cpu_efficiency", 0.035)
            prof = kk.KernelProfile(name=name, **kw)
            kk.parallel_for(name, kk.RangePolicy(space, 0, n), lambda idx: None, profile=prof)

        # bond-order neighbor list: divergent filter over candidates
        charge(
            "ReaxBondOrderNeighborList",
            flops=25.0 * stats["bond_candidates"],
            bytes_streamed=8.0 * stats["bond_candidates"] + 32.0 * n,
            bytes_reusable=24.0 * stats["bond_candidates"],
            l1_working_set_kb=200.0,
            l2_working_set_mb=24.0 * n / 1e6,
            parallel_items=float(n),
            convergent_fraction=max(stats["nbonds"] / max(stats["bond_candidates"], 1), 0.05),
        )
        # QEq matrix build: team hierarchical (rows x vector lanes) -> fully
        # convergent memory access (section 4.2.2)
        charge(
            "ReaxQEqMatrixBuild",
            flops=self.FLOPS_QEQ_VALUE * stats["qeq_nnz"],
            bytes_streamed=12.0 * stats["qeq_slots"],
            bytes_reusable=24.0 * stats["qeq_nnz"],
            l1_working_set_kb=96.0,
            l2_working_set_mb=12.0 * stats["qeq_slots"] / 1e6,
            parallel_items=2.0 * nlocal,
        )
        # fused dual spmv: one matrix stream per iteration feeds both solves
        # (the forced "dual" benchmark baseline streams the matrix twice)
        iters = max(stats["qeq_iterations"], 1)
        streams = 1.0 if qeq_spmv_mode() == FUSED else 2.0
        charge(
            "ReaxQEqSparseMatVec",
            flops=4.0 * stats["qeq_nnz"] * iters,
            # the matrix stream is compulsory; vector gathers are pointer-
            # indirected and latency-limited rather than cache-limited
            # (appendix C.2), so carveout sensitivity stays under 10%
            bytes_streamed=24.0 * stats["qeq_nnz"] * iters * streams,
            bytes_reusable=4.0 * stats["qeq_nnz"] * iters,
            l1_working_set_kb=64.0,
            l2_working_set_mb=12.0 * stats["qeq_nnz"] / 1e6,
            # rows are the independent scheduling unit (vector lanes within
            # a row retire together), so effective concurrency tracks the
            # atom count — LJ and ReaxFF saturate at similar sizes (fig. 4)
            parallel_items=2.0 * nlocal,
            launches=int(iters * streams),
        )
        charge(
            "ReaxNonbondedForce",
            flops=self.FLOPS_NONBONDED * stats["nonbonded_pairs"],
            # the 10 A gather working set dwarfs any L1 configuration, so
            # most neighbor traffic streams — which is why the paper saw
            # <10% carveout sensitivity for ReaxFF kernels
            bytes_streamed=28.0 * stats["nonbonded_pairs"] + 48.0 * n,
            bytes_reusable=8.0 * stats["nonbonded_pairs"],
            l1_working_set_kb=2000.0,
            l2_working_set_mb=24.0 * n / 1e6,
            parallel_items=float(n),
        )
        charge(
            "ReaxBondForce",
            flops=self.FLOPS_BOND * stats["nbonds"],
            bytes_streamed=16.0 * stats["nbonds"],
            parallel_items=float(n),
        )
        # triplet/quad pre-processing: cheap, divergent (the point of the
        # section 4.2.1 split), then convergent force kernels over the
        # compressed tables
        charge(
            "ReaxBuildAngleTorsionTables",
            flops=6.0 * (stats["triplets"] + stats["quad_candidates"]),
            bytes_streamed=16.0 * (stats["triplets"] + stats["quads"]),
            parallel_items=float(n),
            convergent_fraction=max(
                stats["quads"] / max(stats["quad_candidates"], 1), 0.05
            ),
        )
        charge(
            "ReaxAngleForce",
            flops=self.FLOPS_ANGLE * stats["triplets"],
            bytes_streamed=28.0 * stats["triplets"],
            bytes_reusable=48.0 * stats["triplets"],
            l1_working_set_kb=16.0 * max(mean_nb, 1.0),
            parallel_items=float(max(stats["triplets"], 1)),
        )
        charge(
            "ReaxTorsionForce",
            flops=self.FLOPS_TORSION * stats["quads"],
            bytes_streamed=40.0 * stats["quads"],
            bytes_reusable=64.0 * stats["quads"],
            l1_working_set_kb=20.0 * max(mean_nb, 1.0),
            parallel_items=float(max(stats["quads"], 1)),
        )
