"""Charge equilibration: over-allocated CSR build + fused dual CG solve.

Paper sections 4.2.2-4.2.3 in full:

* The electrostatic interaction matrix uses a **modified CSR** format that
  is *over-allocated*: each row's slot count comes from a parallel scan
  over the full neighbor list (independent of the interaction cutoff), so
  the build never needs a second counting pass over the expensive kernel.
  Four data structures describe it — flat values, column indices, row
  offsets, and an explicit per-row non-zero count (required *because* rows
  are over-allocated).  Appendix B's integer-width split is applied: row
  offsets are int64 (they overflow 32 bits at exascale), column indices and
  row lengths stay int32 — and :func:`build_qeq_matrix` *enforces* that
  split rather than documenting it.

* The two Krylov solves (``A s = -chi``, ``A t = -1``) are **truly fused**:
  the direction vectors stack into one ``(nall, 2)`` operand so a single
  load of the ``vals``/``cols`` stream feeds both products
  (:meth:`QEqMatrix.spmv2`) — the optimization AMD contributed to the
  Kokkos version.  The historical double-traversal path is kept behind
  :func:`force_qeq_spmv_mode` as a benchmark baseline.  The equilibrated
  charges are ``q = s - t * (sum s / sum t)``, which enforces charge
  neutrality.

* Iterations-to-tolerance is attacked from two more sides: a pluggable
  **preconditioner** (:func:`make_preconditioner`: ``none``/``jacobi``/
  ``ssor``) applied inside the dual CG recurrence, and **charge-history
  extrapolation** (:class:`QEqHistory`): a ring buffer of the last few
  steps' ``s``/``t`` solutions rides on the atom arrays (so it survives
  spatial sorting and rank migration) and seeds the CG from a polynomial
  extrapolation instead of zero.

The solver is written as a generator so distributed runs forward-communicate
the two direction vectors (staged through the ``rho``/``fp`` scratch fields,
packed into ONE exchange per iteration) and allreduce the dot products each
iteration through the lockstep protocol.  Convergence is always tested on
the *true* residual, so every preconditioner/seed combination stops at the
identical tolerance — the property the iteration-count benchmarks rely on.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.errors import LammpsError, OverflowGuardError, unknown_choice
from repro.kokkos.segment import ATOMIC, scatter_mode
from repro.reaxff.nonbonded import shielded_kernel, taper
from repro.reaxff.params import ReaxParams
from repro.tools import metrics

# --------------------------------------------------------------- spmv mode
#: one matrix traversal feeds both right-hand sides (the paper's fusion)
FUSED = "fused"
#: two sequential traversals — the pre-fusion benchmark baseline
DUAL = "dual"

_SPMV_MODES = (FUSED, DUAL)

_spmv_mode: str = FUSED


def qeq_spmv_mode() -> str:
    """The active dual-RHS traversal mode (``fused`` unless forced)."""
    return _spmv_mode


def set_qeq_spmv_mode(mode: str | None) -> str | None:
    """Install the traversal mode (None restores ``fused``); return the old.

    Unknown names fail here, at the setter, with a did-you-mean hint — the
    same contract as the scatter/stencil mode setters.
    """
    global _spmv_mode
    if mode is not None and mode not in _SPMV_MODES:
        raise ValueError(unknown_choice("qeq spmv mode", mode, _SPMV_MODES))
    prev = _spmv_mode
    _spmv_mode = FUSED if mode is None else mode
    return prev


@contextmanager
def force_qeq_spmv_mode(mode: str | None) -> Iterator[None]:
    """Pin the dual-RHS traversal mode for a benchmark scope."""
    prev = set_qeq_spmv_mode(mode)
    try:
        yield
    finally:
        set_qeq_spmv_mode(prev)


@dataclass
class QEqMatrix:
    """Over-allocated CSR (paper's four-structure format) plus the diagonal."""

    nlocal: int
    #: row offsets into the over-allocated flat arrays, int64 (appendix B)
    offsets: np.ndarray
    #: flat column indices (into local+ghost vectors), int32
    cols: np.ndarray
    #: flat interaction values
    vals: np.ndarray
    #: actual non-zeros per row, int32 — required because rows over-allocate
    nnz: np.ndarray
    #: diagonal: 2 * eta_i
    diag: np.ndarray
    # derived compacted COO for vectorized spmv (simulation-side convenience;
    # the four structures above are the format of record)
    _rows_flat: np.ndarray | None = None
    _cols_flat: np.ndarray | None = None
    _vals_flat: np.ndarray | None = None
    # per-rebuild row-segment plan: starts of each non-empty row's run in the
    # compacted arrays and the owning row indices — the true-CSR reduction
    _seg_starts: np.ndarray | None = None
    _seg_rows: np.ndarray | None = None

    def _compact(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._rows_flat is None:
            nnz = self.nnz.astype(np.int64)
            total = int(nnz.sum())
            rows = np.repeat(np.arange(self.nlocal), nnz)
            # valid slots are the first nnz[i] entries of each row
            csum = np.zeros(self.nlocal, dtype=np.int64)
            if self.nlocal:
                np.cumsum(nnz[:-1], out=csum[1:])
            within = np.arange(total, dtype=np.int64) - np.repeat(csum, nnz)
            idx = np.repeat(self.offsets[:-1], nnz) + within
            self._rows_flat = rows
            self._cols_flat = self.cols[idx].astype(np.int64)
            self._vals_flat = self.vals[idx]
            # rows is sorted by construction: the row-run starts are exactly
            # the compacted offsets of the non-empty rows
            nonempty = np.flatnonzero(nnz)
            self._seg_starts = csum[nonempty]
            self._seg_rows = nonempty
        return self._rows_flat, self._cols_flat, self._vals_flat

    def spmv(self, vec_all: np.ndarray) -> np.ndarray:
        """``A @ vec``: local rows against local+ghost columns.

        Row-major storage makes this a true CSR product: one ``reduceat``
        over the per-rebuild row segments replaces the scalar ``np.add.at``
        scatter (the ``atomic`` mode kept for benchmark baselines).
        """
        rows, cols, vals = self._compact()
        out = self.diag * vec_all[: self.nlocal]
        prod = vals * vec_all[cols]
        if scatter_mode() == ATOMIC:
            np.add.at(out, rows, prod)
        elif len(prod):
            out[self._seg_rows] += np.add.reduceat(prod, self._seg_starts)
        return out

    def spmv2(self, vec2_all: np.ndarray) -> np.ndarray:
        """``A @ [u, v]``: both right-hand sides off ONE matrix traversal.

        ``vec2_all`` is ``(nall, 2)``; one load of ``vals``/``cols`` feeds
        both products (``vals[:, None] * vec2_all[cols]``), and the same
        per-rebuild row-segment plan reduces both columns in one
        ``reduceat(..., axis=0)``.  Each column accumulates in exactly the
        order :meth:`spmv` uses, so the fused result is bitwise identical
        to two single-RHS traversals — the equivalence the dual-mode tests
        and the golden baselines rely on.
        """
        rows, cols, vals = self._compact()
        out = self.diag[:, None] * vec2_all[: self.nlocal]
        prod = vals[:, None] * vec2_all[cols]
        if scatter_mode() == ATOMIC:
            np.add.at(out, rows, prod)
        elif len(prod):
            out[self._seg_rows] += np.add.reduceat(prod, self._seg_starts, axis=0)
        return out

    def traversal_bytes(self, mode: str | None = None) -> int:
        """Matrix-stream bytes loaded per dual-RHS product.

        Counts the compacted value/column arrays actually traversed: the
        fused mode streams them once for both right-hand sides, the dual
        baseline twice.  Vector gathers are excluded — they are identical
        in both modes, and the point of the fusion is the matrix stream.
        """
        self._compact()
        per_pass = self._vals_flat.nbytes + self._cols_flat.nbytes
        return per_pass if (mode or qeq_spmv_mode()) == FUSED else 2 * per_pass

    @property
    def stored_slots(self) -> int:
        return len(self.vals)

    @property
    def total_nnz(self) -> int:
        return int(self.nnz.sum())


def build_qeq_matrix(
    x: np.ndarray,
    types: np.ndarray,
    nlist,
    params: ReaxParams,
    qqr2e: float,
) -> QEqMatrix:
    """Build the interaction matrix from the full neighbor list.

    Pipeline per the paper: (1) parallel scan over full-list neighbor
    counts -> over-allocated row offsets; (2) value kernel computes the
    shielded-tapered interactions, slots them row-contiguously, and records
    per-row non-zero counts and column offsets.
    """
    nlocal = nlist.nlocal
    numneigh = nlist.numneigh
    offsets = np.zeros(nlocal + 1, dtype=np.int64)
    np.cumsum(numneigh, out=offsets[1:])
    slots = int(offsets[-1])
    # Appendix B's width split, enforced: the total slot count may
    # legitimately exceed int32 (that is exactly why the offsets are int64),
    # but the narrow structures must never overflow silently — a single
    # row's length lands in the int32 ``nnz`` array, and column indices land
    # in the int32 ``cols`` array.  Both guards fire BEFORE the flat arrays
    # are allocated, so an oversized row raises instead of first trying to
    # materialize gigabytes of slots.
    if offsets.dtype != np.int64:
        raise OverflowGuardError(
            f"QEq row offsets must be int64 (appendix B), got {offsets.dtype}"
        )
    if numneigh.size and int(np.max(numneigh)) > np.iinfo(np.int32).max:
        raise OverflowGuardError(
            f"QEq row length {int(np.max(numneigh))} exceeds int32 — the "
            "per-row nnz array is int32 by the appendix-B width split"
        )
    if nlist.neighbors.size and int(nlist.neighbors.max()) > np.iinfo(np.int32).max:
        raise OverflowGuardError("column index exceeds int32 (appendix B guard)")

    cols = np.full(slots, -1, dtype=np.int32)
    vals = np.zeros(slots)
    nnz = np.zeros(nlocal, dtype=np.int32)

    i, j = nlist.ij_pairs()
    dx = x[i] - x[j]
    rsq = np.einsum("ij,ij->i", dx, dx)
    keep = rsq < params.rcut_nonb**2
    i, j = i[keep], j[keep]
    r = np.sqrt(rsq[keep])
    g, _ = shielded_kernel(r, params.gamma_ij(types[i], types[j]))
    t, _ = taper(r, params.rcut_nonb)
    v = qqr2e * g * t

    # slot the kept entries contiguously at the front of each row
    nnz_counts = np.bincount(i, minlength=nlocal).astype(np.int32)
    row_start = np.zeros(nlocal, dtype=np.int64)
    np.cumsum(nnz_counts[:-1], out=row_start[1:])
    # i is sorted (ij_pairs yields row-major order); position within row:
    pos = np.arange(len(i), dtype=np.int64) - row_start[i]
    slot = offsets[i] + pos
    cols[slot] = j.astype(np.int32)
    vals[slot] = v
    nnz[:] = nnz_counts

    diag = 2.0 * params.eta[types[:nlocal]]
    return QEqMatrix(
        nlocal=nlocal, offsets=offsets, cols=cols, vals=vals, nnz=nnz, diag=diag
    )


# ---------------------------------------------------------- preconditioners
#: preconditioner choices for the dual CG recurrence
PRECOND_NONE = "none"
PRECOND_JACOBI = "jacobi"
PRECOND_SSOR = "ssor"
PRECONDS = (PRECOND_NONE, PRECOND_JACOBI, PRECOND_SSOR)


class JacobiPreconditioner:
    """``z = r / diag`` — free, the diagonal is already stored."""

    name = PRECOND_JACOBI

    def __init__(self, matrix: QEqMatrix) -> None:
        self._diag = matrix.diag

    def apply(self, r2: np.ndarray) -> np.ndarray:
        """``M^-1 @ r2`` for an ``(n, 2)`` residual block."""
        return r2 / self._diag[:, None]


class SSORPreconditioner:
    """Symmetric SOR (omega = 1): ``M = (D+L) D^-1 (D+U)``.

    Built per matrix build from the compacted COO's *local* block (columns
    under ``nlocal``): under domain decomposition each rank preconditions
    with its own diagonal block, which keeps ``M`` symmetric positive
    definite (``D > 0``) and the converged charges decomposition-invariant
    — only the iteration count may differ with the rank layout.
    """

    name = PRECOND_SSOR

    def __init__(self, matrix: QEqMatrix) -> None:
        import scipy.sparse as sp

        rows, cols, vals = matrix._compact()
        n = matrix.nlocal
        self._n = n
        if n == 0:
            return
        local = cols < n
        r, c, v = rows[local], cols[local], vals[local]
        diag = sp.diags(matrix.diag)
        low = r > c
        up = r < c
        self._lower = (
            sp.coo_matrix((v[low], (r[low], c[low])), shape=(n, n)) + diag
        ).tocsr()
        self._upper = (
            sp.coo_matrix((v[up], (r[up], c[up])), shape=(n, n)) + diag
        ).tocsr()
        self._diag = matrix.diag

    def apply(self, r2: np.ndarray) -> np.ndarray:
        from scipy.sparse.linalg import spsolve_triangular

        if self._n == 0:
            return r2.copy()
        y = spsolve_triangular(self._lower, r2, lower=True)
        y *= self._diag[:, None]
        return spsolve_triangular(self._upper, y, lower=False)


def make_preconditioner(name: str, matrix: QEqMatrix):
    """Preconditioner instance for the dual CG, or None for ``none``.

    Unknown names fail with the shared did-you-mean hint so input-script
    typos surface at parse/apply time, not deep inside the solve.
    """
    if name == PRECOND_NONE:
        return None
    if name == PRECOND_JACOBI:
        return JacobiPreconditioner(matrix)
    if name == PRECOND_SSOR:
        return SSORPreconditioner(matrix)
    raise LammpsError(unknown_choice("qeq_precond", name, PRECONDS))


# ------------------------------------------------------ history extrapolation
#: ring depth: one more slot than the highest extrapolation order
HISTORY_DEPTH = 4

#: extrapolation order choices (string-valued for input scripts / configs)
EXTRAP_NONE = "none"
EXTRAPS = (EXTRAP_NONE, "0", "1", "2", "3")

#: binomial predictor coefficients per order: x0 = sum c_k * x[t-k]
EXTRAP_COEFFS = {
    0: (1.0,),
    1: (2.0, -1.0),
    2: (3.0, -3.0, 1.0),
    3: (4.0, -6.0, 4.0, -1.0),
}


class QEqHistory:
    """Ring buffer of recent ``s``/``t`` solutions, living on the atom arrays.

    The buffers are registered custom per-atom fields
    (:meth:`repro.core.atom.AtomVec.add_custom`), so they are permuted by
    spatial sorting and migrate with their atoms through ``exchange`` — the
    FIRE ``v``-remap lesson, except the history must *survive* ownership
    changes rather than reset.  A per-atom valid-count field clamps each
    atom's usable extrapolation order, so freshly started (or historically
    shallow) atoms fall back to the highest order their ring supports.
    """

    FIELD = "qeq_hist"
    COUNT_FIELD = "qeq_hist_n"

    def __init__(self, atom) -> None:
        self.atom = atom
        # columns [0:D) are s (newest first), [D:2D) are t
        atom.add_custom(self.FIELD, 2 * HISTORY_DEPTH)
        atom.add_custom(self.COUNT_FIELD, 1, dtype=np.int32)

    def push(self, s: np.ndarray, t: np.ndarray) -> None:
        """Shift the ring and record this step's converged solutions."""
        atom = self.atom
        n = atom.nlocal
        d = HISTORY_DEPTH
        h = atom.custom[self.FIELD]
        h[:n, 1:d] = h[:n, 0 : d - 1]
        h[:n, 0] = s
        h[:n, d + 1 : 2 * d] = h[:n, d : 2 * d - 1]
        h[:n, d] = t
        cnt = atom.custom[self.COUNT_FIELD]
        np.minimum(cnt[:n, 0] + 1, d, out=cnt[:n, 0])

    def seed(self, order: int) -> tuple[np.ndarray, np.ndarray]:
        """Polynomial extrapolation ``(s0, t0)`` at the requested order.

        Per atom, the order is clamped to what its ring holds (an atom with
        k recorded solutions extrapolates at order k-1, down to a zero seed
        for an empty ring), so migration and fresh starts degrade gracefully
        instead of polluting the Krylov seed.
        """
        if order not in EXTRAP_COEFFS:
            raise LammpsError(
                unknown_choice("qeq_extrap order", order, sorted(EXTRAP_COEFFS))
            )
        atom = self.atom
        n = atom.nlocal
        d = HISTORY_DEPTH
        h = atom.custom[self.FIELD][:n]
        cnt = atom.custom[self.COUNT_FIELD][:n, 0]
        avail = np.minimum(cnt.astype(np.int64) - 1, order)
        s0 = np.zeros(n)
        t0 = np.zeros(n)
        for p in range(order + 1):
            rows = np.flatnonzero(avail == p)
            if not rows.size:
                continue
            c = np.asarray(EXTRAP_COEFFS[p])
            s0[rows] = h[rows, : p + 1] @ c
            t0[rows] = h[rows, d : d + p + 1] @ c
        return s0, t0


# ------------------------------------------------------------------ the solve
def fused_cg_gen(
    lmp,
    matrix: QEqMatrix,
    b1: np.ndarray,
    b2: np.ndarray,
    *,
    tol: float = 1e-8,
    maxiter: int = 200,
    out: dict | None = None,
    precond=None,
    x0: tuple[np.ndarray, np.ndarray] | None = None,
) -> Iterator[None]:
    """Fused dual conjugate gradient: solve ``A s = b1`` and ``A t = b2``.

    One generator drives both recurrences so each iteration traverses the
    matrix once (section 4.2.3's kernel fusion / work batching: the two
    right-hand-side streams hide behind the single matrix-element stream —
    :meth:`QEqMatrix.spmv2`, unless the ``dual`` baseline mode is forced).

    ``precond`` (from :func:`make_preconditioner`) turns the recurrence into
    preconditioned CG; ``x0 = (s0, t0)`` seeds the iterates (one extra
    traversal computes the true seed residual).  Convergence is ALWAYS
    tested on the unpreconditioned residual against ``|b|^2 * tol^2``, so
    every configuration stops at the identical tolerance.  With
    ``precond=None`` and ``x0=None`` the iterates are bitwise identical to
    the historical plain-CG path.

    Results land in ``out['s']``, ``out['t']``, ``out['iterations']``, plus
    ``out['seeded']``, ``out['spmv_traversals']``, ``out['spmv_bytes']``.
    Distributed: direction vectors are staged through the atom scratch
    fields ``rho``/``fp`` and ghost-exchanged as ONE packed message per
    swap per iteration; dot products allreduce through the lockstep
    protocol.
    """
    if out is None:
        raise LammpsError("fused_cg_gen requires an output dict")
    atom = lmp.atom
    n = matrix.nlocal
    nall = atom.nall

    def _stage_and_comm(v1, v2) -> Iterator[None]:
        # both direction vectors ride one forward exchange per swap
        atom.rho[:nall] = 0.0
        atom.fp[:nall] = 0.0
        atom.rho[:n] = v1
        atom.fp[:n] = v2
        yield from lmp.comm_brick.forward_comm_fields(atom, ("rho", "fp"))

    def _dual_spmv() -> np.ndarray:
        if qeq_spmv_mode() == DUAL:
            # benchmark baseline: two full matrix traversals
            return np.column_stack(
                (matrix.spmv(atom.rho[:nall]), matrix.spmv(atom.fp[:nall]))
            )
        vec2 = np.column_stack((atom.rho[:nall], atom.fp[:nall]))
        return matrix.spmv2(vec2)

    traversals = 0
    if x0 is None:
        s = np.zeros(n)
        t = np.zeros(n)
        r1 = b1.copy()
        r2 = b2.copy()
    else:
        s = np.array(x0[0], dtype=float, copy=True)
        t = np.array(x0[1], dtype=float, copy=True)
        yield from _stage_and_comm(s, t)
        ax = _dual_spmv()
        traversals += 1
        r1 = b1 - ax[:, 0]
        r2 = b2 - ax[:, 1]

    if precond is None:
        # z aliases r: after every in-place residual update z IS the new
        # residual, which reduces PCG to the historical plain recurrence
        z1, z2 = r1, r2
    else:
        z = precond.apply(np.column_stack((r1, r2)))
        z1, z2 = z[:, 0], z[:, 1]
    p1 = z1.copy()
    p2 = z2.copy()

    def _reduce(key, values) -> np.ndarray:
        lmp.world.reduce_contribute(key, np.asarray(values))
        return key

    key = ("qeq_rr0", lmp.update.ntimestep)
    _reduce(key, [r1 @ r1, r2 @ r2, b1 @ b1, b2 @ b2, r1 @ z1, r2 @ z2])
    yield
    rr1, rr2, bb1, bb2, rz1, rz2 = np.atleast_1d(lmp.world.reduce_result(key))
    stop1 = max(bb1, 1e-300) * tol * tol
    stop2 = max(bb2, 1e-300) * tol * tol

    it = 0
    while it < maxiter and (rr1 > stop1 or rr2 > stop2):
        yield from _stage_and_comm(p1, p2)
        # fused matrix traversal: one load of A feeds both products
        ap = _dual_spmv()
        traversals += 1
        ap1 = ap[:, 0]
        ap2 = ap[:, 1]

        key = ("qeq_pap", lmp.update.ntimestep, it)
        _reduce(key, [p1 @ ap1, p2 @ ap2])
        yield
        pap1, pap2 = np.atleast_1d(lmp.world.reduce_result(key))

        a1 = rz1 / pap1 if rr1 > stop1 else 0.0
        a2 = rz2 / pap2 if rr2 > stop2 else 0.0
        s += a1 * p1
        t += a2 * p2
        r1 -= a1 * ap1
        r2 -= a2 * ap2
        if precond is not None:
            z = precond.apply(np.column_stack((r1, r2)))
            z1, z2 = z[:, 0], z[:, 1]

        key = ("qeq_rr", lmp.update.ntimestep, it)
        _reduce(key, [r1 @ r1, r2 @ r2, r1 @ z1, r2 @ z2])
        yield
        new1, new2, newz1, newz2 = np.atleast_1d(lmp.world.reduce_result(key))
        beta1 = newz1 / rz1 if rr1 > stop1 else 0.0
        beta2 = newz2 / rz2 if rr2 > stop2 else 0.0
        p1 = z1 + beta1 * p1
        p2 = z2 + beta2 * p2
        rr1, rr2 = new1, new2
        rz1, rz2 = newz1, newz2
        it += 1

    if rr1 > stop1 or rr2 > stop2:
        raise LammpsError(
            f"QEq fused CG failed to converge in {maxiter} iterations "
            f"(residuals {rr1:.3e}, {rr2:.3e})"
        )
    out["s"] = s
    out["t"] = t
    out["iterations"] = it
    out["seeded"] = x0 is not None
    out["spmv_traversals"] = traversals
    out["spmv_bytes"] = matrix.traversal_bytes() * traversals
    if metrics.SINKS:
        pname = precond.name if precond is not None else PRECOND_NONE
        seeded = "yes" if x0 is not None else "no"
        metrics.inc("qeq_solves_total", precond=pname, seeded=seeded)
        metrics.inc("qeq_iterations_total", it, precond=pname, seeded=seeded)
        metrics.inc(
            "qeq_spmv_bytes_total", out["spmv_bytes"], mode=qeq_spmv_mode()
        )


def equilibrate_charges_gen(
    lmp,
    matrix: QEqMatrix,
    chi_local: np.ndarray,
    out: dict,
    *,
    tol: float = 1e-8,
    maxiter: int = 200,
    precond=None,
    x0: tuple[np.ndarray, np.ndarray] | None = None,
) -> Iterator[None]:
    """Full QEq: dual solve + neutrality projection.

    ``chi_local`` is the per-owned-atom electronegativity (species-mapped by
    the caller).  ``q_i = s_i - t_i * (sum s / sum t)`` (global sums —
    reduced).  Results land in ``out['q']``, ``out['s']``/``out['t']`` (for
    the history ring), ``out['iterations']``, and the solver's accounting
    keys (``seeded``/``spmv_traversals``/``spmv_bytes``).
    """
    n = matrix.nlocal
    if chi_local.shape != (n,):
        raise LammpsError(f"chi_local shape {chi_local.shape} != ({n},)")
    b1 = -chi_local
    b2 = -np.ones(n)
    sol: dict = {}
    yield from fused_cg_gen(
        lmp, matrix, b1, b2, tol=tol, maxiter=maxiter, out=sol,
        precond=precond, x0=x0,
    )
    key = ("qeq_neutral", lmp.update.ntimestep)
    lmp.world.reduce_contribute(key, np.array([sol["s"].sum(), sol["t"].sum()]))
    yield
    ssum, tsum = np.atleast_1d(lmp.world.reduce_result(key))
    if abs(tsum) < 1e-300:
        raise LammpsError("QEq neutrality projection degenerate (sum t = 0)")
    out["q"] = sol["s"] - sol["t"] * (ssum / tsum)
    for keep in ("s", "t", "iterations", "seeded", "spmv_traversals", "spmv_bytes"):
        out[keep] = sol[keep]
