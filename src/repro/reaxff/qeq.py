"""Charge equilibration: over-allocated CSR build + fused dual CG solve.

Paper sections 4.2.2-4.2.3 in full:

* The electrostatic interaction matrix uses a **modified CSR** format that
  is *over-allocated*: each row's slot count comes from a parallel scan
  over the full neighbor list (independent of the interaction cutoff), so
  the build never needs a second counting pass over the expensive kernel.
  Four data structures describe it — flat values, column indices, row
  offsets, and an explicit per-row non-zero count (required *because* rows
  are over-allocated).  Appendix B's integer-width split is applied: row
  offsets are int64 (they overflow 32 bits at exascale), column indices and
  row lengths stay int32.

* The two Krylov solves (``A s = -chi``, ``A t = -1``) are **fused**: one
  matrix traversal feeds both recurrences, reusing the dominant memory
  stream — the optimization AMD contributed to the Kokkos version.  The
  equilibrated charges are ``q = s - t * (sum s / sum t)``, which enforces
  charge neutrality.

The solver is written as a generator so distributed runs forward-communicate
the two direction vectors (staged through the ``rho``/``fp`` scratch fields)
and allreduce the dot products each iteration through the lockstep protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.errors import LammpsError, OverflowGuardError
from repro.kokkos.segment import ATOMIC, scatter_mode
from repro.reaxff.nonbonded import shielded_kernel, taper
from repro.reaxff.params import ReaxParams


@dataclass
class QEqMatrix:
    """Over-allocated CSR (paper's four-structure format) plus the diagonal."""

    nlocal: int
    #: row offsets into the over-allocated flat arrays, int64 (appendix B)
    offsets: np.ndarray
    #: flat column indices (into local+ghost vectors), int32
    cols: np.ndarray
    #: flat interaction values
    vals: np.ndarray
    #: actual non-zeros per row, int32 — required because rows over-allocate
    nnz: np.ndarray
    #: diagonal: 2 * eta_i
    diag: np.ndarray
    # derived compacted COO for vectorized spmv (simulation-side convenience;
    # the four structures above are the format of record)
    _rows_flat: np.ndarray | None = None
    _cols_flat: np.ndarray | None = None
    _vals_flat: np.ndarray | None = None
    # per-rebuild row-segment plan: starts of each non-empty row's run in the
    # compacted arrays and the owning row indices — the true-CSR reduction
    _seg_starts: np.ndarray | None = None
    _seg_rows: np.ndarray | None = None

    def _compact(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._rows_flat is None:
            nnz = self.nnz.astype(np.int64)
            total = int(nnz.sum())
            rows = np.repeat(np.arange(self.nlocal), nnz)
            # valid slots are the first nnz[i] entries of each row
            csum = np.zeros(self.nlocal, dtype=np.int64)
            if self.nlocal:
                np.cumsum(nnz[:-1], out=csum[1:])
            within = np.arange(total, dtype=np.int64) - np.repeat(csum, nnz)
            idx = np.repeat(self.offsets[:-1], nnz) + within
            self._rows_flat = rows
            self._cols_flat = self.cols[idx].astype(np.int64)
            self._vals_flat = self.vals[idx]
            # rows is sorted by construction: the row-run starts are exactly
            # the compacted offsets of the non-empty rows
            nonempty = np.flatnonzero(nnz)
            self._seg_starts = csum[nonempty]
            self._seg_rows = nonempty
        return self._rows_flat, self._cols_flat, self._vals_flat

    def spmv(self, vec_all: np.ndarray) -> np.ndarray:
        """``A @ vec``: local rows against local+ghost columns.

        Row-major storage makes this a true CSR product: one ``reduceat``
        over the per-rebuild row segments replaces the scalar ``np.add.at``
        scatter (the ``atomic`` mode kept for benchmark baselines).
        """
        rows, cols, vals = self._compact()
        out = self.diag * vec_all[: self.nlocal]
        prod = vals * vec_all[cols]
        if scatter_mode() == ATOMIC:
            np.add.at(out, rows, prod)
        elif len(prod):
            out[self._seg_rows] += np.add.reduceat(prod, self._seg_starts)
        return out

    @property
    def stored_slots(self) -> int:
        return len(self.vals)

    @property
    def total_nnz(self) -> int:
        return int(self.nnz.sum())


def build_qeq_matrix(
    x: np.ndarray,
    types: np.ndarray,
    nlist,
    params: ReaxParams,
    qqr2e: float,
) -> QEqMatrix:
    """Build the interaction matrix from the full neighbor list.

    Pipeline per the paper: (1) parallel scan over full-list neighbor
    counts -> over-allocated row offsets; (2) value kernel computes the
    shielded-tapered interactions, slots them row-contiguously, and records
    per-row non-zero counts and column offsets.
    """
    nlocal = nlist.nlocal
    numneigh = nlist.numneigh
    offsets = np.zeros(nlocal + 1, dtype=np.int64)
    np.cumsum(numneigh, out=offsets[1:])
    slots = int(offsets[-1])
    if slots > np.iinfo(np.int32).max:
        # the slot count itself may exceed int32 — that is precisely why the
        # offsets are int64; columns (bounded by nall) stay narrow.
        pass
    if nlist.neighbors.size and int(nlist.neighbors.max()) > np.iinfo(np.int32).max:
        raise OverflowGuardError("column index exceeds int32 (appendix B guard)")

    cols = np.full(slots, -1, dtype=np.int32)
    vals = np.zeros(slots)
    nnz = np.zeros(nlocal, dtype=np.int32)

    i, j = nlist.ij_pairs()
    dx = x[i] - x[j]
    rsq = np.einsum("ij,ij->i", dx, dx)
    keep = rsq < params.rcut_nonb**2
    i, j = i[keep], j[keep]
    r = np.sqrt(rsq[keep])
    g, _ = shielded_kernel(r, params.gamma_ij(types[i], types[j]))
    t, _ = taper(r, params.rcut_nonb)
    v = qqr2e * g * t

    # slot the kept entries contiguously at the front of each row
    nnz_counts = np.bincount(i, minlength=nlocal).astype(np.int32)
    row_start = np.zeros(nlocal, dtype=np.int64)
    np.cumsum(nnz_counts[:-1], out=row_start[1:])
    # i is sorted (ij_pairs yields row-major order); position within row:
    pos = np.arange(len(i), dtype=np.int64) - row_start[i]
    slot = offsets[i] + pos
    cols[slot] = j.astype(np.int32)
    vals[slot] = v
    nnz[:] = nnz_counts

    diag = 2.0 * params.eta[types[:nlocal]]
    return QEqMatrix(
        nlocal=nlocal, offsets=offsets, cols=cols, vals=vals, nnz=nnz, diag=diag
    )


def fused_cg_gen(
    lmp,
    matrix: QEqMatrix,
    b1: np.ndarray,
    b2: np.ndarray,
    *,
    tol: float = 1e-8,
    maxiter: int = 200,
    out: dict | None = None,
) -> Iterator[None]:
    """Fused dual conjugate gradient: solve ``A s = b1`` and ``A t = b2``.

    One generator drives both recurrences so each iteration traverses the
    matrix once (section 4.2.3's kernel fusion / work batching: the two
    right-hand-side streams hide behind the single matrix-element stream).

    Results land in ``out['s']``, ``out['t']``, ``out['iterations']``.
    Distributed: direction vectors are staged through the atom scratch
    fields ``rho``/``fp`` for ghost exchange; dot products allreduce through
    the lockstep protocol.
    """
    if out is None:
        raise LammpsError("fused_cg_gen requires an output dict")
    atom = lmp.atom
    n = matrix.nlocal
    nall = atom.nall
    s = np.zeros(n)
    t = np.zeros(n)
    r1 = b1.copy()
    r2 = b2.copy()
    p1 = r1.copy()
    p2 = r2.copy()

    def _reduce(key, values) -> np.ndarray:
        lmp.world.reduce_contribute(key, np.asarray(values))
        return key

    key = ("qeq_rr0", lmp.update.ntimestep)
    _reduce(key, [r1 @ r1, r2 @ r2, b1 @ b1, b2 @ b2])
    yield
    rr1, rr2, bb1, bb2 = np.atleast_1d(lmp.world.reduce_result(key))
    stop1 = max(bb1, 1e-300) * tol * tol
    stop2 = max(bb2, 1e-300) * tol * tol

    it = 0
    while it < maxiter and (rr1 > stop1 or rr2 > stop2):
        # ghost values of both direction vectors via one comm pass each
        atom.rho[:nall] = 0.0
        atom.fp[:nall] = 0.0
        atom.rho[:n] = p1
        atom.fp[:n] = p2
        yield from lmp.comm_brick.forward_comm_field(atom, "rho")
        yield from lmp.comm_brick.forward_comm_field(atom, "fp")

        # fused matrix traversal: one load of A feeds both products
        ap1 = matrix.spmv(atom.rho[:nall])
        ap2 = matrix.spmv(atom.fp[:nall])

        key = ("qeq_pap", lmp.update.ntimestep, it)
        _reduce(key, [p1 @ ap1, p2 @ ap2])
        yield
        pap1, pap2 = np.atleast_1d(lmp.world.reduce_result(key))

        a1 = rr1 / pap1 if rr1 > stop1 else 0.0
        a2 = rr2 / pap2 if rr2 > stop2 else 0.0
        s += a1 * p1
        t += a2 * p2
        r1 -= a1 * ap1
        r2 -= a2 * ap2

        key = ("qeq_rr", lmp.update.ntimestep, it)
        _reduce(key, [r1 @ r1, r2 @ r2])
        yield
        new1, new2 = np.atleast_1d(lmp.world.reduce_result(key))
        beta1 = new1 / rr1 if rr1 > stop1 else 0.0
        beta2 = new2 / rr2 if rr2 > stop2 else 0.0
        p1 = r1 + beta1 * p1
        p2 = r2 + beta2 * p2
        rr1, rr2 = new1, new2
        it += 1

    if rr1 > stop1 or rr2 > stop2:
        raise LammpsError(
            f"QEq fused CG failed to converge in {maxiter} iterations "
            f"(residuals {rr1:.3e}, {rr2:.3e})"
        )
    out["s"] = s
    out["t"] = t
    out["iterations"] = it


def equilibrate_charges_gen(
    lmp,
    matrix: QEqMatrix,
    chi_local: np.ndarray,
    out: dict,
    *,
    tol: float = 1e-8,
    maxiter: int = 200,
) -> Iterator[None]:
    """Full QEq: dual solve + neutrality projection.

    ``chi_local`` is the per-owned-atom electronegativity (species-mapped by
    the caller).  ``q_i = s_i - t_i * (sum s / sum t)`` (global sums —
    reduced).  Results land in ``out['q']`` and ``out['iterations']``.
    """
    n = matrix.nlocal
    if chi_local.shape != (n,):
        raise LammpsError(f"chi_local shape {chi_local.shape} != ({n},)")
    b1 = -chi_local
    b2 = -np.ones(n)
    sol: dict = {}
    yield from fused_cg_gen(lmp, matrix, b1, b2, tol=tol, maxiter=maxiter, out=sol)
    key = ("qeq_neutral", lmp.update.ntimestep)
    lmp.world.reduce_contribute(key, np.array([sol["s"].sum(), sol["t"].sum()]))
    yield
    ssum, tsum = np.atleast_1d(lmp.world.reduce_result(key))
    if abs(tsum) < 1e-300:
        raise LammpsError("QEq neutrality projection degenerate (sum t = 0)")
    out["q"] = sol["s"] - sol["t"] * (ssum / tsum)
    out["iterations"] = sol["iterations"]
