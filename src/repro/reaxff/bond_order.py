"""Bond-order evaluation and the bond neighbor list (paper section 4.2).

The bond order between atoms decays smoothly with distance,

    BO(r) = exp(pbo1 * (r / r0_ij)^pbo2),        pbo1 < 0,

and a pair is a "bond" only when BO exceeds ``bo_cut``.  The *bond
neighbor list* is the compressed per-atom table of such bonds — the first
of the paper's pre-processing kernels: a divergent but cheap filtering pass
whose output lets the expensive 3-/4-body kernels run fully convergent.

Both implementations of the build are provided:

* :func:`build_bond_list_reference` — the "divergent" one-pass filter
  (what a naive per-thread loop does);
* :func:`build_bond_list` — the production count -> scan -> fill
  pre-processing pipeline, matching section 4.2.1's two-kernel structure.

They produce identical tables (property-tested); they differ in the cost
profile they report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.neighbor import NeighborList
from repro.reaxff.params import ReaxParams


@dataclass
class BondList:
    """Compressed per-atom bond table (CSR over local atoms).

    Entries are *directed*: the bond (i, j) appears in row i and — when j is
    also local — in row j.  All per-bond geometry needed downstream is
    cached so the 3-/4-body kernels never recompute distances.
    """

    nlocal: int
    #: CSR row offsets (int64 — appendix B).
    first: np.ndarray
    #: flat center-atom index per entry
    i: np.ndarray
    #: flat bonded-neighbor index (int32, may be a ghost)
    j: np.ndarray
    #: bond order per entry
    bo: np.ndarray
    #: dBO/dr per entry
    dbo: np.ndarray
    #: displacement x_i - x_j and distance
    dx: np.ndarray
    r: np.ndarray
    #: build statistics for kernel cost profiles
    candidates: int = 0

    @property
    def nbonds(self) -> int:
        return len(self.j)

    def numbonds(self) -> np.ndarray:
        return np.diff(self.first)

    def row(self, i: int) -> slice:
        return slice(int(self.first[i]), int(self.first[i + 1]))


def bond_order(
    r: np.ndarray, ti: np.ndarray, tj: np.ndarray, params: ReaxParams
) -> tuple[np.ndarray, np.ndarray]:
    """``(BO, dBO/dr)`` for distances ``r`` between types ``ti``/``tj``."""
    r0 = params.r0_ij(ti, tj)
    ratio = r / r0
    inner = params.pbo1 * ratio**params.pbo2
    bo = np.exp(inner)
    dbo = bo * params.pbo1 * params.pbo2 * ratio ** (params.pbo2 - 1.0) / r0
    return bo, dbo


def _filter_candidates(
    x: np.ndarray,
    types: np.ndarray,
    nlist: NeighborList,
    params: ReaxParams,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Shared geometry pass: pairs within the bond search cutoff."""
    i, j = nlist.ij_pairs()
    dx = x[i] - x[j]
    rsq = np.einsum("ij,ij->i", dx, dx)
    mask = rsq < params.rcut_bond**2
    return i[mask], j[mask], dx[mask], np.sqrt(rsq[mask]), len(i)


def build_bond_list_reference(
    x: np.ndarray,
    types: np.ndarray,
    nlist: NeighborList,
    params: ReaxParams,
) -> BondList:
    """Divergent one-pass build: evaluate BO for every candidate, filter."""
    i, j, dx, r, candidates = _filter_candidates(x, types, nlist, params)
    bo, dbo = bond_order(r, types[i], types[j], params)
    keep = bo > params.bo_cut
    i, j, bo, dbo, dx, r = i[keep], j[keep], bo[keep], dbo[keep], dx[keep], r[keep]
    order = np.argsort(i, kind="stable")
    i, j, bo, dbo, dx, r = i[order], j[order], bo[order], dbo[order], dx[order], r[order]
    first = np.zeros(nlist.nlocal + 1, dtype=np.int64)
    np.cumsum(np.bincount(i, minlength=nlist.nlocal), out=first[1:])
    return BondList(
        nlocal=nlist.nlocal,
        first=first,
        i=i,
        j=j.astype(np.int32),
        bo=bo,
        dbo=dbo,
        dx=dx,
        r=r,
        candidates=candidates,
    )


def build_bond_list(
    x: np.ndarray,
    types: np.ndarray,
    nlist: NeighborList,
    params: ReaxParams,
) -> BondList:
    """Pre-processed build: count kernel -> exclusive scan -> fill kernel.

    This is the section 4.2.1 pipeline shape: the first kernel counts
    accepted bonds per atom, the offsets come from a scan, the (resized)
    table is filled by a second kernel.  All vectorized, and bit-identical
    to the reference build.
    """
    i, j, dx, r, candidates = _filter_candidates(x, types, nlist, params)
    bo, dbo = bond_order(r, types[i], types[j], params)
    keep = bo > params.bo_cut

    # Kernel 1: per-atom accepted-bond counts.
    counts = np.bincount(i[keep], minlength=nlist.nlocal)
    # Scan: row offsets (the "resize if necessary" step sizes the table).
    first = np.zeros(nlist.nlocal + 1, dtype=np.int64)
    np.cumsum(counts, out=first[1:])
    total = int(first[-1])

    # Kernel 2: fill.  Within a row, entries keep candidate order (a stable
    # per-row slot assignment — the vectorized equivalent of the thread-safe
    # queue guaranteeing per-atom contiguity).
    ik = i[keep]
    order = np.argsort(ik, kind="stable")
    out_i = ik[order]
    sel = np.flatnonzero(keep)[order]
    table = BondList(
        nlocal=nlist.nlocal,
        first=first,
        i=out_i,
        j=j[sel].astype(np.int32),
        bo=bo[sel],
        dbo=dbo[sel],
        dx=dx[sel],
        r=r[sel],
        candidates=candidates,
    )
    assert table.nbonds == total
    return table
