"""Two-body bond energy from the bond-order table.

``E_bond = -De_ij * BO_ij`` summed over bonds.  A bond is evaluated exactly
once globally via the tag tie-break (the owner of the lower-tag end
computes), with the force applied to both ends; ghost-end forces flow back
through the reverse communication.
"""

from __future__ import annotations

import numpy as np

from repro.kokkos.segment import scatter_add, scatter_sub
from repro.reaxff.bond_order import BondList
from repro.reaxff.params import ReaxParams


def accumulate_virial(virial: np.ndarray, xs: np.ndarray, fs: np.ndarray) -> None:
    """Add sum over rows of ``x (outer) f`` to the 6-component virial.

    Valid per interaction because each interaction's forces sum to zero,
    making the sum translation invariant.
    """
    virial[0] += float(np.dot(xs[:, 0], fs[:, 0]))
    virial[1] += float(np.dot(xs[:, 1], fs[:, 1]))
    virial[2] += float(np.dot(xs[:, 2], fs[:, 2]))
    virial[3] += float(np.dot(xs[:, 0], fs[:, 1]))
    virial[4] += float(np.dot(xs[:, 0], fs[:, 2]))
    virial[5] += float(np.dot(xs[:, 1], fs[:, 2]))


def compute_bonds(
    x: np.ndarray,
    types: np.ndarray,
    tags: np.ndarray,
    nlocal: int,
    bonds: BondList,
    params: ReaxParams,
    f: np.ndarray,
    virial: np.ndarray,
) -> float:
    """Accumulate bond forces into ``f``; returns the bond energy."""
    if bonds.nbonds == 0:
        return 0.0
    i, j = bonds.i, bonds.j.astype(np.int64)
    own = (i < nlocal) & (tags[i] < tags[j])
    if not own.any():
        return 0.0
    i, j = i[own], j[own]
    bo, dbo = bonds.bo[own], bonds.dbo[own]
    dx, r = bonds.dx[own], bonds.r[own]
    ti, tj = types[i], types[j]
    de = params.de_ij(ti, tj)
    energy = float(-(de * bo).sum())
    # dE/dr = -De dBO/dr; F_i = -dE/dr * dx/r
    fpair = de * dbo / r
    fvec = fpair[:, None] * dx
    scatter_add(f, i, fvec, assume_sorted=True)
    scatter_sub(f, j, fvec)
    accumulate_virial(virial, x[i], fvec)
    accumulate_virial(virial, x[j], -fvec)
    return energy
