"""Three-body valence angles with compressed-triplet pre-processing.

Energy per triplet (j - c - k, centered on c):

    E = k_ang(c) * BO_cj * BO_ck * (cos theta - cos theta_0)^2

Section 4.2.1's pattern, scaled down one body: a cheap divergent
pre-processing pass enumerates the (j, k) bonded pairs around each local
center into a compressed table; the force kernel then runs fully convergent
over triplets, with contiguous per-center entries promoting cache reuse.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kokkos.segment import scatter_add
from repro.reaxff.bond_order import BondList
from repro.reaxff.bonds import accumulate_virial
from repro.reaxff.params import ReaxParams


@dataclass
class TripletTable:
    """Compressed triplets: indices into the bond-list entry array."""

    #: bond-entry index of the (c, j) leg and the (c, k) leg
    leg1: np.ndarray
    leg2: np.ndarray
    #: center atom per triplet
    center: np.ndarray
    #: number of candidate triplets examined (for cost profiles)
    candidates: int

    @property
    def ntriplets(self) -> int:
        return len(self.center)


def build_triplets(bonds: BondList, nlocal: int) -> TripletTable:
    """Count -> scan -> fill enumeration of bonded (j < k) pairs per center.

    Vectorized ragged expansion: for a center with ``b`` bonds there are
    ``b * (b - 1) / 2`` triplets, laid out contiguously per center.
    """
    nb = np.diff(bonds.first[: nlocal + 1]).astype(np.int64)
    per_center = nb * (nb - 1) // 2
    total = int(per_center.sum())
    candidates = total
    if total == 0:
        z = np.zeros(0, dtype=np.int64)
        return TripletTable(z, z, z, candidates)

    centers = np.repeat(np.arange(nlocal), per_center)
    # rank of each triplet within its center: 0 .. per_center-1
    csum = np.zeros(nlocal, dtype=np.int64)
    np.cumsum(per_center[:-1], out=csum[1:])
    rank = np.arange(total, dtype=np.int64) - np.repeat(csum, per_center)
    # unrank (m, n) with m < n from the triangular index:
    # rank = n*(n-1)/2 + m  (n is the larger leg index)
    n_leg = np.floor((1.0 + np.sqrt(1.0 + 8.0 * rank)) / 2.0).astype(np.int64)
    # guard rounding at triangular boundaries
    over = n_leg * (n_leg - 1) // 2 > rank
    n_leg[over] -= 1
    m_leg = rank - n_leg * (n_leg - 1) // 2
    base = bonds.first[centers]
    return TripletTable(
        leg1=base + m_leg,
        leg2=base + n_leg,
        center=centers,
        candidates=candidates,
    )


def compute_angles(
    x: np.ndarray,
    types: np.ndarray,
    nlocal: int,
    bonds: BondList,
    triplets: TripletTable,
    params: ReaxParams,
    f: np.ndarray,
    virial: np.ndarray,
) -> float:
    """Convergent triplet kernel: energy + forces on (c, j, k)."""
    if triplets.ntriplets == 0:
        return 0.0
    c = triplets.center
    e1, e2 = triplets.leg1, triplets.leg2
    j = bonds.j[e1].astype(np.int64)
    k = bonds.j[e2].astype(np.int64)
    u = bonds.dx[e1]  # x_c - x_j
    v = bonds.dx[e2]  # x_c - x_k
    ru = bonds.r[e1]
    rv = bonds.r[e2]
    bo1, dbo1 = bonds.bo[e1], bonds.dbo[e1]
    bo2, dbo2 = bonds.bo[e2], bonds.dbo[e2]

    tc = types[c]
    kang = params.k_ang[tc]
    cos0 = params.cos0[tc]

    inv = 1.0 / (ru * rv)
    cosq = np.einsum("ij,ij->i", u, v) * inv
    diff = cosq - cos0
    energy = float((kang * bo1 * bo2 * diff * diff).sum())

    # dE/dcos and bond-order chain terms
    decos = 2.0 * kang * bo1 * bo2 * diff
    debo1 = kang * bo2 * diff * diff  # dE/dBO_cj
    debo2 = kang * bo1 * diff * diff

    # dcos/du = v/(ru rv) - cos * u / ru^2 ; similarly for v
    dcdu = v * inv[:, None] - (cosq / (ru * ru))[:, None] * u
    dcdv = u * inv[:, None] - (cosq / (rv * rv))[:, None] * v

    # bond-length chains: dE/dru = dE/dBO * dBO/dr, direction u/ru
    dEdu = decos[:, None] * dcdu + (debo1 * dbo1 / ru)[:, None] * u
    dEdv = decos[:, None] * dcdv + (debo2 * dbo2 / rv)[:, None] * v

    fc = -(dEdu + dEdv)
    fj = dEdu
    fk = dEdv
    scatter_add(f, c, fc, assume_sorted=True)  # centers are laid out contiguously
    scatter_add(f, j, fj)
    scatter_add(f, k, fk)
    accumulate_virial(virial, x[c], fc)
    accumulate_virial(virial, x[j], fj)
    accumulate_virial(virial, x[k], fk)
    return energy
