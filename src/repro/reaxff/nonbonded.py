"""Tapered van der Waals + shielded Coulomb (ReaxFF's nonbonded terms).

All neighbor pairs within the 10 A cutoff interact through:

* a Morse-form vdW term ``D [exp(a(1 - r/rv)) - 2 exp(a/2 (1 - r/rv))]``
* a shielded Coulomb term ``C q_i q_j (r^3 + 1/gamma_ij^3)^(-1/3)``

both multiplied by ReaxFF's 7th-order taper ``T(r)`` that takes the
interaction smoothly to zero at the outer cutoff.  The same shielded-tapered
kernel builds the QEq matrix, so the equilibrated charges minimize exactly
the Coulomb energy computed here (which is what makes forces at fixed
charges exact derivatives — the envelope theorem the tests rely on).
"""

from __future__ import annotations

import numpy as np

from repro.kokkos.segment import scatter_add
from repro.reaxff.params import ReaxParams


def taper(r: np.ndarray, rc: float) -> tuple[np.ndarray, np.ndarray]:
    """ReaxFF 7th-order taper ``(T, dT/dr)``: T(0)=1, T(rc)=0, smooth ends."""
    s = r / rc
    s3 = s * s * s
    t = 1.0 + s3 * s * (-35.0 + s * (84.0 + s * (-70.0 + 20.0 * s)))
    dt = (-140.0 * s3 * (1.0 - s) ** 3) / rc
    return t, dt


def shielded_kernel(
    r: np.ndarray, gamma_ij: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(g, dg/dr)`` with ``g = (r^3 + 1/gamma^3)^(-1/3)``."""
    shield = 1.0 / gamma_ij**3
    base = r**3 + shield
    g = base ** (-1.0 / 3.0)
    dg = -(base ** (-4.0 / 3.0)) * r * r
    return g, dg


def vdw_morse(
    r: np.ndarray, d: np.ndarray, alpha: float, rv: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(E, dE/dr)`` for the Morse vdW form (no taper)."""
    ex = np.exp(alpha * (1.0 - r / rv))
    exh = np.exp(0.5 * alpha * (1.0 - r / rv))
    e = d * (ex - 2.0 * exh)
    de = d * (-alpha / rv) * (ex - exh)
    return e, de


def compute_nonbonded(
    x: np.ndarray,
    types: np.ndarray,
    q: np.ndarray,
    nlocal: int,
    nlist,
    params: ReaxParams,
    qqr2e: float,
    f: np.ndarray,
    virial: np.ndarray,
) -> tuple[float, float, int]:
    """vdW + Coulomb from a full neighbor list.

    Returns ``(evdw, ecoul_pairs, pairs_in_cutoff)``; forces are added to
    owned atoms only (full-list convention: each pair visited from both
    ends, energies at half weight).
    """
    i, j = nlist.ij_pairs()
    dx = x[i] - x[j]
    rsq = np.einsum("ij,ij->i", dx, dx)
    mask = rsq < params.rcut_nonb**2
    i, j, dx = i[mask], j[mask], dx[mask]
    r = np.sqrt(rsq[mask])
    ti, tj = types[i], types[j]

    t, dt = taper(r, params.rcut_nonb)
    ev, dev = vdw_morse(r, params.vdw_d_ij(ti, tj), params.vdw_alpha, params.vdw_r_ij(ti, tj))
    g, dg = shielded_kernel(r, params.gamma_ij(ti, tj))
    qq = qqr2e * q[i] * q[j]

    e_vdw_pair = ev * t
    e_cou_pair = qq * g * t
    de_total = (dev * t + ev * dt) + qq * (dg * t + g * dt)

    # full-list convention: half the pair energy per visit; force on i only.
    evdw = 0.5 * float(e_vdw_pair.sum())
    ecoul = 0.5 * float(e_cou_pair.sum())
    fpair = -de_total / r
    fvec = fpair[:, None] * dx
    scatter_add(f, i, fvec, assume_sorted=True)
    # per-visit half virial (sums to the full pair virial over both visits)
    virial[0] += 0.5 * float(np.dot(dx[:, 0], fvec[:, 0]))
    virial[1] += 0.5 * float(np.dot(dx[:, 1], fvec[:, 1]))
    virial[2] += 0.5 * float(np.dot(dx[:, 2], fvec[:, 2]))
    virial[3] += 0.5 * float(np.dot(dx[:, 0], fvec[:, 1]))
    virial[4] += 0.5 * float(np.dot(dx[:, 0], fvec[:, 2]))
    virial[5] += 0.5 * float(np.dot(dx[:, 1], fvec[:, 2]))
    return evdw, ecoul, len(r)
