"""ReaxFF-lite: a reactive force field with the paper's kernel structure.

Paper section 4.2 optimizes four parts of LAMMPS's ReaxFF Kokkos port:

1. the **bond-order neighbor list** build (divergent -> pre-processed),
2. the **three-/four-body forces** with compressed triplet/quad interaction
   tables built by count-resize-fill pre-processing kernels,
3. the **charge equilibration** sparse-matrix build using team hierarchical
   parallelism over an over-allocated CSR format, and
4. the **fused dual Krylov solve** that loads the matrix once for both
   right-hand sides.

Every one of those structures exists here as executable code, wrapped in a
genuinely differentiable reactive potential (bond order with smooth decay,
BO-weighted valence angles and torsions, tapered van der Waals + shielded
Coulomb, EEM charge equilibration).  It is "ReaxFF-lite": the paper's
150-parameter chemistry is abridged (see DESIGN.md's substitution table),
but forces are exact derivatives of the implemented energy — verified by
finite differences in the test suite — and the computational skeleton
matches the real code path for path.

Registers ``pair_style reaxff`` and ``pair_style reaxff/kk``.
"""

from repro.reaxff.params import ReaxParams, default_chno
from repro.reaxff import pair_reaxff as _pr  # noqa: F401  (registers styles)

__all__ = ["ReaxParams", "default_chno"]
