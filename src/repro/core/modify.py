"""Fix/compute lifetime and scheduling (LAMMPS's ``Modify``)."""

from __future__ import annotations

from repro.core.computes import Compute
from repro.core.errors import InputError
from repro.core.fixes import Fix


class Modify:
    """Ordered fix list and compute map, with hook fan-out."""

    def __init__(self) -> None:
        self.fixes: list[Fix] = []
        self.computes: dict[str, Compute] = {}

    # ---------------------------------------------------------------- fixes
    def add_fix(self, fix: Fix) -> None:
        if any(f.id == fix.id for f in self.fixes):
            raise InputError(f"duplicate fix id {fix.id!r} (use unfix first)")
        self.fixes.append(fix)

    def remove_fix(self, fix_id: str) -> None:
        before = len(self.fixes)
        self.fixes = [f for f in self.fixes if f.id != fix_id]
        if len(self.fixes) == before:
            raise InputError(f"unfix of unknown fix id {fix_id!r}")

    def get_fix(self, fix_id: str) -> Fix:
        for f in self.fixes:
            if f.id == fix_id:
                return f
        raise InputError(f"unknown fix id {fix_id!r}")

    # ------------------------------------------------------------- computes
    def add_compute(self, compute: Compute) -> None:
        if compute.id in self.computes:
            raise InputError(f"duplicate compute id {compute.id!r}")
        self.computes[compute.id] = compute

    def get_compute(self, compute_id: str) -> Compute:
        if compute_id not in self.computes:
            raise InputError(f"unknown compute id {compute_id!r}")
        return self.computes[compute_id]

    # ----------------------------------------------------------------- hooks
    def init(self) -> None:
        for f in self.fixes:
            f.init()

    def initial_integrate(self) -> None:
        for f in self.fixes:
            f.initial_integrate()

    def post_force(self) -> None:
        for f in self.fixes:
            f.post_force()

    def final_integrate(self) -> None:
        for f in self.fixes:
            f.final_integrate()

    def end_of_step(self) -> None:
        for f in self.fixes:
            f.end_of_step()
