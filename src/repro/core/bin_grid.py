"""Shared bin grid for neighbor-list construction (paper section 4.1).

One :class:`BinGrid` is assembled per neighbor rebuild, at the largest
requested cutoff (the ghost cutoff), and shared by every list built that
step — the pair list, the ReaxFF bond-search list, the species-analysis
list.  Multi-cutoff consumers filter one candidate set instead of
re-binning, which is how LAMMPS's ``NBin``/``NStencil`` split works.

The assembly is a counting sort, not a global comparison sort: atoms are
keyed by ``2 * bin + is_ghost`` and ordered with a stable LSD radix pass
(NumPy's stable integer ``argsort``), so every bin's segment stores its
owned atoms first and its ghosts after.  That locals-first layout is what
lets half-stencil builds scan the *ghost tail* of a cell without touching
its owned atoms, and it makes the bin-major permutation double as the
``atom_modify sort`` spatial ordering.

Bins are anisotropic: each dimension gets ``floor(span / bin_size)`` bins
of width ``>= bin_size``; :meth:`reach` picks the per-dimension ring count
covering each requested cutoff, so one grid — typically at *half* the
ghost cutoff, LAMMPS's bin size, which trades a wider stencil for ~40%
less candidate volume — serves every cutoff with a proportionate stencil.
"""

from __future__ import annotations

import numpy as np


def _geometry(
    x: np.ndarray, bin_size: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(origin, nbins, size)`` of the grid covering ``x``."""
    origin = x.min(axis=0) - 1e-9
    top = x.max(axis=0) + 1e-9
    span = np.maximum(top - origin, bin_size)
    nbins = np.maximum((span / bin_size).astype(np.int64), 1)
    return origin, nbins, span / nbins


def _cells_of(
    x: np.ndarray, origin: np.ndarray, nbins: np.ndarray, size: np.ndarray
) -> np.ndarray:
    cell3 = ((x - origin) / size).astype(np.int64)
    np.clip(cell3, 0, nbins - 1, out=cell3)
    return cell3


def spatial_sort_order(x: np.ndarray, bin_size: float) -> np.ndarray:
    """Bin-major stable permutation of ``x`` (``atom_modify sort``).

    Atoms in the same cell keep their relative order; cells run row-major,
    so downstream gathers over the neighbor list touch nearly contiguous
    memory (section 4.1's atom-sorting cache-locality argument).
    """
    x = np.asarray(x, dtype=float)
    if x.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    origin, nbins, size = _geometry(x, bin_size)
    cell3 = _cells_of(x, origin, nbins, size)
    binid = cell3[:, 0] + nbins[0] * (cell3[:, 1] + nbins[1] * cell3[:, 2])
    return np.argsort(binid, kind="stable")


class BinGrid:
    """Counting-sort bin assembly over one rank's local + ghost atoms."""

    #: Process-wide construction counter.  The acceptance criterion "one
    #: bin-grid build per neighbor rebuild" is asserted against deltas of
    #: this, the profiling analogue of a Kokkos Tools region count.
    builds_total: int = 0

    def __init__(self, x: np.ndarray, nlocal: int, bin_size: float) -> None:
        BinGrid.builds_total += 1
        x = np.asarray(x, dtype=float)
        nall = x.shape[0]
        self.x = x
        self.nall = nall
        self.nlocal = nlocal
        self.bin_size = float(bin_size)
        if nall == 0:
            self.origin = np.zeros(3)
            self.nbins = np.ones(3, dtype=np.int64)
            self.size = np.full(3, self.bin_size)
            self.strides = np.array([1, 1, 1], dtype=np.int64)
            self.cell3 = np.zeros((0, 3), dtype=np.int64)
            self.binid = np.zeros(0, dtype=np.int64)
            self.order = np.zeros(0, dtype=np.int64)
            self.islot = np.zeros(0, dtype=np.int64)
            self.starts2 = np.zeros(3, dtype=np.int64)
            return
        self.origin, self.nbins, self.size = _geometry(x, self.bin_size)
        self.strides = np.array(
            [1, self.nbins[0], self.nbins[0] * self.nbins[1]], dtype=np.int64
        )
        self.cell3 = _cells_of(x, self.origin, self.nbins, self.size)
        self.binid = self.cell3 @ self.strides
        nbins_total = int(self.nbins.prod())
        # Composite key: bin-major, owned atoms before ghosts within a bin.
        # Stable integer argsort is an LSD radix — chained counting sorts,
        # no comparison sort over the whole atom set.
        key = self.binid * 2
        if nlocal < nall:
            key[nlocal:] += 1
        self.order = np.argsort(key, kind="stable")
        # Segment bounds in `order`: bin b's owned atoms occupy
        # [starts2[2b], starts2[2b+1]), its ghosts [starts2[2b+1], starts2[2b+2]).
        counts = np.bincount(key, minlength=2 * nbins_total)
        self.starts2 = np.zeros(2 * nbins_total + 1, dtype=np.int64)
        np.cumsum(counts, out=self.starts2[1:])
        # Inverse permutation: each atom's slot in `order` (self-cell scans
        # enumerate "atoms stored after me in my bin").
        self.islot = np.empty(nall, dtype=np.int64)
        self.islot[self.order] = np.arange(nall, dtype=np.int64)

    # ------------------------------------------------------------ coordinates
    def columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-component coordinate columns in atom order, memoized.

        1-D gathers through these are markedly cheaper than ``(n, 3)`` row
        gathers; every list built from this grid shares one copy.
        """
        cached = getattr(self, "_columns", None)
        if cached is None:
            cached = self._columns = (
                np.ascontiguousarray(self.x[:, 0]),
                np.ascontiguousarray(self.x[:, 1]),
                np.ascontiguousarray(self.x[:, 2]),
            )
        return cached

    def slot_columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Coordinate columns in *slot* (bin-major) order, memoized.

        Candidate j-indices come out of the scans as slots, which are
        contiguous runs per stencil cell — gathering coordinates in slot
        order touches nearly sequential memory instead of hopping through
        the unsorted atom array.
        """
        cached = getattr(self, "_slot_columns", None)
        if cached is None:
            x0, x1, x2 = self.columns()
            cached = self._slot_columns = (
                x0[self.order],
                x1[self.order],
                x2[self.order],
            )
        return cached

    # ------------------------------------------------------------- stencils
    def reach(self, cutoff: float) -> np.ndarray:
        """Stencil rings per dimension covering ``cutoff``."""
        return np.maximum(
            np.ceil(cutoff / self.size - 1e-12).astype(np.int64), 1
        )

    def stencil_offsets(self, cutoff: float) -> np.ndarray:
        """Full stencil: every cell offset within reach, self cell included."""
        kx, ky, kz = self.reach(cutoff)
        return np.array(
            [
                (dx, dy, dz)
                for dz in range(-kz, kz + 1)
                for dy in range(-ky, ky + 1)
                for dx in range(-kx, kx + 1)
            ],
            dtype=np.int64,
        )

    def half_offsets(self, cutoff: float) -> tuple[np.ndarray, np.ndarray]:
        """``(upper, lower)`` split of the stencil, self cell excluded.

        "Upper" cells are lexicographically positive in ``(dz, dy, dx)``;
        scanning only those (plus the in-cell tail) generates each
        same-rank pair exactly once — the cell whose offset is negative
        from one side is positive from the other.  The "lower" cells are
        needed only for *ghost* neighbors, whose pairs are kept by the
        grid-independent coordinate tie-break rather than cell order.
        """
        off = self.stencil_offsets(cutoff)
        dx, dy, dz = off[:, 0], off[:, 1], off[:, 2]
        upper = (dz > 0) | ((dz == 0) & ((dy > 0) | ((dy == 0) & (dx > 0))))
        self_cell = (dx == 0) & (dy == 0) & (dz == 0)
        return off[upper], off[~upper & ~self_cell]

    # ---------------------------------------------------------------- scans
    def scan(self, rows: np.ndarray, offsets: np.ndarray, members: str = "all"):
        """Candidate batches ``(i, jslot)``: each row against each stencil cell.

        ``members`` picks the per-cell segment: ``"all"`` atoms or only the
        ``"ghost"`` tail (the counting-sort key stores owned atoms first).
        The j side is emitted in *slot* space (positions in :attr:`order`,
        contiguous per cell — pair with :meth:`slot_columns`); map survivors
        back with ``order[jslot]``.  Entries are ordered offset-major, rows
        ascending within each offset: after the builder's stable per-chunk
        sort by row, a row's neighbors appear in stencil-offset order.
        """
        if len(rows) == 0 or len(offsets) == 0:
            return
        # all (offset, row) cell visits in one vectorized pass: the
        # per-offset Python overhead is measurable at small atom counts
        ci = self.cell3[rows]  # (m, 3)
        nb3 = ci[None, :, :] + offsets[:, None, :]  # (k, m, 3)
        ok = np.all((nb3 >= 0) & (nb3 < self.nbins), axis=2)
        ko, mo = np.nonzero(ok)
        if not len(mo):
            return
        iv = rows[mo]
        seg = 2 * (nb3[ko, mo] @ self.strides)
        lo = self.starts2[seg] if members == "all" else self.starts2[seg + 1]
        batch = self._expand(iv, lo, self.starts2[seg + 2])
        if batch is not None:
            yield batch

    def self_tail(self, rows: np.ndarray):
        """``(i, jslot)`` over atoms stored *after* each row in its own cell.

        The intra-cell half of the half stencil: slot order plays the role
        of ``j > i``, so every same-cell pair is generated exactly once and
        the cell's ghost tail is swept in the same pass.
        """
        seg = 2 * self.binid[rows]
        return self._expand(rows, self.islot[rows] + 1, self.starts2[seg + 2])

    def _expand(self, iv: np.ndarray, lo: np.ndarray, hi: np.ndarray):
        """Flatten (row, segment) pairs into ``(i, jslot)`` candidate arrays.

        The j side stays in slot space: the distance filter runs against
        :meth:`slot_columns` and only the (much smaller) surviving set pays
        the ``order`` gather back to atom indices.
        """
        cnt = hi - lo
        nz = cnt > 0
        if not nz.any():
            return None
        iv, lo, cnt = iv[nz], lo[nz], cnt[nz]
        total = int(cnt.sum())
        csum = np.zeros(len(cnt), dtype=np.int64)
        np.cumsum(cnt[:-1], out=csum[1:])
        within = np.arange(total, dtype=np.int64) - np.repeat(csum, cnt)
        jslot = np.repeat(lo, cnt) + within
        return np.repeat(iv, cnt), jslot
