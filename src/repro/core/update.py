"""Timestep bookkeeping (LAMMPS's ``Update``)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.units import UnitSystem, get_units


@dataclass
class Update:
    """Current step, timestep size, and the active unit system."""

    units: UnitSystem
    ntimestep: int = 0
    dt: float = 0.0

    @classmethod
    def create(cls, unit_name: str = "lj") -> "Update":
        units = get_units(unit_name)
        return cls(units=units, dt=units.dt)

    def set_units(self, unit_name: str) -> None:
        self.units = get_units(unit_name)
        self.dt = self.units.dt
