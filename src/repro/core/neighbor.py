"""Binned neighbor lists: half/full styles, newton on/off (paper section 4.1).

LAMMPS builds Verlet lists by binning atoms into cells no smaller than the
interaction cutoff and scanning the 27-cell stencil.  Ghost atoms are
explicit (appended by the border communication), so no minimum-image math
appears here — exactly like LAMMPS.

Two list styles:

* **full** — every neighbor of every owned atom appears; the force of ``i``
  on ``k`` is computed separately from ``k`` on ``i``.  No write conflicts,
  duplicated work; the GPU-friendly default for cheap pair styles.
* **half** — each pair appears exactly once, exploiting Newton's third law.
  Local pairs keep ``i < j``; pairs with a ghost are kept by a coordinate
  tie-break so exactly one of the two images survives.  With ``newton on``
  the ghost's force is reverse-communicated to its owner; with ``newton
  off`` both ranks compute the pair and each updates only its own atom.

Storage is CSR: 64-bit row offsets with 32-bit neighbor indices — the exact
integer-width split the paper's appendix B arrives at for exascale-size
allocations.  A padded 2-D View (atoms x maxneigh) is also available, whose
layout flips between CPU (rows contiguous) and GPU (interleaved) as in
section 4.1's data-layout discussion.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from itertools import count
from typing import Iterator

import numpy as np

from repro.core.bin_grid import BinGrid
from repro.core.errors import NeighborError, OverflowGuardError
from repro.kokkos.core import ExecutionSpace, Host
from repro.kokkos.view import View

#: Expansion chunk: bounds peak memory of the candidate-pair blow-up.
_CHUNK_ATOMS = 65536
#: Shared-builder candidate budget per filter pass (see ``_build_shared``).
_CHUNK_CANDIDATES = 4_000_000

#: Stencil modes.  ``shared`` is the production builder: a reusable
#: :class:`~repro.core.bin_grid.BinGrid` plus a half stencil that generates
#: each same-rank pair once.  ``legacy`` is the pre-overhaul build (global
#: argsort, 27-cell full scan, filter-after for half lists), kept intact so
#: ``--bench neighbor`` can time the new path against the old one in-repo.
SHARED = "shared"
LEGACY = "legacy"
_STENCIL_MODES = (SHARED, LEGACY)

_forced_stencil: str | None = None

#: Process-wide rebuild stamp source for :attr:`NeighborList.generation`.
_GENERATION = count(1)


def stencil_mode() -> str:
    """The active build mode (``shared`` unless a benchmark pins legacy)."""
    return _forced_stencil if _forced_stencil is not None else SHARED


def set_stencil_mode(mode: str | None) -> str | None:
    """Install (or clear, with None) the global build-mode override.

    Returns the previous override.  Unknown names fail here with a
    did-you-mean hint instead of surfacing later in the build; the autotuner
    uses this non-scoped form to lock in a winner for the rest of a run.
    """
    global _forced_stencil
    if mode is not None and mode not in _STENCIL_MODES:
        from repro.core.errors import unknown_choice

        raise NeighborError(unknown_choice("stencil mode", mode, _STENCIL_MODES))
    prev = _forced_stencil
    _forced_stencil = mode
    return prev


@contextmanager
def force_stencil_mode(mode: str | None) -> Iterator[None]:
    """Pin the neighbor build mode globally (None restores the default)."""
    prev = set_stencil_mode(mode)
    try:
        yield
    finally:
        set_stencil_mode(prev)


@dataclass
class NeighborList:
    """CSR neighbor list over owned atoms."""

    #: "half" or "full".
    style: str
    newton: bool
    cutoff: float
    nlocal: int
    #: Row offsets, length nlocal+1, int64 (appendix B: these are the
    #: structures that overflow 32 bits at exascale).
    first: np.ndarray
    #: Flat neighbor indices into the local+ghost arrays, int32.
    neighbors: np.ndarray
    #: Monotonic build stamp (process-wide).  Everything whose lifetime is
    #: "until the next neighbor rebuild" — the :class:`PairCache`, the kernel
    #: graph's fused-plan cache — can key on this instead of holding the list
    #: object itself.
    generation: int = -1

    @property
    def numneigh(self) -> np.ndarray:
        return np.diff(self.first)

    @property
    def total_pairs(self) -> int:
        return int(self.first[-1])

    @property
    def mean_neighbors(self) -> float:
        return self.total_pairs / max(self.nlocal, 1)

    @property
    def maxneigh(self) -> int:
        """Widest row of the list, computed once per build.

        Sizes the padded 2-D views and feeds the thermo overflow-guard
        reporting ("ave neighs/atom, max neighs") — a fixed-capacity
        engine would overflow when this exceeds its per-row allocation.
        """
        cached = getattr(self, "_maxneigh", None)
        if cached is None:
            cached = self._maxneigh = (
                int(self.numneigh.max()) if self.nlocal else 0
            )
        return cached

    def neighbors_of(self, i: int) -> np.ndarray:
        return self.neighbors[self.first[i] : self.first[i + 1]]

    def ij_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """Flat ``(i, j)`` arrays covering every stored (i, neighbor) entry.

        Memoized for the life of the build (the row expansion is
        neighbor-constant; force kernels call this every step).
        """
        cached = getattr(self, "_ij_pairs", None)
        if cached is None:
            i = np.repeat(np.arange(self.nlocal), self.numneigh)
            cached = self._ij_pairs = (i, self.neighbors.astype(np.int64))
        return cached

    def pair_cache(self) -> "PairCache":
        """The per-rebuild :class:`PairCache` attached to this list.

        Lazily created; a neighbor rebuild produces a fresh
        :class:`NeighborList`, so attachment doubles as invalidation.
        """
        cached = getattr(self, "_pair_cache", None)
        if cached is None:
            cached = self._pair_cache = PairCache(self)
        return cached

    # ------------------------------------------------- interior/boundary split
    def boundary_rows(self) -> np.ndarray:
        """Boolean mask over owned atoms: True where the row has a ghost.

        The comm/compute overlap driver (Trott et al.'s interior/boundary
        force split) computes rows whose neighbors are all owned atoms while
        the halo exchange is in flight; rows touching ghosts wait for fresh
        ghost positions.  Cached per list build.
        """
        cached = getattr(self, "_boundary_rows", None)
        if cached is not None:
            return cached
        mask = np.zeros(self.nlocal, dtype=bool)
        if self.total_pairs:
            row = np.repeat(np.arange(self.nlocal), self.numneigh)
            mask[row[self.neighbors >= np.int32(self.nlocal)]] = True
        self._boundary_rows = mask
        return mask

    def ghost_pair_mask(self) -> np.ndarray:
        """Per-stored-pair mask: True where the neighbor is a ghost atom.

        Pair-streaming kernels split at pair granularity: a pair whose j is
        owned reads only positions already current on this rank, so it can be
        evaluated before the halo exchange completes.  Cached per build, like
        :meth:`boundary_rows` — overlapped runs evaluate it every phase.
        """
        cached = getattr(self, "_ghost_pair_mask", None)
        if cached is None:
            cached = self._ghost_pair_mask = self.neighbors >= np.int32(self.nlocal)
        return cached

    @property
    def interior_pairs(self) -> int:
        return self.total_pairs - self.boundary_pairs

    @property
    def boundary_pairs(self) -> int:
        return int(np.count_nonzero(self.ghost_pair_mask()))

    def as_padded_view(self, space: ExecutionSpace = Host) -> View:
        """Padded 2-D (nlocal, maxneigh) View in a space's natural layout.

        On Host the row for one atom is contiguous (cache-friendly serial
        traversal); on Device the first index is fastest so consecutive
        threads read consecutive addresses (coalescing) — the "transparent
        data layout adjustment" of section 4.1.  Cached per build and space.
        """
        cache: dict = getattr(self, "_padded_views", None) or {}
        if not hasattr(self, "_padded_views"):
            self._padded_views = cache
        view = cache.get(space)
        if view is not None:
            return view
        maxn = self.maxneigh
        view = View((self.nlocal, maxn), dtype=np.int32, space=space, label="neigh2d")
        view.data[...] = -1
        i, j = self.ij_pairs()
        if self.total_pairs:
            # column of each entry within its row: global offset minus the
            # row start, vectorized (no per-row Python arange)
            col = np.arange(self.total_pairs, dtype=np.int64) - self.first[i]
            view.data[i, col] = j.astype(np.int32)
        cache[space] = view
        return view


class PairCache:
    """Neighbor-constant pair arrays, memoized for the life of one build.

    Everything here depends only on the neighbor list and on arrays that are
    constant between rebuilds (atom types, pair-style cutoffs), yet the force
    kernels used to re-derive all of it every call — per-pair type gathers,
    cutoff-matrix rows, the interior/boundary split, the j-side sort.  One
    instance hangs off each :class:`NeighborList` (see
    :meth:`NeighborList.pair_cache`); rebuilds create a fresh list and
    therefore a fresh, empty cache.
    """

    def __init__(self, nlist: "NeighborList") -> None:
        self.nlist = nlist
        self._types: tuple[np.ndarray, np.ndarray] | None = None
        self._cutsq: dict[int, np.ndarray] = {}
        self._j_order: np.ndarray | None = None
        self._phase_sel: dict[str, np.ndarray | None] = {}

    def ij(self) -> tuple[np.ndarray, np.ndarray]:
        """Flat ``(i, j)`` over stored pairs (shared with ``ij_pairs``)."""
        return self.nlist.ij_pairs()

    def type_pairs(self, types: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-stored-pair ``(itype, jtype)``.

        Atom types are constant between neighbor rebuilds (migration and
        sorting trigger a rebuild), so the first gather is reused verbatim.
        """
        if self._types is None:
            i, j = self.ij()
            self._types = (types[i], types[j])
        return self._types

    def cutsq_pairs(self, cut: np.ndarray) -> np.ndarray:
        """Per-stored-pair squared cutoff from a style's cutoff matrix.

        Keyed by the matrix object: coefficients are finalized at ``init()``
        and stable for the run, and distinct styles get distinct rows.
        """
        key = id(cut)
        cached = self._cutsq.get(key)
        if cached is None:
            itype, jtype = self.type_pairs_known()
            cached = self._cutsq[key] = cut[itype, jtype] ** 2
        return cached

    def type_pairs_known(self) -> tuple[np.ndarray, np.ndarray]:
        if self._types is None:
            raise NeighborError("PairCache.type_pairs(types) must run first")
        return self._types

    def j_order(self) -> np.ndarray:
        """Stable permutation sorting stored pairs by destination ``j``.

        The reverse (j-side) reduction segments contributions by the
        neighbor index; the stable sort keeps each destination's
        contributions in pair order, so segmented sums reproduce the atomic
        path's accumulation order.  Worth amortizing when per-pair rows are
        wide (one gather + one ``reduceat`` replaces a bincount per column);
        3-wide force rows go through the bincount path instead.
        """
        if self._j_order is None:
            _, j = self.ij()
            self._j_order = np.argsort(j, kind="stable")
        return self._j_order

    def phase_sel(self, phase: str) -> np.ndarray | None:
        """Stored-pair index array for an overlap phase (None = all pairs)."""
        if phase not in self._phase_sel:
            if phase == "all":
                self._phase_sel[phase] = None
            else:
                ghost = self.nlist.ghost_pair_mask()
                if phase == "interior":
                    self._phase_sel[phase] = np.flatnonzero(~ghost)
                elif phase == "boundary":
                    self._phase_sel[phase] = np.flatnonzero(ghost)
                else:
                    raise NeighborError(f"unknown compute phase {phase!r}")
        return self._phase_sel[phase]


def _bin_index(x: np.ndarray, origin: np.ndarray, nbins: np.ndarray, inv_size: np.ndarray) -> np.ndarray:
    cell = ((x - origin) * inv_size).astype(np.int64)
    np.clip(cell, 0, nbins - 1, out=cell)
    return cell[:, 0] + nbins[0] * (cell[:, 1] + nbins[1] * cell[:, 2])


def build_neighbor_list(
    x: np.ndarray,
    nlocal: int,
    cutoff: float,
    *,
    style: str = "full",
    newton: bool = False,
    chunk: int = _CHUNK_ATOMS,
    grid: BinGrid | None = None,
) -> NeighborList:
    """Build a neighbor list over ``x`` (owned atoms first, then ghosts).

    ``x`` must already include the ghost shell out to ``cutoff`` — the
    caller (border communication) guarantees any atom within the cutoff of
    an owned atom is present.

    ``grid`` is an optional pre-built :class:`BinGrid` over the *same*
    coordinates (typically at a larger bin size — the per-rebuild shared
    grid): reusing it skips the bin assembly entirely.  A grid whose atom
    partitioning does not match is ignored and a private one is built.
    """
    if style not in ("half", "full"):
        raise NeighborError(f"unknown neighbor list style {style!r}")
    if cutoff <= 0.0:
        raise NeighborError("cutoff must be positive")
    x = np.asarray(x, dtype=float)
    nall = x.shape[0]
    if not 0 <= nlocal <= nall:
        raise NeighborError(f"nlocal {nlocal} outside [0, {nall}]")
    if nall > np.iinfo(np.int32).max:
        raise OverflowGuardError(
            "local+ghost atom count exceeds 32-bit neighbor index range; "
            "this build models appendix B's int32 column indices"
        )
    if nlocal == 0:
        nlist = NeighborList(
            style, newton, cutoff, 0, np.zeros(1, np.int64), np.zeros(0, np.int32)
        )
    elif stencil_mode() == SHARED:
        nlist = _build_shared(x, nlocal, cutoff, style, newton, chunk, grid)
    else:
        nlist = _build_legacy(x, nlocal, cutoff, style, newton, chunk)
    nlist.generation = next(_GENERATION)
    return nlist


def _build_shared(
    x: np.ndarray,
    nlocal: int,
    cutoff: float,
    style: str,
    newton: bool,
    chunk: int,
    grid: BinGrid | None,
) -> NeighborList:
    """Shared-grid builder: half stencil + counting-merge CSR assembly.

    Half lists scan the in-cell tail (slot order plays ``j > i``) plus the
    13 lexicographically "upper" cells for *all* members, generating each
    same-rank pair exactly once — no build-full-then-filter.  Ghost pairs
    are decided by the coordinate tie-break (grid-independent, so both
    ranks agree), which forces one extra ghost-only sweep of lower cells;
    with newton on only the same-z-layer lower cells can win the tie-break
    (a strictly lower z-bin implies a strictly smaller z coordinate), so
    that sweep shrinks from 13 cells to 4.

    Chunks partition the row range, so each chunk owns a contiguous CSR
    segment: its kept pairs need only a (small) per-chunk stable sort by
    row before sliding straight into the flat neighbor array — the global
    argsort over all candidates is gone.
    """
    nall = x.shape[0]
    grid_builds = 0
    if (
        grid is None
        or grid.nall != nall
        or (style == "half" and grid.nlocal != nlocal)
    ):
        # half-cutoff bins, as in LAMMPS: a 2-ring stencil over finer cells
        # covers ~42% less volume than 1-ring over cutoff-sized cells, so
        # the distance filter sees far fewer candidates
        grid = BinGrid(x, nlocal, 0.5 * cutoff)
        grid_builds = 1
    cutsq = cutoff * cutoff
    candidates = 0
    # Component columns: 1-D gathers through the candidate index arrays are
    # markedly cheaper than (n, 3) row gathers, and the distance filter is
    # the dominant cost of the build.  The j side uses the *slot-ordered*
    # copies — candidate slots are contiguous per stencil cell, so those
    # gathers stream nearly sequential memory.
    xs0, xs1, xs2 = grid.columns()
    so0, so1, so2 = grid.slot_columns()

    if style == "full":
        scans = [(grid.stencil_offsets(cutoff), "all")]
    else:
        upper, lower = grid.half_offsets(cutoff)
        if newton:
            # a strictly lower z-bin means a strictly smaller z coordinate,
            # which can never win the z-first tie-break: only the same-z
            # lower cells can contribute surviving ghost pairs.
            lower = lower[lower[:, 2] == 0]
        scans = [(upper, "all"), (lower, "ghost")]

    # Adapt the row chunk to a candidate budget: one concatenated filter
    # pass per chunk is fastest when its temporaries stay cache-resident,
    # and catastrophically slower when tens of millions of candidates spill
    # to main memory.  Estimated candidates per row = atoms/bin x cells.
    if chunk == _CHUNK_ATOMS:  # explicit chunk requests are honored as-is
        ncells = sum(len(offs) for offs, _ in scans) + (1 if style == "half" else 0)
        per_row = max(nall / max(float(np.prod(grid.nbins)), 1.0), 1.0) * max(ncells, 1)
        chunk = max(min(chunk, int(_CHUNK_CANDIDATES / per_row)), 1024)

    numneigh = np.zeros(nlocal, dtype=np.int64)
    chunk_rows: list[np.ndarray] = []
    for lo in range(0, nlocal, chunk):
        hi = min(lo + chunk, nlocal)
        rows = np.arange(lo, hi, dtype=np.int64)
        batches = []
        if style == "half":
            tail = grid.self_tail(rows)
            if tail is not None:
                batches.append(tail)
        for offsets, members in scans:
            batches.extend(grid.scan(rows, offsets, members))
        if not batches:
            chunk_rows.append(np.zeros(0, dtype=np.int64))
            continue
        ib = np.concatenate([b[0] for b in batches])
        js = np.concatenate([b[1] for b in batches])
        candidates += len(ib)
        d0 = xs0[ib] - so0[js]
        d1 = xs1[ib] - so1[js]
        d2 = xs2[ib] - so2[js]
        d0 *= d0
        d1 *= d1
        d0 += d1
        d2 *= d2
        d0 += d2
        # distance filter first; the slot->atom gather and style fix-ups
        # below then run over the surviving fraction only (an order of
        # magnitude fewer pairs)
        sel = np.flatnonzero(d0 < cutsq)
        ib, jb = ib[sel], grid.order[js[sel]]
        if style == "full":
            nz = ib != jb
            ib, jb = ib[nz], jb[nz]
        elif newton:
            # ghost pairs: LAMMPS's coordinate tie-break, exactly as in the
            # legacy path — one of the two images survives globally.
            gsel = np.flatnonzero(jb >= nlocal)
            if len(gsel):
                ig, jg = ib[gsel], jb[gsel]
                zi, zj = xs2[ig], xs2[jg]
                yi, yj = xs1[ig], xs1[jg]
                win = (zj > zi) | (
                    (zj == zi)
                    & ((yj > yi) | ((yj == yi) & (xs0[jg] > xs0[ig])))
                )
                keep = np.ones(len(ib), dtype=bool)
                keep[gsel[~win]] = False
                ib, jb = ib[keep], jb[keep]
        # kept pairs are a small fraction of the candidates: a stable sort
        # here costs little and restores row-major order within the chunk
        order = np.argsort(ib, kind="stable")
        ib, jb = ib[order], jb[order]
        numneigh[lo:hi] += np.bincount(ib - lo, minlength=hi - lo)
        chunk_rows.append(jb)

    first = np.zeros(nlocal + 1, dtype=np.int64)
    np.cumsum(numneigh, out=first[1:])
    neighbors = (
        np.concatenate(chunk_rows).astype(np.int32)
        if chunk_rows
        else np.zeros(0, dtype=np.int32)
    )

    nl = NeighborList(style, newton, cutoff, nlocal, first, neighbors)
    nl.build_stats = {
        "mode": SHARED,
        "candidates": candidates,
        "grid_builds": grid_builds,
    }
    return nl


def _build_legacy(
    x: np.ndarray,
    nlocal: int,
    cutoff: float,
    style: str,
    newton: bool,
    chunk: int,
) -> NeighborList:
    """The pre-overhaul builder: global argsort binning, 27-cell full scan,
    half lists derived by filtering the full candidate set.  Benchmark
    baseline for ``--bench neighbor``; produces the same pair sets."""
    nall = x.shape[0]
    origin = x.min(axis=0) - 1e-9
    top = x.max(axis=0) + 1e-9
    span = np.maximum(top - origin, cutoff)
    nbins = np.maximum((span / cutoff).astype(np.int64), 1)
    size = span / nbins
    inv_size = 1.0 / size
    nbins_total = int(np.prod(nbins))

    binid = _bin_index(x, origin, nbins, inv_size)
    order = np.argsort(binid, kind="stable")
    sorted_bins = binid[order]
    counts = np.bincount(sorted_bins, minlength=nbins_total)
    starts = np.zeros(nbins_total + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])

    # 27-cell stencil offsets in linear bin space, guarded at grid edges by
    # working in 3-D coordinates.
    cell3 = ((x - origin) * inv_size).astype(np.int64)
    np.clip(cell3, 0, nbins - 1, out=cell3)
    offsets = np.array(
        [(dx, dy, dz) for dz in (-1, 0, 1) for dy in (-1, 0, 1) for dx in (-1, 0, 1)],
        dtype=np.int64,
    )

    cutsq = cutoff * cutoff
    candidates = 0
    rows_i: list[np.ndarray] = []
    rows_j: list[np.ndarray] = []

    for lo in range(0, nlocal, chunk):
        hi = min(lo + chunk, nlocal)
        ilocal = np.arange(lo, hi)
        ci = cell3[ilocal]  # (m, 3)
        chunk_i: list[np.ndarray] = []
        chunk_j: list[np.ndarray] = []
        for off in offsets:
            nb3 = ci + off
            valid = np.all((nb3 >= 0) & (nb3 < nbins), axis=1)
            if not valid.any():
                continue
            iv = ilocal[valid]
            nb = nb3[valid]
            nbin = nb[:, 0] + nbins[0] * (nb[:, 1] + nbins[1] * nb[:, 2])
            cnt = counts[nbin]
            nz = cnt > 0
            if not nz.any():
                continue
            iv, nbin, cnt = iv[nz], nbin[nz], cnt[nz]
            total = int(cnt.sum())
            csum = np.zeros(len(cnt), dtype=np.int64)
            np.cumsum(cnt[:-1], out=csum[1:])
            within = np.arange(total, dtype=np.int64) - np.repeat(csum, cnt)
            j = order[np.repeat(starts[nbin], cnt) + within]
            i = np.repeat(iv, cnt)
            candidates += len(i)
            dx = x[i] - x[j]
            rsq = np.einsum("ij,ij->i", dx, dx)
            keep = (rsq < cutsq) & (i != j)
            chunk_i.append(i[keep])
            chunk_j.append(j[keep])
        if chunk_i:
            rows_i.append(np.concatenate(chunk_i))
            rows_j.append(np.concatenate(chunk_j))

    if rows_i:
        ii = np.concatenate(rows_i)
        jj = np.concatenate(rows_j)
    else:
        ii = np.zeros(0, dtype=np.int64)
        jj = np.zeros(0, dtype=np.int64)

    if style == "half":
        local_j = jj < nlocal
        keep_local = local_j & (jj > ii)
        gj = ~local_j
        if newton:
            # Newton on: each physical pair once globally.  Ghost pairs use
            # LAMMPS's coordinate tie-break so exactly one of the two images
            # (across ranks or across the periodic wrap) survives; the ghost
            # side's force is reverse-communicated to the owner.
            xi, xj = x[ii[gj]], x[jj[gj]]
            zgt = xj[:, 2] > xi[:, 2]
            zeq = xj[:, 2] == xi[:, 2]
            ygt = xj[:, 1] > xi[:, 1]
            yeq = xj[:, 1] == xi[:, 1]
            xgt = xj[:, 0] > xi[:, 0]
            keep_ghost = zgt | (zeq & (ygt | (yeq & xgt)))
        else:
            # Newton off: every rank keeps its side of a ghost pair — each
            # atom's force is accumulated entirely locally and the pair
            # energy is tallied at half weight on each side.
            keep_ghost = np.ones(int(gj.sum()), dtype=bool)
        keep = np.zeros(len(ii), dtype=bool)
        keep[np.flatnonzero(local_j)[keep_local[local_j]]] = True
        keep[np.flatnonzero(gj)[keep_ghost]] = True
        ii, jj = ii[keep], jj[keep]

    sorter = np.argsort(ii, kind="stable")
    ii, jj = ii[sorter], jj[sorter]
    numneigh = np.bincount(ii, minlength=nlocal)
    first = np.zeros(nlocal + 1, dtype=np.int64)
    np.cumsum(numneigh, out=first[1:])
    nl = NeighborList(style, newton, cutoff, nlocal, first, jj.astype(np.int32))
    nl.build_stats = {"mode": LEGACY, "candidates": candidates, "grid_builds": 0}
    return nl


def brute_force_pairs(x: np.ndarray, nlocal: int, cutoff: float) -> set[tuple[int, int]]:
    """O(n^2) reference: all (i local, j != i) pairs within cutoff.

    Test oracle for the binned builder.
    """
    x = np.asarray(x, dtype=float)
    out: set[tuple[int, int]] = set()
    cutsq = cutoff * cutoff
    for i in range(nlocal):
        d = x - x[i]
        rsq = np.einsum("ij,ij->i", d, d)
        for j in np.flatnonzero(rsq < cutsq):
            if j != i:
                out.add((i, int(j)))
    return out


@dataclass
class Neighbor:
    """Rebuild policy manager (LAMMPS's ``neighbor``/``neigh_modify``)."""

    skin: float
    every: int = 1
    delay: int = 0
    #: Rebuild only when an atom moved further than skin/2 since last build.
    check: bool = True
    last_build_x: np.ndarray | None = None
    last_build_step: int = -1
    builds: int = 0
    dangerous: int = 0

    def decide(self, step: int, x_local: np.ndarray) -> bool:
        """Whether the neighbor list must be rebuilt this step."""
        if self.last_build_x is None:
            return True
        if step - self.last_build_step < self.delay:
            return False
        if self.every > 1 and (step - self.last_build_step) % self.every:
            return False
        if not self.check:
            return True
        if x_local.shape != self.last_build_x.shape:
            return True
        disp = x_local - self.last_build_x
        max_sq = float(np.max(np.einsum("ij,ij->i", disp, disp))) if len(disp) else 0.0
        return max_sq > (0.5 * self.skin) ** 2

    def record_build(self, step: int, x_local: np.ndarray) -> None:
        self.last_build_x = x_local.copy()
        self.last_build_step = step
        self.builds += 1
