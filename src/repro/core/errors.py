"""Error hierarchy mirroring LAMMPS's error classes."""

from __future__ import annotations


class LammpsError(Exception):
    """Base class for all engine errors."""


class InputError(LammpsError):
    """Malformed input-script command (LAMMPS's ``Error::all`` on parse)."""


class StyleError(LammpsError):
    """Unknown or incompatible style (pair/fix/compute) request."""


class DomainError(LammpsError):
    """Invalid simulation box or region geometry."""


class NeighborError(LammpsError):
    """Neighbor-list construction failure (e.g. cutoff exceeds subdomain)."""


class CommError(LammpsError):
    """Ghost-atom communication failure (e.g. lost atoms)."""


class OverflowGuardError(LammpsError):
    """A data structure exceeded its index type's range (appendix B)."""
