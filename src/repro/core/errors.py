"""Error hierarchy mirroring LAMMPS's error classes."""

from __future__ import annotations


class LammpsError(Exception):
    """Base class for all engine errors."""


class InputError(LammpsError):
    """Malformed input-script command (LAMMPS's ``Error::all`` on parse)."""


class StyleError(LammpsError):
    """Unknown or incompatible style (pair/fix/compute) request."""


class DomainError(LammpsError):
    """Invalid simulation box or region geometry."""


class NeighborError(LammpsError):
    """Neighbor-list construction failure (e.g. cutoff exceeds subdomain)."""


class CommError(LammpsError):
    """Ghost-atom communication failure (e.g. lost atoms)."""


class OverflowGuardError(LammpsError):
    """A data structure exceeded its index type's range (appendix B)."""


def unknown_choice(kind, got, choices, *, extra=""):
    """Error text for a bad name from a closed set, with a did-you-mean hint.

    Shared by the mode setters (scatter/stencil), the autotuner, and the
    ``--tools`` factory so every "unknown X" message reads the same way:
    the offending name, the closest registered match, and the full choice
    list.  ``extra`` is appended verbatim after the list.
    """
    import difflib

    names = [str(c) for c in choices]
    close = difflib.get_close_matches(str(got), names, n=1)
    hint = f" (did you mean {close[0]!r}?)" if close else ""
    return (f"unknown {kind} {got!r}{hint}; "
            f"expected one of: {', '.join(names)}{extra}")
