"""The Verlet integration driver (LAMMPS's ``Verlet`` run style).

``setup_gen``/``run_gen`` are generators so multi-rank runs can be advanced
in lockstep (see :mod:`repro.parallel.driver`); the per-step phase order is
LAMMPS's:

1. ``initial_integrate`` fixes (first Verlet half-kick + drift);
2. either a neighbor-list rebuild cycle (migrate -> borders -> build) or a
   cheap forward communication of ghost positions;
3. force computation (pair style), then ``post_force`` fixes;
4. reverse communication of ghost forces when Newton's third law is on;
5. ``final_integrate`` fixes (second half-kick), ``end_of_step`` fixes;
6. thermo output on its interval.

Each stage runs under the matching :class:`repro.core.timer.PhaseTimer`
category (Pair/Kspace/Neigh/Comm/Modify/Output), which both feeds the
thermo timing breakdown and opens an observability region on the rank's
track.  Categories are strictly sequential — never nested inside one
another — so the breakdown and the space-time-stack agree exactly.
"""

from __future__ import annotations

import time
from typing import Iterator

from repro.core.errors import LammpsError
from repro.tools import metrics
from repro.tools import registry as kp


class Verlet:
    """Integration loop bound to one Lammps instance."""

    def __init__(self, lmp) -> None:
        self.lmp = lmp

    # ------------------------------------------------------------- setup
    def setup_gen(self) -> Iterator[None]:
        lmp = self.lmp
        if lmp.pair is None:
            raise LammpsError("no pair style defined before run")
        lmp.pair.init()
        lmp.modify.init()
        yield from lmp.count_atoms_gen()
        yield from lmp.rebuild_gen()
        yield from self.force_cycle()
        with lmp.timer.phase("Output"):
            yield from lmp.thermo.output_gen(force=True)
            lmp.write_dumps(force=True)

    # -------------------------------------------------------------- force
    def force_cycle(self) -> Iterator[None]:
        lmp = self.lmp
        with lmp.timer.phase("Pair"):
            lmp.atom.zero_forces()
            lmp.mark_host_writes("f")
            if hasattr(lmp.pair, "compute_gen"):
                # Styles with mid-compute communication (EAM's fp exchange,
                # ReaxFF's QEq) run as generators.  Their embedded comm is
                # credited to Pair, as LAMMPS does for in-style exchanges.
                yield from lmp.pair.compute_gen(eflag=True, vflag=True)
            else:
                lmp.pair.compute(eflag=True, vflag=True)
        yield from self._force_epilogue()

    def _force_epilogue(self) -> Iterator[None]:
        lmp = self.lmp
        if lmp.kspace is not None:
            # reciprocal-space contribution (KSPACE package)
            with lmp.timer.phase("Kspace"):
                yield from lmp.kspace.compute_gen(eflag=True, vflag=True)
        with lmp.timer.phase("Comm"):
            lmp.sync_host_fields("f")
            # LAMMPS order: ghost forces return to their owners *before*
            # post-force fixes run, so fixes see complete forces.
            if lmp.pair.needs_reverse_comm:
                yield from lmp.comm_brick.reverse_comm(lmp.atom, "f")
        with lmp.timer.phase("Modify"):
            lmp.modify.post_force()
            lmp.mark_host_writes("f")

    # ----------------------------------------------------- overlapped force
    def overlap_active(self) -> bool:
        """Overlap requested, and the active pair style can split phases."""
        lmp = self.lmp
        return bool(
            getattr(lmp, "overlap_comm", False)
            and lmp.pair is not None
            and getattr(lmp.pair, "supports_overlap", False)
            and lmp.comm_brick is not None
        )

    def force_cycle_overlap(self) -> Iterator[None]:
        """Halo exchange hidden behind the interior force pass.

        The position halo is started asynchronously; the interior pass
        (pairs whose neighbor is an owned atom) runs against it, the
        exchange is synchronized, then the boundary pass folds in the
        ghost-dependent pairs — Trott et al.'s GPU-cluster overlap scheme.
        Only taken on non-rebuild steps: migration/borders reshape the ghost
        shell and are inherently blocking.
        """
        lmp = self.lmp
        with lmp.timer.phase("Comm"):
            inflight = lmp.comm_brick.forward_comm_start(lmp.atom)
        if hasattr(lmp.pair, "compute_overlap_gen"):
            # Styles with mid-compute communication drive the in-flight
            # handle themselves (EAM overlaps its interior density loop).
            with lmp.timer.phase("Pair"):
                lmp.atom.zero_forces()
                lmp.mark_host_writes("f")
                yield from lmp.pair.compute_overlap_gen(inflight, eflag=True, vflag=True)
        else:
            with lmp.timer.phase("Pair"), kp.region("interior"):
                lmp.atom.zero_forces()
                lmp.mark_host_writes("f")
                lmp.pair.compute_phase("interior", eflag=True, vflag=True)
            with lmp.timer.phase("Comm"):
                yield from inflight.finish()
                lmp.mark_host_writes("x")
            with lmp.timer.phase("Pair"), kp.region("boundary"):
                lmp.pair.compute_phase("boundary", eflag=True, vflag=True)
        lmp.overlap_steps += 1
        yield from self._force_epilogue()

    # ---------------------------------------------------------------- run
    def run_gen(self, nsteps: int) -> Iterator[None]:
        lmp = self.lmp
        if nsteps < 0:
            raise LammpsError("negative step count")
        yield from self.setup_gen()
        for _ in range(nsteps):
            # Per-step wall timer: in multi-rank lockstep runs the yields
            # interleave ranks, so this measures the process-wide step, not
            # one rank's share — label it by rank so that is explicit.
            step_t0 = time.perf_counter() if metrics.SINKS else 0.0
            lmp.update.ntimestep += 1
            with lmp.timer.phase("Modify"):
                lmp.modify.initial_integrate()
                lmp.mark_host_writes("x", "v")
            # The rebuild decision is collective (LAMMPS allreduces the
            # check-distance flag): every rank must take the same branch or
            # the communication phases misalign.
            local_flag = lmp.neighbor.decide(
                lmp.update.ntimestep, lmp.atom.x[: lmp.atom.nlocal]
            )
            key = ("rebuild", lmp.update.ntimestep)
            with lmp.timer.phase("Comm"):
                lmp.world.reduce_contribute(key, float(local_flag))
                yield
                rebuild = lmp.world.reduce_result(key) > 0.0
            if rebuild:
                yield from lmp.rebuild_gen()
                lmp.mark_host_writes("x")
                yield from self.force_cycle()
            elif self.overlap_active():
                yield from self.force_cycle_overlap()
            else:
                with lmp.timer.phase("Comm"):
                    yield from lmp.comm_brick.forward_comm(lmp.atom)
                    lmp.mark_host_writes("x")
                yield from self.force_cycle()
            with lmp.timer.phase("Modify"):
                lmp.modify.final_integrate()
                lmp.modify.end_of_step()
            with lmp.timer.phase("Output"):
                yield from lmp.thermo.output_gen()
                lmp.write_dumps()
            if metrics.SINKS:
                rank = str(lmp.comm_rank)
                metrics.observe(
                    "step_wall_seconds",
                    time.perf_counter() - step_t0,
                    rank=rank,
                )
                metrics.inc("steps_total", rank=rank)
                if rebuild:
                    metrics.inc("neighbor_rebuilds_total", rank=rank)
