"""Energy minimization (the ``minimize`` command).

Two minimizers, as in core LAMMPS:

* ``sd``   — steepest descent with adaptive step control;
* ``fire`` — the FIRE algorithm (Bitzek et al. 2006): velocity-Verlet
  dynamics with velocity projection onto the force direction, adaptive
  timestep, and restarts on uphill moves.  LAMMPS's ``min_style fire``.

Both run through the engine's normal force cycle (communication, neighbor
rebuilds, Kokkos dispatches), so minimization exercises exactly the same
machinery as dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.errors import LammpsError


@dataclass
class MinimizeResult:
    converged: bool
    iterations: int
    initial_energy: float
    final_energy: float
    final_fmax: float
    criterion: str


class Minimizer:
    """Driver shared by the minimization styles."""

    def __init__(self, lmp, style: str = "fire") -> None:
        if style not in ("fire", "sd"):
            raise LammpsError(f"unknown min_style {style!r} (fire, sd)")
        self.lmp = lmp
        self.style = style

    # The generator protocol mirrors Verlet.run_gen so multi-rank
    # minimization stays lockstep-safe.
    def minimize_gen(
        self,
        etol: float,
        ftol: float,
        maxiter: int,
    ) -> Iterator[None]:
        lmp = self.lmp
        if lmp.pair is None:
            raise LammpsError("minimize requires a pair style")
        lmp.pair.init()
        lmp.modify.init()
        yield from lmp.count_atoms_gen()
        yield from lmp.rebuild_gen()
        yield from lmp.verlet.force_cycle()

        # global initial energy/fmax
        e_prev, fmax = yield from self._reduce_ef("init")
        e_init = e_prev

        atom = lmp.atom
        n = atom.nlocal
        dt = lmp.update.dt
        # FIRE state
        v = np.zeros((n, 3))
        alpha, dt_fire = 0.1, dt
        n_pos = 0
        step_len = 0.01 * max(lmp.neighbor.skin, 1e-3)

        result = MinimizeResult(False, 0, e_init, e_prev, fmax, "maxiter")
        for it in range(1, maxiter + 1):
            atom = lmp.atom
            n = atom.nlocal
            if v.shape[0] != n:
                v = np.zeros((n, 3))  # migration changed ownership
            f = atom.f[:n]

            if self.style == "sd":
                fnorm = max(np.abs(f).max(), 1e-300)
                atom.x[:n] += f * (step_len / fnorm)
            else:  # FIRE
                power = float((f * v).sum())
                key = ("min_power", lmp.update.ntimestep, it)
                lmp.world.reduce_contribute(key, power)
                yield
                power = lmp.world.reduce_result(key)
                if power > 0.0:
                    vnorm = np.linalg.norm(v) + 1e-300
                    fnorm = np.linalg.norm(f) + 1e-300
                    v = (1.0 - alpha) * v + alpha * (vnorm / fnorm) * f
                    n_pos += 1
                    if n_pos > 5:
                        dt_fire = min(dt_fire * 1.1, 10 * dt)
                        alpha *= 0.99
                else:
                    v[:] = 0.0
                    dt_fire *= 0.5
                    alpha = 0.1
                    n_pos = 0
                ftm2v = lmp.update.units.ftm2v
                v += dt_fire * ftm2v * f / atom.masses_of()[:, None]
                dx = dt_fire * v
                # cap the displacement to stay within the neighbor skin
                dmax = np.abs(dx).max()
                if dmax > 0.1:
                    dx *= 0.1 / dmax
                    v *= 0.1 / dmax
                atom.x[:n] += dx

            lmp.update.ntimestep += 1
            lmp.mark_host_writes("x")
            flag = lmp.neighbor.decide(lmp.update.ntimestep, atom.x[: atom.nlocal])
            key = ("rebuild", lmp.update.ntimestep)
            lmp.world.reduce_contribute(key, float(flag))
            yield
            if lmp.world.reduce_result(key) > 0.0:
                regen = lmp.atom.reorder_generation
                yield from lmp.rebuild_gen()
                if lmp.atom.nlocal != n:
                    v = np.zeros((lmp.atom.nlocal, 3))  # ownership changed
                elif lmp.atom.reorder_generation != regen:
                    # spatial sort permuted the owned atoms in place; carry
                    # the FIRE velocity state through the same permutation
                    v = v[lmp.atom.last_reorder_perm]
            else:
                yield from lmp.comm_brick.forward_comm(atom)
            yield from lmp.verlet.force_cycle()

            e_now, fmax = yield from self._reduce_ef(it)
            de = abs(e_now - e_prev)
            if self.style == "sd":
                # adaptive step: grow on descent, shrink on overshoot
                step_len = step_len * 1.2 if e_now < e_prev else step_len * 0.5
            if fmax < ftol:
                result = MinimizeResult(True, it, e_init, e_now, fmax, "ftol")
                break
            if de < etol * max(abs(e_now), 1e-300):
                result = MinimizeResult(True, it, e_init, e_now, fmax, "etol")
                break
            e_prev = e_now
            result = MinimizeResult(False, it, e_init, e_now, fmax, "maxiter")

        lmp.last_minimize = result

    def _reduce_ef(self, tag) -> Iterator[None]:
        """Globally reduced (energy, fmax); generator returning the pair."""
        lmp = self.lmp
        atom = lmp.atom
        e_local = lmp.pair.eng_vdwl + lmp.pair.eng_coul
        fmax_local = (
            float(np.abs(atom.f[: atom.nlocal]).max()) if atom.nlocal else 0.0
        )
        key = ("min_ef", lmp.update.ntimestep, tag)
        lmp.world.reduce_contribute(key, np.array([e_local, 0.0]))
        key2 = ("min_fmax", lmp.update.ntimestep, tag)
        lmp.world.reduce_contribute(key2, fmax_local)  # sum ~ max for 1 rank
        yield
        e = float(np.atleast_1d(lmp.world.reduce_result(key))[0])
        # the reduce protocol sums; emulate max via per-rank contributions of
        # the same global value is not possible, so sum of local maxima is a
        # conservative upper bound used only for the stopping test
        fmax = float(lmp.world.reduce_result(key2))
        return e, fmax
