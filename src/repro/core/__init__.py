"""The LAMMPS-miniature MD engine (paper section 2).

Importing this package registers the built-in fix and compute styles; pair
styles register when :mod:`repro.potentials` (and the ReaxFF/SNAP packages)
are imported — mirroring LAMMPS's optional-package structure, where a style
exists only if its package was compiled in.
"""

from repro.core.lammps import Ensemble, Lammps, ReplicaSet
from repro.core import fixes_kokkos as _fkk  # noqa: F401  (registers /kk fixes)
from repro.core import fixes_extra as _fx  # noqa: F401  (thermostats etc.)
from repro.core import computes_extra as _cx  # noqa: F401  (msd, rdf)

__all__ = ["Lammps", "Ensemble", "ReplicaSet"]
