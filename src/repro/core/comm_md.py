"""Ghost-atom communication: borders, forward/reverse comm, migration.

This is LAMMPS's ``CommBrick`` in generator form.  Each communication
routine is a generator that yields exactly where real MPI would block on a
receive; the lockstep driver (:func:`repro.parallel.driver.lockstep`)
advances every rank to the yield, so by the time a rank resumes, its peers'
sends are in the mailbox.  On one rank the generators simply run to
completion (every send is a self-send, posted before its receive).

The protocol is the classic 6-swap brick exchange:

* **borders** — for each dimension low/high face in order, send atoms (owned
  *and previously received ghosts*, which is how diagonal ghosts propagate)
  within ``cutghost`` of the face; periodic crossings shift coordinates by
  the box length.  Send lists and ghost segments are recorded for reuse.
* **forward_comm** — re-send positions over the recorded swaps each step.
* **reverse_comm** — send ghost forces back along the reversed swaps and
  accumulate into the owners (``newton on``, section 4.1).
* **exchange** — migrate owned atoms to their new owners after motion
  (owner-directed, one phase).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.core.atom import BORDER_FIELDS, AtomVec
from repro.core.errors import CommError
from repro.parallel.comm import SimComm
from repro.parallel.decomp import BrickDecomposition
from repro.tools import metrics


@dataclass
class Swap:
    """One recorded border swap, replayed by forward/reverse comm."""

    dim: int
    dirn: int
    #: Peer ranks (may equal self for periodic self-sends).
    send_to: int
    recv_from: int
    #: Indices (into local+ghost arrays) of atoms this rank sends.
    sendlist: np.ndarray
    #: Coordinate shift applied to sent positions (periodic crossing).
    shift: np.ndarray
    #: First ghost slot filled by this swap's receive, and the count.
    firstrecv: int
    nrecv: int


@dataclass
class InFlightComm:
    """A started-but-unfinished halo exchange (simulated ``MPI_Waitall``).

    ``forward_comm_start`` has already advanced the underlying generator to
    its first receive point, which posted the first swap's send to the
    mailbox.  ``finish()`` is itself a generator: it yields one extra
    lockstep round *before* resuming the inner generator, guaranteeing every
    peer's overlapping send has been posted — resuming directly would execute
    the first receive in the same driver turn the exchange was started,
    which deadlocks when a peer has not reached its own start yet.
    """

    gen: Iterator[None]
    primed: bool
    done: bool = False

    def finish(self) -> Iterator[None]:
        if self.done:
            return
        self.done = True
        if not self.primed:
            return
        yield  # barrier: let peers post their first sends
        yield from self.gen


@dataclass
class CommBrick:
    """Per-rank communication engine."""

    comm: SimComm
    decomp: BrickDecomposition
    #: Ghost cutoff: force cutoff + neighbor skin.
    cutghost: float
    swaps: list[Swap] = field(default_factory=list)
    #: ``atom.reorder_generation`` when the swaps were recorded; a spatial
    #: sort after borders would silently invalidate every sendlist index.
    _swap_reorder_gen: int = -1

    def __post_init__(self) -> None:
        if self.cutghost <= 0.0:
            raise CommError("ghost cutoff must be positive")
        lo, hi = self.decomp.subdomain(self.comm.rank)
        self.sublo = lo
        self.subhi = hi
        lengths = np.asarray(self.decomp.boxhi) - np.asarray(self.decomp.boxlo)
        # One swap per direction covers ghosts up to one subdomain away.
        if np.any(self.cutghost > lengths):
            raise CommError(
                f"ghost cutoff {self.cutghost} exceeds a box length {lengths}; "
                "images-of-images are not supported"
            )

    # ------------------------------------------------------------- helpers
    def _face_peer(self, dim: int, dirn: int) -> tuple[int, np.ndarray, bool]:
        """Peer rank for a face send, the shift to apply, and validity.

        Returns ``(peer, shift, active)``; ``active`` is False at a
        non-periodic global boundary.
        """
        px = self.decomp.grid
        ix = list(self.decomp.coords_of(self.comm.rank))
        at_edge = (dirn < 0 and ix[dim] == 0) or (dirn > 0 and ix[dim] == px[dim] - 1)
        shift = np.zeros(3)
        if at_edge:
            length = self.decomp.boxhi[dim] - self.decomp.boxlo[dim]
            shift[dim] = length if dirn < 0 else -length
        ix2 = list(ix)
        ix2[dim] += dirn
        peer = self.decomp.rank_of(*ix2)
        return peer, shift, True

    def _hops(self, dim: int) -> int:
        """Swaps needed per direction in a dimension (LAMMPS's ``maxneed``).

        When the ghost cutoff exceeds the subdomain width, border atoms must
        be relayed from ranks more than one hop away: each extra swap
        forwards the ghosts just received (a bucket brigade, with periodic
        shifts accumulating naturally in the forwarded coordinates).
        """
        sub_len = self.subhi[dim] - self.sublo[dim]
        need = int(np.ceil(self.cutghost / sub_len - 1e-12))
        return max(1, min(need, self.decomp.grid[dim]))

    def _check_sendlists(self, atom: AtomVec) -> None:
        """Refuse to replay swaps recorded against a different atom order.

        Spatial sorting permutes the owned atoms; sendlist indices recorded
        before a sort would ship the wrong atoms.  The rebuild sequence
        sorts *between* exchange and borders precisely so this never fires —
        it is a guard against future reorderings in the wrong place.
        """
        if self.swaps and self._swap_reorder_gen != atom.reorder_generation:
            raise CommError(
                "communication swaps are stale: atoms were reordered after "
                "borders recorded the sendlists (sort must happen before "
                "borders, never between borders and forward/reverse comm)"
            )

    # -------------------------------------------------------------- borders
    def borders(self, atom: AtomVec, periodic: tuple[bool, bool, bool]) -> Iterator[None]:
        """Rebuild the ghost shell (generator; one yield per swap)."""
        if metrics.SINKS:
            metrics.inc("halo_exchanges_total", kind="borders")
        atom.clear_ghosts()
        self.swaps = []
        self._swap_reorder_gen = atom.reorder_generation
        for dim in range(3):
            # Candidates for this dimension's first hop: owned atoms plus
            # ghosts received in *earlier* dimensions only — including this
            # dimension's own receives would bounce them straight back as
            # duplicates.
            ncand = atom.nall
            # range of ghost slots received in the previous hop, per dirn
            prev_range = {-1: None, +1: None}
            for hop in range(self._hops(dim)):
                for dirn in (-1, +1):
                    peer, shift, _ = self._face_peer(dim, dirn)
                    at_edge = bool(shift[dim])
                    active = periodic[dim] or not at_edge
                    if hop == 0:
                        lo_c, hi_c = 0, ncand
                    elif prev_range[dirn] is None:
                        lo_c = hi_c = 0
                    else:
                        lo_c, hi_c = prev_range[dirn]
                    x = atom.x[lo_c:hi_c]
                    if active and hi_c > lo_c:
                        if dirn < 0:
                            mask = x[:, dim] < self.sublo[dim] + self.cutghost
                        else:
                            mask = x[:, dim] >= self.subhi[dim] - self.cutghost
                        sendlist = lo_c + np.flatnonzero(mask)
                    else:
                        sendlist = np.zeros(0, dtype=np.int64)
                    payload = {
                        name: getattr(atom, name)[sendlist].copy()
                        for name in BORDER_FIELDS
                    }
                    payload["x"] = payload["x"] + shift
                    tag = ("border", dim, dirn, hop)
                    self.comm.send(peer, payload, tag)
                    yield
                    recv_peer, _, _ = self._face_peer(dim, -dirn)
                    incoming = self.comm.recv(recv_peer, tag)
                    firstrecv = atom.nall
                    n = incoming["x"].shape[0]
                    if n:
                        atom.add_ghosts(incoming)
                    prev_range[dirn] = (firstrecv, firstrecv + n)
                    self.swaps.append(
                        Swap(
                            dim=dim,
                            dirn=dirn,
                            send_to=peer,
                            recv_from=recv_peer,
                            sendlist=sendlist,
                            shift=shift,
                            firstrecv=firstrecv,
                            nrecv=n,
                        )
                    )

    # --------------------------------------------------------- forward comm
    def forward_comm(self, atom: AtomVec) -> Iterator[None]:
        """Refresh ghost positions over the recorded swaps (per-step path)."""
        if metrics.SINKS:
            metrics.inc("halo_exchanges_total", kind="forward")
        self._check_sendlists(atom)
        for k, swap in enumerate(self.swaps):
            buf = atom.x[swap.sendlist] + swap.shift
            self.comm.send(swap.send_to, buf, ("fwd", k))
            yield
            incoming = self.comm.recv(swap.recv_from, ("fwd", k))
            if incoming.shape[0] != swap.nrecv:
                raise CommError(
                    f"forward comm size changed mid-run: swap {k} expected "
                    f"{swap.nrecv}, got {incoming.shape[0]}"
                )
            atom.x[swap.firstrecv : swap.firstrecv + swap.nrecv] = incoming

    def forward_comm_start(self, atom: AtomVec) -> "InFlightComm":
        """Begin an asynchronous ghost-position refresh.

        Posts the first swap's send immediately (the simulated ``MPI_Isend``)
        and returns an :class:`InFlightComm` handle.  The caller overlaps
        interior force work, then drives ``handle.finish()`` to completion
        before any kernel that reads ghost positions.  Mirrors the
        interior/boundary overlap scheme of Trott et al.'s GPU-cluster work.
        """
        gen = self.forward_comm(atom)
        try:
            next(gen)
            primed = True
        except StopIteration:
            primed = False  # zero swaps: nothing in flight
        return InFlightComm(gen=gen, primed=primed)

    def forward_comm_field(self, atom: AtomVec, name: str) -> Iterator[None]:
        """Forward-communicate an arbitrary per-atom field (no shift).

        EAM forward-communicates derivative terms between the density and
        force loops (figure 1's "additional communication").
        """
        if metrics.SINKS:
            metrics.inc("halo_exchanges_total", kind="forward_field")
        self._check_sendlists(atom)
        arr = getattr(atom, name)
        for k, swap in enumerate(self.swaps):
            self.comm.send(swap.send_to, arr[swap.sendlist].copy(), ("fwdf", name, k))
            yield
            incoming = self.comm.recv(swap.recv_from, ("fwdf", name, k))
            arr[swap.firstrecv : swap.firstrecv + swap.nrecv] = incoming

    def forward_comm_fields(self, atom: AtomVec, names: tuple[str, ...]) -> Iterator[None]:
        """Forward-communicate several scalar per-atom fields, packed.

        The fields ride one column-stacked buffer per swap — one message
        where :meth:`forward_comm_field` would send ``len(names)``.  QEq
        exchanges both CG direction vectors every iteration; packing them
        halves its comm rounds per iteration, and the ledger accounts the
        single wider message automatically (payload ``nbytes``).
        """
        if metrics.SINKS:
            metrics.inc("halo_exchanges_total", kind="forward_fields")
        self._check_sendlists(atom)
        names = tuple(names)
        arrs = [getattr(atom, name) for name in names]
        for k, swap in enumerate(self.swaps):
            buf = np.column_stack([arr[swap.sendlist] for arr in arrs])
            self.comm.send(swap.send_to, buf, ("fwdfs", names, k))
            yield
            incoming = self.comm.recv(swap.recv_from, ("fwdfs", names, k))
            for col, arr in enumerate(arrs):
                arr[swap.firstrecv : swap.firstrecv + swap.nrecv] = incoming[:, col]

    # --------------------------------------------------------- reverse comm
    def reverse_comm(self, atom: AtomVec, name: str = "f") -> Iterator[None]:
        """Accumulate ghost contributions back to their owners.

        Runs the swaps in reverse so contributions that landed on a ghost of
        a ghost retrace both hops (exactly LAMMPS's reverse pass).
        """
        if metrics.SINKS:
            metrics.inc("halo_exchanges_total", kind="reverse")
        self._check_sendlists(atom)
        arr = getattr(atom, name)
        for k, swap in reversed(list(enumerate(self.swaps))):
            buf = arr[swap.firstrecv : swap.firstrecv + swap.nrecv].copy()
            self.comm.send(swap.recv_from, buf, ("rev", name, k))
            yield
            incoming = self.comm.recv(swap.send_to, ("rev", name, k))
            if swap.sendlist.size:
                np.add.at(arr, swap.sendlist, incoming)

    # ------------------------------------------------------------ migration
    def exchange(self, atom: AtomVec, wrap) -> Iterator[None]:
        """Send owned atoms to their current owners (one phase).

        ``wrap`` maps positions into the primary periodic box first, so
        owners are computed on canonical coordinates.
        """
        if metrics.SINKS:
            metrics.inc("halo_exchanges_total", kind="exchange")
        atom.clear_ghosts()
        n = atom.nlocal
        atom.x[:n] = wrap(atom.x[:n])
        owners = self.decomp.owner_of(atom.x[:n])
        fields = {
            "x": atom.x[:n],
            "v": atom.v[:n],
            "type": atom.type[:n],
            "tag": atom.tag[:n],
            "q": atom.q[:n],
        }
        custom = {name: arr[:n] for name, arr in sorted(atom.custom.items())}
        for dest in range(self.comm.size):
            sel = owners == dest
            payload = {k: v[sel].copy() for k, v in fields.items()}
            payload["custom"] = {k: v[sel].copy() for k, v in custom.items()}
            self.comm.send(dest, payload, "exchange")
        yield
        parts = [self.comm.recv(src, "exchange") for src in range(self.comm.size)]
        # union of custom fields across senders: a peer may have registered a
        # field this rank has not seen yet (and vice versa); missing rows are
        # zero-filled so every field stays aligned with its atoms
        custom_names = sorted({name for p in parts for name in p["custom"]})
        custom_in: dict[str, np.ndarray] | None = None
        if custom_names:
            custom_in = {}
            for name in custom_names:
                proto = next(p["custom"][name] for p in parts if name in p["custom"])
                custom_in[name] = np.concatenate([
                    p["custom"].get(
                        name,
                        np.zeros(
                            (p["x"].shape[0], proto.shape[1]), dtype=proto.dtype
                        ),
                    )
                    for p in parts
                ])
        atom.replace_local(
            x=np.concatenate([p["x"] for p in parts]),
            v=np.concatenate([p["v"] for p in parts]),
            types=np.concatenate([p["type"] for p in parts]),
            tags=np.concatenate([p["tag"] for p in parts]),
            q=np.concatenate([p["q"] for p in parts]),
            custom=custom_in,
        )
