"""Additional fix styles: thermostats and force modifiers.

These round out the style catalogue the way LAMMPS's core distribution
does.  Thermostats that need a temperature use the *rank-local* kinetic
temperature: exact in single-rank runs; in multi-rank runs each subdomain
thermostats itself (the difference vanishes statistically, but multi-rank
trajectories will not be bit-identical to single-rank ones when these
fixes are active — unlike the deterministic fixes, which are).
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InputError
from repro.core.fixes import Fix
from repro.core.styles import register_fix


def _local_temperature(lmp, mask: np.ndarray) -> float:
    atom = lmp.atom
    units = lmp.update.units
    m = atom.masses_of()[mask]
    v = atom.v[: atom.nlocal][mask]
    n = int(mask.sum())
    if n == 0:
        return 0.0
    dof = max(3.0 * n - 3.0, 1.0)
    msq = float(np.dot(m, np.einsum("ij,ij->i", v, v)))
    return units.mvv2e * msq / (dof * units.boltz)


@register_fix("nvt")
class FixNVT(Fix):
    """Nosé-Hoover thermostat + velocity Verlet (single chain).

    ``fix ID group nvt temp Tstart Tstop Tdamp``.  The thermostat variable
    integrates ``d(eta_dot)/dt = (T/T_target - 1) / Tdamp^2`` and scales
    velocities by ``exp(-eta_dot dt/2)`` around each Verlet half-kick —
    LAMMPS's operator splitting with a chain length of one.
    """

    def __init__(self, lmp, fix_id, group, args) -> None:
        super().__init__(lmp, fix_id, group, args)
        if len(args) != 4 or args[0] != "temp":
            raise InputError("fix nvt expects: temp Tstart Tstop Tdamp")
        self.t_start = float(args[1])
        self.t_stop = float(args[2])
        self.t_damp = float(args[3])
        if self.t_damp <= 0 or self.t_start < 0 or self.t_stop < 0:
            raise InputError("fix nvt: temperatures >= 0, Tdamp > 0 required")
        self.eta_dot = 0.0
        self.run_start = 0
        self.run_length = 1

    def init(self) -> None:
        self.run_start = self.lmp.update.ntimestep

    def _target(self) -> float:
        frac = min(
            max((self.lmp.update.ntimestep - self.run_start) / max(self.run_length, 1), 0.0),
            1.0,
        )
        return self.t_start + (self.t_stop - self.t_start) * frac

    def _thermo_half(self) -> None:
        lmp = self.lmp
        mask = self.group_mask()
        dt2 = 0.5 * lmp.update.dt
        t_cur = _local_temperature(lmp, mask)
        target = max(self._target(), 1e-30)
        self.eta_dot += dt2 * (t_cur / target - 1.0) / self.t_damp**2
        lmp.atom.v[: lmp.atom.nlocal][mask] *= np.exp(-self.eta_dot * dt2)

    def _half_kick(self, mask) -> None:
        atom = self.lmp.atom
        dtf = 0.5 * self.lmp.update.dt * self.lmp.update.units.ftm2v
        m = atom.masses_of()
        atom.v[: atom.nlocal][mask] += dtf * atom.f[: atom.nlocal][mask] / m[mask, None]

    def initial_integrate(self) -> None:
        atom = self.lmp.atom
        mask = self.group_mask()
        self._thermo_half()
        self._half_kick(mask)
        atom.x[: atom.nlocal][mask] += self.lmp.update.dt * atom.v[: atom.nlocal][mask]

    def final_integrate(self) -> None:
        mask = self.group_mask()
        self._half_kick(mask)
        self._thermo_half()


@register_fix("temp/rescale")
class FixTempRescale(Fix):
    """Hard velocity rescale toward a target every N steps.

    ``fix ID group temp/rescale N Tstart Tstop window fraction``.
    """

    def __init__(self, lmp, fix_id, group, args) -> None:
        super().__init__(lmp, fix_id, group, args)
        if len(args) != 5:
            raise InputError(
                "fix temp/rescale expects: N Tstart Tstop window fraction"
            )
        self.every = int(args[0])
        self.t_start = float(args[1])
        self.t_stop = float(args[2])
        self.window = float(args[3])
        self.fraction = float(args[4])
        if self.every < 1 or not 0.0 <= self.fraction <= 1.0:
            raise InputError("fix temp/rescale: N >= 1 and fraction in [0, 1]")

    def end_of_step(self) -> None:
        lmp = self.lmp
        if lmp.update.ntimestep % self.every:
            return
        mask = self.group_mask()
        t_cur = _local_temperature(lmp, mask)
        target = self.t_stop  # constant-target form of the ramp
        if t_cur <= 0 or abs(t_cur - target) <= self.window:
            return
        t_new = t_cur + self.fraction * (target - t_cur)
        lmp.atom.v[: lmp.atom.nlocal][mask] *= np.sqrt(t_new / t_cur)


@register_fix("addforce")
class FixAddForce(Fix):
    """Add a constant force to every atom in the group each step."""

    def __init__(self, lmp, fix_id, group, args) -> None:
        super().__init__(lmp, fix_id, group, args)
        if len(args) != 3:
            raise InputError("fix addforce expects: fx fy fz")
        self.force = np.array([float(a) for a in args])

    def post_force(self) -> None:
        atom = self.lmp.atom
        atom.f[: atom.nlocal][self.group_mask()] += self.force


@register_fix("viscous")
class FixViscous(Fix):
    """Viscous damping: ``F -= gamma v`` (energy drain, e.g. for quenches)."""

    def __init__(self, lmp, fix_id, group, args) -> None:
        super().__init__(lmp, fix_id, group, args)
        if len(args) != 1:
            raise InputError("fix viscous expects: gamma")
        self.gamma = float(args[0])
        if self.gamma < 0:
            raise InputError("fix viscous: gamma must be >= 0")

    def post_force(self) -> None:
        atom = self.lmp.atom
        mask = self.group_mask()
        atom.f[: atom.nlocal][mask] -= self.gamma * atom.v[: atom.nlocal][mask]


@register_fix("spring/self")
class FixSpringSelf(Fix):
    """Tether every group atom to its position at fix creation."""

    def __init__(self, lmp, fix_id, group, args) -> None:
        super().__init__(lmp, fix_id, group, args)
        if len(args) != 1:
            raise InputError("fix spring/self expects: k")
        self.k = float(args[0])
        if self.k < 0:
            raise InputError("fix spring/self: k must be >= 0")
        atom = lmp.require_box()
        #: anchors keyed by tag, robust to migration/reordering
        self.anchors = {
            int(t): atom.x[i].copy()
            for i, t in enumerate(atom.tag[: atom.nlocal])
        }

    def post_force(self) -> None:
        atom = self.lmp.atom
        mask = self.group_mask()
        idx = np.flatnonzero(mask)
        if not idx.size:
            return
        tags = atom.tag[idx]
        anchors = np.array([self.anchors[int(t)] for t in tags])
        dx = self.lmp.domain.minimum_image(atom.x[idx] - anchors)
        atom.f[idx] -= self.k * dx
