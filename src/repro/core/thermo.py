"""Thermodynamic output (LAMMPS's ``thermo`` machinery).

Collects local partial sums from the backing computes, reduces them through
the lockstep allreduce protocol, and emits one table row per interval.
History is retained so tests and benchmarks can assert on trajectories
(energy conservation, temperature ramps) without scraping stdout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np


@dataclass
class ThermoRecord:
    step: int
    #: column -> value; floats except the autotuner's "tune" label column
    values: dict[str, float | str]

    def __getitem__(self, key: str) -> float | str:
        return self.values[key]


@dataclass
class Thermo:
    lmp: "object"
    every: int = 100
    columns: tuple[str, ...] = ("temp", "pe", "ke", "etotal", "press")
    #: Normalize extensive quantities per atom (LAMMPS default in lj units).
    normalize: bool = False
    history: list[ThermoRecord] = field(default_factory=list)
    quiet: bool = False
    _header_done: bool = False

    def should_output(self, step: int, force: bool = False) -> bool:
        return force or (self.every > 0 and step % self.every == 0)

    def output_gen(self, force: bool = False) -> Iterator[None]:
        """Emit one row (generator: yields at the allreduce)."""
        lmp = self.lmp
        step = lmp.update.ntimestep
        if not self.should_output(step, force):
            return
        needed = {"temp", "pe", "ke"}
        if "press" in self.columns:
            needed.add("pressure")
        partials: dict[str, np.ndarray] = {}
        for cid in sorted(needed):
            comp = lmp.internal_compute(cid)
            lmp.world.reduce_contribute(("thermo", step, cid), comp.local_partials())
        yield
        for cid in sorted(needed):
            comp = lmp.internal_compute(cid)
            reduced = np.atleast_1d(
                lmp.world.reduce_result(("thermo", step, cid))
            )
            partials[cid] = reduced
        temp = lmp.internal_compute("temp").finalize(partials["temp"])
        pe = lmp.internal_compute("pe").finalize(partials["pe"])
        ke = lmp.internal_compute("ke").finalize(partials["ke"])
        natoms = max(lmp.natoms_total, 1)
        values = {
            "temp": temp,
            "pe": pe / natoms if self.normalize else pe,
            "ke": ke / natoms if self.normalize else ke,
        }
        values["etotal"] = values["pe"] + values["ke"]
        if "press" in self.columns:
            values["press"] = lmp.internal_compute("pressure").finalize(
                partials["pressure"]
            )
        if "tune" in self.columns:
            # the autotuner's locked-in config label (a string column)
            values["tune"] = lmp.tune_label or "-"
        self.history.append(ThermoRecord(step=step, values=values))
        if lmp.comm_rank == 0 and not self.quiet:
            self._print_row(step, values)

    def _print_row(self, step: int, values: dict[str, float]) -> None:
        if not self._header_done:
            print("Step " + " ".join(f"{c:>14}" for c in self.columns))
            self._header_done = True
        cells = " ".join(
            f"{v:>14}" if isinstance(v, str) else f"{v:>14.6g}"
            for v in (values.get(c, float("nan")) for c in self.columns)
        )
        print(f"{step:>4d} {cells}")

    def reset(self) -> None:
        self.history.clear()
        self._header_done = False
