"""Fix styles: operations invoked at fixed points in each timestep.

Paper section 2.2: fixes "are called at arbitrary points and intervals
during the simulation to either modify the trajectory of the simulation or
generate output".  The integrator calls the hook methods in LAMMPS's
canonical order: ``initial_integrate`` (before communication and forces),
``post_force`` (after forces), ``final_integrate``, ``end_of_step``.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InputError
from repro.core.styles import register_fix


class Fix:
    """Base fix.  Subclasses override the hooks they need."""

    style_name = "fix"

    def __init__(self, lmp, fix_id: str, group: str, args: list[str]) -> None:
        self.lmp = lmp
        self.id = fix_id
        self.group = group

    # hooks -----------------------------------------------------------------
    def init(self) -> None:
        """Called once at run setup."""

    def initial_integrate(self) -> None:
        pass

    def post_force(self) -> None:
        pass

    def final_integrate(self) -> None:
        pass

    def end_of_step(self) -> None:
        pass

    # helpers ---------------------------------------------------------------
    def group_mask(self) -> np.ndarray:
        """Boolean mask of owned atoms in this fix's group."""
        return self.lmp.group_mask(self.group)


@register_fix("nve")
class FixNVE(Fix):
    """Velocity-Verlet integration (microcanonical ensemble).

    The two half-kicks plus drift exactly match LAMMPS's ``fix nve``:
    ``v += dt/2 * f/m * ftm2v``, ``x += dt*v``, then after new forces
    another half-kick.
    """

    def _half_kick(self) -> None:
        atom = self.lmp.atom
        mask = self.group_mask()
        dtf = 0.5 * self.lmp.update.dt * self.lmp.update.units.ftm2v
        m = atom.masses_of()
        atom.v[: atom.nlocal][mask] += (
            dtf * atom.f[: atom.nlocal][mask] / m[mask, None]
        )

    def initial_integrate(self) -> None:
        atom = self.lmp.atom
        mask = self.group_mask()
        self._half_kick()
        atom.x[: atom.nlocal][mask] += self.lmp.update.dt * atom.v[: atom.nlocal][mask]

    def final_integrate(self) -> None:
        self._half_kick()


@register_fix("nve/limit")
class FixNVELimit(FixNVE):
    """NVE with per-step displacement cap (for violent initial overlaps)."""

    def __init__(self, lmp, fix_id, group, args) -> None:
        super().__init__(lmp, fix_id, group, args)
        if len(args) != 1:
            raise InputError("fix nve/limit expects: xmax")
        self.xmax = float(args[0])
        if self.xmax <= 0:
            raise InputError("fix nve/limit xmax must be positive")

    def initial_integrate(self) -> None:
        atom = self.lmp.atom
        mask = self.group_mask()
        self._half_kick()
        dx = self.lmp.update.dt * atom.v[: atom.nlocal][mask]
        norm = np.linalg.norm(dx, axis=1)
        scale = np.minimum(1.0, self.xmax / np.maximum(norm, 1e-300))
        atom.x[: atom.nlocal][mask] += dx * scale[:, None]


@register_fix("langevin")
class FixLangevin(Fix):
    """Langevin thermostat: friction + Gaussian random forces.

    ``fix ID group langevin Tstart Tstop damp seed``.  Applied in
    ``post_force`` like LAMMPS; combine with ``fix nve`` for Langevin
    dynamics.
    """

    def __init__(self, lmp, fix_id, group, args) -> None:
        super().__init__(lmp, fix_id, group, args)
        if len(args) != 4:
            raise InputError("fix langevin expects: Tstart Tstop damp seed")
        self.t_start = float(args[0])
        self.t_stop = float(args[1])
        self.damp = float(args[2])
        if self.damp <= 0:
            raise InputError("fix langevin damp must be positive")
        self.rng = np.random.default_rng(int(args[3]) + lmp.comm_rank)
        self.run_start = 0
        self.run_length = 1

    def init(self) -> None:
        self.run_start = self.lmp.update.ntimestep

    def current_target(self) -> float:
        """Linear ramp from Tstart to Tstop over the current run."""
        frac = (self.lmp.update.ntimestep - self.run_start) / max(self.run_length, 1)
        frac = min(max(frac, 0.0), 1.0)
        return self.t_start + (self.t_stop - self.t_start) * frac

    def post_force(self) -> None:
        atom = self.lmp.atom
        units = self.lmp.update.units
        mask = self.group_mask()
        n = int(mask.sum())
        if not n:
            return
        m = atom.masses_of()[mask][:, None]
        v = atom.v[: atom.nlocal][mask]
        target = self.current_target()
        gamma1 = -m / self.damp / units.ftm2v
        sigma = np.sqrt(
            2.0 * units.boltz * target * m / (self.damp * self.lmp.update.dt)
        ) / np.sqrt(units.ftm2v)
        noise = self.rng.standard_normal((n, 3))
        atom.f[: atom.nlocal][mask] += gamma1 * v + sigma * noise


@register_fix("setforce")
class FixSetForce(Fix):
    """Clamp force components (``NULL`` leaves a component untouched)."""

    def __init__(self, lmp, fix_id, group, args) -> None:
        super().__init__(lmp, fix_id, group, args)
        if len(args) != 3:
            raise InputError("fix setforce expects: fx fy fz (or NULL)")
        self.values = [None if a.upper() == "NULL" else float(a) for a in args]

    def post_force(self) -> None:
        atom = self.lmp.atom
        mask = self.group_mask()
        for d, val in enumerate(self.values):
            if val is not None:
                atom.f[: atom.nlocal, d][mask] = val


@register_fix("momentum")
class FixMomentum(Fix):
    """Zero the group's linear momentum every N steps."""

    def __init__(self, lmp, fix_id, group, args) -> None:
        super().__init__(lmp, fix_id, group, args)
        if len(args) < 1:
            raise InputError("fix momentum expects: N [linear]")
        self.every = int(args[0])
        if self.every < 1:
            raise InputError("fix momentum N must be >= 1")

    def end_of_step(self) -> None:
        if self.lmp.update.ntimestep % self.every:
            return
        atom = self.lmp.atom
        mask = self.group_mask()
        m = atom.masses_of()[mask]
        if not m.size:
            return
        v = atom.v[: atom.nlocal][mask]
        vcm = (m[:, None] * v).sum(axis=0) / m.sum()
        atom.v[: atom.nlocal][mask] -= vcm
