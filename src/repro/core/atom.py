"""Per-rank atom storage (LAMMPS's ``Atom``/``AtomVec``).

Arrays are structure-of-arrays NumPy (positions, velocities, forces, types,
charges, global tags) sized ``nlocal + nghost``: owned atoms first, then the
ghost shell received from neighboring ranks / periodic images.  Global atom
tags are 64-bit from the start — LAMMPS's ``bigint`` exascale-preparedness
lesson (appendix B) applied preemptively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import LammpsError

#: Fields communicated for ghost atoms at border time.
BORDER_FIELDS = ("x", "tag", "type", "q")
#: Fields a forward communication refreshes each step.
FORWARD_FIELDS = ("x",)


class AtomVec:
    """Structure-of-arrays atom container for one rank."""

    #: dtype per field; tags are bigint (appendix B), types never exceed
    #: 32 bits, per-atom reals are double precision throughout (the paper's
    #: kernels are FP64).
    FIELD_DTYPES = {
        "x": np.float64,
        "v": np.float64,
        "f": np.float64,
        "q": np.float64,
        # EAM scratch: electron density and embedding derivative, which is
        # forward-communicated between the two force loops (figure 1).
        "rho": np.float64,
        "fp": np.float64,
        "tag": np.int64,
        "type": np.int32,
    }
    VECTOR_FIELDS = ("x", "v", "f")

    def __init__(self, ntypes: int = 1) -> None:
        if ntypes < 1:
            raise LammpsError("ntypes must be >= 1")
        self.ntypes = ntypes
        self.nlocal = 0
        self.nghost = 0
        #: per-type masses, 1-indexed like LAMMPS (index 0 unused).
        self.mass = np.ones(ntypes + 1)
        self._capacity = 0
        self.x = np.zeros((0, 3))
        self.v = np.zeros((0, 3))
        self.f = np.zeros((0, 3))
        self.q = np.zeros(0)
        self.rho = np.zeros(0)
        self.fp = np.zeros(0)
        self.tag = np.zeros(0, dtype=np.int64)
        self.type = np.zeros(0, dtype=np.int32)
        #: bumped on every reallocation so aliases (AtomKokkos) can refresh.
        self.generation = 0
        #: bumped on every spatial reorder of the owned atoms; index-keyed
        #: consumers (comm sendlists, minimizer velocity state) compare this
        #: to detect that their cached indices went stale.
        self.reorder_generation = 0
        #: the permutation applied by the most recent :meth:`reorder_local`
        #: (``new[k] = old[perm[k]]``), for consumers that can remap.
        self.last_reorder_perm: np.ndarray | None = None
        #: registered custom per-atom fields (name -> ``(capacity, width)``
        #: array).  Custom fields are owned-atom state that participates in
        #: :meth:`grow`, :meth:`reorder_local`, and :meth:`replace_local`
        #: (they migrate with their atoms through ``exchange``); they are
        #: never border/forward-communicated, so ghost rows stay zero.
        self.custom: dict[str, np.ndarray] = {}

    # ------------------------------------------------------- custom fields
    def add_custom(
        self, name: str, width: int, dtype: np.dtype | type = np.float64
    ) -> np.ndarray:
        """Register a per-atom custom field; idempotent per name.

        Returns the backing array, but callers must re-fetch through
        ``self.custom[name]`` after any :meth:`grow` — reallocation replaces
        the array (exactly like the built-in fields and their aliases).
        """
        arr = self.custom.get(name)
        if arr is not None:
            if arr.shape[1] != width or arr.dtype != np.dtype(dtype):
                raise LammpsError(
                    f"custom field {name!r} re-registered with different "
                    f"shape/dtype ({arr.shape[1]}/{arr.dtype} vs {width}/"
                    f"{np.dtype(dtype)})"
                )
            return arr
        if width < 1:
            raise LammpsError(f"custom field {name!r} needs width >= 1")
        arr = np.zeros((self._capacity, width), dtype=dtype)
        self.custom[name] = arr
        return arr

    # ------------------------------------------------------------- sizing
    @property
    def nall(self) -> int:
        """Owned + ghost atoms."""
        return self.nlocal + self.nghost

    def grow(self, nmin: int) -> None:
        """Ensure capacity for ``nmin`` atoms (amortized doubling)."""
        if nmin <= self._capacity:
            return
        new_cap = max(nmin, max(16, self._capacity * 2))
        for name in self.FIELD_DTYPES:
            old = getattr(self, name)
            shape = (new_cap, 3) if name in self.VECTOR_FIELDS else (new_cap,)
            new = np.zeros(shape, dtype=self.FIELD_DTYPES[name])
            new[: old.shape[0]] = old
            setattr(self, name, new)
        for name, old in self.custom.items():
            new = np.zeros((new_cap, old.shape[1]), dtype=old.dtype)
            new[: old.shape[0]] = old
            self.custom[name] = new
        self._capacity = new_cap
        self.generation += 1

    # ------------------------------------------------------------ insertion
    def add_local(
        self,
        x: np.ndarray,
        types: np.ndarray | int = 1,
        tags: np.ndarray | None = None,
    ) -> None:
        """Append owned atoms (ghosts must not exist yet)."""
        if self.nghost:
            raise LammpsError("cannot add local atoms while ghosts exist")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        n = x.shape[0]
        start = self.nlocal
        self.grow(start + n)
        self.x[start : start + n] = x
        if np.isscalar(types):
            self.type[start : start + n] = int(types)
        else:
            types = np.asarray(types)
            if types.shape != (n,):
                raise LammpsError(f"types shape {types.shape} != ({n},)")
            if types.min() < 1 or types.max() > self.ntypes:
                raise LammpsError(
                    f"atom types must be in [1, {self.ntypes}]"
                )
            self.type[start : start + n] = types
        if tags is None:
            self.tag[start : start + n] = np.arange(start + 1, start + n + 1)
        else:
            self.tag[start : start + n] = np.asarray(tags, dtype=np.int64)
        self.nlocal += n

    def replace_local(
        self,
        x: np.ndarray,
        v: np.ndarray,
        types: np.ndarray,
        tags: np.ndarray,
        q: np.ndarray | None = None,
        custom: dict[str, np.ndarray] | None = None,
    ) -> None:
        """Overwrite the owned set wholesale (atom migration).

        ``custom`` carries per-atom custom-field rows alongside the base
        fields (each value ``(n, width)``, row k belonging to atom k);
        fields arriving from a peer that this rank has not registered yet
        are registered on the fly, and registered fields absent from the
        payload are zeroed — migrated atoms must never inherit a previous
        occupant's rows.
        """
        n = x.shape[0]
        self.nghost = 0
        self.nlocal = 0
        self.grow(n)
        self.x[:n] = x
        self.v[:n] = v
        self.type[:n] = types
        self.tag[:n] = tags
        self.q[:n] = q if q is not None else 0.0
        for arr in self.custom.values():
            arr[:n] = 0
        for name, rows in (custom or {}).items():
            dst = self.add_custom(name, rows.shape[1], rows.dtype)
            dst[:n] = rows
        self.nlocal = n

    # ------------------------------------------------------------ reordering
    def reorder_local(self, perm: np.ndarray) -> None:
        """Permute the owned atoms in place (``atom_modify sort``).

        ``perm`` maps new slots to old (``new[k] = old[perm[k]]``).  Must run
        while no ghosts exist — between ``exchange`` and ``borders`` — so
        ghost indices and comm sendlists are rebuilt against the new order by
        construction rather than remapped.  The permutation is applied
        in place so AtomKokkos dual views (which alias these arrays) stay
        valid.
        """
        if self.nghost:
            raise LammpsError("cannot reorder atoms while ghosts exist")
        n = self.nlocal
        if perm.shape != (n,):
            raise LammpsError(f"reorder perm shape {perm.shape} != ({n},)")
        for name in self.FIELD_DTYPES:
            arr = getattr(self, name)
            arr[:n] = arr[:n][perm]
        for arr in self.custom.values():
            arr[:n] = arr[:n][perm]
        self.reorder_generation += 1
        self.last_reorder_perm = perm

    def delete_local(self, keep: np.ndarray) -> int:
        """Compact the owned atoms down to ``keep`` (bool mask or indices).

        Survivors keep their relative order; every per-atom field — built-in
        *and* registered custom — is compacted together, so custom rows stay
        attached to their atoms (the replica engine retires completed
        replicas this way).  Must run while no ghosts exist, like
        :meth:`reorder_local`, and bumps ``reorder_generation`` for the same
        reason: cached indices into the owned range went stale.  Returns the
        new ``nlocal``.
        """
        if self.nghost:
            raise LammpsError("cannot delete local atoms while ghosts exist")
        n = self.nlocal
        keep = np.asarray(keep)
        if keep.dtype == bool:
            if keep.shape != (n,):
                raise LammpsError(f"delete mask shape {keep.shape} != ({n},)")
            idx = np.flatnonzero(keep)
        else:
            idx = keep
        nkeep = idx.shape[0]
        for name in self.FIELD_DTYPES:
            arr = getattr(self, name)
            arr[:nkeep] = arr[:n][idx]
        for arr in self.custom.values():
            arr[:nkeep] = arr[:n][idx]
        self.nlocal = nkeep
        self.reorder_generation += 1
        self.last_reorder_perm = None
        return nkeep

    # -------------------------------------------------------------- ghosts
    def clear_ghosts(self) -> None:
        self.nghost = 0

    def add_ghosts(self, fields: dict[str, np.ndarray]) -> None:
        """Append ghost atoms from unpacked border buffers."""
        n = fields["x"].shape[0]
        start = self.nall
        self.grow(start + n)
        for name, arr in fields.items():
            getattr(self, name)[start : start + n] = arr
        self.nghost += n

    # -------------------------------------------------------------- physics
    def masses_of(self, first: int = 0, last: int | None = None) -> np.ndarray:
        """Per-atom masses for a slice (resolved through the type table)."""
        last = self.nlocal if last is None else last
        return self.mass[self.type[first:last]]

    def zero_forces(self) -> None:
        self.f[: self.nall] = 0.0

    def kinetic_energy(self, mvv2e: float) -> float:
        """Kinetic energy of owned atoms."""
        m = self.masses_of()
        vsq = np.einsum("ij,ij->i", self.v[: self.nlocal], self.v[: self.nlocal])
        return 0.5 * mvv2e * float(np.dot(m, vsq))
