"""Data files and trajectory dumps (``read_data`` / ``write_data`` / ``dump``).

Paper section 2.1 names ``read_data`` as the canonical immediate command —
"reading an atomic structure from a file".  The format here is the LAMMPS
data-file dialect restricted to what the engine models: header counts,
orthogonal box bounds, ``Masses``, ``Atoms`` (``atomic`` or ``charge``
style), and ``Velocities``.

Trajectory output follows ``dump custom``: a LAMMPS-format dump file with a
selectable column list, written every N steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import InputError


# --------------------------------------------------------------- data files
def write_data(lmp, path: str) -> None:
    """Write the current (single-rank) state as a LAMMPS data file."""
    if lmp.comm_size != 1:
        raise InputError(
            "write_data gathers global state; use Ensemble.write_data for "
            "multi-rank runs"
        )
    atom = lmp.require_box()
    n = atom.nlocal
    order = np.argsort(atom.tag[:n])
    lo, hi = lmp.domain.boxlo, lmp.domain.boxhi
    has_charge = bool(np.any(atom.q[:n] != 0.0))
    style = "charge" if has_charge else "atomic"
    with open(path, "w") as fh:
        fh.write(f"LAMMPS data file via repro, units {lmp.update.units.name}\n\n")
        fh.write(f"{n} atoms\n{atom.ntypes} atom types\n\n")
        fh.write(f"{lo[0]:.10g} {hi[0]:.10g} xlo xhi\n")
        fh.write(f"{lo[1]:.10g} {hi[1]:.10g} ylo yhi\n")
        fh.write(f"{lo[2]:.10g} {hi[2]:.10g} zlo zhi\n\n")
        fh.write("Masses\n\n")
        for t in range(1, atom.ntypes + 1):
            fh.write(f"{t} {atom.mass[t]:.10g}\n")
        fh.write(f"\nAtoms # {style}\n\n")
        for k in order:
            tag, typ = atom.tag[k], atom.type[k]
            x, y, z = atom.x[k]
            if has_charge:
                fh.write(f"{tag} {typ} {atom.q[k]:.10g} {x:.10g} {y:.10g} {z:.10g}\n")
            else:
                fh.write(f"{tag} {typ} {x:.10g} {y:.10g} {z:.10g}\n")
        fh.write("\nVelocities\n\n")
        for k in order:
            vx, vy, vz = atom.v[k]
            fh.write(f"{atom.tag[k]} {vx:.10g} {vy:.10g} {vz:.10g}\n")


@dataclass
class DataFile:
    """Parsed contents of a LAMMPS data file."""

    natoms: int
    ntypes: int
    boxlo: np.ndarray
    boxhi: np.ndarray
    masses: np.ndarray  # (ntypes + 1,)
    tags: np.ndarray
    types: np.ndarray
    x: np.ndarray
    q: np.ndarray
    v: np.ndarray


def parse_data(path: str) -> DataFile:
    """Parse the supported data-file subset with diagnostics on malformation."""
    with open(path) as fh:
        raw = fh.read().splitlines()
    lines = [ln.split("#", 1)[0].rstrip() for ln in raw]

    natoms = ntypes = None
    boxlo = np.zeros(3)
    boxhi = np.ones(3)
    k = 1  # skip the title line
    sections: dict[str, list[str]] = {}
    current: str | None = None
    for ln in lines[1:]:
        s = ln.strip()
        if not s:
            continue
        toks = s.split()
        if s.endswith("atoms") and len(toks) == 2:
            natoms = int(toks[0])
        elif s.endswith("atom types"):
            ntypes = int(toks[0])
        elif len(toks) == 4 and toks[2] in ("xlo", "ylo", "zlo"):
            d = "xyz".index(toks[2][0])
            boxlo[d], boxhi[d] = float(toks[0]), float(toks[1])
        elif toks[0] in ("Masses", "Atoms", "Velocities"):
            current = toks[0]
            sections[current] = []
        elif current is not None:
            sections[current].append(s)
        else:
            raise InputError(f"data file: unrecognized header line {s!r}")

    if natoms is None or ntypes is None:
        raise InputError("data file: missing 'atoms' or 'atom types' header")
    if "Atoms" not in sections:
        raise InputError("data file: no Atoms section")

    masses = np.ones(ntypes + 1)
    for s in sections.get("Masses", []):
        toks = s.split()
        t = int(toks[0])
        if not 1 <= t <= ntypes:
            raise InputError(f"data file: mass for type {t} out of range")
        masses[t] = float(toks[1])

    rows = [s.split() for s in sections["Atoms"]]
    if len(rows) != natoms:
        raise InputError(
            f"data file: Atoms section has {len(rows)} rows, header says {natoms}"
        )
    width = len(rows[0])
    if width not in (5, 6):
        raise InputError("data file: Atoms rows must be 'id type [q] x y z'")
    arr = np.asarray(rows, dtype=float)
    tags = arr[:, 0].astype(np.int64)
    types = arr[:, 1].astype(np.int32)
    if types.min() < 1 or types.max() > ntypes:
        raise InputError("data file: atom type out of range")
    if width == 6:
        q = arr[:, 2]
        x = arr[:, 3:6]
    else:
        q = np.zeros(natoms)
        x = arr[:, 2:5]

    v = np.zeros((natoms, 3))
    if "Velocities" in sections:
        vrows = np.asarray([s.split() for s in sections["Velocities"]], dtype=float)
        idx = vrows[:, 0].astype(np.int64)
        order = np.argsort(tags)
        pos = order[np.searchsorted(tags[order], idx)]
        v[pos] = vrows[:, 1:4]

    return DataFile(
        natoms=natoms, ntypes=ntypes, boxlo=boxlo, boxhi=boxhi,
        masses=masses, tags=tags, types=types, x=x, q=q, v=v,
    )


def read_data(lmp, path: str) -> None:
    """Create the box and populate atoms from a data file."""
    data = parse_data(path)
    from repro.core.domain import BlockRegion

    lmp.create_box(data.ntypes, BlockRegion.create(data.boxlo, data.boxhi))
    atom = lmp.atom
    atom.mass[:] = data.masses
    # keep the file's tags: sort by tag, then owner-filter like create_atoms
    order = np.argsort(data.tags)
    x = lmp.domain.wrap(data.x[order])
    owners = lmp.decomp.owner_of(x)
    mine = owners == lmp.comm_rank
    atom.add_local(x[mine], types=data.types[order][mine], tags=data.tags[order][mine])
    sel = np.flatnonzero(mine)
    atom.q[: atom.nlocal] = data.q[order][sel]
    atom.v[: atom.nlocal] = data.v[order][sel]
    lmp.natoms_total += data.natoms


# --------------------------------------------------------------------- dumps
#: supported dump custom columns -> extractor(atom, mask)
_DUMP_COLUMNS = {
    "id": lambda a, m: a.tag[: a.nlocal][m],
    "type": lambda a, m: a.type[: a.nlocal][m],
    "x": lambda a, m: a.x[: a.nlocal, 0][m],
    "y": lambda a, m: a.x[: a.nlocal, 1][m],
    "z": lambda a, m: a.x[: a.nlocal, 2][m],
    "vx": lambda a, m: a.v[: a.nlocal, 0][m],
    "vy": lambda a, m: a.v[: a.nlocal, 1][m],
    "vz": lambda a, m: a.v[: a.nlocal, 2][m],
    "fx": lambda a, m: a.f[: a.nlocal, 0][m],
    "fy": lambda a, m: a.f[: a.nlocal, 1][m],
    "fz": lambda a, m: a.f[: a.nlocal, 2][m],
    "q": lambda a, m: a.q[: a.nlocal][m],
}


@dataclass
class Dump:
    """A ``dump ID group custom N file cols...`` writer."""

    lmp: object
    dump_id: str
    group: str
    every: int
    path: str
    columns: tuple[str, ...]
    frames_written: int = 0
    _fh: object = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.every < 1:
            raise InputError(f"dump {self.dump_id}: N must be >= 1")
        bad = [c for c in self.columns if c not in _DUMP_COLUMNS]
        if bad:
            raise InputError(
                f"dump {self.dump_id}: unknown columns {bad}; "
                f"known: {sorted(_DUMP_COLUMNS)}"
            )
        path = self.path
        if self.lmp.comm_size > 1:
            path = f"{path}.rank{self.lmp.comm_rank}"
        self._fh = open(path, "w")

    def maybe_write(self, force: bool = False) -> None:
        step = self.lmp.update.ntimestep
        if not force and step % self.every:
            return
        atom = self.lmp.atom
        mask = self.lmp.group_mask(self.group)
        n = int(mask.sum())
        lo, hi = self.lmp.domain.boxlo, self.lmp.domain.boxhi
        fh = self._fh
        fh.write("ITEM: TIMESTEP\n")
        fh.write(f"{step}\n")
        fh.write("ITEM: NUMBER OF ATOMS\n")
        fh.write(f"{n}\n")
        fh.write("ITEM: BOX BOUNDS pp pp pp\n")
        for d in range(3):
            fh.write(f"{lo[d]:.10g} {hi[d]:.10g}\n")
        fh.write("ITEM: ATOMS " + " ".join(self.columns) + "\n")
        cols = [_DUMP_COLUMNS[c](atom, mask) for c in self.columns]
        for row in zip(*cols):
            fh.write(
                " ".join(
                    str(int(v)) if np.issubdtype(type(v), np.integer) else f"{v:.8g}"
                    for v in row
                )
                + "\n"
            )
        fh.flush()
        self.frames_written += 1

    def close(self) -> None:
        if self._fh:
            self._fh.close()
            self._fh = None
