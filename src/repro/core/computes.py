"""Compute styles: diagnostics without state modification (section 2.2).

Computes report *local partial sums*; the thermo machinery performs the
global reduction, because in a multi-rank run reductions must pass through
the lockstep allreduce protocol.  Each compute declares how its partials
combine and how the combined value is normalized.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InputError
from repro.core.styles import register_compute


class Compute:
    """Base compute.

    ``local_partials()`` returns an array of local contributions; after the
    allreduce, ``finalize(global_partials)`` turns them into the scalar the
    user asked for.
    """

    style_name = "compute"
    #: Partial vector length.
    nparts = 1

    def __init__(self, lmp, compute_id: str, group: str, args: list[str]) -> None:
        self.lmp = lmp
        self.id = compute_id
        self.group = group

    def local_partials(self) -> np.ndarray:
        raise NotImplementedError

    def finalize(self, parts: np.ndarray) -> float:
        raise NotImplementedError


@register_compute("temp")
class ComputeTemp(Compute):
    """Kinetic temperature: ``sum(m v^2) / (dof * kB)`` with dof = 3N - 3."""

    nparts = 2  # [sum m v^2, count]

    def local_partials(self) -> np.ndarray:
        atom = self.lmp.atom
        mask = self.lmp.group_mask(self.group)
        m = atom.masses_of()[mask]
        v = atom.v[: atom.nlocal][mask]
        msq = float(np.dot(m, np.einsum("ij,ij->i", v, v)))
        return np.array([msq, float(mask.sum())])

    def finalize(self, parts: np.ndarray) -> float:
        units = self.lmp.update.units
        msq, count = parts
        dof = max(3.0 * count - 3.0, 1.0)
        return units.mvv2e * msq / (dof * units.boltz)


@register_compute("ke")
class ComputeKE(Compute):
    """Total kinetic energy of the group."""

    def local_partials(self) -> np.ndarray:
        atom = self.lmp.atom
        mask = self.lmp.group_mask(self.group)
        m = atom.masses_of()[mask]
        v = atom.v[: atom.nlocal][mask]
        units = self.lmp.update.units
        return np.array(
            [0.5 * units.mvv2e * float(np.dot(m, np.einsum("ij,ij->i", v, v)))]
        )

    def finalize(self, parts: np.ndarray) -> float:
        return float(parts[0])


@register_compute("pe")
class ComputePE(Compute):
    """Total potential energy (pair contribution)."""

    def local_partials(self) -> np.ndarray:
        pair = self.lmp.pair
        if pair is None:
            return np.zeros(1)
        total = pair.eng_vdwl + pair.eng_coul
        if self.lmp.kspace is not None:
            total += getattr(self.lmp.kspace, "energy_local", 0.0)
        return np.array([total])

    def finalize(self, parts: np.ndarray) -> float:
        return float(parts[0])


@register_compute("pressure")
class ComputePressure(Compute):
    """Virial pressure: ``(sum m v^2 + sum(r . f)) / (3 V)``."""

    nparts = 2  # [sum m v^2, trace of virial]

    def local_partials(self) -> np.ndarray:
        atom = self.lmp.atom
        units = self.lmp.update.units
        m = atom.masses_of()
        v = atom.v[: atom.nlocal]
        msq = units.mvv2e * float(np.dot(m, np.einsum("ij,ij->i", v, v)))
        pair = self.lmp.pair
        w = float(pair.virial[:3].sum()) if pair is not None else 0.0
        if self.lmp.kspace is not None:
            w += float(self.lmp.kspace.virial[:3].sum())
        return np.array([msq, w])

    def finalize(self, parts: np.ndarray) -> float:
        vol = self.lmp.domain.volume
        return (parts[0] + parts[1]) / (3.0 * vol)


@register_compute("com")
class ComputeCOM(Compute):
    """Center-of-mass (returns the norm as a scalar; vector via partials)."""

    nparts = 4  # [m*x, m*y, m*z, m]

    def local_partials(self) -> np.ndarray:
        atom = self.lmp.atom
        mask = self.lmp.group_mask(self.group)
        m = atom.masses_of()[mask]
        x = atom.x[: atom.nlocal][mask]
        out = np.empty(4)
        out[:3] = (m[:, None] * x).sum(axis=0)
        out[3] = m.sum()
        return out

    def finalize(self, parts: np.ndarray) -> float:
        if parts[3] <= 0:
            raise InputError(f"compute {self.id}: empty group {self.group!r}")
        return float(np.linalg.norm(parts[:3] / parts[3]))

    def vector(self, parts: np.ndarray) -> np.ndarray:
        return parts[:3] / parts[3]
