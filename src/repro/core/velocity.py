"""Velocity initialization (the ``velocity`` command).

Velocities are generated from a *global*, tag-indexed table so that results
are independent of the rank decomposition: every rank draws the same
Maxwell-Boltzmann sample for a given atom tag, then the table-level center
of mass is removed and the table is rescaled to the exact target
temperature.  Multi-rank and single-rank runs therefore start from
bit-identical states — the property the decomposition-equivalence tests
rely on.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InputError
from repro.core.units import UnitSystem


def maxwell_table(
    natoms: int,
    masses_by_tag: np.ndarray,
    temp: float,
    seed: int,
    units: UnitSystem,
) -> np.ndarray:
    """Global velocity table indexed by (tag - 1).

    Zero total momentum, exactly the requested temperature (with the
    3N - 3 center-of-mass degrees of freedom removed, as LAMMPS does).
    """
    if natoms < 1:
        raise InputError("velocity create with no atoms")
    if temp < 0:
        raise InputError("negative target temperature")
    rng = np.random.default_rng(seed)
    m = np.asarray(masses_by_tag, dtype=float)
    if m.shape != (natoms,):
        raise InputError(f"mass table shape {m.shape} != ({natoms},)")
    sigma = np.sqrt(units.boltz * temp / (m * units.mvv2e))
    v = rng.standard_normal((natoms, 3)) * sigma[:, None]
    # remove center-of-mass drift
    vcm = (m[:, None] * v).sum(axis=0) / m.sum()
    v -= vcm
    if temp > 0 and natoms > 1:
        msq = float(np.dot(m, np.einsum("ij,ij->i", v, v)))
        dof = 3.0 * natoms - 3.0
        current = units.mvv2e * msq / (dof * units.boltz)
        if current > 0:
            v *= np.sqrt(temp / current)
    return v
