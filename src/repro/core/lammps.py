"""The per-rank LAMMPS facade.

A :class:`Lammps` object is what one MPI rank holds in real LAMMPS: the
atom arrays for its subdomain, the domain/neighbor/communication machinery,
the active styles, and the input-script interpreter.  Single-rank scripts
drive it directly::

    lmp = Lammps(device="H100")
    lmp.commands_string(MELT_SCRIPT)
    lmp.run(100)

Multi-rank runs wrap several instances in an :class:`Ensemble`, which
broadcasts commands and advances the per-rank run generators in lockstep.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.atom import AtomVec
from repro.core.atom_kokkos import AtomKokkos
from repro.core.computes import Compute
from repro.core.domain import BlockRegion, Domain, Lattice
from repro.core.errors import InputError, LammpsError
from repro.core.integrate import Verlet
from repro.core.modify import Modify
from repro.core.bin_grid import BinGrid, spatial_sort_order
from repro.core.neighbor import (
    SHARED,
    Neighbor,
    build_neighbor_list,
    stencil_mode,
)
from repro.core.styles import resolve_style
from repro.core.thermo import Thermo
from repro.core.timer import CATEGORIES, PhaseTimer
from repro.core.update import Update
from repro.core.velocity import maxwell_table
from repro.core.comm_md import CommBrick
from repro.parallel.comm import SimComm, SimWorld
from repro.parallel.decomp import BrickDecomposition
from repro.parallel.driver import drain, lockstep
from repro.tools import registry as kp
import repro.kokkos as kk


class Lammps:
    """One rank's simulation state plus the command interpreter."""

    def __init__(
        self,
        device: str | None = "H100",
        *,
        world: SimWorld | None = None,
        rank: int = 0,
        suffix: str | None = None,
        quiet: bool = True,
    ) -> None:
        self.world = world or SimWorld(1)
        self.comm: SimComm = self.world.comm(rank)
        self.device = device
        if world is None or rank == 0:
            # The Kokkos runtime is process-global; first rank configures it.
            kk.initialize(device)
        self.suffix: str | None = suffix
        self.update = Update.create("lj")
        self.domain = Domain()
        self.atom: AtomVec | None = None
        self.atom_kk: AtomKokkos | None = None
        self.decomp: BrickDecomposition | None = None
        self.comm_brick: CommBrick | None = None
        self.neighbor = Neighbor(skin=self.update.units.skin)
        self.neigh_list = None
        #: Per-rebuild shared bin grid (largest cutoff); every list built
        #: for the same configuration reuses it instead of re-binning.
        self.bin_grid: BinGrid | None = None
        #: ``atom_modify sort <every> <binsize>``: reorder owned atoms into
        #: bin-major order every Nth rebuild (0 disables).  Default on, as
        #: in LAMMPS, for cache locality in every downstream gather.
        self.sort_every = 1
        self.sort_binsize = 0.0  # 0 -> use the ghost cutoff
        self.pair = None
        self.kspace = None
        self.modify = Modify()
        self.thermo = Thermo(self, quiet=quiet)
        #: Per-category modeled-time breakdown (the thermo "MPI task timing
        #: breakdown"); also opens observability regions per phase.
        self.timer = PhaseTimer(self.world)
        self.verlet = Verlet(self)
        self.lattice: Lattice | None = None
        self.regions: dict[str, BlockRegion] = {}
        self.groups: dict[str, tuple[str, tuple]] = {"all": ("all", ())}
        self.variables: dict[str, float | str] = {}
        self.dumps: dict[str, "object"] = {}
        self.newton_pair = True
        #: ``comm_modify overlap yes``: hide the per-step position halo
        #: behind the interior force pass (pair styles opt in via
        #: ``supports_overlap``; rebuild steps always run serially).
        self.overlap_comm = False
        #: Steps that actually took the overlapped force path this run.
        self.overlap_steps = 0
        self.min_style = "fire"
        self.last_minimize = None
        #: `package kokkos` tuning knobs (applied at pair init)
        self.package_kokkos: dict = {}
        #: Runtime autotuner (``package autotune on`` / ``--autotune``):
        #: either an Autotuner instance, or an option dict built lazily into
        #: one on the first run.  Fires once, before any timestep.
        self.autotuner = None
        self.autotune_request: dict | None = None
        #: Compact winning-config label (the thermo ``tune`` column).
        self.tune_label: str | None = None
        self.last_run_stats: dict = {}
        self.natoms_total = 0
        self._internal_computes: dict[str, Compute] = {}
        self._input = None  # created lazily to avoid import cycle

    # ----------------------------------------------------------- identity
    @property
    def comm_rank(self) -> int:
        return self.comm.rank

    @property
    def comm_size(self) -> int:
        return self.comm.size

    # -------------------------------------------------------------- input
    def command(self, line: str) -> None:
        """Execute one input-script command."""
        if self._input is None:
            from repro.core.input import Input

            self._input = Input(self)
        self._input.one(line)

    def commands_string(self, text: str) -> None:
        if self._input is None:
            from repro.core.input import Input

            self._input = Input(self)
        self._input.string(text)

    def file(self, path: str) -> None:
        with open(path) as fh:
            self.commands_string(fh.read())

    # --------------------------------------------------------------- box
    def create_box(self, ntypes: int, region: BlockRegion) -> None:
        if self.atom is not None:
            raise InputError("simulation box already exists")
        self.domain.set_box(region.lo, region.hi)
        self.atom = AtomVec(ntypes)
        # Always present: in a pure-host build the DualViews alias one
        # allocation and the sync machinery costs nothing (section 3.2),
        # so /kk styles keep working without a device.
        self.atom_kk = AtomKokkos(self.atom)
        self.decomp = BrickDecomposition.create(
            tuple(self.domain.boxlo), tuple(self.domain.boxhi), self.comm_size
        )

    def require_box(self) -> AtomVec:
        if self.atom is None:
            raise InputError("command requires a simulation box (create_box first)")
        return self.atom

    def create_atoms(self, atom_type: int, region: BlockRegion | None = None) -> None:
        """Fill the lattice within a region (or the whole box)."""
        atom = self.require_box()
        if self.lattice is None:
            raise InputError("create_atoms requires a lattice")
        if not 1 <= atom_type <= atom.ntypes:
            raise InputError(f"atom type {atom_type} out of range")
        region = region or BlockRegion.create(self.domain.boxlo, self.domain.boxhi)
        sites = self.lattice.positions_in_region(region)
        sites = sites[
            np.all(
                (sites >= self.domain.boxlo - 1e-12)
                & (sites < self.domain.boxhi - 1e-12),
                axis=1,
            )
        ]
        # Deterministic global ordering -> consistent tags on every rank.
        order = np.lexsort((sites[:, 0], sites[:, 1], sites[:, 2]))
        sites = sites[order]
        base_tag = self.natoms_total
        assert self.decomp is not None
        owners = self.decomp.owner_of(sites)
        mine = owners == self.comm_rank
        tags = base_tag + 1 + np.flatnonzero(mine)
        atom.add_local(sites[mine], types=atom_type, tags=tags)
        self.natoms_total += len(sites)

    def create_atoms_from_arrays(self, x: np.ndarray, types: np.ndarray) -> None:
        """Insert an explicit global configuration (workload generators).

        Every rank receives the same arrays; each keeps the atoms its
        subdomain owns.  Tags follow array order, so runs are
        decomposition-independent.
        """
        atom = self.require_box()
        x = self.domain.wrap(np.asarray(x, dtype=float))
        types = np.asarray(types, dtype=np.int32)
        if x.shape[0] != types.shape[0]:
            raise InputError("create_atoms_from_arrays: x/types length mismatch")
        assert self.decomp is not None
        owners = self.decomp.owner_of(x)
        mine = owners == self.comm_rank
        tags = self.natoms_total + 1 + np.flatnonzero(mine)
        atom.add_local(x[mine], types=types[mine], tags=tags)
        self.natoms_total += x.shape[0]

    def set_mass(self, atom_type: int, mass: float) -> None:
        atom = self.require_box()
        if not 1 <= atom_type <= atom.ntypes:
            raise InputError(f"mass: atom type {atom_type} out of range")
        if mass <= 0:
            raise InputError("mass must be positive")
        atom.mass[atom_type] = mass

    def velocity_create(self, temp: float, seed: int) -> None:
        atom = self.require_box()
        if self.natoms_total < 1:
            raise InputError("velocity create before create_atoms")
        # Global mass-by-tag table: ranks must agree, so gather type info
        # deterministically.  Tags are 1..natoms_total by construction.
        mass_by_tag = np.empty(self.natoms_total)
        contribution = np.zeros(self.natoms_total)
        contribution[atom.tag[: atom.nlocal] - 1] = atom.masses_of()
        if self.comm_size > 1:
            self.world.reduce_contribute(("velmass", seed), contribution)
            # Resolved by Ensemble lockstep; single-rank falls through.
            mass_by_tag = None  # type: ignore[assignment]
            self._pending_velocity = (temp, seed)
            return
        mass_by_tag[:] = contribution
        self._apply_velocity_table(temp, seed, mass_by_tag)

    def _apply_velocity_table(self, temp: float, seed: int, mass_by_tag: np.ndarray) -> None:
        atom = self.require_box()
        table = maxwell_table(
            self.natoms_total, mass_by_tag, temp, seed, self.update.units
        )
        atom.v[: atom.nlocal] = table[atom.tag[: atom.nlocal] - 1]

    def _finish_velocity(self) -> None:
        """Ensemble hook: complete a pending multi-rank velocity create."""
        pending = getattr(self, "_pending_velocity", None)
        if pending is None:
            return
        temp, seed = pending
        mass_by_tag = np.atleast_1d(self.world.reduce_result(("velmass", seed)))
        self._apply_velocity_table(temp, seed, mass_by_tag)
        del self._pending_velocity

    # ----------------------------------------------------------------- I/O
    def write_dumps(self, force: bool = False) -> None:
        for dump in self.dumps.values():
            dump.maybe_write(force=force)

    def set_charge(self, atom_type: int, q: float) -> None:
        """``set type <t> charge <q>`` (needed by charged pair styles)."""
        atom = self.require_box()
        if not 1 <= atom_type <= atom.ntypes:
            raise InputError(f"set: atom type {atom_type} out of range")
        sel = atom.type[: atom.nlocal] == atom_type
        atom.q[: atom.nlocal][sel] = q

    # -------------------------------------------------------------- groups
    def define_group(self, name: str, style: str, args: tuple) -> None:
        if style not in ("type", "region", "all"):
            raise InputError(f"unsupported group style {style!r}")
        self.groups[name] = (style, args)

    def group_mask(self, name: str) -> np.ndarray:
        atom = self.require_box()
        if name not in self.groups:
            raise InputError(f"unknown group {name!r}")
        style, args = self.groups[name]
        n = atom.nlocal
        if style == "all":
            return np.ones(n, dtype=bool)
        if style == "type":
            return np.isin(atom.type[:n], np.asarray(args, dtype=np.int32))
        region = self.regions[args[0]]
        return region.inside(atom.x[:n])

    # ------------------------------------------------------------- styles
    def set_pair_style(self, name: str, args: list[str]) -> None:
        cls, extra = resolve_style("pair", name, self.suffix)
        self.pair = cls(self, args, **extra)

    def add_fix(self, fix_id: str, group: str, style: str, args: list[str]) -> None:
        if group not in self.groups:
            raise InputError(f"fix {fix_id}: unknown group {group!r}")
        cls, extra = resolve_style("fix", style, self.suffix)
        self.modify.add_fix(cls(self, fix_id, group, args, **extra))

    def add_compute(self, cid: str, group: str, style: str, args: list[str]) -> None:
        cls, extra = resolve_style("compute", style, self.suffix)
        self.modify.add_compute(cls(self, cid, group, args, **extra))

    def internal_compute(self, cid: str) -> Compute:
        """Built-in computes backing thermo columns."""
        if cid not in self._internal_computes:
            cls, extra = resolve_style("compute", cid, None)
            self._internal_computes[cid] = cls(self, f"__{cid}", "all", [], **extra)
        return self._internal_computes[cid]

    # ------------------------------------------------------ kokkos datamask
    def _kokkos_active(self) -> bool:
        return self.atom_kk is not None and getattr(self.pair, "kokkos_style", False)

    def mark_host_writes(self, *fields: str) -> None:
        """Record that host-side code wrote per-atom fields (section 3.2).

        No-op unless a Kokkos style is active — in pure host runs the
        DualView machinery must cost nothing, as in the paper.
        """
        if self._kokkos_active():
            from repro.kokkos.core import Host

            self.atom_kk.modified(Host, fields)

    def sync_host_fields(self, *fields: str) -> None:
        """Make per-atom fields current on the host (for plain styles/fixes)."""
        if self._kokkos_active():
            from repro.kokkos.core import Host

            self.atom_kk.sync(Host, fields)

    # ---------------------------------------------------------- neighboring
    def _maybe_sort_atoms(self, binsize: float) -> bool:
        """Spatially sort owned atoms (``atom_modify sort``), if due.

        Runs between ``exchange`` (no ghosts exist) and ``borders`` (ghost
        indices and comm sendlists are recorded against the new order), so
        no remapping of ghosts or swaps is ever needed.
        """
        atom = self.require_box()
        if (
            self.sort_every <= 0
            or stencil_mode() != SHARED
            or atom.nlocal == 0
            or self.neighbor.builds % self.sort_every
        ):
            return False
        size = self.sort_binsize if self.sort_binsize > 0.0 else binsize
        perm = spatial_sort_order(atom.x[: atom.nlocal], size)
        if np.array_equal(perm, np.arange(atom.nlocal)):
            return False
        atom.reorder_local(perm)
        self.mark_host_writes(*AtomVec.FIELD_DTYPES)
        return True

    def rebuild_gen(self) -> Iterator[None]:
        """Migrate -> sort -> borders -> shared bin grid -> neighbor build."""
        atom = self.require_box()
        if self.pair is None:
            raise LammpsError("neighbor rebuild requires a pair style")
        cutghost = self.pair.max_cutoff() + self.neighbor.skin
        if self.comm_brick is None or self.comm_brick.cutghost != cutghost:
            assert self.decomp is not None
            self.comm_brick = CommBrick(self.comm, self.decomp, cutghost)
        with self.timer.phase("Comm"):
            yield from self.comm_brick.exchange(atom, self.domain.wrap)
        with self.timer.phase("Neigh"):
            sorted_atoms = self._maybe_sort_atoms(cutghost)
        with self.timer.phase("Comm"):
            yield from self.comm_brick.borders(atom, self.domain.periodic)
        with self.timer.phase("Neigh"):
            # One bin grid per rebuild, at the largest requested cutoff: the
            # pair list below and any multi-cutoff consumer this step (ReaxFF
            # bond list, species analysis) share it instead of re-binning.
            if stencil_mode() == SHARED:
                # half-cutoff bins (LAMMPS's choice): shorter-cutoff consumers
                # get proportionally tighter stencils from the same grid
                self.bin_grid = BinGrid(
                    atom.x[: atom.nall], atom.nlocal, 0.5 * cutghost
                )
            else:
                self.bin_grid = None
            style, newton = self.pair.neighbor_request()
            self.neigh_list = build_neighbor_list(
                atom.x[: atom.nall],
                atom.nlocal,
                cutghost,  # force cutoff + skin, LAMMPS's Verlet-list radius
                style=style,
                newton=newton,
                grid=self.bin_grid,
            )
            self.neighbor.record_build(self.update.ntimestep, atom.x[: atom.nlocal])
            if self._kokkos_active():
                # A GPU-resident run builds the bin/neighbor structures on the
                # device; charge each stage so strong-scaling tails see it.
                import repro.kokkos as kk
                from repro.hardware.cost import neighbor_build_profiles

                for profile in neighbor_build_profiles(
                    pairs=self.neigh_list.total_pairs,
                    nall=atom.nall,
                    nlocal=atom.nlocal,
                    binned=self.bin_grid is not None or stencil_mode() != SHARED,
                    sorted_atoms=sorted_atoms,
                ):
                    kk.parallel_for(
                        profile.name,
                        kk.RangePolicy(
                            self.pair.execution_space,
                            0,
                            int(profile.parallel_items),
                        ),
                        lambda idx: None,
                        profile=profile,
                    )

    def count_atoms_gen(self) -> Iterator[None]:
        atom = self.require_box()
        key = ("natoms", self.update.ntimestep, id(self.world))
        with self.timer.phase("Comm"):
            self.world.reduce_contribute(key, float(atom.nlocal))
            yield
            self.natoms_total = int(round(self.world.reduce_result(key)))

    # ----------------------------------------------------------------- run
    def run(self, nsteps: int) -> None:
        """Advance the simulation (single-rank convenience)."""
        if self.comm_size != 1:
            raise LammpsError("multi-rank runs must go through Ensemble.run")
        import time

        # before the clocks start, so search probes don't count as run time
        _maybe_autotune(self)
        ctx = kk.device_context()
        sim0 = ctx.timeline.total()
        comm0 = self.world.ledger.total()
        wall0 = time.perf_counter()
        self.overlap_steps = 0
        self.timer.reset()
        drain(self.verlet.run_gen(nsteps))
        self.world.assert_drained()
        self.last_run_stats = {
            "wall": time.perf_counter() - wall0,
            "simulated_device": ctx.timeline.total() - sim0,
            "modeled_comm": self.world.ledger.total() - comm0,
            "steps": nsteps,
            "overlap_steps": self.overlap_steps,
            "neighbor_builds": self.neighbor.builds,
            "ave_neighs": (
                self.neigh_list.mean_neighbors if self.neigh_list else 0.0
            ),
            "max_neighs": self.neigh_list.maxneigh if self.neigh_list else 0,
            "breakdown": dict(self.timer.timers),
        }
        if not self.thermo.quiet and nsteps > 0:
            self._print_run_summary()

    def _print_run_summary(self) -> None:
        """LAMMPS-style loop summary plus the simulated-hardware ledger."""
        s = self.last_run_stats
        natoms = max(self.natoms_total, 1)
        print(
            f"Loop time of {s['wall']:.4g} s on {self.comm_size} simulated "
            f"rank(s) for {s['steps']} steps with {natoms} atoms"
        )
        if s["simulated_device"] > 0:
            rate = natoms * s["steps"] / s["simulated_device"]
            print(
                f"Simulated device time: {s['simulated_device']:.4g} s "
                f"({rate:.3e} atom-steps/s on the modeled hardware)"
            )
        if s["modeled_comm"] > 0:
            print(f"Modeled communication time: {s['modeled_comm']:.4g} s")
        breakdown = s.get("breakdown", {})
        total = sum(breakdown.values())
        if total > 0:
            # the LAMMPS "MPI task timing breakdown", in modeled seconds
            print("Timing breakdown (modeled):")
            for cat in CATEGORIES:
                seconds = breakdown.get(cat, 0.0)
                if seconds > 0:
                    print(f"  {cat:<7s} {seconds:>12.6g} s ({100 * seconds / total:5.1f}%)")
        if self.neigh_list is not None:
            # LAMMPS's post-loop neighbor line; max_neighs is the padded-row
            # width a fixed-capacity engine must not overflow
            print(
                f"Ave neighs/atom = {s['ave_neighs']:.5g}, "
                f"max neighs = {s['max_neighs']}"
            )
            print(f"Neighbor list builds = {s['neighbor_builds']}")

    def minimize(self, etol: float, ftol: float, maxiter: int) -> "object":
        """Relax the configuration; returns a MinimizeResult."""
        if self.comm_size != 1:
            raise LammpsError("multi-rank minimization goes through Ensemble")
        from repro.core.minimize import Minimizer

        drain(Minimizer(self, self.min_style).minimize_gen(etol, ftol, maxiter))
        self.world.assert_drained()
        return self.last_minimize


def _maybe_autotune(target) -> None:
    """Run the attached autotuner once, before the first timestep.

    ``target`` is a Lammps instance or an Ensemble.  A pending option dict
    (``package autotune on``) is built into an Autotuner lazily here so the
    command itself needs no tune-package import.
    """
    tuner = getattr(target, "autotuner", None)
    ranks = target.ranks if hasattr(target, "ranks") else [target]
    if tuner is None and ranks[0].autotune_request is not None:
        from repro.tune import Autotuner

        tuner = target.autotuner = Autotuner(**ranks[0].autotune_request)
        for lmp in ranks:
            lmp.autotune_request = None
    if tuner is None or tuner.tuned:
        return
    tuner.tune(target)


class Ensemble:
    """N-rank simulation: broadcasts commands, runs ranks in lockstep."""

    def __init__(
        self,
        nranks: int,
        device: str | None = "H100",
        *,
        network: str = "loopback",
        ranks_per_node: int = 1,
        suffix: str | None = None,
        quiet: bool = True,
        overlap_comm: bool = False,
    ) -> None:
        self.world = SimWorld(nranks, network=network, ranks_per_node=ranks_per_node)
        self.ranks = [
            Lammps(device, world=self.world, rank=r, suffix=suffix, quiet=quiet)
            for r in range(nranks)
        ]
        for lmp in self.ranks:
            lmp.overlap_comm = overlap_comm
        # only the root rank speaks, as in MPI runs
        for lmp in self.ranks[1:]:
            lmp.thermo.quiet = True
        #: Runtime autotuner for the whole ensemble (see Lammps.autotuner);
        #: a per-rank ``package autotune`` request is adopted at first run.
        self.autotuner = None

    def command(self, line: str) -> None:
        tokens = line.split("#", 1)[0].split()
        if tokens and tokens[0] == "run":
            # Runs must be driven in lockstep across ranks, not per rank.
            self.run(int(tokens[1]))
            return
        if tokens and tokens[0] == "minimize":
            self.minimize(float(tokens[1]), float(tokens[2]), int(tokens[3]))
            return
        for lmp in self.ranks:
            if kp.TOOLS:
                kp.set_rank(lmp.comm_rank)
            lmp.command(line)
        if kp.TOOLS:
            kp.set_rank(0)
        self._resolve_collectives()

    def commands_string(self, text: str) -> None:
        for line in text.splitlines():
            stripped = line.split("#", 1)[0].strip()
            if stripped:
                self.command(stripped)

    def _resolve_collectives(self) -> None:
        for lmp in self.ranks:
            lmp._finish_velocity()

    def run(self, nsteps: int) -> None:
        _maybe_autotune(self)
        for lmp in self.ranks:
            lmp.overlap_steps = 0
            lmp.timer.reset()
        lockstep([lmp.verlet.run_gen(nsteps) for lmp in self.ranks])
        self.world.assert_drained()
        for lmp in self.ranks:
            # Per-rank breakdowns are approximate under lockstep (ranks
            # share the modeled clocks and interleave mid-phase).
            lmp.last_run_stats = {
                "steps": nsteps,
                "overlap_steps": lmp.overlap_steps,
                "breakdown": dict(lmp.timer.timers),
            }

    def minimize(self, etol: float, ftol: float, maxiter: int) -> "object":
        from repro.core.minimize import Minimizer

        lockstep(
            [
                Minimizer(lmp, lmp.min_style).minimize_gen(etol, ftol, maxiter)
                for lmp in self.ranks
            ]
        )
        self.world.assert_drained()
        return self.ranks[0].last_minimize

    def write_data(self, path: str) -> None:
        """Gather all ranks' atoms and write one data file."""
        from repro.core.io import write_data

        gathered = Lammps(device=None)
        first = self.ranks[0]
        from repro.core.domain import BlockRegion

        gathered.create_box(
            first.atom.ntypes,
            BlockRegion.create(first.domain.boxlo, first.domain.boxhi),
        )
        gathered.atom.mass[:] = first.atom.mass
        n = first.natoms_total
        x = np.zeros((n, 3))
        v = np.zeros((n, 3))
        q = np.zeros(n)
        types = np.ones(n, dtype=np.int32)
        for lmp in self.ranks:
            atom = lmp.atom
            sel = atom.tag[: atom.nlocal] - 1
            x[sel] = atom.x[: atom.nlocal]
            v[sel] = atom.v[: atom.nlocal]
            q[sel] = atom.q[: atom.nlocal]
            types[sel] = atom.type[: atom.nlocal]
        gathered.atom.add_local(x, types=types, tags=np.arange(1, n + 1))
        gathered.atom.v[:n] = v
        gathered.atom.q[:n] = q
        gathered.natoms_total = n
        write_data(gathered, path)

    def gather_positions(self) -> np.ndarray:
        """Global position array ordered by tag (test/diagnostic helper)."""
        n = self.ranks[0].natoms_total
        out = np.zeros((n, 3))
        for lmp in self.ranks:
            atom = lmp.atom
            assert atom is not None
            out[atom.tag[: atom.nlocal] - 1] = atom.x[: atom.nlocal]
        return out

    def gather_forces(self) -> np.ndarray:
        n = self.ranks[0].natoms_total
        out = np.zeros((n, 3))
        for lmp in self.ranks:
            atom = lmp.atom
            assert atom is not None
            out[atom.tag[: atom.nlocal] - 1] = atom.f[: atom.nlocal]
        return out


class ReplicaSet:
    """R independent copies of one script, advanced through batched kernels.

    The Ensemble-compatible driver entry for the replica engine
    (:mod:`repro.replica`): ``command``/``commands_string`` broadcast setup
    commands to every replica, and ``run N`` packs all of them into one
    :class:`~repro.replica.batch.ReplicaBatch` — one vectorized
    force/integrate/comm stream over R-times-longer arrays — instead of R
    sequential solo runs.  Per-replica trajectories and thermo histories
    (``set.replicas[k].thermo.history``) are bitwise identical to solo runs.

    Each replica sees an equal-style ``replica`` variable holding its index,
    so scripts can decorrelate per-replica state::

        velocity all create 1.44 8728${replica}

    Only single-rank batchable workloads qualify (host ``lj/cut``/``eam/fs``,
    ``fix all nve``, no dumps/kspace); ``run`` raises otherwise.  Use
    :class:`Ensemble` to scale one simulation across ranks; use a ReplicaSet
    to scale *many small simulations* onto one set of kernels.
    """

    def __init__(
        self,
        nreplicas: int,
        device: str | None = None,
        *,
        suffix: str | None = None,
        quiet: bool = False,
        label: str = "replica",
    ) -> None:
        if nreplicas < 1:
            raise LammpsError("a ReplicaSet needs at least one replica")
        self.replicas = [
            Lammps(device, suffix=suffix, quiet=quiet) for _ in range(nreplicas)
        ]
        for i, lmp in enumerate(self.replicas):
            # set directly (not via `variable ... equal`) so ${replica}
            # substitutes as the bare integer, splice-friendly in seeds
            lmp.variables["replica"] = i
        # only replica 0 speaks, like the root rank of an Ensemble
        for lmp in self.replicas[1:]:
            lmp.thermo.quiet = True
        self.label = label
        #: the batch driving the most recent ``run`` (perf introspection)
        self.last_batch = None

    def command(self, line: str) -> None:
        tokens = line.split("#", 1)[0].split()
        if tokens and tokens[0] == "run":
            self.run(int(tokens[1]))
            return
        if tokens and tokens[0] == "minimize":
            raise LammpsError(
                "replica sets cannot minimize; minimize solo, then batch the runs"
            )
        for lmp in self.replicas:
            lmp.command(line)
        for lmp in self.replicas:
            lmp._finish_velocity()

    def commands_string(self, text: str) -> None:
        for line in text.splitlines():
            stripped = line.split("#", 1)[0].strip()
            if stripped:
                self.command(stripped)

    def run(self, nsteps: int):
        """Advance every replica ``nsteps`` through one ReplicaBatch.

        Builds a fresh batch each call — ``add_replica`` performs exactly
        the setup a solo ``run`` would (including the forced step-0 thermo
        row), so interleaving setup commands between runs stays faithful.
        Returns the batch.
        """
        from repro.replica import ReplicaBatch

        batch = ReplicaBatch(label=self.label)
        for lmp in self.replicas:
            batch.add_replica(lmp)
        batch.step(nsteps)
        batch.finish()
        if batch.failures:
            rid, exc = batch.failures[0]
            raise LammpsError(
                f"replica {rid} failed during the batched run: {exc}"
            ) from exc
        self.last_batch = batch
        return batch
