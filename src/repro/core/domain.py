"""Simulation box, periodic boundary handling, regions, and lattices.

Orthogonal boxes only (the paper's benchmarks are all orthogonal).  The
domain owns the global box; per-rank subdomains come from
:class:`repro.parallel.decomp.BrickDecomposition`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import DomainError


@dataclass
class Domain:
    """The global orthogonal periodic box."""

    boxlo: np.ndarray = field(default_factory=lambda: np.zeros(3))
    boxhi: np.ndarray = field(default_factory=lambda: np.ones(3))
    periodic: tuple[bool, bool, bool] = (True, True, True)
    defined: bool = False

    def set_box(self, boxlo, boxhi, periodic=(True, True, True)) -> None:
        boxlo = np.asarray(boxlo, dtype=float)
        boxhi = np.asarray(boxhi, dtype=float)
        if boxlo.shape != (3,) or boxhi.shape != (3,):
            raise DomainError("box corners must be 3-vectors")
        if np.any(boxhi <= boxlo):
            raise DomainError(f"degenerate box: lo={boxlo}, hi={boxhi}")
        self.boxlo = boxlo
        self.boxhi = boxhi
        self.periodic = tuple(bool(p) for p in periodic)
        self.defined = True

    @property
    def lengths(self) -> np.ndarray:
        return self.boxhi - self.boxlo

    @property
    def volume(self) -> float:
        return float(np.prod(self.lengths))

    def wrap(self, x: np.ndarray) -> np.ndarray:
        """Remap positions into the primary box along periodic dimensions."""
        x = np.array(x, dtype=float, copy=True)
        for d in range(3):
            if self.periodic[d]:
                span = self.lengths[d]
                x[:, d] = self.boxlo[d] + np.mod(x[:, d] - self.boxlo[d], span)
        return x

    def minimum_image(self, dx: np.ndarray) -> np.ndarray:
        """Apply the minimum-image convention to displacement vectors."""
        dx = np.array(dx, dtype=float, copy=True)
        for d in range(3):
            if self.periodic[d]:
                span = self.lengths[d]
                dx[..., d] -= span * np.round(dx[..., d] / span)
        return dx


@dataclass(frozen=True)
class BlockRegion:
    """Axis-aligned block region (the ``region ... block`` command)."""

    lo: np.ndarray
    hi: np.ndarray

    @classmethod
    def create(cls, lo, hi) -> "BlockRegion":
        lo = np.asarray(lo, dtype=float)
        hi = np.asarray(hi, dtype=float)
        if np.any(hi <= lo):
            raise DomainError(f"degenerate region: lo={lo}, hi={hi}")
        return cls(lo, hi)

    def inside(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        return np.all((x >= self.lo) & (x < self.hi), axis=-1)


#: Basis vectors (fractions of the unit cell) for the supported lattices.
LATTICE_BASES: dict[str, np.ndarray] = {
    "sc": np.array([[0.0, 0.0, 0.0]]),
    "bcc": np.array([[0.0, 0.0, 0.0], [0.5, 0.5, 0.5]]),
    "fcc": np.array(
        [
            [0.0, 0.0, 0.0],
            [0.5, 0.5, 0.0],
            [0.5, 0.0, 0.5],
            [0.0, 0.5, 0.5],
        ]
    ),
}


@dataclass(frozen=True)
class Lattice:
    """A Bravais lattice with a cubic unit cell of edge ``a``.

    In ``lj`` units the lattice is specified by reduced density (LAMMPS
    convention): ``a = (basis_count / density) ** (1/3)``.
    """

    style: str
    a: float

    @classmethod
    def create(cls, style: str, scale: float, lj_units: bool) -> "Lattice":
        if style not in LATTICE_BASES:
            raise DomainError(
                f"unknown lattice {style!r}; known: {', '.join(sorted(LATTICE_BASES))}"
            )
        if scale <= 0:
            raise DomainError("lattice scale must be positive")
        if lj_units:
            nbasis = len(LATTICE_BASES[style])
            a = (nbasis / scale) ** (1.0 / 3.0)
        else:
            a = scale
        return cls(style=style, a=a)

    @property
    def basis(self) -> np.ndarray:
        return LATTICE_BASES[self.style]

    def positions_in_region(self, region: BlockRegion) -> np.ndarray:
        """All lattice sites inside a block region (vectorized fill)."""
        lo_cell = np.floor(region.lo / self.a).astype(int) - 1
        hi_cell = np.ceil(region.hi / self.a).astype(int) + 1
        axes = [np.arange(lo_cell[d], hi_cell[d]) for d in range(3)]
        ii, jj, kk = np.meshgrid(*axes, indexing="ij")
        cells = np.stack([ii.ravel(), jj.ravel(), kk.ravel()], axis=1).astype(float)
        sites = (cells[:, None, :] + self.basis[None, :, :]).reshape(-1, 3) * self.a
        return sites[region.inside(sites)]
