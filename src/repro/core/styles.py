"""Style registries and accelerator-suffix resolution (paper sections 2-3).

LAMMPS maps input-script command names to C++ classes through registries
populated by macros in each style's header.  Accelerator packages register
*replacement* styles under the same name plus a package suffix (``/kk`` for
KOKKOS), and a global ``suffix`` setting makes the parser try the suffixed
name first — so ``pair_style lj/cut`` silently becomes ``lj/cut/kk`` when
the user asked for Kokkos acceleration, without losing access to styles that
have no accelerated variant (section 3.1).

``/kk`` is an alias of ``/kk/device``; ``/kk/host`` requests the host
instantiation of the same Kokkos style (section 3.3's dual-instantiation).
"""

from __future__ import annotations

from typing import Callable, TypeVar

from repro.core.errors import StyleError

T = TypeVar("T", bound=type)

PAIR_STYLES: dict[str, type] = {}
FIX_STYLES: dict[str, type] = {}
COMPUTE_STYLES: dict[str, type] = {}

_REGISTRIES = {
    "pair": PAIR_STYLES,
    "fix": FIX_STYLES,
    "compute": COMPUTE_STYLES,
}


def _register(registry: dict[str, type], name: str) -> Callable[[T], T]:
    def deco(cls: T) -> T:
        if name in registry:
            raise StyleError(f"duplicate style registration: {name!r}")
        registry[name] = cls
        cls.style_name = name  # type: ignore[attr-defined]
        return cls

    return deco


def register_pair(name: str) -> Callable[[T], T]:
    """Class decorator registering a pair style (the LAMMPS macro analogue)."""
    return _register(PAIR_STYLES, name)


def register_fix(name: str) -> Callable[[T], T]:
    return _register(FIX_STYLES, name)


def register_compute(name: str) -> Callable[[T], T]:
    return _register(COMPUTE_STYLES, name)


def resolve_style(
    category: str, name: str, suffix: str | None
) -> tuple[type, dict]:
    """Resolve a style name, honoring the active suffix.

    Returns ``(cls, extra_kwargs)``.  ``/kk/host`` resolves to the ``/kk``
    registration with ``execution_space="host"`` passed through, mirroring
    the dual-instantiation of Kokkos styles.
    """
    registry = _REGISTRIES.get(category)
    if registry is None:
        raise StyleError(f"unknown style category {category!r}")

    candidates: list[tuple[str, dict]] = []
    if name.endswith("/kk/host"):
        candidates.append((name[: -len("/host")], {"execution_space": "host"}))
    elif name.endswith("/kk/device"):
        candidates.append((name[: -len("/device")], {}))
    elif suffix:
        if suffix == "kk/host":
            candidates.append((f"{name}/kk", {"execution_space": "host"}))
        else:
            candidates.append((f"{name}/{suffix}", {}))
    candidates.append((name, {}))

    for candidate, extra in candidates:
        cls = registry.get(candidate)
        if cls is not None:
            return cls, extra
    known = ", ".join(sorted(registry)) or "(none registered)"
    raise StyleError(f"unknown {category} style {name!r}; known: {known}")
