"""Unit systems (LAMMPS ``units`` command).

Three of LAMMPS's unit styles, enough for the paper's three case studies:

* ``lj``    — reduced units; the Lennard-Jones melt benchmark.
* ``metal`` — Å / ps / eV / g·mol⁻¹; EAM and SNAP benchmarks.
* ``real``  — Å / fs / kcal·mol⁻¹ / g·mol⁻¹; the ReaxFF HNS benchmark.

Constants follow LAMMPS's ``update.cpp`` values.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class UnitSystem:
    name: str
    #: Boltzmann constant in energy units per K.
    boltz: float
    #: Converts mass * velocity^2 to energy units.
    mvv2e: float
    #: Coulomb constant: energy = qqr2e * q1 * q2 / r.
    qqr2e: float
    #: Default timestep in time units.
    dt: float
    #: Default neighbor skin in length units.
    skin: float

    @property
    def ftm2v(self) -> float:
        """Converts force/mass to velocity change per time unit."""
        return 1.0 / self.mvv2e


UNIT_SYSTEMS: dict[str, UnitSystem] = {
    "lj": UnitSystem(name="lj", boltz=1.0, mvv2e=1.0, qqr2e=1.0, dt=0.005, skin=0.3),
    "metal": UnitSystem(
        name="metal",
        boltz=8.617333262e-5,
        mvv2e=1.0364269e-4,
        qqr2e=14.399645,
        dt=0.001,
        skin=2.0,
    ),
    "real": UnitSystem(
        name="real",
        boltz=0.0019872067,
        mvv2e=2390.0573615334906,  # (g/mol)(A/fs)^2 -> kcal/mol (48.88821291^2)
        qqr2e=332.06371,
        dt=1.0,
        skin=2.0,
    ),
}


def get_units(name: str) -> UnitSystem:
    if name not in UNIT_SYSTEMS:
        raise KeyError(
            f"unknown units {name!r}; available: {', '.join(sorted(UNIT_SYSTEMS))}"
        )
    return UNIT_SYSTEMS[name]
