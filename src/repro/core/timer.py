"""Per-category phase timer for the thermo timing breakdown.

Real LAMMPS prints a post-loop "MPI task timing breakdown" crediting
simulated work to Pair / Kspace / Neigh / Comm / Modify / Output.  Here the
"time" a phase consumes is modeled time: the kernel seconds in the device
timeline (:class:`repro.hardware.cost.DeviceTimeline`) plus the modeled
communication seconds in the world ledger
(:class:`repro.parallel.comm.CommLedger`).  Both keep O(1) running totals
(``cum_seconds``) exactly so this timer can snapshot the combined clock at
every phase boundary without walking the ledgers.

Phases never nest across categories: the run loop enters one category,
exits it, then enters the next.  That invariant keeps this breakdown in
exact agreement with the observability layer's space-time-stack, which
attributes by *top-level* region — the reconciliation test in
``tests/test_tools_observability.py`` holds both to it.  Sub-detail inside
a category (e.g. the interior/boundary split of an overlapped force pass)
uses plain tool regions, not timer phases.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.tools import registry as kp

#: The thermo breakdown categories, in LAMMPS's print order.
CATEGORIES = ("Pair", "Kspace", "Neigh", "Comm", "Modify", "Output")


class PhaseTimer:
    """Attributes modeled seconds to the category active when they accrue."""

    def __init__(self, world) -> None:
        self.world = world
        self.timers: dict[str, float] = {c: 0.0 for c in CATEGORIES}
        self._stack: list[str] = []
        self._mark = 0.0

    # ------------------------------------------------------------- clock
    def _now(self) -> float:
        """Combined modeled clock: device kernel time + modeled comm time."""
        from repro.kokkos.core import device_context

        return device_context().timeline.cum_seconds + self.world.ledger.cum_seconds

    def _credit(self) -> None:
        """Charge the segment since the last boundary to the current phase."""
        now = self._now()
        if self._stack:
            self.timers[self._stack[-1]] += now - self._mark
        self._mark = now

    # ------------------------------------------------------------ phases
    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Scope modeled time to ``name``; also opens a matching tool region.

        Nesting is allowed only for re-entering the *same* category (inner
        scopes are then no-ops for attribution); see the module docstring
        for why cross-category nesting is forbidden.
        """
        if name not in self.timers:
            raise ValueError(f"unknown phase {name!r}; expected one of {CATEGORIES}")
        if self._stack and self._stack[-1] != name:
            raise RuntimeError(
                f"phase {name!r} opened inside {self._stack[-1]!r}: categories "
                "must be sequential or the breakdown diverges from the "
                "space-time-stack (see repro/core/timer.py docstring)"
            )
        self._credit()
        self._stack.append(name)
        if kp.TOOLS:
            kp.push_region(name)
        try:
            yield
        finally:
            self._credit()
            self._stack.pop()
            if kp.TOOLS:
                kp.pop_region()

    # ------------------------------------------------------------ totals
    def total(self) -> float:
        return sum(self.timers.values())

    def reset(self) -> None:
        self.timers = {c: 0.0 for c in CATEGORIES}
        self._stack.clear()
        self._mark = self._now()
