"""Input-script interpreter (paper section 2.1).

Commands are dispatched through a name -> method map, the Python analogue of
LAMMPS's command -> class-factory registry.  Immediate commands execute on
the spot; persistent commands (``fix``, ``compute``, ``pair_style``) create
style instances stored on the :class:`~repro.core.lammps.Lammps` object and
invoked during subsequent runs — the two command kinds section 2.1
distinguishes.

Supported sugar: ``#`` comments, ``&`` line continuations, ``${name}``
variable substitution, and ``variable <name> equal <expr>`` with arithmetic
expressions.
"""

from __future__ import annotations

import ast
import operator
import re

from repro.core.domain import BlockRegion, Lattice
from repro.core.errors import InputError

_BINOPS = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.Pow: operator.pow,
    ast.Mod: operator.mod,
    ast.FloorDiv: operator.floordiv,
}
_UNOPS = {ast.USub: operator.neg, ast.UAdd: operator.pos}


def safe_eval(expr: str) -> float:
    """Arithmetic-only expression evaluation for ``variable equal``."""

    def ev(node: ast.AST) -> float:
        if isinstance(node, ast.Expression):
            return ev(node.body)
        if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
            return float(node.value)
        if isinstance(node, ast.BinOp) and type(node.op) in _BINOPS:
            return _BINOPS[type(node.op)](ev(node.left), ev(node.right))
        if isinstance(node, ast.UnaryOp) and type(node.op) in _UNOPS:
            return _UNOPS[type(node.op)](ev(node.operand))
        raise InputError(f"unsupported expression element: {ast.dump(node)}")

    try:
        tree = ast.parse(expr, mode="eval")
    except SyntaxError as exc:
        raise InputError(f"cannot parse expression {expr!r}") from exc
    return ev(tree)


class Input:
    """Tokenizer + dispatcher bound to one Lammps instance."""

    def __init__(self, lmp) -> None:
        self.lmp = lmp

    # ------------------------------------------------------------ plumbing
    def string(self, text: str) -> None:
        pending = ""
        for raw in text.splitlines():
            line = raw.split("#", 1)[0].rstrip()
            if line.endswith("&"):
                pending += line[:-1] + " "
                continue
            line = (pending + line).strip()
            pending = ""
            if line:
                self.one(line)
        if pending.strip():
            self.one(pending.strip())

    def one(self, line: str) -> None:
        line = self._substitute(line.split("#", 1)[0].strip())
        if not line:
            return
        tokens = line.split()
        cmd, args = tokens[0], tokens[1:]
        handler = getattr(self, f"cmd_{cmd}", None)
        if handler is None:
            raise InputError(f"unknown command {cmd!r}")
        handler(args)

    def _substitute(self, line: str) -> str:
        def repl(match: re.Match) -> str:
            name = match.group(1)
            if name not in self.lmp.variables:
                raise InputError(f"undefined variable ${{{name}}}")
            return str(self.lmp.variables[name])

        return re.sub(r"\$\{(\w+)\}", repl, line)

    @staticmethod
    def _need(args: list[str], n: int, usage: str) -> None:
        if len(args) < n:
            raise InputError(f"usage: {usage}")

    # ------------------------------------------------------ global settings
    def cmd_units(self, args: list[str]) -> None:
        self._need(args, 1, "units <lj|metal|real>")
        self.lmp.update.set_units(args[0])
        self.lmp.neighbor.skin = self.lmp.update.units.skin

    def cmd_dimension(self, args: list[str]) -> None:
        self._need(args, 1, "dimension 3")
        if args[0] != "3":
            raise InputError("only 3-D simulations are supported")

    def cmd_boundary(self, args: list[str]) -> None:
        self._need(args, 3, "boundary <p|f> <p|f> <p|f>")
        periodic = tuple(a == "p" for a in args[:3])
        self.lmp.domain.periodic = periodic

    def cmd_atom_style(self, args: list[str]) -> None:
        self._need(args, 1, "atom_style <atomic|charge|full>")
        if args[0] not in ("atomic", "charge", "full"):
            raise InputError(f"unsupported atom_style {args[0]!r}")

    def cmd_newton(self, args: list[str]) -> None:
        self._need(args, 1, "newton <on|off>")
        self.lmp.newton_pair = args[0] == "on"

    def cmd_suffix(self, args: list[str]) -> None:
        self._need(args, 1, "suffix <kk|kk/host|off>")
        self.lmp.suffix = None if args[0] == "off" else args[0]

    def cmd_package(self, args: list[str]) -> None:
        """``package kokkos`` tuning knobs (section 3.3 / appendix C.1).

        Supported: ``neigh <half|full>``, ``newton <on|off>``,
        ``comm <host|device>`` (where communication buffers are packed) and
        ``pair/only <on|off>`` (appendix C's "reverse offload": with
        pair/only, non-pair kernels stay on the host).
        """
        self._need(args, 1, "package <kokkos|autotune> [options]")
        if args[0] == "autotune":
            self._package_autotune(args[1:])
            return
        if args[0] != "kokkos":
            raise InputError("only 'package kokkos' and 'package autotune' "
                             "are supported")
        it = iter(args[1:])
        for key in it:
            val = next(it, None)
            if val is None:
                raise InputError(f"package kokkos: {key} needs a value")
            if key == "neigh":
                if val not in ("half", "full"):
                    raise InputError("package kokkos neigh expects half|full")
                self.lmp.package_kokkos["neigh"] = val
            elif key == "newton":
                self.lmp.package_kokkos["newton"] = val == "on"
            elif key == "comm":
                if val not in ("host", "device"):
                    raise InputError("package kokkos comm expects host|device")
                self.lmp.package_kokkos["comm"] = val
            elif key == "pair/only":
                self.lmp.package_kokkos["pair_only"] = val == "on"
            else:
                raise InputError(f"package kokkos: unknown option {key!r}")

    def _package_autotune(self, args: list[str]) -> None:
        """``package autotune on|off [options]`` (the runtime autotuner).

        Options after ``on``: ``measure <wall|model>``, ``plan <FILE>``
        (``none`` disables persistence), ``repeats <N>``, ``seed <N>``,
        ``workload <NAME>``.  The search itself runs at the next ``run``
        command, before any timestep (:mod:`repro.tune`).
        """
        if not args or args[0] not in ("on", "off"):
            raise InputError("usage: package autotune <on|off> [options]")
        if args[0] == "off":
            self.lmp.autotune_request = None
            self.lmp.autotuner = None
            return
        request: dict = {"workload": "run", "quiet": self.lmp.thermo.quiet}
        it = iter(args[1:])
        for key in it:
            val = next(it, None)
            if val is None:
                raise InputError(f"package autotune: {key} needs a value")
            if key == "measure":
                request["measure"] = val
            elif key == "plan":
                request["plan_path"] = None if val == "none" else val
            elif key == "repeats":
                request["repeats"] = int(val)
            elif key == "seed":
                request["seed"] = int(val)
            elif key == "workload":
                request["workload"] = val
            else:
                raise InputError(f"package autotune: unknown option {key!r}")
        # validate the measure now, at parse time, with the did-you-mean text
        if "measure" in request:
            from repro.core.errors import unknown_choice
            from repro.tune.autotuner import MEASURES

            if request["measure"] not in MEASURES:
                raise InputError(
                    unknown_choice("autotune measure", request["measure"], MEASURES)
                )
        self.lmp.autotune_request = request

    def cmd_timestep(self, args: list[str]) -> None:
        self._need(args, 1, "timestep <dt>")
        dt = float(args[0])
        if dt <= 0:
            raise InputError("timestep must be positive")
        self.lmp.update.dt = dt

    def cmd_reset_timestep(self, args: list[str]) -> None:
        self._need(args, 1, "reset_timestep <n>")
        self.lmp.update.ntimestep = int(args[0])

    def cmd_variable(self, args: list[str]) -> None:
        self._need(args, 3, "variable <name> equal <expr>")
        name, style = args[0], args[1]
        if style != "equal":
            raise InputError("only equal-style variables are supported")
        self.lmp.variables[name] = safe_eval(" ".join(args[2:]))

    def cmd_print(self, args: list[str]) -> None:
        if self.lmp.comm_rank == 0:
            print(" ".join(args).strip('"'))

    def cmd_log(self, args: list[str]) -> None:
        pass  # logging redirection is a no-op here

    def cmd_echo(self, args: list[str]) -> None:
        pass

    def cmd_tools(self, args: list[str]) -> None:
        """``tools <name[,name...]> [out <dir>]`` attaches observability
        tools (:mod:`repro.tools`); ``tools off`` finalizes and detaches,
        printing their reports.  The tool chain is process-global, so in
        multi-rank runs only the root rank acts on the command."""
        self._need(args, 1, "tools <name[,name...]> [out <dir>] | tools off")
        if self.lmp.comm_rank != 0:
            return
        from repro.tools import create_tools
        from repro.tools import registry as kp

        if args[0] == "off":
            for report in kp.finalize_all():
                print(report)
            return
        outdir = "."
        if len(args) >= 3 and args[1] == "out":
            outdir = args[2]
        try:
            tools = create_tools(args[0], outdir)
        except ValueError as err:
            raise InputError(str(err)) from None
        for tool in tools:
            kp.attach(tool)

    def cmd_metrics(self, args: list[str]) -> None:
        """``metrics on [out <dir>] [workload <name>]`` attaches the metrics
        tool (:mod:`repro.tools.metrics`); ``metrics off`` finalizes and
        detaches only metrics tools, printing their reports.  Like
        ``tools``, the chain is process-global: root rank only."""
        self._need(args, 1, "metrics on [out <dir>] [workload <name>] | "
                            "metrics off")
        if self.lmp.comm_rank != 0:
            return
        from repro.tools import registry as kp
        from repro.tools.metrics import MetricsTool

        if args[0] == "off":
            for tool in [t for t in kp.TOOLS if isinstance(t, MetricsTool)]:
                report = tool.finalize()
                kp.detach(tool)
                if report:
                    print(report)
            return
        if args[0] != "on":
            raise InputError("metrics expects 'on' or 'off'")
        out = None
        workload = "run"
        rest = args[1:]
        while rest:
            if rest[0] == "out" and len(rest) >= 2:
                out = rest[1]
                rest = rest[2:]
            elif rest[0] == "workload" and len(rest) >= 2:
                workload = rest[1]
                rest = rest[2:]
            else:
                raise InputError(f"metrics: unknown option {rest[0]!r}")
        kp.attach(MetricsTool(out, workload=workload))

    # ---------------------------------------------------------- geometry
    def cmd_lattice(self, args: list[str]) -> None:
        self._need(args, 2, "lattice <style> <scale>")
        lj = self.lmp.update.units.name == "lj"
        self.lmp.lattice = Lattice.create(args[0], float(args[1]), lj_units=lj)

    def cmd_region(self, args: list[str]) -> None:
        self._need(args, 8, "region <id> block xlo xhi ylo yhi zlo zhi")
        rid, style = args[0], args[1]
        if style != "block":
            raise InputError("only block regions are supported")
        vals = [float(v) for v in args[2:8]]
        scale = self.lmp.lattice.a if self.lmp.lattice else 1.0
        lo = [vals[0] * scale, vals[2] * scale, vals[4] * scale]
        hi = [vals[1] * scale, vals[3] * scale, vals[5] * scale]
        self.lmp.regions[rid] = BlockRegion.create(lo, hi)

    def cmd_create_box(self, args: list[str]) -> None:
        self._need(args, 2, "create_box <ntypes> <region-id>")
        region = self._region(args[1])
        self.lmp.create_box(int(args[0]), region)

    def cmd_create_atoms(self, args: list[str]) -> None:
        self._need(args, 2, "create_atoms <type> box|region <id>")
        atom_type = int(args[0])
        if args[1] == "box":
            self.lmp.create_atoms(atom_type, None)
        elif args[1] == "region":
            self._need(args, 3, "create_atoms <type> region <id>")
            self.lmp.create_atoms(atom_type, self._region(args[2]))
        else:
            raise InputError("create_atoms expects 'box' or 'region <id>'")

    def _region(self, rid: str) -> BlockRegion:
        if rid not in self.lmp.regions:
            raise InputError(f"unknown region {rid!r}")
        return self.lmp.regions[rid]

    # ------------------------------------------------------------- physics
    def cmd_mass(self, args: list[str]) -> None:
        self._need(args, 2, "mass <type> <mass>")
        if args[0] == "*":
            for t in range(1, self.lmp.require_box().ntypes + 1):
                self.lmp.set_mass(t, float(args[1]))
        else:
            self.lmp.set_mass(int(args[0]), float(args[1]))

    def cmd_velocity(self, args: list[str]) -> None:
        self._need(args, 4, "velocity all create <T> <seed>")
        if args[0] != "all" or args[1] != "create":
            raise InputError("only 'velocity all create T seed' is supported")
        self.lmp.velocity_create(float(args[2]), int(args[3]))

    def cmd_kspace_style(self, args: list[str]) -> None:
        self._need(args, 1, "kspace_style <ewald <accuracy>|none>")
        if args[0] == "none":
            self.lmp.kspace = None
            return
        if args[0] != "ewald":
            raise InputError("only 'kspace_style ewald <accuracy>' is supported")
        self._need(args, 2, "kspace_style ewald <accuracy>")
        from repro.kspace import Ewald

        self.lmp.kspace = Ewald(self.lmp, float(args[1]))

    def cmd_pair_style(self, args: list[str]) -> None:
        self._need(args, 1, "pair_style <style> [args]")
        self.lmp.set_pair_style(args[0], args[1:])

    def cmd_pair_modify(self, args: list[str]) -> None:
        self._need(args, 2, "pair_modify shift <yes|no>")
        if self.lmp.pair is None:
            raise InputError("pair_modify before pair_style")
        if args[0] != "shift":
            raise InputError("only 'pair_modify shift yes|no' is supported")
        self.lmp.pair.shift = args[1] == "yes"

    def cmd_pair_coeff(self, args: list[str]) -> None:
        if self.lmp.pair is None:
            raise InputError("pair_coeff before pair_style")
        self.lmp.pair.coeff(args)

    # ----------------------------------------------------- fixes / computes
    def cmd_fix(self, args: list[str]) -> None:
        self._need(args, 3, "fix <id> <group> <style> [args]")
        self.lmp.add_fix(args[0], args[1], args[2], args[3:])

    def cmd_unfix(self, args: list[str]) -> None:
        self._need(args, 1, "unfix <id>")
        self.lmp.modify.remove_fix(args[0])

    def cmd_compute(self, args: list[str]) -> None:
        self._need(args, 3, "compute <id> <group> <style> [args]")
        self.lmp.add_compute(args[0], args[1], args[2], args[3:])

    def cmd_group(self, args: list[str]) -> None:
        self._need(args, 2, "group <name> type|region <args>")
        name, style = args[0], args[1]
        if style == "type":
            self.lmp.define_group(name, "type", tuple(int(t) for t in args[2:]))
        elif style == "region":
            self._need(args, 3, "group <name> region <region-id>")
            self._region(args[2])
            self.lmp.define_group(name, "region", (args[2],))
        else:
            raise InputError("group styles supported: type, region")

    # ----------------------------------------------------- neighbor control
    def cmd_neighbor(self, args: list[str]) -> None:
        self._need(args, 1, "neighbor <skin> [bin]")
        skin = float(args[0])
        if skin < 0:
            raise InputError("negative neighbor skin")
        self.lmp.neighbor.skin = skin

    def cmd_atom_modify(self, args: list[str]) -> None:
        """``atom_modify sort <every> <binsize>``: spatial sort control.

        ``every`` counts neighbor rebuilds between sorts (0 disables);
        ``binsize 0.0`` uses the ghost cutoff, as in LAMMPS.
        """
        self._need(args, 3, "atom_modify sort <every> <binsize>")
        if args[0] != "sort":
            raise InputError("atom_modify supports only: sort <every> <binsize>")
        every = int(args[1])
        binsize = float(args[2])
        if every < 0 or binsize < 0:
            raise InputError("atom_modify sort: every/binsize must be >= 0")
        self.lmp.sort_every = every
        self.lmp.sort_binsize = binsize

    def cmd_comm_modify(self, args: list[str]) -> None:
        """``comm_modify overlap <yes|no>``: comm/compute overlap toggle."""
        it = iter(args)
        for key in it:
            val = next(it, None)
            if val is None:
                raise InputError(f"comm_modify: {key} needs a value")
            if key == "overlap":
                if val not in ("yes", "no"):
                    raise InputError("comm_modify overlap expects yes|no")
                self.lmp.overlap_comm = val == "yes"
            else:
                raise InputError(f"comm_modify: unknown keyword {key!r}")

    def cmd_neigh_modify(self, args: list[str]) -> None:
        it = iter(args)
        for key in it:
            if key == "every":
                self.lmp.neighbor.every = int(next(it, "1"))
            elif key == "delay":
                self.lmp.neighbor.delay = int(next(it, "0"))
            elif key == "check":
                self.lmp.neighbor.check = next(it, "yes") == "yes"
            else:
                raise InputError(f"neigh_modify: unknown keyword {key!r}")

    # ------------------------------------------------------------------ I/O
    def cmd_read_data(self, args: list[str]) -> None:
        self._need(args, 1, "read_data <file>")
        from repro.core.io import read_data

        read_data(self.lmp, args[0])

    def cmd_write_data(self, args: list[str]) -> None:
        self._need(args, 1, "write_data <file>")
        from repro.core.io import write_data

        write_data(self.lmp, args[0])

    def cmd_set(self, args: list[str]) -> None:
        self._need(args, 4, "set type <t> charge <q>")
        if args[0] != "type" or args[2] != "charge":
            raise InputError("only 'set type <t> charge <q>' is supported")
        self.lmp.set_charge(int(args[1]), float(args[3]))

    def cmd_dump(self, args: list[str]) -> None:
        self._need(args, 5, "dump <id> <group> custom <N> <file> <cols...>")
        if args[2] != "custom":
            raise InputError("only 'dump custom' is supported")
        if args[0] in self.lmp.dumps:
            raise InputError(f"duplicate dump id {args[0]!r} (use undump first)")
        if args[1] not in self.lmp.groups:
            raise InputError(f"dump: unknown group {args[1]!r}")
        from repro.core.io import Dump

        cols = tuple(args[5:]) or ("id", "type", "x", "y", "z")
        self.lmp.dumps[args[0]] = Dump(
            self.lmp, args[0], args[1], int(args[3]), args[4], cols
        )

    def cmd_undump(self, args: list[str]) -> None:
        self._need(args, 1, "undump <id>")
        dump = self.lmp.dumps.pop(args[0], None)
        if dump is None:
            raise InputError(f"undump of unknown dump id {args[0]!r}")
        dump.close()

    # --------------------------------------------------------------- output
    def cmd_thermo(self, args: list[str]) -> None:
        self._need(args, 1, "thermo <N>")
        self.lmp.thermo.every = int(args[0])

    def cmd_thermo_style(self, args: list[str]) -> None:
        self._need(args, 1, "thermo_style custom <cols...>")
        if args[0] != "custom":
            raise InputError("only 'thermo_style custom' is supported")
        self.lmp.thermo.columns = tuple(args[1:])

    # ------------------------------------------------------------------ run
    def cmd_run(self, args: list[str]) -> None:
        self._need(args, 1, "run <N>")
        self.lmp.run(int(args[0]))

    def cmd_min_style(self, args: list[str]) -> None:
        self._need(args, 1, "min_style <fire|sd>")
        if args[0] not in ("fire", "sd"):
            raise InputError(f"unknown min_style {args[0]!r}")
        self.lmp.min_style = args[0]

    def cmd_minimize(self, args: list[str]) -> None:
        self._need(args, 3, "minimize <etol> <ftol> <maxiter> [maxeval]")
        result = self.lmp.minimize(float(args[0]), float(args[1]), int(args[2]))
        if self.lmp.comm_rank == 0 and not self.lmp.thermo.quiet:
            print(
                f"Minimization ({self.lmp.min_style}): "
                f"E {result.initial_energy:.6g} -> {result.final_energy:.6g} "
                f"in {result.iterations} iterations "
                f"(stop: {result.criterion}, fmax {result.final_fmax:.3g})"
            )
