"""Kokkos-accelerated fixes.

A GPU-resident timestep (the KOKKOS package's design goal, section 1) keeps
the integration kernels on the device too — otherwise positions and forces
would ping-pong across the PCIe link every step.  ``fix nve/kk`` performs
the same velocity-Verlet update as the plain fix and charges the two small
bandwidth-bound device kernels a real run launches; it is selected
automatically by the ``/kk`` suffix.
"""

from __future__ import annotations

import repro.kokkos as kk
from repro.core.fixes import FixNVE
from repro.core.styles import register_fix
from repro.kokkos.core import Device, Host


@register_fix("nve/kk")
class FixNVEKokkos(FixNVE):
    """Velocity Verlet with device-resident update kernels."""

    def __init__(self, lmp, fix_id, group, args, execution_space: str = "device") -> None:
        super().__init__(lmp, fix_id, group, args)
        self.execution_space = Device if execution_space == "device" else Host

    def _charge(self, name: str) -> None:
        n = self.lmp.atom.nlocal
        kk.parallel_for(
            name,
            kk.RangePolicy(self.execution_space, 0, max(n, 1)),
            lambda idx: None,
            profile=kk.KernelProfile(
                name=name,
                flops=9.0 * n,
                bytes_streamed=96.0 * n,  # x/v/f rows read+write
                parallel_items=float(max(n, 1)),
            ),
        )

    def initial_integrate(self) -> None:
        super().initial_integrate()
        self._charge("FixNVEInitialIntegrate")

    def final_integrate(self) -> None:
        super().final_integrate()
        self._charge("FixNVEFinalIntegrate")
