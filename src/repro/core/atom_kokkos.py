"""Kokkos-side atom storage: DualViews aliasing the plain arrays.

Figure 1 of the paper: ``AtomVecAtomicKokkos`` stores atomic data in
``Kokkos::DualView``s whose *host* mirrors alias the raw pointers that the
classic (non-Kokkos) styles read.  That aliasing is what lets Kokkos and
non-Kokkos styles coexist in one input script: a plain style writes through
the old pointer, marks the field host-modified, and the next Kokkos style's
``sync(device)`` moves exactly that data — nothing more (section 3.2).

Here the host View of each DualView wraps the *same ndarray object* the
:class:`~repro.core.atom.AtomVec` exposes, so the aliasing is literal.
When ``AtomVec.grow`` reallocates, the generation counter changes and the
DualViews are rebuilt on next access.
"""

from __future__ import annotations

import numpy as np

from repro.core.atom import AtomVec
from repro.kokkos.core import Device, ExecutionSpace, Host, device_context
from repro.kokkos.dual_view import DualView
from repro.kokkos.view import View


class AtomKokkos:
    """DualView façade over an :class:`AtomVec`."""

    def __init__(self, atom: AtomVec) -> None:
        self.atom = atom
        self._duals: dict[str, DualView] = {}
        self._generation = -1

    def _rebuild(self) -> None:
        self._duals.clear()
        for name in AtomVec.FIELD_DTYPES:
            base: np.ndarray = getattr(self.atom, name)
            dv = DualView.__new__(DualView)
            ctx = device_context()
            dv.label = f"atom_{name}"
            dv._host_only = ctx.host_only
            # Host view aliases the AtomVec allocation (no copy).
            hv = View.__new__(View)
            hv.space = Host
            from repro.kokkos.layout import LayoutRight

            hv.layout = LayoutRight
            hv.label = f"atom_{name}_h"
            hv._data = base
            dv.h_view = hv
            if ctx.host_only:
                dv.d_view = hv
            else:
                dv.d_view = View(
                    base.shape, base.dtype, space=Device, label=f"atom_{name}_d"
                )
                dv.d_view.data[...] = base
            dv._modified = {Host: 0, Device: 0}
            self._duals[name] = dv
        self._generation = self.atom.generation

    def dual(self, name: str) -> DualView:
        """The DualView for a field, rebuilt after any reallocation."""
        if self._generation != self.atom.generation:
            self._rebuild()
        if name not in self._duals:
            raise KeyError(f"unknown atom field {name!r}")
        return self._duals[name]

    # -------------------------------------------------- datamask protocol
    def sync(self, space: ExecutionSpace, fields: tuple[str, ...]) -> None:
        """Make ``fields`` current in ``space`` (a style's read datamask)."""
        for name in fields:
            self.dual(name).sync(space)

    def modified(self, space: ExecutionSpace, fields: tuple[str, ...]) -> None:
        """Mark ``fields`` written in ``space`` (a style's modify datamask)."""
        for name in fields:
            self.dual(name).modify(space)

    def view(self, name: str, space: ExecutionSpace) -> View:
        return self.dual(name).view(space)
