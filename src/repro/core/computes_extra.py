"""Additional compute styles: mean-square displacement and RDF.

``compute msd`` tracks per-atom reference positions by tag (robust to
migration); ``compute rdf`` histograms the current neighbor list.  Both are
reachable from input scripts and from Python (``lmp.modify.get_compute``).
"""

from __future__ import annotations

import numpy as np

from repro.core.computes import Compute
from repro.core.errors import InputError
from repro.core.styles import register_compute


@register_compute("msd")
class ComputeMSD(Compute):
    """Mean-square displacement since the compute was defined."""

    nparts = 2  # [sum |dx|^2, count]

    def __init__(self, lmp, compute_id, group, args) -> None:
        super().__init__(lmp, compute_id, group, args)
        atom = lmp.require_box()
        mask = lmp.group_mask(group)
        idx = np.flatnonzero(mask)
        self.origin = {
            int(atom.tag[i]): atom.x[i].copy() for i in idx
        }
        #: unwrapped displacement tracking: accumulate against the nearest
        #: periodic image each evaluation (valid while per-step motion stays
        #: below half a box length, which MD guarantees)
        self._last = dict(self.origin)
        self._unwrapped = {t: np.zeros(3) for t in self.origin}

    def _update_unwrapped(self) -> None:
        atom = self.lmp.atom
        dom = self.lmp.domain
        for i in range(atom.nlocal):
            t = int(atom.tag[i])
            if t not in self._last:
                continue
            step = dom.minimum_image(atom.x[i] - self._last[t])
            self._unwrapped[t] += step
            self._last[t] = atom.x[i].copy()

    def local_partials(self) -> np.ndarray:
        self._update_unwrapped()
        atom = self.lmp.atom
        total = 0.0
        count = 0
        present = set(int(t) for t in atom.tag[: atom.nlocal])
        for t, disp in self._unwrapped.items():
            if t in present:
                total += float(disp @ disp)
                count += 1
        return np.array([total, float(count)])

    def finalize(self, parts: np.ndarray) -> float:
        if parts[1] <= 0:
            raise InputError(f"compute {self.id}: no atoms tracked")
        return float(parts[0] / parts[1])


@register_compute("rdf")
class ComputeRDF(Compute):
    """Radial distribution function g(r) from the active neighbor list.

    ``compute ID group rdf <nbins> [rmax]``.  Scalar form returns the first
    peak height; :meth:`histogram` returns the full ``(r, g)`` arrays.
    """

    def __init__(self, lmp, compute_id, group, args) -> None:
        super().__init__(lmp, compute_id, group, args)
        if not args:
            raise InputError("compute rdf expects: nbins [rmax]")
        self.nbins = int(args[0])
        if self.nbins < 2:
            raise InputError("compute rdf: nbins must be >= 2")
        self.rmax = float(args[1]) if len(args) > 1 else 0.0

    @property
    def nparts(self) -> int:  # type: ignore[override]
        return self.nbins + 1  # histogram + atom count

    def _edges(self) -> np.ndarray:
        rmax = self.rmax
        if rmax <= 0.0:
            rmax = self.lmp.pair.max_cutoff() if self.lmp.pair else 1.0
        return np.linspace(0.0, rmax, self.nbins + 1)

    def local_partials(self) -> np.ndarray:
        lmp = self.lmp
        atom = lmp.atom
        nlist = lmp.neigh_list
        edges = self._edges()
        hist = np.zeros(self.nbins)
        if nlist is not None and nlist.total_pairs:
            i, j = nlist.ij_pairs()
            dx = atom.x[i] - atom.x[j]
            r = np.sqrt(np.einsum("ij,ij->i", dx, dx))
            weight = 1.0 if nlist.style == "half" else 0.5
            h, _ = np.histogram(r, bins=edges)
            hist = weight * h
        return np.concatenate([hist, [float(atom.nlocal)]])

    def histogram(self, parts: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray]:
        """``(r_centers, g(r))`` normalized by the ideal-gas shell count."""
        if parts is None:
            parts = self.local_partials()
        hist = parts[: self.nbins]
        natoms = parts[self.nbins]
        edges = self._edges()
        centers = 0.5 * (edges[1:] + edges[:-1])
        vol = self.lmp.domain.volume
        density = max(natoms, 1.0) / vol
        shell = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
        ideal = 0.5 * natoms * density * shell  # pair count in an ideal gas
        g = np.where(ideal > 0, hist / np.maximum(ideal, 1e-300), 0.0)
        return centers, g

    def finalize(self, parts: np.ndarray) -> float:
        _, g = self.histogram(parts)
        return float(g.max())
