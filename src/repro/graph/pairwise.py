"""Staged force-path pipelines for kernel-graph capture and replay.

This is the force-path side of the graph subsystem: the LJ/EAM/SNAP
computes declare their work as :class:`Stage` lists — fine-grained
elementwise passes plus explicit scatter/tally barriers — and the
helpers here capture them into a fused :class:`~repro.graph.plan.GraphPlan`
on a plan-cache miss, or replay the cached plan on a hit.

Bitwise discipline: every stage body reproduces the eager path's exact
floating-point operation sequence (gathers via ``np.take`` instead of
boolean masks, ufuncs with ``out=`` into preallocated scratch, pair
coefficients pre-gathered once per plan) — transformations verified to
be bitwise-identical to the eager expressions.  The differential matrix
test (:mod:`tests.test_graph_matrix`) holds fused == eager to the last
ulp for forces, energies, and the virial.

Unlike the rest of :mod:`repro.graph`, this module imports
``repro.kokkos`` freely: it is only imported from the potentials layer,
after the kokkos package has fully initialised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

import repro.kokkos as kk
from repro.graph.capture import GraphCapture, KernelNode
from repro.graph.plan import GRAPH, GraphPlan, build_plan
from repro.kokkos.core import Host
from repro.kokkos.scatter_view import ScatterView
from repro.kokkos.segment import scatter_add, scatter_mode

#: Default vectorization efficiency for staged host passes (matches the
#: irregular-gather penalty of :class:`~repro.potentials.pair_kokkos.PairKokkos`).
STAGE_CPU_EFFICIENCY = 0.05


@dataclass
class Stage:
    """One declared pass of a staged force path."""

    name: str
    fn: Callable[[dict], None]
    #: Nodes fuse only within one index space (e.g. ``"stored-pairs"``).
    index_space: str
    #: Elementwise stages are fusable; barriers (scatter, tally) are not.
    elementwise: bool = True
    #: ``"for"`` or ``"reduce"`` — which parallel pattern dispatches it.
    kind: str = "for"
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    #: Chain outputs that must survive fusion (everything else a chain
    #: writes is an eliminated intermediate buffer).
    outputs: tuple[str, ...] = ()
    #: Per-item byte sizes of written buffers (for saved-traffic pricing).
    item_bytes: dict[str, float] = field(default_factory=dict)
    profile: Any = None
    #: A policy, or a callable ``env -> policy`` resolved at dispatch
    #: time (compressed index spaces are sized mid-capture).
    policy: Any = None


def _stage_profile(
    name: str, size: int, flops_per_item: float, bytes_per_item: float
) -> kk.KernelProfile:
    return kk.KernelProfile(
        name=name,
        flops=flops_per_item * size,
        bytes_streamed=bytes_per_item * size,
        parallel_items=float(max(size, 1)),
        cpu_efficiency=STAGE_CPU_EFFICIENCY,
    )


def capture_stages(label: str, stages: list[Stage], env: dict) -> GraphPlan:
    """Dispatch each stage under an armed capture; fuse into a plan.

    The capture step *is* a full execution of the force path (each stage
    body runs inside its dispatch), so a cache-miss step produces the
    same forces as a replay step — bitwise.
    """
    cap = GraphCapture(label)
    with cap:
        for st in stages:
            node = KernelNode(
                name=f"graph:{st.name}",
                elementwise=st.elementwise,
                reads=st.reads,
                writes=st.writes,
                fn=st.fn,
                meta={
                    "index_space": st.index_space,
                    "outputs": st.outputs,
                    "item_bytes": st.item_bytes,
                },
            )
            cap.open_stage(node)
            policy = st.policy(env) if callable(st.policy) else st.policy
            if st.kind == "reduce":
                kk.parallel_reduce(
                    node.name,
                    policy,
                    lambda idx, fn=st.fn: (fn(env), 0.0)[1],
                    profile=st.profile,
                )
            else:
                kk.parallel_for(
                    node.name,
                    policy,
                    lambda idx, fn=st.fn: fn(env),
                    profile=st.profile,
                )
            cap.close_stage()
    return build_plan(label, cap.nodes, env)


# ===================================================================== pairwise
# Generic half/full-list pairwise pipeline: the graph form of
# PairLJCut._compute_pairs / PairKokkos._compute_pairs.

def _delta_fn(env: dict) -> None:
    x = env["x"]
    np.take(x, env["i0"], axis=0, out=env["xi_s"])
    np.take(x, env["j0"], axis=0, out=env["xj_s"])
    np.subtract(env["xi_s"], env["xj_s"], out=env["dx0"])


def _rsq_fn(env: dict) -> None:
    np.einsum("ij,ij->i", env["dx0"], env["dx0"], out=env["rsq0"])


def _cutmask_fn(env: dict) -> None:
    np.less(env["rsq0"], env["cutsq0"], out=env["mask0"])
    env["idx"] = np.flatnonzero(env["mask0"])


def _gather_fn(env: dict) -> None:
    idx = env["idx"]
    n = idx.size
    env["dx_n"] = np.take(env["dx0"], idx, axis=0, out=env["dx_s"][:n])
    env["rsq_n"] = np.take(env["rsq0"], idx, out=env["rsq_s"][:n])
    env["i_n"] = np.take(env["i0"], idx, out=env["i_s"][:n])
    env["j_n"] = np.take(env["j0"], idx, out=env["j_s"][:n])
    env["jl_n"] = np.take(env["jl0"], idx, out=env["jl_s"][:n])


def _fvec_fn(env: dict) -> None:
    n = env["idx"].size
    env["fvec_n"] = np.multiply(
        env["fpair_n"][:, None], env["dx_n"], out=env["fvec_s"][:n]
    )


def graph_pair_compute(pair, phase: str, eflag: bool, vflag: bool) -> bool:
    """Route a pairwise compute through the kernel graph.

    Returns True when the step was handled (cached replay or fresh
    capture); False hands control back to the eager path (graph off,
    unstaged configuration, or a style without ``pair_eval``).
    """
    if not GRAPH or phase != "all":
        return False
    lmp = pair.lmp
    nlist = lmp.neigh_list
    atom = lmp.atom
    kokkos = pair.kokkos_style
    if kokkos:
        if pair.team_mode:
            return False  # hierarchical policies are not staged
        full = pair.neigh_mode == "full"
        newton = pair.newton_mode
        space = pair.execution_space
    else:
        full = False
        newton = lmp.newton_pair
        space = Host
    if not hasattr(pair, "pair_eval"):
        return False

    cache = GRAPH[0]
    base_key = (id(pair), phase)
    variant_key = (
        space.name,
        full,
        newton,
        scatter_mode(),
        bool(eflag),
        bool(vflag),
        nlist.generation,
    )

    if kokkos:
        atom_kk = lmp.atom_kk
        atom_kk.sync(space, ("x", "type", "f"))
        x = atom_kk.view("x", space).data
        f_view = atom_kk.view("f", space)
    else:
        atom_kk = None
        x = atom.x[: atom.nall]
        f_view = None

    plan = cache.lookup(base_key, variant_key)
    if plan is not None:
        plan.replay({"x": x, "f_view": f_view})
    else:
        plan = _capture_pairwise_plan(
            pair,
            phase,
            full=full,
            newton=newton,
            eflag=eflag,
            vflag=vflag,
            space=space,
            x=x,
            f_view=f_view,
        )
        if plan is None:
            return False
        cache.store(base_key, variant_key, plan)
    if kokkos:
        atom_kk.modified(space, ("f",))
    return True


def _capture_pairwise_plan(
    pair,
    phase: str,
    *,
    full: bool,
    newton: bool,
    eflag: bool,
    vflag: bool,
    space,
    x,
    f_view,
) -> GraphPlan | None:
    lmp = pair.lmp
    atom = lmp.atom
    nlist = lmp.neigh_list
    i0, j0, it0, jt0, cutsq0 = pair.pair_table(nlist, atom, phase)
    stored = len(i0)
    if stored == 0:
        return None

    env: dict[str, Any] = {
        "x": x,
        "f_view": f_view,
        "i0": i0,
        "j0": j0,
        "cutsq0": cutsq0,
        "jl0": j0 < atom.nlocal,
        # stored-pairs scratch (full index space)
        "xi_s": np.empty((stored, 3)),
        "xj_s": np.empty((stored, 3)),
        "dx0": np.empty((stored, 3)),
        "rsq0": np.empty(stored),
        "mask0": np.empty(stored, bool),
        # cut-pairs scratch (capacity = stored; sliced to n each step)
        "dx_s": np.empty((stored, 3)),
        "rsq_s": np.empty(stored),
        "i_s": np.empty(stored, i0.dtype),
        "j_s": np.empty(stored, j0.dtype),
        "jl_s": np.empty(stored, bool),
        "fvec_s": np.empty((stored, 3)),
    }
    eval_fn = pair.graph_eval_setup(env, it0, jt0)
    if eval_fn is None:
        return None

    pairs_policy = kk.RangePolicy(space, 0, stored)
    cut_policy = lambda env: kk.RangePolicy(space, 0, int(env["idx"].size))  # noqa: E731

    def scatter_fn(env: dict) -> None:
        if not full and f_view is None:
            # host half-list path: the base-class i/j scatter
            pair.scatter_pair_forces(
                atom, env["i_n"], env["j_n"], env["fvec_n"], env["jl_n"], newton
            )
        elif full:
            scatter_add(
                env["f_view"].data,
                env["i_n"],
                env["fvec_n"],
                mode=scatter_mode(),
                assume_sorted=True,
            )
        else:
            sv = ScatterView(env["f_view"])
            acc = sv.access()
            acc.add(env["i_n"], env["fvec_n"])
            if newton:
                acc.add(env["j_n"], -env["fvec_n"])
            else:
                jl = env["jl_n"]
                acc.add(env["j_n"][jl], -env["fvec_n"][jl])
            sv.contribute()

    def tally_fn(env: dict) -> None:
        pair.tally_pairs(
            env["evdwl_n"],
            env["dx_n"],
            env["fpair_n"],
            env["jl_n"],
            full_list=full,
            newton=newton,
            w=env["fvec_n"],
        )

    stages = [
        Stage(
            "delta", _delta_fn, "stored-pairs",
            reads=("x",), writes=("pair_xi", "pair_xj", "pair_dx"),
            item_bytes={"pair_xi": 24.0, "pair_xj": 24.0, "pair_dx": 24.0},
            profile=_stage_profile("graph:delta", stored, 3.0, 72.0),
            policy=pairs_policy,
        ),
        Stage(
            "rsq", _rsq_fn, "stored-pairs",
            writes=("pair_rsq",), item_bytes={"pair_rsq": 8.0},
            profile=_stage_profile("graph:rsq", stored, 5.0, 32.0),
            policy=pairs_policy,
        ),
        Stage(
            "cutmask", _cutmask_fn, "stored-pairs",
            writes=("pair_mask", "pair_idx"),
            item_bytes={"pair_mask": 1.0, "pair_idx": 8.0},
            profile=_stage_profile("graph:cutmask", stored, 1.0, 17.0),
            policy=pairs_policy,
        ),
        Stage(
            "gather", _gather_fn, "stored-pairs",
            writes=("pair_dx_n", "pair_rsq_n", "pair_i_n", "pair_j_n", "pair_jl_n"),
            outputs=("pair_dx_n", "pair_rsq_n", "pair_i_n", "pair_j_n", "pair_jl_n"),
            profile=_stage_profile("graph:gather", stored, 1.0, 100.0),
            policy=pairs_policy,
        ),
        Stage(
            "eval", eval_fn, "cut-pairs",
            writes=("pair_fpair", "pair_evdwl"),
            outputs=("pair_fpair", "pair_evdwl"),
            profile=_stage_profile("graph:eval", stored, 10.0, 64.0),
            policy=cut_policy,
        ),
        Stage(
            "fvec", _fvec_fn, "cut-pairs",
            writes=("pair_fvec",), outputs=("pair_fvec",),
            profile=_stage_profile("graph:fvec", stored, 3.0, 48.0),
            policy=cut_policy,
        ),
        Stage(
            "force_scatter", scatter_fn, "atoms", elementwise=False,
            profile=_stage_profile("graph:force_scatter", atom.nlocal, 3.0, 48.0),
            policy=kk.RangePolicy(space, 0, atom.nlocal),
        ),
    ]
    if eflag or vflag:
        stages.append(
            Stage(
                "tally", tally_fn, "pairs-reduction",
                elementwise=False, kind="reduce",
                profile=_stage_profile("graph:tally", stored, 9.0, 40.0),
                policy=cut_policy,
            )
        )
    label = f"{type(pair).__name__}/{phase}"
    return capture_stages(label, stages, env)


# ========================================================================= EAM
def eam_force_graph(
    pair, i, j, dx, r, itype, jtype, stored, fp_view, f_view, eflag, vflag,
    *, sorted_i: bool,
) -> bool:
    """Graph form of the EAM force chain (fp_sum -> fpair -> fvec).

    The pair geometry is recomputed eagerly each step (it feeds the
    density kernel too); the chain re-binds it through the environment
    on every call, so the fused plan itself is geometry-free and only
    invalidates on rebuild/mode drift.
    """
    if not GRAPH:
        return False
    cache = GRAPH[0]
    nlist = pair.lmp.neigh_list
    base_key = (id(pair), "eam-force")
    variant_key = (
        pair.execution_space.name,
        scatter_mode(),
        bool(eflag),
        bool(vflag),
        sorted_i,
        nlist.generation,
    )
    updates = {
        "i": i, "j": j, "dx": dx, "r": r,
        "it": itype, "jt": jtype,
        "fp": fp_view.data, "f_view": f_view,
    }
    plan = cache.lookup(base_key, variant_key)
    if plan is not None:
        if len(i) > plan.env["capacity"]:  # pragma: no cover - defensive
            cache.plans.pop(base_key, None)
        else:
            plan.replay(updates)
            return True

    atom = pair.lmp.atom
    cap = stored
    env: dict[str, Any] = dict(updates)
    env["capacity"] = cap
    env["fps_s"] = np.empty(cap)
    env["fpair_s"] = np.empty(cap)
    env["fvec_s"] = np.empty((cap, 3))

    def fp_sum_fn(env: dict) -> None:
        n = len(env["i"])
        fp = env["fp"]
        fpi = np.take(fp, env["i"])
        fpj = np.take(fp, env["j"])
        env["fps_n"] = np.add(fpi, fpj, out=env["fps_s"][:n])

    def fpair_fn(env: dict) -> None:
        n = len(env["i"])
        r = env["r"]
        d = pair.dphi(r, env["it"], env["jt"])
        t = env["fps_n"] * pair.ddens(r)
        num = np.add(d, t, out=env["fpair_s"][:n])
        np.negative(num, out=num)
        env["fpair_n"] = np.divide(num, r, out=num)

    def fvec_fn(env: dict) -> None:
        n = len(env["i"])
        env["fvec_n"] = np.multiply(
            env["fpair_n"][:, None], env["dx"], out=env["fvec_s"][:n]
        )

    def scatter_fn(env: dict) -> None:
        scatter_add(
            env["f_view"].data, env["i"], env["fvec_n"], assume_sorted=sorted_i
        )

    def tally_fn(env: dict) -> None:
        evdwl = pair.phi(env["r"], env["it"], env["jt"])
        pair.tally_pairs(
            evdwl,
            env["dx"],
            env["fpair_n"],
            env["j"] < atom.nlocal,
            full_list=True,
            newton=False,
            w=env["fvec_n"],
        )

    space = pair.execution_space
    cut_policy = lambda env: kk.RangePolicy(space, 0, len(env["i"]))  # noqa: E731
    stages = [
        Stage(
            "eam_fp_sum", fp_sum_fn, "cut-pairs",
            writes=("eam_fps",), profile=_stage_profile("graph:eam_fp_sum", cap, 1.0, 24.0),
            policy=cut_policy,
        ),
        Stage(
            "eam_fpair", fpair_fn, "cut-pairs",
            writes=("eam_fpair",), outputs=("eam_fpair",),
            profile=_stage_profile("graph:eam_fpair", cap, 12.0, 48.0),
            policy=cut_policy,
        ),
        Stage(
            "eam_fvec", fvec_fn, "cut-pairs",
            writes=("eam_fvec",), outputs=("eam_fvec",),
            profile=_stage_profile("graph:eam_fvec", cap, 3.0, 48.0),
            policy=cut_policy,
        ),
        Stage(
            "eam_force_scatter", scatter_fn, "atoms", elementwise=False,
            profile=_stage_profile(
                "graph:eam_force_scatter", atom.nlocal, 3.0, 48.0
            ),
            policy=kk.RangePolicy(space, 0, atom.nlocal),
        ),
    ]
    if eflag or vflag:
        stages.append(
            Stage(
                "eam_tally", tally_fn, "pairs-reduction",
                elementwise=False, kind="reduce",
                profile=_stage_profile("graph:eam_tally", cap, 14.0, 40.0),
                policy=cut_policy,
            )
        )
    plan = capture_stages(f"{type(pair).__name__}/force", stages, env)
    cache.store(base_key, variant_key, plan)
    return True


# ======================================================================== SNAP
def snap_geometry_graph(pair, nlist, x):
    """Cached fused geometry prologue for SNAP: rij/rsq/mask/compress.

    The heavy bispectrum kernels stay eager (they are already fused at
    the algorithm level, section 4.3); only the elementwise pair-setup
    chain is captured and fused.  Returns ``(i, j, rij)`` compressed to
    in-cutoff pairs, bitwise-identical to the eager mask expressions, or
    None when graph execution is off.
    """
    if not GRAPH:
        return None
    cache = GRAPH[0]
    base_key = (id(pair), "snap-geometry")
    variant_key = (nlist.generation,)
    plan = cache.lookup(base_key, variant_key)
    if plan is not None:
        env = plan.replay({"x": x})
        return env["i_n"], env["j_n"], env["rij_n"]

    i0, j0 = nlist.ij_pairs()
    stored = len(i0)
    if stored == 0:
        return None
    cutsq = pair.rcut**2
    env: dict[str, Any] = {
        "x": x,
        "i0": i0,
        "j0": j0,
        "xi_s": np.empty((stored, 3)),
        "xj_s": np.empty((stored, 3)),
        "rij0": np.empty((stored, 3)),
        "rsq0": np.empty(stored),
        "mask0": np.empty(stored, bool),
        "rij_s": np.empty((stored, 3)),
        "i_s": np.empty(stored, i0.dtype),
        "j_s": np.empty(stored, j0.dtype),
    }

    def rij_fn(env: dict) -> None:
        x = env["x"]
        np.take(x, env["j0"], axis=0, out=env["xj_s"])
        np.take(x, env["i0"], axis=0, out=env["xi_s"])
        np.subtract(env["xj_s"], env["xi_s"], out=env["rij0"])

    def rsq_fn(env: dict) -> None:
        np.einsum("ij,ij->i", env["rij0"], env["rij0"], out=env["rsq0"])

    def mask_fn(env: dict) -> None:
        np.less(env["rsq0"], cutsq, out=env["mask0"])
        env["idx"] = np.flatnonzero(env["mask0"])

    def compress_fn(env: dict) -> None:
        idx = env["idx"]
        n = idx.size
        env["i_n"] = np.take(env["i0"], idx, out=env["i_s"][:n])
        env["j_n"] = np.take(env["j0"], idx, out=env["j_s"][:n])
        env["rij_n"] = np.take(env["rij0"], idx, axis=0, out=env["rij_s"][:n])

    policy = kk.RangePolicy(Host, 0, stored)
    stages = [
        Stage(
            "snap_rij", rij_fn, "stored-pairs",
            reads=("x",), writes=("snap_rij",), item_bytes={"snap_rij": 24.0},
            profile=_stage_profile("graph:snap_rij", stored, 3.0, 72.0),
            policy=policy,
        ),
        Stage(
            "snap_rsq", rsq_fn, "stored-pairs",
            writes=("snap_rsq",), item_bytes={"snap_rsq": 8.0},
            profile=_stage_profile("graph:snap_rsq", stored, 5.0, 32.0),
            policy=policy,
        ),
        Stage(
            "snap_cutmask", mask_fn, "stored-pairs",
            writes=("snap_mask", "snap_idx"),
            item_bytes={"snap_mask": 1.0, "snap_idx": 8.0},
            profile=_stage_profile("graph:snap_cutmask", stored, 1.0, 17.0),
            policy=policy,
        ),
        Stage(
            "snap_compress", compress_fn, "stored-pairs",
            writes=("snap_i_n", "snap_j_n", "snap_rij_n"),
            outputs=("snap_i_n", "snap_j_n", "snap_rij_n"),
            profile=_stage_profile("graph:snap_compress", stored, 1.0, 80.0),
            policy=policy,
        ),
    ]
    plan = capture_stages(f"{type(pair).__name__}/geometry", stages, env)
    cache.store(base_key, variant_key, plan)
    return env["i_n"], env["j_n"], env["rij_n"]
