"""Fused-plan construction, replay, and per-rebuild plan caching.

A :class:`GraphPlan` is the product of capture + fusion: an ordered list
of :class:`~repro.graph.fuse.FusedGroup` dispatches plus the environment
dict the stage bodies read and write.  Replaying a plan runs each
group's stage bodies back-to-back and issues **one** charged dispatch
per group — the fused composite profile for elementwise chains, the
captured profile for barriers — so the cost model, the tools registry,
and the chrome trace all see the fused kernel stream.

The :class:`PlanCache` applies the same lifetime discipline as the
``PairCache``: a plan is keyed by a *base key* (which force object,
which phase) and a *variant key* (mode-registry switches + the neighbor
list's :attr:`~repro.core.neighbor.NeighborList.generation` stamp).
Each base slot holds exactly one plan; a variant mismatch — neighbor
rebuild, ``set_scatter_mode`` flip, stencil change — replaces it, which
*is* the invalidation (counted as a miss).

Graph execution is opt-in via the mode registry (``set_graph_mode``),
and the hot-path guard is the usual falsy list: ``GRAPH`` is empty
unless graph mode is on, so force paths pay one list check.

Import discipline: ``repro.kokkos`` is imported lazily inside
:meth:`GraphPlan.replay` — this module initialises as part of
``repro.graph``, which ``repro.kokkos.parallel`` imports.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterator

from repro.tools import metrics
from repro.tools import registry as kp

from .capture import KernelNode
from .fuse import FusedGroup, fuse

#: Graph-execution modes.
ON = "on"  # capture/fuse/replay the force paths that declare stages
OFF = "off"  # eager dispatch (the default)

_MODES = (ON, OFF)

#: Global override installed by :func:`set_graph_mode` (None = default off).
_forced_mode: str | None = None


def _noop(idx) -> None:
    return None


@dataclass
class GraphPlan:
    """A fused, replayable kernel stream for one force path + phase."""

    label: str
    groups: list[FusedGroup]
    #: Environment the stage bodies operate on.  Callers rebind the
    #: per-step inputs (positions, force array, ...) before each replay.
    env: dict[str, Any] = field(default_factory=dict)

    @property
    def fused_node_count(self) -> int:
        """Member dispatches folded into fused (multi-node) groups."""
        return sum(len(g.nodes) for g in self.groups if g.fused)

    @property
    def launches(self) -> int:
        return len(self.groups)

    @property
    def captured_launches(self) -> int:
        return sum(len(g.nodes) for g in self.groups)

    @property
    def saved_intermediate_bytes(self) -> float:
        return sum(g.saved_intermediate_bytes for g in self.groups)

    def replay(self, updates: dict[str, Any] | None = None) -> dict[str, Any]:
        """Run the plan: stage bodies eagerly, one dispatch per group."""
        import repro.kokkos as kk  # lazy: avoids an import cycle

        env = self.env
        if updates:
            env.update(updates)
        for group in self.groups:
            for node in group.nodes:
                if node.fn is not None:
                    node.fn(env)
            head = group.nodes[0]
            if head.policy is not None:
                kk.parallel_for(
                    group.name, head.policy, _noop, profile=group.profile
                )
        return env


def build_plan(
    label: str, nodes: list[KernelNode], env: dict[str, Any] | None = None
) -> GraphPlan:
    """Fuse a captured node list into a replayable plan."""
    return GraphPlan(label=label, groups=fuse(nodes), env=env if env is not None else {})


class PlanCache:
    """One plan per (force object, phase) slot, replaced on variant drift."""

    def __init__(self) -> None:
        self.plans: dict[Hashable, tuple[Hashable, GraphPlan]] = {}
        self.hits = 0
        self.misses = 0
        self.fused_nodes = 0

    def lookup(self, base_key: Hashable, variant_key: Hashable) -> GraphPlan | None:
        entry = self.plans.get(base_key)
        if entry is not None and entry[0] == variant_key:
            self.hits += 1
            if metrics.SINKS:
                metrics.inc(
                    "graph_plan_hits_total",
                    help="fused-plan cache hits by plan",
                    plan=entry[1].label,
                )
            return entry[1]
        self.misses += 1
        if metrics.SINKS:
            label = entry[1].label if entry is not None else str(base_key)
            metrics.inc(
                "graph_plan_misses_total",
                help="fused-plan cache misses (capture required) by plan",
                plan=label,
            )
        return None

    def store(self, base_key: Hashable, variant_key: Hashable, plan: GraphPlan) -> None:
        self.plans[base_key] = (variant_key, plan)
        self.fused_nodes += plan.fused_node_count
        if metrics.SINKS:
            metrics.inc(
                "graph_fused_nodes_total",
                float(plan.fused_node_count),
                help="dispatches folded into fused groups, by plan",
                plan=plan.label,
            )
        if kp.TOOLS:
            kp.profile_event(
                "graph:plan_captured",
                plan=plan.label,
                groups=plan.launches,
                captured=plan.captured_launches,
                fused_nodes=plan.fused_node_count,
                saved_bytes=plan.saved_intermediate_bytes,
            )

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "fused_nodes": self.fused_nodes,
            "plans": len(self.plans),
        }


#: The process-wide plan cache (counters survive mode toggles).
_CACHE = PlanCache()

#: Falsy hot-path guard: holds the plan cache iff graph mode is on.
#: Force paths check ``if graph.GRAPH:`` before any graph work.
GRAPH: list[PlanCache] = []


def plan_cache() -> PlanCache:
    """The process-wide fused-plan cache (for benches and tests)."""
    return _CACHE


def graph_mode() -> str:
    """Effective graph-execution mode (default off)."""
    return _forced_mode if _forced_mode is not None else OFF


def set_graph_mode(mode: str | None) -> str | None:
    """Install (or clear, with None) the graph mode; return the old override.

    Unknown names fail here with a did-you-mean hint, matching the other
    mode setters.  Turning graph execution off drops cached plans (the
    counters persist); turning it on starts from an empty cache.
    """
    global _forced_mode
    if mode is not None and mode not in _MODES:
        from repro.core.errors import unknown_choice

        raise ValueError(unknown_choice("graph mode", mode, _MODES))
    prev = _forced_mode
    _forced_mode = mode
    if graph_mode() == ON:
        if not GRAPH:
            GRAPH.append(_CACHE)
    else:
        if GRAPH:
            GRAPH.clear()
        _CACHE.plans.clear()
    return prev


@contextmanager
def force_graph_mode(mode: str | None) -> Iterator[None]:
    """Pin the graph mode (None restores the default, off)."""
    prev = set_graph_mode(mode)
    try:
        yield
    finally:
        set_graph_mode(prev)
