"""Kernel-graph capture, elementwise fusion, and per-rebuild plan caching.

Lifecycle (see README "Kernel graphs"):

1. **Capture** — with graph mode on and no cached plan, a force path arms
   a :class:`~repro.graph.capture.GraphCapture` and dispatches its
   declared stages one at a time; the kokkos dispatch layer and the View
   layer attribute policies, cost profiles, and read/write provenance to
   the open node.
2. **Fuse** — :func:`~repro.graph.fuse.fuse` composes maximal runs of
   adjacent elementwise nodes over the same index space into single
   dispatches; ScatterView contributions, segmented reductions, tallies,
   and nodes caught writing undeclared Views are fusion barriers.
3. **Replay** — the cached :class:`~repro.graph.plan.GraphPlan` re-runs
   with zero re-capture cost until its variant key (mode switches + the
   neighbor list's ``generation`` stamp) drifts — the ``PairCache``
   lifetime discipline.

Import discipline: this package initialises from ``repro.kokkos.parallel``
and ``repro.kokkos.view``, so nothing imported here (``capture`` is
stdlib-only; ``fuse``/``plan`` reach only ``repro.hardware.cost`` and
``repro.tools``) may import ``repro.kokkos`` at module level.  The staged
force-path helpers live in :mod:`repro.graph.pairwise`, which imports
``repro.kokkos`` freely and is therefore *not* re-exported here.
"""

from .capture import CAPTURING, GraphCapture, KernelNode
from .fuse import FusedGroup, fuse
from .plan import (
    GRAPH,
    OFF,
    ON,
    GraphPlan,
    PlanCache,
    build_plan,
    force_graph_mode,
    graph_mode,
    plan_cache,
    set_graph_mode,
)

__all__ = [
    "CAPTURING",
    "GraphCapture",
    "KernelNode",
    "FusedGroup",
    "fuse",
    "GRAPH",
    "ON",
    "OFF",
    "GraphPlan",
    "PlanCache",
    "build_plan",
    "force_graph_mode",
    "graph_mode",
    "plan_cache",
    "set_graph_mode",
]
