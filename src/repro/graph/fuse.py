"""Elementwise fusion over a captured kernel DAG.

Chains of adjacent elementwise nodes over the *same index space* compose
into a single fused dispatch: one launch, and intermediate buffers that
are produced and last consumed inside the chain never round-trip through
memory.  ScatterView contributions, segmented reductions, tallies, and
any node whose observed writes exceed its declared writes act as fusion
barriers — they either reorder memory traffic (scatter) or reduce across
the index space (tally), so composing past them would change semantics.

Import discipline: only ``repro.hardware.cost`` (pure dataclasses) may
be imported here — this module is reachable from ``repro.kokkos`` module
initialisation via ``repro.graph``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.cost import KernelProfile, fuse_profiles

from .capture import KernelNode


@dataclass
class FusedGroup:
    """One dispatch in the fused plan: either a fused elementwise chain
    (``len(nodes) > 1``), a lone elementwise node, or a barrier node."""

    nodes: list[KernelNode]
    #: Fused composite cost profile (``None`` when the member dispatches
    #: carried no profile — pure-Python helper stages).
    profile: KernelProfile | None = None
    #: Simulated seconds: barrier nodes keep their captured charge;
    #: fused chains are re-priced by the caller against the cost model.
    seconds: float = 0.0
    #: Buffers produced and last consumed inside the chain — eliminated
    #: intermediate Views.
    internal: tuple[str, ...] = ()
    saved_intermediate_bytes: float = 0.0
    meta: dict = field(default_factory=dict)

    @property
    def fused(self) -> bool:
        return len(self.nodes) > 1

    @property
    def name(self) -> str:
        if not self.fused:
            return self.nodes[0].name
        return "graph:fused[" + "+".join(n.name for n in self.nodes) + "]"

    @property
    def index_space(self) -> str:
        return str(self.nodes[0].meta.get("index_space", ""))


def _same_index_space(a: KernelNode, b: KernelNode) -> bool:
    ka = a.meta.get("index_space")
    kb = b.meta.get("index_space")
    return ka is not None and ka == kb


def _chain_internal_bytes(nodes: list[KernelNode]) -> tuple[tuple[str, ...], float]:
    """Buffers written inside the chain and never read after it.

    A buffer written by node *i* whose every read lies at nodes > *i*
    within the chain (and which is not listed as a chain output via
    ``meta['outputs']``) never needs to exist in memory once fused.
    Saved traffic is one write plus one read of the buffer per
    elimination, sized from ``meta['item_bytes']`` declarations.
    """
    chain_writes: dict[str, KernelNode] = {}
    for node in nodes:
        for label in node.writes:
            chain_writes.setdefault(label, node)
    outputs: set[str] = set()
    for node in nodes:
        outputs |= set(node.meta.get("outputs", ()))
    internal = []
    saved = 0.0
    for label, writer in chain_writes.items():
        if label in outputs:
            continue
        internal.append(label)
        item_bytes = float(writer.meta.get("item_bytes", {}).get(label, 0.0))
        # one streamed write + one streamed read eliminated
        saved += 2.0 * item_bytes * float(writer.size or 0.0)
    return tuple(internal), saved


def fuse(nodes: list[KernelNode]) -> list[FusedGroup]:
    """Greedily fuse maximal runs of adjacent fusable nodes.

    A run extends while the next node is elementwise, honest about its
    writes (``node.fusable``), and iterates the same index space.  Any
    other node — scatter, tally, reduction, or a stage caught writing
    Views it did not declare — terminates the run and stands alone as a
    barrier group.
    """
    groups: list[FusedGroup] = []
    run: list[KernelNode] = []

    def flush() -> None:
        if not run:
            return
        chain = list(run)
        run.clear()
        internal, saved = _chain_internal_bytes(chain)
        profiles = [n.profile for n in chain if n.profile is not None]
        group = FusedGroup(
            nodes=chain,
            seconds=sum(n.seconds for n in chain),
            internal=internal,
            saved_intermediate_bytes=saved,
        )
        if profiles:
            group.profile = fuse_profiles(
                profiles,
                name=group.name,
                saved_intermediate_bytes=saved,
            )
        groups.append(group)

    for node in nodes:
        if node.fusable:
            if run and not _same_index_space(run[-1], node):
                flush()
            run.append(node)
        else:
            flush()
            groups.append(
                FusedGroup(nodes=[node], profile=node.profile, seconds=node.seconds)
            )
    flush()
    return groups
