"""Kernel-DAG capture from the dispatch stream.

The tools registry already observes every ``parallel_for/reduce/scan``
dispatch; this module turns one timestep's worth of that stream into a
recorded DAG.  A :class:`GraphCapture` is armed around a force
computation: the force path opens one :class:`KernelNode` per declared
stage, the kokkos dispatch layer attributes each dispatch (policy, cost
profile, simulated seconds) to the open node, and the View layer reports
read/write provenance so the fuser can *prove* two adjacent nodes touch
compatible data before composing them.

Import discipline: this module must stay stdlib-only.  It is imported by
``repro.kokkos.parallel`` and ``repro.kokkos.view`` at module level, so
any dependency back into ``repro.kokkos`` would cycle.

The hot-path guard mirrors ``kp.TOOLS`` / ``metrics.SINKS``:
``CAPTURING`` is a plain list that is empty unless a capture is armed,
so uninstrumented dispatches pay a single falsy check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Falsy-guard stack of armed :class:`GraphCapture` objects.  Empty in
#: steady state; ``repro.kokkos.parallel`` and ``repro.kokkos.view``
#: check ``if capture.CAPTURING:`` before doing any capture work.
CAPTURING: list["GraphCapture"] = []


@dataclass
class KernelNode:
    """One captured dispatch in the per-step kernel DAG."""

    #: Stage name as declared by the force path (e.g. ``"rsq"``).
    name: str
    #: ``"for" | "reduce" | "scan"`` — which parallel pattern ran.
    kind: str = "for"
    #: Execution-space name the dispatch targeted.
    space: str = ""
    #: Policy parallelism (index-space size) observed at capture time.
    size: float = 0.0
    #: The policy object itself (held as ``Any``; replay re-dispatches
    #: the fused group against the head node's policy).
    policy: Any = None
    #: Resolved :class:`~repro.hardware.cost.KernelProfile` (held as
    #: ``Any`` to keep this module stdlib-only).
    profile: Any = None
    #: Simulated seconds charged by the cost model at capture time.
    seconds: float = 0.0
    #: View labels the stage declared it reads / writes.
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    #: View labels *observed* being read / written while the node was
    #: open (provenance from ``repro.kokkos.view``).  The fuser demotes
    #: a node to a barrier when ``observed_writes`` exceeds ``writes``.
    observed_reads: set[str] = field(default_factory=set)
    observed_writes: set[str] = field(default_factory=set)
    #: Elementwise over its index space (fusable) vs. barrier
    #: (ScatterView contribution, segmented reduction, tally, comm).
    elementwise: bool = False
    #: Opaque callable that re-executes the stage body against an
    #: environment dict (set by the force path, not by capture).
    fn: Any = None
    #: Stage metadata the replayer needs (index-space key, etc.).
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def fusable(self) -> bool:
        return self.elementwise and self.observed_writes <= set(self.writes)


class GraphCapture:
    """Records the kernel DAG for one timestep of a force path.

    Usage::

        cap = GraphCapture("PairLJCutKokkos")
        cap.arm()
        try:
            for stage in stages:
                node = cap.open_stage(stage_node)
                ...dispatch the stage...   # parallel.py attributes here
                cap.close_stage()
        finally:
            cap.disarm()
        nodes = cap.nodes
    """

    def __init__(self, label: str) -> None:
        self.label = label
        self.nodes: list[KernelNode] = []
        self._open: KernelNode | None = None

    # -- arming ---------------------------------------------------------
    def arm(self) -> None:
        CAPTURING.append(self)

    def disarm(self) -> None:
        if CAPTURING and CAPTURING[-1] is self:
            CAPTURING.pop()
        else:  # pragma: no cover - defensive; captures nest LIFO
            CAPTURING.remove(self)

    def __enter__(self) -> "GraphCapture":
        self.arm()
        return self

    def __exit__(self, *exc: object) -> None:
        self.disarm()

    # -- stage attribution ----------------------------------------------
    def open_stage(self, node: KernelNode) -> KernelNode:
        self._open = node
        self.nodes.append(node)
        return node

    def close_stage(self) -> None:
        self._open = None

    # -- hooks called from repro.kokkos ----------------------------------
    def on_dispatch(
        self,
        kind: str,
        name: str,
        policy: Any,
        space: str,
        size: float,
        profile: Any,
        seconds: float,
    ) -> None:
        """Attribute a charged dispatch to the open stage node.

        Dispatches observed with no stage open (e.g. scatter internals)
        are recorded as standalone barrier nodes so the DAG stays a
        faithful transcript of the step.
        """
        node = self._open
        if node is None:
            node = KernelNode(name=name, elementwise=False)
            self.nodes.append(node)
        node.kind = kind
        node.space = space
        node.size = size
        node.policy = policy
        node.profile = profile
        node.seconds = seconds

    def note_view_access(self, label: str, mode: str) -> None:
        """Record a View read (``mode='r'``) or write (``'w'``)."""
        node = self._open
        if node is None:
            return
        if mode == "w":
            node.observed_writes.add(label)
        else:
            node.observed_reads.add(label)
