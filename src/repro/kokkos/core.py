"""Execution spaces and library lifecycle.

Kokkos programs bracket their work in ``Kokkos::initialize`` /
``Kokkos::finalize`` and dispatch to strongly-typed execution spaces.  Here
the two spaces are :data:`Host` (the CPU reference node) and :data:`Device`
(one simulated GPU, selected at :func:`initialize` time).  A pure-host build
(``initialize(device=None)``) makes the Device space an alias of Host, which
is exactly how the paper's DualView synchronization "effectively becomes
inactive" in host-only configurations (section 3.2).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

from repro.hardware.cost import DeviceTimeline, KernelCostModel
from repro.hardware.cpu import CPUSpec, SKYLAKE_NODE
from repro.hardware.gpu import GPUSpec, get_gpu


@dataclass(frozen=True)
class ExecutionSpace:
    """A place code can run.  Compared by identity of the singleton objects."""

    name: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExecutionSpace({self.name})"


#: The host (CPU) execution space.
Host = ExecutionSpace("Host")
#: The device (GPU) execution space.
Device = ExecutionSpace("Device")


#: Host<->device copy engine parameters (PCIe/NVLink class).  DualView syncs
#: charge this; it is intentionally slow relative to HBM so the cost of
#: host/device ping-ponging — the GPU package's weakness the KOKKOS package
#: was built to avoid (section 1) — is visible in the ledger.
TRANSFER_BW_GBS = 55.0
TRANSFER_LATENCY_US = 8.0


@dataclass
class DeviceContext:
    """Global runtime state: which silicon each space maps to, plus ledgers."""

    gpu: GPUSpec | None
    cpu: CPUSpec = field(default_factory=lambda: SKYLAKE_NODE)
    cost_model: KernelCostModel = field(default_factory=KernelCostModel)
    timeline: DeviceTimeline = field(default_factory=DeviceTimeline)
    #: Forced shared-memory carveout (None = Kokkos heuristic), figure 3.
    carveout: float | None = None
    #: When set, every dispatched kernel's resolved profile is appended here
    #: (the benchmark runner captures one step's worth and rescales them).
    profile_log: list | None = None

    @property
    def host_only(self) -> bool:
        return self.gpu is None

    def spec_for(self, space: ExecutionSpace) -> GPUSpec | CPUSpec:
        """Silicon backing an execution space."""
        if space is Device and self.gpu is not None:
            return self.gpu
        return self.cpu

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` across the host-device link."""
        if self.host_only:
            return 0.0
        return TRANSFER_LATENCY_US * 1e-6 + nbytes / (TRANSFER_BW_GBS * 1e9)


_context: DeviceContext | None = None


def initialize(device: str | GPUSpec | None = "H100", cpu: CPUSpec | None = None) -> DeviceContext:
    """Start the runtime.

    ``device`` selects the simulated GPU by registry key (or spec), or
    ``None`` for a pure-host build.  Re-initializing replaces the previous
    context (unlike real Kokkos this is legal, because tests want it).
    """
    global _context
    gpu = get_gpu(device) if isinstance(device, str) else device
    _context = DeviceContext(gpu=gpu, cpu=cpu or SKYLAKE_NODE)
    return _context


def finalize() -> None:
    """Tear down the runtime."""
    global _context
    _context = None


def is_initialized() -> bool:
    return _context is not None


def device_context() -> DeviceContext:
    """The active context; auto-initializes with the default device so small
    scripts and doctests need no boilerplate."""
    global _context
    if _context is None:
        _context = initialize()
    return _context


@contextlib.contextmanager
def on_device(device: str | GPUSpec | None, carveout: float | None = None):
    """Temporarily retarget the Device space (used by architecture sweeps).

    Yields the temporary context; the previous context (including its
    timeline) is restored on exit.
    """
    global _context
    saved = _context
    try:
        ctx = initialize(device)
        ctx.carveout = carveout
        yield ctx
    finally:
        _context = saved


def fence(label: str = "") -> None:
    """Synchronization point.  The simulated dispatch is synchronous, so a
    fence costs nothing — but it still fires the KokkosP ``begin/end_fence``
    callbacks so attached tools (trace, logger) see where the engine
    synchronizes, exactly as the real Kokkos Tools interface does."""
    from repro.tools import registry as kp

    if kp.TOOLS:
        kp.fence(label)
