"""Execution policies: Range, MDRange, Team (paper section 3.3).

Policies carry *where* (execution space) and *how much* (iteration space,
team geometry, scratch demand) a kernel runs.  The dispatch layer uses them
both to hand the functor its index space and to inform the cost model about
exposed parallelism and shared-memory pressure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.kokkos.core import Device, ExecutionSpace


@dataclass(frozen=True)
class RangePolicy:
    """A 1-D iteration range ``[begin, end)``."""

    space: ExecutionSpace
    begin: int
    end: int

    def __init__(self, space: ExecutionSpace | int, begin: int | None = None, end: int | None = None):
        # Convenience: RangePolicy(n) means Device space, [0, n).
        if isinstance(space, (int, np.integer)):
            object.__setattr__(self, "space", Device)
            object.__setattr__(self, "begin", 0)
            object.__setattr__(self, "end", int(space))
            return
        if end is None:
            end = begin
            begin = 0
        if begin is None or end is None:
            raise TypeError("RangePolicy requires an extent")
        if end < begin:
            raise ValueError(f"RangePolicy end {end} < begin {begin}")
        object.__setattr__(self, "space", space)
        object.__setattr__(self, "begin", int(begin))
        object.__setattr__(self, "end", int(end))

    @property
    def size(self) -> int:
        return self.end - self.begin

    def indices(self) -> np.ndarray:
        return np.arange(self.begin, self.end)

    @property
    def parallelism(self) -> int:
        return self.size


@dataclass(frozen=True)
class MDRangePolicy:
    """A multi-dimensional iteration range with optional tiling.

    Tiling ("can be beneficial to achieve better cache locality in
    multi-dimensional loop patterns", section 3.3) is metadata for the cost
    model and for kernels that implement blocked traversals — e.g. the
    3-D tiled traversal of ComputeYi (section 4.3.2).
    """

    space: ExecutionSpace
    lower: tuple[int, ...]
    upper: tuple[int, ...]
    tile: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if len(self.lower) != len(self.upper):
            raise ValueError("MDRangePolicy lower/upper rank mismatch")
        if any(u < l for l, u in zip(self.lower, self.upper)):
            raise ValueError("MDRangePolicy upper < lower")
        if self.tile is not None and len(self.tile) != len(self.lower):
            raise ValueError("MDRangePolicy tile rank mismatch")

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(u - l for l, u in zip(self.lower, self.upper))

    @property
    def size(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 0

    @property
    def parallelism(self) -> int:
        return self.size

    def tiles(self) -> Iterator[tuple[slice, ...]]:
        """Iterate tile slab slices in the canonical order."""
        tile = self.tile or self.shape
        grids = [range(l, u, max(t, 1)) for l, u, t in zip(self.lower, self.upper, tile)]

        def rec(dim: int, prefix: tuple[slice, ...]) -> Iterator[tuple[slice, ...]]:
            if dim == len(grids):
                yield prefix
                return
            for start in grids[dim]:
                stop = min(start + tile[dim], self.upper[dim])
                yield from rec(dim + 1, prefix + (slice(start, stop),))

        yield from rec(0, ())


@dataclass(frozen=True)
class TeamPolicy:
    """Hierarchical parallelism: a league of teams of threads of lanes.

    ``scratch_kb`` is the per-team software-managed scratch request — the
    hook through which kernels participate in the shared-memory carveout
    study (figure 3).
    """

    space: ExecutionSpace
    league_size: int
    team_size: int = 1
    vector_length: int = 1
    scratch_kb: float = 0.0

    def __post_init__(self) -> None:
        if self.league_size < 0 or self.team_size < 1 or self.vector_length < 1:
            raise ValueError("invalid TeamPolicy geometry")
        if self.scratch_kb < 0:
            raise ValueError("negative scratch request")

    @property
    def parallelism(self) -> int:
        return self.league_size * self.team_size * self.vector_length

    def handle(self) -> "TeamHandle":
        return TeamHandle(self)


@dataclass
class TeamHandle:
    """What a team-parallel functor receives.

    Vectorized kernels use the geometry to shape their batch loops; the
    scratch pad is a real allocation so staging logic is executable.
    """

    policy: TeamPolicy
    _scratch: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def league_size(self) -> int:
        return self.policy.league_size

    @property
    def team_size(self) -> int:
        return self.policy.team_size

    @property
    def vector_length(self) -> int:
        return self.policy.vector_length

    def team_scratch(self, label: str, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """Allocate (or fetch) a named scratch pad.

        The allocation models *one* team's pad; vectorized kernels reuse it
        across the league exactly like resident teams reuse an SM's shared
        memory.  Requests beyond the policy's declared ``scratch_kb`` raise,
        mirroring a CUDA launch failure.
        """
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        if nbytes > self.policy.scratch_kb * 1024.0 + 1e-9:
            raise MemoryError(
                f"scratch request {label!r} ({nbytes} B) exceeds the policy's "
                f"declared {self.policy.scratch_kb} kB"
            )
        pad = self._scratch.get(label)
        if pad is None or pad.shape != tuple(shape) or pad.dtype != np.dtype(dtype):
            pad = np.zeros(shape, dtype=dtype)
            self._scratch[label] = pad
        return pad


def TeamThreadRange(team: TeamHandle, extent: int) -> np.ndarray:
    """Indices a team's threads cover collaboratively (vectorized form)."""
    return np.arange(int(extent))


def ThreadVectorRange(team: TeamHandle, extent: int) -> np.ndarray:
    """Indices a thread's vector lanes cover (vectorized form)."""
    return np.arange(int(extent))
