"""Profiling conveniences over the device timeline.

The Kokkos Tools ecosystem exposes per-kernel regions; benchmarks here use
these helpers to snapshot, diff, and pretty-print the simulated-time ledger
(the analogue of the paper's Nsight Systems kernel timings in section 4.4).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

from repro.kokkos.core import device_context


@dataclass
class TimelineSnapshot:
    """Totals captured at a point in time, for before/after diffs."""

    entries: dict[str, float]

    def delta(self) -> dict[str, float]:
        """Per-kernel seconds accumulated since this snapshot."""
        now = device_context().timeline.entries
        out: dict[str, float] = {}
        for name, total in now.items():
            d = total - self.entries.get(name, 0.0)
            if d > 0.0:
                out[name] = d
        return out

    def delta_total(self) -> float:
        return sum(self.delta().values())


def snapshot() -> TimelineSnapshot:
    return TimelineSnapshot(dict(device_context().timeline.entries))


@contextlib.contextmanager
def region(out: dict[str, float], key: str = "seconds"):
    """Accumulate the simulated time of a code region into ``out[key]``."""
    snap = snapshot()
    try:
        yield
    finally:
        out[key] = out.get(key, 0.0) + snap.delta_total()


def kernel_report(top: int = 20) -> str:
    """Human-readable per-kernel ledger, most expensive first."""
    rows = device_context().timeline.breakdown()[:top]
    if not rows:
        return "(no kernels recorded)"
    width = max(len(name) for name, _, _ in rows)
    lines = [f"{'kernel':<{width}}  {'sim time (s)':>14}  {'launches':>8}"]
    for name, seconds, count in rows:
        lines.append(f"{name:<{width}}  {seconds:>14.6e}  {count:>8d}")
    return "\n".join(lines)
