"""Profiling conveniences over the device timeline.

The Kokkos Tools ecosystem exposes per-kernel regions; benchmarks here use
these helpers to snapshot, diff, and pretty-print the simulated-time ledger
(the analogue of the paper's Nsight Systems kernel timings in section 4.4).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

from repro.kokkos.core import device_context


@dataclass
class TimelineSnapshot:
    """Totals captured at a point in time, for before/after diffs."""

    entries: dict[str, float]
    counts: dict[str, int] = field(default_factory=dict)

    def delta(self) -> dict[str, float]:
        """Per-kernel seconds accumulated since this snapshot.

        A total below the snapshot means the device context (and its
        timeline) was reset in between: the accumulator restarted from zero,
        so the whole current total is fresh work, not negative progress.
        """
        now = device_context().timeline.entries
        out: dict[str, float] = {}
        for name, total in now.items():
            base = self.entries.get(name, 0.0)
            d = total - base if total >= base else total
            if d > 0.0:
                out[name] = d
        return out

    def delta_total(self) -> float:
        return sum(self.delta().values())

    def delta_counts(self) -> dict[str, int]:
        """Per-kernel launch counts since this snapshot (reset-tolerant).

        The counting analogue of :meth:`delta` — e.g. how many
        ``NeighborBinAssembly`` launches a run performed, the assertion
        behind "one bin-grid construction per rebuild".
        """
        now = device_context().timeline.counts
        out: dict[str, int] = {}
        for name, total in now.items():
            base = self.counts.get(name, 0)
            d = total - base if total >= base else total
            if d > 0:
                out[name] = d
        return out


def snapshot() -> TimelineSnapshot:
    ctx = device_context()
    return TimelineSnapshot(
        dict(ctx.timeline.entries), dict(ctx.timeline.counts)
    )


@contextlib.contextmanager
def region(out: dict[str, float], key: str = "seconds"):
    """Accumulate the simulated time of a code region into ``out[key]``."""
    snap = snapshot()
    try:
        yield
    finally:
        out[key] = out.get(key, 0.0) + snap.delta_total()


def overlap_phases(
    entries: dict[str, float] | None = None,
) -> dict[str, tuple[float, float]]:
    """Per-kernel ``(interior, boundary)`` seconds for phase-split kernels.

    Overlapped force passes record under ``<kernel>/interior`` and
    ``<kernel>/boundary``; this folds the suffixed entries back onto the
    base kernel name.  Defaults to the active timeline.
    """
    if entries is None:
        entries = device_context().timeline.entries
    out: dict[str, list[float]] = {}
    for name, seconds in entries.items():
        for suffix, slot in (("/interior", 0), ("/boundary", 1)):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                out.setdefault(base, [0.0, 0.0])[slot] += seconds
    return {k: (v[0], v[1]) for k, v in out.items()}


def overlap_fraction(entries: dict[str, float] | None = None) -> float:
    """Fraction of phase-split kernel time spent in the interior pass.

    This is the share of force work that ran concurrently with the halo
    exchange; 0.0 when no kernel recorded phases (overlap off, or no
    multi-rank steps).
    """
    phases = overlap_phases(entries)
    interior = sum(v[0] for v in phases.values())
    total = sum(v[0] + v[1] for v in phases.values())
    return interior / total if total > 0.0 else 0.0


def kernel_report(top: int = 20) -> str:
    """Human-readable per-kernel ledger, most expensive first."""
    rows = device_context().timeline.breakdown()[:top]
    if not rows:
        return "(no kernels recorded)"
    width = max(len(name) for name, _, _ in rows)
    lines = [f"{'kernel':<{width}}  {'sim time (s)':>14}  {'launches':>8}"]
    for name, seconds, count in rows:
        lines.append(f"{name:<{width}}  {seconds:>14.6e}  {count:>8d}")
    return "\n".join(lines)
