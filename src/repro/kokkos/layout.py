"""Data layouts.

Kokkos Views encode their memory layout in the type: ``LayoutRight``
(row-major, last index fastest — the natural CPU layout) and ``LayoutLeft``
(column-major, first index fastest — the coalescing-friendly GPU layout).
Section 4.1 of the paper leans on this for neighbor lists: "the neighbor
list for each atom must be contiguous in memory to enable caching [on CPUs],
while the neighbor lists of consecutive atoms must be interleaved to achieve
performance on GPU architectures.  Using 2D Views ... achieves this data
layout adjustment by default."

NumPy expresses both natively via the ``order`` flag, so layout here is a
thin tag that the View constructor maps to ``order="C"`` / ``order="F"``
and that tests can assert on via ``ndarray.flags``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kokkos.core import Device, ExecutionSpace


@dataclass(frozen=True)
class Layout:
    name: str
    numpy_order: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: Row-major (C order): last index fastest.  Default for Host views.
LayoutRight = Layout("LayoutRight", "C")
#: Column-major (Fortran order): first index fastest.  Default for Device
#: views, giving coalesced access when the first index is the thread index.
LayoutLeft = Layout("LayoutLeft", "F")


def default_layout(space: ExecutionSpace) -> Layout:
    """The architecture-appropriate default layout for a memory space."""
    return LayoutLeft if space is Device else LayoutRight
