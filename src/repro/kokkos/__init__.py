"""A Kokkos-style performance-portability layer on NumPy.

This package reproduces the *semantics* of the Kokkos abstractions the paper
relies on (section 3): multi-dimensional Views with space-dependent layouts,
DualViews with modify/sync tracking, ScatterViews with selectable
write-deconfliction strategies, execution spaces, and the
``parallel_for`` / ``parallel_reduce`` / ``parallel_scan`` dispatch patterns
with Range/MDRange/Team policies.

Execution is functional — kernels run as vectorized NumPy — while the
*performance* of each dispatch is charged to a simulated device through the
:mod:`repro.hardware` cost model, using the :class:`KernelProfile` each
kernel declares.  That split is what lets a pure-Python library study the
performance questions the paper asks (cache carveouts, atomic throughput,
thread starvation) without silicon.

Quick tour::

    import repro.kokkos as kk

    kk.initialize(device="H100")
    x = kk.View((n, 3), space=kk.Device, label="x")
    kk.parallel_for("scale", kk.RangePolicy(kk.Device, 0, n),
                    lambda i: x.data.__imul__(2.0),
                    profile=kk.KernelProfile("scale", bytes_streamed=x.nbytes))
    kk.finalize()
"""

from repro.hardware.cost import KernelProfile
from repro.kokkos.core import (
    Device,
    DeviceContext,
    ExecutionSpace,
    Host,
    device_context,
    fence,
    finalize,
    initialize,
    is_initialized,
    on_device,
)
from repro.kokkos.layout import LayoutLeft, LayoutRight, default_layout
from repro.kokkos.view import View, create_mirror_view, deep_copy
from repro.kokkos.dual_view import DualView
from repro.kokkos.scatter_view import ScatterView
from repro.kokkos.policies import (
    MDRangePolicy,
    RangePolicy,
    TeamHandle,
    TeamPolicy,
    TeamThreadRange,
    ThreadVectorRange,
)
from repro.kokkos.parallel import parallel_for, parallel_reduce, parallel_scan

__all__ = [
    "KernelProfile",
    "ExecutionSpace",
    "Host",
    "Device",
    "DeviceContext",
    "initialize",
    "finalize",
    "is_initialized",
    "device_context",
    "on_device",
    "fence",
    "LayoutRight",
    "LayoutLeft",
    "default_layout",
    "View",
    "deep_copy",
    "create_mirror_view",
    "DualView",
    "ScatterView",
    "RangePolicy",
    "MDRangePolicy",
    "TeamPolicy",
    "TeamHandle",
    "TeamThreadRange",
    "ThreadVectorRange",
    "parallel_for",
    "parallel_reduce",
    "parallel_scan",
]
