"""Segmented-reduction scatter: the fast functional path behind ScatterView.

The paper's ScatterView (section 3.2) deconflicts unstructured writes with
atomics on GPUs and per-thread duplication + a combine pass on CPUs.  The
functional analogue of a hardware atomic add is ``np.add.at`` — correct, but
unbuffered and typically 10-50x slower than an equivalent *segmented
reduction*: group the contributions by destination (``np.bincount`` for
narrow values, ``np.add.reduceat`` over pre-sorted segments for wide ones)
and add the per-destination sums in one vectorized pass.

Both paths accumulate each destination's contributions in the original input
order (bincount walks the input sequentially; reduceat sums each contiguous
segment left to right, and the segment orderings used here are stable), so
the two modes produce bit-identical results — the equivalence the tests
assert and the golden thermo baselines rely on.

Mode selection mirrors the paper: :func:`scatter_mode` resolves per
execution space (Device -> ``atomic``, Host -> ``segmented``, matching
"on GPUs ... atomic operations need to be used" vs CPU duplication), and
:func:`force_scatter_mode` lets benchmarks pin one mode globally to measure
the other as a baseline.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.kokkos.core import Device, ExecutionSpace

#: Contribution modes.
ATOMIC = "atomic"  # np.add.at — the hardware-atomic semantic model
SEGMENTED = "segmented"  # sort/bincount/reduceat segmented reduction

_MODES = (ATOMIC, SEGMENTED)

#: Global override installed by :func:`force_scatter_mode` (benchmarks).
_forced_mode: str | None = None


def scatter_mode(space: ExecutionSpace | None = None) -> str:
    """Effective contribution mode for an execution space.

    The forced override (benchmark baselines) wins; otherwise Device maps to
    ``atomic`` and Host (or space-less host code) to ``segmented`` — the
    architecture split of the paper's ScatterView discussion.
    """
    if _forced_mode is not None:
        return _forced_mode
    return ATOMIC if space is Device else SEGMENTED


def forced_scatter_mode() -> str | None:
    """The benchmark-forced global mode, if any."""
    return _forced_mode


def set_scatter_mode(mode: str | None) -> str | None:
    """Install (or clear, with None) the global mode override; return the old.

    Unknown names fail here, at the setter, with a did-you-mean hint — not
    later inside a dispatch.  This is the non-scoped form the autotuner uses
    to lock in a winner for the rest of a run.
    """
    global _forced_mode
    if mode is not None and mode not in _MODES:
        from repro.core.errors import unknown_choice

        raise ValueError(unknown_choice("scatter mode", mode, _MODES))
    prev = _forced_mode
    _forced_mode = mode
    return prev


@contextmanager
def force_scatter_mode(mode: str | None) -> Iterator[None]:
    """Pin the contribution mode globally (None restores per-space choice)."""
    prev = set_scatter_mode(mode)
    try:
        yield
    finally:
        set_scatter_mode(prev)


# ----------------------------------------------------------------- reductions
def _sorted_segments(index: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(starts, targets)`` of the contiguous runs of a sorted index."""
    starts = np.flatnonzero(np.r_[True, index[1:] != index[:-1]])
    return starts, index[starts]


def segment_sum(
    values: np.ndarray,
    index: np.ndarray,
    n: int,
    *,
    assume_sorted: bool = False,
) -> np.ndarray:
    """Dense ``out`` of length ``n`` with ``out[k] = sum(values[index == k])``.

    1-D values.  Real values go through ``np.bincount``; complex values
    through two bincounts (real/imag).  ``assume_sorted`` routes through
    ``np.add.reduceat`` over the contiguous runs instead — same result,
    no histogram pass.
    """
    values = np.asarray(values)
    index = np.asarray(index)
    if values.ndim != 1:
        raise ValueError(f"segment_sum expects 1-D values, got shape {values.shape}")
    if values.shape != index.shape:
        raise ValueError(f"values {values.shape} vs index {index.shape} mismatch")
    if values.size == 0:
        return np.zeros(n, dtype=np.promote_types(values.dtype, np.float64))
    if assume_sorted:
        starts, targets = _sorted_segments(index)
        out = np.zeros(n, dtype=np.promote_types(values.dtype, np.float64))
        out[targets] = np.add.reduceat(values, starts)
        return out
    if np.iscomplexobj(values):
        return (
            np.bincount(index, weights=values.real, minlength=n)
            + 1j * np.bincount(index, weights=values.imag, minlength=n)
        )
    return np.bincount(index, weights=values, minlength=n)


def segment_sum_vec(
    values: np.ndarray,
    index: np.ndarray,
    n: int,
    *,
    assume_sorted: bool = False,
) -> np.ndarray:
    """Row-segmented sum of 2-D ``values``: ``out[k] += values[index == k]``.

    Sorted indices reduce via one ``np.add.reduceat`` over axis 0 (the fast
    path for wide rows, e.g. SNAP's per-pair Wigner blocks).  Unsorted narrow
    values (force vectors) use one bincount per column; unsorted wide values
    are stably sorted first so per-destination accumulation order — and thus
    the bit pattern — matches ``np.add.at``.
    """
    values = np.asarray(values)
    index = np.asarray(index)
    if values.ndim == 1:
        return segment_sum(values, index, n, assume_sorted=assume_sorted)
    if values.ndim != 2:
        raise ValueError(f"segment_sum_vec expects <=2-D values, got {values.shape}")
    if values.shape[0] != index.shape[0]:
        raise ValueError(f"values {values.shape} vs index {index.shape} mismatch")
    ncols = values.shape[1]
    out_dtype = np.promote_types(values.dtype, np.float64)
    if values.shape[0] == 0 or ncols == 0:
        return np.zeros((n, ncols), dtype=out_dtype)
    if not assume_sorted and (ncols > 4 or np.iscomplexobj(values)):
        order = np.argsort(index, kind="stable")
        values, index = values[order], index[order]
        assume_sorted = True
    if assume_sorted:
        starts, targets = _sorted_segments(index)
        out = np.zeros((n, ncols), dtype=out_dtype)
        out[targets] = np.add.reduceat(values, starts, axis=0)
        return out
    out = np.empty((n, ncols), dtype=out_dtype)
    for c in range(ncols):
        out[:, c] = np.bincount(index, weights=values[:, c], minlength=n)
    return out


# -------------------------------------------------------------- scatter adds
def scatter_add(
    out: np.ndarray,
    index: np.ndarray,
    values: np.ndarray,
    *,
    mode: str | None = None,
    space: ExecutionSpace | None = None,
    assume_sorted: bool = False,
) -> None:
    """``out[index] += values`` with a selectable deconfliction mode.

    ``mode`` overrides; otherwise :func:`scatter_mode` resolves it from the
    execution space (honoring any benchmark-forced global mode).  The
    segmented path reduces per destination first and folds the dense result
    in — bit-identical to the ``np.add.at`` atomic path.
    """
    if mode is None:
        mode = scatter_mode(space)
    if mode == ATOMIC or out.ndim > 2:
        np.add.at(out, index, values)
        return
    index = np.asarray(index)
    values = np.asarray(values)
    want = index.shape + out.shape[1:]
    if values.shape != want:  # np.add.at-style broadcast
        values = np.broadcast_to(values, want)
    if values.size == 0 or index.size == 0:
        return
    n = out.shape[0]
    if out.ndim == 1:
        out += segment_sum(values, index, n, assume_sorted=assume_sorted)
    else:
        out += segment_sum_vec(values, index, n, assume_sorted=assume_sorted)


def scatter_sub(
    out: np.ndarray,
    index: np.ndarray,
    values: np.ndarray,
    *,
    mode: str | None = None,
    space: ExecutionSpace | None = None,
    assume_sorted: bool = False,
) -> None:
    """``out[index] -= values`` (see :func:`scatter_add`)."""
    if mode is None:
        mode = scatter_mode(space)
    if mode == ATOMIC:
        np.subtract.at(out, index, values)
        return
    scatter_add(out, index, -np.asarray(values), mode=mode, assume_sorted=assume_sorted)


# ------------------------------------------------------- segment reductions
def segment_dot(
    a: np.ndarray, b: np.ndarray, starts: np.ndarray, ends: np.ndarray
) -> np.ndarray:
    """Per-segment inner products: ``out[k] = a[s_k:e_k] . b[s_k:e_k]``.

    The replica batch's per-replica thermo/tally plans are built on this:
    each replica owns one contiguous run of the stacked arrays, and a dot
    over that run is *the same reduction* (same length, same values, same
    contiguity) the solo code performs on its own arrays — so the per-replica
    results are bit-identical to solo runs, which is the property the
    differential tests enforce.
    """
    starts = np.asarray(starts)
    ends = np.asarray(ends)
    out = np.empty(starts.shape[0])
    for k in range(starts.shape[0]):
        out[k] = np.dot(a[starts[k] : ends[k]], b[starts[k] : ends[k]])
    return out


def segment_slice_sums(
    values: np.ndarray, starts: np.ndarray, ends: np.ndarray
) -> np.ndarray:
    """Per-segment sums over contiguous slices: ``out[k] = values[s_k:e_k].sum()``.

    Same bitwise contract as :func:`segment_dot` — each slice goes through
    NumPy's pairwise summation exactly as a solo run's ``.sum()`` would.
    """
    starts = np.asarray(starts)
    ends = np.asarray(ends)
    out = np.empty(starts.shape[0])
    for k in range(starts.shape[0]):
        out[k] = values[starts[k] : ends[k]].sum()
    return out


# ----------------------------------------------------------- column scatters
def column_scatter_plan(cols: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precompute ``(perm, starts, targets)`` for a column-wise scatter.

    For ``out[:, cols[t]] += vals[:, t]`` with a fixed column index (SNAP's
    contraction-tensor scatters), the stable permutation groups terms by
    destination column; ``reduceat`` then reduces each group in one pass.
    The plan depends only on ``cols`` and is memoized by the callers (it is
    neighbor- and step-invariant: a property of the quantum-number tensor).
    """
    perm = np.argsort(cols, kind="stable")
    sorted_cols = cols[perm]
    starts, targets = _sorted_segments(sorted_cols)
    return perm, starts, targets


def scatter_add_columns(
    out: np.ndarray,
    vals: np.ndarray,
    plan: tuple[np.ndarray, np.ndarray, np.ndarray],
    *,
    mode: str | None = None,
    cols: np.ndarray | None = None,
) -> None:
    """``out[:, cols[t]] += vals[:, t]`` via a :func:`column_scatter_plan`.

    In ``atomic`` mode (benchmark baseline) falls back to ``np.add.at`` with
    the original ``cols`` (which must then be supplied).
    """
    if mode is None:
        mode = scatter_mode()
    if mode == ATOMIC:
        if cols is None:
            raise ValueError("atomic column scatter requires the original cols")
        rows = np.arange(out.shape[0])[:, None]
        np.add.at(out, (rows, cols[None, :]), vals)
        return
    if vals.shape[1] == 0:
        return
    perm, starts, targets = plan
    out[:, targets] += np.add.reduceat(vals[:, perm], starts, axis=1)
