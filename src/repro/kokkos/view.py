"""Multi-dimensional Views.

:class:`View` is the Kokkos primary data structure (paper section 3.2): a
labeled multi-dimensional array tagged with a memory space and a layout.
Here it wraps a NumPy array whose ``order`` matches the layout, so layout
decisions made by the portability layer are *real* — transposed traversals
genuinely change stride patterns, which the tests assert.

Views support the interoperability trick LAMMPS uses to alias its classic
raw-pointer fields onto the host side of Kokkos data (figure 1): the
underlying ndarray is exposed as ``.data`` and may be handed to non-Kokkos
code, which then sees every Kokkos-side host update for free.
"""

from __future__ import annotations

import weakref
from typing import Any

import numpy as np

from repro.graph import capture as graph_capture
from repro.kokkos.core import ExecutionSpace, Host
from repro.kokkos.layout import Layout, default_layout
from repro.tools import registry as kp


def _track_allocation(view: "View") -> None:
    """Fire ``allocate_data`` and arrange the matching ``deallocate_data``.

    Only called while tools are attached, so untracked runs never pay for
    the weakref machinery.  The shared box keeps the deallocation size
    honest across ``resize``.
    """
    box = view._mem_box = [view.space.name, view.label or "unnamed", view.nbytes]
    kp.allocate_data(*box)
    weakref.finalize(view, _release_allocation, box)


def _release_allocation(box: list) -> None:
    if kp.TOOLS:
        kp.deallocate_data(*box)


class View:
    """A labeled, space-tagged, layout-tagged ndarray wrapper.

    Supports the subset of the Kokkos View API the MD engine needs:
    indexing (delegated to NumPy), ``shape``/``dtype``/``label``, layout
    inspection, ``resize`` (preserving leading contents, like
    ``Kokkos::resize``), and ``fill``.
    """

    __slots__ = ("_data", "label", "space", "layout", "_mem_box", "__weakref__")

    def __init__(
        self,
        shape: int | tuple[int, ...],
        dtype: Any = np.float64,
        *,
        space: ExecutionSpace = Host,
        layout: Layout | None = None,
        label: str = "",
        data: np.ndarray | None = None,
    ) -> None:
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        self.space = space
        self.layout = layout or default_layout(space)
        self.label = label
        if data is not None:
            if tuple(data.shape) != tuple(shape):
                raise ValueError(
                    f"view {label!r}: data shape {data.shape} != requested {shape}"
                )
            self._data = np.asarray(data, dtype=dtype, order=self.layout.numpy_order)
        else:
            self._data = np.zeros(shape, dtype=dtype, order=self.layout.numpy_order)
        self._mem_box = None
        if kp.TOOLS:
            _track_allocation(self)

    # ------------------------------------------------------------- basics
    @property
    def data(self) -> np.ndarray:
        """The backing ndarray (aliasable by non-Kokkos code)."""
        if graph_capture.CAPTURING:
            # handing out the raw array: conservatively a read (writes
            # through it are invisible, so fusable stages must mutate
            # via __setitem__/fill or declare the write)
            graph_capture.CAPTURING[-1].note_view_access(self.label, "r")
        return self._data

    @property
    def shape(self) -> tuple[int, ...]:
        return self._data.shape

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def nbytes(self) -> int:
        return self._data.nbytes

    @property
    def rank(self) -> int:
        return self._data.ndim

    def extent(self, dim: int) -> int:
        """Kokkos-style per-dimension size."""
        return self._data.shape[dim]

    def __len__(self) -> int:
        return self._data.shape[0]

    def __getitem__(self, idx):
        if graph_capture.CAPTURING:
            graph_capture.CAPTURING[-1].note_view_access(self.label, "r")
        return self._data[idx]

    def __setitem__(self, idx, value) -> None:
        if graph_capture.CAPTURING:
            graph_capture.CAPTURING[-1].note_view_access(self.label, "w")
        self._data[idx] = value

    def __array__(self, dtype=None, copy=None):
        if dtype is not None:
            return self._data.astype(dtype)
        return self._data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"View({self.label!r}, shape={self.shape}, dtype={self.dtype}, "
            f"space={self.space.name}, layout={self.layout})"
        )

    # ------------------------------------------------------------ mutation
    def fill(self, value) -> None:
        if graph_capture.CAPTURING:
            graph_capture.CAPTURING[-1].note_view_access(self.label, "w")
        self._data[...] = value

    def resize(self, new_shape: int | tuple[int, ...]) -> None:
        """Grow/shrink, preserving the overlapping leading region.

        Mirrors ``Kokkos::resize``: contents within the intersection of old
        and new extents survive.  Used by the ReaxFF quad-table kernels,
        which count, resize, then fill (section 4.2.1).
        """
        if isinstance(new_shape, (int, np.integer)):
            new_shape = (int(new_shape),)
        new = np.zeros(new_shape, dtype=self._data.dtype, order=self.layout.numpy_order)
        overlap = tuple(
            slice(0, min(o, n)) for o, n in zip(self._data.shape, new_shape)
        )
        if all(s.stop > 0 for s in overlap) and len(overlap) == len(new_shape):
            new[overlap] = self._data[overlap]
        self._data = new
        if kp.TOOLS:
            if self._mem_box is not None:
                kp.deallocate_data(*self._mem_box)
                self._mem_box[2] = self.nbytes
                kp.allocate_data(*self._mem_box)
            else:
                # first seen by the tools at resize time: start tracking now
                _track_allocation(self)
        elif self._mem_box is not None:
            # tools detached between allocation and resize: keep the box in
            # step so the eventual finalize frees the right size
            self._mem_box[2] = self.nbytes

    def copy(self) -> "View":
        """Deep copy into a new View of the same space/layout."""
        out = View(
            self.shape,
            self.dtype,
            space=self.space,
            layout=self.layout,
            label=self.label,
        )
        out._data[...] = self._data
        return out


def deep_copy(dst: View, src: View | np.ndarray) -> None:
    """Copy contents between Views (layout conversion handled by NumPy)."""
    src_arr = src.data if isinstance(src, View) else np.asarray(src)
    if dst.shape != tuple(src_arr.shape):
        raise ValueError(f"deep_copy shape mismatch: {dst.shape} vs {src_arr.shape}")
    dst.data[...] = src_arr
    if kp.TOOLS:
        # same-process copy: no transfer cost, but tools still see the event
        src_space = src.space.name if isinstance(src, View) else "Host"
        src_label = src.label if isinstance(src, View) else "ndarray"
        kp.deep_copy(dst.space.name, dst.label, src_space, src_label, dst.nbytes, 0.0)


def create_mirror_view(space: ExecutionSpace, src: View) -> View:
    """A compatible View in another space (same extents, space's layout)."""
    return View(src.shape, src.dtype, space=space, label=src.label + "_mirror")
