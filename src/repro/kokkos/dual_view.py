"""DualView: paired host/device storage with modify/sync tracking.

Paper section 3.2: "The Kokkos variants of styles in LAMMPS generally
contain host and device variants of data encapsulated in a
``Kokkos::DualView`` ... it has functionality to keep track of when data was
modified, and thus when data has to be synced ... simply calling sync inside
a LAMMPS style when it needs to access a data field will only incur the
overhead of actual memory transfer if the data was last modified in the
other memory space.  Thus, no global knowledge of the required data transfer
patterns is necessary."

That protocol is reproduced bit-for-bit: monotonically increasing
modification counters per space, ``sync()`` copying only when stale, and —
in host-only builds — the whole mechanism collapsing to a no-op because both
"sides" share one allocation.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.kokkos.core import Device, ExecutionSpace, Host, device_context
from repro.kokkos.view import View
from repro.tools import metrics
from repro.tools import registry as kp


class DualViewModifyError(RuntimeError):
    """The modify-both-spaces hazard: both sides written with no sync between.

    ``modify_host()`` followed by ``modify_device()`` (or vice versa)
    without an intervening ``sync`` means each side holds updates the other
    lacks; whichever direction syncs next would silently clobber one side.
    Real Kokkos debug builds abort here ("Concurrent modification of host
    and device views"); we raise with the view named so the offending style
    is identifiable.
    """


class DualView:
    """Host + device views of one logical array, with staleness tracking."""

    __slots__ = ("h_view", "d_view", "label", "_modified", "_host_only")

    def __init__(
        self,
        shape: int | tuple[int, ...],
        dtype: Any = np.float64,
        *,
        label: str = "",
    ) -> None:
        ctx = device_context()
        self.label = label
        self._host_only = ctx.host_only
        self.h_view = View(shape, dtype, space=Host, label=label + "_h")
        if self._host_only:
            # Pure host build: device view aliases the host allocation, so
            # syncs can never copy anything (section 3.2, last paragraph).
            self.d_view = self.h_view
        else:
            self.d_view = View(shape, dtype, space=Device, label=label + "_d")
        self._modified = {Host: 0, Device: 0}

    # ------------------------------------------------------------- access
    def view(self, space: ExecutionSpace) -> View:
        return self.d_view if space is Device else self.h_view

    @property
    def shape(self) -> tuple[int, ...]:
        return self.h_view.shape

    @property
    def dtype(self) -> np.dtype:
        return self.h_view.dtype

    # ----------------------------------------------------- modify protocol
    def modify(self, space: ExecutionSpace) -> None:
        """Declare that ``space``'s copy has been written.

        Raises :class:`DualViewModifyError` on the modify-both-spaces
        hazard: writing ``space`` while the other side already holds newer,
        unsynced data would leave updates on both sides with no correct
        sync direction.
        """
        other = Device if space is Host else Host
        if self._modified[other] > self._modified[space]:
            raise DualViewModifyError(
                f"DualView {self.label or 'unnamed'!r}: modify_"
                f"{space.name.lower()}() while {other.name} holds newer "
                f"unsynced data (modify_{other.name.lower()}() was never "
                f"followed by a sync) — both sides would hold updates the "
                f"other lacks, and the next sync would silently clobber one "
                f"of them; sync first (sync_{space.name.lower()}()) before "
                f"writing the {space.name} side"
            )
        self._modified[space] = self._modified[other] + 1

    def modify_host(self) -> None:
        self.modify(Host)

    def modify_device(self) -> None:
        self.modify(Device)

    def need_sync(self, space: ExecutionSpace) -> bool:
        """Whether ``space``'s copy is stale."""
        other = Device if space is Host else Host
        return self._modified[other] > self._modified[space]

    def need_sync_host(self) -> bool:
        return self.need_sync(Host)

    def need_sync_device(self) -> bool:
        return self.need_sync(Device)

    def sync(self, space: ExecutionSpace) -> bool:
        """Make ``space``'s copy current.  Returns True if a transfer ran.

        The transfer cost is charged to the device timeline so benchmarks
        can see host-device ping-pong — the failure mode of the pre-Kokkos
        GPU package the paper contrasts against.
        """
        if not self.need_sync(space):
            if metrics.SINKS:
                metrics.inc(
                    "dualview_sync_skipped_total",
                    label=self.label or "unnamed",
                    space=space.name,
                )
            return False
        other = Device if space is Host else Host
        if not self._host_only:
            dst, src = self.view(space), self.view(other)
            dst.data[...] = src.data
            ctx = device_context()
            seconds = ctx.transfer_time(dst.nbytes)
            ctx.timeline.record(
                f"dualview_sync::{self.label or 'unnamed'}", seconds
            )
            if metrics.SINKS:
                direction = f"{other.name}->{space.name}"
                label = self.label or "unnamed"
                metrics.inc(
                    "dualview_sync_total", label=label, direction=direction
                )
                metrics.inc(
                    "dualview_sync_bytes_total",
                    dst.nbytes,
                    label=label,
                    direction=direction,
                )
            if kp.TOOLS:
                kp.deep_copy(
                    space.name,
                    dst.label,
                    other.name,
                    src.label,
                    dst.nbytes,
                    seconds,
                )
        self._modified[space] = self._modified[other]
        return True

    def sync_host(self) -> bool:
        return self.sync(Host)

    def sync_device(self) -> bool:
        return self.sync(Device)

    def clear_sync_state(self) -> None:
        """Mark both sides current (used after collective re-initialization)."""
        top = max(self._modified.values())
        self._modified[Host] = self._modified[Device] = top

    # ----------------------------------------------------------- mutation
    def resize(self, new_shape: int | tuple[int, ...]) -> None:
        """Resize both sides, preserving contents (requires both in sync)."""
        if self.need_sync(Host) or self.need_sync(Device):
            raise RuntimeError(
                f"DualView {self.label!r}: resize with unsynced data would "
                "silently drop updates"
            )
        self.h_view.resize(new_shape)
        if not self._host_only:
            self.d_view.resize(new_shape)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DualView({self.label!r}, shape={self.shape}, dtype={self.dtype})"
