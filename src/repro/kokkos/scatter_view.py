"""ScatterView: deconflicted scatter-add accumulation.

Paper section 3.2: "ScatterView ... was designed to handle unstructured
accumulation of data from multiple threads in a way that write conflicts are
avoided.  It can transparently swap between using atomic operations, a data
duplication strategy, or even simple sequential accumulation ...  On CPUs,
data duplication with a subsequent combining step is often the most
effective way to deal with write conflicts, while on GPUs data duplication
is infeasible due to the large number of active threads and thus atomic
operations need to be used."

All three strategies are implemented and produce bit-identical results (the
equivalence is property-tested); they differ in the *cost profile* each one
reports, which is how the full-vs-half neighbor list studies (figure 2b) see
the architecture-dependent price of atomics versus duplication.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.kokkos.core import Device, ExecutionSpace
from repro.kokkos.segment import ATOMIC as CONTRIB_ATOMIC
from repro.kokkos.segment import SEGMENTED as CONTRIB_SEGMENTED
from repro.kokkos.segment import forced_scatter_mode, scatter_add
from repro.kokkos.view import View
from repro.tools import registry as kp

#: Deconfliction strategies.
ATOMIC = "atomic"
DUPLICATED = "duplicated"
SEQUENTIAL = "sequential"

_STRATEGIES = (ATOMIC, DUPLICATED, SEQUENTIAL)
_CONTRIBUTIONS = (CONTRIB_ATOMIC, CONTRIB_SEGMENTED)


def default_strategy(space: ExecutionSpace) -> str:
    """Architecture-appropriate default (GPU: atomics; CPU: duplication)."""
    return ATOMIC if space is Device else DUPLICATED


class ScatterView:
    """Scatter-add accumulator over a target View.

    Usage mirrors Kokkos: obtain an access handle inside the kernel, add
    contributions keyed by destination index, then ``contribute()`` the
    results back into the target.
    """

    def __init__(
        self,
        target: View,
        *,
        strategy: str | None = None,
        duplicates: int = 8,
        contribution: str | None = None,
    ) -> None:
        if strategy is None:
            # A globally forced contribution mode also steers the strategy,
            # so pinning "atomic" models the GPU cost profile (atomic_adds
            # charged) and "segmented" the CPU duplication profile — that is
            # what lets the autotuner's cost-model measure rank the two.
            forced = forced_scatter_mode()
            if forced == CONTRIB_ATOMIC:
                strategy = ATOMIC
            elif forced == CONTRIB_SEGMENTED:
                strategy = DUPLICATED
            else:
                strategy = default_strategy(target.space)
        if strategy not in _STRATEGIES:
            raise ValueError(
                f"unknown ScatterView strategy {strategy!r}; "
                f"expected one of {_STRATEGIES}"
            )
        if duplicates < 1:
            raise ValueError("duplicates must be >= 1")
        if contribution is None:
            # Functional scatter algorithm, tied to the strategy as the paper
            # describes: atomics execute as np.add.at, duplication's combine
            # step as a segmented reduction.  A benchmark-forced global mode
            # (segment.force_scatter_mode) overrides both.
            contribution = forced_scatter_mode() or (
                CONTRIB_ATOMIC if strategy == ATOMIC else CONTRIB_SEGMENTED
            )
        if contribution not in _CONTRIBUTIONS:
            raise ValueError(
                f"unknown ScatterView contribution {contribution!r}; "
                f"expected one of {_CONTRIBUTIONS}"
            )
        self.target = target
        self.strategy = strategy
        self.contribution = contribution
        self.duplicates = duplicates if strategy == DUPLICATED else 1
        self._scratch: np.ndarray | None = None
        self._atomic_adds = 0
        self.reset()

    # -------------------------------------------------------------- stats
    @property
    def atomic_adds(self) -> int:
        """Scalar atomic additions issued so far (feeds KernelProfile)."""
        return self._atomic_adds

    @property
    def duplicated_bytes(self) -> int:
        """Extra memory footprint of the duplication strategy."""
        if self.strategy != DUPLICATED:
            return 0
        return self.target.nbytes * self.duplicates

    # ------------------------------------------------------------- access
    def reset(self) -> None:
        """Zero the scratch copies (target itself is left alone)."""
        shape = (self.duplicates,) + self.target.shape
        if self._scratch is None or self._scratch.shape != shape:
            track = bool(kp.TOOLS)
            label = (self.target.label or "unnamed") + "_scatter"
            space = self.target.space.name
            if track and self._scratch is not None:
                kp.deallocate_data(space, label, self._scratch.nbytes)
            self._scratch = np.zeros(shape, dtype=self.target.dtype)
            if track:
                kp.allocate_data(space, label, self._scratch.nbytes)
        else:
            self._scratch[...] = 0.0
        self._atomic_adds = 0

    def access(self, thread: int = 0) -> "ScatterAccess":
        """Per-thread access handle.  ``thread`` selects the duplicate."""
        dup = thread % self.duplicates
        return ScatterAccess(self, dup)

    def contribute(self) -> None:
        """Fold all duplicates into the target View."""
        assert self._scratch is not None
        self.target.data[...] += self._scratch.sum(axis=0)
        self._scratch[...] = 0.0


class ScatterAccess:
    """Handle used inside kernels to emit contributions."""

    __slots__ = ("_sv", "_dup")

    def __init__(self, sv: ScatterView, dup: int) -> None:
        self._sv = sv
        self._dup = dup

    def add(self, index: Any, value: Any) -> None:
        """``target[index] += value`` with deconfliction.

        ``index`` may be an integer array (unstructured scatter); duplicate
        indices accumulate correctly with hardware-atomic-add semantics.
        The contribution mode picks the algorithm: ``atomic`` issues the
        unbuffered ``np.add.at``, ``segmented`` reduces per destination first
        (:mod:`repro.kokkos.segment`) — bit-compatible results either way.
        """
        sv = self._sv
        scratch = sv._scratch[self._dup]
        value = np.asarray(value)
        if isinstance(index, (int, np.integer)) or (
            isinstance(index, tuple) and all(isinstance(k, (int, np.integer)) for k in index)
        ):
            scratch[index] += value
            n = int(value.size)
        else:
            if isinstance(index, tuple):
                # structured multi-axis scatter: keep the ufunc fallback
                np.add.at(scratch, index, value)
                n = int(np.broadcast(*[np.asarray(k) for k in index]).size)
            else:
                scatter_add(scratch, np.asarray(index), value, mode=sv.contribution)
                n = int(np.asarray(index).size)
            # each scattered element of the value contributes one add
            n = max(n, int(value.size))
        if sv.strategy == ATOMIC:
            sv._atomic_adds += n
