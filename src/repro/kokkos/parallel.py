"""Parallel dispatch: ``parallel_for`` / ``parallel_reduce`` / ``parallel_scan``.

The functor contract is vectorized rather than per-index (a Python call per
work item would bury the numerics in interpreter overhead — see the
hpc-parallel guides on vectorizing loops):

* ``RangePolicy`` functors receive the whole index array once;
* ``MDRangePolicy`` functors receive one tuple of slices per tile (one call
  with the full extent when untiled);
* ``TeamPolicy`` functors receive a :class:`~repro.kokkos.policies.TeamHandle`.

Every dispatch charges simulated device time for its
:class:`~repro.hardware.cost.KernelProfile` to the active timeline; kernels
that pass no profile are charged launch latency plus a parallelism-derived
minimum, so even bookkeeping kernels show up in strong-scaling tails.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable

import numpy as np

from repro.graph import capture as graph_capture
from repro.hardware.cost import KernelProfile
from repro.kokkos.core import Device, device_context
from repro.kokkos.policies import MDRangePolicy, RangePolicy, TeamPolicy
from repro.tools import registry as kp

Policy = RangePolicy | MDRangePolicy | TeamPolicy


def _graph_note(
    kind: str, name: str, policy: Policy, profile: KernelProfile, seconds: float
) -> None:
    """Attribute a charged dispatch to the armed kernel-graph capture."""
    graph_capture.CAPTURING[-1].on_dispatch(
        kind,
        name,
        policy,
        policy.space.name,
        float(policy.parallelism),
        profile,
        seconds,
    )


def _charge(
    name: str, policy: Policy, profile: KernelProfile | None
) -> tuple[float, KernelProfile]:
    """Charge the dispatch to the timeline; returns (seconds, profile)."""
    ctx = device_context()
    if profile is None:
        profile = KernelProfile(name=name)
    if not profile.name:
        profile = replace(profile, name=name)
    if profile.parallel_items <= 1.0 and policy.parallelism > 1:
        profile = replace(profile, parallel_items=float(policy.parallelism))
    if (
        isinstance(policy, TeamPolicy)
        and policy.scratch_kb > 0.0
        and profile.shared_kb_per_team <= 0.0
    ):
        profile = replace(profile, shared_kb_per_team=policy.scratch_kb)
    spec = ctx.spec_for(policy.space)
    carveout = ctx.carveout if policy.space is Device else None
    seconds = ctx.cost_model.time(profile, spec, carveout)
    ctx.timeline.record(name, seconds)
    if ctx.profile_log is not None:
        ctx.profile_log.append(profile)
    return seconds, profile


def _run(policy: Policy, functor: Callable) -> Any:
    if isinstance(policy, RangePolicy):
        return functor(policy.indices())
    if isinstance(policy, MDRangePolicy):
        results = [functor(tile) for tile in policy.tiles()]
        return results
    if isinstance(policy, TeamPolicy):
        return functor(policy.handle())
    raise TypeError(f"unsupported policy type {type(policy).__name__}")


def parallel_for(
    name: str,
    policy: Policy,
    functor: Callable,
    *,
    profile: KernelProfile | None = None,
) -> None:
    """Execute ``functor`` over the policy's iteration space for effect."""
    kid = (
        kp.begin_kernel(
            "parallel_for", name, policy.space.name, float(policy.parallelism)
        )
        if kp.TOOLS
        else None
    )
    _run(policy, functor)
    seconds, resolved = _charge(name, policy, profile)
    if graph_capture.CAPTURING:
        _graph_note("for", name, policy, resolved, seconds)
    if kid is not None:
        kp.end_kernel(kid, resolved, seconds)


def parallel_reduce(
    name: str,
    policy: Policy,
    functor: Callable,
    *,
    profile: KernelProfile | None = None,
    reducer: Callable = np.sum,
):
    """Execute and combine contributions.

    The functor returns per-item contributions (any array; the reducer
    collapses it) or an already-combined scalar.  For MDRange policies the
    per-tile results are reduced together; Team functors reduce internally
    and return the value.
    """
    kid = (
        kp.begin_kernel(
            "parallel_reduce", name, policy.space.name, float(policy.parallelism)
        )
        if kp.TOOLS
        else None
    )
    raw = _run(policy, functor)
    if isinstance(policy, MDRangePolicy):
        parts = [reducer(np.asarray(r)) for r in raw if r is not None]
        result = reducer(np.asarray(parts)) if parts else reducer(np.zeros(1))
    else:
        result = reducer(np.asarray(raw)) if not np.isscalar(raw) else raw
    seconds, resolved = _charge(name, policy, profile)
    if graph_capture.CAPTURING:
        _graph_note("reduce", name, policy, resolved, seconds)
    if kid is not None:
        kp.end_kernel(kid, resolved, seconds)
    return result


def parallel_scan(
    name: str,
    policy: RangePolicy,
    functor: Callable,
    *,
    profile: KernelProfile | None = None,
    exclusive: bool = True,
) -> tuple[np.ndarray, Any]:
    """Prefix-sum over per-item values.

    Returns ``(scan, total)``.  The exclusive scan is the Kokkos default and
    what the ReaxFF CSR offset build needs (section 4.2.2): ``scan[i]`` is
    the sum of values before ``i``.
    """
    if not isinstance(policy, RangePolicy):
        raise TypeError("parallel_scan requires a RangePolicy")
    kid = (
        kp.begin_kernel(
            "parallel_scan", name, policy.space.name, float(policy.parallelism)
        )
        if kp.TOOLS
        else None
    )
    values = np.asarray(functor(policy.indices()))
    if values.shape[0] != policy.size:
        raise ValueError(
            f"scan functor returned {values.shape[0]} values for a range of "
            f"{policy.size}"
        )
    inclusive = np.cumsum(values, axis=0)
    total = inclusive[-1] if policy.size else values.sum(axis=0)
    if exclusive:
        scan = np.empty_like(inclusive)
        scan[0] = 0
        scan[1:] = inclusive[:-1]
    else:
        scan = inclusive
    seconds, resolved = _charge(name, policy, profile)
    if graph_capture.CAPTURING:
        _graph_note("scan", name, policy, resolved, seconds)
    if kid is not None:
        kp.end_kernel(kid, resolved, seconds)
    return scan, total
