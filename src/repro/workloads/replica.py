"""Replica job catalog: small parameterized workloads for the session layer.

The replica engine batches *many small jobs* — parameter sweeps, seed
ensembles, short equilibrations — so this module gives the
:class:`~repro.replica.session.SessionManager` a catalog of buildable job
specs.  A :class:`ReplicaSpec` names a workload family from
:data:`REPLICA_FAMILIES`, the size (fcc cells), the step budget, and an
optional per-replica velocity seed; ``build()`` returns a fresh, fully
configured single-rank :class:`~repro.core.Lammps` ready for
``ReplicaBatch.add_replica``.

Families are a closed set (each maps to a batchable pair style), so unknown
names fail with the shared did-you-mean hint from
:func:`repro.core.errors.unknown_choice`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import LammpsError, unknown_choice
from repro.workloads.melt import MELT_TEMPLATE

#: family name -> the pair style its replicas run (all batchable styles).
REPLICA_FAMILIES = {
    "melt": "lj/cut",
    "eam_melt": "eam/fs",
}


@dataclass
class ReplicaSpec:
    """One submittable replica job.

    ``seed`` (when given) re-draws the initial velocities after the
    template's default, decorrelating replicas of the same family and size;
    ``thermo`` sets the output interval (the session streams one event per
    row, so small jobs usually want a small interval).
    """

    family: str = "melt"
    cells: int = 3
    steps: int = 100
    thermo: int = 100
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.family not in REPLICA_FAMILIES:
            raise LammpsError(
                unknown_choice(
                    "replica family", self.family, tuple(sorted(REPLICA_FAMILIES))
                )
            )
        if self.cells < 1:
            raise LammpsError("replica spec needs cells >= 1")
        if self.steps < 0:
            raise LammpsError("replica spec needs steps >= 0")

    @property
    def pair_style(self) -> str:
        return REPLICA_FAMILIES[self.family]

    @property
    def natoms(self) -> int:
        return 4 * self.cells**3  # fcc

    def build(self):
        """A fresh single-rank Lammps at this spec's ready-to-run state."""
        from repro.core import Lammps

        lmp = Lammps()
        lmp.commands_string(
            MELT_TEMPLATE.format(cells=self.cells, pair_style=self.pair_style)
        )
        if self.seed is not None:
            lmp.commands_string(f"velocity all create 1.44 {self.seed}")
        lmp.commands_string(f"thermo {self.thermo}")
        lmp.thermo.quiet = True
        return lmp


def build_replica(family: str = "melt", **kwargs):
    """Catalog shortcut: validate, build, return the Lammps instance."""
    return ReplicaSpec(family=family, **kwargs).build()
