"""bcc tantalum workload (the SNAP benchmark).

The paper's SNAP case study benchmarks the Thompson et al. Ta potential on
bcc tantalum (a = 3.316 A).  Our SNAP coefficients are synthetic (DESIGN.md
substitution table) but the crystal, neighbor statistics, and quantum-number
index space match the production benchmark's shape.
"""

from __future__ import annotations

TANTALUM_TEMPLATE = """\
units metal
boundary p p p
lattice bcc 3.316
region box block 0 {cells} 0 {cells} 0 {cells}
create_box 1 box
create_atoms 1 box
mass 1 180.95
velocity all create 600.0 4928459
pair_style {pair_style} {twojmax} 4.7
pair_coeff 1 1 0.5 1.0
neighbor 1.0 bin
neigh_modify every 20 delay 0 check no
timestep 0.0005
fix 1 all nve
thermo 10
"""


def setup_tantalum(
    lmp, cells: int = 4, pair_style: str = "snap", twojmax: int = 8
) -> None:
    """Drive ``lmp`` to a ready bcc-Ta SNAP configuration (2 atoms/cell)."""
    lmp.commands_string(
        TANTALUM_TEMPLATE.format(cells=cells, pair_style=pair_style, twojmax=twojmax)
    )
