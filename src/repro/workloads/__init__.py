"""Benchmark workload generators for the paper's three case studies.

* :mod:`repro.workloads.melt` — the classic LJ argon melt (figures 2, 4, 5);
* :mod:`repro.workloads.hns` — an HNS-like CHNO molecular crystal surrogate
  for the ReaxFF benchmark (figures 4, 5, 6; see DESIGN.md substitutions);
* :mod:`repro.workloads.tantalum` — bcc Ta for the SNAP benchmark.

Each module exposes a ``setup_*`` helper that drives a
:class:`~repro.core.Lammps` (or :class:`~repro.core.Ensemble`) to a
ready-to-run state, plus size helpers used by the benchmark sweeps.
"""

from repro.workloads.melt import setup_melt, melt_cells_for_atoms
from repro.workloads.hns import hns_configuration, setup_hns
from repro.workloads.replica import REPLICA_FAMILIES, ReplicaSpec, build_replica
from repro.workloads.tantalum import setup_tantalum

__all__ = [
    "setup_melt",
    "melt_cells_for_atoms",
    "hns_configuration",
    "setup_hns",
    "setup_tantalum",
    "REPLICA_FAMILIES",
    "ReplicaSpec",
    "build_replica",
]
