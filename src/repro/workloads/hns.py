"""HNS-like CHNO molecular crystal surrogate (the ReaxFF benchmark).

The paper benchmarks ReaxFF on hexanitrostilbene (HNS), a dense CHNO
molecular crystal.  The real crystal structure is not reproducible offline,
so per DESIGN.md's substitution table we generate a synthetic analogue that
matches what the kernels care about: a ~0.084 atom/A^3 CHNO solid of
covalently bonded chains (bond lengths ~1.3 A) embedded in a nonbonded
matrix, yielding realistic bond counts, angle/torsion sparsity, and QEq
matrix fill.

Each "molecule" is a 6-atom zig-zag chain (types O-C-N-C-O-H, i.e.
C2/H1/N1/O2 — close to HNS's C14H6N6O12 stoichiometry) laid on an orthorhombic
molecular lattice; chain ends of adjacent molecules sit ~1.8 A apart, so
weak inter-molecular bonds form a network, exercising the reactive
(bond-forming) code path.
"""

from __future__ import annotations

import numpy as np

#: chain species pattern: engine types assuming the canonical mapping
#: 1=C, 2=H, 3=N, 4=O (pair_coeff * * chno C H N O).  The O-C-N-C-O-H chain
#: gives C2 H1 N1 O2 — close to HNS's C14 H6 N6 O12 stoichiometry.
CHAIN_TYPES = np.array([4, 1, 3, 1, 4, 2], dtype=np.int32)
#: intra-chain bond geometry
BOND_DX = 1.1
BOND_DY = 0.787  # bond length sqrt(1.1^2 + 0.787^2) ~ 1.353 A
#: molecular lattice (A): chain axis x, packing y/z
CELL = np.array([7.3, 3.2, 3.2])

#: masses by engine type (C, H, N, O), g/mol
HNS_MASSES = {1: 12.011, 2: 1.008, 3: 14.007, 4: 15.999}


def hns_configuration(
    nx: int, ny: int, nz: int, jitter: float = 0.05, seed: int = 12345
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(positions, types, box_hi)`` for an nx x ny x nz molecular lattice."""
    if min(nx, ny, nz) < 1:
        raise ValueError("need at least one molecular cell per direction")
    natoms_chain = len(CHAIN_TYPES)
    chain = np.zeros((natoms_chain, 3))
    chain[:, 0] = np.arange(natoms_chain) * BOND_DX + 0.6
    chain[:, 1] = np.where(np.arange(natoms_chain) % 2 == 0, 0.0, BOND_DY) + 1.2
    chain[:, 2] = 1.6

    ii, jj, kk = np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij")
    origins = np.stack([ii.ravel(), jj.ravel(), kk.ravel()], axis=1) * CELL
    x = (origins[:, None, :] + chain[None, :, :]).reshape(-1, 3)
    types = np.tile(CHAIN_TYPES, len(origins))

    rng = np.random.default_rng(seed)
    x = x + rng.uniform(-jitter, jitter, size=x.shape)
    box_hi = CELL * np.array([nx, ny, nz])
    return x, types, box_hi


HNS_PREAMBLE = """\
units real
boundary p p p
atom_style charge
"""

HNS_POSTAMBLE = """\
mass 1 12.011
mass 2 1.008
mass 3 14.007
mass 4 15.999
velocity all create 300.0 9007
pair_style {pair_style}
pair_coeff * * chno C H N O
neighbor 1.0 bin
neigh_modify every 10 delay 0 check no
timestep 0.1
fix 1 all nve
thermo 10
"""


def setup_hns(lmp, nx: int = 2, ny: int = 3, nz: int = 3, pair_style: str = "reaxff", seed: int = 12345) -> None:
    """Drive ``lmp`` (Lammps or Ensemble) to a ready HNS-like configuration."""
    x, types, box_hi = hns_configuration(nx, ny, nz, seed=seed)
    lmp.commands_string(HNS_PREAMBLE)
    lmp.commands_string(
        f"region box block 0 {box_hi[0]} 0 {box_hi[1]} 0 {box_hi[2]}\n"
        "create_box 4 box"
    )
    ranks = lmp.ranks if hasattr(lmp, "ranks") else [lmp]
    for rank in ranks:
        rank.create_atoms_from_arrays(x, types)
    lmp.commands_string(HNS_POSTAMBLE.format(pair_style=pair_style))
