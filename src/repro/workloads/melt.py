"""The LJ melt benchmark (LAMMPS's ``bench/in.lj``).

fcc argon at reduced density 0.8442, T* = 1.44, cutoff 2.5 sigma — the
workload behind the paper's Lennard-Jones case study.
"""

from __future__ import annotations


def melt_cells_for_atoms(natoms: int) -> int:
    """fcc cells per edge giving at least ``natoms`` atoms (4 per cell)."""
    if natoms < 4:
        raise ValueError("need at least one fcc cell (4 atoms)")
    n = round((natoms / 4.0) ** (1.0 / 3.0))
    while 4 * n**3 < natoms:
        n += 1
    return max(n, 1)


MELT_TEMPLATE = """\
units lj
lattice fcc 0.8442
region box block 0 {cells} 0 {cells} 0 {cells}
create_box 1 box
create_atoms 1 box
mass 1 1.0
velocity all create 1.44 87287
pair_style {pair_style} 2.5
pair_coeff 1 1 1.0 1.0
neighbor 0.3 bin
neigh_modify every 20 delay 0 check no
fix 1 all nve
thermo 100
"""


def setup_melt(lmp, cells: int = 4, pair_style: str = "lj/cut") -> None:
    """Drive ``lmp`` (Lammps or Ensemble) to a ready melt configuration."""
    lmp.commands_string(MELT_TEMPLATE.format(cells=cells, pair_style=pair_style))
