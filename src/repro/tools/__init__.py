"""KokkosP-style observability subsystem.

``repro.tools.registry`` is the callback surface the runtime emits into
(near-zero cost with nothing attached); this package front door adds the
built-in tool catalogue and a name -> instance factory used by the CLI
(``--tools space-time-stack,chrome-trace --tool-out out/``) and the
``tools`` input-script command.

Built-in tools:

* ``kernel-logger``     — streaming line-per-event log
* ``space-time-stack``  — hierarchical region/kernel time tree
* ``memory-events``     — per-memory-space allocation log + high-water mark
* ``chrome-trace``      — chrome://tracing JSON, one track per rank
* ``roofline``          — %-of-roof per kernel vs the active machine model

Only :mod:`repro.tools.registry` is imported eagerly here; the tool
implementations load on first use so instrumented low-level modules
(``repro.kokkos.*``) can import this package without cycles.
"""

from __future__ import annotations

import os

from repro.tools.registry import (  # noqa: F401  (re-exported surface)
    Tool,
    ToolChain,
    attach,
    attached,
    detach,
    finalize_all,
    profile_event,
    pop_region,
    push_region,
    region,
    set_rank,
)

#: name -> (module, class, needs_output_path)
TOOL_CATALOG: dict[str, tuple[str, str, bool]] = {
    "kernel-logger": ("repro.tools.kernel_logger", "KernelLogger", True),
    "space-time-stack": ("repro.tools.space_time_stack", "SpaceTimeStack", False),
    "memory-events": ("repro.tools.memory_events", "MemoryEvents", True),
    "chrome-trace": ("repro.tools.chrome_trace", "ChromeTrace", True),
    "roofline": ("repro.tools.roofline", "Roofline", False),
    "metrics": ("repro.tools.metrics", "MetricsTool", True),
}

#: default output filename per tool (within ``--tool-out``); an empty string
#: means the tool takes the output *directory* itself (it writes several
#: files, e.g. metrics.prom + metrics.jsonl + profiles.json)
_DEFAULT_OUT = {
    "kernel-logger": "kernel_log.txt",
    "memory-events": "memory_events.txt",
    "chrome-trace": "trace.json",
    "metrics": "",
}


def tool_names() -> list[str]:
    return sorted(TOOL_CATALOG)


def create_tool(name: str, outdir: str | None = None) -> Tool:
    """Instantiate one built-in tool by its CLI name."""
    key = name.strip().lower().replace("_", "-")
    if key not in TOOL_CATALOG:
        from repro.core.errors import unknown_choice

        raise ValueError(unknown_choice(
            "tool", name, tool_names(), extra=" — or 'all' for every one"))
    module_name, cls_name, takes_out = TOOL_CATALOG[key]
    import importlib

    cls = getattr(importlib.import_module(module_name), cls_name)
    if not takes_out:
        return cls()
    out = None
    if key in _DEFAULT_OUT:
        base = outdir or "."
        os.makedirs(base, exist_ok=True)
        out = os.path.join(base, _DEFAULT_OUT[key]) if _DEFAULT_OUT[key] else base
    return cls(out) if out is not None else cls()


def create_tools(spec: str, outdir: str | None = None) -> list[Tool]:
    """Parse a comma-separated tool list (the ``--tools`` argument).

    ``all`` (alone or in the list) expands to every registered tool, in
    catalog order — derived from :data:`TOOL_CATALOG`, so new tools are
    covered automatically.
    """
    names = [name for name in spec.split(",") if name.strip()]
    if any(n.strip().lower() == "all" for n in names):
        names = tool_names()
    return [create_tool(name, outdir) for name in names]
