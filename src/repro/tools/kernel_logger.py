"""Streaming event log (Kokkos Tools' kernel-logger).

Prints one line per event as it happens, indented by region depth — the
"what is my run actually dispatching" tool you attach first when a trace
looks wrong.  Writes to a file when given a path, else to stdout.
"""

from __future__ import annotations

import sys
from typing import TextIO

from repro.tools.registry import (
    DeepCopyEvent,
    FenceEvent,
    InstantEvent,
    KernelEvent,
    MemoryEvent,
    RegionEvent,
    Tool,
)

_KIND_SHORT = {
    "parallel_for": "for",
    "parallel_reduce": "reduce",
    "parallel_scan": "scan",
}


class KernelLogger(Tool):
    """Line-per-event streaming log."""

    name = "kernel-logger"

    def __init__(self, out: str | TextIO | None = None) -> None:
        self._own_file = isinstance(out, str)
        self._fh: TextIO = open(out, "w") if isinstance(out, str) else (out or sys.stdout)
        self._path = out if isinstance(out, str) else None
        self._depth: dict[int, int] = {}
        self.lines = 0

    # ------------------------------------------------------------ plumbing
    def _write(self, rank: int, text: str) -> None:
        indent = "  " * self._depth.get(rank, 0)
        self._fh.write(f"[rank {rank}] {indent}{text}\n")
        self.lines += 1

    # ------------------------------------------------------------ callbacks
    def _end_kernel(self, ev: KernelEvent) -> None:
        self._write(
            ev.rank,
            f"{_KIND_SHORT[ev.kind]} {ev.name} [{ev.space}] "
            f"sim {ev.sim_seconds:.3e} s wall {ev.wall_seconds:.3e} s",
        )

    end_parallel_for = _end_kernel
    end_parallel_reduce = _end_kernel
    end_parallel_scan = _end_kernel

    def end_fence(self, ev: FenceEvent) -> None:
        self._write(ev.rank, f"fence {ev.name}")

    def end_deep_copy(self, ev: DeepCopyEvent) -> None:
        self._write(
            ev.rank,
            f"deep_copy {ev.src_space}:{ev.src_label} -> "
            f"{ev.dst_space}:{ev.dst_label} ({ev.nbytes} B, "
            f"sim {ev.sim_seconds:.3e} s)",
        )

    def allocate_data(self, ev: MemoryEvent) -> None:
        self._write(ev.rank, f"alloc {ev.space}:{ev.label} ({ev.nbytes} B)")

    def deallocate_data(self, ev: MemoryEvent) -> None:
        self._write(ev.rank, f"free {ev.space}:{ev.label} ({ev.nbytes} B)")

    def push_region(self, ev: RegionEvent) -> None:
        self._write(ev.rank, f"push {ev.name}")
        self._depth[ev.rank] = self._depth.get(ev.rank, 0) + 1

    def pop_region(self, ev: RegionEvent) -> None:
        self._depth[ev.rank] = max(self._depth.get(ev.rank, 0) - 1, 0)
        self._write(ev.rank, f"pop  {ev.name}")

    def profile_event(self, ev: InstantEvent) -> None:
        extra = f" ({ev.sim_seconds:.3e} s)" if ev.sim_seconds else ""
        self._write(ev.rank, f"event {ev.name}{extra}")

    def finalize(self) -> str | None:
        self._fh.flush()
        if self._own_file:
            self._fh.close()
            return f"kernel log: {self._path} ({self.lines} lines)"
        return None
