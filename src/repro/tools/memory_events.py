"""Per-memory-space allocation log and high-water marks (MemoryEvents tool).

The Kokkos Tools ``MemoryEvents``/``MemoryUsage`` pair records every
``allocate_data``/``deallocate_data`` callback with a timestamp and keeps
the running footprint per memory space.  Same here: each View (and
ScatterView scratch) allocation lands in an append-only log, and the
per-space current/high-water counters answer the sizing question the
paper's table 2 workloads pose (does the problem fit in HBM?).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tools.registry import MemoryEvent, Tool


@dataclass
class MemRecord:
    op: str  #: "alloc" | "free"
    space: str
    label: str
    nbytes: int
    sim_us: float
    current: int  #: per-space footprint after this event
    rank: int = 0  #: simulated MPI rank that performed the (de)allocation


class MemoryEvents(Tool):
    """Streaming allocation log + per-space high-water mark."""

    name = "memory-events"

    def __init__(self, out: str | None = None) -> None:
        self.out = out
        self.log: list[MemRecord] = []
        self.current: dict[str, int] = {}
        self.hwm: dict[str, int] = {}
        self.allocs: dict[str, int] = {}  # space -> allocation count

    # ------------------------------------------------------------ callbacks
    def allocate_data(self, ev: MemoryEvent) -> None:
        cur = self.current.get(ev.space, 0) + ev.nbytes
        self.current[ev.space] = cur
        self.hwm[ev.space] = max(self.hwm.get(ev.space, 0), cur)
        self.allocs[ev.space] = self.allocs.get(ev.space, 0) + 1
        self.log.append(
            MemRecord(
                "alloc", ev.space, ev.label, ev.nbytes, ev.sim_us, cur, ev.rank
            )
        )

    def deallocate_data(self, ev: MemoryEvent) -> None:
        # a free for an allocation made before the tool attached can push
        # the counter negative; clamp so the footprint stays meaningful
        cur = max(self.current.get(ev.space, 0) - ev.nbytes, 0)
        self.current[ev.space] = cur
        self.log.append(
            MemRecord(
                "free", ev.space, ev.label, ev.nbytes, ev.sim_us, cur, ev.rank
            )
        )

    # -------------------------------------------------------------- queries
    def high_water(self, space: str) -> int:
        return self.hwm.get(space, 0)

    # --------------------------------------------------------------- report
    def finalize(self) -> str:
        lines = ["", "=" * 72, "memory events (per memory space)", "=" * 72]
        for space in sorted(set(self.hwm) | set(self.current)):
            lines.append(
                f"  {space:<8} high-water {self.hwm.get(space, 0) / 1e6:10.3f} MB"
                f"  current {self.current.get(space, 0) / 1e6:10.3f} MB"
                f"  ({self.allocs.get(space, 0)} allocations)"
            )
        if self.out is not None:
            with open(self.out, "w") as fh:
                fh.write("# op space label bytes sim_us current_bytes rank\n")
                for r in self.log:
                    fh.write(
                        f"{r.op} {r.space} {r.label} {r.nbytes} "
                        f"{r.sim_us:.3f} {r.current} {r.rank}\n"
                    )
            lines.append(f"  log: {self.out} ({len(self.log)} events)")
        return "\n".join(lines)
