"""Hierarchical region/kernel time tree (Kokkos Tools' space-time-stack).

Builds one tree per simulated rank out of the region push/pop stream, with
kernels, deep copies, fences, and charged comm instants hanging under the
innermost open region.  At finalize it prints the tree sorted by simulated
time, with both the simulated-hardware seconds (what the cost model
charged) and wall seconds (what the functional layer actually took), plus
per-top-level-category totals — the numbers the reconciliation test holds
against the thermo timing breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tools.registry import (
    DeepCopyEvent,
    FenceEvent,
    InstantEvent,
    KernelEvent,
    RegionEvent,
    Tool,
)


@dataclass
class StackNode:
    """One tree node: a region, kernel, deep copy, or comm aggregate."""

    name: str
    kind: str  #: "region" | "kernel" | "deep_copy" | "fence" | "event"
    sim_seconds: float = 0.0
    wall_seconds: float = 0.0
    count: int = 0
    children: dict[tuple[str, str], "StackNode"] = field(default_factory=dict)

    def child(self, name: str, kind: str) -> "StackNode":
        key = (name, kind)
        node = self.children.get(key)
        if node is None:
            node = self.children[key] = StackNode(name=name, kind=kind)
        return node

    def subtree_sim(self) -> float:
        return self.sim_seconds + sum(
            c.subtree_sim() for c in self.children.values()
        )

    def subtree_wall(self) -> float:
        # region nodes carry inclusive wall time already; leaves carry their
        # own, so only sum children for non-region aggregates
        if self.kind == "region":
            return self.wall_seconds
        return self.wall_seconds + sum(
            c.subtree_wall() for c in self.children.values()
        )


class SpaceTimeStack(Tool):
    """Region/kernel tree over simulated and wall time, per rank."""

    name = "space-time-stack"

    def __init__(self, max_depth: int = 12) -> None:
        self.max_depth = max_depth
        self.roots: dict[int, StackNode] = {}
        self._stacks: dict[int, list[StackNode]] = {}
        self._region_wall0: dict[int, list[float]] = {}

    # ------------------------------------------------------------ plumbing
    def _top(self, rank: int) -> StackNode:
        stack = self._stacks.get(rank)
        if stack:
            return stack[-1]
        root = self.roots.get(rank)
        if root is None:
            root = self.roots[rank] = StackNode(name=f"rank {rank}", kind="region")
        return root

    # ------------------------------------------------------------- regions
    def push_region(self, ev: RegionEvent) -> None:
        node = self._top(ev.rank).child(ev.name, "region")
        self._stacks.setdefault(ev.rank, []).append(node)
        self._region_wall0.setdefault(ev.rank, []).append(ev.wall_us)

    def pop_region(self, ev: RegionEvent) -> None:
        stack = self._stacks.get(ev.rank)
        if not stack:
            return
        node = stack.pop()
        node.count += 1
        wall0 = self._region_wall0[ev.rank].pop()
        node.wall_seconds += (ev.wall_us - wall0) * 1e-6

    # ------------------------------------------------------------- kernels
    def _end_kernel(self, ev: KernelEvent) -> None:
        node = self._top(ev.rank).child(ev.name, "kernel")
        node.sim_seconds += ev.sim_seconds
        node.wall_seconds += ev.wall_seconds
        node.count += 1

    end_parallel_for = _end_kernel
    end_parallel_reduce = _end_kernel
    end_parallel_scan = _end_kernel

    # ------------------------------------------------------- copies/fences
    def end_deep_copy(self, ev: DeepCopyEvent) -> None:
        name = f"deep_copy {ev.src_space}->{ev.dst_space} {ev.dst_label}"
        node = self._top(ev.rank).child(name, "deep_copy")
        node.sim_seconds += ev.sim_seconds
        node.count += 1

    def end_fence(self, ev: FenceEvent) -> None:
        node = self._top(ev.rank).child(ev.name, "fence")
        node.count += 1

    def profile_event(self, ev: InstantEvent) -> None:
        node = self._top(ev.rank).child(ev.name, "event")
        node.sim_seconds += ev.sim_seconds
        node.count += 1

    # ------------------------------------------------------------- queries
    def category_totals(self, rank: int | None = None) -> dict[str, float]:
        """Simulated seconds per top-level region, summed over ranks.

        Top-level regions are the run-loop phase annotations
        (Pair/Neigh/Comm/Modify/Output/...), so this is directly comparable
        to the thermo timing breakdown.
        """
        totals: dict[str, float] = {}
        ranks = [rank] if rank is not None else list(self.roots)
        for r in ranks:
            root = self.roots.get(r)
            if root is None:
                continue
            for node in root.children.values():
                totals[node.name] = totals.get(node.name, 0.0) + node.subtree_sim()
        return totals

    def total_sim(self) -> float:
        return sum(root.subtree_sim() for root in self.roots.values())

    # -------------------------------------------------------------- report
    def finalize(self) -> str:
        lines = ["", "=" * 72, "space-time-stack (simulated s | wall s | launches)", "=" * 72]
        total = self.total_sim() or 1.0
        for rank in sorted(self.roots):
            root = self.roots[rank]
            lines.append(f"rank {rank}: {root.subtree_sim():.6e} s simulated")
            self._format(root, lines, depth=1, total=total)
        lines.append("-" * 72)
        for name, seconds in sorted(
            self.category_totals().items(), key=lambda kv: -kv[1]
        ):
            lines.append(
                f"  {name:<10} {seconds:>12.6e} s  ({100.0 * seconds / total:5.1f}%)"
            )
        return "\n".join(lines)

    def _format(
        self, node: StackNode, lines: list[str], depth: int, total: float
    ) -> None:
        if depth > self.max_depth:
            return
        children = sorted(node.children.values(), key=lambda c: -c.subtree_sim())
        for child in children:
            sim = child.subtree_sim()
            pct = 100.0 * sim / total
            tag = {"region": "", "kernel": " [kernel]", "deep_copy": " [copy]",
                   "fence": " [fence]", "event": " [event]"}[child.kind]
            lines.append(
                f"{'|  ' * (depth - 1)}|-> {sim:.3e} s {pct:5.1f}% "
                f"{child.name}{tag} ({child.subtree_wall():.3e} s wall, "
                f"{child.count}x)"
            )
            self._format(child, lines, depth + 1, total)
