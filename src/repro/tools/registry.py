"""KokkosP-style event registry: the pluggable observability surface.

The real Kokkos Tools (KokkosP) interface is a set of C callbacks the
runtime fires at every kernel dispatch, fence, deep copy, allocation, and
user region — the event stream behind the paper's per-kernel timings
(figures 2-7) and the TestSNAP optimization loop in PAPERS.md.  This module
is that surface for the simulated runtime:

* :class:`Tool` — the callback base class.  Subclasses override whichever
  callbacks they care about (``begin/end_parallel_for|reduce|scan``,
  ``begin/end_fence``, ``begin/end_deep_copy``,
  ``allocate/deallocate_data``, ``push/pop_region``, ``profile_event``).
* :class:`ToolChain` — dispatches every event to all attached tools and
  owns the per-rank clocks and region stacks.
* Module-level emission helpers (``begin_kernel``/``end_kernel``/...) —
  what the instrumented runtime calls.  Every helper starts with an
  ``if not TOOLS:`` guard, so an uninstrumented run pays one falsy list
  check per event site and nothing else (the "near-zero cost when no tool
  is loaded" contract of KokkosP).

Two clocks run side by side:

* **simulated time** — one clock per simulated MPI rank, advanced by the
  seconds each event charged to the hardware ledgers (device timeline +
  comm ledger).  Per-rank clocks make multi-rank traces meaningful even
  though the ranks interleave inside one process.
* **wall time** — ``perf_counter`` relative to module import, for the
  interpreter-side cost of the functional layer.

This module deliberately imports nothing from the rest of ``repro`` so any
runtime layer (kokkos dispatch, comm, views) can import it without cycles.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

#: Attached tools.  Emission sites guard with ``if registry.TOOLS:`` —
#: mutated in place so the identity check stays valid everywhere.
TOOLS: list["Tool"] = []


# --------------------------------------------------------------------- events
@dataclass
class KernelEvent:
    """One ``parallel_for``/``parallel_reduce``/``parallel_scan`` dispatch."""

    kind: str  #: "parallel_for" | "parallel_reduce" | "parallel_scan"
    name: str
    space: str  #: execution space name ("Host" / "Device")
    rank: int
    kid: int  #: unique dispatch id (KokkosP's kernel id)
    sim_us: float  #: simulated-clock timestamp at begin, microseconds
    wall_us: float
    #: policy parallelism (work items) — lets metrics key wall-clock
    #: profiles by workload size, not just kernel name
    work_items: float = 0.0
    #: filled in by the end event:
    sim_seconds: float = 0.0
    wall_seconds: float = 0.0
    #: rank-clock timestamp right after the end charge — computed from the
    #: same accumulator as every later event's ``sim_us``, so consumers that
    #: order by timestamp (chrome trace) never see an ulp-level inversion
    #: that ``sim_us + sim_seconds * 1e6`` could produce.
    sim_end_us: float = 0.0
    profile: Any = None  #: resolved repro.hardware.cost.KernelProfile


@dataclass
class FenceEvent:
    name: str
    rank: int
    fid: int
    sim_us: float
    wall_us: float


@dataclass
class DeepCopyEvent:
    dst_space: str
    dst_label: str
    src_space: str
    src_label: str
    nbytes: int
    rank: int
    sim_us: float
    wall_us: float
    sim_seconds: float = 0.0
    sim_end_us: float = 0.0  #: see KernelEvent.sim_end_us


@dataclass
class MemoryEvent:
    space: str  #: memory space name
    label: str
    nbytes: int
    rank: int
    sim_us: float
    wall_us: float


@dataclass
class RegionEvent:
    name: str
    rank: int
    depth: int  #: stack depth *after* push / *before* pop
    sim_us: float
    wall_us: float


@dataclass
class InstantEvent:
    """``profile_event``: a named instant, optionally charged with seconds.

    Communication instrumentation reports modeled message/collective costs
    this way; ``sim_seconds`` advances the emitting rank's simulated clock
    so comm time shows up between kernels on the rank's track.
    """

    name: str
    rank: int
    sim_us: float
    wall_us: float
    sim_seconds: float = 0.0
    metadata: dict = field(default_factory=dict)


# ----------------------------------------------------------------------- tool
class Tool:
    """Base observability tool: every callback is a no-op.

    Subclasses override what they need; ``finalize`` returns an optional
    human-readable report (printed by the CLI) and may write files.
    """

    name = "tool"

    # kernels
    def begin_parallel_for(self, ev: KernelEvent) -> None: ...
    def end_parallel_for(self, ev: KernelEvent) -> None: ...
    def begin_parallel_reduce(self, ev: KernelEvent) -> None: ...
    def end_parallel_reduce(self, ev: KernelEvent) -> None: ...
    def begin_parallel_scan(self, ev: KernelEvent) -> None: ...
    def end_parallel_scan(self, ev: KernelEvent) -> None: ...

    # fences / copies
    def begin_fence(self, ev: FenceEvent) -> None: ...
    def end_fence(self, ev: FenceEvent) -> None: ...
    def begin_deep_copy(self, ev: DeepCopyEvent) -> None: ...
    def end_deep_copy(self, ev: DeepCopyEvent) -> None: ...

    # memory
    def allocate_data(self, ev: MemoryEvent) -> None: ...
    def deallocate_data(self, ev: MemoryEvent) -> None: ...

    # regions / instants
    def push_region(self, ev: RegionEvent) -> None: ...
    def pop_region(self, ev: RegionEvent) -> None: ...
    def profile_event(self, ev: InstantEvent) -> None: ...

    def finalize(self) -> str | None:
        return None


# ------------------------------------------------------------------ toolchain
class ToolChain:
    """Dispatch state: attached tools, per-rank clocks, region stacks."""

    def __init__(self) -> None:
        self.tools = TOOLS  # module-level alias: empty list == disabled
        self.rank = 0
        self.clocks: dict[int, float] = {}  # rank -> simulated seconds
        self.region_stacks: dict[int, list[str]] = {}
        self.wall0 = time.perf_counter()
        self._next_id = 0
        self._open_kernels: dict[int, KernelEvent] = {}

    # ------------------------------------------------------------- plumbing
    def new_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def sim_now(self, rank: int | None = None) -> float:
        """Simulated seconds elapsed on ``rank``'s clock."""
        return self.clocks.get(self.rank if rank is None else rank, 0.0)

    def wall_now(self) -> float:
        return time.perf_counter() - self.wall0

    def advance(self, seconds: float, rank: int | None = None) -> None:
        r = self.rank if rank is None else rank
        self.clocks[r] = self.clocks.get(r, 0.0) + seconds

    def stack(self, rank: int | None = None) -> list[str]:
        r = self.rank if rank is None else rank
        return self.region_stacks.setdefault(r, [])

    def dispatch(self, callback: str, ev) -> None:
        for tool in self.tools:
            getattr(tool, callback)(ev)

    def reset(self) -> None:
        """Forget clocks/stacks/ids (fresh session; tools stay attached)."""
        self.rank = 0
        self.clocks.clear()
        self.region_stacks.clear()
        self.wall0 = time.perf_counter()
        self._next_id = 0
        self._open_kernels.clear()


CHAIN = ToolChain()


# ------------------------------------------------------------- tool lifecycle
def attach(tool: Tool) -> Tool:
    """Attach a tool; events start flowing to it immediately."""
    TOOLS.append(tool)
    return tool


def detach(tool: Tool) -> None:
    if tool in TOOLS:
        TOOLS.remove(tool)


def finalize_all(detach_tools: bool = True) -> list[str]:
    """Finalize every attached tool; returns their non-empty reports."""
    reports: list[str] = []
    for tool in list(TOOLS):
        report = tool.finalize()
        if report:
            reports.append(report)
        if detach_tools:
            detach(tool)
    return reports


@contextlib.contextmanager
def attached(*tools: Tool) -> Iterator[tuple[Tool, ...]]:
    """Scoped attachment (tests): attach on entry, detach on exit.

    Finalization is left to the caller so reports can be inspected.
    """
    for t in tools:
        attach(t)
    try:
        yield tools
    finally:
        for t in tools:
            detach(t)


# ------------------------------------------------------------------ rank ctx
def set_rank(rank: int) -> None:
    """Declare which simulated rank subsequent events belong to."""
    CHAIN.rank = rank


def current_rank() -> int:
    return CHAIN.rank


# ---------------------------------------------------------------- name scope
#: Active kernel-name scope stack (innermost last).  When non-empty, every
#: dispatched kernel name is prefixed ``"<scope>/<name>"`` — the replica
#: batch engine wraps per-member work in a batch scope so tools attribute
#: the wall/sim time to the batch instead of phantom per-replica kernels.
_KERNEL_SCOPE: list[str] = []


@contextlib.contextmanager
def kernel_scope(label: str) -> Iterator[None]:
    """Prefix every kernel dispatched inside the block with ``label/``."""
    _KERNEL_SCOPE.append(label)
    try:
        yield
    finally:
        _KERNEL_SCOPE.pop()


# ------------------------------------------------------------------- kernels
_BEGIN = {
    "parallel_for": "begin_parallel_for",
    "parallel_reduce": "begin_parallel_reduce",
    "parallel_scan": "begin_parallel_scan",
}
_END = {
    "parallel_for": "end_parallel_for",
    "parallel_reduce": "end_parallel_reduce",
    "parallel_scan": "end_parallel_scan",
}


def begin_kernel(
    kind: str, name: str, space: str, work_items: float = 0.0
) -> int | None:
    """Fire ``begin_parallel_*``; returns the kernel id for the end call."""
    if not TOOLS:
        return None
    if _KERNEL_SCOPE:
        name = f"{_KERNEL_SCOPE[-1]}/{name}"
    ev = KernelEvent(
        kind=kind,
        name=name,
        space=space,
        rank=CHAIN.rank,
        kid=CHAIN.new_id(),
        sim_us=CHAIN.sim_now() * 1e6,
        wall_us=CHAIN.wall_now() * 1e6,
        work_items=work_items,
    )
    CHAIN._open_kernels[ev.kid] = ev
    CHAIN.dispatch(_BEGIN[kind], ev)
    return ev.kid


def end_kernel(kid: int | None, profile: Any, sim_seconds: float) -> None:
    """Fire ``end_parallel_*``: charge ``sim_seconds`` to the rank clock."""
    if kid is None or not TOOLS:
        return
    ev = CHAIN._open_kernels.pop(kid, None)
    if ev is None:
        return
    ev.profile = profile
    ev.sim_seconds = sim_seconds
    ev.wall_seconds = CHAIN.wall_now() - ev.wall_us * 1e-6
    CHAIN.advance(sim_seconds, ev.rank)
    ev.sim_end_us = CHAIN.sim_now(ev.rank) * 1e6
    CHAIN.dispatch(_END[ev.kind], ev)


# -------------------------------------------------------------------- fences
def fence(name: str) -> None:
    """A fence: instantaneous here (simulated dispatch is synchronous)."""
    if not TOOLS:
        return
    ev = FenceEvent(
        name=name or "Kokkos::fence",
        rank=CHAIN.rank,
        fid=CHAIN.new_id(),
        sim_us=CHAIN.sim_now() * 1e6,
        wall_us=CHAIN.wall_now() * 1e6,
    )
    CHAIN.dispatch("begin_fence", ev)
    CHAIN.dispatch("end_fence", ev)


# --------------------------------------------------------------- deep copies
def deep_copy(
    dst_space: str,
    dst_label: str,
    src_space: str,
    src_label: str,
    nbytes: int,
    sim_seconds: float,
) -> None:
    if not TOOLS:
        return
    ev = DeepCopyEvent(
        dst_space=dst_space,
        dst_label=dst_label,
        src_space=src_space,
        src_label=src_label,
        nbytes=int(nbytes),
        rank=CHAIN.rank,
        sim_us=CHAIN.sim_now() * 1e6,
        wall_us=CHAIN.wall_now() * 1e6,
        sim_seconds=sim_seconds,
    )
    CHAIN.dispatch("begin_deep_copy", ev)
    CHAIN.advance(sim_seconds, ev.rank)
    ev.sim_end_us = CHAIN.sim_now(ev.rank) * 1e6
    CHAIN.dispatch("end_deep_copy", ev)


# -------------------------------------------------------------------- memory
def _memory_event(callback: str, space: str, label: str, nbytes: int) -> None:
    ev = MemoryEvent(
        space=space,
        label=label or "unnamed",
        nbytes=int(nbytes),
        rank=CHAIN.rank,
        sim_us=CHAIN.sim_now() * 1e6,
        wall_us=CHAIN.wall_now() * 1e6,
    )
    CHAIN.dispatch(callback, ev)


def allocate_data(space: str, label: str, nbytes: int) -> None:
    if TOOLS:
        _memory_event("allocate_data", space, label, nbytes)


def deallocate_data(space: str, label: str, nbytes: int) -> None:
    if TOOLS:
        _memory_event("deallocate_data", space, label, nbytes)


# ------------------------------------------------------------------- regions
def push_region(name: str) -> None:
    if not TOOLS:
        return
    stack = CHAIN.stack()
    stack.append(name)
    ev = RegionEvent(
        name=name,
        rank=CHAIN.rank,
        depth=len(stack),
        sim_us=CHAIN.sim_now() * 1e6,
        wall_us=CHAIN.wall_now() * 1e6,
    )
    CHAIN.dispatch("push_region", ev)


def pop_region() -> None:
    if not TOOLS:
        return
    stack = CHAIN.stack()
    if not stack:
        return  # tolerate tools attached mid-region
    name = stack.pop()
    ev = RegionEvent(
        name=name,
        rank=CHAIN.rank,
        depth=len(stack) + 1,
        sim_us=CHAIN.sim_now() * 1e6,
        wall_us=CHAIN.wall_now() * 1e6,
    )
    CHAIN.dispatch("pop_region", ev)


@contextlib.contextmanager
def region(name: str) -> Iterator[None]:
    """``with registry.region("Pair"):`` — push/pop convenience."""
    push_region(name)
    try:
        yield
    finally:
        pop_region()


# ------------------------------------------------------------------ instants
def profile_event(name: str, sim_seconds: float = 0.0, **metadata) -> None:
    """A named instant; ``sim_seconds > 0`` also advances the rank clock.

    Communication instrumentation uses the charged form so modeled message
    and collective costs appear on the emitting rank's timeline between
    kernels.
    """
    if not TOOLS:
        return
    ev = InstantEvent(
        name=name,
        rank=CHAIN.rank,
        sim_us=CHAIN.sim_now() * 1e6,
        wall_us=CHAIN.wall_now() * 1e6,
        sim_seconds=sim_seconds,
        metadata=metadata,
    )
    if sim_seconds:
        CHAIN.advance(sim_seconds, ev.rank)
    CHAIN.dispatch("profile_event", ev)
