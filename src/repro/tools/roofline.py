"""Roofline report: %-of-roof per kernel against the active machine model.

Every kernel-end event carries the resolved
:class:`~repro.hardware.cost.KernelProfile` the dispatch layer charged.
Joining those against the silicon spec backing the kernel's execution
space gives each kernel's arithmetic intensity and its position under the
device's roofline — the per-kernel "how far from the hardware limit"
number the paper's appendix C analysis reads off Nsight Compute.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tools.registry import KernelEvent, Tool


@dataclass
class RooflineRow:
    name: str
    space: str
    launches: int = 0
    flops: float = 0.0
    bytes: float = 0.0
    sim_seconds: float = 0.0

    @property
    def intensity(self) -> float:
        """Arithmetic intensity, FLOP per byte of modeled traffic."""
        return self.flops / self.bytes if self.bytes > 0 else float("inf")


@dataclass
class _Roof:
    peak_flops: float  #: FP64 op/s
    peak_bw: float  #: bytes/s


class Roofline(Tool):
    """Aggregates kernel profiles; reports %-of-roof at finalize."""

    name = "roofline"

    def __init__(self, top: int = 20) -> None:
        self.top = top
        self.rows: dict[tuple[str, str], RooflineRow] = {}

    # ------------------------------------------------------------ callbacks
    def _end_kernel(self, ev: KernelEvent) -> None:
        key = (ev.name, ev.space)
        row = self.rows.get(key)
        if row is None:
            row = self.rows[key] = RooflineRow(name=ev.name, space=ev.space)
        row.launches += 1
        row.sim_seconds += ev.sim_seconds
        p = ev.profile
        if p is not None:
            row.flops += getattr(p, "flops", 0.0)
            row.bytes += (
                getattr(p, "bytes_streamed", 0.0)
                + getattr(p, "bytes_reusable", 0.0)
                + getattr(p, "duplicated_bytes", 0.0)
            )

    end_parallel_for = _end_kernel
    end_parallel_reduce = _end_kernel
    end_parallel_scan = _end_kernel

    # --------------------------------------------------------------- roofs
    @staticmethod
    def _roof_for(space: str) -> _Roof:
        # imported lazily: the registry layer must stay import-cycle-free
        from repro.hardware.cpu import CPUSpec
        from repro.kokkos.core import Device, Host, device_context

        spec = device_context().spec_for(Device if space == "Device" else Host)
        if isinstance(spec, CPUSpec):
            return _Roof(spec.fp64_tflops * 1e12, spec.mem_bw_tbs * 1e12)
        return _Roof(spec.fp64_tflops * 1e12, spec.hbm_bw_tbs * 1e12)

    def percent_of_roof(self, row: RooflineRow) -> tuple[float, str]:
        """``(% of roof, limiter)`` for one aggregated kernel row.

        The ceiling at the kernel's arithmetic intensity is
        ``min(peak_flops, AI * peak_bw)``; pure-bandwidth kernels (no
        FLOPs) are scored against the bandwidth roof directly.
        """
        roof = self._roof_for(row.space)
        if row.sim_seconds <= 0.0:
            return 0.0, "-"
        if row.flops <= 0.0:
            achieved = row.bytes / row.sim_seconds
            return 100.0 * achieved / roof.peak_bw, "memory"
        ceiling = min(roof.peak_flops, row.intensity * roof.peak_bw)
        limiter = "compute" if ceiling == roof.peak_flops else "memory"
        achieved = row.flops / row.sim_seconds
        return 100.0 * achieved / ceiling, limiter

    # --------------------------------------------------------------- report
    def finalize(self) -> str:
        rows = sorted(self.rows.values(), key=lambda r: -r.sim_seconds)[: self.top]
        lines = [
            "",
            "=" * 72,
            "roofline (vs active machine model)",
            "=" * 72,
            f"{'kernel':<36} {'space':<7} {'AI':>7} {'%roof':>7} {'bound':>8} "
            f"{'sim s':>10}",
        ]
        for row in rows:
            pct, limiter = self.percent_of_roof(row)
            ai = row.intensity
            ai_s = f"{ai:7.2f}" if ai != float("inf") else "    inf"
            lines.append(
                f"{row.name[:36]:<36} {row.space:<7} {ai_s} {pct:7.1f} "
                f"{limiter:>8} {row.sim_seconds:>10.3e}"
            )
        return "\n".join(lines)
