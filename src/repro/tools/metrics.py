"""Measured-performance metrics core: counters, gauges, histograms, timers.

The KokkosP-style registry (:mod:`repro.tools.registry`) charges *modeled*
simulated-clock time to every dispatch; the ROADMAP's autotuner and
kernel-fusion items need *measured* wall-clock data keyed by
(kernel, workload, mode-config).  This module is that substrate:

* :class:`Counter` / :class:`Gauge` / :class:`Histogram` — labelled metric
  families collected in a :class:`MetricsRegistry`, exported as Prometheus
  text format (:meth:`MetricsRegistry.to_prometheus`) or JSONL
  (:meth:`MetricsRegistry.to_jsonl`).
* Module-level emission helpers (:func:`inc`, :func:`observe`,
  :func:`set_gauge`) — what instrumented runtime sites call
  (``kokkos/dual_view.py``, ``core/integrate.py``, ``core/comm_md.py``,
  ``parallel/comm.py``).  Every helper starts with an ``if not SINKS:``
  guard, the same falsy-list contract as ``registry.TOOLS``, so an
  uninstrumented run pays one list check per site and nothing else.
* :class:`MetricsTool` — a registry :class:`~repro.tools.registry.Tool`
  that turns the begin/end event stream into per-kernel dispatch counters,
  modeled-seconds counters, and **wall-clock** histograms, so every
  dispatch, fence, deep copy, and comm instant records both modeled and
  real ``perf_counter`` time.
* :class:`ProfileStore` — persists per-(kernel, workload, mode-config)
  wall-clock profiles across runs (``profiles.json``), the data the
  runtime autotuner will consume.

Like the registry, this module imports nothing from the rest of ``repro``
at import time so any runtime layer can import it without cycles.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.tools.registry import (
    DeepCopyEvent,
    FenceEvent,
    InstantEvent,
    KernelEvent,
    MemoryEvent,
    Tool,
)

#: Attached metric sinks.  Emission sites guard with ``if metrics.SINKS:`` —
#: mutated in place so the identity check stays valid everywhere.
SINKS: list["MetricsRegistry"] = []

#: default wall-clock histogram buckets, seconds (log-spaced 1 us .. 10 s)
WALL_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


# ------------------------------------------------------------------ families
@dataclass
class Counter:
    """Monotonically increasing sum per label set."""

    name: str
    help: str = ""
    values: dict[tuple, float] = field(default_factory=dict)

    kind = "counter"

    def inc(self, value: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        self.values[key] = self.values.get(key, 0.0) + value

    def get(self, **labels) -> float:
        return self.values.get(_label_key(labels), 0.0)


@dataclass
class Gauge:
    """Last-write-wins value per label set."""

    name: str
    help: str = ""
    values: dict[tuple, float] = field(default_factory=dict)

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self.values[_label_key(labels)] = float(value)

    def get(self, **labels) -> float:
        return self.values.get(_label_key(labels), 0.0)


@dataclass
class HistogramSeries:
    """One label set's observations: bucket counts + sum + count + min/max."""

    bucket_counts: list[int]
    total: float = 0.0
    count: int = 0
    vmin: float = math.inf
    vmax: float = -math.inf

    def observe(self, value: float, buckets: tuple[float, ...]) -> None:
        for i, bound in enumerate(buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                break
        else:
            self.bucket_counts[-1] += 1  # +Inf bucket
        self.total += value
        self.count += 1
        self.vmin = min(self.vmin, value)
        self.vmax = max(self.vmax, value)


@dataclass
class Histogram:
    """Bucketed observations per label set (Prometheus cumulative export)."""

    name: str
    help: str = ""
    buckets: tuple[float, ...] = WALL_BUCKETS
    values: dict[tuple, HistogramSeries] = field(default_factory=dict)

    kind = "histogram"

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        series = self.values.get(key)
        if series is None:
            # one extra slot is the +Inf bucket
            series = self.values[key] = HistogramSeries(
                bucket_counts=[0] * (len(self.buckets) + 1)
            )
        series.observe(value, self.buckets)

    def series(self, **labels) -> HistogramSeries | None:
        return self.values.get(_label_key(labels))


# ------------------------------------------------------------------ registry
class MetricsRegistry:
    """A namespace of metric families with exporters."""

    def __init__(self) -> None:
        self.families: dict[str, Counter | Gauge | Histogram] = {}

    # ----------------------------------------------------------- factories
    def _family(self, cls, name: str, help: str, **kw):
        fam = self.families.get(name)
        if fam is None:
            fam = self.families[name] = cls(name=name, help=help, **kw)
        elif not isinstance(fam, cls):
            raise TypeError(
                f"metric {name!r} already registered as {fam.kind}, "
                f"not {cls.kind}"
            )
        return fam

    def counter(self, name: str, help: str = "") -> Counter:
        return self._family(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._family(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple[float, ...] = WALL_BUCKETS
    ) -> Histogram:
        return self._family(Histogram, name, help, buckets=buckets)

    # ----------------------------------------------------------- exporters
    def to_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4)."""
        lines: list[str] = []
        for name in sorted(self.families):
            fam = self.families[name]
            if fam.help:
                lines.append(f"# HELP {name} {fam.help}")
            lines.append(f"# TYPE {name} {fam.kind}")
            if isinstance(fam, Histogram):
                for key, series in sorted(fam.values.items()):
                    cum = 0
                    for bound, n in zip(
                        list(fam.buckets) + ["+Inf"], series.bucket_counts
                    ):
                        cum += n
                        le = bound if bound == "+Inf" else repr(bound)
                        lines.append(
                            f"{name}_bucket{_prom_labels(key, le=le)} {cum}"
                        )
                    lines.append(f"{name}_sum{_prom_labels(key)} {series.total}")
                    lines.append(f"{name}_count{_prom_labels(key)} {series.count}")
            else:
                for key, value in sorted(fam.values.items()):
                    lines.append(f"{name}{_prom_labels(key)} {value}")
        return "\n".join(lines) + "\n"

    def to_jsonl(self) -> str:
        """One JSON object per sample (counters/gauges) or series (histograms)."""
        out: list[str] = []
        for name in sorted(self.families):
            fam = self.families[name]
            if isinstance(fam, Histogram):
                for key, series in sorted(fam.values.items()):
                    out.append(json.dumps({
                        "name": name,
                        "type": fam.kind,
                        "labels": dict(key),
                        "count": series.count,
                        "sum": series.total,
                        "min": None if series.count == 0 else series.vmin,
                        "max": None if series.count == 0 else series.vmax,
                        "buckets": {
                            repr(b): n
                            for b, n in zip(fam.buckets, series.bucket_counts)
                        },
                        "overflow": series.bucket_counts[-1],
                    }))
            else:
                for key, value in sorted(fam.values.items()):
                    out.append(json.dumps({
                        "name": name,
                        "type": fam.kind,
                        "labels": dict(key),
                        "value": value,
                    }))
        return "\n".join(out) + ("\n" if out else "")


def _prom_labels(key: tuple, **extra) -> str:
    items = list(key) + sorted(extra.items())
    if not items:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in items)
    return "{" + body + "}"


# -------------------------------------------------------- sink lifecycle
def attach_sink(sink: MetricsRegistry) -> MetricsRegistry:
    """Attach a sink; instrumented sites start recording into it."""
    SINKS.append(sink)
    return sink


def detach_sink(sink: MetricsRegistry) -> None:
    if sink in SINKS:
        SINKS.remove(sink)


# ---------------------------------------------------------------- emission
def inc(name: str, value: float = 1.0, *, help: str = "", **labels) -> None:
    """Increment ``name`` in every attached sink (no-op when none)."""
    if not SINKS:
        return
    for sink in SINKS:
        sink.counter(name, help).inc(value, **labels)


def set_gauge(name: str, value: float, *, help: str = "", **labels) -> None:
    if not SINKS:
        return
    for sink in SINKS:
        sink.gauge(name, help).set(value, **labels)


def observe(name: str, value: float, *, help: str = "", **labels) -> None:
    if not SINKS:
        return
    for sink in SINKS:
        sink.histogram(name, help).observe(value, **labels)


# -------------------------------------------------------------- mode config
def mode_config() -> dict[str, str]:
    """The active mode-registry switches, as a flat string dict.

    This is the config axis of the (kernel, workload, config) profile key:
    the explicit mode switches the ROADMAP's autotuner will search over.
    Imported lazily — this is the one place the metrics core reaches into
    the rest of ``repro``, and only when a sink actually asks.
    """
    from repro.core.neighbor import stencil_mode
    from repro.graph.plan import graph_mode
    from repro.kokkos.core import device_context, is_initialized
    from repro.kokkos.segment import scatter_mode

    device = "uninitialized"
    if is_initialized():
        ctx = device_context()
        device = "host" if ctx.host_only else ctx.gpu.name
    return {
        "device": device,
        "scatter": scatter_mode(),
        "stencil": stencil_mode(),
        "graph": graph_mode(),
    }


def config_key(config: dict[str, str] | None = None) -> str:
    """Canonical string form of a mode config (stable dict-key ordering)."""
    config = mode_config() if config is None else config
    return ",".join(f"{k}={v}" for k, v in sorted(config.items()))


# ------------------------------------------------------------ profile store
class ProfileStore:
    """Reusable per-(kernel, workload, mode-config) wall-clock profiles.

    File layout (``profiles.json``)::

        {"schema_version": 1,
         "profiles": {workload: {config_key: {kernel: {
             "wall_seconds": total, "sim_seconds": total,
             "count": dispatches, "runs": merge_count}}}}}

    ``update`` merges a run's totals in (accumulating counts, keeping the
    best observed mean); the autotuner reads ``best_config`` to pick the
    fastest recorded mode config for a (workload, kernel).
    """

    SCHEMA_VERSION = 1

    def __init__(self, path: str) -> None:
        self.path = path
        self.data: dict[str, Any] = {
            "schema_version": self.SCHEMA_VERSION,
            "profiles": {},
        }
        if os.path.exists(path):
            try:
                with open(path) as fh:
                    loaded = json.load(fh)
                if loaded.get("schema_version") == self.SCHEMA_VERSION:
                    self.data = loaded
            except (OSError, json.JSONDecodeError):
                pass  # corrupt store: start fresh rather than crash the run

    # ------------------------------------------------------------- updates
    def update(
        self,
        workload: str,
        config: dict[str, str],
        kernels: dict[str, dict[str, float]],
    ) -> None:
        """Merge one run's per-kernel totals under (workload, config)."""
        slot = (
            self.data["profiles"]
            .setdefault(workload, {})
            .setdefault(config_key(config), {})
        )
        for kernel, row in kernels.items():
            cur = slot.get(kernel)
            if cur is None:
                slot[kernel] = dict(row, runs=1)
            else:
                cur["wall_seconds"] += row["wall_seconds"]
                cur["sim_seconds"] += row.get("sim_seconds", 0.0)
                cur["count"] += row["count"]
                cur["runs"] += 1

    def save(self) -> None:
        with open(self.path, "w") as fh:
            json.dump(self.data, fh, indent=2, sort_keys=True)
            fh.write("\n")

    # ------------------------------------------------------------- queries
    def kernels(self, workload: str, config: dict[str, str] | None = None) -> dict:
        return self.data["profiles"].get(workload, {}).get(config_key(config), {})

    def mean_wall(self, workload: str, kernel: str, config=None) -> float | None:
        row = self.kernels(workload, config).get(kernel)
        if not row or not row["count"]:
            return None
        return row["wall_seconds"] / row["count"]

    def best_config(self, workload: str, kernel: str) -> tuple[str, float] | None:
        """(config_key, mean wall seconds) of the fastest recorded config."""
        best: tuple[str, float] | None = None
        for ckey, kernels in self.data["profiles"].get(workload, {}).items():
            row = kernels.get(kernel)
            if not row or not row["count"]:
                continue
            mean = row["wall_seconds"] / row["count"]
            if best is None or mean < best[1]:
                best = (ckey, mean)
        return best


# ----------------------------------------------------------------- the tool
class MetricsTool(Tool):
    """Bridge the KokkosP event stream into a :class:`MetricsRegistry`.

    Every dispatch records a ``kernel_dispatch_total`` count, a
    ``kernel_sim_seconds_total`` modeled-time counter, and a
    ``kernel_wall_seconds`` wall-clock histogram — both clocks, per kernel.
    Deep copies, fences, allocations, and charged comm instants land in
    their own families.  At finalize the registry is written as
    ``metrics.prom`` + ``metrics.jsonl`` under ``out`` (when given) and the
    per-kernel wall totals are merged into the :class:`ProfileStore`.
    """

    name = "metrics"

    #: filenames written under the output directory
    PROM_FILE = "metrics.prom"
    JSONL_FILE = "metrics.jsonl"
    PROFILES_FILE = "profiles.json"

    def __init__(
        self,
        out: str | None = None,
        *,
        workload: str = "run",
        registry: MetricsRegistry | None = None,
        store: ProfileStore | None = None,
    ) -> None:
        self.out = out
        self.workload = workload
        self.registry = registry if registry is not None else MetricsRegistry()
        self.store = store
        attach_sink(self.registry)
        r = self.registry
        self.dispatches = r.counter(
            "kernel_dispatch_total", "parallel_* dispatches by kernel"
        )
        self.sim_seconds = r.counter(
            "kernel_sim_seconds_total", "modeled seconds charged by kernel"
        )
        self.wall = r.histogram(
            "kernel_wall_seconds", "measured wall seconds per dispatch"
        )
        self.fences = r.counter("fence_total", "fence events by name")
        self.copies = r.counter("deep_copy_total", "deep copies by route")
        self.copy_bytes = r.counter("deep_copy_bytes_total", "deep-copied bytes")
        self.mem_current = r.gauge(
            "memory_current_bytes", "live allocation bytes per space"
        )
        self.instants = r.counter(
            "profile_event_total", "profile_event instants by name"
        )
        self.instant_seconds = r.counter(
            "profile_event_sim_seconds_total", "modeled seconds charged by instants"
        )
        # Kernel-graph plan-cache effectiveness.  The cache itself emits
        # through metrics.inc into every attached sink; registering the
        # families up-front keeps them visible (at zero) in --metrics-out
        # exports even for runs that never enable graph mode.
        self.graph_plan_hits = r.counter(
            "graph_plan_hits_total", "fused-plan cache hits by plan"
        )
        self.graph_plan_misses = r.counter(
            "graph_plan_misses_total",
            "fused-plan cache misses (capture required) by plan",
        )
        self.graph_fused_nodes = r.counter(
            "graph_fused_nodes_total", "dispatches folded into fused groups, by plan"
        )
        # QEq solver accounting.  The CG generator emits through metrics.inc
        # per solve; registering the families up-front keeps them visible
        # (at zero) in --metrics-out exports for ReaxFF-less runs too.
        self.qeq_solves = r.counter(
            "qeq_solves_total", "QEq dual CG solves by preconditioner/seeding"
        )
        self.qeq_iterations = r.counter(
            "qeq_iterations_total",
            "QEq CG iterations-to-tolerance by preconditioner/seeding",
        )
        self.qeq_spmv_bytes = r.counter(
            "qeq_spmv_bytes_total",
            "QEq matrix-stream bytes traversed, by spmv mode (fused/dual)",
        )
        # Replica batching/session accounting.  The ReplicaBatch and
        # SessionManager emit through metrics.set_gauge/observe into every
        # attached sink; registering up-front keeps the families visible
        # (at zero) in --metrics-out exports for non-batched runs too.
        self.replica_occupancy = r.gauge(
            "replica_batch_occupancy",
            "live replicas / peak capacity per batch (1.0 = full)",
        )
        self.replica_jobs = r.gauge(
            "replica_jobs_active", "jobs admitted and not yet finished"
        )
        self.replica_epoch = r.histogram(
            "replica_epoch_seconds",
            "wall seconds between batch re-hoists (epoch length)",
        )

    # ------------------------------------------------------------- kernels
    def _end_kernel(self, ev: KernelEvent) -> None:
        self.dispatches.inc(kernel=ev.name, space=ev.space, kind=ev.kind)
        self.sim_seconds.inc(ev.sim_seconds, kernel=ev.name)
        self.wall.observe(ev.wall_seconds, kernel=ev.name)

    end_parallel_for = _end_kernel
    end_parallel_reduce = _end_kernel
    end_parallel_scan = _end_kernel

    # ------------------------------------------------------- fences/copies
    def end_fence(self, ev: FenceEvent) -> None:
        self.fences.inc(name=ev.name)

    def end_deep_copy(self, ev: DeepCopyEvent) -> None:
        route = f"{ev.src_space}->{ev.dst_space}"
        self.copies.inc(route=route)
        self.copy_bytes.inc(ev.nbytes, route=route)

    # -------------------------------------------------------------- memory
    def allocate_data(self, ev: MemoryEvent) -> None:
        self.mem_current.set(
            self.mem_current.get(space=ev.space) + ev.nbytes, space=ev.space
        )

    def deallocate_data(self, ev: MemoryEvent) -> None:
        self.mem_current.set(
            max(self.mem_current.get(space=ev.space) - ev.nbytes, 0.0),
            space=ev.space,
        )

    # ------------------------------------------------------------ instants
    def profile_event(self, ev: InstantEvent) -> None:
        self.instants.inc(name=ev.name)
        if ev.sim_seconds:
            self.instant_seconds.inc(ev.sim_seconds, name=ev.name)

    # ------------------------------------------------------------- queries
    def kernel_totals(self) -> dict[str, dict[str, float]]:
        """Per-kernel {wall_seconds, sim_seconds, count} over all dispatches.

        Counts come from the dispatch counter (summed over space/kind label
        sets), wall totals from the histogram sums — the numbers the
        reconciliation test holds against the space-time-stack.
        """
        totals: dict[str, dict[str, float]] = {}
        for key, n in self.dispatches.values.items():
            kernel = dict(key)["kernel"]
            row = totals.setdefault(
                kernel, {"wall_seconds": 0.0, "sim_seconds": 0.0, "count": 0}
            )
            row["count"] += int(n)
        for key, series in self.wall.values.items():
            kernel = dict(key)["kernel"]
            totals.setdefault(
                kernel, {"wall_seconds": 0.0, "sim_seconds": 0.0, "count": 0}
            )["wall_seconds"] += series.total
        for key, s in self.sim_seconds.values.items():
            kernel = dict(key)["kernel"]
            totals.setdefault(
                kernel, {"wall_seconds": 0.0, "sim_seconds": 0.0, "count": 0}
            )["sim_seconds"] += s
        return totals

    # -------------------------------------------------------------- output
    def finalize(self) -> str:
        detach_sink(self.registry)
        lines = ["", "=" * 72, "metrics", "=" * 72]
        totals = self.kernel_totals()
        ndisp = int(sum(row["count"] for row in totals.values()))
        lines.append(
            f"  {len(self.registry.families)} families, "
            f"{len(totals)} kernels, {ndisp} dispatches"
        )
        top = sorted(totals.items(), key=lambda kv: -kv[1]["wall_seconds"])[:5]
        for name, row in top:
            mean = row["wall_seconds"] / max(row["count"], 1)
            lines.append(
                f"  {name:<32} {row['wall_seconds']:10.6f} s wall "
                f"({int(row['count'])}x, {mean * 1e6:9.1f} us/dispatch)"
            )
        store = self.store
        if self.out is not None:
            os.makedirs(self.out, exist_ok=True)
            prom = os.path.join(self.out, self.PROM_FILE)
            jsonl = os.path.join(self.out, self.JSONL_FILE)
            with open(prom, "w") as fh:
                fh.write(self.registry.to_prometheus())
            with open(jsonl, "w") as fh:
                fh.write(self.registry.to_jsonl())
            lines.append(f"  prometheus: {prom}")
            lines.append(f"  jsonl:      {jsonl}")
            if store is None:
                store = ProfileStore(os.path.join(self.out, self.PROFILES_FILE))
        if store is not None and totals:
            store.update(self.workload, mode_config(), totals)
            store.save()
            lines.append(f"  profiles:   {store.path} (workload {self.workload!r})")
        return "\n".join(lines)
