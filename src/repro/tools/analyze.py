"""Offline trace analytics over the chrome-trace event stream.

``python -m repro --analyze-trace trace.json`` loads a trace written by the
:class:`~repro.tools.chrome_trace.ChromeTrace` tool and computes the
numbers a perf engineer reads a multi-rank timeline for:

* **multi-rank critical path** — ranks synchronize at every collective
  (the ``comm:allreduce`` instants the rebuild check emits each step);
  between consecutive sync points the slowest rank bounds progress.  The
  critical path is the sum over sync segments of the per-segment maximum,
  with a per-rank tally of how often each rank was the one everybody else
  waited for.
* **per-rank load imbalance** — LAMMPS-style: ``(max/avg - 1) * 100`` over
  the per-rank accounted time (top-level region durations).
* **comm/compute overlap efficiency** — how much of the communication time
  the interior force pass could hide: ``min(interior, comm) / comm``,
  where ``interior`` is the overlap scheme's interior-region time and
  ``comm`` the top-level Comm-region time.
* **top-N kernels by exclusive time** — kernels never nest in this
  runtime, so exclusive == inclusive per B/E pair.

All times are the trace's own clock (simulated microseconds per rank).
The analyzer is deliberately decoupled from the live registry: it reads
any structurally valid chrome trace, including ones from old runs or CI
artifacts.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass, field

#: regions whose top-level time counts as communication
COMM_REGIONS = ("Comm",)
#: the sync-point instant name (every step's collective rebuild check)
SYNC_EVENT = "comm:allreduce"
#: the overlap scheme's hidden-compute region name
INTERIOR_REGION = "interior"


@dataclass
class RankTimeline:
    """Everything the analyzer extracted from one rank's track."""

    rank: int
    first_ts: float = 0.0
    last_ts: float = 0.0
    #: name -> total us inside top-level regions of that name
    category_us: dict[str, float] = field(default_factory=dict)
    #: kernel name -> [count, total us]
    kernels: dict[str, list] = field(default_factory=dict)
    #: total us inside ``interior`` regions (any depth)
    interior_us: float = 0.0
    #: timestamps of sync-point instants, in order
    sync_ts: list[float] = field(default_factory=list)

    @property
    def accounted_us(self) -> float:
        return sum(self.category_us.values())

    @property
    def comm_us(self) -> float:
        return sum(self.category_us.get(c, 0.0) for c in COMM_REGIONS)

    @property
    def compute_us(self) -> float:
        return self.accounted_us - self.comm_us


def load_trace(path: str) -> list[dict]:
    with open(path) as fh:
        payload = json.load(fh)
    events = payload.get("traceEvents") if isinstance(payload, dict) else payload
    if not isinstance(events, list):
        raise ValueError(f"{path}: not a chrome trace (no traceEvents array)")
    return events


def _extract(events: list[dict]) -> dict[int, RankTimeline]:
    """One pass over the sorted event stream, building per-rank timelines."""
    ranks: dict[int, RankTimeline] = {}
    region_stacks: dict[int, list[tuple[str, float]]] = defaultdict(list)
    kernel_opens: dict[int, list[tuple[str, float]]] = defaultdict(list)
    for ev in events:
        ph = ev.get("ph")
        if ph == "M":
            continue
        tid = ev.get("tid", 0)
        tl = ranks.get(tid)
        if tl is None:
            tl = ranks[tid] = RankTimeline(rank=tid, first_ts=ev["ts"])
        ts = ev["ts"]
        tl.last_ts = max(tl.last_ts, ts)
        cat = ev.get("cat")
        name = ev.get("name", "")
        if ph == "B":
            if cat == "kernel":
                kernel_opens[tid].append((name, ts))
            else:
                region_stacks[tid].append((name, ts))
        elif ph == "E":
            if cat == "kernel":
                if kernel_opens[tid] and kernel_opens[tid][-1][0] == name:
                    _, t0 = kernel_opens[tid].pop()
                    row = tl.kernels.setdefault(name, [0, 0.0])
                    row[0] += 1
                    row[1] += ts - t0
            else:
                if not region_stacks[tid]:
                    continue  # tolerate truncated traces
                open_name, t0 = region_stacks[tid].pop()
                if open_name != name:
                    continue
                if not region_stacks[tid]:  # top-level region closed
                    tl.category_us[name] = tl.category_us.get(name, 0.0) + ts - t0
                if name == INTERIOR_REGION:
                    tl.interior_us += ts - t0
        elif ph == "i" and name == SYNC_EVENT:
            tl.sync_ts.append(ts)
    return ranks


def _critical_path(ranks: dict[int, RankTimeline]) -> dict:
    """Segment the run at the k-th sync point of every rank; sum the maxima.

    Ranks reach the same collective at different local clock readings; the
    k-th ``comm:allreduce`` on each track is the same collective, so the
    segment between sync k-1 and sync k costs ``max over ranks`` of the
    per-rank segment time.  The tail after the last common sync is charged
    the same way.
    """
    ids = sorted(ranks)
    nsync = min((len(ranks[r].sync_ts) for r in ids), default=0)
    cursors = {r: ranks[r].first_ts for r in ids}
    total = 0.0
    dominated = {r: 0 for r in ids}
    segments = 0
    for k in range(nsync):
        seg = {r: ranks[r].sync_ts[k] - cursors[r] for r in ids}
        worst = max(ids, key=lambda r: seg[r])
        total += seg[worst]
        dominated[worst] += 1
        segments += 1
        cursors = {r: ranks[r].sync_ts[k] for r in ids}
    tail = {r: ranks[r].last_ts - cursors[r] for r in ids}
    if any(t > 0 for t in tail.values()):
        worst = max(ids, key=lambda r: tail[r])
        total += tail[worst]
        dominated[worst] += 1
        segments += 1
    slowest_rank_us = max((ranks[r].last_ts - ranks[r].first_ts for r in ids),
                          default=0.0)
    return {
        "critical_path_us": total,
        "sync_points": nsync,
        "segments": segments,
        "dominant_segments_per_rank": {str(r): dominated[r] for r in ids},
        # how much longer the stall-aware path is than the single slowest
        # rank's span: 1.0 = one rank dominates end to end, higher = the
        # bottleneck migrates between ranks (worse than any one rank's span)
        "stretch_vs_slowest_rank": (
            total / slowest_rank_us if slowest_rank_us > 0 else 1.0
        ),
    }


def analyze(events: list[dict], top: int = 10) -> dict:
    """Full analysis of a chrome-trace event list; returns a JSON-able dict."""
    events = sorted(
        (e for e in events if e.get("ph") != "M"), key=lambda e: e.get("ts", -1.0)
    )
    ranks = _extract(events)
    if not ranks:
        raise ValueError("trace contains no events on any track")

    per_rank = {}
    busy = []
    for r in sorted(ranks):
        tl = ranks[r]
        per_rank[str(r)] = {
            "span_us": tl.last_ts - tl.first_ts,
            "accounted_us": tl.accounted_us,
            "comm_us": tl.comm_us,
            "compute_us": tl.compute_us,
            "categories_us": dict(sorted(tl.category_us.items())),
        }
        busy.append(tl.accounted_us)

    avg_busy = sum(busy) / len(busy)
    max_busy = max(busy)
    imbalance_pct = (max_busy / avg_busy - 1.0) * 100.0 if avg_busy > 0 else 0.0

    # ---- kernels: merge across ranks, rank by total (exclusive) time
    merged: dict[str, list] = {}
    for tl in ranks.values():
        for name, (count, us) in tl.kernels.items():
            row = merged.setdefault(name, [0, 0.0])
            row[0] += count
            row[1] += us
    kernel_rows = [
        {
            "kernel": name,
            "count": count,
            "total_us": us,
            "mean_us": us / count if count else 0.0,
        }
        for name, (count, us) in merged.items()
    ]
    kernel_rows.sort(key=lambda row: -row["total_us"])

    # ---- overlap efficiency
    comm_us = sum(tl.comm_us for tl in ranks.values())
    interior_us = sum(tl.interior_us for tl in ranks.values())
    hidden_us = min(comm_us, interior_us)
    overlap = {
        "comm_us": comm_us,
        "interior_us": interior_us,
        "hidden_us": hidden_us,
        "efficiency": hidden_us / comm_us if comm_us > 0 else 0.0,
    }

    return {
        "ranks": per_rank,
        "nranks": len(ranks),
        "load_imbalance_pct": imbalance_pct,
        "critical_path": _critical_path(ranks),
        "overlap": overlap,
        "top_kernels": kernel_rows[:top],
        "total_kernels": len(kernel_rows),
        "total_dispatches": sum(row[0] for row in merged.values()),
    }


def analyze_file(path: str, top: int = 10) -> dict:
    return analyze(load_trace(path), top=top)


# ----------------------------------------------------------------- reporting
def format_report(a: dict) -> str:
    lines = ["=" * 72, "trace analytics", "=" * 72]
    cp = a["critical_path"]
    lines.append(
        f"ranks: {a['nranks']}   load imbalance: {a['load_imbalance_pct']:.2f}%"
    )
    lines.append(
        f"critical path: {cp['critical_path_us']:.3f} us over "
        f"{cp['segments']} segment(s) ({cp['sync_points']} sync points), "
        f"stretch vs slowest rank {cp['stretch_vs_slowest_rank']:.3f}x"
    )
    dom = cp["dominant_segments_per_rank"]
    if len(dom) > 1:
        parts = ", ".join(f"rank {r}: {n}" for r, n in sorted(dom.items()))
        lines.append(f"  segments dominated by {parts}")
    ov = a["overlap"]
    lines.append(
        f"comm/compute overlap: comm {ov['comm_us']:.3f} us, interior "
        f"{ov['interior_us']:.3f} us, hidden {ov['hidden_us']:.3f} us "
        f"-> efficiency {ov['efficiency']:.3f}"
    )
    lines.append("-" * 72)
    lines.append(
        f"{'kernel':<36} {'count':>7} {'total us':>12} {'mean us':>10}"
    )
    for row in a["top_kernels"]:
        lines.append(
            f"{row['kernel']:<36} {row['count']:>7d} "
            f"{row['total_us']:>12.3f} {row['mean_us']:>10.3f}"
        )
    lines.append("-" * 72)
    for r, row in sorted(a["ranks"].items(), key=lambda kv: int(kv[0])):
        cats = " ".join(
            f"{name}={us:.1f}" for name, us in row["categories_us"].items()
        )
        lines.append(
            f"rank {r}: span {row['span_us']:.3f} us, accounted "
            f"{row['accounted_us']:.3f} us  [{cats}]"
        )
    return "\n".join(lines)
