"""chrome://tracing JSON export (Kokkos Tools' chrome-tracing connector).

One trace track per simulated MPI rank (pid 0, tid = rank), timestamped on
the rank's *simulated* clock in microseconds, so the timeline shows what
the modeled exascale hardware would see rather than interpreter overhead:

* regions and kernels  -> ``B``/``E`` duration pairs;
* fences               -> ``i`` instant events;
* deep copies          -> an ``i`` instant plus an ``s``/``f`` flow pair
  spanning the transfer, so the copy draws an arrow across the track;
* charged comm instants -> ``i`` instant events with byte counts in args.

Load the output at ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import json

from repro.tools.registry import (
    DeepCopyEvent,
    FenceEvent,
    InstantEvent,
    KernelEvent,
    RegionEvent,
    Tool,
)

PID = 0


class ChromeTrace(Tool):
    """Accumulates trace events; writes the JSON file at finalize."""

    name = "chrome-trace"

    def __init__(self, out: str = "trace.json") -> None:
        self.out = out
        self.events: list[dict] = [
            {
                "ph": "M",
                "pid": PID,
                "name": "process_name",
                "args": {"name": "repro simulated run"},
            }
        ]
        self._known_ranks: set[int] = set()
        self._open_regions: dict[int, list[tuple[str, float]]] = {}

    # ------------------------------------------------------------ plumbing
    def _track(self, rank: int) -> int:
        if rank not in self._known_ranks:
            self._known_ranks.add(rank)
            self.events.append(
                {
                    "ph": "M",
                    "pid": PID,
                    "tid": rank,
                    "name": "thread_name",
                    "args": {"name": f"rank {rank}"},
                }
            )
        return rank

    def _emit(self, ph: str, name: str, rank: int, ts: float, **extra) -> None:
        ev = {"ph": ph, "pid": PID, "tid": self._track(rank), "ts": ts, "name": name}
        ev.update(extra)
        self.events.append(ev)

    # ------------------------------------------------------------- regions
    def push_region(self, ev: RegionEvent) -> None:
        self._emit("B", ev.name, ev.rank, ev.sim_us, cat="region")
        self._open_regions.setdefault(ev.rank, []).append((ev.name, ev.sim_us))

    def pop_region(self, ev: RegionEvent) -> None:
        open_ = self._open_regions.get(ev.rank)
        if open_:
            open_.pop()
        self._emit("E", ev.name, ev.rank, ev.sim_us, cat="region")

    # ------------------------------------------------------------- kernels
    def _end_kernel(self, ev: KernelEvent) -> None:
        args = {"space": ev.space, "kind": ev.kind, "kid": ev.kid}
        if ev.profile is not None:
            args["flops"] = getattr(ev.profile, "flops", 0.0)
            args["bytes"] = getattr(ev.profile, "bytes_streamed", 0.0) + getattr(
                ev.profile, "bytes_reusable", 0.0
            )
        if ev.name.startswith("graph:fused["):
            # kernel-graph composite dispatch: annotate how many captured
            # stages the fused body carries (graph:fused[a+b+c] -> 3)
            args["fused_stages"] = ev.name.count("+") + 1
        self._emit("B", ev.name, ev.rank, ev.sim_us, cat="kernel", args=args)
        self._emit("E", ev.name, ev.rank, ev.sim_end_us, cat="kernel")

    end_parallel_for = _end_kernel
    end_parallel_reduce = _end_kernel
    end_parallel_scan = _end_kernel

    # ------------------------------------------------------- fences/copies
    def end_fence(self, ev: FenceEvent) -> None:
        self._emit("i", ev.name, ev.rank, ev.sim_us, cat="fence", s="t")

    def end_deep_copy(self, ev: DeepCopyEvent) -> None:
        name = f"deep_copy {ev.src_space}->{ev.dst_space}"
        args = {
            "src": f"{ev.src_space}:{ev.src_label}",
            "dst": f"{ev.dst_space}:{ev.dst_label}",
            "bytes": ev.nbytes,
        }
        self._emit("i", name, ev.rank, ev.sim_us, cat="deep_copy", s="t", args=args)
        # flow arrow spanning the transfer on the rank's own track
        fid = f"copy-{len(self.events)}"
        self._emit("s", name, ev.rank, ev.sim_us, cat="deep_copy", id=fid)
        self._emit(
            "f", name, ev.rank, ev.sim_end_us, cat="deep_copy", id=fid, bp="e"
        )

    def profile_event(self, ev: InstantEvent) -> None:
        self._emit(
            "i",
            ev.name,
            ev.rank,
            ev.sim_us,
            cat="instant",
            s="t",
            args=dict(ev.metadata),
        )

    # --------------------------------------------------------------- output
    def finalize(self) -> str:
        from repro.tools.registry import CHAIN

        # close any region still open (tools detached mid-region): every B
        # must have a matching E for the trace to validate
        for rank, open_ in self._open_regions.items():
            now = CHAIN.sim_now(rank) * 1e6
            for name, _ts in reversed(open_):
                self._emit("E", name, rank, now, cat="region")
            open_.clear()
        # Kernel B/E pairs are emitted at the *end* callback (their duration
        # isn't known at begin), so the array interleaves out of timestamp
        # order with live-emitted instants.  A stable sort restores
        # monotonic per-track timestamps; ties keep emission order, which is
        # program order, so nesting (B-before-E at equal ts) is preserved.
        self.events.sort(key=lambda e: e.get("ts", -1.0))
        payload = {
            "traceEvents": self.events,
            "displayTimeUnit": "ms",
            "otherData": {"clock": "simulated microseconds per rank"},
        }
        with open(self.out, "w") as fh:
            json.dump(payload, fh)
        return f"chrome trace: {self.out} ({len(self.events)} events)"
