"""In-process simulated MPI world.

The world owns a mailbox keyed by ``(src, dest, tag)``.  Per-rank
:class:`SimComm` handles post sends into the mailbox and pop receives out of
it.  Intra-node messages (ranks sharing a node) are charged NVLink/xGMI-class
costs; inter-node messages are charged the fabric's alpha-beta cost; both
land in a :class:`CommLedger` that the scaling benchmarks read.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.hardware.network import NETWORKS, NetworkSpec
from repro.tools import metrics
from repro.tools import registry as kp

#: Intra-node (NVLink / xGMI / Xe-Link class) message parameters.
INTRANODE_LATENCY_US = 1.0
INTRANODE_BW_GBS = 150.0


class SimDeadlockError(RuntimeError):
    """A receive was attempted with no matching posted send.

    In real MPI this is a hang; sequential rank execution lets us turn it
    into a diagnostic.
    """


@dataclass
class CommLedger:
    """Accumulated modeled communication seconds, by category."""

    entries: dict[str, float] = field(default_factory=dict)
    messages: int = 0
    bytes_moved: int = 0
    #: Running total (O(1) snapshots for the phase timers, like
    #: :class:`~repro.hardware.cost.DeviceTimeline`).
    cum_seconds: float = 0.0

    def record(self, category: str, seconds: float, nbytes: int = 0) -> None:
        self.entries[category] = self.entries.get(category, 0.0) + seconds
        self.messages += 1
        self.bytes_moved += nbytes
        self.cum_seconds += seconds
        if metrics.SINKS:
            metrics.inc("comm_messages_total", category=category)
            metrics.inc("comm_sim_seconds_total", seconds, category=category)
            if nbytes:
                metrics.inc("comm_bytes_total", nbytes, category=category)
        if kp.TOOLS:
            # one charged instant per modeled message/collective: the
            # KokkosP analogue of an MPI profiling hook, attributed to the
            # emitting rank's track and simulated clock
            kp.profile_event(f"comm:{category}", sim_seconds=seconds, bytes=nbytes)

    def total(self) -> float:
        return sum(self.entries.values())

    def reset(self) -> None:
        self.entries.clear()
        self.messages = 0
        self.bytes_moved = 0
        self.cum_seconds = 0.0


class SimWorld:
    """All ranks plus the fabric connecting them."""

    def __init__(
        self,
        size: int,
        *,
        network: NetworkSpec | str = "loopback",
        ranks_per_node: int = 1,
    ) -> None:
        if size < 1:
            raise ValueError("world size must be >= 1")
        if ranks_per_node < 1:
            raise ValueError("ranks_per_node must be >= 1")
        self.size = size
        self.network = NETWORKS[network] if isinstance(network, str) else network
        self.ranks_per_node = ranks_per_node
        self.ledger = CommLedger()
        self._mailbox: dict[tuple[int, int, Any], deque] = {}
        self._reduce_buckets: dict[Any, list] = {}
        self._reduce_results: dict[Any, tuple[Any, int]] = {}

    # ------------------------------------------------------------ topology
    def node_of(self, rank: int) -> int:
        return rank // self.ranks_per_node

    def comm(self, rank: int) -> "SimComm":
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range [0, {self.size})")
        return SimComm(self, rank)

    def comms(self) -> list["SimComm"]:
        return [self.comm(r) for r in range(self.size)]

    # ----------------------------------------------------------- messaging
    def _message_time(self, src: int, dest: int, nbytes: int) -> float:
        if src == dest:
            return 0.0
        if self.node_of(src) == self.node_of(dest):
            return INTRANODE_LATENCY_US * 1e-6 + nbytes / (INTRANODE_BW_GBS * 1e9)
        return self.network.ptp_time(nbytes)

    def post(self, src: int, dest: int, tag: Any, payload: Any) -> None:
        key = (src, dest, tag)
        self._mailbox.setdefault(key, deque()).append(payload)
        nbytes = payload.nbytes if isinstance(payload, np.ndarray) else 64
        self.ledger.record(
            "intranode" if self.node_of(src) == self.node_of(dest) else "fabric",
            self._message_time(src, dest, nbytes),
            nbytes,
        )

    def take(self, src: int, dest: int, tag: Any) -> Any:
        key = (src, dest, tag)
        queue = self._mailbox.get(key)
        if not queue:
            raise SimDeadlockError(
                f"rank {dest} receives (src={src}, tag={tag!r}) but nothing "
                "was posted — phase ordering bug (simulated deadlock)"
            )
        payload = queue.popleft()
        if not queue:
            del self._mailbox[key]
        return payload

    @property
    def pending_messages(self) -> int:
        return sum(len(q) for q in self._mailbox.values())

    def assert_drained(self) -> None:
        """Fail if any posted message was never received (lost-message bug)."""
        if self.pending_messages:
            keys = sorted(self._mailbox)[:8]
            raise RuntimeError(
                f"{self.pending_messages} message(s) never received; "
                f"first keys: {keys}"
            )

    # -------------------------------------------- phase-structured reduce
    def reduce_contribute(self, key: Any, value: Any) -> None:
        """Rank-side allreduce, phase 1: deposit a contribution.

        All ranks contribute under the same key before any reads the result
        (the lockstep driver's yield point sits between the two phases).
        """
        bucket = self._reduce_buckets.setdefault(key, [])
        bucket.append(np.asarray(value, dtype=float))
        if len(bucket) > self.size:
            raise RuntimeError(
                f"reduce key {key!r}: more contributions than ranks"
            )

    def reduce_result(self, key: Any) -> Any:
        """Rank-side allreduce, phase 2: read the combined result."""
        if key not in self._reduce_results:
            bucket = self._reduce_buckets.get(key)
            if bucket is None or len(bucket) < self.size:
                have = 0 if bucket is None else len(bucket)
                raise SimDeadlockError(
                    f"reduce key {key!r}: result read with {have}/{self.size} "
                    "contributions (phase ordering bug)"
                )
            total = bucket[0].copy()
            for a in bucket[1:]:
                total = total + a
            nbytes = int(total.nbytes)
            self.ledger.record(
                "allreduce", self.network.allreduce_time(nbytes, self.size), nbytes
            )
            self._reduce_results[key] = (total, 0)
            del self._reduce_buckets[key]
        elif kp.TOOLS:
            # the first reader charged the collective (and its instant) to
            # its own track; later readers mark the same sync point at zero
            # cost so every rank's timeline carries one ``comm:allreduce``
            # per collective — the trace analyzer segments on these
            kp.profile_event("comm:allreduce", sim_seconds=0.0)
        total, reads = self._reduce_results[key]
        reads += 1
        if reads >= self.size:
            del self._reduce_results[key]
        else:
            self._reduce_results[key] = (total, reads)
        return total if total.ndim else float(total)

    # ---------------------------------------------------------- collectives
    def allreduce(self, contributions: Sequence[Any], op: Callable = np.add) -> Any:
        """Driver-side allreduce: combine one contribution per rank.

        Charged as a recursive-doubling collective on the fabric.
        """
        if len(contributions) != self.size:
            raise ValueError(
                f"allreduce needs {self.size} contributions, got {len(contributions)}"
            )
        arrs = [np.asarray(c) for c in contributions]
        total = arrs[0].copy()
        for a in arrs[1:]:
            total = op(total, a)
        nbytes = int(total.nbytes)
        self.ledger.record(
            "allreduce", self.network.allreduce_time(nbytes, self.size), nbytes
        )
        return total if total.ndim else total[()]

    def gather(self, contributions: Sequence[Any]) -> list[Any]:
        """Driver-side gather to a virtual root (charged as size-1 messages)."""
        if len(contributions) != self.size:
            raise ValueError("gather needs one contribution per rank")
        for rank, c in enumerate(contributions):
            if rank == 0:
                continue
            nbytes = c.nbytes if isinstance(c, np.ndarray) else 64
            self.ledger.record("gather", self._message_time(rank, 0, nbytes), nbytes)
        return list(contributions)

    def bcast(self, value: Any) -> list[Any]:
        """Driver-side broadcast from the virtual root."""
        nbytes = value.nbytes if isinstance(value, np.ndarray) else 64
        import math

        hops = math.ceil(math.log2(self.size)) if self.size > 1 else 0
        self.ledger.record(
            "bcast",
            hops * (self.network.latency_us * 1e-6 + nbytes / (self.network.nic_bw_gbs * 1e9)),
            nbytes * max(hops, 1),
        )
        return [value if i == 0 else (value.copy() if isinstance(value, np.ndarray) else value) for i in range(self.size)]


@dataclass(frozen=True)
class SimComm:
    """One rank's communicator handle (what engine code holds)."""

    world: SimWorld
    rank: int

    @property
    def size(self) -> int:
        return self.world.size

    def send(self, dest: int, payload: Any, tag: Any = 0) -> None:
        """Post a message.  NumPy payloads are copied (MPI buffer semantics:
        the sender may reuse its buffer immediately)."""
        if not 0 <= dest < self.size:
            raise ValueError(f"send to invalid rank {dest}")
        if isinstance(payload, np.ndarray):
            payload = payload.copy()
        self.world.post(self.rank, dest, tag, payload)

    def recv(self, src: int, tag: Any = 0) -> Any:
        if not 0 <= src < self.size:
            raise ValueError(f"recv from invalid rank {src}")
        return self.world.take(src, self.rank, tag)
