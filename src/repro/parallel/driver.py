"""Lockstep execution of per-rank generators.

Engine communication routines are generators yielding at would-be blocking
receives.  :func:`lockstep` advances every rank's generator to its next
yield before letting any rank resume — the discrete-event equivalent of MPI
progress.  A rank that finishes early simply drops out of the rotation.
"""

from __future__ import annotations

from typing import Generator, Iterable


def lockstep(generators: Iterable[Generator]) -> None:
    """Run generators round-robin, one yield-step at a time, to exhaustion."""
    live = list(generators)
    while live:
        next_round = []
        for gen in live:
            try:
                next(gen)
            except StopIteration:
                continue
            next_round.append(gen)
        live = next_round


def drain(gen: Generator) -> None:
    """Run a single generator to completion (the one-rank fast path)."""
    for _ in gen:
        pass
