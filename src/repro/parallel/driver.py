"""Lockstep execution of per-rank generators.

Engine communication routines are generators yielding at would-be blocking
receives.  :func:`lockstep` advances every rank's generator to its next
yield before letting any rank resume — the discrete-event equivalent of MPI
progress.  A rank that finishes early simply drops out of the rotation.

With observability tools attached, the driver also scopes each generator
advance to its rank (``registry.set_rank``), so every event a rank emits —
kernels, copies, comm charges, regions — lands on that rank's track and
simulated clock.  Without tools the scoping is skipped entirely.
"""

from __future__ import annotations

from typing import Generator, Iterable, Sequence

from repro.tools import registry as kp


def lockstep(
    generators: Iterable[Generator], ranks: Sequence[int] | None = None
) -> None:
    """Run generators round-robin, one yield-step at a time, to exhaustion.

    ``ranks`` labels each generator's simulated rank for the observability
    layer; by default generator *i* is rank *i* (the Ensemble ordering).
    """
    live = list(generators)
    live_ranks = list(ranks) if ranks is not None else list(range(len(live)))
    while live:
        next_round: list[Generator] = []
        next_ranks: list[int] = []
        for rank, gen in zip(live_ranks, live):
            if kp.TOOLS:
                kp.set_rank(rank)
            try:
                next(gen)
            except StopIteration:
                continue
            next_round.append(gen)
            next_ranks.append(rank)
        live, live_ranks = next_round, next_ranks
    if kp.TOOLS:
        kp.set_rank(0)


def drain(gen: Generator, rank: int = 0) -> None:
    """Run a single generator to completion (the one-rank fast path)."""
    if kp.TOOLS:
        kp.set_rank(rank)
    for _ in gen:
        pass
