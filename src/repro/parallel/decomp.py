"""3-D brick spatial decomposition (Plimpton 1995, the LAMMPS default).

The global orthogonal box is cut into a ``px x py x pz`` grid of equal
sub-bricks, one per rank.  Rank placement follows LAMMPS's convention:
x fastest, z slowest.  Each rank talks to its 6 face neighbors (with periodic
wraparound), which is the stencil the halo-exchange cost model and the
functional ghost exchange both use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def factor_ranks(n: int, box_lengths: tuple[float, float, float]) -> tuple[int, int, int]:
    """Factor ``n`` ranks into a 3-D grid minimizing communication surface.

    Same objective as LAMMPS's default processor mapping: among all ordered
    factorizations ``px*py*pz == n``, pick the one minimizing the total
    subdomain surface area for the given box aspect ratio.
    """
    if n < 1:
        raise ValueError("rank count must be >= 1")
    lx, ly, lz = box_lengths
    if min(lx, ly, lz) <= 0:
        raise ValueError("box lengths must be positive")
    best: tuple[int, int, int] | None = None
    best_surface = np.inf
    for px in range(1, n + 1):
        if n % px:
            continue
        rem = n // px
        for py in range(1, rem + 1):
            if rem % py:
                continue
            pz = rem // py
            sx, sy, sz = lx / px, ly / py, lz / pz
            surface = sx * sy + sy * sz + sx * sz
            if surface < best_surface:
                best_surface = surface
                best = (px, py, pz)
    assert best is not None
    return best


@dataclass(frozen=True)
class BrickDecomposition:
    """Mapping between ranks and sub-bricks of an orthogonal periodic box."""

    boxlo: tuple[float, float, float]
    boxhi: tuple[float, float, float]
    grid: tuple[int, int, int]

    @classmethod
    def create(
        cls,
        boxlo: tuple[float, float, float],
        boxhi: tuple[float, float, float],
        nranks: int,
    ) -> "BrickDecomposition":
        lengths = tuple(h - l for l, h in zip(boxlo, boxhi))
        if min(lengths) <= 0:
            raise ValueError(f"degenerate box: lo={boxlo} hi={boxhi}")
        grid = factor_ranks(nranks, lengths)  # type: ignore[arg-type]
        return cls(tuple(boxlo), tuple(boxhi), grid)

    @property
    def nranks(self) -> int:
        px, py, pz = self.grid
        return px * py * pz

    # ------------------------------------------------------------- mapping
    def coords_of(self, rank: int) -> tuple[int, int, int]:
        """Grid coordinates of a rank (x fastest, z slowest)."""
        px, py, pz = self.grid
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range")
        ix = rank % px
        iy = (rank // px) % py
        iz = rank // (px * py)
        return ix, iy, iz

    def rank_of(self, ix: int, iy: int, iz: int) -> int:
        """Rank at periodic-wrapped grid coordinates."""
        px, py, pz = self.grid
        return (ix % px) + (iy % py) * px + (iz % pz) * px * py

    def subdomain(self, rank: int) -> tuple[np.ndarray, np.ndarray]:
        """``(lo, hi)`` corners of a rank's brick."""
        ix, iy, iz = self.coords_of(rank)
        lo = np.empty(3)
        hi = np.empty(3)
        for d, i in enumerate((ix, iy, iz)):
            length = (self.boxhi[d] - self.boxlo[d]) / self.grid[d]
            lo[d] = self.boxlo[d] + i * length
            hi[d] = self.boxlo[d] + (i + 1) * length
        return lo, hi

    def owner_of(self, x: np.ndarray) -> np.ndarray:
        """Owning rank for each (wrapped) position, shape (n, 3) -> (n,)."""
        x = np.asarray(x)
        lo = np.asarray(self.boxlo)
        hi = np.asarray(self.boxhi)
        lengths = hi - lo
        frac = (x - lo) / lengths
        frac -= np.floor(frac)  # periodic wrap into [0, 1)
        grid = np.asarray(self.grid)
        cell = np.minimum((frac * grid).astype(np.int64), grid - 1)
        px, py, _ = self.grid
        return cell[:, 0] + cell[:, 1] * px + cell[:, 2] * px * py

    def face_neighbors(self, rank: int) -> list[tuple[int, int, int]]:
        """``(dim, direction, neighbor_rank)`` for the 6-way stencil.

        ``direction`` is -1 (low face) or +1 (high face).  With one rank
        along a dimension the neighbor is the rank itself (self-periodic),
        exactly as in LAMMPS.
        """
        ix, iy, iz = self.coords_of(rank)
        out = []
        for dim, (i, j, k) in (
            (0, (1, 0, 0)),
            (1, (0, 1, 0)),
            (2, (0, 0, 1)),
        ):
            out.append((dim, -1, self.rank_of(ix - i, iy - j, iz - k)))
            out.append((dim, +1, self.rank_of(ix + i, iy + j, iz + k)))
        return out

    def subdomain_surface_atoms(
        self, natoms_local: float, cutoff: float, rank: int = 0
    ) -> float:
        """Estimate of ghost-shell atom count for the analytic comm model.

        Ghost atoms live in a shell of thickness ``cutoff`` around the brick;
        the estimate is ``density * (shell volume)``, the standard
        surface-to-volume argument behind figure 6's scaling shapes.
        """
        lo, hi = self.subdomain(rank)
        dims = hi - lo
        vol = float(np.prod(dims))
        if vol <= 0:
            return 0.0
        density = natoms_local / vol
        grown = np.prod(dims + 2.0 * cutoff)
        return float(density * (grown - vol))
