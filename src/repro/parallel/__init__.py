"""Simulated MPI: in-process ranks, modeled interconnect.

LAMMPS parallelizes by spatial domain decomposition over MPI ranks (one rank
per logical GPU on the paper's machines).  Real MPI is unavailable here, so
this package provides:

* :class:`~repro.parallel.comm.SimWorld` / :class:`~repro.parallel.comm.SimComm`
  — a rank-addressed message world executed inside one process.  Sends and
  receives move real NumPy buffers (so decomposition bugs are real bugs, and
  multi-rank results are tested equal to single-rank results), while the
  *time* of every message is charged to a ledger using the alpha-beta fabric
  models of :mod:`repro.hardware.network`.
* :class:`~repro.parallel.decomp.BrickDecomposition` — LAMMPS's 3-D brick
  spatial decomposition with periodic neighbor stencils.

Because ranks execute sequentially within communication phases, blocking
receives must be posted by a peer in an earlier phase; the world detects
violations and raises (simulated deadlock) instead of hanging.
"""

from repro.parallel.comm import SimComm, SimWorld
from repro.parallel.decomp import BrickDecomposition, factor_ranks

__all__ = ["SimWorld", "SimComm", "BrickDecomposition", "factor_ranks"]
