#!/usr/bin/env python
"""Project a workload across the exascale machines (the figure 6 study).

A downstream user's question: "I have an N-atom system with potential X —
which machine, and how many nodes, before strong scaling stops paying?"
This example answers it with the paper's methodology: capture a small
functional reference run, rescale its kernel profiles through the hardware
models, and sweep machines and node counts.

Run:  python examples/exascale_projection.py [natoms] [potential]
      python examples/exascale_projection.py 8000000 SNAP
"""

from __future__ import annotations

import sys

from repro.bench import (
    POTENTIAL_BENCHMARKS,
    format_series,
    format_table,
    strong_scaling_curve,
)
from repro.bench.scaling import parallel_efficiency
from repro.hardware import MACHINES, SKYLAKE_NODE, get_gpu


def main() -> None:
    natoms = int(sys.argv[1]) if len(sys.argv) > 1 else 4_000_000
    pot = sys.argv[2] if len(sys.argv) > 2 else "LJ"
    if pot not in POTENTIAL_BENCHMARKS:
        raise SystemExit(f"potential must be one of {sorted(POTENTIAL_BENCHMARKS)}")

    print(f"Capturing a functional {pot} reference run ...")
    ref = POTENTIAL_BENCHMARKS[pot]().reference("H100")
    print(f"  reference: {ref.natoms} atoms, "
          f"{len(ref.profiles)} kernels/step, "
          f"{ref.mem_per_atom:.0f} B/atom device memory\n")

    # single-device survey (the figure 5 view of this workload)
    rows = []
    for name in ("V100", "A100", "H100", "GH200", "MI250X", "MI300A", "PVC"):
        gpu = get_gpu(name)
        if natoms > ref.max_atoms(gpu):
            rows.append([name, None, "exceeds HBM"])
            continue
        t = ref.step_time(gpu, natoms)
        speedup = ref.step_time(SKYLAKE_NODE, natoms) / t
        rows.append([name, 1e3 * t, f"{speedup:.0f}x vs Skylake node"])
    print(format_table(
        ["GPU", "ms/step", "notes"], rows,
        title=f"{pot} at {natoms:,} atoms, one logical GPU",
    ))

    # strong-scaling sweep (the figure 6 view)
    nodes = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
    series = {}
    sweet_spots = []
    for mname, machine in MACHINES.items():
        curve = strong_scaling_curve(ref, machine, natoms, nodes)
        series[machine.name] = curve
        eff = parallel_efficiency(curve)
        # "sweet spot": the largest node count still >= 50% efficient
        good = [n for n, e in eff if e >= 0.5]
        if good:
            steps = dict(curve)[good[-1]]
            sweet_spots.append([machine.name, good[-1], steps])
    print()
    print(format_series("nodes", series,
                        title=f"{pot} at {natoms:,} atoms: steps/s by machine"))
    print()
    print(format_table(
        ["machine", "nodes @ >=50% efficiency", "steps/s there"],
        sweet_spots,
        title="Strong-scaling sweet spots",
    ))


if __name__ == "__main__":
    main()
