#!/usr/bin/env python
"""Reactive MD of an HNS-like CHNO molecular crystal with ReaxFF-lite.

The paper's ReaxFF benchmark (section 4.2) simulates hexanitrostilbene.
This example builds the synthetic CHNO analogue, equilibrates charges every
step with the fused dual-CG QEq solver, runs NVE dynamics, and reports the
reactive-chemistry diagnostics the kernels are shaped by:

* per-species equilibrated charges (O pulls electrons, H donates);
* the bonded-network census: bonds, valence triplets, torsion quads, and
  the quad-candidate acceptance rate (the divergence statistic that
  motivates the paper's pre-processing kernels);
* QEq iteration counts and energy conservation.

Run:  python examples/reaxff_hns.py
"""

from __future__ import annotations

import numpy as np

import repro.reaxff  # noqa: F401  (registers the pair styles)
from repro.core import Lammps
from repro.workloads.hns import setup_hns

SYMBOLS = {1: "C", 2: "H", 3: "N", 4: "O"}


def main() -> None:
    lmp = Lammps(device=None, quiet=False)
    # 3 x 3 x 3 molecular cells = 162 atoms; reduced 5 A cutoff keeps the
    # example fast (production ReaxFF tapers at 10 A)
    setup_hns(lmp, 3, 3, 3, pair_style="reaxff cutoff 5.0")
    lmp.command("neighbor 0.5 bin")
    lmp.command("thermo 10")

    print(f"HNS-like crystal: {lmp.natoms_total} atoms in a "
          f"{np.round(lmp.domain.lengths, 1)} A box\n")
    lmp.command("run 50")

    atom = lmp.atom
    stats = lmp.pair.last_stats
    q = atom.q[: atom.nlocal]
    species = atom.type[: atom.nlocal]

    print("\nEquilibrated charges by species (e):")
    for t in (1, 2, 3, 4):
        sel = species == t
        print(f"  {SYMBOLS[t]}: mean {q[sel].mean():+.3f}   "
              f"range [{q[sel].min():+.3f}, {q[sel].max():+.3f}]")
    print(f"  total charge: {q.sum():+.2e} (neutrality enforced by QEq)")

    print("\nBonded-network census:")
    print(f"  directed bonds        : {stats['nbonds']}")
    print(f"  valence triplets      : {stats['triplets']}")
    print(f"  torsion quads         : {stats['quads']} of "
          f"{stats['quad_candidates']} candidates "
          f"({100 * stats['quads'] / max(stats['quad_candidates'], 1):.0f}% "
          "accepted — the sparsity behind section 4.2.1's pre-processing)")
    print(f"  QEq CG iterations     : {stats['qeq_iterations']} "
          "(fused dual solve: one matrix stream, two right-hand sides)")
    print(f"  QEq matrix            : {stats['qeq_nnz']} non-zeros in "
          f"{stats['qeq_slots']} over-allocated slots")

    # emergent chemistry: molecules are connected components of the
    # bond-order network (LAMMPS's fix reaxff/species)
    from repro.reaxff.species import analyze_lammps

    report = analyze_lammps(lmp)
    print("\nSpecies census (bond-order network):")
    print(f"  {report.nmolecules} molecules: {report.formula_string()}")
    print(f"  largest fragment: {report.largest} atoms, "
          f"{report.nbonds} chemical bonds")

    h = lmp.thermo.history
    drift = abs(h[-1]["etotal"] - h[0]["etotal"]) / abs(h[0]["etotal"])
    print(f"\nNVE energy drift over {h[-1].step} steps: {drift:.2e}")
    assert drift < 1e-3


if __name__ == "__main__":
    main()
