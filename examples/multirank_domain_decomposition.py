#!/usr/bin/env python
"""Domain decomposition under the hood: one box, many simulated MPI ranks.

Runs the same EAM nickel crystal on 1, 2, 4, and 8 simulated ranks and
verifies the trajectories are identical — the invariant the spatial
decomposition, ghost exchange, and reverse communication must jointly
uphold.  Also prints the communication ledger: how many messages and bytes
the halo protocol actually moved, and what the alpha-beta fabric model
charged for them.

Run:  python examples/multirank_domain_decomposition.py
"""

from __future__ import annotations

import numpy as np

import repro.potentials  # noqa: F401
from repro.core import Ensemble, Lammps

EAM = """\
units metal
lattice fcc 3.52
region box block 0 4 0 4 0 4
create_box 1 box
create_atoms 1 box
mass 1 58.7
velocity all create 800 12345
pair_style eam/fs 4.5
pair_coeff * * 2.0 0.3
neighbor 1.0 bin
fix 1 all nve
thermo 25
"""


def gather_x(target) -> np.ndarray:
    ranks = target.ranks if hasattr(target, "ranks") else [target]
    out = np.zeros((ranks[0].natoms_total, 3))
    for lmp in ranks:
        atom = lmp.atom
        out[atom.tag[: atom.nlocal] - 1] = atom.x[: atom.nlocal]
    return out


def main() -> None:
    print("Reference: single rank")
    ref = Lammps(device=None, quiet=False)
    ref.commands_string(EAM)
    ref.command("run 50")
    x_ref = gather_x(ref)

    for nranks in (2, 4, 8):
        ens = Ensemble(nranks, device=None, network="slingshot11")
        ens.commands_string(EAM)
        ens.command("run 50")
        diff = np.abs(gather_x(ens) - x_ref).max()
        grid = ens.ranks[0].decomp.grid
        counts = [lmp.atom.nlocal for lmp in ens.ranks]
        ghosts = [lmp.atom.nghost for lmp in ens.ranks]
        led = ens.world.ledger
        print(f"\n{nranks} ranks, {grid[0]}x{grid[1]}x{grid[2]} brick grid:")
        print(f"  owned atoms per rank : {counts}")
        print(f"  ghost atoms per rank : {ghosts}")
        print(f"  max |x - x_ref|      : {diff:.2e}")
        print(f"  messages exchanged   : {led.messages:,} "
              f"({led.bytes_moved / 1e6:.1f} MB)")
        print(f"  modeled fabric time  : {led.total() * 1e3:.2f} ms "
              f"({', '.join(f'{k}: {v * 1e3:.2f}' for k, v in led.entries.items())})")
        assert diff < 1e-9, "decomposition must not change the trajectory"

    print("\nAll decompositions reproduce the single-rank trajectory exactly.")


if __name__ == "__main__":
    main()
