#!/usr/bin/env python
"""Quickstart: the classic Lennard-Jones melt, three ways.

Runs LAMMPS's canonical ``bench/in.lj`` workload (fcc argon, reduced
density 0.8442, T* = 1.44) through

1. the plain host pair style (``lj/cut``),
2. the Kokkos style on the simulated H100 (``suffix kk``), and
3. the Kokkos style pinned to the host (``suffix kk/host``),

then prints the thermodynamic trajectory, verifies the three agree to
machine precision, and shows the simulated-device kernel ledger — the same
instrumentation the paper reads with Nsight Systems.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro.kokkos as kk
import repro.potentials  # noqa: F401  (registers the pair styles)
from repro.core import Lammps
from repro.kokkos.profiling import kernel_report

MELT = """\
units lj
lattice fcc 0.8442
region box block 0 4 0 4 0 4
create_box 1 box
create_atoms 1 box
mass 1 1.0
velocity all create 1.44 87287
pair_style lj/cut 2.5
pair_coeff 1 1 1.0 1.0
neighbor 0.3 bin
fix 1 all nve
thermo 20
"""


def run(device: str | None, suffix: str | None, quiet: bool = True) -> Lammps:
    lmp = Lammps(device=device, suffix=suffix, quiet=quiet)
    lmp.commands_string(MELT)
    lmp.command("run 100")
    return lmp


def main() -> None:
    print("=== LJ melt, plain host style ===")
    plain = run(device=None, suffix=None, quiet=False)

    print("\n=== Same input script, Kokkos style on a simulated H100 ===")
    kokkos = run(device="H100", suffix="kk")
    print(f"pair style selected by suffix: {type(kokkos.pair).__name__}")

    host = run(device="H100", suffix="kk/host")

    # all three paths produce identical physics (the portability contract)
    for label, other in [("kk/device", kokkos), ("kk/host", host)]:
        d = abs(
            other.thermo.history[-1]["etotal"] - plain.thermo.history[-1]["etotal"]
        )
        print(f"etotal difference vs plain ({label}): {d:.2e}")
        assert d < 1e-9

    print("\n=== Simulated-device kernel ledger (H100 run) ===")
    print(kernel_report(top=8))

    e0 = plain.thermo.history[0]["etotal"] / plain.natoms_total
    print(f"\nE/atom at step 0: {e0:.4f}  (LAMMPS reference: -4.6218)")
    assert abs(e0 - (-4.6218)) < 0.01


if __name__ == "__main__":
    main()
