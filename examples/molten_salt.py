#!/usr/bin/env python
"""Long-range electrostatics: a rocksalt crystal through the KSPACE package.

Demonstrates the Ewald machinery end to end:

1. validates the solver against the hardest analytic benchmark in
   electrostatics — the NaCl Madelung constant;
2. shows the real-/reciprocal-space split in action: tightening the
   requested accuracy moves work into k-space without changing the answer;
3. melts the crystal with short-range repulsion + full electrostatics and
   tracks the emergent charge ordering through the RDF.

Run:  python examples/molten_salt.py
"""

from __future__ import annotations

import numpy as np

import repro.kspace  # noqa: F401  (registers lj/cut/coul/long)
import repro.potentials  # noqa: F401
from repro.core import Lammps

NACL_MADELUNG = 1.7475645946


def rocksalt(n: int, accuracy: float) -> Lammps:
    lmp = Lammps(device=None)
    lmp.commands_string(
        f"units lj\nregion b block 0 {n} 0 {n} 0 {n}\ncreate_box 2 b"
    )
    pts, types = [], []
    for i in range(n):
        for j in range(n):
            for k in range(n):
                pts.append([i, j, k])
                types.append(1 + (i + j + k) % 2)
    lmp.create_atoms_from_arrays(np.array(pts, float), np.array(types))
    lmp.commands_string(
        f"mass * 1.0\nkspace_style ewald {accuracy}\n"
        "pair_style lj/cut/coul/long 0.9 1.9\npair_coeff * * 0.0 1.0\n"
        "set type 1 charge 1.0\nset type 2 charge -1.0\n"
        "neighbor 0.1 bin\nfix 1 all nve\nthermo 20"
    )
    return lmp


def main() -> None:
    # 1) Madelung constant -----------------------------------------------
    print("Madelung-constant validation (rocksalt, unit charges/spacing):")
    print(f"{'accuracy':>10} {'k-vectors':>10} {'E/ion':>12} {'exact':>12}")
    for acc in (1e-3, 1e-4, 1e-5, 1e-6):
        lmp = rocksalt(4, acc)
        lmp.thermo.quiet = True
        lmp.command("run 0")
        e_ion = (lmp.pair.eng_coul + lmp.kspace.energy_local) / lmp.natoms_total
        print(f"{acc:>10.0e} {lmp.kspace.nkvecs:>10d} {e_ion:>12.6f} "
              f"{-NACL_MADELUNG / 2:>12.6f}")
    assert abs(e_ion - (-NACL_MADELUNG / 2)) < 1e-4

    # 2) split independence ----------------------------------------------
    lo = rocksalt(4, 1e-3)
    lo.thermo.quiet = True
    lo.command("run 0")
    hi = rocksalt(4, 1e-6)
    hi.thermo.quiet = True
    hi.command("run 0")
    print("\nReal/reciprocal split (same physics, different work placement):")
    for label, lmp in (("loose 1e-3", lo), ("tight 1e-6", hi)):
        print(f"  {label}: real-space {lmp.pair.eng_coul:+.4f}  "
              f"k-space+self {lmp.kspace.energy_local:+.4f}  "
              f"total {lmp.pair.eng_coul + lmp.kspace.energy_local:+.4f}")

    # 3) melt with electrostatics ----------------------------------------
    print("\nMelting the salt (repulsive cores + full electrostatics):")
    melt = rocksalt(4, 1e-5)
    melt.commands_string(
        "pair_modify shift yes\npair_coeff * * 1.0 0.85 1.5\nvelocity all create 0.25 21\ntimestep 0.001\n"
        "compute gpp all rdf 40 1.9"
    )
    melt.command("run 150")
    comp = melt.modify.get_compute("gpp")
    r, g = comp.histogram()
    first_peak = r[np.argmax(g)]
    print(f"\nRDF first peak at r = {first_peak:.2f} "
          "(opposite charges stay nearest neighbors: charge ordering survives "
          "the melt)")
    assert 0.7 < first_peak < 1.3

    h = melt.thermo.history
    drift = abs(h[-1]["etotal"] - h[0]["etotal"]) / abs(h[0]["etotal"])
    print(f"NVE drift with Ewald forces: {drift:.2e}")


if __name__ == "__main__":
    main()
