#!/usr/bin/env python
"""Train a SNAP potential and deploy it through the ML-IAP plug-in.

The full machine-learning-potential workflow of the paper's appendix A, end
to end on this library:

1. generate training configurations (jittered bcc Ta cells);
2. label them with a reference potential (the analytic EAM — standing in
   for the DFT data a production SNAP is trained on);
3. compute per-atom bispectrum descriptors and fit the linear SNAP
   coefficients by least squares (that is the "machine learning" in SNAP:
   "it 'learns' the coefficients of this linear combination");
4. deploy the fitted model through ``pair_style mliap`` (the
   embedded-Python strategy) and validate energies and forces against the
   reference on held-out configurations.

Run:  python examples/snap_training.py
"""

from __future__ import annotations

import numpy as np

import repro.potentials  # noqa: F401
from repro.core import Lammps
from repro.core.neighbor import build_neighbor_list
from repro.parallel.driver import drain
from repro.potentials.mliap import LinearSNAPModel, register_mliap_model
from repro.snap.indexing import SnapIndex

TWOJMAX = 4
RCUT = 4.7
A_BCC = 3.316


def make_config(seed: int, jitter: float = 0.12) -> Lammps:
    """A jittered 2x2x2 bcc Ta cell with EAM forces/energy available."""
    lmp = Lammps(device=None)
    lmp.commands_string(
        f"units metal\nlattice bcc {A_BCC}\nregion b block 0 2 0 2 0 2\n"
        "create_box 1 b\ncreate_atoms 1 box\nmass 1 180.95\n"
        "neighbor 1.0 bin\n"
        "pair_style eam/fs 4.5\npair_coeff * * 2.0 0.3\nfix 1 all nve"
    )
    rng = np.random.default_rng(seed)
    lmp.atom.x[: lmp.atom.nlocal] += rng.uniform(-jitter, jitter, (lmp.atom.nlocal, 3))
    drain(lmp.verlet.run_gen(0))
    return lmp


def descriptors_of(lmp: Lammps) -> np.ndarray:
    """Per-atom bispectrum descriptors for the current configuration."""
    model = LinearSNAPModel(
        np.zeros(SnapIndex(TWOJMAX).nbispectrum), TWOJMAX, RCUT
    )
    atom = lmp.atom
    nlist = build_neighbor_list(atom.x[: atom.nall], atom.nlocal, RCUT, style="full")
    i, j = nlist.ij_pairs()
    rij = atom.x[: atom.nall][j] - atom.x[: atom.nall][i]
    return model.descriptors(rij, i, atom.nlocal)


def main() -> None:
    ncoeff = SnapIndex(TWOJMAX).nbispectrum
    print(f"Training linear SNAP (2J_max={TWOJMAX}, {ncoeff} coefficients) "
          "against the EAM reference\n")

    # --- training set -------------------------------------------------------
    rows, targets = [], []
    for seed in range(40):
        lmp = make_config(seed)
        B = descriptors_of(lmp)
        rows.append(B.sum(axis=0))  # global energy descriptor
        targets.append(lmp.pair.eng_vdwl)
    X = np.asarray(rows)
    y = np.asarray(targets)

    # least squares with a constant per-atom shift (LAMMPS's beta0)
    natoms = 16.0
    Xa = np.column_stack([np.full(len(y), natoms), X])
    coeffs, *_ = np.linalg.lstsq(Xa, y, rcond=None)
    beta0, beta = coeffs[0], coeffs[1:]
    train_rmse = float(np.sqrt(np.mean((Xa @ coeffs - y) ** 2)))
    print(f"training configurations : {len(y)}")
    print(f"energy RMSE (train)     : {train_rmse:.4f} eV "
          f"({train_rmse / natoms * 1000:.1f} meV/atom)")

    # --- deploy through the ML-IAP plug-in ---------------------------------
    register_mliap_model("ta_trained", LinearSNAPModel(beta, TWOJMAX, RCUT))
    test_e, pred_e, f_ref_all, f_ml_all = [], [], [], []
    for seed in range(100, 112):
        ref = make_config(seed)
        ml = Lammps(device=None)
        ml.commands_string(
            f"units metal\nlattice bcc {A_BCC}\nregion b block 0 2 0 2 0 2\n"
            "create_box 1 b\ncreate_atoms 1 box\nmass 1 180.95\n"
            "neighbor 1.0 bin\n"
            "pair_style mliap\npair_coeff * * ta_trained\nfix 1 all nve"
        )
        ml.atom.x[: ml.atom.nlocal] = ref.atom.x[: ref.atom.nlocal]
        drain(ml.verlet.run_gen(0))
        test_e.append(ref.pair.eng_vdwl)
        pred_e.append(ml.pair.eng_vdwl + beta0 * natoms)
        f_ref_all.append(ref.atom.f[: ref.atom.nlocal].copy())
        f_ml_all.append(ml.atom.f[: ml.atom.nlocal].copy())

    test_e = np.asarray(test_e)
    pred_e = np.asarray(pred_e)
    f_ref = np.concatenate(f_ref_all).ravel()
    f_ml = np.concatenate(f_ml_all).ravel()
    e_rmse = float(np.sqrt(np.mean((pred_e - test_e) ** 2)))
    f_corr = float(np.corrcoef(f_ref, f_ml)[0, 1])
    print(f"energy RMSE (test)      : {e_rmse:.4f} eV "
          f"({e_rmse / natoms * 1000:.1f} meV/atom)")
    print(f"force correlation (test): {f_corr:.3f} "
          "(forces were never fitted — they come for free from the "
          "descriptor derivatives)")

    assert e_rmse / natoms < 0.05, "test energies should fit to < 50 meV/atom"
    assert f_corr > 0.7, "unfitted forces should still correlate strongly"

    # --- run MD with the trained model --------------------------------------
    md = Lammps(device=None, quiet=False)
    md.commands_string(
        f"units metal\nlattice bcc {A_BCC}\nregion b block 0 2 0 2 0 2\n"
        "create_box 1 b\ncreate_atoms 1 box\nmass 1 180.95\n"
        "velocity all create 300 77\nneighbor 1.0 bin\n"
        "pair_style mliap\npair_coeff * * ta_trained\n"
        "timestep 0.001\nfix 1 all nve\nthermo 10"
    )
    print("\nMD with the trained SNAP deployed through pair_style mliap:")
    md.command("run 30")
    h = md.thermo.history
    drift = abs(h[-1]["etotal"] - h[0]["etotal"]) / max(abs(h[0]["etotal"]), 1)
    print(f"NVE drift: {drift:.2e}")
    assert drift < 1e-4


if __name__ == "__main__":
    main()
