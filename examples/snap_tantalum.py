#!/usr/bin/env python
"""Machine-learning MD of bcc tantalum with SNAP (paper section 4.3).

Runs the SNAP benchmark crystal, then opens the hood on the four-kernel
evaluation pipeline:

1. per-atom bispectrum descriptors (the features a production SNAP is
   trained on) and their rotation invariance;
2. an explicit finite-difference check that the ComputeYi adjoint +
   ComputeFusedDeidrj contraction produce exact forces;
3. the Table 2 tuning knobs: the same physics at different simulated cost.

Run:  python examples/snap_tantalum.py
"""

from __future__ import annotations

import numpy as np
from scipy.spatial.transform import Rotation

import repro.kokkos as kk
import repro.snap  # noqa: F401  (registers the pair styles)
from repro.core import Lammps
from repro.parallel.driver import drain
from repro.snap.bispectrum import compute_bispectrum
from repro.snap.compute_ui import compute_ui
from repro.workloads.tantalum import setup_tantalum

TWOJMAX = 6


def main() -> None:
    lmp = Lammps(device="H100", suffix="kk", quiet=False)
    setup_tantalum(lmp, cells=3, twojmax=TWOJMAX)
    print(f"bcc Ta, {lmp.natoms_total} atoms, 2J_max = {TWOJMAX} "
          f"({lmp.pair.index.nbispectrum} bispectrum components)\n")
    lmp.command("run 10")

    # --- descriptors -------------------------------------------------------
    atom = lmp.atom
    nlist = lmp.neigh_list
    i, j = nlist.ij_pairs()
    x = atom.x[: atom.nall]
    rij = x[j] - x[i]
    mask = np.einsum("ij,ij->i", rij, rij) < lmp.pair.rcut**2
    U, _, _ = compute_ui(rij[mask], i[mask], atom.nlocal, lmp.pair.rcut, TWOJMAX)
    B = compute_bispectrum(U, TWOJMAX)
    print("Per-atom bispectrum descriptors (first atom, first 6 components):")
    print(" ", np.array2string(B[0, :6], precision=4))

    # rotation invariance: rotate the whole neighborhood of atom 0
    sel = i[mask] == 0
    R = Rotation.random(random_state=42).as_matrix()
    U_rot, _, _ = compute_ui(
        rij[mask][sel] @ R.T, np.zeros(int(sel.sum()), dtype=int), 1,
        lmp.pair.rcut, TWOJMAX,
    )
    U_raw, _, _ = compute_ui(
        rij[mask][sel], np.zeros(int(sel.sum()), dtype=int), 1,
        lmp.pair.rcut, TWOJMAX,
    )
    diff = np.abs(
        compute_bispectrum(U_rot, TWOJMAX) - compute_bispectrum(U_raw, TWOJMAX)
    ).max()
    print(f"rotation-invariance residual: {diff:.2e}\n")
    assert diff < 1e-9

    # --- force correctness -------------------------------------------------
    drain(lmp.verlet.run_gen(0))
    f0 = atom.f[0].copy()
    eps = 1e-5
    fd = np.zeros(3)
    for d in range(3):
        atom.x[0, d] += eps
        drain(lmp.verlet.run_gen(0))
        ep = lmp.pair.eng_vdwl
        atom.x[0, d] -= 2 * eps
        drain(lmp.verlet.run_gen(0))
        em = lmp.pair.eng_vdwl
        atom.x[0, d] += eps
        fd[d] = -(ep - em) / (2 * eps)
    drain(lmp.verlet.run_gen(0))
    print("Force on atom 0:  analytic", np.round(f0, 6))
    print("                  finite-d", np.round(fd, 6))
    assert np.abs(fd - f0).max() < 1e-5

    # --- tuning knobs (Table 2) --------------------------------------------
    print("\nWork-batching knobs: identical physics, different simulated cost")
    results = {}
    for label, knobs in [
        ("baseline (batch 1, unfused)", dict(ui_batch=1, yi_batch=1, fuse_deidrj=False)),
        ("tuned    (batch 4, fused)  ", dict(ui_batch=4, yi_batch=4, fuse_deidrj=True)),
    ]:
        trial = Lammps(device="H100", suffix="kk")
        setup_tantalum(trial, cells=3, twojmax=TWOJMAX)
        trial.pair.set_options(**knobs)
        kk.device_context().timeline.reset()
        trial.command("run 5")
        sim_t = kk.device_context().timeline.total()
        results[label] = (trial.thermo.history[-1]["etotal"], sim_t)
        print(f"  {label}: etotal {results[label][0]:+.6f} eV, "
              f"simulated device time {sim_t * 1e3:.3f} ms")
    (e_a, t_a), (e_b, t_b) = results.values()
    assert abs(e_a - e_b) < 1e-10, "tuning must not change physics"
    print(f"  -> tuned configuration is {t_a / t_b:.2f}x faster on the model")


if __name__ == "__main__":
    main()
