"""Segmented-reduction scatter: unit edge cases and mode equivalence.

The segmented path (:mod:`repro.kokkos.segment`) must be a drop-in
replacement for ``np.add.at`` everywhere the force kernels scatter:
same results (bit-identical for single zeroed-target reductions, ≤1e-12
relative in composed force pipelines), selectable per execution space,
and overridable globally for benchmarking.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.kokkos as kk
from conftest import gather_by_tag, make_melt
from repro.core import Ensemble, Lammps
from repro.kokkos.core import Device, Host
from repro.kokkos.segment import (
    ATOMIC,
    SEGMENTED,
    column_scatter_plan,
    force_scatter_mode,
    scatter_add,
    scatter_add_columns,
    scatter_mode,
    scatter_sub,
    segment_sum,
    segment_sum_vec,
)


# --------------------------------------------------------------- unit tests
class TestSegmentSum:
    def test_empty_input(self):
        out = segment_sum(np.array([]), np.array([], dtype=int), 5)
        assert out.shape == (5,) and not out.any()

    def test_single_segment(self):
        v = np.array([1.0, 2.0, 4.0])
        out = segment_sum(v, np.array([2, 2, 2]), 4)
        assert list(out) == [0.0, 0.0, 7.0, 0.0]

    def test_unsorted_index_matches_add_at(self):
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 17, size=300)
        v = rng.normal(size=300)
        ref = np.zeros(17)
        np.add.at(ref, idx, v)
        np.testing.assert_array_equal(segment_sum(v, idx, 17), ref)

    def test_sorted_fast_path_matches_unsorted(self):
        rng = np.random.default_rng(1)
        idx = np.sort(rng.integers(0, 9, size=100))
        v = rng.normal(size=100)
        # reduceat and bincount may associate partial sums differently
        np.testing.assert_allclose(
            segment_sum(v, idx, 9, assume_sorted=True),
            segment_sum(v, idx, 9),
            rtol=1e-13,
            atol=1e-14,
        )

    def test_complex_values(self):
        idx = np.array([0, 3, 0])
        v = np.array([1 + 2j, 3j, 2 - 1j])
        out = segment_sum(v, idx, 4)
        assert out[0] == 3 + 1j and out[3] == 3j

    def test_2d_values_narrow_and_wide(self):
        rng = np.random.default_rng(2)
        for ncols in (3, 12):  # bincount-per-column vs sort+reduceat routes
            idx = rng.integers(0, 11, size=200)
            v = rng.normal(size=(200, ncols))
            ref = np.zeros((11, ncols))
            np.add.at(ref, idx, v)
            np.testing.assert_allclose(
                segment_sum_vec(v, idx, 11), ref, rtol=1e-13, atol=1e-14
            )

    def test_shape_mismatches_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            segment_sum(np.ones(3), np.zeros(4, dtype=int), 5)
        with pytest.raises(ValueError, match="1-D"):
            segment_sum(np.ones((3, 2)), np.zeros(3, dtype=int), 5)
        with pytest.raises(ValueError, match="mismatch"):
            segment_sum_vec(np.ones((3, 2)), np.zeros(4, dtype=int), 5)


class TestScatterAdd:
    def test_broadcast_scalar_value(self):
        idx = np.array([1, 1, 4, 0])
        a = np.zeros(6)
        b = np.zeros(6)
        scatter_add(a, idx, 1.0, mode=SEGMENTED)
        np.add.at(b, idx, 1.0)
        np.testing.assert_array_equal(a, b)

    def test_sub_matches_subtract_at(self):
        rng = np.random.default_rng(3)
        idx = rng.integers(0, 8, size=64)
        v = rng.normal(size=(64, 3))
        a = rng.normal(size=(8, 3))
        b = a.copy()
        scatter_sub(a, idx, v, mode=SEGMENTED)
        np.subtract.at(b, idx, v)
        # nonzero target: fold-in of the dense sums reassociates vs the
        # sequential in-place subtraction
        np.testing.assert_allclose(a, b, rtol=1e-13, atol=1e-14)

    def test_3d_target_falls_back_to_ufunc(self):
        rng = np.random.default_rng(4)
        idx = rng.integers(0, 5, size=20)
        v = rng.normal(size=(20, 2, 2))
        a = np.zeros((5, 2, 2))
        b = np.zeros((5, 2, 2))
        scatter_add(a, idx, v, mode=SEGMENTED)
        np.add.at(b, idx, v)
        np.testing.assert_array_equal(a, b)

    def test_mode_resolution(self):
        assert scatter_mode(Device) == ATOMIC
        assert scatter_mode(Host) == SEGMENTED
        assert scatter_mode(None) == SEGMENTED
        with force_scatter_mode(ATOMIC):
            assert scatter_mode(Host) == ATOMIC
        with force_scatter_mode(SEGMENTED):
            assert scatter_mode(Device) == SEGMENTED
        assert scatter_mode(Device) == ATOMIC  # context restored

    def test_unknown_forced_mode_rejected(self):
        with pytest.raises(ValueError, match="scatter mode"):
            with force_scatter_mode("sideways"):
                pass


class TestColumnScatter:
    def test_plan_matches_add_at(self):
        rng = np.random.default_rng(5)
        cols = rng.integers(0, 7, size=30)
        vals = rng.normal(size=(4, 30))
        plan = column_scatter_plan(cols)
        a = np.zeros((4, 7))
        b = np.zeros((4, 7))
        scatter_add_columns(a, vals, plan, mode=SEGMENTED)
        rows = np.arange(4)[:, None]
        np.add.at(b, (rows, cols[None, :]), vals)
        np.testing.assert_allclose(a, b, rtol=0, atol=1e-15)

    def test_atomic_mode_requires_original_cols(self):
        plan = column_scatter_plan(np.array([0, 1]))
        with pytest.raises(ValueError, match="cols"):
            scatter_add_columns(np.zeros((2, 2)), np.ones((2, 2)), plan, mode=ATOMIC)


class TestScatterViewContribution:
    @pytest.fixture(autouse=True)
    def _runtime(self):
        kk.initialize("H100")
        yield
        kk.finalize()

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_contribution_modes_bit_identical(self, seed):
        from repro.kokkos.scatter_view import ScatterView

        rng = np.random.default_rng(seed)
        idx = rng.integers(0, 16, size=200)
        vals = rng.normal(size=(200, 3))
        results = {}
        for mode in (ATOMIC, SEGMENTED):
            target = kk.View((16, 3))
            sv = ScatterView(target, contribution=mode)
            sv.access().add(idx, vals)
            sv.contribute()
            results[mode] = target.data.copy()
        np.testing.assert_array_equal(results[ATOMIC], results[SEGMENTED])

    def test_forced_mode_sets_default_contribution(self):
        from repro.kokkos.scatter_view import ScatterView

        with force_scatter_mode(ATOMIC):
            sv = ScatterView(kk.View((4,), space=kk.Host))
        assert sv.contribution == ATOMIC
        sv = ScatterView(kk.View((4,), space=kk.Host))
        assert sv.contribution == SEGMENTED


class TestPairCacheJOrder:
    def test_j_order_is_a_stable_sort_and_memoized(self):
        lmp = make_melt(cells=2)
        lmp.command("run 0")
        cache = lmp.neigh_list.pair_cache()
        order = cache.j_order()
        assert order is cache.j_order()  # memoized per build
        _, j = lmp.neigh_list.ij_pairs()
        js = j[order]
        assert (np.diff(js) >= 0).all()
        # stability: within one destination, stored-pair order is preserved
        starts = np.flatnonzero(np.r_[True, js[1:] != js[:-1]])
        for lo, hi in zip(starts, np.r_[starts[1:], len(js)]):
            assert (np.diff(order[lo:hi]) > 0).all()

    def test_cache_invalidated_by_rebuild(self):
        lmp = make_melt(cells=2)
        lmp.command("neigh_modify every 1 delay 0 check no")
        lmp.command("run 0")
        before = lmp.neigh_list.pair_cache()
        lmp.command("run 2")
        assert lmp.neigh_list.pair_cache() is not before


# ------------------------------------------------- force-field equivalence
EAM_SCRIPT = """\
units metal
lattice fcc 3.52
region box block 0 2 0 2 0 2
create_box 1 box
create_atoms 1 box
mass 1 58.7
velocity all create 600 12345
pair_style eam/fs 4.5
pair_coeff * * 2.0 0.3
neighbor 1.0 bin
fix 1 all nve
"""

COUL_SCRIPT = """\
units lj
lattice fcc 0.8442
region b block 0 3 0 3 0 3
create_box 2 b
create_atoms 1 box
mass * 1.0
"""


def _make_coul():
    lmp = Lammps()
    lmp.commands_string(COUL_SCRIPT)
    lmp.atom.type[: lmp.atom.nlocal : 2] = 2
    lmp.commands_string(
        "pair_style lj/cut/coul/cut 2.5 3.0\npair_coeff * * 1.0 1.0\n"
        "set type 1 charge 0.5\nset type 2 charge -0.5\n"
        "velocity all create 1.0 321\nfix 1 all nve"
    )
    return lmp


def _make_morse():
    lmp = Lammps()
    lmp.commands_string(
        "units lj\nlattice fcc 0.8442\nregion b block 0 3 0 3 0 3\n"
        "create_box 1 b\ncreate_atoms 1 box\nmass 1 1.0\n"
        "velocity all create 1.44 87287\n"
        "pair_style morse 2.5\npair_coeff 1 1 1.0 5.0 1.1\nfix 1 all nve"
    )
    return lmp


def _make_table():
    lmp = Lammps()
    lmp.commands_string(
        "units lj\nlattice fcc 0.8442\nregion b block 0 3 0 3 0 3\n"
        "create_box 1 b\ncreate_atoms 1 box\nmass 1 1.0\n"
        "velocity all create 1.44 87287\n"
        "pair_style table 4000 2.5\npair_coeff 1 1 lj 1.0 1.0\nfix 1 all nve"
    )
    return lmp


def _make_eam():
    lmp = Lammps()
    lmp.commands_string(EAM_SCRIPT)
    return lmp


def _make_snap():
    from repro.workloads.tantalum import setup_tantalum

    lmp = Lammps()
    setup_tantalum(lmp, cells=2, pair_style="snap", twojmax=4)
    return lmp


def _make_reaxff():
    from repro.workloads.hns import setup_hns

    lmp = Lammps()
    # tight QEq: the iterative CG otherwise leaves solver-tolerance charge
    # differences (~1e-8) that swamp the scatter-mode comparison
    setup_hns(lmp, 2, 2, 2, pair_style="reaxff cutoff 5.0 qeq_tol 1e-13")
    lmp.command("neighbor 0.5 bin")
    return lmp


def _make_newton_off():
    lmp = make_melt(cells=3)
    lmp.command("newton off")
    return lmp


def _make_two_rank():
    return make_melt(cells=3, nranks=2)


def _make_kokkos():
    return make_melt(cells=3, device="H100", suffix="kk")


CASES = {
    "lj-half-newton": lambda: make_melt(cells=3),
    "lj-newton-off": _make_newton_off,
    "lj-two-rank": _make_two_rank,
    "lj-kokkos": _make_kokkos,
    "lj-coul-cut": _make_coul,
    "morse": _make_morse,
    "table": _make_table,
    "eam-fs": _make_eam,
    "snap": _make_snap,
    "reaxff": _make_reaxff,
}


def _forces_energy(target, mode: str):
    """Single force evaluation on frozen coordinates under one mode."""
    with force_scatter_mode(mode):
        target.command("run 0")
    ranks = target.ranks if hasattr(target, "ranks") else [target]
    f = gather_by_tag(target).copy()
    e = sum(r.pair.eng_vdwl + r.pair.eng_coul for r in ranks)
    return f, e


@pytest.mark.parametrize("case", sorted(CASES))
def test_force_equivalence_atomic_vs_segmented(case):
    """Forces and energies agree ≤1e-12 relative between scatter modes,
    on identical coordinates a few steps into real dynamics."""
    target = CASES[case]()
    target.command("run 3")  # move off the lattice (and build ghost layouts)
    fa, ea = _forces_energy(target, ATOMIC)
    fs, es = _forces_energy(target, SEGMENTED)
    scale = np.abs(fa).max() or 1.0
    np.testing.assert_allclose(fs, fa, rtol=1e-12, atol=1e-12 * scale)
    assert es == pytest.approx(ea, rel=1e-12, abs=1e-12)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=5, deadline=None)
def test_force_equivalence_random_ghost_layouts(seed):
    """Random dilute configurations: every periodic image arrangement must
    give mode-equivalent forces (probes irregular neighbor/ghost shapes)."""
    rng = np.random.default_rng(seed)
    lmp = Lammps()
    lmp.commands_string(
        "units lj\nregion b block 0 5 0 5 0 5\ncreate_box 1 b"
    )
    pts = rng.uniform(0.0, 5.0, size=(24, 3))
    lmp.create_atoms_from_arrays(pts, np.ones(24, dtype=int))
    lmp.commands_string(
        "mass 1 1.0\npair_style lj/cut 2.5\npair_coeff 1 1 1.0 0.8\n"
        "neighbor 0.3 bin\nfix 1 all nve"
    )
    fa, ea = _forces_energy(lmp, ATOMIC)
    fs, es = _forces_energy(lmp, SEGMENTED)
    scale = np.abs(fa).max() or 1.0
    np.testing.assert_allclose(fs, fa, rtol=1e-12, atol=1e-12 * scale)
    assert es == pytest.approx(ea, rel=1e-12, abs=1e-12)
