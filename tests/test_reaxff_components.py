"""ReaxFF components: bond order, triplet/quad tables, QEq, nonbonded."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.neighbor import build_neighbor_list
from repro.reaxff.angles import build_triplets
from repro.reaxff.bond_order import (
    bond_order,
    build_bond_list,
    build_bond_list_reference,
)
from repro.reaxff.nonbonded import shielded_kernel, taper, vdw_morse
from repro.reaxff.params import default_chno
from repro.reaxff.qeq import QEqMatrix, build_qeq_matrix
from repro.reaxff.torsions import build_quads

PARAMS = default_chno()


def random_chno(seed: int, n: int = 60, box: float = 9.0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, box, size=(n, 3))
    species = rng.integers(1, 5, size=n)
    return x, species


class TestBondOrder:
    def test_bo_near_r0(self):
        r0 = PARAMS.r0_ij(np.array([1]), np.array([1]))
        bo, dbo = bond_order(r0, np.array([1]), np.array([1]), PARAMS)
        assert 0.7 < bo[0] < 1.0
        assert dbo[0] < 0  # decays with distance

    def test_bo_decays_monotonically(self):
        r = np.linspace(0.8, 3.5, 50)
        t = np.ones(50, dtype=int)
        bo, _ = bond_order(r, t, t, PARAMS)
        assert np.all(np.diff(bo) < 0)

    def test_dbo_matches_fd(self):
        r = np.array([1.3, 1.6, 2.1])
        t = np.ones(3, dtype=int)
        eps = 1e-7
        bo_p, _ = bond_order(r + eps, t, t, PARAMS)
        bo_m, _ = bond_order(r - eps, t, t, PARAMS)
        _, dbo = bond_order(r, t, t, PARAMS)
        np.testing.assert_allclose((bo_p - bo_m) / (2 * eps), dbo, rtol=1e-6)

    @given(seed=st.integers(0, 300))
    @settings(max_examples=20, deadline=None)
    def test_preprocessed_equals_reference(self, seed):
        """The count->scan->fill pipeline is bit-identical to the naive
        divergent filter (paper section 4.2.1's correctness requirement)."""
        x, species = random_chno(seed)
        nlist = build_neighbor_list(x, len(x), PARAMS.rcut_bond, style="full")
        a = build_bond_list(x, species, nlist, PARAMS)
        b = build_bond_list_reference(x, species, nlist, PARAMS)
        assert np.array_equal(a.first, b.first)
        assert np.array_equal(a.j, b.j)
        np.testing.assert_array_equal(a.bo, b.bo)

    def test_rows_are_contiguous_per_atom(self):
        x, species = random_chno(7)
        nlist = build_neighbor_list(x, len(x), PARAMS.rcut_bond, style="full")
        bonds = build_bond_list(x, species, nlist, PARAMS)
        assert np.all(np.diff(bonds.i) >= 0)  # sorted by center atom


class TestTripletsQuads:
    def bonds_for(self, seed):
        x, species = random_chno(seed, n=80)
        nlist = build_neighbor_list(x, len(x), PARAMS.rcut_bond, style="full")
        return x, species, build_bond_list(x, species, nlist, PARAMS)

    def test_triplet_count_formula(self):
        x, species, bonds = self.bonds_for(1)
        trip = build_triplets(bonds, len(x))
        nb = bonds.numbonds()
        assert trip.ntriplets == int((nb * (nb - 1) // 2).sum())

    def test_triplet_legs_share_center(self):
        x, species, bonds = self.bonds_for(2)
        trip = build_triplets(bonds, len(x))
        if trip.ntriplets:
            assert np.array_equal(bonds.i[trip.leg1], trip.center)
            assert np.array_equal(bonds.i[trip.leg2], trip.center)
            assert np.all(trip.leg1 < trip.leg2)  # m < n, no duplicates

    def test_quads_obey_constraints(self):
        x, species, bonds = self.bonds_for(3)
        tags = np.arange(1, len(x) + 1)
        quads = build_quads(tags, len(x), bonds, PARAMS)
        if quads.nquads:
            k, i, j, l = quads.atoms.T
            # chain legs really are bonds of the right atoms
            assert np.array_equal(bonds.i[quads.leg_ik], i.astype(np.int64))
            assert np.array_equal(bonds.j[quads.leg_ik], k)
            assert np.array_equal(bonds.j[quads.leg_jl], l)
            # validity filters
            assert np.all(k != j) and np.all(l != i) and np.all(k != l)
            # bond-order product constraint (section 4.2.1)
            prod = (
                bonds.bo[quads.leg_ik]
                * bonds.bo[quads.leg_ij]
                * bonds.bo[quads.leg_jl]
            )
            assert np.all(prod > PARAMS.bo_prod_cut)
            # tie-break: each chain built once
            assert np.all(tags[i.astype(int)] < tags[j.astype(int)])

    def test_quad_sparsity_like_paper(self):
        """Section 4.2.1: a small fraction of candidate quads survives."""
        from repro.workloads.hns import hns_configuration

        x, types, box = hns_configuration(2, 3, 3)
        species = default_chno()  # types already 1..4
        nlist = build_neighbor_list(x, len(x), PARAMS.rcut_bond, style="full")
        bonds = build_bond_list(x, types.astype(np.int64), nlist, PARAMS)
        tags = np.arange(1, len(x) + 1)
        quads = build_quads(tags, len(x), bonds, PARAMS)
        assert quads.candidates > 0
        assert 0 < quads.nquads < 0.5 * quads.candidates


class TestTaperAndKernels:
    def test_taper_boundary_conditions(self):
        rc = 10.0
        t0, dt0 = taper(np.array([0.0]), rc)
        t1, dt1 = taper(np.array([rc]), rc)
        assert t0[0] == pytest.approx(1.0)
        assert dt0[0] == pytest.approx(0.0)
        assert t1[0] == pytest.approx(0.0, abs=1e-12)
        assert dt1[0] == pytest.approx(0.0, abs=1e-12)

    def test_taper_monotone(self):
        r = np.linspace(0, 10, 200)
        t, _ = taper(r, 10.0)
        assert np.all(np.diff(t) <= 1e-12)

    def test_shielded_kernel_regularizes_origin(self):
        g, _ = shielded_kernel(np.array([0.0]), np.array([0.85]))
        assert np.isfinite(g[0])
        # far field approaches bare 1/r
        g_far, _ = shielded_kernel(np.array([8.0]), np.array([0.85]))
        assert g_far[0] == pytest.approx(1 / 8.0, rel=2e-3)

    def test_kernel_derivatives_fd(self):
        r = np.array([1.0, 2.5, 6.0])
        gam = np.full(3, 0.85)
        eps = 1e-7
        for fn, args in [
            (lambda rr: shielded_kernel(rr, gam), ()),
            (lambda rr: taper(rr, 10.0), ()),
            (lambda rr: vdw_morse(rr, np.full(3, 0.1), 10.0, np.full(3, 3.5)), ()),
        ]:
            vp, _ = fn(r + eps)
            vm, _ = fn(r - eps)
            _, dv = fn(r)
            np.testing.assert_allclose((vp - vm) / (2 * eps), dv, rtol=1e-5)


class TestQEqMatrix:
    def make(self, seed=0):
        x, species = random_chno(seed, n=70)
        nlist = build_neighbor_list(x, len(x), PARAMS.rcut_nonb + 1.0, style="full")
        return build_qeq_matrix(x, species, nlist, PARAMS, 332.06371), x, species, nlist

    def test_over_allocation(self):
        m, x, species, nlist = self.make()
        # slots come from the full neighbor list; fills may be fewer
        assert m.stored_slots == nlist.total_pairs
        assert m.total_nnz <= m.stored_slots
        assert np.all(m.nnz <= nlist.numneigh)

    def test_appendix_b_dtypes(self):
        m, *_ = self.make()
        assert m.offsets.dtype == np.int64
        assert m.cols.dtype == np.int32
        assert m.nnz.dtype == np.int32

    def test_spmv_matches_dense(self):
        m, x, species, _ = self.make(4)
        n = m.nlocal
        dense = np.zeros((n, len(x)))
        rows, cols, vals = m._compact()
        dense[rows, cols] = vals
        dense[np.arange(n), np.arange(n)] += m.diag
        rng = np.random.default_rng(0)
        v = rng.normal(size=len(x))
        np.testing.assert_allclose(m.spmv(v), dense @ v, atol=1e-10)

    def test_matrix_symmetric_on_local_block(self):
        m, x, species, _ = self.make(5)
        n = m.nlocal
        rows, cols, vals = m._compact()
        dense = np.zeros((n, n))
        local = cols < n
        dense[rows[local], cols[local]] = vals[local]
        np.testing.assert_allclose(dense, dense.T, atol=1e-10)

    def test_positive_definite_with_hardness(self):
        m, *_ = self.make(6)
        n = m.nlocal
        rows, cols, vals = m._compact()
        dense = np.zeros((n, n))
        local = cols < n
        np.add.at(dense, (rows[local], cols[local]), vals[local])
        dense[np.arange(n), np.arange(n)] += m.diag
        eig = np.linalg.eigvalsh(dense)
        assert eig.min() > 0
