"""Style registry / suffix resolution and the input-script parser."""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_melt
from repro.core import Lammps
from repro.core.errors import InputError, StyleError
from repro.core.input import safe_eval
from repro.core.styles import PAIR_STYLES, register_pair, resolve_style
from repro.potentials.lj import PairLJCut
from repro.potentials.lj_kokkos import PairLJCutKokkos


class TestSuffixResolution:
    def test_plain_lookup(self):
        cls, extra = resolve_style("pair", "lj/cut", None)
        assert cls is PairLJCut and extra == {}

    def test_kk_suffix_prefers_accelerated(self):
        cls, _ = resolve_style("pair", "lj/cut", "kk")
        assert cls is PairLJCutKokkos

    def test_explicit_kk_device(self):
        cls, extra = resolve_style("pair", "lj/cut/kk/device", None)
        assert cls is PairLJCutKokkos and extra == {}

    def test_explicit_kk_host(self):
        cls, extra = resolve_style("pair", "lj/cut/kk/host", None)
        assert cls is PairLJCutKokkos
        assert extra == {"execution_space": "host"}

    def test_kk_host_global_suffix(self):
        cls, extra = resolve_style("pair", "lj/cut", "kk/host")
        assert cls is PairLJCutKokkos
        assert extra == {"execution_space": "host"}

    def test_suffix_falls_back_when_no_accelerated_variant(self):
        # table has no /kk registration: the suffix silently falls back,
        # "without losing access" (section 3.1)
        cls, _ = resolve_style("pair", "table", "kk")
        assert cls.style_name == "table"

    def test_unknown_style(self):
        with pytest.raises(StyleError, match="unknown pair style"):
            resolve_style("pair", "eam/alloy", None)

    def test_unknown_category(self):
        with pytest.raises(StyleError, match="category"):
            resolve_style("bond", "harmonic", None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(StyleError, match="duplicate"):
            register_pair("lj/cut")(PairLJCut)

    def test_registry_has_paper_styles(self):
        for name in ("lj/cut", "lj/cut/kk", "eam/fs", "eam/fs/kk",
                     "reaxff", "reaxff/kk", "snap", "snap/kk", "table"):
            assert name in PAIR_STYLES


class TestSafeEval:
    def test_arithmetic(self):
        assert safe_eval("2*(3+4)") == 14.0
        assert safe_eval("-3**2") == -9.0
        assert safe_eval("7 % 4 + 10 // 3") == 6.0

    def test_rejects_calls_and_names(self):
        with pytest.raises(InputError):
            safe_eval("__import__('os')")
        with pytest.raises(InputError):
            safe_eval("x + 1")

    def test_rejects_garbage(self):
        with pytest.raises(InputError):
            safe_eval("2 +")


class TestParser:
    def test_variables_and_substitution(self):
        lmp = Lammps(device=None)
        lmp.command("variable rho equal 0.8442")
        lmp.command("variable half equal ${rho}/2")
        assert lmp.variables["half"] == pytest.approx(0.4221)

    def test_undefined_variable(self):
        lmp = Lammps(device=None)
        with pytest.raises(InputError, match="undefined variable"):
            lmp.command("lattice fcc ${missing}")

    def test_comments_and_continuations(self):
        lmp = Lammps(device=None)
        lmp.commands_string(
            "variable a & \n equal 3 # trailing comment\n# full comment\n"
        )
        assert lmp.variables["a"] == 3.0

    def test_unknown_command(self):
        with pytest.raises(InputError, match="unknown command"):
            Lammps(device=None).command("flux_capacitor on")

    def test_bad_usage_messages(self):
        lmp = Lammps(device=None)
        with pytest.raises(InputError, match="usage"):
            lmp.command("units")
        with pytest.raises(InputError, match="only 3-D"):
            lmp.command("dimension 2")
        with pytest.raises(InputError, match="timestep"):
            lmp.command("timestep -0.1")

    def test_pair_coeff_before_style(self):
        lmp = Lammps(device=None)
        with pytest.raises(InputError, match="pair_coeff before pair_style"):
            lmp.command("pair_coeff 1 1 1.0 1.0")

    def test_region_scaled_by_lattice(self):
        lmp = Lammps(device=None)
        lmp.commands_string("units lj\nlattice fcc 0.8442\nregion r block 0 2 0 2 0 2")
        a = (4 / 0.8442) ** (1 / 3)
        assert lmp.regions["r"].hi[0] == pytest.approx(2 * a)

    def test_duplicate_box(self):
        lmp = Lammps(device=None)
        lmp.commands_string(
            "units lj\nlattice fcc 1.0\nregion b block 0 2 0 2 0 2\ncreate_box 1 b"
        )
        with pytest.raises(InputError, match="already exists"):
            lmp.command("create_box 1 b")

    def test_group_definitions(self):
        lmp = make_melt(cells=2)
        lmp.command("group ones type 1")
        assert lmp.group_mask("ones").all()
        lmp.command("region half block 0 1 0 2 0 2")
        lmp.command("group left region half")
        assert 0 < lmp.group_mask("left").sum() < lmp.atom.nlocal

    def test_fix_unknown_group(self):
        lmp = make_melt(cells=2)
        with pytest.raises(InputError, match="unknown group"):
            lmp.command("fix 2 ghosts nve")

    def test_unfix(self):
        lmp = make_melt(cells=2)
        lmp.command("unfix 1")
        with pytest.raises(InputError, match="unknown fix"):
            lmp.command("unfix 1")

    def test_thermo_style_custom(self):
        lmp = make_melt(cells=2)
        lmp.command("thermo_style custom temp pe")
        lmp.command("run 0")
        assert set(lmp.thermo.history[-1].values) >= {"temp", "pe"}

    def test_neigh_modify(self):
        lmp = Lammps(device=None)
        lmp.command("neigh_modify every 5 delay 2 check no")
        assert lmp.neighbor.every == 5
        assert lmp.neighbor.delay == 2
        assert lmp.neighbor.check is False
        with pytest.raises(InputError, match="unknown keyword"):
            lmp.command("neigh_modify sometimes yes")

    def test_mass_wildcard(self):
        lmp = Lammps(device=None)
        lmp.commands_string(
            "units lj\nlattice fcc 1.0\nregion b block 0 2 0 2 0 2\ncreate_box 3 b"
        )
        lmp.command("mass * 2.5")
        assert np.all(lmp.atom.mass[1:] == 2.5)

    def test_suffix_command(self):
        lmp = Lammps(device="H100")
        lmp.command("suffix kk")
        assert lmp.suffix == "kk"
        lmp.command("suffix off")
        assert lmp.suffix is None
