"""Benchmark harness and workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import (
    LJBenchmark,
    SNAPBenchmark,
    cluster_step_time,
    format_series,
    format_table,
    strong_scaling_curve,
)
from repro.bench.runner import _merge_step_profiles
from repro.bench.scaling import ghost_atoms, parallel_efficiency
from repro.hardware import KernelProfile, get_gpu, get_machine
from repro.workloads.hns import CHAIN_TYPES, hns_configuration
from repro.workloads.melt import melt_cells_for_atoms


@pytest.fixture(scope="module")
def lj_ref():
    return LJBenchmark(cells=4).reference("H100")


class TestReferenceCapture:
    def test_profiles_present(self, lj_ref):
        assert "PairComputeLJCut" in lj_ref.profiles
        assert "NeighborBuild" in lj_ref.profiles
        assert lj_ref.natoms == 4 * 4**3

    def test_density_and_cutoff(self, lj_ref):
        assert lj_ref.density == pytest.approx(0.8442, rel=1e-6)
        assert lj_ref.cutoff == 2.5

    def test_step_time_scales_superlinearly_at_small_sizes(self, lj_ref):
        # thread starvation: doubling tiny problems costs less than 2x
        t1 = lj_ref.step_time("H100", 2_000)
        t2 = lj_ref.step_time("H100", 4_000)
        assert t2 < 2 * t1

    def test_step_time_near_linear_at_saturation(self, lj_ref):
        t1 = lj_ref.step_time("H100", 4_000_000)
        t2 = lj_ref.step_time("H100", 8_000_000)
        assert t2 / t1 == pytest.approx(2.0, rel=0.35)

    def test_max_atoms_by_hbm(self, lj_ref):
        assert lj_ref.max_atoms(get_gpu("V100")) < lj_ref.max_atoms(get_gpu("H100"))

    def test_reference_cached(self):
        a = LJBenchmark(cells=4).reference("H100")
        b = LJBenchmark(cells=4).reference("H100")
        assert a is b

    def test_distinct_configs_not_shared(self):
        a = LJBenchmark(cells=4).reference("H100")
        b = LJBenchmark(cells=4, team=True).reference("H100")
        assert a is not b

    def test_merge_averages_per_step(self):
        p = KernelProfile("k", flops=10.0, launches=1, parallel_items=100)
        merged = _merge_step_profiles([p, p, p, p], nsteps=2)
        assert merged["k"].flops == pytest.approx(20.0)
        assert merged["k"].launches == 2
        assert merged["k"].parallel_items == 100  # per-launch, not averaged


class TestClusterModel:
    def test_ghost_count_surface_to_volume(self):
        small = ghost_atoms(1_000, density=0.8, cutoff=2.5)
        big = ghost_atoms(1_000_000, density=0.8, cutoff=2.5)
        # ghost FRACTION shrinks with subdomain size
        assert small / 1_000 > big / 1_000_000

    def test_does_not_fit_returns_none(self, lj_ref):
        t = cluster_step_time(lj_ref, get_machine("alps"), 10**12, 1)
        assert t is None

    def test_more_nodes_never_hurt_much_in_scaling_regime(self, lj_ref):
        m = get_machine("alps")
        t4 = cluster_step_time(lj_ref, m, 16_000_000, 4)
        t16 = cluster_step_time(lj_ref, m, 16_000_000, 16)
        assert t16 < t4

    def test_curve_skips_beyond_machine(self, lj_ref):
        m = get_machine("eos")  # max 256 nodes
        curve = strong_scaling_curve(lj_ref, m, 16_000_000, [128, 256, 512])
        assert [n for n, _ in curve] == [128, 256]

    def test_parallel_efficiency_starts_at_one(self, lj_ref):
        m = get_machine("alps")
        curve = strong_scaling_curve(lj_ref, m, 16_000_000, [1, 2, 4, 8])
        eff = dict(parallel_efficiency(curve))
        assert eff[1] == pytest.approx(1.0)
        assert all(0 < v <= 1.2 for v in eff.values())

    def test_snap_vs_lj_efficiency_ordering(self, lj_ref):
        """SNAP's heavier compute hides comm: better efficiency at scale."""
        snap_ref = SNAPBenchmark(cells=2, twojmax=4).reference("H100")
        m = get_machine("alps")
        lj_eff = dict(
            parallel_efficiency(
                strong_scaling_curve(lj_ref, m, 4_000_000, [1, 64])
            )
        )[64]
        snap_eff = dict(
            parallel_efficiency(
                strong_scaling_curve(snap_ref, m, 4_000_000, [1, 64])
            )
        )[64]
        assert snap_eff > lj_eff


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, None]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "-" in lines[2]
        assert "-" in lines[4].split()[-1]  # None rendered as '-'

    def test_format_series_merges_x(self):
        out = format_series("x", {"s1": [(1, 2.0)], "s2": [(2, 3.0)]})
        assert "s1" in out and "s2" in out
        assert len(out.splitlines()) == 4  # header, rule, two x rows


class TestWorkloads:
    def test_melt_cells_for_atoms(self):
        assert melt_cells_for_atoms(4) == 1
        n = melt_cells_for_atoms(1_000_000)
        assert 4 * n**3 >= 1_000_000
        assert 4 * (n - 1) ** 3 < 1_000_000
        with pytest.raises(ValueError):
            melt_cells_for_atoms(1)

    def test_hns_stoichiometry(self):
        x, types, box = hns_configuration(3, 3, 3)
        assert len(x) == 27 * len(CHAIN_TYPES)
        counts = np.bincount(types, minlength=5)[1:]
        # C2 H1 N1 O2 per chain: CHNO ratios close to HNS
        assert counts[0] == 2 * 27  # C
        assert counts[1] == 1 * 27  # H
        assert counts[3] == 2 * 27  # O

    def test_hns_density_hns_like(self):
        x, types, box = hns_configuration(3, 3, 3)
        density = len(x) / np.prod(box)
        assert 0.06 < density < 0.11  # ~0.084 atoms/A^3 for real HNS

    def test_hns_no_overlaps(self):
        from scipy.spatial.distance import pdist

        x, _, _ = hns_configuration(2, 2, 2)
        assert pdist(x).min() > 0.9  # shortest bond ~1.35 A minus jitter

    def test_hns_deterministic_by_seed(self):
        a, _, _ = hns_configuration(2, 2, 2, seed=5)
        b, _, _ = hns_configuration(2, 2, 2, seed=5)
        c, _, _ = hns_configuration(2, 2, 2, seed=6)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_invalid_cells(self):
        with pytest.raises(ValueError):
            hns_configuration(0, 1, 1)


class TestOverlapModel:
    def test_overlapped_phase_time(self):
        from repro.hardware.cost import overlapped_phase_time

        # comm-bound: boundary pass is the only exposed compute
        assert overlapped_phase_time(3.0, 2.0, 1.0) == 4.0
        # compute-bound: comm fully hidden behind the interior pass
        assert overlapped_phase_time(1.0, 2.0, 0.5) == 2.5
        assert overlapped_phase_time(0.0, 0.0, 0.0) == 0.0
        with pytest.raises(ValueError):
            overlapped_phase_time(-1.0, 1.0, 1.0)

    def test_interior_fraction_bounds(self):
        from repro.bench import interior_fraction

        # fat brick: nearly all pairs are owned-owned
        assert interior_fraction(1e7, 0.8442, 2.5) > 0.9
        # sliver thinner than the cutoff: small but strictly positive
        tiny = interior_fraction(8.0, 0.8442, 2.5)
        assert 0.0 < tiny < 0.3
        assert interior_fraction(0.0, 0.8442, 2.5) == 0.0
        # monotone in the brick size
        fracs = [interior_fraction(n, 0.8442, 2.5) for n in (1e2, 1e4, 1e6)]
        assert fracs == sorted(fracs)

    def test_splittable_step_time_selects_overlap_kernels(self, lj_ref):
        split = lj_ref.splittable_step_time("H100", lj_ref.natoms)
        total = lj_ref.step_time("H100", lj_ref.natoms)
        assert 0.0 < split < total

    def test_cluster_overlap_strictly_faster_multirank(self, lj_ref):
        from repro.bench import cluster_step_breakdown

        machine = get_machine("frontier")
        natoms = 16_000_000
        for nodes in (2, 4, 16, 64):
            off = cluster_step_breakdown(lj_ref, machine, natoms, nodes)
            on = cluster_step_breakdown(
                lj_ref, machine, natoms, nodes, overlap=True
            )
            assert on["total"] < off["total"], nodes
            # the win is exactly the hidden halo time
            gain = off["total"] - on["total"]
            assert gain == pytest.approx(on["hidden_comm"], abs=1e-15)
            assert 0.0 < on["interior_fraction"] < 1.0
            # interior + boundary tile the splittable kernel time
            assert on["interior"] + on["boundary"] <= on["kernel"] + 1e-15

    def test_single_node_overlap_single_rank_noop(self, lj_ref):
        from repro.bench import cluster_step_breakdown

        machine = get_machine("frontier")
        # pick a size that fits a single rank
        natoms = 1_000_000
        ranks_node1 = machine.ranks(1)
        assert ranks_node1 > 1  # frontier packs 8 GCDs per node
        off = cluster_step_breakdown(lj_ref, machine, natoms, 1)
        on = cluster_step_breakdown(lj_ref, machine, natoms, 1, overlap=True)
        assert on["total"] < off["total"]  # intra-node halo still hidden
