"""Property-based physics invariants across all pair styles.

Hypothesis drives random configurations through every potential and checks
the invariants any correct force implementation must satisfy: Newton's
third law (total force zero), translation invariance, permutation
consistency, and exactness of forces as energy gradients.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import fd_force_check
from repro.core import Lammps
from repro.parallel.driver import drain

#: (units, pair_style setup lines, box edge, min distance between atoms)
STYLES = {
    "lj/cut": ("lj", "pair_style lj/cut 2.5\npair_coeff 1 1 1.0 1.0", 7.0, 0.85),
    "morse": ("lj", "pair_style morse 2.5\npair_coeff 1 1 1.0 5.0 1.1", 7.0, 0.7),
    "eam/fs": ("metal", "pair_style eam/fs 4.5\npair_coeff * * 2.0 0.3", 12.0, 1.8),
    "snap": (
        "metal",
        "pair_style snap 4 4.0\npair_coeff 1 1 0.5 1.0",
        11.0,
        1.9,
    ),
}


def build(style: str, x: np.ndarray) -> Lammps:
    units, setup, box, _ = STYLES[style]
    lmp = Lammps(device=None)
    lmp.commands_string(
        f"units {units}\nregion b block 0 {box} 0 {box} 0 {box}\ncreate_box 1 b"
    )
    lmp.create_atoms_from_arrays(x, np.ones(len(x), dtype=int))
    lmp.commands_string(f"mass 1 50.0\n{setup}\nneighbor 0.5 bin\nfix 1 all nve")
    drain(lmp.verlet.run_gen(0))
    return lmp


def random_points(seed: int, style: str, n: int = 14) -> np.ndarray:
    """Poisson-ish points: random with minimum separation enforced."""
    _, _, box, dmin = STYLES[style]
    rng = np.random.default_rng(seed)
    pts: list[np.ndarray] = []
    attempts = 0
    while len(pts) < n and attempts < 4000:
        cand = rng.uniform(0, box, 3)
        attempts += 1
        ok = True
        for p in pts:
            d = cand - p
            d -= box * np.round(d / box)
            if np.linalg.norm(d) < dmin:
                ok = False
                break
        if ok:
            pts.append(cand)
    return np.asarray(pts)


@pytest.mark.parametrize("style", sorted(STYLES))
class TestForceInvariants:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None)
    def test_total_force_zero(self, style, seed):
        x = random_points(seed, style)
        lmp = build(style, x)
        total = lmp.atom.f[: lmp.atom.nlocal].sum(axis=0)
        scale = max(np.abs(lmp.atom.f[: lmp.atom.nlocal]).max(), 1.0)
        assert np.abs(total).max() < 1e-9 * scale

    @given(seed=st.integers(0, 10_000), shift=st.floats(-3.0, 3.0))
    @settings(max_examples=6, deadline=None)
    def test_translation_invariance(self, style, seed, shift):
        x = random_points(seed, style)
        a = build(style, x)
        b = build(style, x + shift)
        ea = a.pair.eng_vdwl + a.pair.eng_coul
        eb = b.pair.eng_vdwl + b.pair.eng_coul
        assert eb == pytest.approx(ea, rel=1e-9, abs=1e-9)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=4, deadline=None)
    def test_permutation_invariance(self, style, seed):
        x = random_points(seed, style)
        a = build(style, x)
        b = build(style, x[::-1])
        ea = a.pair.eng_vdwl + a.pair.eng_coul
        eb = b.pair.eng_vdwl + b.pair.eng_coul
        assert eb == pytest.approx(ea, rel=1e-9, abs=1e-9)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=3, deadline=None)
    def test_forces_are_gradients(self, style, seed):
        x = random_points(seed, style)
        lmp = build(style, x)
        assert fd_force_check(lmp, [0, len(x) // 2], eps=1e-6) < 5e-5
