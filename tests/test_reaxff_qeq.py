"""QEq solver acceleration: fusion, preconditioning, history extrapolation.

Covers the rebuilt charge solve end to end: the enforced appendix-B
overflow guards in the matrix build, bitwise fused-vs-double-traversal
equivalence across scatter modes, preconditioned convergence at identical
tolerance, the permutation/migration safety of the charge-history ring
(custom per-atom fields), the packed two-vector forward exchange, golden
iteration counts on HNS, and 1-vs-N-rank decomposition invariance of the
fully accelerated configuration.

To rebless the golden iteration counts after an intentional solver change:

    PYTHONPATH=src python -m pytest tests/test_reaxff_qeq.py --update-golden
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from conftest import gather_by_tag
from repro.core import Ensemble, Lammps
from repro.core.errors import InputError, LammpsError, OverflowGuardError
from repro.kokkos.segment import ATOMIC, SEGMENTED, force_scatter_mode
from repro.reaxff.qeq import (
    DUAL,
    FUSED,
    HISTORY_DEPTH,
    build_qeq_matrix,
    force_qeq_spmv_mode,
    make_preconditioner,
    qeq_spmv_mode,
    set_qeq_spmv_mode,
)
from repro.tools import metrics
from repro.tools.metrics import MetricsRegistry
from repro.workloads.hns import setup_hns

GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.fixture(autouse=True)
def _reset_spmv_mode():
    yield
    set_qeq_spmv_mode(None)


def make_hns(nranks=1, precond="none", extrap="none", cells=(1, 2, 2), tol=None):
    target = Ensemble(nranks) if nranks > 1 else Lammps()
    setup_hns(target, *cells, pair_style="reaxff cutoff 5.0")
    target.commands_string("neighbor 0.5 bin")
    for lmp in target.ranks if hasattr(target, "ranks") else [target]:
        lmp.pair.set_qeq_options(precond=precond, extrap=extrap, tol=tol)
    return target


# ------------------------------------------------------- overflow guards
class _StubNList:
    def __init__(self, numneigh, neighbors):
        self.nlocal = len(numneigh)
        self.numneigh = np.asarray(numneigh)
        self.neighbors = np.asarray(neighbors)


class TestOverflowGuards:
    def test_oversized_row_raises_before_allocating(self):
        """A single row longer than int32 must raise, not allocate slots."""
        nlist = _StubNList([np.int64(2**31 + 5)], np.zeros(0, dtype=np.int64))
        with pytest.raises(OverflowGuardError, match="int32"):
            build_qeq_matrix(np.zeros((1, 3)), np.zeros(1, int), nlist, None, 1.0)

    def test_oversized_column_index_raises(self):
        nlist = _StubNList([1], np.array([2**31 + 10], dtype=np.int64))
        with pytest.raises(OverflowGuardError, match="column index"):
            build_qeq_matrix(np.zeros((1, 3)), np.zeros(1, int), nlist, None, 1.0)

    def test_offsets_are_int64_cols_nnz_int32(self):
        """The appendix-B width split on a real build."""
        lmp = make_hns()
        lmp.run(0)
        atom, pair = lmp.atom, lmp.pair
        species = pair.type_map[atom.type[: atom.nall]]
        m = build_qeq_matrix(
            atom.x[: atom.nall], species, lmp.neigh_list, pair.params,
            lmp.update.units.qqr2e,
        )
        assert m.offsets.dtype == np.int64
        assert m.cols.dtype == np.int32
        assert m.nnz.dtype == np.int32


# --------------------------------------------------------- spmv fusion
class TestFusedSpmv:
    @pytest.mark.parametrize("scatter", [ATOMIC, SEGMENTED])
    def test_fused_bitwise_equals_double_traversal(self, scatter):
        """One traversal for both RHS must reproduce two traversals exactly,
        in both scatter modes — so the fused default never shifts goldens."""
        results = {}
        for mode in (FUSED, DUAL):
            with force_scatter_mode(scatter), force_qeq_spmv_mode(mode):
                lmp = make_hns()
                lmp.run(2)
            results[mode] = (
                gather_by_tag(lmp, "q"),
                list(lmp.pair.qeq_iters_history),
            )
        q_fused, it_fused = results[FUSED]
        q_dual, it_dual = results[DUAL]
        assert np.array_equal(q_fused, q_dual)  # bitwise
        assert it_fused == it_dual

    def test_spmv2_matches_two_spmv_calls_bitwise(self):
        lmp = make_hns()
        lmp.run(0)
        atom, pair = lmp.atom, lmp.pair
        species = pair.type_map[atom.type[: atom.nall]]
        m = build_qeq_matrix(
            atom.x[: atom.nall], species, lmp.neigh_list, pair.params,
            lmp.update.units.qqr2e,
        )
        rng = np.random.default_rng(7)
        vec2 = rng.normal(size=(atom.nall, 2))
        fused = m.spmv2(vec2)
        assert np.array_equal(fused[:, 0], m.spmv(vec2[:, 0]))
        assert np.array_equal(fused[:, 1], m.spmv(vec2[:, 1]))

    def test_traversal_bytes_mode_accounting(self):
        lmp = make_hns()
        lmp.run(0)
        atom, pair = lmp.atom, lmp.pair
        species = pair.type_map[atom.type[: atom.nall]]
        m = build_qeq_matrix(
            atom.x[: atom.nall], species, lmp.neigh_list, pair.params,
            lmp.update.units.qqr2e,
        )
        assert m.traversal_bytes(DUAL) == 2 * m.traversal_bytes(FUSED)
        assert qeq_spmv_mode() == FUSED
        assert m.traversal_bytes() == m.traversal_bytes(FUSED)


# ------------------------------------------------------ preconditioning
class TestPreconditioning:
    def test_preconditioned_charges_match_at_identical_tolerance(self):
        cold = make_hns()
        cold.run(3)
        q_cold = gather_by_tag(cold, "q")
        for precond in ("jacobi", "ssor"):
            lmp = make_hns(precond=precond)
            lmp.run(3)
            np.testing.assert_allclose(
                gather_by_tag(lmp, "q"), q_cold, atol=1e-6
            )
            assert sum(lmp.pair.qeq_iters_history) <= sum(
                cold.pair.qeq_iters_history
            ), precond

    def test_ssor_converges_in_fewer_iterations(self):
        cold = make_hns()
        cold.run(2)
        ssor = make_hns(precond="ssor")
        ssor.run(2)
        assert sum(ssor.pair.qeq_iters_history) < sum(cold.pair.qeq_iters_history)

    def test_unknown_precond_rejected_at_setter(self):
        lmp = make_hns()
        with pytest.raises(InputError, match="jacobi"):
            lmp.pair.set_qeq_options(precond="jacobbi")

    def test_unknown_precond_rejected_by_factory(self):
        with pytest.raises(LammpsError, match="did you mean"):
            make_preconditioner("jacobbi", None)

    def test_unknown_extrap_rejected_at_setter(self):
        lmp = make_hns()
        with pytest.raises(InputError, match="qeq_extrap"):
            lmp.pair.set_qeq_options(extrap="5")

    def test_unknown_spmv_mode_rejected_at_setter(self):
        with pytest.raises(ValueError, match="fused"):
            set_qeq_spmv_mode("fussed")

    def test_pair_style_args_parse_qeq_knobs(self):
        lmp = Lammps()
        setup_hns(
            lmp, 1, 2, 2,
            pair_style="reaxff cutoff 5.0 qeq_precond jacobi qeq_extrap 2 "
            "qeq_tol 1e-10",
        )
        assert lmp.pair.qeq_precond == "jacobi"
        assert lmp.pair.qeq_extrap == "2"
        assert lmp.pair.qeq_tol == 1e-10


# ------------------------------------------------ history extrapolation
class TestChargeHistory:
    def test_extrapolation_reduces_warm_iterations(self):
        """The acceptance criterion: >= 1.5x fewer iterations once warm."""
        cold = make_hns()
        cold.run(8)
        warm = make_hns(precond="jacobi", extrap="2")
        warm.run(8)
        # skip the first order+1 solves while the ring fills
        mean_cold = np.mean(cold.pair.qeq_iters_history[3:])
        mean_warm = np.mean(warm.pair.qeq_iters_history[3:])
        assert mean_cold / mean_warm >= 1.5

    def test_seeded_charges_match_cold_charges(self):
        cold = make_hns()
        cold.run(8)
        warm = make_hns(precond="jacobi", extrap="2")
        warm.run(8)
        np.testing.assert_allclose(
            gather_by_tag(warm, "q"), gather_by_tag(cold, "q"), atol=1e-6
        )

    def test_history_rides_atom_sort(self):
        """The ring must permute with the atoms: seeds are a per-atom
        property, invariant (by tag) under a spatial reorder."""
        lmp = make_hns(extrap="2")
        lmp.run(4)
        atom = lmp.atom
        hist = lmp.pair._qeq_history
        n = atom.nlocal
        tags0 = atom.tag[:n].copy()
        s0, t0 = hist.seed(2)
        atom.clear_ghosts()
        perm = np.random.default_rng(3).permutation(n)
        atom.reorder_local(perm)
        s1, t1 = hist.seed(2)
        order0, order1 = np.argsort(tags0), np.argsort(atom.tag[:n])
        assert np.array_equal(s0[order0], s1[order1])
        assert np.array_equal(t0[order0], t1[order1])

    def test_ring_depth_and_counts(self):
        lmp = make_hns(extrap="2")
        lmp.run(1)  # setup solve + 1 step = 2 pushes
        cnt = lmp.atom.custom["qeq_hist_n"]
        assert cnt[: lmp.atom.nlocal, 0].max() == 2
        lmp.run(10)
        assert cnt[: lmp.atom.nlocal, 0].max() == HISTORY_DEPTH  # saturates

    def test_custom_fields_migrate_with_atoms(self):
        """A registered custom field follows its atom through exchange."""
        ens = make_hns(nranks=2, cells=(2, 2, 2))
        for lmp in ens.ranks:
            marker = lmp.atom.add_custom("marker", 1)
            marker[: lmp.atom.nlocal, 0] = lmp.atom.tag[: lmp.atom.nlocal]
        ens.command("run 12")  # crosses the every-10 rebuild -> exchange
        for lmp in ens.ranks:
            atom = lmp.atom
            marker = atom.custom["marker"]
            assert np.array_equal(
                marker[: atom.nlocal, 0], atom.tag[: atom.nlocal].astype(float)
            )

    def test_seeding_engages_after_first_solve(self):
        lmp = make_hns(extrap="2")
        lmp.run(0)
        assert lmp.pair.last_stats["qeq_seeded"] is False  # nothing to seed
        lmp.run(1)
        assert lmp.pair.last_stats["qeq_seeded"] is True


# ------------------------------------------------------- comm accounting
class TestPackedForwardComm:
    def test_both_vectors_ride_one_exchange_per_iteration(self):
        """QEq comm rounds per CG iteration: exactly one packed exchange
        (kind=forward_fields), not two single-field exchanges."""
        sink = metrics.attach_sink(MetricsRegistry())
        try:
            ens = make_hns(nranks=2, cells=(2, 2, 2))
            ens.command("run 2")
        finally:
            metrics.detach_sink(sink)
        nranks = 2
        iters = sum(ens.ranks[0].pair.qeq_iters_history)
        nsolves = len(ens.ranks[0].pair.qeq_iters_history)
        halo = sink.families["halo_exchanges_total"]
        assert halo.get(kind="forward_fields") == nranks * iters
        # the only per-solve single-field broadcast left is the converged q
        assert halo.get(kind="forward_field") == nranks * nsolves

    def test_seeded_solve_pays_one_extra_exchange(self):
        sink = metrics.attach_sink(MetricsRegistry())
        try:
            ens = make_hns(nranks=2, cells=(2, 2, 2), extrap="2")
            ens.command("run 2")
        finally:
            metrics.detach_sink(sink)
        pair = ens.ranks[0].pair
        iters = sum(pair.qeq_iters_history)
        seeded = pair._qeq_solves - 1  # all but the cold first solve
        halo = sink.families["halo_exchanges_total"]
        assert halo.get(kind="forward_fields") == 2 * (iters + seeded)

    def test_qeq_metric_families_recorded(self):
        sink = metrics.attach_sink(MetricsRegistry())
        try:
            lmp = make_hns(precond="jacobi", extrap="2")
            lmp.run(2)
        finally:
            metrics.detach_sink(sink)
        solves = sink.families["qeq_solves_total"]
        assert solves.get(precond="jacobi", seeded="no") == 1
        assert solves.get(precond="jacobi", seeded="yes") == 2
        iters = sink.families["qeq_iterations_total"]
        total = sum(lmp.pair.qeq_iters_history)
        assert sum(iters.values.values()) == total
        spmv = sink.families["qeq_spmv_bytes_total"]
        assert spmv.get(mode=FUSED) > 0


# ---------------------------------------------------------------- golden
class TestGoldenIterations:
    def test_hns_iteration_counts_match_golden(self, update_golden):
        """The iterations-to-tolerance trajectory of the fully accelerated
        configuration is pinned: any solver change that shifts convergence
        shows up here immediately."""
        lmp = make_hns(precond="jacobi", extrap="2")
        lmp.run(10)
        history = list(lmp.pair.qeq_iters_history)
        path = GOLDEN_DIR / "hns-qeq-iterations.json"
        if update_golden:
            GOLDEN_DIR.mkdir(exist_ok=True)
            payload = {
                "workload": "hns",
                "qeq_precond": "jacobi",
                "qeq_extrap": "2",
                "iterations": history,
            }
            path.write_text(json.dumps(payload, indent=2) + "\n")
            pytest.skip(f"rewrote {path.name}")
        golden = json.loads(path.read_text())
        assert history == golden["iterations"]


# ------------------------------------------------------------ distributed
class TestDistributed:
    @pytest.mark.parametrize("nranks", [2, 4])
    def test_accelerated_solver_decomposition_invariant(self, nranks):
        """jacobi + extrap-2 across a migration-crossing run: 1 vs N ranks
        agree on positions and charges (iteration counts may differ — the
        seed residual history is decomposition-dependent only through
        round-off)."""
        single = make_hns(precond="jacobi", extrap="2", cells=(2, 2, 2))
        single.command("run 12")
        multi = make_hns(
            nranks=nranks, precond="jacobi", extrap="2", cells=(2, 2, 2)
        )
        multi.command("run 12")
        np.testing.assert_allclose(
            gather_by_tag(multi, "x"), gather_by_tag(single, "x"), atol=1e-7
        )
        np.testing.assert_allclose(
            gather_by_tag(multi, "q"), gather_by_tag(single, "q"), atol=1e-7
        )

    def test_ranks_stay_in_lockstep(self):
        """Every rank must make the identical seed/iterate decisions — the
        collective gate on the solve counter."""
        multi = make_hns(nranks=2, precond="ssor", extrap="2", cells=(2, 2, 2))
        multi.command("run 12")
        histories = [r.pair.qeq_iters_history for r in multi.ranks]
        assert histories[0] == histories[1]
        assert all(r.pair._qeq_solves == 13 for r in multi.ranks)
