"""Failure injection and guard-rail coverage across the engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_melt
from repro.core import Lammps
from repro.core.errors import CommError, NeighborError, OverflowGuardError


class TestLostAndCorruptState:
    def test_forward_comm_detects_changed_ghost_counts(self):
        lmp = make_melt(cells=2)
        lmp.command("run 0")
        # sabotage: shrink a recorded swap's expectation
        lmp.comm_brick.swaps[0].nrecv += 1
        from repro.parallel.driver import drain

        with pytest.raises(CommError, match="size changed"):
            drain(lmp.comm_brick.forward_comm(lmp.atom))

    def test_exploding_dynamics_surfaces_as_numbers_not_hangs(self):
        lmp = make_melt(cells=2)
        lmp.command("velocity all create 1e6 1")  # absurd temperature
        lmp.command("neigh_modify every 1 delay 0 check yes")
        # atoms fly across the box; migration keeps every atom accounted for
        lmp.command("timestep 1e-6")
        lmp.command("run 5")
        assert lmp.atom.nlocal == lmp.natoms_total

    def test_overflow_guard_on_neighbor_index_width(self):
        from repro.core import neighbor as nb

        x = np.zeros((4, 3))
        # fake an absurd nall by monkeypatching the check threshold is not
        # possible cheaply; instead verify the guard exists and fires on the
        # documented condition via a constructed sparse case
        with pytest.raises(NeighborError):
            nb.build_neighbor_list(x, 10, 1.0)  # nlocal > nall

    def test_atom_capacity_growth_under_migration_burst(self):
        lmp = make_melt(cells=2, nranks=2)
        lmp.command("run 0")  # establishes the communication bricks
        # push all atoms into rank 0's subdomain and migrate
        lo, hi = lmp.ranks[0].decomp.subdomain(0)
        center = (lo + hi) / 2.0
        for r in lmp.ranks:
            r.atom.x[: r.atom.nlocal] = center
        from repro.parallel.driver import lockstep

        lockstep(
            [r.comm_brick.exchange(r.atom, r.domain.wrap) for r in lmp.ranks]
        )
        counts = [r.atom.nlocal for r in lmp.ranks]
        assert sum(counts) == lmp.ranks[0].natoms_total
        assert max(counts) == lmp.ranks[0].natoms_total  # all on one rank


class TestSNAPAdjointConsistency:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=8, deadline=None)
    def test_y_adjoints_are_energy_gradients_in_u(self, seed):
        """Y12/Y3 must be the exact partials of E = beta . B w.r.t. U/U*."""
        from repro.snap.bispectrum import compute_bispectrum
        from repro.snap.compute_ui import compute_ui
        from repro.snap.compute_yi import compute_yi
        from repro.snap.indexing import SnapIndex
        from repro.snap.pair_snap import synthetic_beta

        tj = 4
        idx = SnapIndex(tj)
        beta = synthetic_beta(idx.nbispectrum, 1.0, seed=seed % 97 + 1)
        rng = np.random.default_rng(seed)
        rij = rng.normal(size=(6, 3))
        rij *= 3.0 / np.linalg.norm(rij, axis=1, keepdims=True)
        U, _, _ = compute_ui(rij, np.zeros(6, dtype=int), 1, 4.7, tj)
        Y12, Y3 = compute_yi(U, beta, tj)

        # evaluate E = Re(sum beta C u1 u2 conj(u3)) directly from the
        # contraction tensor, so arbitrary (off-manifold) perturbations of
        # U are well defined
        t = idx.tensor
        w = beta[t.ib] * t.coeff

        def energy(u):
            return float(
                np.real((w * u[0, t.in1] * u[0, t.in2] * np.conj(u[0, t.out])).sum())
            )

        eps = 1e-7
        for m in rng.integers(0, idx.idxu_max, size=4):
            # dE/d(Re u_m) = Re(Y12 + Y3); dE/d(Im u_m) = Re(i (Y12 - Y3))
            for part, expect in (
                (1.0, np.real(Y12[0, m] + Y3[0, m])),
                (1j, np.real(1j * (Y12[0, m] - Y3[0, m]))),
            ):
                up = U.copy()
                up[0, m] += part * eps
                um = U.copy()
                um[0, m] -= part * eps
                fd = (energy(up) - energy(um)) / (2 * eps)
                # abs floor: central-difference round-off is ~ulp(E)/eps,
                # which for |E| ~ 10 exceeds 1e-8 when the derivative itself
                # is small (near-cancelling Y components)
                assert fd == pytest.approx(expect, rel=1e-4, abs=5e-8)


class TestEwaldAccounting:
    def test_kernels_charged_with_kokkos_pair(self):
        import repro.kokkos as kk

        lmp = Lammps(device="H100", suffix="kk")
        lmp.commands_string(
            "units lj\nregion b block 0 4 0 4 0 4\ncreate_box 2 b"
        )
        pts, types = [], []
        for i in range(4):
            for j in range(4):
                for k in range(4):
                    pts.append([i, j, k])
                    types.append(1 + (i + j + k) % 2)
        lmp.create_atoms_from_arrays(np.array(pts, float), np.array(types))
        # lj/cut/coul/cut/kk is kokkos-active; attach ewald on top of the
        # short-range style (physically double-counted Coulomb, but this
        # test only checks the accounting plumbing)
        lmp.commands_string(
            "mass * 1.0\nkspace_style ewald 1e-3\n"
            "pair_style lj/cut/coul/long 0.9 1.9\npair_coeff * * 0.0 1.0\n"
            "set type 1 charge 1.0\nset type 2 charge -1.0\n"
            "neighbor 0.1 bin\nfix 1 all nve"
        )
        lmp.command("run 1")
        # the plain long style is not kokkos; ewald charges only when a
        # kokkos style is active -> no device kernels is the correct outcome
        tl = kk.device_context().timeline
        assert "EwaldStructureFactor" not in tl.entries

    def test_reduce_protocol_single_vs_two_rank_energy(self):
        import sys

        sys.path.insert(0, "tests")
        from test_kspace_ewald import rocksalt, total_coulomb

        single = rocksalt(jiggle=0.03, seed=7)
        single.command("run 0")
        multi = rocksalt(jiggle=0.03, seed=7, nranks=2)
        multi.command("run 0")
        e1 = total_coulomb(single)
        e2 = sum(l.pair.eng_coul + l.kspace.energy_local for l in multi.ranks)
        assert e2 == pytest.approx(e1, rel=1e-10)
