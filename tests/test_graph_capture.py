"""Unit tests for the kernel-graph subsystem (capture -> fuse -> cache).

Covers the pieces in isolation, on synthetic node lists: the fusion
barrier rules (scatter/tally nodes, index-space changes, stages caught
writing Views they did not declare), the fused-profile pricing (one
launch, saved intermediate bytes), the plan cache's hit/miss/invalidate
accounting, and the ``set_graph_mode`` registry contract.
"""

from __future__ import annotations

import pytest

from repro.graph import (
    GRAPH,
    OFF,
    ON,
    GraphCapture,
    KernelNode,
    build_plan,
    force_graph_mode,
    fuse,
    plan_cache,
    set_graph_mode,
)
from repro.graph.plan import PlanCache
from repro.hardware.cost import KernelProfile, fuse_profiles
from repro.tools import metrics
from repro.tools.metrics import MetricsRegistry, attach_sink, detach_sink


@pytest.fixture(autouse=True)
def _reset_graph_mode():
    yield
    set_graph_mode(None)


def node(
    name,
    *,
    elementwise=True,
    space="pairs",
    writes=(),
    observed=None,
    outputs=(),
    item_bytes=None,
    size=0.0,
    profile=None,
):
    n = KernelNode(
        name=name,
        elementwise=elementwise,
        size=size,
        profile=profile,
        writes=tuple(writes),
        meta={"index_space": space, "outputs": tuple(outputs)},
    )
    if item_bytes:
        n.meta["item_bytes"] = dict(item_bytes)
    n.observed_writes = set(observed) if observed is not None else set(writes)
    return n


# ------------------------------------------------------------------ fusion
def test_adjacent_elementwise_nodes_fuse_into_one_group():
    groups = fuse([node("a"), node("b"), node("c")])
    assert len(groups) == 1
    assert groups[0].fused
    assert groups[0].name == "graph:fused[a+b+c]"


def test_barrier_node_splits_the_chain():
    groups = fuse(
        [node("a"), node("scatter", elementwise=False), node("b"), node("c")]
    )
    assert [g.name for g in groups] == ["a", "scatter", "graph:fused[b+c]"]
    assert not groups[0].fused and not groups[1].fused


def test_index_space_change_splits_the_chain():
    groups = fuse(
        [node("a"), node("b"), node("c", space="atoms"), node("d", space="atoms")]
    )
    assert [g.name for g in groups] == [
        "graph:fused[a+b]",
        "graph:fused[c+d]",
    ]


def test_undeclared_observed_write_demotes_node_to_barrier():
    sneaky = node("sneaky", writes=("x",), observed=("x", "hidden"))
    assert not sneaky.fusable
    groups = fuse([node("a"), sneaky, node("b")])
    assert [g.name for g in groups] == ["a", "sneaky", "b"]


def test_chain_internal_buffers_and_saved_bytes():
    a = node(
        "a", writes=("tmp",), item_bytes={"tmp": 8.0}, size=100.0
    )
    b = node("b", writes=("out",), outputs=("out",))
    (group,) = fuse([a, b])
    assert group.internal == ("tmp",)
    # one eliminated write + one eliminated read of tmp
    assert group.saved_intermediate_bytes == 2.0 * 8.0 * 100.0


def test_fuse_profiles_prices_one_launch_minus_saved_bytes():
    p1 = KernelProfile(name="a", flops=100.0, bytes_streamed=1000.0)
    p2 = KernelProfile(name="b", flops=50.0, bytes_streamed=500.0)
    fused = fuse_profiles(
        [p1, p2], name="graph:fused[a+b]", saved_intermediate_bytes=600.0
    )
    assert fused.name == "graph:fused[a+b]"
    assert fused.launches == 1
    assert fused.flops == 150.0
    assert fused.bytes_streamed == 900.0
    # saved bytes never push the composite negative
    floor = fuse_profiles([p2], name="f", saved_intermediate_bytes=1e9)
    assert floor.bytes_streamed == 0.0
    with pytest.raises(ValueError):
        fuse_profiles([], name="empty")


def test_fused_group_carries_composite_profile():
    prof = KernelProfile(name="a", bytes_streamed=64.0)
    (group,) = fuse([node("a", profile=prof), node("b")])
    assert group.profile is not None
    assert group.profile.launches == 1
    assert group.profile.name == group.name


# ------------------------------------------------------------- capture API
def test_capture_attributes_dispatch_to_open_stage():
    cap = GraphCapture("test")
    with cap:
        staged = cap.open_stage(node("stage"))
        cap.on_dispatch("for", "graph:stage", None, "Host", 32.0, None, 1e-6)
        cap.note_view_access("x", "r")
        cap.note_view_access("f", "w")
        cap.close_stage()
        # dispatch with no stage open lands as a standalone barrier node
        cap.on_dispatch("for", "stray", None, "Host", 8.0, None, 0.0)
    assert staged.size == 32.0 and staged.space == "Host"
    assert staged.observed_reads == {"x"}
    assert staged.observed_writes == {"f"}
    assert [n.name for n in cap.nodes] == ["stage", "stray"]
    assert not cap.nodes[1].elementwise


# --------------------------------------------------------------- plan cache
def test_plan_cache_miss_store_hit_and_invalidate():
    cache = PlanCache()
    plan = build_plan("lj/all", [node("a"), node("b")])
    base, variant = ("pair-1", "all"), ("Host", "segmented", 1)
    assert cache.lookup(base, variant) is None  # cold miss
    cache.store(base, variant, plan)
    assert cache.lookup(base, variant) is plan  # hit
    # variant drift (rebuild / scatter-mode flip) invalidates the slot
    assert cache.lookup(base, ("Host", "segmented", 2)) is None
    assert cache.stats() == {
        "hits": 1, "misses": 2, "fused_nodes": 2, "plans": 1,
    }


def test_plan_cache_counters_reach_metrics_sinks():
    registry = MetricsRegistry()
    attach_sink(registry)
    try:
        cache = PlanCache()
        plan = build_plan("lj/all", [node("a"), node("b"), node("c")])
        cache.lookup("k", 1)
        cache.store("k", 1, plan)
        cache.lookup("k", 1)
        hits = registry.counter("graph_plan_hits_total")
        misses = registry.counter("graph_plan_misses_total")
        fused = registry.counter("graph_fused_nodes_total")
        assert hits.get(plan="lj/all") == 1.0
        assert misses.get(plan="k") == 1.0
        assert fused.get(plan="lj/all") == 3.0
    finally:
        detach_sink(registry)


# ------------------------------------------------------------ mode registry
def test_set_graph_mode_validates_with_did_you_mean():
    with pytest.raises(ValueError) as err:
        set_graph_mode("onn")
    msg = str(err.value)
    assert "unknown graph mode" in msg
    assert "did you mean 'on'" in msg
    assert not GRAPH  # nothing was installed


def test_set_graph_mode_returns_previous_and_syncs_guard():
    assert set_graph_mode(ON) is None
    assert GRAPH and GRAPH[0] is plan_cache()
    assert set_graph_mode(OFF) == ON
    assert not GRAPH
    assert set_graph_mode(None) == OFF


def test_turning_graph_off_drops_cached_plans():
    with force_graph_mode(ON):
        cache = plan_cache()
        cache.store("k", 1, build_plan("p", [node("a")]))
        assert cache.stats()["plans"] == 1
    assert plan_cache().stats()["plans"] == 0


def test_mode_config_reports_graph_dimension():
    assert metrics.mode_config()["graph"] == OFF
    with force_graph_mode(ON):
        assert metrics.mode_config()["graph"] == ON
