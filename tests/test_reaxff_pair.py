"""ReaxFF pair style end-to-end: forces, QEq solution, dynamics, parallel."""

from __future__ import annotations

import numpy as np
import pytest

from conftest import fd_force_check, gather_by_tag
from repro.core import Ensemble, Lammps
from repro.core.errors import InputError
from repro.workloads.hns import setup_hns


def make_hns(device=None, nranks=1, pair_style="reaxff cutoff 5.0", cells=(2, 2, 2), suffix=None):
    target = Ensemble(nranks, device=device, suffix=suffix) if nranks > 1 else Lammps(
        device=device, suffix=suffix
    )
    setup_hns(target, *cells, pair_style=pair_style)
    target.commands_string("neighbor 0.5 bin")
    return target


class TestForces:
    def test_fd_total_forces(self):
        """Forces are exact derivatives of the full energy — including the
        bond-order chains, dihedral gradients, taper, and the QEq envelope."""
        lmp = make_hns()
        lmp.command("run 2")  # move off the constructed geometry
        assert fd_force_check(lmp, [0, 13, 29], eps=1e-5) < 1e-5

    def test_forces_sum_to_zero(self):
        lmp = make_hns()
        lmp.command("run 0")
        total = lmp.atom.f[: lmp.atom.nlocal].sum(axis=0)
        assert np.abs(total).max() < 1e-8


class TestQEq:
    def test_charges_neutral(self):
        lmp = make_hns()
        lmp.command("run 0")
        assert abs(lmp.atom.q[: lmp.atom.nlocal].sum()) < 1e-10

    def test_charge_signs_follow_electronegativity(self):
        lmp = make_hns()
        lmp.command("run 0")
        species = lmp.pair.type_map[lmp.atom.type[: lmp.atom.nlocal]]
        q = lmp.atom.q[: lmp.atom.nlocal]
        # O (species 4) has the highest chi -> most negative average charge
        assert q[species == 4].mean() < q[species == 2].mean()  # O below H

    def test_charges_bounded(self):
        lmp = make_hns()
        lmp.command("run 0")
        assert np.abs(lmp.atom.q[: lmp.atom.nlocal]).max() < 2.0

    def test_qeq_minimizes_electrostatic_energy(self):
        """Perturbing the converged charges (neutrally) raises the energy."""
        lmp = make_hns()
        lmp.command("run 0")
        from repro.core.neighbor import build_neighbor_list
        from repro.reaxff.qeq import build_qeq_matrix

        atom, pair = lmp.atom, lmp.pair
        species = pair.type_map[atom.type[: atom.nall]]
        m = build_qeq_matrix(
            atom.x[: atom.nall], species, lmp.neigh_list, pair.params,
            lmp.update.units.qqr2e,
        )
        n = atom.nlocal
        chi = pair.params.chi[species[:n]]

        def electro(q_local):
            qa = atom.q[: atom.nall].copy()
            qa[:n] = q_local
            # single rank: ghosts mirror owners
            for g in range(n, atom.nall):
                qa[g] = q_local[np.flatnonzero(atom.tag[:n] == atom.tag[g])[0]]
            pair_term = 0.5 * float(q_local @ (m.spmv(qa) - m.diag * q_local))
            self_term = float((chi * q_local + 0.5 * m.diag * q_local**2).sum())
            return pair_term + self_term

        q0 = atom.q[:n].copy()
        e0 = electro(q0)
        rng = np.random.default_rng(0)
        dq = rng.normal(size=n)
        dq -= dq.mean()  # stay neutral
        for scale in (1e-3, 1e-2):
            assert electro(q0 + scale * dq) > e0

    def test_qeq_iterations_recorded(self):
        lmp = make_hns()
        lmp.command("run 0")
        assert lmp.pair.last_stats["qeq_iterations"] > 1


class TestDynamics:
    def test_nve_conservation(self):
        lmp = make_hns()
        lmp.command("thermo 30")
        lmp.command("run 30")
        h = lmp.thermo.history
        drift = abs(h[-1]["etotal"] - h[0]["etotal"]) / abs(h[0]["etotal"])
        assert drift < 2e-4

    def test_bonds_persist_in_crystal(self):
        lmp = make_hns()
        lmp.command("run 10")
        stats = lmp.pair.last_stats
        # the molecular network stays bonded at 300 K
        assert stats["nbonds"] > lmp.atom.nlocal  # > 1 bond per atom (directed)
        assert stats["quads"] > 0


class TestParallelAndKokkos:
    @pytest.mark.parametrize("nranks", [2, 4])
    def test_decomposition_equivalence(self, nranks):
        single = make_hns()
        single.command("run 5")
        multi = make_hns(nranks=nranks)
        multi.command("run 5")
        np.testing.assert_allclose(
            gather_by_tag(multi, "x"), gather_by_tag(single, "x"), atol=1e-7
        )
        np.testing.assert_allclose(
            gather_by_tag(multi, "q"), gather_by_tag(single, "q"), atol=1e-7
        )

    def test_kokkos_matches_plain(self):
        plain = make_hns()
        plain.command("run 5")
        kkr = make_hns(device="H100", pair_style="reaxff/kk cutoff 5.0")
        kkr.command("run 5")
        np.testing.assert_allclose(
            gather_by_tag(kkr, "f"), gather_by_tag(plain, "f"), atol=1e-9
        )

    def test_kokkos_kernels_charged(self):
        import repro.kokkos as kk

        kkr = make_hns(device="H100", pair_style="reaxff/kk cutoff 5.0")
        kkr.command("run 1")
        tl = kk.device_context().timeline
        for name in (
            "ReaxBondOrderNeighborList",
            "ReaxQEqMatrixBuild",
            "ReaxQEqSparseMatVec",
            "ReaxNonbondedForce",
            "ReaxTorsionForce",
        ):
            assert tl.kernel_total(name) > 0, name


class TestValidation:
    def test_pair_coeff_required(self):
        lmp = Lammps(device=None)
        lmp.commands_string(
            "units real\nregion b block 0 12 0 12 0 12\ncreate_box 4 b\n"
            "pair_style reaxff"
        )
        with pytest.raises(InputError, match="chno"):
            lmp.command("pair_coeff 1 1 1.0 1.0")

    def test_element_count_must_match_types(self):
        lmp = Lammps(device=None)
        lmp.commands_string(
            "units real\nregion b block 0 12 0 12 0 12\ncreate_box 4 b\n"
            "pair_style reaxff"
        )
        with pytest.raises(InputError, match="4 element labels"):
            lmp.command("pair_coeff * * chno C H")

    def test_unknown_element(self):
        lmp = Lammps(device=None)
        lmp.commands_string(
            "units real\nregion b block 0 12 0 12 0 12\ncreate_box 1 b\n"
            "pair_style reaxff"
        )
        with pytest.raises(InputError, match="unknown element"):
            lmp.command("pair_coeff * * chno Xe")

    def test_unknown_style_option(self):
        lmp = Lammps(device=None)
        lmp.commands_string("units real\nregion b block 0 12 0 12 0 12\ncreate_box 4 b")
        with pytest.raises(InputError, match="unknown option"):
            lmp.command("pair_style reaxff turbo on")
