"""Neighbor lists: binned build vs brute force, half/full semantics, policy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import NeighborError
from repro.core.neighbor import (
    Neighbor,
    brute_force_pairs,
    build_neighbor_list,
)
from repro.kokkos.core import Device, Host


def random_config(seed: int, n: int = 120, box: float = 8.0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0, box, size=(n, 3))


class TestCorrectness:
    @given(seed=st.integers(0, 1000), cutoff=st.floats(0.5, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_full_list_matches_brute_force(self, seed, cutoff):
        x = random_config(seed)
        nl = build_neighbor_list(x, len(x), cutoff, style="full")
        got = set(zip(*[a.tolist() for a in nl.ij_pairs()]))
        assert got == brute_force_pairs(x, len(x), cutoff)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_half_newton_list_has_each_pair_once(self, seed):
        x = random_config(seed)
        nl = build_neighbor_list(x, len(x), 1.5, style="half", newton=True)
        got = list(zip(*[a.tolist() for a in nl.ij_pairs()]))
        # pairs are stored in scan orientation (i is the owning row, j may
        # be a lower index); normalize to unordered pairs and require each
        # physical pair exactly once
        norm = [(min(i, j), max(i, j)) for i, j in got]
        ref = {(i, j) for i, j in brute_force_pairs(x, len(x), 1.5) if j > i}
        assert len(norm) == len(set(norm))
        assert set(norm) == ref

    def test_half_list_local_ghost_semantics(self):
        """With ghosts: newton on applies the tie-break, newton off keeps all."""
        # atoms 0, 1 local; atom 2 a ghost "below" atom 0 in the tie-break
        # ordering (smaller x, same y/z)
        x = np.array([[5.0, 5, 5], [6.0, 5, 5], [4.0, 5, 5]])
        nlocal = 2
        on = build_neighbor_list(x, nlocal, 1.5, style="half", newton=True)
        off = build_neighbor_list(x, nlocal, 1.5, style="half", newton=False)
        pairs_on = set(zip(*[a.tolist() for a in on.ij_pairs()]))
        pairs_off = set(zip(*[a.tolist() for a in off.ij_pairs()]))
        assert (0, 1) in pairs_on and (0, 1) in pairs_off
        # newton on: the ghost loses the coordinate tie-break (the owning
        # rank computes it); newton off: this rank keeps its side
        assert (0, 2) not in pairs_on
        assert (0, 2) in pairs_off

    def test_chunked_build_identical(self):
        x = random_config(3, n=500)
        a = build_neighbor_list(x, len(x), 1.2, chunk=64)
        b = build_neighbor_list(x, len(x), 1.2, chunk=100000)
        assert np.array_equal(a.first, b.first)
        assert np.array_equal(np.sort(a.neighbors), np.sort(b.neighbors))

    def test_empty_and_single_atom(self):
        nl = build_neighbor_list(np.zeros((0, 3)), 0, 1.0)
        assert nl.total_pairs == 0
        nl = build_neighbor_list(np.zeros((1, 3)), 1, 1.0)
        assert nl.total_pairs == 0  # no self pairs

    def test_validation(self):
        with pytest.raises(NeighborError):
            build_neighbor_list(np.zeros((2, 3)), 2, -1.0)
        with pytest.raises(NeighborError):
            build_neighbor_list(np.zeros((2, 3)), 5, 1.0)
        with pytest.raises(NeighborError):
            build_neighbor_list(np.zeros((2, 3)), 2, 1.0, style="third")


class TestStorageFormat:
    def test_appendix_b_dtypes(self):
        x = random_config(0)
        nl = build_neighbor_list(x, len(x), 1.5)
        assert nl.first.dtype == np.int64  # row offsets: bigint
        assert nl.neighbors.dtype == np.int32  # column indices: narrow

    def test_csr_consistency(self):
        x = random_config(1)
        nl = build_neighbor_list(x, len(x), 1.5)
        assert nl.first[0] == 0
        assert nl.first[-1] == len(nl.neighbors)
        assert np.all(np.diff(nl.first) == nl.numneigh)

    def test_padded_view_layouts(self):
        x = random_config(2)
        nl = build_neighbor_list(x, len(x), 1.5, style="full")
        host = nl.as_padded_view(Host)
        dev = nl.as_padded_view(Device)
        # same logical contents ...
        assert np.array_equal(host.data, dev.data)
        # ... different physical layouts (section 4.1): per-atom rows are
        # contiguous on the host, interleaved on the device
        assert host.data.strides[1] < host.data.strides[0]
        assert dev.data.strides[0] < dev.data.strides[1]
        # padded entries are -1; valid entries match the CSR rows
        for i in (0, len(x) // 2):
            row = host.data[i]
            assert set(row[row >= 0]) == set(nl.neighbors_of(i))


class TestRebuildPolicy:
    def test_first_call_builds(self):
        n = Neighbor(skin=0.3)
        assert n.decide(0, np.zeros((3, 3)))

    def test_displacement_trigger(self):
        n = Neighbor(skin=0.4)
        x = np.zeros((3, 3))
        n.record_build(0, x)
        assert not n.decide(1, x)
        moved = x.copy()
        moved[0, 0] = 0.19  # just under skin/2
        assert not n.decide(1, moved)
        moved[0, 0] = 0.21  # over skin/2
        assert n.decide(1, moved)

    def test_every_and_delay(self):
        n = Neighbor(skin=0.3, every=5, delay=3, check=False)
        n.record_build(0, np.zeros((2, 3)))
        assert not n.decide(2, np.zeros((2, 3)))  # within delay
        assert not n.decide(4, np.zeros((2, 3)))  # not on the every-grid
        assert n.decide(5, np.zeros((2, 3)))

    def test_atom_count_change_forces_rebuild(self):
        n = Neighbor(skin=0.3)
        n.record_build(0, np.zeros((3, 3)))
        assert n.decide(1, np.zeros((4, 3)))  # migration changed counts
