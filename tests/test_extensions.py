"""Extension styles: GPU package, Morse, charged LJ, ML-IAP plug-ins."""

from __future__ import annotations

import numpy as np
import pytest

import repro.kokkos as kk
from conftest import fd_force_check, gather_by_tag, make_melt
from repro.core import Lammps
from repro.core.errors import InputError
from repro.potentials.mliap import (
    LinearSNAPModel,
    register_mliap_model,
    unregister_mliap_model,
)


class TestGPUPackage:
    def test_same_physics_as_plain(self):
        plain = make_melt(cells=3)
        plain.command("run 10")
        gpu = make_melt(device="H100", cells=3, pair_style="lj/cut/gpu")
        gpu.command("run 10")
        np.testing.assert_allclose(
            gather_by_tag(gpu, "f"), gather_by_tag(plain, "f"), atol=1e-12
        )

    def test_transfers_charged_every_step(self):
        gpu = make_melt(device="H100", cells=2, pair_style="lj/cut/gpu")
        gpu.command("run 5")
        tl = kk.device_context().timeline
        # 6 force evaluations (setup + 5 steps), each with both transfers
        assert tl.counts["gpu_package::h2d_positions"] == 6
        assert tl.counts["gpu_package::d2h_forces"] == 6
        assert tl.kernel_total("gpu_package::h2d_positions") > 0

    def test_suffix_gpu_resolves(self):
        lmp = make_melt(device="H100", cells=2, suffix="gpu")
        assert type(lmp.pair).__name__ == "PairLJCutGPU"

    def test_host_build_skips_transfers(self):
        gpu = make_melt(device=None, cells=2, pair_style="lj/cut/gpu")
        gpu.command("run 2")
        tl = kk.device_context().timeline
        assert "gpu_package::h2d_positions" not in tl.entries


class TestMorse:
    MORSE = """\
units lj
lattice fcc 0.8442
region box block 0 3 0 3 0 3
create_box 1 box
create_atoms 1 box
mass 1 1.0
velocity all create 1.0 777
pair_style {style} 2.5
pair_coeff 1 1 1.0 5.0 1.1
fix 1 all nve
thermo 10
"""

    def make(self, style="morse", device=None, suffix=None):
        lmp = Lammps(device=device, suffix=suffix)
        lmp.commands_string(self.MORSE.format(style=style))
        return lmp

    def test_dimer_minimum_at_r0(self):
        lmp = Lammps(device=None)
        lmp.commands_string("units lj\nregion b block 0 10 0 10 0 10\ncreate_box 1 b")
        lmp.create_atoms_from_arrays(
            np.array([[4.0, 5, 5], [5.1, 5, 5]]), np.array([1, 1])
        )
        lmp.commands_string(
            "mass 1 1.0\npair_style morse 2.5\npair_coeff 1 1 2.0 5.0 1.1\nfix 1 all nve"
        )
        lmp.command("run 0")
        assert lmp.pair.eng_vdwl == pytest.approx(-2.0, abs=1e-10)
        assert np.abs(lmp.atom.f[:2]).max() < 1e-9

    def test_fd_forces(self):
        lmp = self.make()
        lmp.command("run 3")
        assert fd_force_check(lmp, [0, 17]) < 1e-6

    def test_kk_variant_matches(self):
        plain = self.make()
        plain.command("run 5")
        kkr = self.make(device="H100", suffix="kk")
        assert type(kkr.pair).__name__ == "PairMorseKokkos"
        kkr.command("run 5")
        np.testing.assert_allclose(
            gather_by_tag(kkr, "f"), gather_by_tag(plain, "f"), atol=1e-9
        )

    def test_bad_coefficients(self):
        lmp = Lammps(device=None)
        lmp.commands_string(
            "units lj\nregion b block 0 9 0 9 0 9\ncreate_box 1 b\npair_style morse 2.5"
        )
        with pytest.raises(InputError):
            lmp.command("pair_coeff 1 1 1.0 -5.0 1.1")


class TestLJCoulCut:
    def make(self, q1=0.5, q2=-0.5, device=None, suffix=None, style="lj/cut/coul/cut"):
        lmp = Lammps(device=device, suffix=suffix)
        lmp.commands_string(
            "units lj\nlattice fcc 0.8442\nregion b block 0 3 0 3 0 3\n"
            "create_box 2 b\ncreate_atoms 1 box\nmass * 1.0\n"
        )
        lmp.atom.type[: lmp.atom.nlocal : 2] = 2  # alternate charges
        lmp.commands_string(
            f"pair_style {style} 2.5 3.0\npair_coeff * * 1.0 1.0\n"
            f"set type 1 charge {q1}\nset type 2 charge {q2}\n"
            "velocity all create 1.0 321\nfix 1 all nve\nthermo 10"
        )
        return lmp

    def test_neutral_charges_reduce_to_lj(self):
        charged = self.make(q1=0.0, q2=0.0)
        charged.command("run 0")
        lj = make_melt(cells=3)
        lj.command("run 0")
        assert charged.pair.eng_vdwl == pytest.approx(lj.pair.eng_vdwl, rel=1e-12)
        assert charged.pair.eng_coul == 0.0

    def test_opposite_charges_lower_energy(self):
        neutral = self.make(q1=0.0, q2=0.0)
        neutral.command("run 0")
        ionic = self.make(q1=0.5, q2=-0.5)
        ionic.command("run 0")
        # alternating +/- arrangement is Coulomb-stabilized
        assert ionic.pair.eng_coul < 0
        assert ionic.pair.eng_coul < neutral.pair.eng_coul

    def test_fd_forces_with_charges(self):
        lmp = self.make()
        lmp.command("run 2")
        assert fd_force_check(lmp, [0, 9]) < 1e-6

    def test_coulomb_cutoff_extends_neighbor_range(self):
        lmp = self.make()
        lmp.command("run 0")
        assert lmp.pair.max_cutoff() == 3.0

    def test_kk_matches_host(self):
        host = self.make()
        host.command("run 5")
        kkr = self.make(device="H100", suffix="kk")
        assert type(kkr.pair).__name__ == "PairLJCutCoulCutKokkos"
        kkr.command("run 5")
        np.testing.assert_allclose(
            gather_by_tag(kkr, "f"), gather_by_tag(host, "f"), atol=1e-9
        )
        e1 = host.pair.eng_vdwl + host.pair.eng_coul
        e2 = kkr.pair.eng_vdwl + kkr.pair.eng_coul
        assert e2 == pytest.approx(e1, rel=1e-12)


class TestMLIAP:
    class SmoothWellModel:
        """E = sum_pairs k (rc^2 - r^2)^2 — smooth at the cutoff (test model)."""

        cutoff = 2.0
        k = 0.05

        def compute(self, rij, pair_i, nlocal):
            rsq = np.einsum("ij,ij->i", rij, rij)
            gap = self.cutoff**2 - rsq
            ei = np.zeros(nlocal)
            np.add.at(ei, pair_i, 0.5 * self.k * gap * gap)  # half per visit
            dedr = (-2.0 * self.k * gap)[:, None] * rij
            return ei, dedr

    def make(self, model_name="harmonic_test"):
        register_mliap_model(model_name, self.SmoothWellModel())
        lmp = Lammps(device=None)
        lmp.commands_string(
            "units lj\nlattice fcc 0.8442\nregion b block 0 3 0 3 0 3\n"
            "create_box 1 b\ncreate_atoms 1 box\nmass 1 1.0\n"
            "velocity all create 0.5 99\n"
            f"pair_style mliap\npair_coeff * * {model_name}\nfix 1 all nve\nthermo 10"
        )
        return lmp

    def teardown_method(self):
        unregister_mliap_model("harmonic_test")

    def test_python_model_drives_dynamics(self):
        lmp = self.make()
        lmp.command("run 10")
        h = lmp.thermo.history
        drift = abs(h[-1]["etotal"] - h[0]["etotal"]) / max(abs(h[0]["etotal"]), 1)
        assert drift < 1e-4

    def test_fd_forces(self):
        lmp = self.make()
        lmp.command("run 2")
        assert fd_force_check(lmp, [0, 21]) < 1e-6

    def test_unknown_model_rejected(self):
        lmp = Lammps(device=None)
        lmp.commands_string(
            "units lj\nregion b block 0 9 0 9 0 9\ncreate_box 1 b\npair_style mliap"
        )
        with pytest.raises(InputError, match="no mliap model registered"):
            lmp.command("pair_coeff * * nonexistent")

    def test_malformed_model_rejected(self):
        with pytest.raises(InputError, match="needs .cutoff"):
            register_mliap_model("bad", object())

    def test_linear_snap_model_matches_pair_snap(self):
        """Deploying SNAP through the ML-IAP plug-in reproduces the native
        pair style exactly (appendix A's two strategies, same physics)."""
        from repro.snap.pair_snap import synthetic_beta
        from repro.snap.indexing import SnapIndex
        from repro.workloads.tantalum import setup_tantalum

        native = Lammps(device=None)
        setup_tantalum(native, cells=2, twojmax=4)
        native.command("run 3")

        beta = synthetic_beta(SnapIndex(4).nbispectrum, 0.5, int(777 * 1.0))
        register_mliap_model("snap_ta", LinearSNAPModel(beta, 4, 4.7))
        try:
            plug = Lammps(device=None)
            plug.commands_string(
                "units metal\nboundary p p p\nlattice bcc 3.316\n"
                "region box block 0 2 0 2 0 2\ncreate_box 1 box\n"
                "create_atoms 1 box\nmass 1 180.95\n"
                "velocity all create 600.0 4928459\n"
                "pair_style mliap\npair_coeff * * snap_ta\n"
                "neighbor 1.0 bin\nneigh_modify every 20 delay 0 check no\n"
                "timestep 0.0005\nfix 1 all nve\nthermo 10"
            )
            plug.command("run 3")
            np.testing.assert_allclose(
                gather_by_tag(plug, "f"), gather_by_tag(native, "f"), atol=1e-10
            )
        finally:
            unregister_mliap_model("snap_ta")
