"""Lennard-Jones: values, forces, mixing, shift, Kokkos variants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import fd_force_check, gather_by_tag, make_melt
from repro.core import Lammps
from repro.core.errors import InputError


class TestPhysics:
    def test_melt_cohesive_energy(self):
        """The canonical LAMMPS melt: E/N = -4.6218 at rho*=0.8442, T*=1.44."""
        lmp = make_melt(cells=4)
        lmp.command("run 0")
        e_per_atom = lmp.thermo.history[0]["etotal"] / lmp.natoms_total
        assert e_per_atom == pytest.approx(-4.6218, abs=5e-3)

    def test_dimer_minimum(self):
        """Two atoms at r = 2^(1/6) sigma: E = -eps, F = 0."""
        lmp = Lammps(device=None)
        lmp.commands_string(
            "units lj\nregion b block 0 10 0 10 0 10\ncreate_box 1 b"
        )
        rmin = 2.0 ** (1.0 / 6.0)
        lmp.create_atoms_from_arrays(
            np.array([[5.0, 5, 5], [5.0 + rmin, 5, 5]]), np.array([1, 1])
        )
        lmp.commands_string(
            "mass 1 1.0\npair_style lj/cut 2.5\npair_coeff 1 1 1.0 1.0\nfix 1 all nve"
        )
        lmp.command("run 0")
        assert lmp.pair.eng_vdwl == pytest.approx(-1.0, abs=1e-12)
        assert np.abs(lmp.atom.f[:2]).max() < 1e-12

    def test_fd_forces(self):
        lmp = make_melt(cells=3)
        lmp.command("run 5")  # off-lattice configuration
        assert fd_force_check(lmp, [0, 11, 30]) < 1e-6

    def test_virial_matches_fd_of_volume(self):
        """Pressure from the virial agrees with -dE/dV (cold lattice)."""
        def energy_at_scale(s: float) -> tuple[float, float]:
            lmp = Lammps(device=None)
            a = (4 / 0.8442) ** (1 / 3) * s
            L = 3 * a
            lmp.commands_string(
                f"units lj\nregion b block 0 {L} 0 {L} 0 {L}\ncreate_box 1 b"
            )
            base = Lammps(device=None)
            base.commands_string(
                "units lj\nlattice fcc 0.8442\nregion b block 0 3 0 3 0 3\n"
                "create_box 1 b\ncreate_atoms 1 box\nmass 1 1.0"
            )
            x = base.atom.x[: base.atom.nlocal] * s
            lmp.create_atoms_from_arrays(x, np.ones(len(x), dtype=int))
            lmp.commands_string(
                "mass 1 1.0\npair_style lj/cut 2.5\npair_coeff 1 1 1.0 1.0\nfix 1 all nve"
            )
            lmp.command("run 0")
            vol = lmp.domain.volume
            press = lmp.internal_compute("pressure").finalize(
                lmp.internal_compute("pressure").local_partials()
            )
            return lmp.pair.eng_vdwl, vol, press

        eps = 2e-4
        e1, v1, _ = energy_at_scale(1.0 - eps)
        e2, v2, _ = energy_at_scale(1.0 + eps)
        _, _, p0 = energy_at_scale(1.0)
        p_fd = -(e2 - e1) / (v2 - v1)
        assert p0 == pytest.approx(p_fd, rel=2e-3)

    def test_shift_removes_cutoff_energy_jump(self):
        plain = make_melt(cells=3, thermo=100)
        plain.command("run 100")
        shifted = make_melt(cells=3, thermo=100)
        shifted.command("pair_modify shift yes")
        shifted.command("run 100")

        def drift(lmp):
            h = lmp.thermo.history
            return abs(h[-1]["etotal"] - h[0]["etotal"]) / abs(h[0]["etotal"])

        assert drift(shifted) < drift(plain) / 3


class TestCoefficients:
    def make_two_type(self):
        lmp = Lammps(device=None)
        lmp.commands_string(
            "units lj\nlattice fcc 0.8442\nregion b block 0 2 0 2 0 2\n"
            "create_box 2 b\ncreate_atoms 1 box\nmass * 1.0\npair_style lj/cut 2.5"
        )
        return lmp

    def test_lorentz_berthelot_mixing(self):
        lmp = self.make_two_type()
        lmp.command("pair_coeff 1 1 1.0 1.0")
        lmp.command("pair_coeff 2 2 4.0 2.0")
        lmp.command("fix 1 all nve")
        lmp.pair.init()
        assert lmp.pair.epsilon[1, 2] == pytest.approx(2.0)  # sqrt(1*4)
        assert lmp.pair.sigma[1, 2] == pytest.approx(1.5)  # (1+2)/2

    def test_missing_coeff_detected(self):
        lmp = self.make_two_type()
        lmp.command("pair_coeff 1 1 1.0 1.0")
        lmp.command("fix 1 all nve")
        with pytest.raises(InputError, match="not set"):
            lmp.command("run 0")

    def test_wildcard_coeff(self):
        lmp = self.make_two_type()
        lmp.command("pair_coeff * * 1.0 1.0")
        assert lmp.pair.setflag[1:, 1:].all()

    def test_bad_pair_style_args(self):
        lmp = Lammps(device=None)
        lmp.commands_string(
            "units lj\nlattice fcc 1.0\nregion b block 0 2 0 2 0 2\ncreate_box 1 b"
        )
        with pytest.raises(InputError, match="cutoff"):
            lmp.command("pair_style lj/cut")
        with pytest.raises(InputError):
            lmp.command("pair_style lj/cut -2.5")


class TestKokkosVariants:
    @pytest.mark.parametrize(
        "style", ["lj/cut/kk", "lj/cut/kk/host", "lj/cut/kk/device"]
    )
    def test_matches_plain(self, style):
        ref = make_melt(cells=3)
        ref.command("run 10")
        kkr = make_melt(device="H100", cells=3, pair_style=style)
        kkr.command("run 10")
        np.testing.assert_allclose(
            gather_by_tag(kkr, "f"), gather_by_tag(ref, "f"), atol=1e-9
        )

    @pytest.mark.parametrize(
        "options",
        [
            dict(neigh="full", newton=False),
            dict(neigh="half", newton=False),
            dict(neigh="half", newton=True),
            dict(neigh="full", team=True),
        ],
    )
    def test_all_kernel_configs_identical_physics(self, options):
        ref = make_melt(cells=3)
        ref.command("run 10")
        kkr = make_melt(device="H100", cells=3, pair_style="lj/cut/kk")
        kkr.pair.set_options(**options)
        kkr.command("run 10")
        np.testing.assert_allclose(
            gather_by_tag(kkr, "f"), gather_by_tag(ref, "f"), atol=1e-9
        )
        e_ref = ref.thermo.history[-1]["etotal"]
        e_kk = kkr.thermo.history[-1]["etotal"]
        assert e_kk == pytest.approx(e_ref, abs=1e-9)

    def test_full_newton_combination_rejected(self):
        kkr = make_melt(device="H100", cells=2, pair_style="lj/cut/kk")
        with pytest.raises(InputError, match="newton on requires"):
            kkr.pair.set_options(neigh="full", newton=True)

    def test_suffix_selects_kokkos_style(self):
        lmp = make_melt(device="H100", cells=2, suffix="kk")
        assert type(lmp.pair).__name__ == "PairLJCutKokkos"

    def test_device_kernels_recorded(self):
        import repro.kokkos as kk

        lmp = make_melt(device="H100", cells=2, pair_style="lj/cut/kk")
        lmp.command("run 2")
        tl = kk.device_context().timeline
        assert tl.kernel_total("PairComputeLJCut") > 0
        assert tl.kernel_total("NeighborBuild") > 0


class TestTableStyle:
    @given(eps=st.floats(0.5, 2.0), sig=st.floats(0.8, 1.2))
    @settings(max_examples=10, deadline=None)
    def test_tabulated_lj_matches_analytic(self, eps, sig):
        def build(style, coeff):
            lmp = make_melt(cells=2, pair_style="lj/cut")
            return lmp

        lmp_a = Lammps(device=None)
        lmp_a.commands_string(
            "units lj\nlattice fcc 0.8442\nregion b block 0 2 0 2 0 2\n"
            "create_box 1 b\ncreate_atoms 1 box\nmass 1 1.0\n"
            f"pair_style lj/cut 2.5\npair_coeff 1 1 {eps} {sig}\nfix 1 all nve\nrun 0"
        )
        lmp_t = Lammps(device=None)
        lmp_t.commands_string(
            "units lj\nlattice fcc 0.8442\nregion b block 0 2 0 2 0 2\n"
            "create_box 1 b\ncreate_atoms 1 box\nmass 1 1.0\n"
            f"pair_style table 4000 2.5\npair_coeff 1 1 lj {eps} {sig}\nfix 1 all nve\nrun 0"
        )
        assert lmp_t.pair.eng_vdwl == pytest.approx(lmp_a.pair.eng_vdwl, rel=1e-4)
        np.testing.assert_allclose(
            lmp_t.atom.f[: lmp_t.atom.nlocal],
            lmp_a.atom.f[: lmp_a.atom.nlocal],
            atol=1e-3,
        )

    def test_morse_table_fd(self):
        lmp = Lammps(device=None)
        lmp.commands_string(
            "units lj\nlattice fcc 0.8442\nregion b block 0 2 0 2 0 2\n"
            "create_box 1 b\ncreate_atoms 1 box\nmass 1 1.0\n"
            "pair_style table 4000 2.5\npair_coeff 1 1 morse 1.0 5.0 1.1\n"
            "velocity all create 0.5 1\nfix 1 all nve"
        )
        lmp.command("run 3")
        # linear interpolation limits accuracy; loose FD tolerance
        assert fd_force_check(lmp, [0, 5], eps=1e-4) < 5e-3

    def test_unknown_generator(self):
        lmp = Lammps(device=None)
        lmp.commands_string(
            "units lj\nregion b block 0 4 0 4 0 4\ncreate_box 1 b\n"
            "pair_style table 100 2.5"
        )
        with pytest.raises(InputError, match="unknown table generator"):
            lmp.command("pair_coeff 1 1 buck 1.0 1.0")
