"""Energy minimization and ReaxFF species analysis."""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_melt
from repro.core import Ensemble, Lammps
from repro.core.errors import LammpsError
from repro.reaxff.species import analyze_lammps, molecular_formula
from repro.workloads.hns import setup_hns


def jittered_melt(seed=4, cells=3, nranks=1, **kw):
    lmp = make_melt(cells=cells, nranks=nranks, **kw)
    rng = np.random.default_rng(seed)
    ranks = lmp.ranks if hasattr(lmp, "ranks") else [lmp]
    for r in ranks:
        r.atom.x[: r.atom.nlocal] += rng.uniform(-0.15, 0.15, (r.atom.nlocal, 3))
    return lmp


class TestMinimize:
    def test_fire_recovers_fcc_ground_state(self):
        lmp = jittered_melt()
        result = lmp.minimize(0.0, 1e-8, 3000)
        assert result.converged and result.criterion == "ftol"
        # the perfect 3x3x3 fcc cell at rho*=0.8442 with rc=2.5
        perfect = make_melt(cells=3)
        perfect.command("run 0")
        assert result.final_energy == pytest.approx(perfect.pair.eng_vdwl, abs=1e-6)

    def test_sd_descends_monotonically(self):
        lmp = jittered_melt()
        lmp.command("min_style sd")
        e0 = None
        lmp.command("run 0")
        e0 = lmp.pair.eng_vdwl
        result = lmp.minimize(1e-10, 1e-4, 500)
        assert result.final_energy < e0
        assert result.iterations > 0

    def test_minimize_via_input_script(self):
        lmp = jittered_melt()
        lmp.command("minimize 0.0 1e-6 1000")
        assert lmp.last_minimize.converged

    def test_minimize_forces_vanish(self):
        lmp = jittered_melt()
        lmp.minimize(0.0, 1e-8, 3000)
        from repro.parallel.driver import drain

        drain(lmp.verlet.run_gen(0))
        assert np.abs(lmp.atom.f[: lmp.atom.nlocal]).max() < 1e-6

    def test_multirank_minimize_matches_single(self):
        single = jittered_melt(seed=9)
        r1 = single.minimize(0.0, 1e-8, 2000)
        # ensembles share the rng-jitter per rank; rebuild deterministically
        multi = make_melt(cells=3, nranks=2)
        rng = np.random.default_rng(9)
        # regenerate the same global jitter by tag
        base = make_melt(cells=3)
        jit = rng.uniform(-0.15, 0.15, (base.natoms_total, 3))
        for r in multi.ranks:
            sel = r.atom.tag[: r.atom.nlocal] - 1
            r.atom.x[: r.atom.nlocal] += jit[sel]
        # and apply the identical jitter to a fresh single-rank reference
        ref = make_melt(cells=3)
        ref.atom.x[: ref.atom.nlocal] += jit[ref.atom.tag[: ref.atom.nlocal] - 1]
        r_ref = ref.minimize(0.0, 1e-8, 2000)
        r2 = multi.minimize(0.0, 1e-8, 2000)
        assert r2.final_energy == pytest.approx(r_ref.final_energy, abs=1e-8)

    def test_requires_pair_style(self):
        lmp = Lammps(device=None)
        lmp.commands_string(
            "units lj\nlattice fcc 1.0\nregion b block 0 2 0 2 0 2\n"
            "create_box 1 b\ncreate_atoms 1 box\nmass 1 1.0"
        )
        with pytest.raises(LammpsError, match="pair style"):
            lmp.minimize(0.0, 1e-6, 10)

    def test_unknown_style_rejected(self):
        lmp = jittered_melt()
        from repro.core.errors import InputError

        with pytest.raises(InputError):
            lmp.command("min_style cg9")


class TestSpeciesAnalysis:
    def test_formula_ordering(self):
        assert molecular_formula(["O", "C", "H", "C", "O"]) == "C2HO2"
        assert molecular_formula(["N"]) == "N"
        assert molecular_formula([]) == ""

    def test_hns_molecules_detected(self):
        lmp = Lammps(device=None)
        setup_hns(lmp, 2, 2, 2, pair_style="reaxff cutoff 5.0")
        lmp.command("neighbor 0.5 bin")
        lmp.command("run 0")
        report = analyze_lammps(lmp)
        # 8 molecules of C2HNO2 chains (possibly cross-linked end to end)
        assert report.nmolecules >= 1
        assert sum(
            n * (f.count("C") and 1) for f, n in report.formulas.items()
        ) >= 1
        total_atoms = 0
        from collections import Counter
        import re

        for formula, count in report.formulas.items():
            atoms = 0
            for sym, num in re.findall(r"([A-Z][a-z]?)(\d*)", formula):
                if sym:
                    atoms += int(num) if num else 1
            total_atoms += atoms * count
        assert total_atoms == lmp.natoms_total  # every atom in some molecule
        assert report.largest >= 6  # at least one intact chain

    def test_isolated_chain_formula(self):
        """One 6-atom chain in vacuum: exactly one C2HNO2 molecule."""
        from repro.workloads.hns import hns_configuration

        x, types, _ = hns_configuration(1, 1, 1, jitter=0.0)
        lmp = Lammps(device=None)
        lmp.commands_string(
            "units real\nboundary p p p\n"
            "region box block 0 30 0 30 0 30\ncreate_box 4 box"
        )
        lmp.create_atoms_from_arrays(x + 10.0, types)
        lmp.commands_string(
            "mass 1 12.011\nmass 2 1.008\nmass 3 14.007\nmass 4 15.999\n"
            "pair_style reaxff cutoff 5.0\npair_coeff * * chno C H N O\n"
            "neighbor 0.5 bin\nfix 1 all nve"
        )
        lmp.command("run 0")
        report = analyze_lammps(lmp)
        assert report.formulas == {"C2HNO2": 1}
        assert report.nmolecules == 1
        assert report.nbonds == 5

    def test_threshold_validation(self):
        lmp = Lammps(device=None)
        setup_hns(lmp, 2, 2, 2, pair_style="reaxff cutoff 5.0")
        lmp.command("neighbor 0.5 bin")
        lmp.command("run 0")
        with pytest.raises(LammpsError):
            analyze_lammps(lmp, bo_threshold=1.5)

    def test_requires_reaxff(self):
        lmp = make_melt(cells=2)
        lmp.command("run 0")
        with pytest.raises(LammpsError, match="reaxff"):
            analyze_lammps(lmp)


class TestPackageKokkos:
    def test_package_overrides_pair_defaults(self):
        lmp = make_melt(device="H100", cells=2, suffix="kk")
        lmp.command("package kokkos neigh half newton on")
        lmp.command("run 0")
        assert lmp.pair.neighbor_request() == ("half", True)

    def test_conflicting_package_settings(self):
        from repro.core.errors import InputError

        lmp = make_melt(device="H100", cells=2, suffix="kk")
        lmp.command("package kokkos neigh full newton on")
        with pytest.raises(InputError, match="newton on requires"):
            lmp.command("run 0")

    def test_physics_invariant_under_package_knobs(self):
        ref = make_melt(cells=3)
        ref.command("run 5")
        kkr = make_melt(device="H100", cells=3, suffix="kk")
        kkr.command("package kokkos neigh half newton on")
        kkr.command("run 5")
        from conftest import gather_by_tag

        np.testing.assert_allclose(
            gather_by_tag(kkr, "f"), gather_by_tag(ref, "f"), atol=1e-9
        )

    def test_unknown_option(self):
        from repro.core.errors import InputError

        lmp = make_melt(device="H100", cells=2)
        with pytest.raises(InputError, match="unknown option"):
            lmp.command("package kokkos turbo on")


class TestRunSummary:
    def test_stats_recorded(self):
        lmp = make_melt(device="H100", cells=2, suffix="kk")
        lmp.command("run 5")
        s = lmp.last_run_stats
        assert s["steps"] == 5
        assert s["wall"] > 0
        assert s["simulated_device"] > 0
