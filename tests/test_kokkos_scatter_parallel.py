"""ScatterView strategies and the parallel dispatch patterns."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.kokkos as kk
from repro.kokkos.scatter_view import ATOMIC, DUPLICATED, SEQUENTIAL, ScatterView


@pytest.fixture(autouse=True)
def _runtime():
    kk.initialize("H100")
    yield
    kk.finalize()


class TestScatterView:
    def test_default_strategy_by_space(self):
        dv = ScatterView(kk.View((4,), space=kk.Device))
        hv = ScatterView(kk.View((4,), space=kk.Host))
        assert dv.strategy == ATOMIC
        assert hv.strategy == DUPLICATED

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            ScatterView(kk.View((4,)), strategy="magic")

    def test_duplicate_indices_accumulate(self):
        target = kk.View((3,))
        sv = ScatterView(target, strategy=ATOMIC)
        sv.access().add(np.array([0, 0, 2, 0]), np.array([1.0, 2.0, 5.0, 4.0]))
        sv.contribute()
        assert list(target.data) == [7.0, 0.0, 5.0]

    def test_atomic_add_counting(self):
        sv = ScatterView(kk.View((8,)), strategy=ATOMIC)
        sv.access().add(np.arange(8), np.ones(8))
        assert sv.atomic_adds == 8
        sv.reset()
        assert sv.atomic_adds == 0

    def test_duplicated_reports_footprint_not_atomics(self):
        sv = ScatterView(kk.View((8,)), strategy=DUPLICATED, duplicates=4)
        sv.access(thread=1).add(np.arange(8), np.ones(8))
        assert sv.atomic_adds == 0
        assert sv.duplicated_bytes == 8 * 8 * 4

    @given(
        n_target=st.integers(2, 12),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_strategy_equivalence(self, n_target, seed):
        """All three deconfliction strategies produce identical results."""
        kk.initialize("H100")
        rng = np.random.default_rng(seed)
        idx = rng.integers(0, n_target, size=50)
        vals = rng.normal(size=50)
        results = []
        for strategy in (ATOMIC, DUPLICATED, SEQUENTIAL):
            target = kk.View((n_target,))
            sv = ScatterView(target, strategy=strategy, duplicates=4)
            for t in range(4):
                sel = slice(t, None, 4)
                sv.access(thread=t).add(idx[sel], vals[sel])
            sv.contribute()
            results.append(target.data.copy())
        np.testing.assert_allclose(results[0], results[1], atol=1e-12)
        np.testing.assert_allclose(results[0], results[2], atol=1e-12)

    def test_2d_scatter(self):
        target = kk.View((4, 3))
        sv = ScatterView(target, strategy=ATOMIC)
        sv.access().add(np.array([1, 1]), np.array([[1.0, 0, 0], [0, 2.0, 0]]))
        sv.contribute()
        assert target.data[1, 0] == 1.0 and target.data[1, 1] == 2.0


class TestParallelFor:
    def test_vectorized_index_contract(self):
        out = np.zeros(10)

        def body(i):
            out[i] = 2 * i

        kk.parallel_for("fill", kk.RangePolicy(kk.Device, 0, 10), body)
        assert np.array_equal(out, 2 * np.arange(10))

    def test_records_simulated_time(self):
        ctx = kk.device_context()
        prof = kk.KernelProfile("work", flops=1e9, parallel_items=1e6)
        kk.parallel_for("work", kk.RangePolicy(1000), lambda i: None, profile=prof)
        assert ctx.timeline.kernel_total("work") > 0

    def test_team_policy_handle(self):
        seen = {}

        def body(team):
            seen["league"] = team.league_size
            pad = team.team_scratch("u", (4, 4))
            pad[0, 0] = 1.0

        kk.parallel_for(
            "team",
            kk.TeamPolicy(kk.Device, 16, 4, 8, scratch_kb=1.0),
            body,
        )
        assert seen["league"] == 16

    def test_scratch_overflow_raises(self):
        def body(team):
            team.team_scratch("big", (1024, 1024))

        with pytest.raises(MemoryError, match="scratch"):
            kk.parallel_for(
                "team", kk.TeamPolicy(kk.Device, 2, 1, 1, scratch_kb=1.0), body
            )


class TestParallelReduce:
    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_sum_matches_numpy(self, values):
        kk.initialize("H100")
        arr = np.asarray(values)
        total = kk.parallel_reduce(
            "sum", kk.RangePolicy(len(arr)), lambda i: arr[i]
        )
        assert total == pytest.approx(arr.sum(), rel=1e-12, abs=1e-12)

    def test_custom_reducer(self):
        arr = np.array([3.0, -7.0, 5.0])
        result = kk.parallel_reduce(
            "max", kk.RangePolicy(3), lambda i: arr[i], reducer=np.max
        )
        assert result == 5.0


class TestParallelScan:
    @given(st.lists(st.integers(0, 50), min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_exclusive_scan_matches_numpy(self, values):
        kk.initialize("H100")
        arr = np.asarray(values)
        scan, total = kk.parallel_scan(
            "scan", kk.RangePolicy(len(arr)), lambda i: arr[i]
        )
        expected = np.concatenate([[0], np.cumsum(arr)[:-1]])
        assert np.array_equal(scan, expected)
        assert total == arr.sum()

    def test_inclusive_option(self):
        scan, total = kk.parallel_scan(
            "s", kk.RangePolicy(4), lambda i: np.ones(4), exclusive=False
        )
        assert list(scan) == [1, 2, 3, 4]

    def test_wrong_length_raises(self):
        with pytest.raises(ValueError, match="scan functor"):
            kk.parallel_scan("s", kk.RangePolicy(4), lambda i: np.ones(3))


class TestMDRange:
    def test_tiles_cover_space_exactly_once(self):
        policy = kk.MDRangePolicy(kk.Device, (0, 0), (7, 5), tile=(3, 2))
        cover = np.zeros((7, 5), dtype=int)
        for sl in policy.tiles():
            cover[sl] += 1
        assert np.all(cover == 1)

    def test_parallelism_is_volume(self):
        policy = kk.MDRangePolicy(kk.Device, (0, 0, 0), (4, 5, 6))
        assert policy.parallelism == 120

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            kk.MDRangePolicy(kk.Device, (0, 0), (3,))
