"""Differential matrix: fused graph replay is bitwise-identical to eager.

The kernel-graph subsystem (:mod:`repro.graph`) rewrites the force step
from a stream of eager dispatches into a captured, fused, cached plan.
That is only legal because the fused composition computes *bitwise*
identical forces and energies — the stage bodies run the same ufunc
sequence on the same operands, only the dispatch accounting changes.
This module is that safety net, swept over the melt LJ matrix (kokkos,
scatter x stencil), host LJ, EAM/kk, SNAP, and the HNS ReaxFF snapshot,
plus the PairCache-style plan lifetime rules: invalidation on neighbor
rebuild and on a ``set_scatter_mode`` flip mid-run.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from conftest import gather_by_tag, make_melt
from repro.core import Lammps
from repro.core.neighbor import LEGACY, SHARED, force_stencil_mode
from repro.graph import ON, force_graph_mode, plan_cache, set_graph_mode
from repro.kokkos.segment import (
    ATOMIC,
    SEGMENTED,
    force_scatter_mode,
    set_scatter_mode,
)
from repro.parallel.driver import drain
from repro.workloads.hns import setup_hns
from repro.workloads.tantalum import setup_tantalum

EAM_SCRIPT = """\
units metal
lattice fcc 3.52
region box block 0 {cells} 0 {cells} 0 {cells}
create_box 1 box
create_atoms 1 box
mass 1 58.7
velocity all create 600 12345
pair_style eam/fs/kk 4.5
pair_coeff * * 2.0 0.3
neighbor 1.0 bin
fix 1 all nve
"""


@pytest.fixture(autouse=True)
def _reset_modes():
    yield
    set_scatter_mode(None)
    set_graph_mode(None)


def step_forces(lmp):
    """One force step under the active modes -> (forces-by-tag, energy)."""
    lmp.atom.f[: lmp.atom.nall] = 0.0
    if hasattr(lmp.pair, "compute_gen"):  # EAM communicates mid-compute
        drain(lmp.pair.compute_gen(True, True))
    else:
        lmp.pair.compute(True, True)
    if lmp.pair.needs_reverse_comm:
        drain(lmp.comm_brick.reverse_comm(lmp.atom, "f"))
    return gather_by_tag(lmp, "f"), float(lmp.pair.eng_vdwl)


def assert_fused_matches_eager(lmp, tag=""):
    """Eager vs capture-step vs replay-step must agree bitwise."""
    eager_f, eager_e = step_forces(lmp)
    virial = np.array(lmp.pair.virial)
    with force_graph_mode(ON):
        capture_f, capture_e = step_forces(lmp)  # miss: captures the plan
        replay_f, replay_e = step_forces(lmp)  # hit: replays the plan
    for name, f, e in (
        ("capture", capture_f, capture_e),
        ("replay", replay_f, replay_e),
    ):
        assert np.array_equal(f, eager_f), f"{tag}: {name} forces differ"
        assert e == eager_e, f"{tag}: {name} energy differs"
    assert np.array_equal(np.array(lmp.pair.virial), virial), tag


# ----------------------------------------------------------- melt lj matrix
def test_melt_kk_fused_bitwise_across_scatter_stencil_matrix():
    lmp = make_melt(device="H100", suffix="kk")
    lmp.run(0)
    for scatter, stencil in itertools.product(
        (ATOMIC, SEGMENTED), (SHARED, LEGACY)
    ):
        with force_scatter_mode(scatter), force_stencil_mode(stencil):
            drain(lmp.rebuild_gen())
            assert_fused_matches_eager(lmp, f"melt-kk {scatter}/{stencil}")


def test_melt_kk_full_list_fused_bitwise():
    lmp = make_melt(device="H100", suffix="kk")
    lmp.run(0)
    lmp.pair.set_options(neigh="full", newton=False)
    lmp.newton_pair = False
    drain(lmp.rebuild_gen())
    assert_fused_matches_eager(lmp, "melt-kk full")


def test_melt_host_fused_bitwise():
    lmp = make_melt()
    lmp.run(0)
    assert_fused_matches_eager(lmp, "melt-host")


def test_melt_dynamics_identical_under_graph_mode():
    """A real multi-step run (rebuilds included) is trajectory-identical."""

    def trajectory(graph):
        lmp = make_melt(suffix="kk")
        if graph:
            set_graph_mode(ON)
        try:
            lmp.run(20)
        finally:
            set_graph_mode(None)
        return gather_by_tag(lmp, "x"), gather_by_tag(lmp, "f")

    x_eager, f_eager = trajectory(graph=False)
    x_fused, f_fused = trajectory(graph=True)
    assert np.array_equal(x_fused, x_eager)
    assert np.array_equal(f_fused, f_eager)


# ------------------------------------------------------------- eam and snap
def test_eam_kk_fused_bitwise():
    lmp = Lammps(device="H100", suffix="kk")
    lmp.commands_string(EAM_SCRIPT.format(cells=3))
    lmp.run(0)
    assert_fused_matches_eager(lmp, "eam-kk")


def test_snap_fused_geometry_bitwise():
    lmp = Lammps(device=None)
    setup_tantalum(lmp, cells=2, pair_style="snap", twojmax=4)
    lmp.run(2)  # break lattice symmetry so forces are non-trivial
    assert_fused_matches_eager(lmp, "snap")


# ------------------------------------------------------------------ reaxff
def test_hns_reaxff_identical_under_graph_mode():
    """ReaxFF declares no fusable stages: graph mode must change nothing."""

    def forces(graph):
        lmp = Lammps(device=None)
        setup_hns(lmp, 1, 2, 2, pair_style="reaxff cutoff 5.0")
        if graph:
            set_graph_mode(ON)
        try:
            drain(lmp.verlet.run_gen(0))
        finally:
            set_graph_mode(None)
        e = float(lmp.pair.eng_vdwl + lmp.pair.eng_coul)
        return gather_by_tag(lmp, "f"), e

    f_eager, e_eager = forces(graph=False)
    f_fused, e_fused = forces(graph=True)
    assert np.array_equal(f_fused, f_eager)
    assert e_fused == e_eager


# ------------------------------------------------------- plan cache lifetime
def test_plan_invalidated_on_neighbor_rebuild():
    lmp = make_melt(suffix="kk")
    lmp.run(0)
    with force_graph_mode(ON):
        cache = plan_cache()
        ref_f, ref_e = step_forces(lmp)  # miss: capture
        before = cache.stats()
        step_forces(lmp)
        assert cache.stats()["hits"] == before["hits"] + 1
        drain(lmp.rebuild_gen())  # bumps the list generation
        mid = cache.stats()
        f, e = step_forces(lmp)
        after = cache.stats()
        assert after["misses"] == mid["misses"] + 1  # re-capture
        assert after["hits"] == mid["hits"]
        assert np.array_equal(f, ref_f) and e == ref_e
        step_forces(lmp)
        assert cache.stats()["hits"] == after["hits"] + 1


def test_plan_invalidated_on_scatter_mode_change_mid_run():
    lmp = make_melt(suffix="kk")
    lmp.run(0)
    with force_graph_mode(ON):
        cache = plan_cache()
        with force_scatter_mode(ATOMIC):
            ref_f, ref_e = step_forces(lmp)  # miss: capture under atomic
        mid = cache.stats()
        with force_scatter_mode(SEGMENTED):
            f, e = step_forces(lmp)  # variant drift: re-capture
        after = cache.stats()
        assert after["misses"] == mid["misses"] + 1
        # scatter modes differ in accumulation *order*, so cross-mode
        # agreement is to round-off, not bitwise (same band as the eager
        # mode-matrix sweep in test_tune_matrix)
        np.testing.assert_allclose(f, ref_f, rtol=1e-9, atol=1e-10)
        assert e == pytest.approx(ref_e, rel=1e-9)
