"""The KokkosP-style observability subsystem (:mod:`repro.tools`).

Covers the event registry contract (near-zero cost detached, per-rank
clocks), the built-in tools (space-time-stack, memory events, kernel
logger, roofline), the reconciliation guarantee — the space-time-stack's
per-category totals match the thermo timing breakdown and the hardware
ledgers on the same run — and the CLI/input-script attachment surface.
"""

from __future__ import annotations

import pytest

import repro.kokkos as kk
from repro.__main__ import main
from repro.kokkos.core import device_context
from repro.tools import create_tool, create_tools, tool_names
from repro.tools import registry as kp
from repro.tools.kernel_logger import KernelLogger
from repro.tools.memory_events import MemoryEvents
from repro.tools.roofline import Roofline
from repro.tools.space_time_stack import SpaceTimeStack

from conftest import make_melt

#: categories the melt workload exercises (no kspace style -> no Kspace)
ACTIVE_CATEGORIES = ("Pair", "Neigh", "Comm", "Modify", "Output")


@pytest.fixture(autouse=True)
def clean_chain():
    """Every test starts and ends with no tools attached and fresh clocks."""
    kp.TOOLS.clear()
    kp.CHAIN.reset()
    yield
    kp.TOOLS.clear()
    kp.CHAIN.reset()


class TestRegistry:
    def test_disabled_dispatch_is_noop(self):
        assert kp.begin_kernel("parallel_for", "k", "Host") is None
        kp.end_kernel(None, None, 0.0)  # must not raise
        kp.fence("f")
        kp.push_region("r")
        kp.pop_region()
        assert kp.CHAIN.region_stacks == {}

    def test_kernel_event_advances_rank_clock(self):
        class Recorder(kp.Tool):
            def __init__(self):
                self.ends = []

            def end_parallel_for(self, ev):
                self.ends.append(ev)

        rec = Recorder()
        with kp.attached(rec):
            kid = kp.begin_kernel("parallel_for", "k", "Device")
            kp.end_kernel(kid, None, 2.5e-6)
        (ev,) = rec.ends
        assert ev.sim_seconds == 2.5e-6
        assert kp.CHAIN.sim_now(ev.rank) == pytest.approx(2.5e-6)
        assert ev.sim_end_us == pytest.approx(2.5)

    def test_per_rank_clocks_are_independent(self):
        with kp.attached(kp.Tool()):
            kp.set_rank(0)
            kp.profile_event("a", sim_seconds=1.0e-6)
            kp.set_rank(3)
            kp.profile_event("b", sim_seconds=5.0e-6)
        assert kp.CHAIN.sim_now(0) == pytest.approx(1.0e-6)
        assert kp.CHAIN.sim_now(3) == pytest.approx(5.0e-6)

    def test_region_stack_per_rank(self):
        with kp.attached(kp.Tool()):
            kp.set_rank(1)
            kp.push_region("Pair")
            kp.set_rank(2)
            kp.push_region("Comm")
            assert kp.CHAIN.stack(1) == ["Pair"]
            assert kp.CHAIN.stack(2) == ["Comm"]

    def test_finalize_all_detaches_and_reports(self):
        class Reporter(kp.Tool):
            def finalize(self):
                return "report!"

        kp.attach(Reporter())
        reports = kp.finalize_all()
        assert reports == ["report!"]
        assert not kp.TOOLS

    def test_catalog_and_factory(self):
        names = tool_names()
        for expected in (
            "chrome-trace",
            "kernel-logger",
            "memory-events",
            "roofline",
            "space-time-stack",
        ):
            assert expected in names
        with pytest.raises(ValueError):
            create_tool("no-such-tool", ".")

    def test_create_tools_parses_comma_list(self, tmp_path):
        tools = create_tools("space-time-stack,memory_events", str(tmp_path))
        assert len(tools) == 2


class TestReconciliation:
    """STS category totals == thermo breakdown == ledger deltas."""

    def _run_with_sts(self, nsteps=20):
        lmp = make_melt(device="H100", suffix="kk", cells=3)
        ctx = device_context()
        sts = SpaceTimeStack()
        with kp.attached(sts):
            sim0 = ctx.timeline.total() + lmp.world.ledger.total()
            lmp.run(nsteps)
            delta = ctx.timeline.total() + lmp.world.ledger.total() - sim0
        return lmp, sts, delta

    def test_categories_match_thermo_breakdown(self):
        lmp, sts, _ = self._run_with_sts()
        breakdown = lmp.last_run_stats["breakdown"]
        totals = sts.category_totals()
        assert totals, "space-time-stack saw no top-level regions"
        for cat in ACTIVE_CATEGORIES:
            assert totals.get(cat, 0.0) == pytest.approx(
                breakdown[cat], rel=1e-9, abs=1e-15
            ), f"category {cat} diverged"

    def test_categories_account_for_all_charged_time(self):
        lmp, sts, delta = self._run_with_sts()
        assert delta > 0
        # every modeled charge in the run loop happens inside a phase, so
        # the per-category totals must add up to the ledger movement
        assert sum(sts.category_totals().values()) == pytest.approx(
            delta, rel=1e-9
        )
        assert sum(lmp.last_run_stats["breakdown"].values()) == pytest.approx(
            delta, rel=1e-9
        )

    def test_pair_dominates_melt(self):
        _, sts, _ = self._run_with_sts()
        totals = sts.category_totals()
        assert totals["Pair"] == max(totals.values())

    def test_finalize_report_mentions_kernels(self):
        _, sts, _ = self._run_with_sts(nsteps=5)
        report = sts.finalize()
        assert "PairComputeLJCut" in report
        assert "Pair" in report


class TestMemoryEvents:
    def test_high_water_mark_on_melt(self):
        mem = MemoryEvents()
        with kp.attached(mem):
            lmp = make_melt(device="H100", suffix="kk", cells=3)
            lmp.run(5)
        assert mem.high_water("Device") > 0
        assert mem.log, "no allocation events recorded"
        report = mem.finalize()
        assert "Device" in report

    def test_dealloc_clamps_at_zero(self):
        mem = MemoryEvents()
        with kp.attached(mem):
            # deallocation of a view allocated before the tool attached
            kp.deallocate_data("Host", "preexisting", 4096)
            kp.allocate_data("Host", "v", 1024)
        assert mem.current["Host"] == 1024
        assert mem.high_water("Host") == 1024

    def test_view_resize_tracks_both_sizes(self):
        from repro.kokkos.view import View

        mem = MemoryEvents()
        with kp.attached(mem):
            v = View(100, label="grow")
            first = v.nbytes
            v.resize(300)
        labels = [(r.op, r.nbytes) for r in mem.log if r.label == "grow"]
        assert ("alloc", first) in labels
        assert ("free", first) in labels
        assert ("alloc", v.nbytes) in labels

    def test_high_water_marks_under_four_rank_overlap(self, tmp_path):
        """4-rank overlap-comm melt: records carry ranks, HWM covers all."""
        out = tmp_path / "memory_events.txt"
        mem = MemoryEvents(str(out))
        with kp.attached(mem):
            ens = make_melt(device="H100", suffix="kk", cells=3, nranks=4)
            for lmp in ens.ranks:
                lmp.overlap_comm = True
            ens.run(5)
            report = mem.finalize()
        assert mem.high_water("Device") > 0
        # the high-water mark is the peak of the running footprint the
        # log records — recompute it from the stream and compare
        peak = {}
        running = {}
        for r in mem.log:
            delta = r.nbytes if r.op == "alloc" else -r.nbytes
            cur = max(running.get(r.space, 0) + delta, 0)
            running[r.space] = cur
            peak[r.space] = max(peak.get(r.space, 0), cur)
        assert mem.high_water("Device") == peak["Device"]
        # allocations happened on more than one simulated rank
        ranks_seen = {r.rank for r in mem.log}
        assert len(ranks_seen) > 1, f"all events on ranks {ranks_seen}"
        # the on-disk log carries the rank column
        lines = out.read_text().splitlines()
        assert lines[0].endswith("rank")
        assert any(line.split()[-1] != "0" for line in lines[1:])
        assert "Device" in report


class TestKernelLoggerAndRoofline:
    def test_kernel_logger_writes_lines(self, tmp_path):
        out = tmp_path / "kernels.txt"
        logger = KernelLogger(str(out))
        with kp.attached(logger):
            lmp = make_melt(device="H100", suffix="kk", cells=3)
            lmp.run(2)
        logger.finalize()
        text = out.read_text()
        assert "PairComputeLJCut" in text
        assert "Pair" in text  # region markers

    def test_roofline_scores_against_machine_model(self):
        roof = Roofline()
        with kp.attached(roof):
            lmp = make_melt(device="H100", suffix="kk", cells=3)
            lmp.run(5)
        report = roof.finalize()
        assert "PairComputeLJCut" in report
        rows = {name: row for (name, _), row in roof.rows.items()}
        pair = rows["PairComputeLJCut"]
        assert pair.flops > 0 and pair.bytes > 0 and pair.sim_seconds > 0
        pct, limiter = roof.percent_of_roof(pair)
        assert 0 < pct <= 100
        assert limiter in ("memory", "compute")


class TestCLIAndInputScript:
    SCRIPT = """\
units lj
lattice fcc 0.8442
region box block 0 3 0 3 0 3
create_box 1 box
create_atoms 1 box
mass 1 1.0
velocity all create 1.44 87287
pair_style lj/cut 2.5
pair_coeff 1 1 1.0 1.0
fix 1 all nve
run 5
"""

    def test_cli_tools_flag(self, tmp_path, capsys):
        script = tmp_path / "melt.in"
        script.write_text(self.SCRIPT)
        rc = main(
            [
                "-in", str(script), "-k", "on", "-sf", "kk", "--quiet",
                "--tools", "space-time-stack,chrome-trace",
                "--tool-out", str(tmp_path),
            ]
        )
        assert rc == 0
        assert (tmp_path / "trace.json").exists()
        assert "space-time-stack" in capsys.readouterr().out
        assert not kp.TOOLS  # CLI finalizes and detaches

    def test_cli_rejects_unknown_tool(self, tmp_path):
        script = tmp_path / "melt.in"
        script.write_text(self.SCRIPT)
        with pytest.raises(SystemExit):
            main(["-in", str(script), "--tools", "definitely-not-a-tool"])

    def test_input_script_tools_command(self, tmp_path, capsys):
        from repro.core import Lammps

        lmp = Lammps(device="H100", suffix="kk")
        lmp.command(f"tools space-time-stack out {tmp_path}")
        assert len(kp.TOOLS) == 1
        lmp.commands_string(self.SCRIPT)
        lmp.command("tools off")
        assert not kp.TOOLS
        assert "space-time-stack" in capsys.readouterr().out

    def test_input_script_unknown_tool_raises(self):
        from repro.core import Lammps
        from repro.core.errors import InputError

        lmp = Lammps(device=None)
        with pytest.raises(InputError):
            lmp.command("tools not-a-tool")


class TestDualViewHazard:
    def test_modify_both_spaces_names_view(self):
        from repro.kokkos.dual_view import DualView, DualViewModifyError

        kk.initialize("H100")
        dv = DualView(8, label="forces")
        dv.modify_device()
        with pytest.raises(DualViewModifyError, match="forces"):
            dv.modify_host()
        # the remedy is in the message
        with pytest.raises(DualViewModifyError, match="sync first"):
            dv.modify_host()
        dv.sync_host()
        dv.modify_host()  # after sync the write is legal


class TestBenchRegistry:
    def test_registered_names(self):
        from repro.bench import bench_names

        names = bench_names()
        assert "hotpath" in names and "neighbor" in names

    def test_cli_choices_come_from_registry(self):
        from repro.__main__ import build_parser
        from repro.bench import bench_names

        # validation happens in the registry (did-you-mean KeyError), not
        # via argparse choices — but the help text still lists every name
        bench_action = next(
            a for a in build_parser()._actions if a.dest == "bench"
        )
        assert bench_action.choices is None
        for name in bench_names():
            assert name in bench_action.help

    def test_run_bench_unknown_name(self):
        from repro.bench import run_bench

        with pytest.raises(KeyError):
            run_bench("nope")
